package afl

import (
	"io"
	"time"

	"github.com/fedauction/afl/internal/platform"
)

// Networked marketplace types (Fig. 1 of the paper): an auctioneer server
// and client agents exchanging announce/bid/award/round/payment messages
// over in-memory or TCP transports.
type (
	// Server is the cloud auctioneer.
	Server = platform.Server
	// ServerConfig configures a session.
	ServerConfig = platform.ServerConfig
	// SessionReport is the server's view of a completed session.
	SessionReport = platform.SessionReport
	// Agent is a mobile client: bids, trains when scheduled, gets paid.
	Agent = platform.Agent
	// AgentBehavior injects faults (silence, dropouts) for experiments.
	AgentBehavior = platform.AgentBehavior
	// AgentReport is the agent's view of a completed session.
	AgentReport = platform.AgentReport
	// Conn is a message-oriented connection between server and agent.
	Conn = platform.Conn
	// Job is the FL job announcement.
	Job = platform.Job
	// Ledger records settlement decisions.
	Ledger = platform.Ledger
	// RetryPolicy bounds per-message retries when collecting updates.
	RetryPolicy = platform.RetryPolicy
	// RoundReport is the server's record of one global iteration,
	// including stragglers, promotions and coverage flags.
	RoundReport = platform.RoundReport
	// RepairRecord documents one coverage repair after a winner dropped.
	RepairRecord = platform.RepairRecord
	// Clock abstracts time so sessions can run on a virtual clock.
	Clock = platform.Clock
	// WallClock is the real-time Clock (the default).
	WallClock = platform.WallClock
	// VirtualClock is a deterministic clock for simulated sessions.
	VirtualClock = platform.VirtualClock
	// DelayedSender is implemented by virtual connections that can
	// schedule a message for future delivery.
	DelayedSender = platform.DelayedSender
	// TranscriptEntry is one recorded protocol message.
	TranscriptEntry = platform.TranscriptEntry
)

// NewServer returns an auctioneer for one session configuration.
func NewServer(cfg ServerConfig) *Server { return platform.NewServer(cfg) }

// Pipe returns the two endpoints of an in-process connection.
func Pipe(buffer int) (Conn, Conn) { return platform.Pipe(buffer) }

// Listen accepts n marketplace connections on a TCP address.
func Listen(addr string, n int, accepted func(Conn)) (string, func(), error) {
	return platform.Listen(addr, n, accepted)
}

// Dial connects an agent to a marketplace server over TCP.
func Dial(addr string, timeout time.Duration) (Conn, error) {
	return platform.Dial(addr, timeout)
}

// NewVirtualClock returns a deterministic clock whose time advances only
// when every party it manages is blocked waiting on it.
func NewVirtualClock() *VirtualClock { return platform.NewVirtualClock() }

// VirtualPipe returns the two endpoints of a connection whose delivery
// order is governed by clk rather than goroutine scheduling.
func VirtualPipe(clk *VirtualClock) (Conn, Conn) { return platform.VirtualPipe(clk) }

// ReadTranscript decodes a recorded session transcript.
func ReadTranscript(r io.Reader) ([]TranscriptEntry, error) {
	return platform.ReadTranscript(r)
}

// AuditTranscript replays a transcript through the protocol's legality
// rules and reports the first violation.
func AuditTranscript(entries []TranscriptEntry) error {
	return platform.AuditTranscript(entries)
}
