package afl

import (
	"time"

	"github.com/fedauction/afl/internal/platform"
)

// Networked marketplace types (Fig. 1 of the paper): an auctioneer server
// and client agents exchanging announce/bid/award/round/payment messages
// over in-memory or TCP transports.
type (
	// Server is the cloud auctioneer.
	Server = platform.Server
	// ServerConfig configures a session.
	ServerConfig = platform.ServerConfig
	// SessionReport is the server's view of a completed session.
	SessionReport = platform.SessionReport
	// Agent is a mobile client: bids, trains when scheduled, gets paid.
	Agent = platform.Agent
	// AgentBehavior injects faults (silence, dropouts) for experiments.
	AgentBehavior = platform.AgentBehavior
	// AgentReport is the agent's view of a completed session.
	AgentReport = platform.AgentReport
	// Conn is a message-oriented connection between server and agent.
	Conn = platform.Conn
	// Job is the FL job announcement.
	Job = platform.Job
	// Ledger records settlement decisions.
	Ledger = platform.Ledger
)

// NewServer returns an auctioneer for one session configuration.
func NewServer(cfg ServerConfig) *Server { return platform.NewServer(cfg) }

// Pipe returns the two endpoints of an in-process connection.
func Pipe(buffer int) (Conn, Conn) { return platform.Pipe(buffer) }

// Listen accepts n marketplace connections on a TCP address.
func Listen(addr string, n int, accepted func(Conn)) (string, func(), error) {
	return platform.Listen(addr, n, accepted)
}

// Dial connects an agent to a marketplace server over TCP.
func Dial(addr string, timeout time.Duration) (Conn, error) {
	return platform.Dial(addr, timeout)
}
