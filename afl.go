package afl

import (
	"github.com/fedauction/afl/internal/core"
)

// Core auction types, re-exported from the implementation package.
type (
	// Bid is one sealed bid B_ij = {b, θ, [a,d], c} plus the client's
	// per-round timing profile.
	Bid = core.Bid
	// Config carries the auction-wide parameters (T, K, t_max, payment
	// rule).
	Config = core.Config
	// Result is the outcome of the full A_FL auction.
	Result = core.Result
	// WDPResult is the outcome of a single fixed-T̂_g winner-determination
	// problem.
	WDPResult = core.WDPResult
	// Winner is one accepted bid with its schedule and payment.
	Winner = core.Winner
	// Dual is the primal-dual approximation certificate of Lemma 5.
	Dual = core.Dual
	// PaymentRule selects the winner-payment computation.
	PaymentRule = core.PaymentRule
	// LocalIterFunc maps local accuracy θ to local iteration counts
	// (Eq. (2)).
	LocalIterFunc = core.LocalIterFunc
	// Engine is the reusable incremental A_FL solver: it precomputes the
	// shared per-auction context (qualification delta lists, client
	// groupings) once and serves repeated sweeps and fixed-T̂_g solves
	// from it. All methods are safe for concurrent use.
	Engine = core.Engine
	// RunOptions configures Engine.RunCtx (workers, observer, clock); the
	// Run facade builds it from functional options instead.
	RunOptions = core.RunOptions
	// BidSet is the columnar (struct-of-arrays) form of a bid population:
	// one flat slice per bid field plus a client-sibling index, compiled
	// once via CompileBids and shared — immutably — across every solve
	// that reads it. It is the million-bid ingestion handle of the module:
	// RunSet, Instance.Set (RunBatch, Service.Submit) and Market.Submit
	// all accept one, so the cache-linear layout is constructed once
	// instead of per auction. Row-oriented []Bid entry points remain as
	// thin compat wrappers with bit-identical results.
	BidSet = core.BidSet
	// Solver selects the winner-determination strategy of the T̂_g sweep:
	// the exact enumeration (default) or one of the certified approximate
	// tiers. See WithSolver for the tier semantics.
	Solver = core.Solver
	// Certificate is the quality certificate attached to approximate
	// results (Result.Cert): a dual-certified lower bound on the
	// full-enumeration optimum and the ratio of the reported cost against
	// it. Exact results carry a nil Cert.
	Certificate = core.Certificate
)

// Payment rules.
const (
	// RuleCritical is the paper's Algorithm 3 (default).
	RuleCritical = core.RuleCritical
	// RuleExactCritical pays exact Myerson thresholds via bisection.
	RuleExactCritical = core.RuleExactCritical
	// RulePayBid pays winners their claimed price (not truthful).
	RulePayBid = core.RulePayBid
)

// Solver tiers, the quality-vs-speed frontier of the sweep.
const (
	// SolverExact solves every candidate T̂_g — Algorithm 1 exactly.
	SolverExact = core.SolverExact
	// SolverCoarseFine solves a curvature-adapted candidate subset and
	// refines around the argmin; certified by capacity + dual bounds.
	SolverCoarseFine = core.SolverCoarseFine
	// SolverLPRound additionally tightens the certificate with the
	// column-generation LP bound and rounds the LP solution to a cover.
	SolverLPRound = core.SolverLPRound
)

// ParseSolver maps a solver's wire name ("exact", "coarse-fine",
// "lp-round") back to its Solver; the empty string parses to SolverExact
// so omitted fields keep their historical meaning.
func ParseSolver(name string) (Solver, error) { return core.ParseSolver(name) }

// Error sentinels. Every layer of the stack (core solver, networked
// platform, facade) returns errors matching these under errors.Is, so
// callers branch on outcome classes instead of string-matching messages.
var (
	// ErrNoBids is returned when an auction is run without bids.
	ErrNoBids = core.ErrNoBids
	// ErrInfeasible is returned by Run when no T̂_g ∈ [T_0, T] admits K
	// participants in every global iteration; the accompanying Result
	// still carries every per-T̂_g WDP outcome for diagnosis.
	ErrInfeasible = core.ErrInfeasible
	// ErrCanceled is returned by Run when its context is canceled
	// mid-sweep; the error also matches the context cause
	// (context.Canceled or context.DeadlineExceeded) under errors.Is.
	ErrCanceled = core.ErrCanceled
	// ErrUnderCoverage marks outcomes in which some global iteration has
	// fewer than K participants: CheckSolution failures on constraint
	// (6a), and degraded platform sessions (SessionReport.Err).
	ErrUnderCoverage = core.ErrUnderCoverage
)

// RunAuction executes the full A_FL auction (Algorithm 1 of the paper):
// it enumerates the feasible numbers of global iterations, solves a
// winner-determination problem for each, and returns the minimum-cost
// solution with schedules, critical-value payments, and the dual
// certificate bounding its distance from optimal.
//
// Deprecated: use Run, which adds context cancellation, functional
// options and the sentinel error surface. RunAuction(bids, cfg) behaves
// exactly like Run(context.Background(), bids, cfg) except that an
// infeasible auction returns (Result{Feasible: false}, nil) here and
// (Result, ErrInfeasible) from Run. Results are bit-identical.
func RunAuction(bids []Bid, cfg Config) (Result, error) {
	return core.RunAuction(bids, cfg)
}

// RunAuctionConcurrent is RunAuction with the independent per-T̂_g
// winner-determination problems fanned out over a worker pool
// (workers ≤ 0 selects GOMAXPROCS). Results are bit-identical to
// RunAuction.
//
// Deprecated: use Run with WithWorkers, which adds context cancellation
// and the sentinel error surface. RunAuctionConcurrent(bids, cfg, n)
// matches Run(context.Background(), bids, cfg, WithWorkers(n)) for n > 0
// and WithWorkers(-1) for n ≤ 0, modulo the infeasibility convention
// described on RunAuction. Results are bit-identical.
func RunAuctionConcurrent(bids []Bid, cfg Config, workers int) (Result, error) {
	return core.RunAuctionConcurrent(bids, cfg, workers)
}

// RunWDP qualifies bids for a fixed T̂_g and solves that single
// winner-determination problem with A_winner (Algorithm 2).
func RunWDP(bids []Bid, tg int, cfg Config) (WDPResult, error) {
	return core.RunWDP(bids, tg, cfg)
}

// NewEngine validates the bid population and precomputes the shared
// incremental-auction context. Use it when the same population is solved
// more than once (what-if sweeps, re-pricing studies, serving layers);
// Engine.Run and Engine.RunConcurrent return results bit-identical to
// RunAuction and RunAuctionConcurrent.
func NewEngine(bids []Bid, cfg Config) (*Engine, error) {
	return core.NewEngine(bids, cfg)
}

// CompileBids builds the columnar form of a bid population. The input
// slice is read once and not retained; the round trip Set.Bids() returns
// the exact rows field-for-field. Compile once and share the handle
// across RunSet, batch Instances and market submissions — a BidSet is
// immutable and safe for concurrent use.
func CompileBids(bids []Bid) *BidSet { return core.CompileBids(bids) }

// NewEngineSet is NewEngine for a pre-compiled population: the columnar
// compile is skipped and the engine shares the caller's BidSet. Results
// are bit-identical to NewEngine on the materialized rows.
func NewEngineSet(set *BidSet, cfg Config) (*Engine, error) {
	return core.NewEngineSet(set, cfg)
}

// Qualified returns the indices of bids qualified for a fixed T̂_g (line 6
// of Algorithm 1).
func Qualified(bids []Bid, tg int, cfg Config) []int {
	return core.Qualified(bids, tg, cfg)
}

// MinTg returns T_0 = ⌈1/(1−θ_min)⌉, the smallest feasible number of
// global iterations for the bid population.
func MinTg(bids []Bid) int { return core.MinTg(bids) }

// CheckSolution verifies an auction outcome against every constraint of
// the paper's ILP (6); use it as defense in depth before paying clients.
func CheckSolution(bids []Bid, res Result, cfg Config) error {
	return core.CheckSolution(bids, res, cfg)
}

// ValidateBids validates a bid population against the auction parameters.
func ValidateBids(bids []Bid, maxT, k int) error { return core.ValidateBids(bids, maxT, k) }

// PaperLocalIters is the simplified T_l(θ) = ⌊10(1−θ)⌋ of the paper's
// evaluation.
func PaperLocalIters(theta float64) float64 { return core.PaperLocalIters(theta) }

// LogLocalIters returns Eq. (2)'s T_l(θ) = η·log(1/θ).
func LogLocalIters(eta float64) LocalIterFunc { return core.LogLocalIters(eta) }
