package afl_test

import (
	"context"
	"math"
	"reflect"
	"testing"

	"github.com/fedauction/afl"
)

// Facade-level solver-tier properties: the exact tier stays certificate-
// free and bit-identical to the historical entry points, both approximate
// tiers certify against the full-enumeration optimum with ratio ≥ 1, and
// the tier a durable market logs is the tier its recovery re-solves under.

func TestRunSolverTiers(t *testing.T) {
	bids, cfg := testWorkload(t, 120, 16, 3)
	exact, err := afl.Run(context.Background(), bids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Cert != nil {
		t.Fatalf("exact tier attached a certificate: %+v", exact.Cert)
	}

	for _, tier := range []afl.Solver{afl.SolverCoarseFine, afl.SolverLPRound} {
		res, err := afl.Run(context.Background(), bids, cfg, afl.WithSolver(tier))
		if err != nil {
			t.Fatalf("%v: %v", tier, err)
		}
		c := res.Cert
		if c == nil {
			t.Fatalf("%v: no certificate", tier)
		}
		if c.Solver != tier {
			t.Fatalf("%v: certificate labeled %v", tier, c.Solver)
		}
		// LowerBound ≤ min_tg OPT(tg) ≤ exact sweep cost ≤ approximate cost.
		if c.LowerBound > exact.Cost+1e-7 {
			t.Fatalf("%v: LB %v exceeds exact cost %v", tier, c.LowerBound, exact.Cost)
		}
		if res.Cost < exact.Cost-1e-7 {
			t.Fatalf("%v: approximate cost %v beats exact %v", tier, res.Cost, exact.Cost)
		}
		if math.IsInf(c.Ratio, 1) || c.Ratio < 1-1e-9 {
			t.Fatalf("%v: ratio %v", tier, c.Ratio)
		}
		if c.Solved > c.Candidates {
			t.Fatalf("%v: solved %d of %d candidates", tier, c.Solved, c.Candidates)
		}
		// The set-handle entry must agree with the row entry under every tier.
		set := afl.CompileBids(bids)
		sres, err := afl.RunSet(context.Background(), set, cfg, afl.WithSolver(tier))
		if err != nil {
			t.Fatalf("%v: RunSet: %v", tier, err)
		}
		if !reflect.DeepEqual(res, sres) {
			t.Fatalf("%v: RunSet diverges from Run", tier)
		}
	}

	// Stride 1 is the documented exact-dense mode of the coarse tier.
	dense, err := afl.Run(context.Background(), bids, cfg,
		afl.WithSolver(afl.SolverCoarseFine), afl.WithStride(1))
	if err != nil {
		t.Fatal(err)
	}
	if dense.Cert == nil || dense.Cert.Solved != dense.Cert.Candidates {
		t.Fatalf("stride 1 skipped candidates: %+v", dense.Cert)
	}
	dense.Cert = nil
	if !reflect.DeepEqual(dense, exact) {
		t.Fatal("stride-1 coarse-fine diverges from exact")
	}
}

func TestRunBatchSolverOverride(t *testing.T) {
	bids, cfg := testWorkload(t, 80, 12, 2)
	instances := []afl.Instance{{Bids: bids, Cfg: cfg}, {Bids: bids, Cfg: cfg}}
	outs, err := afl.RunBatch(context.Background(), instances, afl.WithSolver(afl.SolverCoarseFine))
	if err != nil {
		t.Fatal(err)
	}
	want, err := afl.Run(context.Background(), bids, cfg, afl.WithSolver(afl.SolverCoarseFine))
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("outcome %d: %v", i, o.Err)
		}
		if !reflect.DeepEqual(o.Result, want) {
			t.Fatalf("outcome %d diverges from single-auction coarse-fine run", i)
		}
	}
	// Without the option, per-instance tiers are preserved.
	instances[1].Solver = afl.SolverCoarseFine
	outs, err = afl.RunBatch(context.Background(), instances)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Result.Cert != nil {
		t.Fatal("instance 0 (exact) gained a certificate")
	}
	if !reflect.DeepEqual(outs[1].Result, want) {
		t.Fatal("instance 1 (coarse-fine) diverges")
	}
}

func TestMarketPersistsSolverTier(t *testing.T) {
	bids, cfg := testWorkload(t, 60, 12, 2)
	dir := t.TempDir()
	ctx := context.Background()

	m, err := afl.OpenMarket(ctx, afl.WithDurability(dir),
		afl.WithSolver(afl.SolverCoarseFine), afl.WithSyncEvery(1))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := m.Submit(ctx, "client-a", afl.Instance{Bids: bids, Cfg: cfg})
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Wait(ctx, seq)
	if err != nil {
		t.Fatal(err)
	}
	if out.Solver != afl.SolverCoarseFine.String() {
		t.Fatalf("outcome solver = %q, want %q", out.Solver, afl.SolverCoarseFine)
	}
	if out.CertLowerBound <= 0 || out.CertRatio < 1-1e-9 {
		t.Fatalf("outcome certificate fields: LB %v ratio %v", out.CertLowerBound, out.CertRatio)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery restores the committed outcome verbatim — certificate
	// provenance included — even when the reopened market's own solver
	// configuration differs.
	m2, err := afl.OpenMarket(ctx, afl.WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	got, ok, err := m2.Outcome(seq)
	if err != nil || !ok {
		t.Fatalf("recovered outcome: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, out) {
		t.Fatalf("recovered outcome diverges:\nbefore: %+v\nafter:  %+v", out, got)
	}
}
