# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race cover bench figures ablations vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Full-scale reproduction of the paper's Fig. 3-9 (CSV + ASCII to results/).
figures:
	$(GO) run ./cmd/aflsim -fig all -out results

ablations:
	$(GO) run ./cmd/aflsim -fig none -ablation all -out results

vet:
	$(GO) vet ./...

clean:
	rm -rf results/*.csv
