# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-race race cover bench bench-json bench-big bench-frontier fuzz market-e2e marketsim bench-market figures ablations vet clean api-check api-update

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

test-race: race

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate BENCH_core.json: incremental sweep engine vs the frozen seed
# solver at I ∈ {100, 500, 1000}, the sweep_w{1,2,4,8} worker scaling
# table, the 10⁴-client columnar row, the exact-critical payments paths
# (eager-serial seed vs lazy/parallel chosen-T̂_g pricing) and the batch
# throughput paths.
bench-json:
	$(GO) run ./cmd/benchcore -out BENCH_core.json

# bench-json extended to the large columnar populations: 10⁵- and
# 10⁶-client single-minded instances through CompileBids→RunSet, with the
# worker scaling table at each size. Minutes, not CI material.
bench-big:
	$(GO) run ./cmd/benchcore -big -out BENCH_core.json

# The solver quality-vs-speed frontier at the 10⁵-client population:
# exact vs coarse-fine (default and stride-16) vs lp-round, each row
# carrying its certified approximation ratio, plus the pooled-simplex
# alloc row. The summary reports the fastest tier certified within 1.05×
# and within 1.2× of the exact sweep. Minutes, not CI material (the CI
# bench smoke runs the -quick frontier pair instead).
bench-frontier:
	$(GO) run ./cmd/benchcore -frontier -out BENCH_core.json

# Short fuzzing pass over the fuzz targets (regression corpus always runs
# as part of `make test`).
fuzz:
	$(GO) test -run=FuzzValidateBids -fuzz=FuzzValidateBids -fuzztime=30s ./internal/core/
	$(GO) test -run=FuzzCompileBids -fuzz=FuzzCompileBids -fuzztime=30s ./internal/core/
	$(GO) test -run=FuzzBidJSON -fuzz=FuzzBidJSON -fuzztime=30s ./cmd/aflauction/
	$(GO) test -run=FuzzWorkloadJSON -fuzz=FuzzWorkloadJSON -fuzztime=30s ./internal/workload/
	$(GO) test -run=FuzzWALRecord -fuzz=FuzzWALRecord -fuzztime=30s ./internal/wal/
	$(GO) test -run=FuzzWALSegment -fuzz=FuzzWALSegment -fuzztime=30s ./internal/wal/
	$(GO) test -run=FuzzMarketScript -fuzz=FuzzMarketScript -fuzztime=30s ./internal/marketsim/

# Kill/restart harness for the durable market daemon: crash-point matrix,
# WAL fault injection, rate-limit and admission-control contracts, run
# under the race detector with a flake screen.
market-e2e:
	$(GO) test -race -count=3 ./test/e2e/ ./internal/wal/ ./internal/marketd/

# Adversarial fleet: 1000 seeded strategic sessions against the in-process
# market; exits non-zero if any population empirically beats truthtelling
# under A_FL. Writes throughput/latency to BENCH_market.json.
marketsim:
	$(GO) run ./cmd/marketsim -sessions 1000 -seed 1 -out BENCH_market.json

# Regenerate BENCH_market.json in full: the fleet load figures plus the
# durability fast-path tables — sustained fully durable ingest with and
# without group commit, and cold-restart recovery time at 10³..10⁶
# auctions of history with and without checkpoints. Minutes, not CI
# material (the CI market-e2e job runs the -quick smoke instead).
bench-market:
	$(GO) run ./cmd/marketsim -sessions 1000 -seed 1 -durability -out BENCH_market.json

# Full-scale reproduction of the paper's Fig. 3-9 (CSV + ASCII to results/).
figures:
	$(GO) run ./cmd/aflsim -fig all -out results

ablations:
	$(GO) run ./cmd/aflsim -fig none -ablation all -out results

vet:
	$(GO) vet ./...

# Diff the public API surface against the committed golden file. Run
# `make api-update` after an intentional API change.
api-check:
	@$(GO) doc -all . > /tmp/afl_api_check.txt
	@diff -u API.txt /tmp/afl_api_check.txt || \
		(echo "API surface drifted from API.txt; run 'make api-update' if intentional" && exit 1)

api-update:
	$(GO) doc -all . > API.txt

clean:
	rm -rf results/*.csv
