package afl

import (
	"context"
	"time"

	"github.com/fedauction/afl/internal/colgen"
	"github.com/fedauction/afl/internal/core"
)

// Option configures one Run call. Options are applied in order; the zero
// option set runs the sweep sequentially, uninstrumented, with the
// payment rule taken from cfg — exactly the historical RunAuction
// behaviour.
type Option func(*runConfig)

type runConfig struct {
	workers   int
	queue     int
	obsv      Observer
	now       func() time.Time
	rule      PaymentRule
	ruleSet   bool
	solver    Solver
	solverSet bool
	stride    int

	// Market-only knobs (see OpenMarket).
	walDir          string
	syncEvery       int
	ratePerSec      float64
	rateBurst       int
	maxPending      int
	groupCommit     bool
	syncInterval    time.Duration
	checkpointEvery int
	segmentBytes    int64
	retainOutcomes  int
}

// WithWorkers fans the independent per-T̂_g winner-determination solves
// out over n workers: 0 or 1 runs inline on the calling goroutine, n > 1
// uses n workers (clamped to the number of candidate T̂_g values), and
// n < 0 selects GOMAXPROCS. Every setting returns bit-identical results;
// only wall-clock time changes.
func WithWorkers(n int) Option {
	return func(rc *runConfig) { rc.workers = n }
}

// WithQueue bounds the submission queue of a NewService batch service:
// Submit blocks once n instances are waiting, which is the service's
// backpressure. n <= 0 (or omitting the option) selects twice the worker
// count. The option has no effect on Run or RunBatch, whose inputs are
// already fully materialized.
func WithQueue(n int) Option {
	return func(rc *runConfig) { rc.queue = n }
}

// WithObserver streams structured phase events (auction started, per-T̂_g
// WDP solved, winner accepted, payment computed, auction done) to o
// during the run. A nil o — or omitting the option — disables
// instrumentation entirely: the hot path then performs no timing calls
// and no extra allocations. With WithWorkers(n > 1) the observer must be
// safe for concurrent use, and per-T̂_g events arrive in completion
// order, not T̂_g order.
func WithObserver(o Observer) Option {
	return func(rc *runConfig) { rc.obsv = o }
}

// WithNow injects the timestamp source used for phase latencies (nil or
// omitted selects time.Now). It has no effect without WithObserver; use
// it to golden-test traces with a deterministic clock.
func WithNow(now func() time.Time) Option {
	return func(rc *runConfig) { rc.now = now }
}

// WithPaymentRule overrides the payment rule without touching the
// caller's Config, uniformly across the entry points: Run and RunSet
// override cfg for the one call, RunBatch and NewService override every
// instance's Cfg at intake, and OpenMarket overrides each submission's
// Cfg before its bid record is logged (so a durable market's recovery
// re-solves under the same rule).
func WithPaymentRule(rule PaymentRule) Option {
	return func(rc *runConfig) { rc.rule = rule; rc.ruleSet = true }
}

// WithSolver selects the winner-determination strategy of the T̂_g
// sweep, uniformly across the entry points (Run and RunSet for the one
// call, RunBatch and NewService per intake, OpenMarket per submission —
// persisted in each bid's WAL record so a durable market's recovery
// re-solves under the same tier):
//
//   - SolverExact (the default) solves every candidate — Algorithm 1
//     exactly, bit-identical to historical builds, Result.Cert nil;
//   - SolverCoarseFine solves a curvature-adapted subset of candidates
//     and refines around the argmin;
//   - SolverLPRound additionally tightens the selected T̂_g with the
//     column-generation LP bound and adopts the rounded LP cover when it
//     beats the greedy one.
//
// Approximate tiers attach a Certificate (Result.Cert) bounding
// Cost/LowerBound against the full-enumeration optimum, so callers dial
// speed against certified quality instead of trusting a heuristic.
func WithSolver(s Solver) Option {
	return func(rc *runConfig) { rc.solver = s; rc.solverSet = true }
}

// WithStride sets the base coarse stride of the approximate solver
// tiers: solve every n-th candidate T̂_g, adapting to the observed cost
// curvature. Zero or omitted selects the default (4); 1 solves every
// candidate — bit-identical to the exact sweep, with a certificate
// attached. It has no effect under SolverExact.
func WithStride(n int) Option {
	return func(rc *runConfig) { rc.stride = n }
}

// Run executes the full A_FL auction (Algorithm 1 of the paper) honoring
// ctx and the functional options. It supersedes RunAuction and
// RunAuctionConcurrent, whose behaviours are Run(context.Background(),
// bids, cfg) and Run(ctx, bids, cfg, WithWorkers(n)); results are
// bit-identical across all three for every worker count.
//
// Outcomes map onto the package's sentinel errors:
//
//   - invalid cfg or bids: a validation error (ErrNoBids when bids is
//     empty), with a zero Result;
//   - ctx canceled or expired mid-sweep: partial work is abandoned and
//     the error matches both ErrCanceled and the context cause
//     (context.Canceled / context.DeadlineExceeded) under errors.Is;
//   - sweep complete but no T̂_g admits K participants everywhere:
//     ErrInfeasible, with the Result still carrying every per-T̂_g WDP
//     outcome for diagnosis;
//   - otherwise nil, with the minimum-social-cost solution.
func Run(ctx context.Context, bids []Bid, cfg Config, opts ...Option) (Result, error) {
	rc := applyOptions(opts)
	if rc.ruleSet {
		cfg.PaymentRule = rc.rule
	}
	eng, err := core.NewEngine(bids, cfg)
	if err != nil {
		return Result{}, err
	}
	return eng.RunCtx(ctx, rc.runOptions())
}

// RunSet is Run over a pre-compiled columnar population: the BidSet built
// once by CompileBids is bound directly (no per-call compile, no copy)
// and the result is bit-identical to Run on the materialized rows
// (set.Bids()) under every option combination. It is the single-auction
// entry of the columnar-ingestion facade; for many auctions over one
// population, prefer RunBatch or a Service with Instance.Set, whose
// workers additionally warm-start across instances sharing the handle.
func RunSet(ctx context.Context, set *BidSet, cfg Config, opts ...Option) (Result, error) {
	rc := applyOptions(opts)
	if rc.ruleSet {
		cfg.PaymentRule = rc.rule
	}
	eng, err := core.NewEngineSet(set, cfg)
	if err != nil {
		return Result{}, err
	}
	return eng.RunCtx(ctx, rc.runOptions())
}

// runOptions maps the facade's option state onto the core sweep options,
// installing the column-generation certifier whenever an approximate
// tier could use it (the hook is only consulted by SolverLPRound).
func (rc *runConfig) runOptions() core.RunOptions {
	o := core.RunOptions{
		Workers:  rc.workers,
		Observer: rc.obsv,
		Now:      rc.now,
		Solver:   rc.solver,
		Stride:   rc.stride,
	}
	if rc.solver == SolverLPRound {
		o.LP = colgen.Certifier{}
	}
	return o
}

// applyOptions folds the shared option set into one runConfig; every
// facade entry point (Run, RunSet, RunBatch, NewService, OpenMarket)
// resolves its options through this single site, so an option means the
// same thing everywhere it applies.
func applyOptions(opts []Option) runConfig {
	var rc runConfig
	for _, opt := range opts {
		if opt != nil {
			opt(&rc)
		}
	}
	return rc
}
