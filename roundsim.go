package afl

import "github.com/fedauction/afl/internal/roundsim"

// Wall-clock round simulation (synchronous FedAvg timing, stragglers,
// t_max cutoffs — the execution-time counterpart of constraint (6d)).
type (
	// RoundSimOptions configures SimulateRounds.
	RoundSimOptions = roundsim.Options
	// RoundSimResult aggregates a simulated schedule execution.
	RoundSimResult = roundsim.Result
	// RoundTiming reports one simulated global iteration.
	RoundTiming = roundsim.RoundTiming
)

// SimulateRounds executes an auction outcome under the timing model:
// per-round duration is the slowest on-time participant, participants
// exceeding the cutoff are dropped as stragglers, and rounds retaining
// fewer than k on-time participants fail.
func SimulateRounds(res Result, k int, opts RoundSimOptions) (RoundSimResult, error) {
	return roundsim.Simulate(res, k, opts)
}
