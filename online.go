package afl

import "github.com/fedauction/afl/internal/online"

// Posted-price online procurement (the paper's comparison mechanism [17],
// incentives intact: clients face prices they cannot influence, so
// truthful reporting is dominant; coverage is best-effort rather than
// guaranteed).
type (
	// OnlineConfig parameterizes RunOnline.
	OnlineConfig = online.Config
	// OnlineResult reports an online run.
	OnlineResult = online.Result
)

// RunOnline executes the posted-price mechanism over the bids in the
// given arrival order (indices into bids).
func RunOnline(bids []Bid, arrival []int, cfg OnlineConfig) (OnlineResult, error) {
	return online.Run(bids, arrival, cfg)
}

// ArrivalByStart orders bid indices by availability-window start, the
// natural arrival model for scheduling windows.
func ArrivalByStart(bids []Bid) []int { return online.ArrivalByStart(bids) }
