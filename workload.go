package afl

import (
	"io"

	"github.com/fedauction/afl/internal/workload"
)

// Workload generation (the paper's §VII-A evaluation setup).
type (
	// WorkloadParams describes a synthetic bid population.
	WorkloadParams = workload.Params
	// CostModel selects uniform or resource-proportional claimed costs.
	CostModel = workload.CostModel
)

// Cost models.
const (
	// CostUniform draws claimed costs uniformly (paper text).
	CostUniform = workload.CostUniform
	// CostResource prices bids by their computation/communication load.
	CostResource = workload.CostResource
)

// DefaultWorkloadParams returns the paper's defaults: I=1000 clients, J=5
// bids each, T=50, K=20, t_max=60, cost U[10,50], θ U[0.3,0.8].
func DefaultWorkloadParams() WorkloadParams { return workload.NewDefaultParams() }

// GenerateWorkload draws a reproducible bid population.
func GenerateWorkload(p WorkloadParams) ([]Bid, error) { return workload.Generate(p) }

// WriteBidsJSON writes a bid population as a JSON array.
func WriteBidsJSON(w io.Writer, bids []Bid) error { return workload.WriteBidsJSON(w, bids) }

// ReadBidsJSON reads a JSON array of bids.
func ReadBidsJSON(r io.Reader) ([]Bid, error) { return workload.ReadBidsJSON(r) }

// WriteBidsCSV writes a bid population in the canonical CSV format.
func WriteBidsCSV(w io.Writer, bids []Bid) error { return workload.WriteBidsCSV(w, bids) }

// ReadBidsCSV reads bids in the canonical CSV format.
func ReadBidsCSV(r io.Reader) ([]Bid, error) { return workload.ReadBidsCSV(r) }
