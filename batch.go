package afl

import (
	"context"

	"github.com/fedauction/afl/internal/batch"
	"github.com/fedauction/afl/internal/core"
)

// Batch types, re-exported from the implementation package. The batch
// layer is the throughput surface of the module: where Run solves one
// auction as fast as possible, RunBatch and Service solve many auctions
// per second by sharing one clamped worker pool and recycling pooled
// engine state across instances.
type (
	// Instance is one auction to solve in a batch: a sealed-bid
	// population plus its auction Config. The batch layer never mutates
	// either.
	Instance = batch.Instance
	// Outcome is the per-instance result of a batch run: the instance's
	// Index, its Result, and an Err drawn from the package's sentinel
	// surface (nil, ErrInfeasible with diagnostics, a validation error,
	// or ErrCanceled with the context cause).
	Outcome = batch.Outcome
	// Service is a long-lived batch worker pool with a bounded
	// submission queue, built for serving daemons. Construct with
	// NewService; submit with Submit; consume Results; Close to drain.
	Service = batch.Service
)

// ErrServiceClosed is returned by Service.Submit after Close.
var ErrServiceClosed = batch.ErrClosed

// RunBatch solves every instance over one shared worker pool and returns
// one Outcome per instance, index-aligned with instances. Results are
// bit-identical to solving each instance alone with Run: batching is a
// scheduling decision, never an auction-semantics decision.
//
// The recognized options are WithWorkers, WithObserver, WithNow and
// WithPaymentRule (which overrides every instance's Cfg.PaymentRule for
// this batch). Worker semantics differ from Run in one deliberate way:
// a throughput layer defaults to using the machine, so 0 (or omitting
// WithWorkers) selects GOMAXPROCS rather than inline execution, and the
// width is clamped to the instance count. Each instance's own sweep runs
// sequentially — cross-instance parallelism already saturates the pool.
//
// The only non-nil error is cancellation: instances finished before the
// cancellation keep their results, the rest carry an Err matching
// ErrCanceled, and the returned error matches both ErrCanceled and the
// context cause under errors.Is. No goroutine outlives the call.
func RunBatch(ctx context.Context, instances []Instance, opts ...Option) ([]Outcome, error) {
	rc := applyOptions(opts)
	return batch.Run(ctx, instances, batch.Options{
		Workers:  rc.workers,
		Observer: rc.obsv,
		Now:      rc.now,
		Rule:     rc.ruleOverride(),
		Solver:   rc.solverOverride(),
	})
}

// NewService starts a long-lived batch worker pool for serving daemons:
// auction instances arrive continuously through Service.Submit, outcomes
// stream out of Service.Results, and the bounded queue (WithQueue)
// provides backpressure. ctx bounds the service's whole lifetime —
// canceling it aborts queued and in-flight work — while Service.Close
// performs a graceful drain. Either way no goroutine survives.
//
// The recognized options are WithWorkers (0 or negative selects
// GOMAXPROCS), WithQueue, WithObserver, WithNow and WithPaymentRule
// (applied to every submission's Cfg at intake, like RunBatch's).
func NewService(ctx context.Context, opts ...Option) *Service {
	rc := applyOptions(opts)
	return batch.NewService(ctx, batch.Options{
		Workers:  rc.workers,
		Queue:    rc.queue,
		Observer: rc.obsv,
		Now:      rc.now,
		Rule:     rc.ruleOverride(),
		Solver:   rc.solverOverride(),
	})
}

// ruleOverride maps the facade's WithPaymentRule state onto the pointer
// form the implementation layers share.
func (rc *runConfig) ruleOverride() *core.PaymentRule {
	if !rc.ruleSet {
		return nil
	}
	return &rc.rule
}

// solverOverride maps the facade's WithSolver state onto the pointer
// form: nil when the option was omitted, so instances keep their own
// per-Instance Solver.
func (rc *runConfig) solverOverride() *core.Solver {
	if !rc.solverSet {
		return nil
	}
	return &rc.solver
}
