// Package e2e is the kill/restart harness for the durable market
// daemon. Each test starts the daemon in-process, murders it at a
// WAL-fault-injected point mid-batch, restarts it over the same
// directory, and requires the recovered state byte-identical to an
// uninterrupted golden run — zero lost, zero duplicated sequence
// numbers, whatever the crash left on disk.
package e2e

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/fedauction/afl/internal/batch"
	"github.com/fedauction/afl/internal/marketd"
	"github.com/fedauction/afl/internal/wal"
	"github.com/fedauction/afl/internal/workload"
)

// script is one seeded random kill scenario: how many auctions flow,
// where the process dies, and what extra damage the "disk" takes.
type script struct {
	actions  int    // auctions in the workload
	crashSeq int    // sequence number whose processing kills the market
	point    string // crash point within the commit protocol
	tail     string // post-mortem tail fault: "none", "torn", "dup"
}

var (
	crashPoints = []string{
		marketd.CrashBidLogged, marketd.CrashOutcomeSolved,
		marketd.CrashLedgerPartial, marketd.CrashPreCommit,
		marketd.CrashPostCommit,
	}
	tailFaults = []string{"none", "torn", "dup"}
)

// genScript draws one scenario from a seeded generator, so every CI run
// replays the identical kill schedule.
func genScript(seed int64) script {
	r := rand.New(rand.NewSource(seed))
	a := 6 + r.Intn(7) // 6..12 auctions
	return script{
		actions:  a,
		crashSeq: 1 + r.Intn(a-1),
		point:    crashPoints[r.Intn(len(crashPoints))],
		tail:     tailFaults[r.Intn(len(tailFaults))],
	}
}

// scriptInstances derives the workload from the same seed: small
// populations keep a full scenario under a second.
func scriptInstances(t testing.TB, seed int64, n int) []batch.Instance {
	t.Helper()
	insts := make([]batch.Instance, n)
	for i := range insts {
		p := workload.NewDefaultParams()
		p.Seed = seed*1000003 + int64(i)
		p.Clients = 12
		p.T = 10 + i%3
		p.K = 3
		bids, err := workload.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		insts[i] = batch.Instance{Bids: bids, Cfg: p.Config()}
	}
	return insts
}

// snapshotState is the decoded form of Market.Snapshot.
type snapshotState struct {
	Outcomes []marketd.OutcomeRecord `json:"outcomes"`
	Ledger   []struct {
		Client  int     `json:"client"`
		Payment float64 `json:"payment"`
	} `json:"ledger"`
}

func decodeSnapshot(t testing.TB, snap []byte) snapshotState {
	t.Helper()
	var st snapshotState
	if err := json.Unmarshal(snap, &st); err != nil {
		t.Fatalf("undecodable snapshot %q: %v", snap, err)
	}
	return st
}

// goldenRun solves the whole workload on an uninterrupted durable
// market and returns its canonical state.
func goldenRun(t testing.TB, insts []batch.Instance) []byte {
	t.Helper()
	m, err := marketd.Open(context.Background(), marketd.Config{Dir: t.TempDir(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, inst := range insts {
		if _, err := m.Submit(context.Background(), fmt.Sprintf("c%d", i%3), inst); err != nil {
			t.Fatalf("golden submit %d: %v", i, err)
		}
	}
	for i := range insts {
		if _, err := m.Wait(context.Background(), i); err != nil {
			t.Fatalf("golden wait %d: %v", i, err)
		}
	}
	snap := m.Snapshot()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	return snap
}

// injectTailFault damages the WAL the way a real crash can: a torn
// partial frame appended at the tail, or the last complete frame
// duplicated. Committed bytes are never rewritten — recovery must keep
// all of them.
func injectTailFault(t testing.TB, dir, fault string) {
	t.Helper()
	if fault == "none" {
		return
	}
	path := filepath.Join(dir, marketd.WALFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var extra []byte
	switch fault {
	case "torn":
		// A header promising 64 payload bytes followed by 3: the torn
		// write of a record that never finished.
		extra = []byte{64, 0, 0, 0, 0xaa, 0xbb, 0xcc, 0xdd, 1, 2, 3}
	case "dup":
		// Re-append the last complete frame verbatim.
		var last []byte
		for rest := data; ; {
			_, n, ok := wal.DecodeFrame(rest)
			if !ok {
				break
			}
			last = rest[:n]
			rest = rest[n:]
		}
		if last == nil {
			t.Fatal("no complete frame to duplicate")
		}
		extra = last
	default:
		t.Fatalf("unknown tail fault %q", fault)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(extra); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestKillRestartBitIdenticalRecovery is the headline e2e: for a set of
// seeded scripts, run the workload into a crash-point kill plus a tail
// fault, restart over the same directory, finish the workload, and
// require the final snapshot byte-identical to the golden run with
// every sequence number present exactly once.
func TestKillRestartBitIdenticalRecovery(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := genScript(seed)
			insts := scriptInstances(t, seed, sc.actions)
			golden := goldenRun(t, insts)
			gst := decodeSnapshot(t, golden)

			// ledger_partial fires inside the pay-record loop; an
			// infeasible crash target has no winners, so the point could
			// never fire and the market would outlive the script.
			// Remap deterministically (the golden run knows).
			point := sc.point
			if point == marketd.CrashLedgerPartial && len(gst.Outcomes[sc.crashSeq].Winners) == 0 {
				point = marketd.CrashPreCommit
			}

			dir := t.TempDir()
			m1, err := marketd.Open(context.Background(), marketd.Config{
				Dir: dir, Workers: 2,
				Crash: func(p string, seq int) bool { return p == point && seq == sc.crashSeq },
			})
			if err != nil {
				t.Fatal(err)
			}
			// Fire the whole batch without waiting — the kill lands
			// mid-batch, with submissions in the queue and on workers.
			acked := 0
			for i, inst := range insts {
				seq, err := m1.Submit(context.Background(), fmt.Sprintf("c%d", i%3), inst)
				if seq < 0 {
					if !errors.Is(err, marketd.ErrClosed) {
						t.Fatalf("submit %d: %v", i, err)
					}
					break // market already dead; the rest goes to the restart
				}
				if seq != i {
					t.Fatalf("submit %d acked as seq %d", i, seq)
				}
				acked++
			}
			<-m1.Dead()
			if !m1.Killed() {
				t.Fatal("market survived its crash point")
			}
			m1.Close()
			if acked <= sc.crashSeq {
				t.Fatalf("crash target %d not acked (acked %d)", sc.crashSeq, acked)
			}

			injectTailFault(t, dir, sc.tail)

			// Restart over the wreckage, finish the workload.
			m2, err := marketd.Open(context.Background(), marketd.Config{Dir: dir, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer m2.Close()
			if sc.tail != "none" && m2.RecoveredFaults() == 0 {
				t.Fatalf("tail fault %q absorbed without being counted", sc.tail)
			}
			for seq := 0; seq < acked; seq++ {
				if _, err := m2.Wait(context.Background(), seq); err != nil {
					t.Fatalf("recovered wait %d: %v", seq, err)
				}
			}
			for i := acked; i < len(insts); i++ {
				seq, err := m2.Submit(context.Background(), fmt.Sprintf("c%d", i%3), insts[i])
				if err != nil {
					t.Fatalf("post-restart submit %d: %v", i, err)
				}
				if seq != i {
					t.Fatalf("post-restart submit %d acked as seq %d", i, seq)
				}
				if _, err := m2.Wait(context.Background(), seq); err != nil {
					t.Fatal(err)
				}
			}

			snap := m2.Snapshot()
			if !bytes.Equal(snap, golden) {
				t.Fatalf("recovered state diverged from golden (point %s, tail %s):\n got %s\nwant %s",
					point, sc.tail, snap, golden)
			}
			st := decodeSnapshot(t, snap)
			if len(st.Outcomes) != sc.actions {
				t.Fatalf("%d outcomes, want %d", len(st.Outcomes), sc.actions)
			}
			for i, oc := range st.Outcomes {
				if oc.Seq != i {
					t.Fatalf("outcome %d carries seq %d: lost or duplicated sequence", i, oc.Seq)
				}
			}
		})
	}
}

// TestRestartIdempotentAcrossRepeatedKills kills the market at the same
// point twice in a row — recover, kill again mid-recovery workload,
// recover again — pinning that recovery composes: a WAL that has
// already absorbed one crash absorbs the next the same way.
func TestRestartIdempotentAcrossRepeatedKills(t *testing.T) {
	insts := scriptInstances(t, 99, 6)
	golden := goldenRun(t, insts)
	dir := t.TempDir()

	submitAll := func(m *marketd.Market, from int) int {
		acked := from
		for i := from; i < len(insts); i++ {
			seq, err := m.Submit(context.Background(), "c", insts[i])
			if seq < 0 {
				if !errors.Is(err, marketd.ErrClosed) {
					t.Fatalf("submit %d: %v", i, err)
				}
				break
			}
			if seq != i {
				t.Fatalf("submit %d acked as seq %d", i, seq)
			}
			acked++
		}
		return acked
	}

	m1, err := marketd.Open(context.Background(), marketd.Config{
		Dir: dir, Workers: 1,
		Crash: func(p string, seq int) bool { return p == marketd.CrashPreCommit && seq == 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	acked := submitAll(m1, 0)
	<-m1.Dead()
	m1.Close()

	// Second lifetime: dies again, this time post-commit on seq 3. The
	// kill can land while Open is still re-queuing the backlog, in which
	// case Open itself reports the death — both shapes are legitimate
	// crash timings and recovery must absorb either.
	m2, err := marketd.Open(context.Background(), marketd.Config{
		Dir: dir, Workers: 1,
		Crash: func(p string, seq int) bool { return p == marketd.CrashPostCommit && seq == 3 },
	})
	if err == nil {
		acked = submitAll(m2, acked)
		<-m2.Dead()
		m2.Close()
	}

	// Third lifetime survives and finishes.
	m3, err := marketd.Open(context.Background(), marketd.Config{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	for i := acked; i < len(insts); i++ {
		if _, err := m3.Submit(context.Background(), "c", insts[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range insts {
		if _, err := m3.Wait(context.Background(), i); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
	}
	if snap := m3.Snapshot(); !bytes.Equal(snap, golden) {
		t.Fatalf("state diverged after two kills:\n got %s\nwant %s", snap, golden)
	}
}

// injectSegmentFault damages the segmented WAL the way a crash during
// the checkpoint machinery can: a torn partial frame at the tail of the
// newest segment, or the newest checkpoint record cut off mid-write.
// Committed bytes in earlier segments are never rewritten.
func injectSegmentFault(t testing.TB, dir, fault string) {
	t.Helper()
	if fault == "none" {
		return
	}
	segs, err := wal.Segments(filepath.Join(dir, marketd.WALFileName))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no WAL segments to damage")
	}
	switch fault {
	case "torn-tail":
		last := segs[len(segs)-1].Path
		f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{64, 0, 0, 0, 0xaa, 0xbb, 0xcc, 0xdd, 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	case "torn-ckpt":
		// Cut the newest checkpoint segment off mid-record: its first
		// frame turns invalid, so recovery must fall back to the previous
		// start point. When the crash landed between rotation and the
		// snapshot append the segment is already empty — that IS the
		// mid-checkpoint wreckage, nothing more to do.
		for i := len(segs) - 1; i >= 0; i-- {
			if !segs[i].Checkpoint {
				continue
			}
			if segs[i].Size > 0 {
				if err := os.Truncate(segs[i].Path, segs[i].Size/2); err != nil {
					t.Fatal(err)
				}
			}
			return
		}
	default:
		t.Fatalf("unknown segment fault %q", fault)
	}
}

// TestKillRestartCheckpointMatrix extends the kill/restart matrix to
// the checkpoint machinery: the market dies inside checkpointLocked —
// between rotation and the snapshot append, or after the snapshot but
// before the prune — optionally with the wreckage further damaged
// (torn active-segment tail, torn checkpoint record). Recovery must
// still converge byte-identically to the uninterrupted golden run,
// with and without group commit.
func TestKillRestartCheckpointMatrix(t *testing.T) {
	points := []string{marketd.CrashCheckpointRotated, marketd.CrashCheckpointWritten}
	faults := []string{"none", "torn-tail", "torn-ckpt"}
	for pi, point := range points {
		for fi, fault := range faults {
			point, fault := point, fault
			group := (pi+fi)%2 == 0
			t.Run(fmt.Sprintf("%s/%s/group=%v", point, fault, group), func(t *testing.T) {
				t.Parallel()
				seed := int64(40 + pi*10 + fi)
				insts := scriptInstances(t, seed, 9)
				golden := goldenRun(t, insts)

				dir := t.TempDir()
				cfg := marketd.Config{
					Dir: dir, Workers: 2,
					CheckpointEvery: 3, SegmentRecords: 8, GroupCommit: group,
					Crash: func(p string, seq int) bool { return p == point },
				}
				m1, err := marketd.Open(context.Background(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				acked := 0
				for i, inst := range insts {
					seq, err := m1.Submit(context.Background(), fmt.Sprintf("c%d", i%3), inst)
					if seq < 0 {
						if !errors.Is(err, marketd.ErrClosed) {
							t.Fatalf("submit %d: %v", i, err)
						}
						break
					}
					if seq != i {
						t.Fatalf("submit %d acked as seq %d", i, seq)
					}
					acked++
				}
				<-m1.Dead()
				if !m1.Killed() {
					t.Fatalf("market survived crash point %s", point)
				}
				m1.Close()

				injectSegmentFault(t, dir, fault)

				m2, err := marketd.Open(context.Background(), marketd.Config{
					Dir: dir, Workers: 2,
					CheckpointEvery: 3, SegmentRecords: 8, GroupCommit: group,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer m2.Close()
				for seq := 0; seq < acked; seq++ {
					if _, err := m2.Wait(context.Background(), seq); err != nil {
						t.Fatalf("recovered wait %d: %v", seq, err)
					}
				}
				for i := acked; i < len(insts); i++ {
					seq, err := m2.Submit(context.Background(), fmt.Sprintf("c%d", i%3), insts[i])
					if err != nil {
						t.Fatalf("post-restart submit %d: %v", i, err)
					}
					if seq != i {
						t.Fatalf("post-restart submit %d acked as seq %d", i, seq)
					}
					if _, err := m2.Wait(context.Background(), seq); err != nil {
						t.Fatal(err)
					}
				}
				snap := m2.Snapshot()
				if !bytes.Equal(snap, golden) {
					t.Fatalf("recovered state diverged from golden (point %s, fault %s, group %v):\n got %s\nwant %s",
						point, fault, group, snap, golden)
				}
			})
		}
	}
}

// TestKillRestartSegmentedMatrix reruns the original crash-point matrix
// on a fully configured fast-path market — segment rotation, periodic
// checkpoints, group commit — so the legacy commit-protocol crash
// points stay byte-identical under the new machinery too.
func TestKillRestartSegmentedMatrix(t *testing.T) {
	for seed := int64(21); seed <= 24; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := genScript(seed)
			insts := scriptInstances(t, seed, sc.actions)
			golden := goldenRun(t, insts)
			gst := decodeSnapshot(t, golden)
			point := sc.point
			if point == marketd.CrashLedgerPartial && len(gst.Outcomes[sc.crashSeq].Winners) == 0 {
				point = marketd.CrashPreCommit
			}

			dir := t.TempDir()
			cfg := marketd.Config{
				Dir: dir, Workers: 2,
				CheckpointEvery: 2, SegmentRecords: 6, GroupCommit: seed%2 == 0,
				Crash: func(p string, seq int) bool { return p == point && seq == sc.crashSeq },
			}
			m1, err := marketd.Open(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			acked := 0
			for i, inst := range insts {
				seq, err := m1.Submit(context.Background(), fmt.Sprintf("c%d", i%3), inst)
				if seq < 0 {
					if !errors.Is(err, marketd.ErrClosed) {
						t.Fatalf("submit %d: %v", i, err)
					}
					break
				}
				acked++
			}
			<-m1.Dead()
			if !m1.Killed() {
				t.Fatal("market survived its crash point")
			}
			m1.Close()
			if acked <= sc.crashSeq {
				t.Fatalf("crash target %d not acked (acked %d)", sc.crashSeq, acked)
			}

			m2, err := marketd.Open(context.Background(), marketd.Config{
				Dir: dir, Workers: 2,
				CheckpointEvery: 2, SegmentRecords: 6, GroupCommit: seed%2 == 0,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer m2.Close()
			for seq := 0; seq < acked; seq++ {
				if _, err := m2.Wait(context.Background(), seq); err != nil {
					t.Fatalf("recovered wait %d: %v", seq, err)
				}
			}
			for i := acked; i < len(insts); i++ {
				if _, err := m2.Submit(context.Background(), fmt.Sprintf("c%d", i%3), insts[i]); err != nil {
					t.Fatalf("post-restart submit %d: %v", i, err)
				}
				if _, err := m2.Wait(context.Background(), i); err != nil {
					t.Fatal(err)
				}
			}
			if snap := m2.Snapshot(); !bytes.Equal(snap, golden) {
				t.Fatalf("recovered state diverged from golden (point %s):\n got %s\nwant %s", point, snap, golden)
			}
		})
	}
}
