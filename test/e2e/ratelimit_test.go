package e2e

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/fedauction/afl/internal/marketd"
	"github.com/fedauction/afl/internal/platform"
)

// postAuction submits one auction over real HTTP and returns the
// response; the body is rebuilt per call (the server consumes it).
func postAuction(t testing.TB, url, client string, body []byte) *http.Response {
	t.Helper()
	payload := bytes.Replace(body, []byte(`"client":""`), []byte(`"client":"`+client+`"`), 1)
	resp, err := http.Post(url+"/v1/auctions", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// auctionBody renders one submission body with an empty client key for
// postAuction to fill in.
func auctionBody(t testing.TB) []byte {
	t.Helper()
	inst := scriptInstances(t, 55, 1)[0]
	cw, err := marketd.FromConfig(inst.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(marketd.SubmitRequest{Client: "", Bids: inst.Bids, Cfg: cw})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRateLimitOverHTTPOnVirtualClock drives the daemon's 429 contract
// over a real listener with virtual time: the test goroutine is the
// only clock party, so every refill is an explicit Sleep — no wall
// time, deterministic under -count=3.
func TestRateLimitOverHTTPOnVirtualClock(t *testing.T) {
	clk := platform.NewVirtualClock()
	m, err := marketd.Open(context.Background(), marketd.Config{
		Workers: 1, RatePerSec: 1, Burst: 2, Now: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	srv := httptest.NewServer(marketd.Handler(m))
	defer srv.Close()
	body := auctionBody(t)

	clk.Go(func() {
		// Burst: two immediate admissions, then rejection with advice.
		for i := 0; i < 2; i++ {
			if resp := postAuction(t, srv.URL, "alice", body); resp.StatusCode != http.StatusOK {
				t.Errorf("burst submit %d = %d, want 200", i, resp.StatusCode)
			}
		}
		resp := postAuction(t, srv.URL, "alice", body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Errorf("over-burst = %d, want 429", resp.StatusCode)
		}
		if got := resp.Header.Get("Retry-After"); got != "1" {
			t.Errorf("Retry-After = %q, want \"1\"", got)
		}
		// Isolation: bob's bucket is untouched by alice's exhaustion.
		for i := 0; i < 2; i++ {
			if resp := postAuction(t, srv.URL, "bob", body); resp.StatusCode != http.StatusOK {
				t.Errorf("isolated submit %d = %d, want 200", i, resp.StatusCode)
			}
		}
		// Honoring the advisory: one virtual second accrues one token.
		clk.Sleep(time.Second)
		if resp := postAuction(t, srv.URL, "alice", body); resp.StatusCode != http.StatusOK {
			t.Errorf("post-wait submit = %d, want 200", resp.StatusCode)
		}
		// And only one: the next submission is rejected again.
		if resp := postAuction(t, srv.URL, "alice", body); resp.StatusCode != http.StatusTooManyRequests {
			t.Errorf("second post-wait submit = %d, want 429", resp.StatusCode)
		}
		// A long idle stretch refills to burst, not beyond.
		clk.Sleep(time.Hour)
		admitted := 0
		for i := 0; i < 4; i++ {
			if resp := postAuction(t, srv.URL, "alice", body); resp.StatusCode == http.StatusOK {
				admitted++
			}
		}
		if admitted != 2 {
			t.Errorf("admitted %d after long idle, want burst of 2", admitted)
		}
	})
	clk.Wait()
}

// TestBackpressureBoundsPendingDepth oversubscribes the daemon 10× past
// its admission bound while the only worker is wedged, and requires the
// pending depth to stay bounded throughout: excess submissions are
// turned away with 503 + Retry-After instead of queueing without limit.
func TestBackpressureBoundsPendingDepth(t *testing.T) {
	const maxPending = 4
	gate := make(chan struct{})
	gated := scriptInstances(t, 56, 1)[0]
	gated.Cfg.LocalIters = func(theta float64) float64 {
		<-gate
		return 1
	}

	// Volatile market: a LocalIters func has no wire form, and admission
	// control is an edge property, not a durability one.
	m, err := marketd.Open(context.Background(), marketd.Config{
		Workers: 1, Queue: 2 * maxPending, MaxPending: maxPending,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	srv := httptest.NewServer(marketd.Handler(m))
	defer srv.Close()
	body := auctionBody(t)

	// Wedge the worker on the gate so admitted submissions accumulate.
	if _, err := m.Submit(context.Background(), "wedge", gated); err != nil {
		t.Fatal(err)
	}

	accepted, rejected := 0, 0
	for i := 0; i < 10*maxPending; i++ {
		resp := postAuction(t, srv.URL, "flood", body)
		switch resp.StatusCode {
		case http.StatusOK:
			accepted++
		case http.StatusServiceUnavailable:
			rejected++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("503 without Retry-After")
			}
		default:
			t.Fatalf("flood submit %d = %d", i, resp.StatusCode)
		}
		// The bound is an invariant, not an endpoint: check every step.
		if _, _, pending, depth := m.Counts(); pending > maxPending || depth > 2*maxPending {
			t.Fatalf("step %d: pending %d (bound %d), queue depth %d (bound %d)",
				i, pending, maxPending, depth, 2*maxPending)
		}
	}
	if accepted+rejected != 10*maxPending {
		t.Fatalf("accounted %d+%d submissions, want %d", accepted, rejected, 10*maxPending)
	}
	// The wedge holds one pending slot, so the edge admits the rest of
	// the bound and no more.
	if accepted != maxPending-1 {
		t.Fatalf("accepted %d, want %d", accepted, maxPending-1)
	}

	// Release the wedge: everything admitted commits, nothing vanished.
	close(gate)
	for seq := 0; seq < accepted+1; seq++ {
		if _, err := m.Wait(context.Background(), seq); err != nil {
			t.Fatalf("wait %d after release: %v", seq, err)
		}
	}
	if _, committed, pending, _ := m.Counts(); committed != accepted+1 || pending != 0 {
		t.Fatalf("committed %d pending %d, want %d/0", committed, pending, accepted+1)
	}
}
