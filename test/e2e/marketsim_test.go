package e2e

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/fedauction/afl/internal/marketd"
	"github.com/fedauction/afl/internal/marketsim"
	"github.com/fedauction/afl/internal/obs"
)

// fleetShape is the CI smoke fleet: a thousand seeded strategic sessions
// (the acceptance floor) through the real service stack.
func fleetShape(sessions, workers int) marketsim.FleetConfig {
	cfg := marketsim.DefaultFleetConfig()
	cfg.Sessions = sessions
	cfg.Workers = workers
	return cfg
}

// TestMarketsimFleetSmoke is the adversarial-fleet CI gate: 1000 seeded
// strategic sessions against an in-process marketd.Market (the real
// batch scheduler, pooled engines and commit protocol), asserting that
// no strategic population — shading learners, the collusive ring, the
// sybil splitter, the stragglers — beats truthtelling under A_FL, and
// that the load artifact accounts for every solve.
func TestMarketsimFleetSmoke(t *testing.T) {
	metrics := obs.NewMetrics(nil)
	m, err := marketd.Open(context.Background(), marketd.Config{Workers: 4, Observer: metrics})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	cfg := fleetShape(1000, 8)
	cfg.Target = marketsim.MarketTarget{M: m}
	cfg.Metrics = metrics
	rep, bench, err := marketsim.RunFleet(context.Background(), cfg)
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	if err := rep.AssertTruthful(); err != nil {
		t.Fatalf("truthfulness assertion: %v", err)
	}
	if want := cfg.Sessions * cfg.Rounds; bench.Auctions != want {
		t.Fatalf("bench accounted %d auctions, want %d", bench.Auctions, want)
	}
	if bench.AuctionsPerSec <= 0 || bench.P99Ms < bench.P50Ms {
		t.Fatalf("bench shape wrong: %+v", bench)
	}
	// The open market shed nothing: every session's solve committed.
	if bench.RateLimited != 0 || bench.AdmissionRejected != 0 {
		t.Fatalf("unexpected edge rejections: %d/%d", bench.RateLimited, bench.AdmissionRejected)
	}
	// The service-side observer saw the whole fleet pass through the
	// batch layer.
	if got := metrics.Registry().Counter("afl_batch_auctions_total").Value(); got < int64(bench.Auctions) {
		t.Fatalf("service observer saw %d auctions, fleet submitted %d", got, bench.Auctions)
	}
}

// TestMarketsimReplayIsByteIdentical is the replay acceptance: the same
// fleet seed must produce a byte-identical economics report across
// independent runs, different worker counts, and different service
// targets — the inline engine, the in-process market, and the real HTTP
// daemon all solve the same instances to the same bytes.
func TestMarketsimReplayIsByteIdentical(t *testing.T) {
	const sessions = 60
	ctx := context.Background()

	run := func(name string, cfg marketsim.FleetConfig) []byte {
		t.Helper()
		rep, _, err := marketsim.RunFleet(ctx, cfg)
		if err != nil {
			t.Fatalf("%s fleet: %v", name, err)
		}
		b, err := rep.Encode()
		if err != nil {
			t.Fatalf("%s encode: %v", name, err)
		}
		return b
	}

	engine := fleetShape(sessions, 1)
	engine.Target = marketsim.EngineTarget{}
	golden := run("engine", engine)

	engine8 := fleetShape(sessions, 8)
	engine8.Target = marketsim.EngineTarget{}
	if got := run("engine/8workers", engine8); string(got) != string(golden) {
		t.Fatalf("worker count changed the report:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", golden, got)
	}

	m, err := marketd.Open(ctx, marketd.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	market := fleetShape(sessions, 4)
	market.Target = marketsim.MarketTarget{M: m}
	if got := run("market", market); string(got) != string(golden) {
		t.Fatalf("market target changed the report:\n--- engine ---\n%s\n--- market ---\n%s", golden, got)
	}

	mh, err := marketd.Open(ctx, marketd.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mh.Close()
	srv := httptest.NewServer(marketd.Handler(mh))
	defer srv.Close()
	httpCfg := fleetShape(sessions, 4)
	httpCfg.Target = &marketsim.HTTPTarget{BaseURL: srv.URL}
	if got := run("http", httpCfg); string(got) != string(golden) {
		t.Fatalf("HTTP target changed the report:\n--- engine ---\n%s\n--- http ---\n%s", golden, got)
	}
}

// TestMarketsimHTTPEdgePressure squeezes a small fleet through a daemon
// with a tight admission bound: the edge must shed with 503s, the
// compliant client must retry through them, and every session must still
// complete with the same economics as an unconstrained run.
func TestMarketsimHTTPEdgePressure(t *testing.T) {
	const sessions = 30
	ctx := context.Background()

	engine := fleetShape(sessions, 1)
	engine.Target = marketsim.EngineTarget{}
	goldenRep, _, err := marketsim.RunFleet(ctx, engine)
	if err != nil {
		t.Fatal(err)
	}
	golden, _ := goldenRep.Encode()

	metrics := obs.NewMetrics(nil)
	m, err := marketd.Open(ctx, marketd.Config{Workers: 1, MaxPending: 1, Observer: metrics})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	srv := httptest.NewServer(marketd.Handler(m))
	defer srv.Close()

	cfg := fleetShape(sessions, 8)
	target := &marketsim.HTTPTarget{BaseURL: srv.URL, RetryWait: 2 * time.Millisecond}
	cfg.Target = target
	cfg.Metrics = metrics
	rep, bench, err := marketsim.RunFleet(ctx, cfg)
	if err != nil {
		t.Fatalf("pressured fleet: %v", err)
	}
	got, _ := rep.Encode()
	if string(got) != string(golden) {
		t.Fatalf("edge pressure changed the economics:\n--- unconstrained ---\n%s\n--- pressured ---\n%s", golden, got)
	}
	// With 8 concurrent sessions against MaxPending=1 the edge must have
	// pushed back at least once, and the server-side counter must agree
	// with the bench artifact.
	if bench.AdmissionRejected == 0 {
		t.Skip("admission bound never tripped on this machine; counters untestable")
	}
	if server := metrics.Registry().Counter("afl_admission_rejected_total").Value(); server != bench.AdmissionRejected {
		t.Fatalf("bench says %d admission rejects, server observed %d", bench.AdmissionRejected, server)
	}
	_, clientSide := target.Rejected()
	if clientSide == 0 {
		t.Fatal("client-side 503 counter never moved despite server rejections")
	}
}
