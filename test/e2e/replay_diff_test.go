package e2e

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/fedauction/afl/internal/batch"
	"github.com/fedauction/afl/internal/marketd"
	"github.com/fedauction/afl/internal/workload"
)

// TestReplay200AuctionWALTwice is the differential recovery test: build
// a 200-auction WAL, replay it twice into fresh markets, and require
// the recovered ledgers, outcome indices and payments byte-identical
// across the recoveries and to the original market's state. Replay must
// be a pure function of the log.
func TestReplay200AuctionWALTwice(t *testing.T) {
	const auctions = 200
	insts := make([]batch.Instance, auctions)
	for i := range insts {
		p := workload.NewDefaultParams()
		p.Seed = int64(7000 + i)
		p.Clients = 10
		p.T = 10 + i%3
		p.K = 2
		bids, err := workload.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		// Infeasible draws stay in: an infeasible outcome is a committed
		// record too, and replay must restore it just as faithfully.
		insts[i] = batch.Instance{Bids: bids, Cfg: p.Config()}
	}

	dir := t.TempDir()
	m0, err := marketd.Open(context.Background(), marketd.Config{Dir: dir, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, inst := range insts {
		if _, err := m0.Submit(context.Background(), fmt.Sprintf("tenant-%d", i%7), inst); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	for i := 0; i < auctions; i++ {
		if _, err := m0.Wait(context.Background(), i); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
	}
	original := m0.Snapshot()
	if err := m0.Close(); err != nil {
		t.Fatal(err)
	}
	walBefore, err := os.ReadFile(filepath.Join(dir, marketd.WALFileName))
	if err != nil {
		t.Fatal(err)
	}

	var snaps [2][]byte
	for round := range snaps {
		m, err := marketd.Open(context.Background(), marketd.Config{Dir: dir, Workers: 4})
		if err != nil {
			t.Fatalf("recovery %d: %v", round, err)
		}
		if faults := m.RecoveredFaults(); faults != 0 {
			t.Fatalf("recovery %d absorbed %d faults from a clean log", round, faults)
		}
		next, committed, pending, _ := m.Counts()
		if next != auctions || committed != auctions || pending != 0 {
			t.Fatalf("recovery %d: next %d committed %d pending %d, want %d/%d/0",
				round, next, committed, pending, auctions, auctions)
		}
		snaps[round] = m.Snapshot()
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}

	if !bytes.Equal(snaps[0], original) {
		t.Fatal("first recovery diverged from the original market state")
	}
	if !bytes.Equal(snaps[0], snaps[1]) {
		t.Fatal("second recovery diverged from the first: replay is not deterministic")
	}
	st := decodeSnapshot(t, snaps[1])
	if len(st.Outcomes) != auctions {
		t.Fatalf("recovered %d outcomes, want %d", len(st.Outcomes), auctions)
	}
	for i, oc := range st.Outcomes {
		if oc.Seq != i {
			t.Fatalf("outcome %d carries seq %d", i, oc.Seq)
		}
	}

	// Recovery of a clean log is read-only: the file must be untouched.
	walAfter, err := os.ReadFile(filepath.Join(dir, marketd.WALFileName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(walBefore, walAfter) {
		t.Fatalf("clean replay rewrote the log: %d bytes -> %d bytes", len(walBefore), len(walAfter))
	}
}
