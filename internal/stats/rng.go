// Package stats provides the deterministic random-number, sampling, and
// summary-statistics primitives shared by the workload generators, the
// federated-learning simulator, and the experiment harness.
//
// All randomness in this repository flows through *stats.RNG so that every
// experiment is reproducible from a single seed.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// RNG is a seeded source of the random primitives used across the
// repository. It wraps math/rand.Rand with the distributions the paper's
// evaluation setup needs (uniform ranges, non-repeated draws, Gaussians).
//
// RNG is not safe for concurrent use; derive independent streams with Split.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a generator seeded with seed. Equal seeds yield identical
// streams on all platforms.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent generator from the current stream. The
// derived stream is a deterministic function of the parent's state, so a
// fixed seed still reproduces the whole experiment tree.
func (g *RNG) Split() *RNG {
	return NewRNG(g.r.Int63())
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// IntRange returns a uniform integer in the closed interval [lo, hi].
func (g *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic(fmt.Sprintf("stats: IntRange bounds inverted [%d, %d]", lo, hi))
	}
	return lo + g.r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// FloatRange returns a uniform float64 in the half-open interval [lo, hi).
func (g *RNG) FloatRange(lo, hi float64) float64 {
	if hi < lo {
		panic(fmt.Sprintf("stats: FloatRange bounds inverted [%g, %g]", lo, hi))
	}
	return lo + (hi-lo)*g.r.Float64()
}

// NormFloat64 returns a standard normal variate.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Gaussian returns a normal variate with the given mean and standard
// deviation.
func (g *RNG) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// Perm returns a uniform random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// SampleWithoutReplacement returns k distinct integers drawn uniformly from
// the closed interval [lo, hi], in ascending order. The paper's evaluation
// setup uses this to carve 2J non-repeated draws into J availability
// windows. It panics if the interval holds fewer than k integers.
func (g *RNG) SampleWithoutReplacement(k, lo, hi int) []int {
	n := hi - lo + 1
	if k > n {
		panic(fmt.Sprintf("stats: cannot draw %d distinct values from [%d, %d]", k, lo, hi))
	}
	// Floyd's algorithm: O(k) expected work, no O(n) scratch space.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := lo + g.r.Intn(j+1)
		if _, dup := chosen[t]; dup {
			t = lo + j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// WeightedSampleWithoutReplacement draws k distinct indices from
// [0, len(weights)) with probability proportional to the (non-negative)
// weights, removing each chosen index from the pool. The result is
// ascending. It panics when k exceeds the number of positive weights.
func (g *RNG) WeightedSampleWithoutReplacement(k int, weights []float64) []int {
	pool := make([]float64, len(weights))
	var total float64
	positive := 0
	for i, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("stats: negative weight %g at %d", w, i))
		}
		pool[i] = w
		total += w
		if w > 0 {
			positive++
		}
	}
	if k > positive {
		panic(fmt.Sprintf("stats: cannot draw %d distinct values from %d positive weights", k, positive))
	}
	out := make([]int, 0, k)
	for len(out) < k {
		target := g.r.Float64() * total
		var acc float64
		chosen := -1
		for i, w := range pool {
			if w == 0 {
				continue
			}
			acc += w
			if target < acc {
				chosen = i
				break
			}
		}
		if chosen == -1 {
			// Float accumulation landed past the end; take the last
			// remaining positive weight.
			for i := len(pool) - 1; i >= 0; i-- {
				if pool[i] > 0 {
					chosen = i
					break
				}
			}
		}
		out = append(out, chosen)
		total -= pool[chosen]
		pool[chosen] = 0
	}
	sort.Ints(out)
	return out
}

// Exponential returns an exponential variate with the given rate λ.
func (g *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("stats: Exponential rate must be positive, got %g", rate))
	}
	return -math.Log(1-g.r.Float64()) / rate
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }
