package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a float64 sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics of xs. An empty sample yields
// the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Percentile(xs, 50)
	return s
}

// String renders the summary in a compact single-line form.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.Stddev, s.Min, s.Median, s.Max)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It panics on an empty sample or an
// out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty sample")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %g out of [0,100]", p))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Harmonic returns the n-th harmonic number H_n = sum_{t=1..n} 1/t, the
// quantity the paper's approximation ratio H_{T̂_g}·ω is built from
// (Lemma 5). Harmonic(0) is 0.
func Harmonic(n int) float64 {
	var h float64
	for t := 1; t <= n; t++ {
		h += 1 / float64(t)
	}
	return h
}
