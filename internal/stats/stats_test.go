package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("equal seeds must yield identical streams")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(1)
	s1 := parent.Split()
	s2 := parent.Split()
	if s1.Float64() == s2.Float64() && s1.Float64() == s2.Float64() {
		t.Fatal("split streams look identical")
	}
	// Splitting is deterministic given the parent seed.
	p2 := NewRNG(1)
	r1 := p2.Split()
	orig := NewRNG(1).Split()
	for i := 0; i < 20; i++ {
		if r1.Float64() != orig.Float64() {
			t.Fatal("split streams not reproducible from parent seed")
		}
	}
}

func TestIntRange(t *testing.T) {
	rng := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := rng.IntRange(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntRange(5,9) = %d", v)
		}
	}
	if got := rng.IntRange(4, 4); got != 4 {
		t.Fatalf("degenerate range = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("inverted range must panic")
		}
	}()
	rng.IntRange(5, 4)
}

func TestFloatRange(t *testing.T) {
	rng := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := rng.FloatRange(1.5, 2.5)
		if v < 1.5 || v >= 2.5 {
			t.Fatalf("FloatRange(1.5,2.5) = %v", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("inverted range must panic")
		}
	}()
	rng.FloatRange(2, 1)
}

func TestSampleWithoutReplacement(t *testing.T) {
	rng := NewRNG(5)
	for trial := 0; trial < 200; trial++ {
		k := rng.IntRange(1, 10)
		lo := rng.IntRange(0, 20)
		hi := lo + rng.IntRange(k-1, k+20)
		got := rng.SampleWithoutReplacement(k, lo, hi)
		if len(got) != k {
			t.Fatalf("len = %d, want %d", len(got), k)
		}
		if !sort.IntsAreSorted(got) {
			t.Fatalf("not sorted: %v", got)
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < lo || v > hi {
				t.Fatalf("value %d outside [%d,%d]", v, lo, hi)
			}
			if seen[v] {
				t.Fatalf("duplicate %d in %v", v, got)
			}
			seen[v] = true
		}
	}
	// Exhaustive draw returns the whole interval.
	got := rng.SampleWithoutReplacement(5, 3, 7)
	for i, want := range []int{3, 4, 5, 6, 7} {
		if got[i] != want {
			t.Fatalf("exhaustive draw = %v", got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized draw must panic")
		}
	}()
	rng.SampleWithoutReplacement(3, 1, 2)
}

func TestSampleWithoutReplacementUniformCoverage(t *testing.T) {
	// Every value of a small interval should be hit over many draws.
	rng := NewRNG(11)
	counts := map[int]int{}
	for i := 0; i < 2000; i++ {
		for _, v := range rng.SampleWithoutReplacement(2, 0, 9) {
			counts[v]++
		}
	}
	for v := 0; v <= 9; v++ {
		if counts[v] == 0 {
			t.Fatalf("value %d never drawn", v)
		}
	}
}

func TestExponentialAndBernoulli(t *testing.T) {
	rng := NewRNG(13)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		x := rng.Exponential(2)
		if x < 0 {
			t.Fatalf("negative exponential %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Exponential(2) mean = %v, want ≈ 0.5", mean)
	}
	heads := 0
	for i := 0; i < n; i++ {
		if rng.Bernoulli(0.3) {
			heads++
		}
	}
	if p := float64(heads) / n; math.Abs(p-0.3) > 0.02 {
		t.Fatalf("Bernoulli(0.3) rate = %v", p)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive rate must panic")
		}
	}()
	rng.Exponential(0)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 || s.Median != 2.5 {
		t.Fatalf("Summarize = %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(5.0/3.0)) > 1e-12 {
		t.Fatalf("Stddev = %v", s.Stddev)
	}
	if (Summary{}) != Summarize(nil) {
		t.Fatal("empty sample must yield zero summary")
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5},
	}
	for _, tc := range tests {
		if got := Percentile(xs, tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("P%v = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Fatalf("singleton percentile = %v", got)
	}
	// Percentile must not mutate its input.
	unsorted := []float64{3, 1, 2}
	Percentile(unsorted, 50)
	if unsorted[0] != 3 || unsorted[1] != 1 || unsorted[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
	for _, bad := range []float64{-1, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("p=%v must panic", bad)
				}
			}()
			Percentile(xs, bad)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty sample must panic")
		}
	}()
	Percentile(nil, 50)
}

func TestMeanSum(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean wrong")
	}
	if Sum([]float64{1, 2, 3}) != 6 {
		t.Fatal("Sum wrong")
	}
}

func TestHarmonic(t *testing.T) {
	tests := []struct {
		n    int
		want float64
	}{
		{0, 0}, {1, 1}, {2, 1.5}, {4, 25.0 / 12},
	}
	for _, tc := range tests {
		if got := Harmonic(tc.n); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("Harmonic(%d) = %v, want %v", tc.n, got, tc.want)
		}
	}
	// H_n ≈ ln n + γ for large n.
	if got := Harmonic(100000); math.Abs(got-(math.Log(100000)+0.5772156649)) > 1e-4 {
		t.Fatalf("Harmonic(1e5) = %v", got)
	}
}

// Property: percentile bounds and monotonicity on random samples.
func TestPercentileProperties(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p25 := Percentile(xs, 25)
		p50 := Percentile(xs, 50)
		p75 := Percentile(xs, 75)
		s := Summarize(xs)
		return p25 <= p50 && p50 <= p75 && s.Min <= p25 && p75 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize mean lies within [min, max].
func TestSummarizeProperties(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e100 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Mean+1e-9*math.Abs(s.Mean) && s.Mean <= s.Max+1e-9*math.Abs(s.Max) && s.Stddev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedSampleWithoutReplacement(t *testing.T) {
	rng := NewRNG(17)
	weights := []float64{0, 1, 5, 0, 2}
	counts := map[int]int{}
	for trial := 0; trial < 3000; trial++ {
		got := rng.WeightedSampleWithoutReplacement(2, weights)
		if len(got) != 2 || got[0] == got[1] || !sort.IntsAreSorted(got) {
			t.Fatalf("bad sample %v", got)
		}
		for _, i := range got {
			if weights[i] == 0 {
				t.Fatalf("zero-weight index %d drawn", i)
			}
			counts[i]++
		}
	}
	// Index 2 has the dominant weight; it must be drawn most often.
	if counts[2] <= counts[1] || counts[2] <= counts[4] {
		t.Fatalf("weighting ignored: %v", counts)
	}
	// Exhaustive draw over positive weights.
	got := rng.WeightedSampleWithoutReplacement(3, weights)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("exhaustive draw = %v", got)
	}
	for _, bad := range []func(){
		func() { rng.WeightedSampleWithoutReplacement(4, weights) },
		func() { rng.WeightedSampleWithoutReplacement(1, []float64{-1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestRNGMiscPrimitives(t *testing.T) {
	rng := NewRNG(21)
	if v := rng.Int63(); v < 0 {
		t.Fatalf("Int63 negative: %d", v)
	}
	if v := rng.Intn(5); v < 0 || v >= 5 {
		t.Fatalf("Intn out of range: %d", v)
	}
	g := rng.Gaussian(10, 0)
	if g != 10 {
		t.Fatalf("zero-σ Gaussian = %v", g)
	}
	perm := rng.Perm(6)
	seen := map[int]bool{}
	for _, v := range perm {
		if v < 0 || v >= 6 || seen[v] {
			t.Fatalf("bad permutation %v", perm)
		}
		seen[v] = true
	}
	xs := []int{1, 2, 3, 4, 5}
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 15 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
	var sumN float64
	for i := 0; i < 10000; i++ {
		sumN += rng.NormFloat64()
	}
	if m := sumN / 10000; m < -0.1 || m > 0.1 {
		t.Fatalf("NormFloat64 mean %v", m)
	}
}
