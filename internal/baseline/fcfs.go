package baseline

import (
	"sort"

	"github.com/fedauction/afl/internal/core"
)

// FCFS is the first-come first-served baseline [21]: bids are considered
// in non-decreasing order of their start time a_ij and accepted whenever
// they contribute to uncovered iterations, paying each winner its bid.
type FCFS struct{}

var _ Mechanism = FCFS{}

// Name implements Mechanism.
func (FCFS) Name() string { return "FCFS" }

// Solve implements Mechanism.
func (FCFS) Solve(bids []core.Bid, qualified []int, tg int, cfg core.Config) Outcome {
	order := make([]int, len(qualified))
	copy(order, qualified)
	sort.Slice(order, func(a, b int) bool {
		ba, bb := bids[order[a]], bids[order[b]]
		if ba.Start != bb.Start {
			return ba.Start < bb.Start
		}
		return order[a] < order[b]
	})
	return acceptInOrder(bids, order, tg, cfg)
}

// Greedy is the static greedy baseline [20]: bids are considered in
// non-decreasing order of per-round price b_ij/c_ij and accepted whenever
// they contribute to uncovered iterations, paying each winner its bid.
type Greedy struct{}

var _ Mechanism = Greedy{}

// Name implements Mechanism.
func (Greedy) Name() string { return "Greedy" }

// Solve implements Mechanism.
func (Greedy) Solve(bids []core.Bid, qualified []int, tg int, cfg core.Config) Outcome {
	order := make([]int, len(qualified))
	copy(order, qualified)
	sort.Slice(order, func(a, b int) bool {
		ka := bids[order[a]].Price / float64(bids[order[a]].Rounds)
		kb := bids[order[b]].Price / float64(bids[order[b]].Rounds)
		if ka != kb {
			return ka < kb
		}
		return order[a] < order[b]
	})
	return acceptInOrder(bids, order, tg, cfg)
}

// acceptInOrder scans bids in the given order, accepting each bid that
// still contributes coverage, one bid per client, until every iteration
// has K participants.
func acceptInOrder(bids []core.Bid, order []int, tg int, cfg core.Config) Outcome {
	out := Outcome{Tg: tg}
	tr := newTracker(tg, cfg.K)
	taken := make(map[int]bool) // client → already won
	for _, idx := range order {
		if tr.done() {
			break
		}
		b := bids[idx]
		if taken[b.Client] {
			continue
		}
		slots, gain := tr.representative(b)
		if gain == 0 {
			continue
		}
		tr.commit(slots)
		taken[b.Client] = true
		out.Winners = append(out.Winners, core.Winner{
			BidIndex: idx,
			Bid:      b,
			Slots:    slots,
			Payment:  b.Price,
		})
		out.Cost += b.Price
		out.Payment += b.Price
	}
	out.Feasible = tr.done()
	if !out.Feasible {
		return Outcome{Tg: tg}
	}
	return out
}
