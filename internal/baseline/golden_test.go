package baseline

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/fedauction/afl/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.json from the current outputs")

// goldenWinner pins one accepted bid with its schedule.
type goldenWinner struct {
	Client int   `json:"client"`
	Index  int   `json:"index"`
	Slots  []int `json:"slots"`
}

// goldenOutcome pins one (workload, mechanism) result.
type goldenOutcome struct {
	Seed      int64          `json:"seed"`
	Mechanism string         `json:"mechanism"`
	Feasible  bool           `json:"feasible"`
	Tg        int            `json:"tg,omitempty"`
	Cost      float64        `json:"cost,omitempty"`
	Payment   float64        `json:"payment,omitempty"`
	Winners   []goldenWinner `json:"winners,omitempty"`
}

// round pins floats at a precision safely inside float64 determinism but
// readable in the golden file.
func round(v float64) float64 { return math.Round(v*1e6) / 1e6 }

// goldenOutcomes runs every baseline over the seeded workloads,
// mirroring the differential approach internal/seedwdp uses for A_FL:
// the exact winners, schedules, costs and payments are pinned so any
// behavioural drift in FCFS/Greedy/A_online fails loudly.
func goldenOutcomes(t *testing.T) []goldenOutcome {
	t.Helper()
	var out []goldenOutcome
	for _, seed := range []int64{101, 202, 303} {
		p := workload.NewDefaultParams()
		p.Seed = seed
		p.Clients = 40
		p.BidsPerUser = 2
		p.T = 12
		p.K = 4
		bids, err := workload.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		cfg := p.Config()
		for _, m := range mechanisms() {
			res, ok := RunOverTg(m, bids, cfg)
			g := goldenOutcome{Seed: seed, Mechanism: m.Name(), Feasible: ok}
			if ok {
				g.Tg = res.Tg
				g.Cost = round(res.Cost)
				g.Payment = round(res.Payment)
				for _, w := range res.Winners {
					g.Winners = append(g.Winners, goldenWinner{
						Client: w.Bid.Client, Index: w.Bid.Index,
						Slots: append([]int(nil), w.Slots...),
					})
				}
			}
			out = append(out, g)
		}
	}
	return out
}

// TestGoldenBaselines compares the current baseline outputs against the
// checked-in golden file. Regenerate intentionally with
//
//	go test ./internal/baseline -run TestGoldenBaselines -update-golden
func TestGoldenBaselines(t *testing.T) {
	got := goldenOutcomes(t)
	path := filepath.Join("testdata", "golden.json")
	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d outcomes", path, len(got))
		return
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create it): %v", err)
	}
	var want []goldenOutcome
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("outcome count drifted: %d vs golden %d", len(got), len(want))
	}
	for i := range want {
		if diff := diffOutcome(want[i], got[i]); diff != "" {
			t.Errorf("outcome %d (%s seed %d): %s", i, want[i].Mechanism, want[i].Seed, diff)
		}
	}
}

func diffOutcome(want, got goldenOutcome) string {
	switch {
	case want.Seed != got.Seed || want.Mechanism != got.Mechanism:
		return fmt.Sprintf("identity drifted: got %s/%d", got.Mechanism, got.Seed)
	case want.Feasible != got.Feasible:
		return fmt.Sprintf("feasible = %v, golden %v", got.Feasible, want.Feasible)
	case want.Tg != got.Tg:
		return fmt.Sprintf("tg = %d, golden %d", got.Tg, want.Tg)
	case math.Abs(want.Cost-got.Cost) > 1e-6:
		return fmt.Sprintf("cost = %v, golden %v", got.Cost, want.Cost)
	case math.Abs(want.Payment-got.Payment) > 1e-6:
		return fmt.Sprintf("payment = %v, golden %v", got.Payment, want.Payment)
	case len(want.Winners) != len(got.Winners):
		return fmt.Sprintf("%d winners, golden %d", len(got.Winners), len(want.Winners))
	}
	for j := range want.Winners {
		w, g := want.Winners[j], got.Winners[j]
		if w.Client != g.Client || w.Index != g.Index {
			return fmt.Sprintf("winner %d is %d/%d, golden %d/%d", j, g.Client, g.Index, w.Client, w.Index)
		}
		if len(w.Slots) != len(g.Slots) {
			return fmt.Sprintf("winner %d schedule length drifted", j)
		}
		for s := range w.Slots {
			if w.Slots[s] != g.Slots[s] {
				return fmt.Sprintf("winner %d slots %v, golden %v", j, g.Slots, w.Slots)
			}
		}
	}
	return ""
}

// TestGoldenWorkloadsAreSane guards the golden inputs themselves: every
// pinned outcome must describe a valid solution of its workload (winner
// schedules inside windows, coverage satisfied when feasible), so the
// golden file can never silently pin a broken state.
func TestGoldenWorkloadsAreSane(t *testing.T) {
	for _, g := range goldenOutcomes(t) {
		if !g.Feasible {
			t.Errorf("%s on seed %d infeasible; golden workloads should all be solvable", g.Mechanism, g.Seed)
			continue
		}
		covered := make(map[int]int)
		for _, w := range g.Winners {
			for _, s := range w.Slots {
				if s < 1 || s > g.Tg {
					t.Errorf("%s seed %d: slot %d outside [1, %d]", g.Mechanism, g.Seed, s, g.Tg)
				}
				covered[s]++
			}
		}
		for s := 1; s <= g.Tg; s++ {
			if covered[s] < 4 { // K of the golden workloads
				t.Errorf("%s seed %d: iteration %d covered %d < K", g.Mechanism, g.Seed, s, covered[s])
			}
		}
		if g.Cost <= 0 || g.Payment < g.Cost-1e-6 {
			t.Errorf("%s seed %d: cost %v payment %v inconsistent", g.Mechanism, g.Seed, g.Cost, g.Payment)
		}
	}
}
