package baseline

import (
	"testing"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/stats"
)

func testConfig(tg, k int) core.Config { return core.Config{T: tg, K: k} }

func exampleBids() []core.Bid {
	return []core.Bid{
		{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 2, Rounds: 1},
		{Client: 1, Price: 6, Theta: 0.5, Start: 2, End: 3, Rounds: 2},
		{Client: 2, Price: 5, Theta: 0.5, Start: 1, End: 3, Rounds: 2},
	}
}

func allIdx(bids []core.Bid) []int {
	out := make([]int, len(bids))
	for i := range bids {
		out[i] = i
	}
	return out
}

func mechanisms() []Mechanism {
	return []Mechanism{FCFS{}, Greedy{}, AOnline{}}
}

func TestMechanismNames(t *testing.T) {
	want := map[string]bool{"FCFS": true, "Greedy": true, "A_online": true}
	for _, m := range mechanisms() {
		if !want[m.Name()] {
			t.Fatalf("unexpected mechanism name %q", m.Name())
		}
	}
}

func TestBaselinesSolveExample(t *testing.T) {
	bids := exampleBids()
	for _, m := range mechanisms() {
		t.Run(m.Name(), func(t *testing.T) {
			out := m.Solve(bids, allIdx(bids), 3, testConfig(3, 1))
			if !out.Feasible {
				t.Fatal("example must be feasible")
			}
			assertValidOutcome(t, bids, out, 3, 1)
			if out.Cost <= 0 {
				t.Fatalf("cost = %v", out.Cost)
			}
		})
	}
}

func TestFCFSOrder(t *testing.T) {
	// FCFS must take the earliest-starting bid even when it is expensive.
	bids := []core.Bid{
		{Client: 0, Price: 100, Theta: 0.5, Start: 1, End: 3, Rounds: 3},
		{Client: 1, Price: 1, Theta: 0.5, Start: 2, End: 3, Rounds: 2},
		{Client: 2, Price: 1, Theta: 0.5, Start: 1, End: 3, Rounds: 3},
	}
	out := FCFS{}.Solve(bids, allIdx(bids), 3, testConfig(3, 1))
	if !out.Feasible {
		t.Fatal("infeasible")
	}
	if out.Winners[0].BidIndex != 0 {
		t.Fatalf("FCFS first pick = bid %d, want bid 0 (earliest, lowest index)", out.Winners[0].BidIndex)
	}
}

func TestGreedyOrder(t *testing.T) {
	// Greedy must take the lowest per-round price first: bid 1 at 1/2=0.5.
	bids := []core.Bid{
		{Client: 0, Price: 9, Theta: 0.5, Start: 1, End: 3, Rounds: 3},
		{Client: 1, Price: 1, Theta: 0.5, Start: 2, End: 3, Rounds: 2},
		{Client: 2, Price: 30, Theta: 0.5, Start: 1, End: 3, Rounds: 3},
	}
	out := Greedy{}.Solve(bids, allIdx(bids), 3, testConfig(3, 1))
	if !out.Feasible {
		t.Fatal("infeasible")
	}
	if out.Winners[0].BidIndex != 1 {
		t.Fatalf("Greedy first pick = bid %d, want bid 1", out.Winners[0].BidIndex)
	}
	// 9/3=3 beats 30/3=10 for the remaining slot.
	if out.Winners[1].BidIndex != 0 {
		t.Fatalf("Greedy second pick = bid %d, want bid 0", out.Winners[1].BidIndex)
	}
	if out.Cost != 10 {
		t.Fatalf("cost = %v, want 10", out.Cost)
	}
}

func TestAOnlinePaysAtLeastBids(t *testing.T) {
	rng := stats.NewRNG(5)
	for trial := 0; trial < 40; trial++ {
		bids, tg, k := randomInstance(rng)
		out := AOnline{}.Solve(bids, allIdx(bids), tg, testConfig(tg, k))
		if !out.Feasible {
			continue
		}
		if out.Payment < out.Cost-1e-9 {
			t.Fatalf("trial %d: total payment %v below total cost %v", trial, out.Payment, out.Cost)
		}
		assertValidOutcome(t, bids, out, tg, k)
	}
}

func TestBaselinesInfeasible(t *testing.T) {
	// One client cannot provide K=2 coverage.
	bids := []core.Bid{{Client: 0, Price: 1, Theta: 0.5, Start: 1, End: 3, Rounds: 3}}
	for _, m := range mechanisms() {
		out := m.Solve(bids, allIdx(bids), 3, testConfig(3, 2))
		if out.Feasible {
			t.Fatalf("%s: expected infeasible", m.Name())
		}
		if len(out.Winners) != 0 || out.Cost != 0 {
			t.Fatalf("%s: infeasible outcome must be empty, got %+v", m.Name(), out)
		}
	}
	for _, m := range mechanisms() {
		out := m.Solve(nil, nil, 3, testConfig(3, 1))
		if out.Feasible {
			t.Fatalf("%s: empty instance cannot be feasible", m.Name())
		}
	}
}

func TestBaselinesValidOnRandomInstances(t *testing.T) {
	rng := stats.NewRNG(77)
	for trial := 0; trial < 60; trial++ {
		bids, tg, k := randomInstance(rng)
		for _, m := range mechanisms() {
			out := m.Solve(bids, allIdx(bids), tg, testConfig(tg, k))
			if !out.Feasible {
				continue
			}
			assertValidOutcome(t, bids, out, tg, k)
		}
	}
}

func TestAFLNeverWorseThanBaselinesPerWDP(t *testing.T) {
	// A_winner's adaptive greedy should usually beat the static orders;
	// assert it is never beaten by more than numerical noise... it CAN be
	// beaten occasionally (greedy orders explore different solution
	// shapes), so assert the aggregate instead: over many instances the
	// mean cost of A_winner does not exceed any baseline's mean.
	rng := stats.NewRNG(123)
	sums := map[string]float64{}
	n := 0
	for trial := 0; trial < 80; trial++ {
		bids, tg, k := randomInstance(rng)
		cfg := testConfig(tg, k)
		qual := allIdx(bids)
		res := core.SolveWDP(bids, qual, tg, cfg)
		if !res.Feasible {
			continue
		}
		outs := map[string]float64{"A_winner": res.Cost}
		feasibleForAll := true
		for _, m := range mechanisms() {
			out := m.Solve(bids, qual, tg, cfg)
			if !out.Feasible {
				feasibleForAll = false
				break
			}
			outs[m.Name()] = out.Cost
		}
		if !feasibleForAll {
			continue
		}
		n++
		for name, c := range outs {
			sums[name] += c
		}
	}
	if n < 10 {
		t.Fatalf("only %d jointly feasible instances", n)
	}
	for _, m := range mechanisms() {
		if sums["A_winner"] > sums[m.Name()]+1e-9 {
			t.Fatalf("A_winner mean cost %.2f exceeds %s mean cost %.2f over %d instances",
				sums["A_winner"]/float64(n), m.Name(), sums[m.Name()]/float64(n), n)
		}
	}
}

func TestRunOverTg(t *testing.T) {
	bids := []core.Bid{
		{Client: 0, Price: 2, Theta: 0.4, Start: 1, End: 2, Rounds: 2},
		{Client: 1, Price: 2, Theta: 0.4, Start: 1, End: 2, Rounds: 2},
		{Client: 2, Price: 100, Theta: 0.4, Start: 1, End: 3, Rounds: 3},
	}
	cfg := core.Config{T: 3, K: 1}
	out, ok := RunOverTg(Greedy{}, bids, cfg)
	if !ok {
		t.Fatal("RunOverTg infeasible")
	}
	if out.Tg != 2 || out.Cost != 2 {
		t.Fatalf("best = T̂_g %d cost %v, want T̂_g 2 cost 2", out.Tg, out.Cost)
	}
	// Infeasible everywhere.
	_, ok = RunOverTg(Greedy{}, bids[:1], core.Config{T: 3, K: 2})
	if ok {
		t.Fatal("expected infeasibility")
	}
}

// assertValidOutcome checks the structural WDP constraints for a baseline
// outcome: coverage, windows, rounds, one bid per client.
func assertValidOutcome(t *testing.T, bids []core.Bid, out Outcome, tg, k int) {
	t.Helper()
	cover := make([]int, tg+1)
	clients := map[int]bool{}
	var cost float64
	for _, w := range out.Winners {
		if clients[w.Bid.Client] {
			t.Fatalf("client %d accepted twice", w.Bid.Client)
		}
		clients[w.Bid.Client] = true
		if len(w.Slots) != w.Bid.Rounds {
			t.Fatalf("bid %v scheduled %d slots", w.Bid, len(w.Slots))
		}
		seen := map[int]bool{}
		for _, s := range w.Slots {
			if s < 1 || s > tg || s < w.Bid.Start || s > w.Bid.End || seen[s] {
				t.Fatalf("bad slot %d for %v", s, w.Bid)
			}
			seen[s] = true
			cover[s]++
		}
		cost += w.Bid.Price
	}
	for s := 1; s <= tg; s++ {
		if cover[s] < k {
			t.Fatalf("slot %d coverage %d < %d", s, cover[s], k)
		}
	}
	if diff := cost - out.Cost; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("cost mismatch: reported %v recomputed %v", out.Cost, cost)
	}
}

func randomInstance(rng *stats.RNG) (bids []core.Bid, tg, k int) {
	tg = rng.IntRange(2, 10)
	k = rng.IntRange(1, 3)
	clients := rng.IntRange(k+2, 14)
	for c := 0; c < clients; c++ {
		n := rng.IntRange(1, 3)
		for j := 0; j < n; j++ {
			start := rng.IntRange(1, tg)
			end := rng.IntRange(start, tg)
			bids = append(bids, core.Bid{
				Client: c,
				Index:  j,
				Price:  float64(rng.IntRange(1, 50)),
				Theta:  rng.FloatRange(0.2, 0.6),
				Start:  start,
				End:    end,
				Rounds: rng.IntRange(1, end-start+1),
			})
		}
	}
	return bids, tg, k
}
