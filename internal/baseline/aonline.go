package baseline

import (
	"math"
	"sort"

	"github.com/fedauction/afl/internal/core"
)

// AOnline is the online mechanism of [17] adapted to the procurement
// setting, as described in §VII-A of the paper: a per-iteration unit
// payment function starts at an upper bound U when an iteration is empty
// and decays exponentially to a lower bound L as it fills,
//
//	p_t(γ) = U·(L/U)^(γ/K),
//
// so early contributions to scarce iterations are paid generously and
// saturated iterations pay little. Bids arrive in non-decreasing start
// time; each client is accepted with the schedule maximizing its utility
// Σ_t p_t − b_ij, provided the utility is non-negative.
//
// The pure online pass does not guarantee K-coverage, so a repair phase
// (the Greedy order over the remaining bids) completes the solution; the
// repaired winners are paid their bids. Repair keeps social costs
// comparable across mechanisms on the same instances.
type AOnline struct{}

var _ Mechanism = AOnline{}

// Name implements Mechanism.
func (AOnline) Name() string { return "A_online" }

// Solve implements Mechanism.
func (AOnline) Solve(bids []core.Bid, qualified []int, tg int, cfg core.Config) Outcome {
	out := Outcome{Tg: tg}
	if tg < 1 || len(qualified) == 0 {
		return out
	}
	tr := newTracker(tg, cfg.K)
	taken := make(map[int]bool)

	// Payment-function bounds from the qualified bids' per-round prices.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, idx := range qualified {
		pr := bids[idx].Price / float64(bids[idx].Rounds)
		lo = math.Min(lo, pr)
		hi = math.Max(hi, pr)
	}
	if lo <= 0 {
		lo = 1e-9
	}
	if hi < lo {
		hi = lo
	}
	unitPay := func(gamma int) float64 {
		return hi * math.Pow(lo/hi, float64(gamma)/float64(cfg.K))
	}

	// Online pass in arrival (start-time) order.
	order := make([]int, len(qualified))
	copy(order, qualified)
	sort.Slice(order, func(a, b int) bool {
		ba, bb := bids[order[a]], bids[order[b]]
		if ba.Start != bb.Start {
			return ba.Start < bb.Start
		}
		return order[a] < order[b]
	})
	for _, idx := range order {
		if tr.done() {
			break
		}
		b := bids[idx]
		if taken[b.Client] {
			continue
		}
		slots, pay, gain := bestUtilitySchedule(tr, b, unitPay)
		if gain == 0 || pay < b.Price {
			continue // negative utility: the client declines
		}
		tr.commit(slots)
		taken[b.Client] = true
		out.Winners = append(out.Winners, core.Winner{
			BidIndex: idx, Bid: b, Slots: slots, Payment: pay,
		})
		out.Cost += b.Price
		out.Payment += pay
	}

	// Repair pass: cover what the online pass left open, cheapest
	// per-round price first, paying bids.
	if !tr.done() {
		repair := make([]int, 0, len(qualified))
		for _, idx := range qualified {
			if !taken[bids[idx].Client] {
				repair = append(repair, idx)
			}
		}
		sort.Slice(repair, func(a, b int) bool {
			ka := bids[repair[a]].Price / float64(bids[repair[a]].Rounds)
			kb := bids[repair[b]].Price / float64(bids[repair[b]].Rounds)
			if ka != kb {
				return ka < kb
			}
			return repair[a] < repair[b]
		})
		for _, idx := range repair {
			if tr.done() {
				break
			}
			b := bids[idx]
			if taken[b.Client] {
				continue
			}
			slots, gain := tr.representative(b)
			if gain == 0 {
				continue
			}
			tr.commit(slots)
			taken[b.Client] = true
			out.Winners = append(out.Winners, core.Winner{
				BidIndex: idx, Bid: b, Slots: slots, Payment: b.Price,
			})
			out.Cost += b.Price
			out.Payment += b.Price
		}
	}
	out.Feasible = tr.done()
	if !out.Feasible {
		return Outcome{Tg: tg}
	}
	return out
}

// bestUtilitySchedule picks the c_ij iterations of the bid's window with
// the highest current unit payments (available iterations only carry
// value), returning the schedule, its total payment and the number of
// available iterations it covers.
func bestUtilitySchedule(tr *tracker, b core.Bid, unitPay func(int) float64) (slots []int, pay float64, gain int) {
	lo, hi := tr.windowSlots(b)
	cand := make([]int, 0, hi-lo+1)
	for t := lo; t <= hi; t++ {
		cand = append(cand, t)
	}
	if len(cand) < b.Rounds {
		return nil, 0, 0
	}
	value := func(t int) float64 {
		if tr.gamma[t-1] >= tr.k {
			return 0
		}
		return unitPay(tr.gamma[t-1])
	}
	sort.Slice(cand, func(a, c int) bool {
		va, vc := value(cand[a]), value(cand[c])
		if va != vc {
			return va > vc
		}
		return cand[a] < cand[c]
	})
	cand = cand[:b.Rounds]
	for _, t := range cand {
		if v := value(t); v > 0 {
			pay += v
			gain++
		}
	}
	sort.Ints(cand)
	return cand, pay, gain
}
