// Package baseline implements the three comparison algorithms of the
// paper's evaluation (§VII-A):
//
//   - FCFS [21]: first-come first-served by bid start time;
//   - Greedy [20]: non-decreasing per-round price b_ij/c_ij;
//   - A_online [17]: an online mechanism driven by a per-iteration payment
//     function, accepting bids whose utility against the current prices is
//     non-negative.
//
// All baselines solve the same fixed-T̂_g winner-determination problem as
// core.SolveWDP (coverage K per global iteration, one bid per client,
// schedules inside availability windows) so their social costs are
// directly comparable, and RunOverTg wraps any of them in the same T̂_g
// enumeration A_FL performs.
package baseline

import (
	"sort"

	"github.com/fedauction/afl/internal/core"
)

// Outcome is the result of a baseline mechanism on one WDP.
type Outcome struct {
	// Tg is the number of global iterations of the solved WDP.
	Tg int
	// Feasible reports whether full K-coverage was reached.
	Feasible bool
	// Cost is the social cost Σ b_ij of the accepted bids.
	Cost float64
	// Payment is the total remuneration the mechanism pays (pay-bid for
	// FCFS and Greedy, the payment-function total for A_online).
	Payment float64
	// Winners lists accepted bids with their schedules.
	Winners []core.Winner
}

// Mechanism is a winner-determination heuristic comparable to A_winner.
type Mechanism interface {
	// Name identifies the mechanism in experiment output.
	Name() string
	// Solve determines winners for the fixed-T̂_g WDP over the qualified
	// bid indices. Implementations must not mutate bids.
	Solve(bids []core.Bid, qualified []int, tg int, cfg core.Config) Outcome
}

// RunOverTg enumerates T̂_g ∈ [T_0, T] exactly as A_FL does (Algorithm 1)
// and returns the mechanism's minimum-cost feasible outcome. The boolean
// reports whether any T̂_g was feasible.
func RunOverTg(m Mechanism, bids []core.Bid, cfg core.Config) (Outcome, bool) {
	var best Outcome
	found := false
	for tg := core.MinTg(bids); tg <= cfg.T; tg++ {
		out := m.Solve(bids, core.Qualified(bids, tg, cfg), tg, cfg)
		if !out.Feasible {
			continue
		}
		if !found || out.Cost < best.Cost {
			best = out
			found = true
		}
	}
	return best, found
}

// tracker maintains per-iteration coverage counts during a baseline run.
type tracker struct {
	tg    int
	k     int
	gamma []int // gamma[t-1] = γ_t
	// covered = Σ_t min(γ_t, K); full coverage at k·tg.
	covered int
}

func newTracker(tg, k int) *tracker {
	return &tracker{tg: tg, k: k, gamma: make([]int, tg)}
}

func (tr *tracker) done() bool { return tr.covered >= tr.k*tr.tg }

// windowSlots returns the bid's effective window clipped to the horizon.
func (tr *tracker) windowSlots(b core.Bid) (lo, hi int) {
	hi = b.End
	if hi > tr.tg {
		hi = tr.tg
	}
	return b.Start, hi
}

// representative returns the c_ij least-covered iterations of the bid's
// window (the same representative-schedule rule A_winner uses) and the
// number of them that are still available.
func (tr *tracker) representative(b core.Bid) (slots []int, gain int) {
	lo, hi := tr.windowSlots(b)
	cand := make([]int, 0, hi-lo+1)
	for t := lo; t <= hi; t++ {
		cand = append(cand, t)
	}
	if len(cand) < b.Rounds {
		return nil, 0
	}
	sort.Slice(cand, func(a, c int) bool {
		ga, gc := tr.gamma[cand[a]-1], tr.gamma[cand[c]-1]
		if ga != gc {
			return ga < gc
		}
		return cand[a] < cand[c]
	})
	cand = cand[:b.Rounds]
	for _, t := range cand {
		if tr.gamma[t-1] < tr.k {
			gain++
		}
	}
	sort.Ints(cand)
	return cand, gain
}

// commit schedules the bid on the given slots.
func (tr *tracker) commit(slots []int) {
	for _, t := range slots {
		if tr.gamma[t-1] < tr.k {
			tr.covered++
		}
		tr.gamma[t-1]++
	}
}
