package fl

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/fedauction/afl/internal/stats"
)

func TestGenerateSynthetic(t *testing.T) {
	rng := stats.NewRNG(1)
	ds, truth := GenerateSynthetic(rng, SyntheticOptions{Samples: 500, Dim: 5})
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 500 || len(truth) != 5 {
		t.Fatalf("shape: %d samples, %d dims", ds.Len(), len(truth))
	}
	// The ground truth should classify its own data well.
	if acc := Accuracy(truth, ds); acc < 0.8 {
		t.Fatalf("ground-truth accuracy %v too low", acc)
	}
	ones := 0
	for _, y := range ds.Y {
		if y == 1 {
			ones++
		}
	}
	if ones < 100 || ones > 400 {
		t.Fatalf("label balance off: %d/500 ones", ones)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad options must panic")
		}
	}()
	GenerateSynthetic(rng, SyntheticOptions{})
}

func TestDatasetValidate(t *testing.T) {
	bad := []Dataset{
		{X: [][]float64{{1}}, Y: []float64{}},
		{X: [][]float64{{1}, {1, 2}}, Y: []float64{0, 1}},
		{X: [][]float64{{1}}, Y: []float64{2}},
	}
	for i, ds := range bad {
		if err := ds.Validate(); err == nil {
			t.Fatalf("dataset %d: expected error", i)
		}
	}
	if err := (Dataset{}).Validate(); err != nil {
		t.Fatal("empty dataset is valid")
	}
}

func TestPartitionIID(t *testing.T) {
	rng := stats.NewRNG(2)
	ds, _ := GenerateSynthetic(rng, SyntheticOptions{Samples: 103, Dim: 3})
	shards := PartitionIID(rng, ds, 10)
	total := 0
	for _, s := range shards {
		total += s.Len()
		if s.Len() < 10 || s.Len() > 11 {
			t.Fatalf("shard size %d not near-equal", s.Len())
		}
	}
	if total != 103 {
		t.Fatalf("samples lost: %d", total)
	}
}

func TestPartitionNonIID(t *testing.T) {
	rng := stats.NewRNG(3)
	ds, _ := GenerateSynthetic(rng, SyntheticOptions{Samples: 400, Dim: 3})
	shards := PartitionNonIID(rng, ds, 8, 0.95)
	total := 0
	skewed := 0
	for _, s := range shards {
		total += s.Len()
		if s.Len() == 0 {
			continue
		}
		ones := 0.0
		for _, y := range s.Y {
			ones += y
		}
		frac := ones / float64(s.Len())
		if frac > 0.8 || frac < 0.2 {
			skewed++
		}
	}
	if total != 400 {
		t.Fatalf("samples lost: %d", total)
	}
	if skewed < 4 {
		t.Fatalf("only %d/8 shards are label-skewed", skewed)
	}
}

func TestLossGradConsistency(t *testing.T) {
	// Finite-difference check of the gradient.
	rng := stats.NewRNG(4)
	ds, _ := GenerateSynthetic(rng, SyntheticOptions{Samples: 60, Dim: 4})
	w := []float64{0.3, -0.2, 0.5, 0.1}
	g := Grad(w, ds, 0.01)
	const h = 1e-6
	for j := range w {
		wp := append([]float64(nil), w...)
		wm := append([]float64(nil), w...)
		wp[j] += h
		wm[j] -= h
		fd := (Loss(wp, ds, 0.01) - Loss(wm, ds, 0.01)) / (2 * h)
		if math.Abs(fd-g[j]) > 1e-4 {
			t.Fatalf("gradient component %d: analytic %v vs numeric %v", j, g[j], fd)
		}
	}
}

func TestLocalUpdateMeetsTheta(t *testing.T) {
	rng := stats.NewRNG(5)
	ds, _ := GenerateSynthetic(rng, SyntheticOptions{Samples: 200, Dim: 4})
	for _, theta := range []float64{0.3, 0.6, 0.9} {
		c := &Client{ID: 0, Data: ds, Theta: theta, LR: 0.5, MaxLocalIters: 2000}
		w0 := make([]float64, 4)
		g0 := Norm(Grad(w0, ds, 0.01))
		w1, iters := c.LocalUpdate(w0, 0.01)
		g1 := Norm(Grad(w1, ds, 0.01))
		if g1 > theta*g0+1e-9 {
			t.Fatalf("θ=%v: ‖∇F‖ %v > θ·‖∇F₀‖ %v after %d iters", theta, g1, theta*g0, iters)
		}
		if iters == 0 {
			t.Fatalf("θ=%v: no local work performed", theta)
		}
	}
	// Smaller θ must take at least as many local iterations — the
	// computation/communication trade-off Eq. (2) captures.
	w0 := make([]float64, 4)
	strict := &Client{ID: 0, Data: ds, Theta: 0.3, LR: 0.5}
	loose := &Client{ID: 0, Data: ds, Theta: 0.9, LR: 0.5}
	_, itStrict := strict.LocalUpdate(w0, 0.01)
	_, itLoose := loose.LocalUpdate(w0, 0.01)
	if itStrict < itLoose {
		t.Fatalf("θ=0.3 used %d iters < θ=0.9's %d", itStrict, itLoose)
	}
}

func TestTrainConvergesIID(t *testing.T) {
	rng := stats.NewRNG(6)
	ds, _ := GenerateSynthetic(rng, SyntheticOptions{Samples: 1200, Dim: 5})
	shards := PartitionIID(rng, ds, 10)
	clients := map[int]*Client{}
	for i, s := range shards {
		clients[i] = &Client{ID: i, Data: s, Theta: 0.5, LR: 0.5}
	}
	if err := ValidateClients(clients); err != nil {
		t.Fatal(err)
	}
	schedule := make([][]int, 30)
	for r := range schedule {
		schedule[r] = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	}
	res, err := Train(clients, schedule, ds, TrainConfig{Dim: 5, Rounds: 30, Epsilon: 0.05, L2: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not reach ε: final grad %v", res.History[len(res.History)-1].GradNorm)
	}
	final := res.History[len(res.History)-1]
	if final.Accuracy < 0.75 {
		t.Fatalf("final accuracy %v too low", final.Accuracy)
	}
	// Gradient norms should broadly decrease.
	if res.History[0].GradNorm <= final.GradNorm {
		t.Fatalf("no gradient progress: %v → %v", res.History[0].GradNorm, final.GradNorm)
	}
}

func TestTrainWithPartialParticipationAndDropout(t *testing.T) {
	rng := stats.NewRNG(7)
	ds, _ := GenerateSynthetic(rng, SyntheticOptions{Samples: 800, Dim: 4})
	shards := PartitionNonIID(rng, ds, 8, 0.7)
	clients := map[int]*Client{}
	for i, s := range shards {
		clients[i] = &Client{ID: i, Data: s, Theta: 0.5, LR: 0.4, DropoutProb: 0.2}
	}
	// Rotating participation: 3 clients per round, as an auction schedule
	// would produce.
	schedule := make([][]int, 40)
	for r := range schedule {
		schedule[r] = []int{r % 8, (r + 3) % 8, (r + 5) % 8}
	}
	res, err := Train(clients, schedule, ds, TrainConfig{Dim: 4, Rounds: 40, L2: 0.01, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	dropped := 0
	for _, h := range res.History {
		dropped += len(h.Dropped)
		if len(h.Participants)+len(h.Dropped) != 3 {
			t.Fatalf("round %d: %d participants + %d dropped ≠ 3", h.Round, len(h.Participants), len(h.Dropped))
		}
	}
	if dropped == 0 {
		t.Fatal("dropout probability 0.2 never fired in 120 draws")
	}
	if final := res.History[len(res.History)-1]; final.Accuracy < 0.7 {
		t.Fatalf("final accuracy %v too low under dropouts", final.Accuracy)
	}
}

func TestTrainErrors(t *testing.T) {
	clients := map[int]*Client{0: {ID: 0, Theta: 0.5, LR: 0.1}}
	if _, err := Train(clients, [][]int{{0}}, Dataset{}, TrainConfig{Dim: 0, Rounds: 1}); err == nil {
		t.Fatal("Dim=0 must error")
	}
	if _, err := Train(clients, nil, Dataset{}, TrainConfig{Dim: 2, Rounds: 1}); err == nil {
		t.Fatal("short schedule must error")
	}
	if _, err := Train(clients, [][]int{{42}}, Dataset{}, TrainConfig{Dim: 2, Rounds: 1}); err == nil {
		t.Fatal("unknown client must error")
	}
}

func TestValidateClients(t *testing.T) {
	good := map[int]*Client{0: {ID: 0, Theta: 0.5, LR: 0.1}}
	if err := ValidateClients(good); err != nil {
		t.Fatal(err)
	}
	bad := []map[int]*Client{
		{0: nil},
		{0: {ID: 1, Theta: 0.5, LR: 0.1}},
		{0: {ID: 0, Theta: 0, LR: 0.1}},
		{0: {ID: 0, Theta: 0.5, LR: 0}},
		{0: {ID: 0, Theta: 0.5, LR: 0.1, DropoutProb: 1.5}},
		{0: {ID: 0, Theta: 0.5, LR: 0.1, Data: Dataset{X: [][]float64{{1}}, Y: []float64{3}}}},
	}
	for i, m := range bad {
		if err := ValidateClients(m); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestScheduleFromSlots(t *testing.T) {
	slots := map[int][]int{
		7: {1, 3},
		2: {1, 2},
		5: {4},
	}
	sched := ScheduleFromSlots(4, slots)
	want := [][]int{{2, 7}, {2}, {7}, {5}}
	for r := range want {
		if len(sched[r]) != len(want[r]) {
			t.Fatalf("round %d: %v, want %v", r+1, sched[r], want[r])
		}
		for i := range want[r] {
			if sched[r][i] != want[r][i] {
				t.Fatalf("round %d: %v, want %v", r+1, sched[r], want[r])
			}
		}
	}
	// Out-of-range slots are dropped.
	sched = ScheduleFromSlots(2, map[int][]int{1: {0, 3, 2}})
	if len(sched[0]) != 0 || len(sched[1]) != 1 {
		t.Fatalf("out-of-range handling wrong: %v", sched)
	}
}

func TestEffectiveLocalIters(t *testing.T) {
	rng := stats.NewRNG(8)
	ds, _ := GenerateSynthetic(rng, SyntheticOptions{Samples: 300, Dim: 4})
	strict := &Client{ID: 0, Data: ds, Theta: 0.2, LR: 0.5}
	loose := &Client{ID: 1, Data: ds, Theta: 0.8, LR: 0.5}
	if EffectiveLocalIters(strict, 4, 0.01) < EffectiveLocalIters(loose, 4, 0.01) {
		t.Fatal("stricter θ should need at least as many local iterations")
	}
}

func TestMiniBatchSGD(t *testing.T) {
	rng := stats.NewRNG(31)
	ds, _ := GenerateSynthetic(rng, SyntheticOptions{Samples: 400, Dim: 4})
	c := &Client{ID: 0, Data: ds, Theta: 0.5, LR: 0.3, BatchSize: 32, Seed: 1, MaxLocalIters: 3000}
	w0 := make([]float64, 4)
	g0 := Norm(Grad(w0, ds, 0.01))
	w1, iters, achieved := c.LocalUpdateAchieved(w0, 0.01)
	if iters == 0 {
		t.Fatal("no SGD steps taken")
	}
	if achieved > c.Theta+1e-9 && iters < c.MaxLocalIters {
		t.Fatalf("stopped early at achieved %v > θ", achieved)
	}
	if g1 := Norm(Grad(w1, ds, 0.01)); g1 > g0 {
		t.Fatalf("mini-batch SGD increased the gradient norm: %v → %v", g0, g1)
	}
	// Determinism from the client seed.
	c2 := &Client{ID: 0, Data: ds, Theta: 0.5, LR: 0.3, BatchSize: 32, Seed: 1, MaxLocalIters: 3000}
	w2, iters2, _ := c2.LocalUpdateAchieved(w0, 0.01)
	if iters != iters2 {
		t.Fatalf("iters %d vs %d with equal seeds", iters, iters2)
	}
	for j := range w1 {
		if w1[j] != w2[j] {
			t.Fatal("mini-batch training not reproducible from seed")
		}
	}
	// A batch size ≥ the shard degrades to full gradients.
	cFull := &Client{ID: 0, Data: ds, Theta: 0.5, LR: 0.3, BatchSize: ds.Len() + 10}
	cRef := &Client{ID: 0, Data: ds, Theta: 0.5, LR: 0.3}
	wa, _, _ := cFull.LocalUpdateAchieved(w0, 0.01)
	wb, _, _ := cRef.LocalUpdateAchieved(w0, 0.01)
	for j := range wa {
		if wa[j] != wb[j] {
			t.Fatal("oversized batch must equal full-gradient training")
		}
	}
}

// Property: sigmoid stays in (0,1) and loss stays finite and non-negative.
func TestNumericStability(t *testing.T) {
	f := func(z float64) bool {
		if math.IsNaN(z) || math.IsInf(z, 0) {
			return true
		}
		s := sigmoid(z)
		return s > 0 && s < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	ds := Dataset{X: [][]float64{{1e8}, {-1e8}}, Y: []float64{1, 0}}
	l := Loss([]float64{1}, ds, 0)
	if math.IsNaN(l) || math.IsInf(l, 0) || l < 0 {
		t.Fatalf("loss unstable: %v", l)
	}
}
