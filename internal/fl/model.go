package fl

import "math"

// sigmoid is the logistic function, clamped away from exact 0/1 so the
// loss stays finite.
func sigmoid(z float64) float64 {
	switch {
	case z > 35:
		return 1 - 1e-15
	case z < -35:
		return 1e-15
	default:
		return 1 / (1 + math.Exp(-z))
	}
}

// dot returns w·x.
func dot(w, x []float64) float64 {
	var s float64
	for j := range w {
		s += w[j] * x[j]
	}
	return s
}

// Loss returns the mean logistic loss plus (l2/2)·‖w‖² on the dataset.
func Loss(w []float64, ds Dataset, l2 float64) float64 {
	if ds.Len() == 0 {
		return 0
	}
	var sum float64
	for i, x := range ds.X {
		p := sigmoid(dot(w, x))
		if ds.Y[i] > 0.5 {
			sum -= math.Log(p)
		} else {
			sum -= math.Log(1 - p)
		}
	}
	loss := sum / float64(ds.Len())
	for _, wj := range w {
		loss += l2 / 2 * wj * wj
	}
	return loss
}

// Grad returns the gradient of Loss at w.
func Grad(w []float64, ds Dataset, l2 float64) []float64 {
	g := make([]float64, len(w))
	if ds.Len() == 0 {
		return g
	}
	for i, x := range ds.X {
		err := sigmoid(dot(w, x)) - ds.Y[i]
		for j := range g {
			g[j] += err * x[j]
		}
	}
	inv := 1 / float64(ds.Len())
	for j := range g {
		g[j] = g[j]*inv + l2*w[j]
	}
	return g
}

// Norm returns the Euclidean norm of v.
func Norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Accuracy returns the fraction of correctly classified samples at the
// 0.5 threshold.
func Accuracy(w []float64, ds Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	correct := 0
	for i, x := range ds.X {
		pred := 0.0
		if sigmoid(dot(w, x)) >= 0.5 {
			pred = 1
		}
		if pred == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}
