// Package fl is a federated-learning simulator built around the accuracy
// semantics the auction prices: a client's local accuracy θ is the
// relative gradient-norm reduction it achieves on its local loss per
// global iteration (‖∇F(w')‖ ≤ θ·‖∇F(w)‖, footnote 1 of the paper), and
// the global accuracy ε is the same measure on the global loss.
//
// The simulator trains an L2-regularized logistic-regression model with
// FedAvg over synthetic, optionally non-IID, client datasets. It is the
// substrate the auction's winners actually execute on in the examples and
// the platform layer: winners are scheduled into global iterations, train
// locally until their promised θ (or a local-iteration cap), and the
// server aggregates sample-weighted updates.
package fl

import (
	"fmt"
	"math"

	"github.com/fedauction/afl/internal/stats"
)

// Dataset is a labeled design matrix for binary classification; labels
// are 0 or 1.
type Dataset struct {
	X [][]float64
	Y []float64
}

// Len returns the number of samples.
func (d Dataset) Len() int { return len(d.X) }

// Validate checks shape consistency.
func (d Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("fl: %d rows but %d labels", len(d.X), len(d.Y))
	}
	if len(d.X) == 0 {
		return nil
	}
	dim := len(d.X[0])
	for i, row := range d.X {
		if len(row) != dim {
			return fmt.Errorf("fl: row %d has %d features, want %d", i, len(row), dim)
		}
	}
	for i, y := range d.Y {
		if y != 0 && y != 1 {
			return fmt.Errorf("fl: label %d is %v, want 0 or 1", i, y)
		}
	}
	return nil
}

// SyntheticOptions configures GenerateSynthetic.
type SyntheticOptions struct {
	Samples int
	Dim     int
	// LabelNoise is the probability a label is flipped.
	LabelNoise float64
}

// GenerateSynthetic draws a logistic-regression task: a ground-truth
// weight vector on the unit sphere, Gaussian features, and Bernoulli
// labels from the logistic model with optional flips. It returns the
// dataset and the ground truth.
func GenerateSynthetic(rng *stats.RNG, opts SyntheticOptions) (Dataset, []float64) {
	if opts.Samples < 1 || opts.Dim < 1 {
		panic(fmt.Sprintf("fl: bad synthetic options %+v", opts))
	}
	truth := make([]float64, opts.Dim)
	var norm float64
	for j := range truth {
		truth[j] = rng.NormFloat64()
		norm += truth[j] * truth[j]
	}
	norm = math.Sqrt(norm)
	for j := range truth {
		truth[j] = truth[j] / norm * 3 // margin scale
	}
	ds := Dataset{X: make([][]float64, opts.Samples), Y: make([]float64, opts.Samples)}
	for i := 0; i < opts.Samples; i++ {
		row := make([]float64, opts.Dim)
		var dot float64
		for j := range row {
			row[j] = rng.NormFloat64()
			dot += row[j] * truth[j]
		}
		p := 1 / (1 + math.Exp(-dot))
		y := 0.0
		if rng.Float64() < p {
			y = 1
		}
		if rng.Bernoulli(opts.LabelNoise) {
			y = 1 - y
		}
		ds.X[i] = row
		ds.Y[i] = y
	}
	return ds, truth
}

// PartitionIID splits the dataset into n near-equal shards after a
// shuffle.
func PartitionIID(rng *stats.RNG, ds Dataset, n int) []Dataset {
	if n < 1 {
		panic("fl: PartitionIID needs n ≥ 1")
	}
	perm := rng.Perm(ds.Len())
	shards := make([]Dataset, n)
	for pos, idx := range perm {
		s := pos % n
		shards[s].X = append(shards[s].X, ds.X[idx])
		shards[s].Y = append(shards[s].Y, ds.Y[idx])
	}
	return shards
}

// PartitionNonIID splits the dataset into n shards with label skew: a
// fraction skew ∈ [0,1] of each shard is drawn from a single preferred
// label (alternating by shard), the rest uniformly. skew = 0 reduces to
// IID; skew = 1 gives single-label shards where possible.
func PartitionNonIID(rng *stats.RNG, ds Dataset, n int, skew float64) []Dataset {
	if n < 1 {
		panic("fl: PartitionNonIID needs n ≥ 1")
	}
	if skew < 0 || skew > 1 {
		panic(fmt.Sprintf("fl: skew %v outside [0,1]", skew))
	}
	var pools [2][]int
	for i, y := range ds.Y {
		pools[int(y)] = append(pools[int(y)], i)
	}
	rng.Shuffle(len(pools[0]), func(i, j int) { pools[0][i], pools[0][j] = pools[0][j], pools[0][i] })
	rng.Shuffle(len(pools[1]), func(i, j int) { pools[1][i], pools[1][j] = pools[1][j], pools[1][i] })
	shards := make([]Dataset, n)
	per := ds.Len() / n
	take := func(label int) (int, bool) {
		if len(pools[label]) == 0 {
			label = 1 - label
		}
		if len(pools[label]) == 0 {
			return 0, false
		}
		idx := pools[label][len(pools[label])-1]
		pools[label] = pools[label][:len(pools[label])-1]
		return idx, true
	}
	for s := 0; s < n; s++ {
		preferred := s % 2
		for i := 0; i < per; i++ {
			label := preferred
			if !rng.Bernoulli(skew) {
				label = rng.Intn(2)
			}
			idx, ok := take(label)
			if !ok {
				break
			}
			shards[s].X = append(shards[s].X, ds.X[idx])
			shards[s].Y = append(shards[s].Y, ds.Y[idx])
		}
	}
	// Distribute the remainder round-robin.
	s := 0
	for {
		idx, ok := take(0)
		if !ok {
			break
		}
		shards[s%n].X = append(shards[s%n].X, ds.X[idx])
		shards[s%n].Y = append(shards[s%n].Y, ds.Y[idx])
		s++
	}
	return shards
}
