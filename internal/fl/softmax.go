package fl

import (
	"fmt"
	"math"

	"github.com/fedauction/afl/internal/stats"
)

// MultiDataset is a labeled design matrix for multiclass classification;
// labels are class indices in [0, Classes).
type MultiDataset struct {
	X       [][]float64
	Y       []int
	Classes int
}

// Len returns the number of samples.
func (d MultiDataset) Len() int { return len(d.X) }

// Dim returns the feature dimension (0 when empty).
func (d MultiDataset) Dim() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Validate checks shape and label consistency.
func (d MultiDataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("fl: %d rows but %d labels", len(d.X), len(d.Y))
	}
	if d.Classes < 2 {
		return fmt.Errorf("fl: %d classes, need ≥ 2", d.Classes)
	}
	dim := d.Dim()
	for i, row := range d.X {
		if len(row) != dim {
			return fmt.Errorf("fl: row %d has %d features, want %d", i, len(row), dim)
		}
	}
	for i, y := range d.Y {
		if y < 0 || y >= d.Classes {
			return fmt.Errorf("fl: label %d is %d, want [0,%d)", i, y, d.Classes)
		}
	}
	return nil
}

// MultiSyntheticOptions configures GenerateSyntheticMulti.
type MultiSyntheticOptions struct {
	Samples int
	Dim     int
	Classes int
	// LabelNoise is the probability a label is resampled uniformly.
	LabelNoise float64
}

// GenerateSyntheticMulti draws a softmax-classification task: one
// Gaussian prototype per class, samples scattered around prototypes. It
// returns the dataset and the flattened ground-truth weights (class-major,
// length Classes·Dim).
func GenerateSyntheticMulti(rng *stats.RNG, opts MultiSyntheticOptions) (MultiDataset, []float64) {
	if opts.Samples < 1 || opts.Dim < 1 || opts.Classes < 2 {
		panic(fmt.Sprintf("fl: bad multi synthetic options %+v", opts))
	}
	protos := make([][]float64, opts.Classes)
	truth := make([]float64, opts.Classes*opts.Dim)
	for c := range protos {
		protos[c] = make([]float64, opts.Dim)
		for j := range protos[c] {
			protos[c][j] = rng.Gaussian(0, 2)
			truth[c*opts.Dim+j] = protos[c][j]
		}
	}
	ds := MultiDataset{
		X:       make([][]float64, opts.Samples),
		Y:       make([]int, opts.Samples),
		Classes: opts.Classes,
	}
	for i := 0; i < opts.Samples; i++ {
		c := rng.Intn(opts.Classes)
		row := make([]float64, opts.Dim)
		for j := range row {
			row[j] = protos[c][j] + rng.Gaussian(0, 1)
		}
		if rng.Bernoulli(opts.LabelNoise) {
			c = rng.Intn(opts.Classes)
		}
		ds.X[i] = row
		ds.Y[i] = c
	}
	return ds, truth
}

// PartitionMultiNonIID splits a multiclass dataset into n shards, each
// preferring one class (round-robin) with probability skew.
func PartitionMultiNonIID(rng *stats.RNG, ds MultiDataset, n int, skew float64) []MultiDataset {
	if n < 1 {
		panic("fl: PartitionMultiNonIID needs n ≥ 1")
	}
	pools := make([][]int, ds.Classes)
	for i, y := range ds.Y {
		pools[y] = append(pools[y], i)
	}
	for c := range pools {
		rng.Shuffle(len(pools[c]), func(i, j int) { pools[c][i], pools[c][j] = pools[c][j], pools[c][i] })
	}
	take := func(pref int) (int, bool) {
		if len(pools[pref]) > 0 {
			idx := pools[pref][len(pools[pref])-1]
			pools[pref] = pools[pref][:len(pools[pref])-1]
			return idx, true
		}
		for c := range pools {
			if len(pools[c]) > 0 {
				idx := pools[c][len(pools[c])-1]
				pools[c] = pools[c][:len(pools[c])-1]
				return idx, true
			}
		}
		return 0, false
	}
	shards := make([]MultiDataset, n)
	for s := range shards {
		shards[s].Classes = ds.Classes
	}
	per := ds.Len() / n
	for s := 0; s < n; s++ {
		pref := s % ds.Classes
		for i := 0; i < per; i++ {
			label := pref
			if !rng.Bernoulli(skew) {
				label = rng.Intn(ds.Classes)
			}
			idx, ok := take(label)
			if !ok {
				break
			}
			shards[s].X = append(shards[s].X, ds.X[idx])
			shards[s].Y = append(shards[s].Y, ds.Y[idx])
		}
	}
	s := 0
	for {
		idx, ok := take(0)
		if !ok {
			break
		}
		shards[s%n].X = append(shards[s%n].X, ds.X[idx])
		shards[s%n].Y = append(shards[s%n].Y, ds.Y[idx])
		s++
	}
	return shards
}

// softmaxProbs returns the class probabilities of one sample under the
// flattened class-major weights.
func softmaxProbs(w []float64, x []float64, classes int) []float64 {
	dim := len(x)
	logits := make([]float64, classes)
	maxL := math.Inf(-1)
	for c := 0; c < classes; c++ {
		var z float64
		for j, xj := range x {
			z += w[c*dim+j] * xj
		}
		logits[c] = z
		maxL = math.Max(maxL, z)
	}
	var sum float64
	for c := range logits {
		logits[c] = math.Exp(logits[c] - maxL)
		sum += logits[c]
	}
	for c := range logits {
		logits[c] /= sum
	}
	return logits
}

// SoftmaxLoss returns the mean cross-entropy plus (l2/2)·‖w‖².
func SoftmaxLoss(w []float64, ds MultiDataset, l2 float64) float64 {
	if ds.Len() == 0 {
		return 0
	}
	var sum float64
	for i, x := range ds.X {
		p := softmaxProbs(w, x, ds.Classes)[ds.Y[i]]
		if p < 1e-15 {
			p = 1e-15
		}
		sum -= math.Log(p)
	}
	loss := sum / float64(ds.Len())
	for _, wj := range w {
		loss += l2 / 2 * wj * wj
	}
	return loss
}

// SoftmaxGrad returns the gradient of SoftmaxLoss at w.
func SoftmaxGrad(w []float64, ds MultiDataset, l2 float64) []float64 {
	g := make([]float64, len(w))
	if ds.Len() == 0 {
		return g
	}
	dim := ds.Dim()
	for i, x := range ds.X {
		probs := softmaxProbs(w, x, ds.Classes)
		for c := 0; c < ds.Classes; c++ {
			err := probs[c]
			if c == ds.Y[i] {
				err -= 1
			}
			base := c * dim
			for j, xj := range x {
				g[base+j] += err * xj
			}
		}
	}
	inv := 1 / float64(ds.Len())
	for j := range g {
		g[j] = g[j]*inv + l2*w[j]
	}
	return g
}

// SoftmaxAccuracy returns the argmax classification accuracy.
func SoftmaxAccuracy(w []float64, ds MultiDataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	correct := 0
	for i, x := range ds.X {
		probs := softmaxProbs(w, x, ds.Classes)
		best := 0
		for c := 1; c < ds.Classes; c++ {
			if probs[c] > probs[best] {
				best = c
			}
		}
		if best == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

// MultiClient is a federated participant holding a multiclass shard. It
// mirrors Client's local-accuracy contract on the softmax objective.
type MultiClient struct {
	ID            int
	Data          MultiDataset
	Theta         float64
	LR            float64
	MaxLocalIters int
}

func (c *MultiClient) maxLocalIters() int {
	if c.MaxLocalIters <= 0 {
		return 200
	}
	return c.MaxLocalIters
}

// LocalUpdate trains until ‖∇F(w')‖ ≤ θ·‖∇F(w)‖ or the cap.
func (c *MultiClient) LocalUpdate(w []float64, l2 float64) ([]float64, int) {
	cur := make([]float64, len(w))
	copy(cur, w)
	if c.Data.Len() == 0 {
		return cur, 0
	}
	g0 := Norm(SoftmaxGrad(cur, c.Data, l2))
	if g0 == 0 {
		return cur, 0
	}
	target := c.Theta * g0
	iters := 0
	for ; iters < c.maxLocalIters(); iters++ {
		g := SoftmaxGrad(cur, c.Data, l2)
		if Norm(g) <= target {
			break
		}
		for j := range cur {
			cur[j] -= c.LR * g[j]
		}
	}
	return cur, iters
}

// TrainMulti runs FedAvg over multiclass clients; schedule[r] lists the
// client IDs of global iteration r+1.
func TrainMulti(clients map[int]*MultiClient, schedule [][]int, eval MultiDataset, cfg TrainConfig) (TrainResult, error) {
	if cfg.Dim < 1 {
		return TrainResult{}, fmt.Errorf("fl: Dim=%d must be ≥ 1", cfg.Dim)
	}
	if cfg.Rounds < 1 || len(schedule) < cfg.Rounds {
		return TrainResult{}, fmt.Errorf("fl: need a schedule for all %d rounds, got %d", cfg.Rounds, len(schedule))
	}
	w := make([]float64, cfg.Dim)
	res := TrainResult{Weights: w}
	g0 := Norm(SoftmaxGrad(w, eval, cfg.L2))
	for r := 0; r < cfg.Rounds; r++ {
		stat := RoundStats{Round: r + 1}
		sumW := make([]float64, cfg.Dim)
		var total float64
		for _, id := range schedule[r] {
			c, ok := clients[id]
			if !ok {
				return TrainResult{}, fmt.Errorf("fl: schedule names unknown client %d", id)
			}
			nw, iters := c.LocalUpdate(w, cfg.L2)
			stat.LocalIters += iters
			stat.Participants = append(stat.Participants, id)
			weight := float64(c.Data.Len())
			for j := range sumW {
				sumW[j] += weight * nw[j]
			}
			total += weight
		}
		if total > 0 {
			for j := range w {
				w[j] = sumW[j] / total
			}
		}
		stat.GradNorm = Norm(SoftmaxGrad(w, eval, cfg.L2))
		stat.Loss = SoftmaxLoss(w, eval, cfg.L2)
		stat.Accuracy = SoftmaxAccuracy(w, eval)
		res.History = append(res.History, stat)
		res.RoundsRun = r + 1
		if cfg.Epsilon > 0 && g0 > 0 && stat.GradNorm <= cfg.Epsilon*g0 {
			res.Converged = true
			break
		}
	}
	res.Weights = w
	if cfg.Epsilon <= 0 {
		res.Converged = true
	} else if !res.Converged && g0 > 0 && len(res.History) > 0 {
		last := res.History[len(res.History)-1].GradNorm
		res.Converged = last <= cfg.Epsilon*g0
	}
	return res, nil
}
