package fl

import (
	"fmt"

	"github.com/fedauction/afl/internal/stats"
)

// Client is one federated participant holding a private shard.
type Client struct {
	// ID identifies the client; schedules refer to it.
	ID int
	// Data is the local shard.
	Data Dataset
	// Theta is the local accuracy the client promised in its winning bid:
	// per global iteration it trains until ‖∇F(w')‖ ≤ θ·‖∇F(w)‖.
	Theta float64
	// LR is the local gradient-descent step size.
	LR float64
	// MaxLocalIters caps local iterations per global round (safety net
	// for unreachable θ). Zero means 200.
	MaxLocalIters int
	// DropoutProb is the per-round probability that the client fails to
	// return an update (battery, network), echoing the paper's
	// future-work discussion. Zero disables dropouts.
	DropoutProb float64
	// BatchSize switches local training to mini-batch SGD with batches of
	// this size (sampled without replacement per step). Zero uses full
	// gradients. The θ stopping criterion is always evaluated on the full
	// local gradient.
	BatchSize int
	// Seed drives the client's mini-batch sampling. Clients with equal
	// seeds and data train identically.
	Seed int64

	rng *stats.RNG
}

func (c *Client) sampler() *stats.RNG {
	if c.rng == nil {
		c.rng = stats.NewRNG(c.Seed)
	}
	return c.rng
}

func (c *Client) maxLocalIters() int {
	if c.MaxLocalIters <= 0 {
		return 200
	}
	return c.MaxLocalIters
}

// LocalUpdate runs local gradient descent from w until the client's θ is
// met (relative gradient-norm reduction) or the iteration cap is hit. It
// returns the new weights and the number of local iterations spent.
func (c *Client) LocalUpdate(w []float64, l2 float64) ([]float64, int) {
	nw, iters, _ := c.LocalUpdateAchieved(w, l2)
	return nw, iters
}

// LocalUpdateAchieved is LocalUpdate plus the achieved local accuracy
// ‖∇F(w')‖ / ‖∇F(w)‖ — the quantity an auditing server compares against
// the θ the client's winning bid promised. A client with no data or an
// already-stationary model reports an achieved accuracy of 0 (nothing
// left to reduce).
func (c *Client) LocalUpdateAchieved(w []float64, l2 float64) (nw []float64, iters int, achieved float64) {
	cur := make([]float64, len(w))
	copy(cur, w)
	if c.Data.Len() == 0 {
		return cur, 0, 0
	}
	g0 := Norm(Grad(cur, c.Data, l2))
	if g0 == 0 {
		return cur, 0, 0
	}
	target := c.Theta * g0
	gNow := g0
	for ; iters < c.maxLocalIters(); iters++ {
		full := Grad(cur, c.Data, l2)
		gNow = Norm(full)
		if gNow <= target {
			break
		}
		step := full
		if c.BatchSize > 0 && c.BatchSize < c.Data.Len() {
			step = c.batchGrad(cur, l2)
		}
		for j := range cur {
			cur[j] -= c.LR * step[j]
		}
	}
	if iters == c.maxLocalIters() {
		gNow = Norm(Grad(cur, c.Data, l2))
	}
	return cur, iters, gNow / g0
}

// batchGrad returns the gradient on a uniformly sampled mini-batch.
func (c *Client) batchGrad(w []float64, l2 float64) []float64 {
	rng := c.sampler()
	batch := Dataset{
		X: make([][]float64, 0, c.BatchSize),
		Y: make([]float64, 0, c.BatchSize),
	}
	for _, i := range rng.SampleWithoutReplacement(c.BatchSize, 0, c.Data.Len()-1) {
		batch.X = append(batch.X, c.Data.X[i])
		batch.Y = append(batch.Y, c.Data.Y[i])
	}
	return Grad(w, batch, l2)
}

// TrainConfig drives a federated training run.
type TrainConfig struct {
	// Dim is the model dimension.
	Dim int
	// Rounds is the number of global iterations T_g.
	Rounds int
	// Epsilon is the target global accuracy: training may stop early once
	// ‖∇J(w)‖ ≤ ε·‖∇J(w₀)‖. Zero disables early stopping.
	Epsilon float64
	// L2 is the ridge penalty.
	L2 float64
	// Seed drives dropout draws.
	Seed int64
}

// RoundStats records one global iteration.
type RoundStats struct {
	Round        int
	Participants []int // client IDs that returned updates
	Dropped      []int // scheduled clients that dropped out
	LocalIters   int   // total local iterations across participants
	GradNorm     float64
	Loss         float64
	Accuracy     float64
}

// TrainResult is the outcome of Train.
type TrainResult struct {
	Weights []float64
	History []RoundStats
	// Converged reports whether the ε target was reached.
	Converged bool
	// RoundsRun is the number of global iterations executed.
	RoundsRun int
}

// Train runs FedAvg: at each global iteration the scheduled clients
// (schedule[r] lists client IDs for round r+1, as produced by an auction
// solution) compute local updates to their promised local accuracy and
// the server aggregates them weighted by shard size. The eval dataset
// drives the reported loss/accuracy/gradient metrics.
func Train(clients map[int]*Client, schedule [][]int, eval Dataset, cfg TrainConfig) (TrainResult, error) {
	if cfg.Dim < 1 {
		return TrainResult{}, fmt.Errorf("fl: Dim=%d must be ≥ 1", cfg.Dim)
	}
	if cfg.Rounds < 1 || len(schedule) < cfg.Rounds {
		return TrainResult{}, fmt.Errorf("fl: need a schedule for all %d rounds, got %d", cfg.Rounds, len(schedule))
	}
	rng := stats.NewRNG(cfg.Seed)
	w := make([]float64, cfg.Dim)
	res := TrainResult{Weights: w}
	g0 := Norm(Grad(w, eval, cfg.L2))
	for r := 0; r < cfg.Rounds; r++ {
		stat := RoundStats{Round: r + 1}
		sumW := make([]float64, cfg.Dim)
		var totalSamples float64
		for _, id := range schedule[r] {
			c, ok := clients[id]
			if !ok {
				return TrainResult{}, fmt.Errorf("fl: schedule names unknown client %d", id)
			}
			if c.DropoutProb > 0 && rng.Bernoulli(c.DropoutProb) {
				stat.Dropped = append(stat.Dropped, id)
				continue
			}
			nw, iters := c.LocalUpdate(w, cfg.L2)
			stat.LocalIters += iters
			stat.Participants = append(stat.Participants, id)
			weight := float64(c.Data.Len())
			for j := range sumW {
				sumW[j] += weight * nw[j]
			}
			totalSamples += weight
		}
		if totalSamples > 0 {
			for j := range w {
				w[j] = sumW[j] / totalSamples
			}
		}
		stat.GradNorm = Norm(Grad(w, eval, cfg.L2))
		stat.Loss = Loss(w, eval, cfg.L2)
		stat.Accuracy = Accuracy(w, eval)
		res.History = append(res.History, stat)
		res.RoundsRun = r + 1
		if cfg.Epsilon > 0 && g0 > 0 && stat.GradNorm <= cfg.Epsilon*g0 {
			res.Converged = true
			break
		}
	}
	res.Weights = w
	if cfg.Epsilon <= 0 {
		res.Converged = true
	} else if !res.Converged && g0 > 0 {
		last := res.History[len(res.History)-1].GradNorm
		res.Converged = last <= cfg.Epsilon*g0
	}
	return res, nil
}

// ScheduleFromSlots converts per-winner slot lists (1-based global
// iterations, as in core.Winner) into the per-round client-ID lists Train
// expects.
func ScheduleFromSlots(rounds int, slots map[int][]int) [][]int {
	schedule := make([][]int, rounds)
	for id, ts := range slots {
		for _, t := range ts {
			if t >= 1 && t <= rounds {
				schedule[t-1] = append(schedule[t-1], id)
			}
		}
	}
	for r := range schedule {
		sortInts(schedule[r])
	}
	return schedule
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// EffectiveLocalIters estimates T_l(θ) for reporting: the simulator's
// analogue of Eq. (2), measured rather than assumed. It runs one local
// update from w0 and returns the iterations used.
func EffectiveLocalIters(c *Client, dim int, l2 float64) int {
	w0 := make([]float64, dim)
	_, iters := c.LocalUpdate(w0, l2)
	return iters
}

// ValidateClients guards long simulations: a θ outside (0,1) would make
// LocalUpdate spin to its iteration cap every round.
func ValidateClients(clients map[int]*Client) error {
	for id, c := range clients {
		if c == nil {
			return fmt.Errorf("fl: client %d is nil", id)
		}
		if c.ID != id {
			return fmt.Errorf("fl: client map key %d ≠ ID %d", id, c.ID)
		}
		if c.Theta <= 0 || c.Theta >= 1 {
			return fmt.Errorf("fl: client %d θ=%v outside (0,1)", id, c.Theta)
		}
		if c.LR <= 0 {
			return fmt.Errorf("fl: client %d learning rate %v must be positive", id, c.LR)
		}
		if c.DropoutProb < 0 || c.DropoutProb > 1 {
			return fmt.Errorf("fl: client %d dropout %v outside [0,1]", id, c.DropoutProb)
		}
		if err := c.Data.Validate(); err != nil {
			return fmt.Errorf("fl: client %d: %w", id, err)
		}
	}
	return nil
}
