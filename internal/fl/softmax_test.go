package fl

import (
	"math"
	"testing"

	"github.com/fedauction/afl/internal/stats"
)

func TestGenerateSyntheticMulti(t *testing.T) {
	rng := stats.NewRNG(41)
	ds, truth := GenerateSyntheticMulti(rng, MultiSyntheticOptions{Samples: 600, Dim: 4, Classes: 3})
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 600 || len(truth) != 12 || ds.Dim() != 4 {
		t.Fatalf("shape wrong: %d samples, %d truth, dim %d", ds.Len(), len(truth), ds.Dim())
	}
	// Prototype weights should classify their own data well above chance.
	if acc := SoftmaxAccuracy(truth, ds); acc < 0.6 {
		t.Fatalf("ground-truth accuracy %v too low", acc)
	}
	// All classes present.
	seen := map[int]bool{}
	for _, y := range ds.Y {
		seen[y] = true
	}
	if len(seen) != 3 {
		t.Fatalf("classes present: %v", seen)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad options must panic")
		}
	}()
	GenerateSyntheticMulti(rng, MultiSyntheticOptions{Samples: 1, Dim: 1, Classes: 1})
}

func TestMultiDatasetValidate(t *testing.T) {
	bad := []MultiDataset{
		{X: [][]float64{{1}}, Y: []int{}, Classes: 2},
		{X: [][]float64{{1}}, Y: []int{0}, Classes: 1},
		{X: [][]float64{{1}, {1, 2}}, Y: []int{0, 1}, Classes: 2},
		{X: [][]float64{{1}}, Y: []int{5}, Classes: 2},
	}
	for i, ds := range bad {
		if err := ds.Validate(); err == nil {
			t.Fatalf("dataset %d must fail validation", i)
		}
	}
}

func TestSoftmaxGradConsistency(t *testing.T) {
	rng := stats.NewRNG(42)
	ds, _ := GenerateSyntheticMulti(rng, MultiSyntheticOptions{Samples: 40, Dim: 3, Classes: 3})
	w := make([]float64, 9)
	for j := range w {
		w[j] = rng.Gaussian(0, 0.5)
	}
	g := SoftmaxGrad(w, ds, 0.01)
	const h = 1e-6
	for j := range w {
		wp := append([]float64(nil), w...)
		wm := append([]float64(nil), w...)
		wp[j] += h
		wm[j] -= h
		fd := (SoftmaxLoss(wp, ds, 0.01) - SoftmaxLoss(wm, ds, 0.01)) / (2 * h)
		if math.Abs(fd-g[j]) > 1e-4 {
			t.Fatalf("component %d: analytic %v vs numeric %v", j, g[j], fd)
		}
	}
}

func TestPartitionMultiNonIID(t *testing.T) {
	rng := stats.NewRNG(43)
	ds, _ := GenerateSyntheticMulti(rng, MultiSyntheticOptions{Samples: 600, Dim: 3, Classes: 3})
	shards := PartitionMultiNonIID(rng, ds, 6, 0.9)
	total := 0
	skewed := 0
	for _, s := range shards {
		total += s.Len()
		if s.Len() == 0 {
			continue
		}
		counts := make([]int, s.Classes)
		for _, y := range s.Y {
			counts[y]++
		}
		maxC := 0
		for _, c := range counts {
			if c > maxC {
				maxC = c
			}
		}
		if float64(maxC)/float64(s.Len()) > 0.6 {
			skewed++
		}
	}
	if total != 600 {
		t.Fatalf("samples lost: %d", total)
	}
	if skewed < 3 {
		t.Fatalf("only %d/6 shards skewed", skewed)
	}
}

func TestTrainMultiConverges(t *testing.T) {
	rng := stats.NewRNG(44)
	ds, _ := GenerateSyntheticMulti(rng, MultiSyntheticOptions{Samples: 900, Dim: 4, Classes: 3})
	shards := PartitionMultiNonIID(rng, ds, 6, 0.5)
	clients := map[int]*MultiClient{}
	for i, s := range shards {
		clients[i] = &MultiClient{ID: i, Data: s, Theta: 0.5, LR: 0.3}
	}
	schedule := make([][]int, 25)
	for r := range schedule {
		schedule[r] = []int{r % 6, (r + 2) % 6, (r + 4) % 6}
	}
	res, err := TrainMulti(clients, schedule, ds, TrainConfig{Dim: 12, Rounds: 25, L2: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	final := res.History[len(res.History)-1]
	if final.Accuracy < 0.7 {
		t.Fatalf("final multiclass accuracy %v too low", final.Accuracy)
	}
	if res.History[0].GradNorm <= final.GradNorm {
		t.Fatal("no gradient progress")
	}
}

func TestTrainMultiErrors(t *testing.T) {
	clients := map[int]*MultiClient{0: {ID: 0, Theta: 0.5, LR: 0.1}}
	if _, err := TrainMulti(clients, [][]int{{0}}, MultiDataset{Classes: 2}, TrainConfig{Dim: 0, Rounds: 1}); err == nil {
		t.Fatal("Dim=0 must error")
	}
	if _, err := TrainMulti(clients, nil, MultiDataset{Classes: 2}, TrainConfig{Dim: 2, Rounds: 1}); err == nil {
		t.Fatal("short schedule must error")
	}
	if _, err := TrainMulti(clients, [][]int{{9}}, MultiDataset{Classes: 2}, TrainConfig{Dim: 2, Rounds: 1}); err == nil {
		t.Fatal("unknown client must error")
	}
}

func TestMultiClientLocalAccuracyContract(t *testing.T) {
	rng := stats.NewRNG(45)
	ds, _ := GenerateSyntheticMulti(rng, MultiSyntheticOptions{Samples: 300, Dim: 3, Classes: 3})
	c := &MultiClient{ID: 0, Data: ds, Theta: 0.5, LR: 0.3, MaxLocalIters: 2000}
	w0 := make([]float64, 9)
	g0 := Norm(SoftmaxGrad(w0, ds, 0.01))
	w1, iters := c.LocalUpdate(w0, 0.01)
	if iters == 0 {
		t.Fatal("no local work")
	}
	if g1 := Norm(SoftmaxGrad(w1, ds, 0.01)); g1 > 0.5*g0+1e-9 {
		t.Fatalf("θ contract broken: %v > %v", g1, 0.5*g0)
	}
}
