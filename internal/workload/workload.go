// Package workload generates bid populations following the evaluation
// setup of §VII-A of the paper:
//
//   - I = 1000 clients, J = 5 bids each, T = 50, K = 20 by default;
//   - t_i^cmp ~ U[5,10], t_i^com ~ U[10,15] per client;
//   - local accuracy θ_ij ~ U[0.3, 0.8];
//   - availability windows from 2J non-repeated draws in [1, T], sorted,
//     paired into J disjoint periods;
//   - participation rounds c_ij ~ U[1, d_ij − a_ij];
//   - claimed cost b_ij ~ U[10, 50] (CostUniform) or proportional to the
//     bid's computation + communication load (CostResource);
//   - t_max = 60.
//
// All draws flow through a seeded stats.RNG, so populations are fully
// reproducible.
package workload

import (
	"fmt"
	"math"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/stats"
)

// CostModel selects how claimed costs are generated.
type CostModel int

const (
	// CostUniform draws b_ij ~ U[CostLo, CostHi] as stated in §VII-A.
	CostUniform CostModel = iota
	// CostResource prices a bid proportionally to its resource usage:
	// b_ij = (α·T_l(θ_ij)·t_i^cmp + β·t_i^com)·c_ij·(1+noise). It makes
	// computation dominate bids with small θ (many local iterations) and
	// communication dominate bids with many rounds — the structure the
	// paper's Fig. 7 narrative relies on.
	CostResource
)

// String names the cost model.
func (m CostModel) String() string {
	switch m {
	case CostUniform:
		return "uniform"
	case CostResource:
		return "resource"
	default:
		return "unknown"
	}
}

// Params describes a bid population. NewDefaultParams matches §VII-A.
type Params struct {
	Clients     int     // I
	BidsPerUser int     // J
	T           int     // maximum global iterations
	K           int     // participants per iteration
	TMax        float64 // t_max

	CompLo, CompHi float64 // t_i^cmp range
	CommLo, CommHi float64 // t_i^com range
	ThetaLo        float64 // local accuracy range
	ThetaHi        float64
	CostLo, CostHi float64 // claimed cost range (CostUniform)

	CostModel CostModel
	// Alpha and Beta weight computation and communication load in
	// CostResource; Noise is the relative perturbation amplitude.
	Alpha, Beta, Noise float64

	// Diurnal biases availability windows toward the late portion of the
	// horizon (phones idle and charging in the evening): window endpoints
	// are drawn with weight 1 + DiurnalPeak·exp(−((t − ¾T)/(0.15T))²)
	// instead of uniformly. Zero DiurnalPeak keeps the §VII-A uniform
	// draws.
	DiurnalPeak float64

	Seed int64
}

// NewDefaultParams returns the §VII-A defaults.
func NewDefaultParams() Params {
	return Params{
		Clients:     1000,
		BidsPerUser: 5,
		T:           50,
		K:           20,
		TMax:        60,
		CompLo:      5, CompHi: 10,
		CommLo: 10, CommHi: 15,
		ThetaLo: 0.3, ThetaHi: 0.8,
		CostLo: 10, CostHi: 50,
		CostModel: CostUniform,
		Alpha:     0.2, Beta: 0.25, Noise: 0.15,
		Seed: 1,
	}
}

// Config converts the population parameters into an auction configuration.
func (p Params) Config() core.Config {
	return core.Config{T: p.T, K: p.K, TMax: p.TMax}
}

// Validate checks the parameters for internal consistency.
func (p Params) Validate() error {
	switch {
	case p.Clients < 1:
		return fmt.Errorf("workload: Clients=%d must be ≥ 1", p.Clients)
	case p.BidsPerUser < 1:
		return fmt.Errorf("workload: BidsPerUser=%d must be ≥ 1", p.BidsPerUser)
	case p.T < 2:
		return fmt.Errorf("workload: T=%d must be ≥ 2", p.T)
	case 2*p.BidsPerUser > p.T:
		return fmt.Errorf("workload: 2J=%d non-repeated draws cannot fit in [1,%d]", 2*p.BidsPerUser, p.T)
	case p.K < 1:
		return fmt.Errorf("workload: K=%d must be ≥ 1", p.K)
	case p.ThetaLo <= 0 || p.ThetaHi >= 1 || p.ThetaLo > p.ThetaHi:
		return fmt.Errorf("workload: θ range [%g,%g] must lie in (0,1)", p.ThetaLo, p.ThetaHi)
	case p.CostLo <= 0 || p.CostLo > p.CostHi:
		return fmt.Errorf("workload: cost range [%g,%g] invalid", p.CostLo, p.CostHi)
	case p.CompLo < 0 || p.CompLo > p.CompHi:
		return fmt.Errorf("workload: t_cmp range [%g,%g] invalid", p.CompLo, p.CompHi)
	case p.CommLo < 0 || p.CommLo > p.CommHi:
		return fmt.Errorf("workload: t_com range [%g,%g] invalid", p.CommLo, p.CommHi)
	}
	return nil
}

// Generate draws a bid population. The same Params (including Seed) always
// produce the same population.
func Generate(p Params) ([]core.Bid, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(p.Seed)
	bids := make([]core.Bid, 0, p.Clients*p.BidsPerUser)
	for c := 0; c < p.Clients; c++ {
		bids = append(bids, generateClient(rng, p, c)...)
	}
	return bids, nil
}

// generateClient draws one client's J bids: disjoint windows from 2J
// non-repeated numbers, per-client timing, per-bid accuracy/rounds/cost.
func generateClient(rng *stats.RNG, p Params, client int) []core.Bid {
	comp := rng.FloatRange(p.CompLo, p.CompHi)
	comm := rng.FloatRange(p.CommLo, p.CommHi)
	var marks []int
	if p.DiurnalPeak > 0 {
		weights := make([]float64, p.T)
		center := 0.75 * float64(p.T)
		width := 0.15 * float64(p.T)
		for t := 1; t <= p.T; t++ {
			d := (float64(t) - center) / width
			weights[t-1] = 1 + p.DiurnalPeak*math.Exp(-d*d)
		}
		for _, i := range rng.WeightedSampleWithoutReplacement(2*p.BidsPerUser, weights) {
			marks = append(marks, i+1)
		}
	} else {
		marks = rng.SampleWithoutReplacement(2*p.BidsPerUser, 1, p.T)
	}
	bids := make([]core.Bid, 0, p.BidsPerUser)
	for j := 0; j < p.BidsPerUser; j++ {
		start, end := marks[2*j], marks[2*j+1]
		// Rounds ~ U[1, d−a]; adjacent marks can touch (d−a of at least
		// 1 is guaranteed because marks are distinct and sorted).
		rounds := rng.IntRange(1, end-start)
		theta := rng.FloatRange(p.ThetaLo, p.ThetaHi)
		b := core.Bid{
			Client:   client,
			Index:    j,
			Theta:    theta,
			Start:    start,
			End:      end,
			Rounds:   rounds,
			CompTime: comp,
			CommTime: comm,
		}
		b.Price = price(rng, p, b)
		b.TrueCost = b.Price
		bids = append(bids, b)
	}
	return bids
}

func price(rng *stats.RNG, p Params, b core.Bid) float64 {
	switch p.CostModel {
	case CostResource:
		load := p.Alpha*core.PaperLocalIters(b.Theta)*b.CompTime + p.Beta*b.CommTime
		v := load * float64(b.Rounds) * (1 + p.Noise*(2*rng.Float64()-1))
		if v < p.CostLo {
			v = p.CostLo
		}
		return v
	default:
		return rng.FloatRange(p.CostLo, p.CostHi)
	}
}
