package workload

import (
	"bytes"
	"testing"
)

// FuzzWorkloadJSON drives the JSON bid IO with arbitrary bytes: decoding
// never panics, and any population the reader accepts must survive a full
// encode → decode round trip unchanged and re-validate. The round trip is
// what forces the reader's validation to be complete — a non-finite or
// negative field that slipped through would either fail to re-encode or
// come back different.
func FuzzWorkloadJSON(f *testing.F) {
	p := NewDefaultParams()
	p.Clients = 3
	if bids, err := Generate(p); err == nil {
		var buf bytes.Buffer
		if err := WriteBidsJSON(&buf, bids); err == nil {
			f.Add(buf.Bytes())
		}
	}
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"client":0,"index":0,"price":2,"theta":0.5,"start":1,"end":2,"rounds":1}]`))
	f.Add([]byte(`[{"price":-3,"theta":0.5,"start":1,"end":2,"rounds":1}]`))
	f.Add([]byte(`[{"price":1e308,"true_cost":1e308,"theta":0.999,"start":1,"end":1,"rounds":1}]`))
	f.Add([]byte(`[{"start":2,"end":1,"rounds":5}]`))
	f.Add([]byte(`{"not":"an array"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		bids, err := ReadBidsJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, b := range bids {
			if err := validateBidFields(b); err != nil {
				t.Fatalf("reader accepted invalid bid %d: %v", i, err)
			}
		}
		var buf bytes.Buffer
		if err := WriteBidsJSON(&buf, bids); err != nil {
			t.Fatalf("accepted population failed to re-encode: %v", err)
		}
		again, err := ReadBidsJSON(&buf)
		if err != nil {
			t.Fatalf("re-encoded population failed to decode: %v", err)
		}
		if len(again) != len(bids) {
			t.Fatalf("round trip changed length: %d vs %d", len(again), len(bids))
		}
		for i := range bids {
			if again[i] != bids[i] {
				t.Fatalf("bid %d changed across the round trip:\n%+v\n%+v", i, bids[i], again[i])
			}
		}
	})
}
