package workload

import (
	"bytes"
	"strings"
	"testing"

	"github.com/fedauction/afl/internal/core"
)

func samplePopulation(t *testing.T) []core.Bid {
	t.Helper()
	p := NewDefaultParams()
	p.Clients = 25
	bids, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return bids
}

func TestBidsJSONRoundTrip(t *testing.T) {
	bids := samplePopulation(t)
	var buf bytes.Buffer
	if err := WriteBidsJSON(&buf, bids); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBidsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(bids) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(bids))
	}
	for i := range bids {
		if got[i] != bids[i] {
			t.Fatalf("bid %d differs after JSON round trip", i)
		}
	}
	if _, err := ReadBidsJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed JSON must error")
	}
}

func TestBidsJSONRejectsInvalidFields(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"negative price", `[{"price":-3,"theta":0.5,"start":1,"end":2,"rounds":1}]`},
		{"negative comp time", `[{"price":1,"theta":0.5,"start":1,"end":2,"rounds":1,"comptime":-4}]`},
		{"theta at one", `[{"price":1,"theta":1,"start":1,"end":2,"rounds":1}]`},
		{"zero start", `[{"price":1,"theta":0.5,"start":0,"end":2,"rounds":1}]`},
		{"inverted window", `[{"price":1,"theta":0.5,"start":3,"end":2,"rounds":1}]`},
		{"zero rounds", `[{"price":1,"theta":0.5,"start":1,"end":2,"rounds":0}]`},
		{"rounds exceed window", `[{"price":1,"theta":0.5,"start":1,"end":2,"rounds":3}]`},
		{"negative client", `[{"client":-1,"price":1,"theta":0.5,"start":1,"end":2,"rounds":1}]`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadBidsJSON(strings.NewReader(tc.in)); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestBidsCSVRoundTrip(t *testing.T) {
	bids := samplePopulation(t)
	var buf bytes.Buffer
	if err := WriteBidsCSV(&buf, bids); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBidsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(bids) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(bids))
	}
	for i := range bids {
		if got[i] != bids[i] {
			t.Fatalf("bid %d differs after CSV round trip:\n%+v\n%+v", i, got[i], bids[i])
		}
	}
}

func TestBidsCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"wrong header", "a,b,c,d,e,f,g,h,i,j\n"},
		{"short row", "client,index,price,true_cost,theta,start,end,rounds,comp_time,comm_time\n1,2,3\n"},
		{"bad int", "client,index,price,true_cost,theta,start,end,rounds,comp_time,comm_time\nX,0,1,1,0.5,1,2,1,5,10\n"},
		{"bad float", "client,index,price,true_cost,theta,start,end,rounds,comp_time,comm_time\n0,0,X,1,0.5,1,2,1,5,10\n"},
		{"NaN price", "client,index,price,true_cost,theta,start,end,rounds,comp_time,comm_time\n0,0,NaN,1,0.5,1,2,1,5,10\n"},
		{"Inf time", "client,index,price,true_cost,theta,start,end,rounds,comp_time,comm_time\n0,0,1,1,0.5,1,2,1,+Inf,10\n"},
		{"negative price", "client,index,price,true_cost,theta,start,end,rounds,comp_time,comm_time\n0,0,-1,1,0.5,1,2,1,5,10\n"},
		{"theta out of range", "client,index,price,true_cost,theta,start,end,rounds,comp_time,comm_time\n0,0,1,1,1.5,1,2,1,5,10\n"},
		{"inverted window", "client,index,price,true_cost,theta,start,end,rounds,comp_time,comm_time\n0,0,1,1,0.5,3,2,1,5,10\n"},
		{"rounds exceed window", "client,index,price,true_cost,theta,start,end,rounds,comp_time,comm_time\n0,0,1,1,0.5,1,2,5,5,10\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadBidsCSV(strings.NewReader(tc.in)); err == nil {
				t.Fatal("expected parse error")
			}
		})
	}
}
