package workload

import (
	"testing"

	"github.com/fedauction/afl/internal/core"
)

func TestGenerateDefaults(t *testing.T) {
	p := NewDefaultParams()
	p.Clients = 50 // keep the test fast
	bids, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(bids) != p.Clients*p.BidsPerUser {
		t.Fatalf("got %d bids, want %d", len(bids), p.Clients*p.BidsPerUser)
	}
	if err := core.ValidateBids(bids, p.T, p.K); err != nil {
		t.Fatalf("generated bids invalid: %v", err)
	}
	perClient := map[int][]core.Bid{}
	for _, b := range bids {
		perClient[b.Client] = append(perClient[b.Client], b)
		if b.Theta < p.ThetaLo || b.Theta > p.ThetaHi {
			t.Fatalf("θ=%v outside [%v,%v]", b.Theta, p.ThetaLo, p.ThetaHi)
		}
		if b.Price < p.CostLo || b.Price > p.CostHi {
			t.Fatalf("price %v outside [%v,%v]", b.Price, p.CostLo, p.CostHi)
		}
		if b.CompTime < p.CompLo || b.CompTime >= p.CompHi {
			t.Fatalf("t_cmp %v outside range", b.CompTime)
		}
		if b.CommTime < p.CommLo || b.CommTime >= p.CommHi {
			t.Fatalf("t_com %v outside range", b.CommTime)
		}
		if b.TrueCost != b.Price {
			t.Fatal("generated bids must be truthful")
		}
		if b.Rounds < 1 || b.Rounds > b.End-b.Start {
			t.Fatalf("rounds %d outside [1, %d]", b.Rounds, b.End-b.Start)
		}
	}
	for c, cb := range perClient {
		if len(cb) != p.BidsPerUser {
			t.Fatalf("client %d has %d bids", c, len(cb))
		}
		// Windows are disjoint and ordered; per-client timing is shared.
		for j := 1; j < len(cb); j++ {
			if cb[j].Start <= cb[j-1].End {
				t.Fatalf("client %d windows overlap: %v then %v", c, cb[j-1], cb[j])
			}
			if cb[j].CompTime != cb[0].CompTime || cb[j].CommTime != cb[0].CommTime {
				t.Fatalf("client %d has inconsistent timing across bids", c)
			}
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	p := NewDefaultParams()
	p.Clients = 20
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bid %d differs between equal-seed runs", i)
		}
	}
	p.Seed = 2
	c, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical populations")
	}
}

func TestGenerateResourceCosts(t *testing.T) {
	p := NewDefaultParams()
	p.Clients = 100
	p.CostModel = CostResource
	bids, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	// Resource costs must grow with rounds on average: compare mean cost
	// per round of 1-round vs ≥5-round bids.
	var lowSum, lowN, highSum, highN float64
	for _, b := range bids {
		if b.Rounds == 1 {
			lowSum += b.Price
			lowN++
		}
		if b.Rounds >= 5 {
			highSum += b.Price
			highN++
		}
	}
	if lowN == 0 || highN == 0 {
		t.Skip("degenerate population")
	}
	if highSum/highN <= lowSum/lowN {
		t.Fatalf("resource cost not increasing in rounds: %v vs %v", highSum/highN, lowSum/lowN)
	}
	if err := core.ValidateBids(bids, p.T, p.K); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidate(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.Clients = 0 },
		func(p *Params) { p.BidsPerUser = 0 },
		func(p *Params) { p.T = 1 },
		func(p *Params) { p.BidsPerUser = p.T }, // 2J > T
		func(p *Params) { p.K = 0 },
		func(p *Params) { p.ThetaLo = 0 },
		func(p *Params) { p.ThetaHi = 1 },
		func(p *Params) { p.ThetaLo, p.ThetaHi = 0.8, 0.3 },
		func(p *Params) { p.CostLo = 0 },
		func(p *Params) { p.CostLo, p.CostHi = 50, 10 },
		func(p *Params) { p.CompLo, p.CompHi = 10, 5 },
		func(p *Params) { p.CommLo, p.CommHi = 15, 10 },
	}
	for i, mutate := range mutations {
		p := NewDefaultParams()
		mutate(&p)
		if _, err := Generate(p); err == nil {
			t.Fatalf("mutation %d: expected validation error", i)
		}
	}
}

func TestCostModelString(t *testing.T) {
	if CostUniform.String() != "uniform" || CostResource.String() != "resource" || CostModel(9).String() != "unknown" {
		t.Fatal("cost model names wrong")
	}
}

func TestGeneratedAuctionRunsEndToEnd(t *testing.T) {
	p := NewDefaultParams()
	p.Clients = 120
	p.T = 20
	p.K = 5
	bids, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunAuction(bids, p.Config())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("default-style population should be feasible")
	}
	if err := core.CheckSolution(bids, res, p.Config()); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDiurnal(t *testing.T) {
	base := NewDefaultParams()
	base.Clients = 300
	diurnal := base
	diurnal.DiurnalPeak = 6

	uniformBids, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	diurnalBids, err := Generate(diurnal)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ValidateBids(diurnalBids, diurnal.T, diurnal.K); err != nil {
		t.Fatal(err)
	}
	mid := func(bids []core.Bid) float64 {
		var sum float64
		for _, b := range bids {
			sum += float64(b.Start+b.End) / 2
		}
		return sum / float64(len(bids))
	}
	// The diurnal population's windows concentrate around ¾T, so their
	// mean midpoint must sit clearly later than the uniform population's.
	if mid(diurnalBids) < mid(uniformBids)+1 {
		t.Fatalf("diurnal midpoints %.2f not later than uniform %.2f",
			mid(diurnalBids), mid(uniformBids))
	}
}
