package workload

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"github.com/fedauction/afl/internal/core"
)

// validateBidFields enforces the field-level sanity both readers share:
// every float finite and non-negative, θ inside [0, 1), and a coherent
// window. Full auction-level validation (against T and K) stays with
// core.ValidateBids; this guard only keeps obviously corrupt input —
// NaN prices, negative times, inverted windows — from flowing into the
// rest of the pipeline as if it were data.
func validateBidFields(b core.Bid) error {
	floats := []struct {
		name string
		v    float64
	}{
		{"price", b.Price}, {"true_cost", b.TrueCost}, {"theta", b.Theta},
		{"comp_time", b.CompTime}, {"comm_time", b.CommTime},
	}
	for _, f := range floats {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("field %s is not finite", f.name)
		}
		if f.v < 0 {
			return fmt.Errorf("field %s is negative (%g)", f.name, f.v)
		}
	}
	if b.Theta >= 1 {
		return fmt.Errorf("field theta = %g must lie in [0, 1)", b.Theta)
	}
	switch {
	case b.Client < 0:
		return fmt.Errorf("field client is negative (%d)", b.Client)
	case b.Index < 0:
		return fmt.Errorf("field index is negative (%d)", b.Index)
	case b.Start < 1:
		return fmt.Errorf("field start = %d must be ≥ 1", b.Start)
	case b.End < b.Start:
		return fmt.Errorf("window [%d, %d] is inverted", b.Start, b.End)
	case b.Rounds < 1:
		return fmt.Errorf("field rounds = %d must be ≥ 1", b.Rounds)
	case b.Rounds > b.End-b.Start+1:
		return fmt.Errorf("rounds = %d exceed window [%d, %d]", b.Rounds, b.Start, b.End)
	}
	return nil
}

// WriteBidsJSON writes a bid population as a JSON array.
func WriteBidsJSON(w io.Writer, bids []core.Bid) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(bids); err != nil {
		return fmt.Errorf("workload: encode bids: %w", err)
	}
	return nil
}

// ReadBidsJSON reads a JSON array of bids and validates every field.
func ReadBidsJSON(r io.Reader) ([]core.Bid, error) {
	var bids []core.Bid
	if err := json.NewDecoder(r).Decode(&bids); err != nil {
		return nil, fmt.Errorf("workload: decode bids: %w", err)
	}
	for i, b := range bids {
		if err := validateBidFields(b); err != nil {
			return nil, fmt.Errorf("workload: bid %d: %w", i, err)
		}
	}
	return bids, nil
}

// csvHeader is the canonical column order of the CSV bid format.
var csvHeader = []string{
	"client", "index", "price", "true_cost", "theta",
	"start", "end", "rounds", "comp_time", "comm_time",
}

// WriteBidsCSV writes a bid population in the canonical CSV format
// (header row plus one row per bid).
func WriteBidsCSV(w io.Writer, bids []core.Bid) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("workload: write CSV header: %w", err)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	d := strconv.Itoa
	for _, b := range bids {
		row := []string{
			d(b.Client), d(b.Index), f(b.Price), f(b.TrueCost), f(b.Theta),
			d(b.Start), d(b.End), d(b.Rounds), f(b.CompTime), f(b.CommTime),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("workload: write CSV row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("workload: flush CSV: %w", err)
	}
	return nil
}

// ReadBidsCSV reads bids in the canonical CSV format. The header row is
// validated so column drift fails loudly instead of silently misparsing.
func ReadBidsCSV(r io.Reader) ([]core.Bid, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: read CSV header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("workload: CSV column %d is %q, want %q", i, header[i], want)
		}
	}
	var bids []core.Bid
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: read CSV line %d: %w", line, err)
		}
		b, err := parseCSVRow(row)
		if err != nil {
			return nil, fmt.Errorf("workload: CSV line %d: %w", line, err)
		}
		bids = append(bids, b)
	}
	return bids, nil
}

func parseCSVRow(row []string) (core.Bid, error) {
	var b core.Bid
	ints := []struct {
		dst *int
		col int
	}{
		{&b.Client, 0}, {&b.Index, 1}, {&b.Start, 5}, {&b.End, 6}, {&b.Rounds, 7},
	}
	for _, spec := range ints {
		v, err := strconv.Atoi(row[spec.col])
		if err != nil {
			return core.Bid{}, fmt.Errorf("column %s: %w", csvHeader[spec.col], err)
		}
		*spec.dst = v
	}
	floats := []struct {
		dst *float64
		col int
	}{
		{&b.Price, 2}, {&b.TrueCost, 3}, {&b.Theta, 4}, {&b.CompTime, 8}, {&b.CommTime, 9},
	}
	for _, spec := range floats {
		v, err := strconv.ParseFloat(row[spec.col], 64)
		if err != nil {
			return core.Bid{}, fmt.Errorf("column %s: %w", csvHeader[spec.col], err)
		}
		*spec.dst = v
	}
	if err := validateBidFields(b); err != nil {
		return core.Bid{}, err
	}
	return b, nil
}
