package exact

import (
	"math"

	"github.com/fedauction/afl/internal/core"
)

// VCGResult is the outcome of the Vickrey-Clarke-Groves mechanism on one
// WDP: the cost-optimal allocation with payments equal to each winner's
// externality. VCG is exactly truthful and exactly optimal, but needs an
// optimal solver per winner, so it only scales to the instance sizes the
// branch-and-bound handles; it serves as the gold-standard reference the
// polynomial-time A_FL trades against.
type VCGResult struct {
	// Feasible reports whether the WDP admits any solution.
	Feasible bool
	// Proven reports whether every branch-and-bound run completed; when
	// false some payment rests on a non-optimal bound and exact
	// truthfulness is not guaranteed.
	Proven bool
	// Cost is the optimal social cost.
	Cost float64
	// Winners holds the optimal allocation; each winner's Payment is its
	// VCG payment v_i + (OPT₋ᵢ − OPT), the welfare externality it
	// imposes, which always covers its claimed cost.
	Winners []core.Winner
}

// SolveVCG computes the VCG outcome of the fixed-T̂_g WDP over the
// qualified bids.
func SolveVCG(bids []core.Bid, qualified []int, tg int, cfg core.Config, opts Options) VCGResult {
	base := SolveWDP(bids, qualified, tg, cfg, opts)
	if !base.Feasible {
		return VCGResult{}
	}
	res := VCGResult{Feasible: true, Proven: base.Proven, Cost: base.Cost}
	for _, w := range base.Winners {
		// Remove every bid of the winner's client and re-solve.
		reduced := make([]int, 0, len(qualified))
		for _, q := range qualified {
			if bids[q].Client != w.Bid.Client {
				reduced = append(reduced, q)
			}
		}
		without := SolveWDP(bids, reduced, tg, cfg, opts)
		w2 := w
		if !without.Feasible {
			// The client is essential: its externality is unbounded. Pay
			// the claimed price plus the rest-of-solution cost as a
			// finite sentinel and mark the run unproven.
			w2.Payment = math.Inf(1)
			res.Proven = false
		} else {
			if !without.Proven {
				res.Proven = false
			}
			// Payment = v_i + (OPT₋ᵢ − (OPT − v_i)): the winner's cost
			// share plus the harm its presence does to everyone else.
			w2.Payment = without.Cost - (base.Cost - w.Bid.Price)
		}
		res.Winners = append(res.Winners, w2)
	}
	return res
}

// TotalPayment sums the finite VCG payments; +Inf propagates if any
// winner is essential.
func (r VCGResult) TotalPayment() float64 {
	var sum float64
	for _, w := range r.Winners {
		sum += w.Payment
	}
	return sum
}
