// Package exact computes optimal winner-determination solutions by
// branch-and-bound, providing the "optimal algorithm" the paper's
// performance-ratio figures (Fig. 3, Fig. 4) divide by.
//
// The solver works on the compact formulation (ILP (6) restricted to a
// fixed T̂_g): binary acceptance variables x_ij and scheduling variables
// y_i(t). It branches only on x — for any integral acceptance vector the
// y-polytope (row sums fixed to c_ij, column sums ≥ K, window bounds) is a
// transportation polytope, so an integral schedule exists whenever the LP
// is feasible, and is constructed with a max-flow. Node bounds come from
// the LP relaxation solved with internal/lp; the incumbent is seeded with
// the greedy A_winner solution.
package exact

import (
	"math"
	"sort"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/lp"
)

// Result reports a branch-and-bound run.
type Result struct {
	// Feasible reports whether any full K-coverage solution exists.
	Feasible bool
	// Proven reports whether the search completed, making Cost the true
	// optimum; when false (node budget exhausted) Cost is the best
	// incumbent and LowerBound still holds.
	Proven bool
	// Cost is the best (or optimal) social cost found.
	Cost float64
	// LowerBound is a valid lower bound on the optimal cost (root LP when
	// the budget runs out, equal to Cost when Proven).
	LowerBound float64
	// Winners are the accepted bids with integral schedules.
	Winners []core.Winner
	// Nodes counts explored branch-and-bound nodes.
	Nodes int
}

// Options tunes the search.
type Options struct {
	// MaxNodes caps explored nodes. Zero means 20000.
	MaxNodes int
}

func (o Options) maxNodes() int {
	if o.MaxNodes <= 0 {
		return 20000
	}
	return o.MaxNodes
}

// SolveWDP finds the optimal solution of the fixed-T̂_g WDP over the
// qualified bids.
func SolveWDP(bids []core.Bid, qualified []int, tg int, cfg core.Config, opts Options) Result {
	if tg < 1 || len(qualified) == 0 {
		return Result{}
	}
	m := newModel(bids, qualified, tg, cfg.K)

	res := Result{LowerBound: math.Inf(-1)}
	// Incumbent: greedy solution.
	best := math.Inf(1)
	var bestFixed map[int]int
	if seed := core.SolveWDP(bids, qualified, tg, cfg); seed.Feasible {
		best = seed.Cost
		bestFixed = make(map[int]int)
		for _, q := range qualified {
			bestFixed[q] = 0
		}
		for _, w := range seed.Winners {
			bestFixed[w.BidIndex] = 1
		}
	}

	type node struct {
		bound float64
		fixed map[int]int // bid index → forced 0/1
		x     map[int]float64
	}
	rootBound, rootX, ok := m.relax(nil)
	if !ok {
		// Root LP infeasible: no solution at all.
		return Result{}
	}
	res.LowerBound = rootBound
	// Best-first search over a slice-backed priority queue (small enough
	// that O(n) extraction is irrelevant next to the LP solves).
	open := []node{{bound: rootBound, fixed: nil, x: rootX}}
	for len(open) > 0 && res.Nodes < opts.maxNodes() {
		// Extract the minimum-bound node.
		bi := 0
		for i := range open {
			if open[i].bound < open[bi].bound {
				bi = i
			}
		}
		nd := open[bi]
		open[bi] = open[len(open)-1]
		open = open[:len(open)-1]
		if nd.bound >= best-1e-7 {
			continue
		}
		res.Nodes++
		// Find the most fractional acceptance variable.
		branch := -1
		bestFrac := 1e-6
		for _, q := range qualified {
			v := nd.x[q]
			if frac := math.Min(v, 1-v); frac > bestFrac {
				bestFrac = frac
				branch = q
			}
		}
		if branch == -1 {
			// Integral: candidate solution.
			if nd.bound < best-1e-9 {
				best = nd.bound
				bestFixed = make(map[int]int, len(qualified))
				for _, q := range qualified {
					if nd.x[q] > 0.5 {
						bestFixed[q] = 1
					} else {
						bestFixed[q] = 0
					}
				}
			}
			continue
		}
		for _, v := range []int{1, 0} {
			child := make(map[int]int, len(nd.fixed)+1)
			for k2, v2 := range nd.fixed {
				child[k2] = v2
			}
			child[branch] = v
			cb, cx, feas := m.relax(child)
			if feas && cb < best-1e-7 {
				open = append(open, node{bound: cb, fixed: child, x: cx})
			}
		}
	}
	if math.IsInf(best, 1) {
		return Result{Nodes: res.Nodes}
	}
	res.Feasible = true
	res.Cost = best
	res.Proven = len(open) == 0
	if res.Proven {
		res.LowerBound = best
	} else {
		// Any better solution lives under an open node, so the smallest
		// open bound is a valid global lower bound (≥ the root bound).
		lb := best
		for _, nd := range open {
			if nd.bound < lb {
				lb = nd.bound
			}
		}
		res.LowerBound = lb
	}
	// Construct integral schedules for the chosen bids with the flow.
	var chosen []int
	for _, q := range qualified {
		if bestFixed[q] == 1 {
			chosen = append(chosen, q)
		}
	}
	winners, ok2 := ScheduleSubset(bids, chosen, tg, cfg.K)
	if !ok2 {
		// The chosen set came from a feasible LP with integral x, so the
		// transportation argument guarantees schedulability; reaching
		// here indicates numerics drifted. Be conservative.
		return Result{Nodes: res.Nodes}
	}
	res.Winners = winners
	return res
}

// BruteForce enumerates every acceptance vector (one bid per client) and
// returns the optimal cost, for cross-checking on tiny instances.
func BruteForce(bids []core.Bid, qualified []int, tg int, k int) (float64, bool) {
	// Group qualified bids by client; each client picks one bid or none.
	byClient := map[int][]int{}
	var clients []int
	for _, q := range qualified {
		c := bids[q].Client
		if _, ok := byClient[c]; !ok {
			clients = append(clients, c)
		}
		byClient[c] = append(byClient[c], q)
	}
	sort.Ints(clients)
	best := math.Inf(1)
	var chosen []int
	var rec func(ci int, cost float64)
	rec = func(ci int, cost float64) {
		if cost >= best {
			return
		}
		if ci == len(clients) {
			if _, ok := ScheduleSubset(bids, chosen, tg, k); ok {
				best = cost
			}
			return
		}
		rec(ci+1, cost)
		for _, q := range byClient[clients[ci]] {
			chosen = append(chosen, q)
			rec(ci+1, cost+bids[q].Price)
			chosen = chosen[:len(chosen)-1]
		}
	}
	rec(0, 0)
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}

// ScheduleSubset decides whether the chosen bids can K-cover all tg
// iterations and, if so, returns one integral schedule per bid. The
// decision reduces to a max flow saturating the slot→sink capacities.
func ScheduleSubset(bids []core.Bid, chosen []int, tg, k int) ([]core.Winner, bool) {
	// Nodes: 0 source, 1 sink, 2..2+n bids, 2+n..2+n+tg slots.
	n := len(chosen)
	f := newMaxflow(2 + n + tg)
	src, sink := 0, 1
	bidNode := func(i int) int { return 2 + i }
	slotNode := func(t int) int { return 2 + n + t - 1 }
	type arc struct{ id, bid, slot int }
	var arcs []arc
	for i, q := range chosen {
		b := bids[q]
		f.addEdge(src, bidNode(i), b.Rounds)
		hi := min(b.End, tg)
		if hi-b.Start+1 < b.Rounds {
			return nil, false
		}
		for t := b.Start; t <= hi; t++ {
			id := f.addEdge(bidNode(i), slotNode(t), 1)
			arcs = append(arcs, arc{id: id, bid: i, slot: t})
		}
	}
	for t := 1; t <= tg; t++ {
		f.addEdge(slotNode(t), sink, k)
	}
	if f.run(src, sink) < k*tg {
		return nil, false
	}
	// Collect flow-assigned slots, then pad every bid to exactly c_ij
	// rounds with unused window slots (over-coverage is allowed).
	slots := make([][]int, n)
	usedSlots := make([]map[int]bool, n)
	for i := range usedSlots {
		usedSlots[i] = make(map[int]bool)
	}
	for _, a := range arcs {
		if f.used(a.id) > 0 {
			slots[a.bid] = append(slots[a.bid], a.slot)
			usedSlots[a.bid][a.slot] = true
		}
	}
	winners := make([]core.Winner, 0, n)
	for i, q := range chosen {
		b := bids[q]
		hi := min(b.End, tg)
		for t := b.Start; t <= hi && len(slots[i]) < b.Rounds; t++ {
			if !usedSlots[i][t] {
				slots[i] = append(slots[i], t)
				usedSlots[i][t] = true
			}
		}
		if len(slots[i]) != b.Rounds {
			return nil, false
		}
		sort.Ints(slots[i])
		winners = append(winners, core.Winner{
			BidIndex: q, Bid: b, Slots: slots[i], Payment: b.Price,
		})
	}
	return winners, true
}

// model caches the static parts of the node LP relaxation.
type model struct {
	bids      []core.Bid
	qualified []int
	tg, k     int
	// Variable layout: x variables first (len(qualified)), then y
	// variables for every (client, slot) pair that some qualified bid of
	// the client can serve.
	nx     int
	yIndex map[[2]int]int // (client, slot) → variable index
	yPairs [][2]int
	// clientBids groups positions in qualified by client.
	clientBids map[int][]int
	clients    []int
}

func newModel(bids []core.Bid, qualified []int, tg, k int) *model {
	m := &model{
		bids: bids, qualified: qualified, tg: tg, k: k,
		nx:         len(qualified),
		yIndex:     make(map[[2]int]int),
		clientBids: make(map[int][]int),
	}
	for pos, q := range qualified {
		b := bids[q]
		if _, ok := m.clientBids[b.Client]; !ok {
			m.clients = append(m.clients, b.Client)
		}
		m.clientBids[b.Client] = append(m.clientBids[b.Client], pos)
		hi := min(b.End, tg)
		for t := b.Start; t <= hi; t++ {
			key := [2]int{b.Client, t}
			if _, ok := m.yIndex[key]; !ok {
				m.yIndex[key] = m.nx + len(m.yPairs)
				m.yPairs = append(m.yPairs, key)
			}
		}
	}
	sort.Ints(m.clients)
	return m
}

// relax solves the node LP with the given 0/1 fixings of x variables
// (indexed by bid index into bids). Returns (bound, xValues, feasible);
// xValues maps bid index → fractional acceptance.
func (m *model) relax(fixed map[int]int) (float64, map[int]float64, bool) {
	nv := m.nx + len(m.yPairs)
	p := lp.Problem{NumVars: nv, Objective: make([]float64, nv)}
	for pos, q := range m.qualified {
		p.Objective[pos] = m.bids[q].Price
	}
	addRow := func(coef []float64, rel lp.Relation, rhs float64) {
		p.Constraints = append(p.Constraints, lp.Constraint{Coef: coef, Rel: rel, RHS: rhs})
	}
	// Coverage (6a): Σ_i y_i(t) ≥ K.
	for t := 1; t <= m.tg; t++ {
		coef := make([]float64, nv)
		any := false
		for _, c := range m.clients {
			if yi, ok := m.yIndex[[2]int{c, t}]; ok {
				coef[yi] = 1
				any = true
			}
		}
		if !any {
			return 0, nil, false // slot unservable by any qualified bid
		}
		addRow(coef, lp.GE, float64(m.k))
	}
	// Rounds (6c): Σ_t y_i(t) = Σ_j c_ij x_ij per client.
	for _, c := range m.clients {
		coef := make([]float64, nv)
		for t := 1; t <= m.tg; t++ {
			if yi, ok := m.yIndex[[2]int{c, t}]; ok {
				coef[yi] = 1
			}
		}
		for _, pos := range m.clientBids[c] {
			coef[pos] = -float64(m.bids[m.qualified[pos]].Rounds)
		}
		addRow(coef, lp.EQ, 0)
	}
	// Window linkage (6e): y_i(t) ≤ Σ_{j: t ∈ window_j} x_ij.
	for _, pair := range m.yPairs {
		c, t := pair[0], pair[1]
		coef := make([]float64, nv)
		coef[m.yIndex[pair]] = 1
		for _, pos := range m.clientBids[c] {
			b := m.bids[m.qualified[pos]]
			if t >= b.Start && t <= min(b.End, m.tg) {
				coef[pos] = -1
			}
		}
		addRow(coef, lp.LE, 0)
	}
	// One bid per client (6f) and bounds, including fixings.
	for _, c := range m.clients {
		coef := make([]float64, nv)
		for _, pos := range m.clientBids[c] {
			coef[pos] = 1
		}
		addRow(coef, lp.LE, 1)
	}
	for pos, q := range m.qualified {
		coef := make([]float64, nv)
		coef[pos] = 1
		if v, ok := fixed[q]; ok {
			addRow(coef, lp.EQ, float64(v))
		} else {
			addRow(coef, lp.LE, 1)
		}
	}
	sol, err := lp.Solve(p)
	if err != nil || sol.Status != lp.Optimal {
		return 0, nil, false
	}
	x := make(map[int]float64, m.nx)
	for pos, q := range m.qualified {
		x[q] = sol.X[pos]
	}
	return sol.Objective, x, true
}
