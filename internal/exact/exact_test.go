package exact

import (
	"math"
	"testing"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/stats"
)

func allIdx(bids []core.Bid) []int {
	out := make([]int, len(bids))
	for i := range bids {
		out[i] = i
	}
	return out
}

func randomInstance(rng *stats.RNG) (bids []core.Bid, tg, k int) {
	tg = rng.IntRange(2, 6)
	k = rng.IntRange(1, 2)
	clients := rng.IntRange(k+1, 7)
	for c := 0; c < clients; c++ {
		n := rng.IntRange(1, 2)
		for j := 0; j < n; j++ {
			start := rng.IntRange(1, tg)
			end := rng.IntRange(start, tg)
			bids = append(bids, core.Bid{
				Client: c,
				Index:  j,
				Price:  float64(rng.IntRange(1, 30)),
				Theta:  0.4,
				Start:  start,
				End:    end,
				Rounds: rng.IntRange(1, end-start+1),
			})
		}
	}
	return bids, tg, k
}

func TestScheduleSubset(t *testing.T) {
	bids := []core.Bid{
		{Client: 0, Price: 1, Theta: 0.4, Start: 1, End: 2, Rounds: 2},
		{Client: 1, Price: 1, Theta: 0.4, Start: 2, End: 3, Rounds: 2},
	}
	// K=1, tg=3: client 0 covers {1,2}, client 1 covers {2,3}.
	winners, ok := ScheduleSubset(bids, []int{0, 1}, 3, 1)
	if !ok {
		t.Fatal("subset should be schedulable")
	}
	cover := map[int]int{}
	for _, w := range winners {
		if len(w.Slots) != w.Bid.Rounds {
			t.Fatalf("winner %v got %d slots", w.Bid, len(w.Slots))
		}
		for _, s := range w.Slots {
			if s < w.Bid.Start || s > w.Bid.End {
				t.Fatalf("slot %d outside window of %v", s, w.Bid)
			}
			cover[s]++
		}
	}
	for s := 1; s <= 3; s++ {
		if cover[s] < 1 {
			t.Fatalf("slot %d uncovered", s)
		}
	}
	// Without client 1, slot 3 cannot be covered.
	if _, ok := ScheduleSubset(bids, []int{0}, 3, 1); ok {
		t.Fatal("slot 3 should be uncoverable")
	}
	// K=2 with only two one-round-per-slot clients on slot 2 is fine, but
	// K=2 on slots 1 and 3 is not.
	if _, ok := ScheduleSubset(bids, []int{0, 1}, 3, 2); ok {
		t.Fatal("K=2 should be infeasible")
	}
}

func TestSolveWDPOnPaperExample(t *testing.T) {
	bids := []core.Bid{
		{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 2, Rounds: 1},
		{Client: 1, Price: 6, Theta: 0.5, Start: 2, End: 3, Rounds: 2},
		{Client: 2, Price: 5, Theta: 0.5, Start: 1, End: 3, Rounds: 2},
	}
	res := SolveWDP(bids, allIdx(bids), 3, core.Config{T: 3, K: 1}, Options{})
	if !res.Feasible || !res.Proven {
		t.Fatalf("res = %+v", res)
	}
	// Optimal is {B1, B3} at cost 7 (greedy finds it too here).
	if res.Cost != 7 {
		t.Fatalf("optimal cost = %v, want 7", res.Cost)
	}
}

func TestSolveWDPBeatsGreedySometimes(t *testing.T) {
	// Greedy picks the 1-slot bargain then pays for two wide bids; the
	// optimum skips it. B1 covers {1}, price 1 (avg 1); wide bids cover
	// {1,2,3} at price 5 with c=3... construct a known gap instance:
	bids := []core.Bid{
		{Client: 0, Price: 1.0, Theta: 0.4, Start: 1, End: 1, Rounds: 1},
		{Client: 1, Price: 3.5, Theta: 0.4, Start: 1, End: 3, Rounds: 3},
		{Client: 2, Price: 2.8, Theta: 0.4, Start: 2, End: 3, Rounds: 2},
	}
	cfg := core.Config{T: 3, K: 1}
	greedy := core.SolveWDP(bids, allIdx(bids), 3, cfg)
	opt := SolveWDP(bids, allIdx(bids), 3, cfg, Options{})
	if !greedy.Feasible || !opt.Feasible || !opt.Proven {
		t.Fatal("both must be feasible")
	}
	// Greedy: picks bid 0 (avg 1), then bid 2 (avg 1.4) — slot 1 done,
	// {2,3} done → cost 4.8 nope wait bid 1 avg 3.5/3≈1.17 < 1.4 →
	// greedy picks bid 1 second → cost 4.5; optimum is bid 1 alone = 3.5.
	if opt.Cost > 3.5+1e-9 {
		t.Fatalf("optimal cost = %v, want 3.5", opt.Cost)
	}
	if greedy.Cost < opt.Cost-1e-9 {
		t.Fatalf("greedy %v beat 'optimal' %v", greedy.Cost, opt.Cost)
	}
}

func TestSolveWDPMatchesBruteForce(t *testing.T) {
	rng := stats.NewRNG(404)
	agree := 0
	for trial := 0; trial < 60; trial++ {
		bids, tg, k := randomInstance(rng)
		qual := allIdx(bids)
		cfg := core.Config{T: tg, K: k}
		bf, bfOK := BruteForce(bids, qual, tg, k)
		res := SolveWDP(bids, qual, tg, cfg, Options{})
		if res.Feasible != bfOK {
			t.Fatalf("trial %d: feasible=%v but brute force %v", trial, res.Feasible, bfOK)
		}
		if !bfOK {
			continue
		}
		if !res.Proven {
			t.Fatalf("trial %d: tiny instance not proven optimal", trial)
		}
		if math.Abs(res.Cost-bf) > 1e-6 {
			t.Fatalf("trial %d: B&B %v, brute force %v", trial, res.Cost, bf)
		}
		agree++
		// The returned schedule must be valid.
		validateWinners(t, bids, res.Winners, tg, k)
		// And never above the greedy cost.
		if g := core.SolveWDP(bids, qual, tg, cfg); g.Feasible && res.Cost > g.Cost+1e-9 {
			t.Fatalf("trial %d: optimal %v above greedy %v", trial, res.Cost, g.Cost)
		}
	}
	if agree < 10 {
		t.Fatalf("only %d feasible instances", agree)
	}
}

func TestSolveWDPInfeasible(t *testing.T) {
	bids := []core.Bid{{Client: 0, Price: 1, Theta: 0.4, Start: 1, End: 2, Rounds: 1}}
	res := SolveWDP(bids, allIdx(bids), 3, core.Config{T: 3, K: 1}, Options{})
	if res.Feasible {
		t.Fatal("slot 3 unservable: must be infeasible")
	}
	if res2 := SolveWDP(nil, nil, 3, core.Config{T: 3, K: 1}, Options{}); res2.Feasible {
		t.Fatal("empty instance must be infeasible")
	}
}

func TestSolveWDPNodeBudget(t *testing.T) {
	rng := stats.NewRNG(7)
	for trial := 0; trial < 30; trial++ {
		bids, tg, k := randomInstance(rng)
		res := SolveWDP(bids, allIdx(bids), tg, core.Config{T: tg, K: k}, Options{MaxNodes: 1})
		if !res.Feasible {
			continue
		}
		// With a 1-node budget the incumbent is the greedy seed; the lower
		// bound must not exceed the cost.
		if res.LowerBound > res.Cost+1e-7 {
			t.Fatalf("trial %d: LB %v above cost %v", trial, res.LowerBound, res.Cost)
		}
		validateWinners(t, bids, res.Winners, tg, k)
	}
}

func validateWinners(t *testing.T, bids []core.Bid, winners []core.Winner, tg, k int) {
	t.Helper()
	cover := make([]int, tg+1)
	clients := map[int]bool{}
	for _, w := range winners {
		if clients[w.Bid.Client] {
			t.Fatalf("client %d wins twice", w.Bid.Client)
		}
		clients[w.Bid.Client] = true
		if len(w.Slots) != w.Bid.Rounds {
			t.Fatalf("%v: %d slots", w.Bid, len(w.Slots))
		}
		seen := map[int]bool{}
		for _, s := range w.Slots {
			if s < w.Bid.Start || s > w.Bid.End || s > tg || seen[s] {
				t.Fatalf("%v: bad slot %d", w.Bid, s)
			}
			seen[s] = true
			cover[s]++
		}
	}
	for s := 1; s <= tg; s++ {
		if cover[s] < k {
			t.Fatalf("slot %d covered %d < %d", s, cover[s], k)
		}
	}
}

func TestMaxflowPrimitive(t *testing.T) {
	// Classic 4-node example: s→a (3), s→b (2), a→b (1), a→t (2), b→t (3)
	// → max flow 5.
	f := newMaxflow(4)
	f.addEdge(0, 1, 3)
	f.addEdge(0, 2, 2)
	f.addEdge(1, 2, 1)
	f.addEdge(1, 3, 2)
	f.addEdge(2, 3, 3)
	if got := f.run(0, 3); got != 5 {
		t.Fatalf("max flow = %d, want 5", got)
	}
}
