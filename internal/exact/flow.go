package exact

// maxflow is a small Dinic implementation used to decide whether a set of
// accepted bids can be scheduled to K-cover every iteration, and to
// construct an integral schedule when it can. The network is
//
//	source → bid   (capacity c_ij)
//	bid    → slot  (capacity 1, slot inside the bid's clipped window)
//	slot   → sink  (capacity K)
//
// The bids can K-cover all T̂_g iterations iff the max flow saturates the
// slot→sink arcs, i.e. equals K·T̂_g. Rounds left over after the flow
// (c_ij minus shipped units) are placed on arbitrary unused window slots;
// coverage beyond K is always allowed.
type maxflow struct {
	n     int
	head  []int
	to    []int
	next  []int
	cap   []int
	level []int
	iter  []int
}

func newMaxflow(n int) *maxflow {
	f := &maxflow{n: n, head: make([]int, n)}
	for i := range f.head {
		f.head[i] = -1
	}
	return f
}

// addEdge inserts a directed edge u→v with the given capacity and its
// residual twin, returning the edge id (even ids are forward edges).
func (f *maxflow) addEdge(u, v, c int) int {
	id := len(f.to)
	f.to = append(f.to, v)
	f.cap = append(f.cap, c)
	f.next = append(f.next, f.head[u])
	f.head[u] = id
	f.to = append(f.to, u)
	f.cap = append(f.cap, 0)
	f.next = append(f.next, f.head[v])
	f.head[v] = id + 1
	return id
}

func (f *maxflow) bfs(s, t int) bool {
	f.level = make([]int, f.n)
	for i := range f.level {
		f.level[i] = -1
	}
	queue := []int{s}
	f.level[s] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for e := f.head[u]; e != -1; e = f.next[e] {
			if f.cap[e] > 0 && f.level[f.to[e]] < 0 {
				f.level[f.to[e]] = f.level[u] + 1
				queue = append(queue, f.to[e])
			}
		}
	}
	return f.level[t] >= 0
}

func (f *maxflow) dfs(u, t, limit int) int {
	if u == t {
		return limit
	}
	for ; f.iter[u] != -1; f.iter[u] = f.next[f.iter[u]] {
		e := f.iter[u]
		v := f.to[e]
		if f.cap[e] <= 0 || f.level[v] != f.level[u]+1 {
			continue
		}
		d := f.dfs(v, t, min(limit, f.cap[e]))
		if d > 0 {
			f.cap[e] -= d
			f.cap[e^1] += d
			return d
		}
	}
	return 0
}

// run computes the max flow from s to t.
func (f *maxflow) run(s, t int) int {
	flow := 0
	for f.bfs(s, t) {
		f.iter = make([]int, f.n)
		copy(f.iter, f.head)
		for {
			d := f.dfs(s, t, 1<<30)
			if d == 0 {
				break
			}
			flow += d
		}
	}
	return flow
}

// used reports how much of forward edge id was consumed.
func (f *maxflow) used(id int) int { return f.cap[id^1] }
