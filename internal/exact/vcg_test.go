package exact

import (
	"math"
	"testing"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/stats"
)

func TestSolveVCGPaperExample(t *testing.T) {
	bids := []core.Bid{
		{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 2, Rounds: 1},
		{Client: 1, Price: 6, Theta: 0.5, Start: 2, End: 3, Rounds: 2},
		{Client: 2, Price: 5, Theta: 0.5, Start: 1, End: 3, Rounds: 2},
	}
	res := SolveVCG(bids, allIdx(bids), 3, core.Config{T: 3, K: 1}, Options{})
	if !res.Feasible || !res.Proven {
		t.Fatalf("res = %+v", res)
	}
	if res.Cost != 7 {
		t.Fatalf("optimal cost = %v", res.Cost)
	}
	// Optimal allocation: B1 ({1}) + B3 ({2,3}).
	// VCG payment of B1: without client 0, OPT = B3+B2 = 11 → pay 11−5 = 6.
	// VCG payment of B3: without client 2, OPT = B1+B2 = 8 → pay 8−2 = 6.
	for _, w := range res.Winners {
		switch w.Bid.Client {
		case 0:
			if math.Abs(w.Payment-6) > 1e-9 {
				t.Fatalf("B1 VCG payment = %v, want 6", w.Payment)
			}
		case 2:
			if math.Abs(w.Payment-6) > 1e-9 {
				t.Fatalf("B3 VCG payment = %v, want 6", w.Payment)
			}
		default:
			t.Fatalf("unexpected winner %v", w.Bid)
		}
	}
}

func TestSolveVCGIndividualRationality(t *testing.T) {
	rng := stats.NewRNG(606)
	checked := 0
	for trial := 0; trial < 30; trial++ {
		bids, tg, k := randomInstance(rng)
		res := SolveVCG(bids, allIdx(bids), tg, core.Config{T: tg, K: k}, Options{})
		if !res.Feasible || !res.Proven {
			continue
		}
		checked++
		for _, w := range res.Winners {
			if w.Payment < w.Bid.Price-1e-6 {
				t.Fatalf("trial %d: VCG paid %v below cost %v", trial, w.Payment, w.Bid.Price)
			}
		}
	}
	if checked < 5 {
		t.Fatalf("only %d proven instances", checked)
	}
}

func TestSolveVCGTruthfulness(t *testing.T) {
	// VCG is dominant-strategy truthful: no unilateral price misreport
	// by a single-bid client increases its utility.
	rng := stats.NewRNG(707)
	probed := 0
	for trial := 0; trial < 40 && probed < 12; trial++ {
		bids, tg, k := randomInstance(rng)
		cfg := core.Config{T: tg, K: k}
		// Restrict to single-bid clients for the single-parameter claim.
		counts := map[int]int{}
		for _, b := range bids {
			counts[b.Client]++
		}
		base := SolveVCG(bids, allIdx(bids), tg, cfg, Options{})
		if !base.Feasible || !base.Proven {
			continue
		}
		victim := rng.Intn(len(bids))
		if counts[bids[victim].Client] != 1 {
			continue
		}
		probed++
		truthful := vcgUtility(bids, victim, bids[victim].Price, tg, cfg)
		if math.IsInf(truthful, 0) {
			continue
		}
		for _, factor := range []float64{0.4, 0.8, 1.3, 2.5} {
			lying := vcgUtility(bids, victim, bids[victim].Price*factor, tg, cfg)
			if math.IsInf(lying, 0) {
				continue
			}
			if lying > truthful+1e-6 {
				t.Fatalf("trial %d: VCG manipulable: %v > %v at ×%v", trial, lying, truthful, factor)
			}
		}
	}
	if probed == 0 {
		t.Fatal("no probes ran")
	}
}

func vcgUtility(bids []core.Bid, victim int, claimed float64, tg int, cfg core.Config) float64 {
	mod := make([]core.Bid, len(bids))
	copy(mod, bids)
	mod[victim].Price = claimed
	res := SolveVCG(mod, allIdx(mod), tg, cfg, Options{})
	if !res.Feasible {
		return 0
	}
	if !res.Proven {
		return math.Inf(-1) // signal: skip this probe
	}
	for _, w := range res.Winners {
		if w.Bid.Client == bids[victim].Client {
			return w.Payment - bids[victim].Price
		}
	}
	return 0
}

func TestSolveVCGInfeasible(t *testing.T) {
	bids := []core.Bid{{Client: 0, Price: 1, Theta: 0.4, Start: 1, End: 1, Rounds: 1}}
	if res := SolveVCG(bids, allIdx(bids), 2, core.Config{T: 2, K: 1}, Options{}); res.Feasible {
		t.Fatal("uncoverable instance must be infeasible")
	}
}

func TestSolveVCGEssentialWinner(t *testing.T) {
	// Client 0 is the only way to cover slot 2: its externality is
	// unbounded, payment +Inf, result unproven.
	bids := []core.Bid{
		{Client: 0, Price: 1, Theta: 0.4, Start: 1, End: 2, Rounds: 2},
		{Client: 1, Price: 1, Theta: 0.4, Start: 1, End: 1, Rounds: 1},
	}
	res := SolveVCG(bids, allIdx(bids), 2, core.Config{T: 2, K: 1}, Options{})
	if !res.Feasible {
		t.Fatal("instance is feasible")
	}
	if res.Proven {
		t.Fatal("essential winner must mark the result unproven")
	}
	found := false
	for _, w := range res.Winners {
		if w.Bid.Client == 0 && math.IsInf(w.Payment, 1) {
			found = true
		}
	}
	if !found {
		t.Fatalf("essential winner's payment not +Inf: %+v", res.Winners)
	}
	if !math.IsInf(res.TotalPayment(), 1) {
		t.Fatal("total payment must propagate +Inf")
	}
}
