package platform

import (
	"testing"
	"time"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/fl"
	"github.com/fedauction/afl/internal/stats"
)

// TestAccuracyAudit checks the θ-enforcement behind the paper's
// truthfulness-in-θ argument: a client that promises a stricter local
// accuracy than it actually trains to is detected and forfeits payment.
func TestAccuracyAudit(t *testing.T) {
	clk := NewVirtualClock()
	rng := stats.NewRNG(21)
	ds, _ := fl.GenerateSynthetic(rng, fl.SyntheticOptions{Samples: 600, Dim: 4})
	shards := fl.PartitionIID(rng, ds, 6)
	job := Job{Name: "audit", T: 5, K: 2, TMax: 60, Dim: 4}
	server := NewServer(ServerConfig{Job: job, L2: 0.01, Eval: ds, RecvTimeout: 2 * time.Second, Clock: clk})

	serverConns := make(map[int]Conn)
	var agents []*Agent
	var agentConns []Conn
	for i := 0; i < 6; i++ {
		sc, ac := VirtualPipe(clk)
		serverConns[i] = sc
		theta := 0.5
		learnerTheta := theta
		price := 10.0 + float64(i)
		if i == 0 {
			// The cheater: promises θ=0.45 in its bid but its learner
			// only ever trains to θ=0.9 (far less local work).
			theta = 0.45
			learnerTheta = 0.9
			price = 1 // cheap enough to win
		}
		agents = append(agents, &Agent{
			ID: i,
			Bids: []core.Bid{{
				Price: price, Theta: theta, Start: 1, End: 5, Rounds: 3,
				CompTime: 5, CommTime: 10,
			}},
			Learner:     &fl.Client{ID: i, Data: shards[i], Theta: learnerTheta, LR: 0.4},
			L2:          0.01,
			RecvTimeout: 120 * time.Second,
		})
		agentConns = append(agentConns, ac)
	}
	report, agentReports := runSession(t, clk, server, serverConns, agents, agentConns)
	if !report.Auction.Feasible {
		t.Fatal("auction infeasible")
	}
	won := false
	for _, w := range report.Auction.Winners {
		if w.Bid.Client == 0 {
			won = true
		}
	}
	if !won {
		t.Skip("cheater did not win; audit path not exercised")
	}
	if agentReports[0].Paid != 0 || agentReports[0].PayReason != "accuracy violated" {
		t.Fatalf("cheater settlement = %+v, want accuracy-violation refusal", agentReports[0])
	}
	sawViolation := false
	for _, rr := range report.Rounds {
		for _, id := range rr.Violations {
			if id == 0 {
				sawViolation = true
			}
		}
	}
	if !sawViolation {
		t.Fatal("violation never recorded in round reports")
	}
	// Honest winners still get paid.
	honest := 0
	for _, e := range report.Ledger.Entries() {
		if e.Client != 0 && e.Amount > 0 {
			honest++
		}
	}
	if honest == 0 {
		t.Fatal("no honest winner was paid")
	}
}

// TestAuditDisabled confirms a negative tolerance turns the audit off.
func TestAuditDisabled(t *testing.T) {
	clk := NewVirtualClock()
	rng := stats.NewRNG(22)
	ds, _ := fl.GenerateSynthetic(rng, fl.SyntheticOptions{Samples: 400, Dim: 3})
	shards := fl.PartitionIID(rng, ds, 4)
	job := Job{Name: "noaudit", T: 4, K: 1, TMax: 60, Dim: 3}
	server := NewServer(ServerConfig{
		Job: job, L2: 0.01, Eval: ds,
		RecvTimeout:    2 * time.Second,
		ThetaTolerance: -1,
		Clock:          clk,
	})
	serverConns := make(map[int]Conn)
	var agents []*Agent
	var agentConns []Conn
	for i := 0; i < 4; i++ {
		sc, ac := VirtualPipe(clk)
		serverConns[i] = sc
		agents = append(agents, &Agent{
			ID: i,
			Bids: []core.Bid{{
				Price: 5 + float64(i), Theta: 0.4, Start: 1, End: 4, Rounds: 2,
				CompTime: 5, CommTime: 10,
			}},
			// Every learner under-delivers; with the audit off nobody is
			// penalized for it.
			Learner:     &fl.Client{ID: i, Data: shards[i], Theta: 0.95, LR: 0.4},
			L2:          0.01,
			RecvTimeout: 120 * time.Second,
		})
		agentConns = append(agentConns, ac)
	}
	report, _ := runSession(t, clk, server, serverConns, agents, agentConns)
	if !report.Auction.Feasible {
		t.Skip("auction infeasible")
	}
	for _, rr := range report.Rounds {
		if len(rr.Violations) != 0 {
			t.Fatalf("audit disabled but violations recorded: %v", rr.Violations)
		}
	}
	for _, e := range report.Ledger.Entries() {
		if e.Reason == "accuracy violated" {
			t.Fatalf("audit disabled but payment refused: %+v", e)
		}
	}
}

// TestWindowMisreportForfeitsPayment exercises the enforcement behind
// truthfulness in the availability window: a client that claims [1, T]
// but is truly available only through iteration 2 wins with the longer
// window, misses its later scheduled rounds, and forfeits payment.
func TestWindowMisreportForfeitsPayment(t *testing.T) {
	clk := NewVirtualClock()
	rng := stats.NewRNG(33)
	ds, _ := fl.GenerateSynthetic(rng, fl.SyntheticOptions{Samples: 600, Dim: 4})
	shards := fl.PartitionIID(rng, ds, 6)
	job := Job{Name: "window", T: 6, K: 2, TMax: 60, Dim: 4}
	server := NewServer(ServerConfig{Job: job, L2: 0.01, Eval: ds, RecvTimeout: 300 * time.Millisecond, Clock: clk})

	serverConns := make(map[int]Conn)
	var agents []*Agent
	var agentConns []Conn
	for i := 0; i < 6; i++ {
		sc, ac := VirtualPipe(clk)
		serverConns[i] = sc
		a := &Agent{
			ID: i,
			Bids: []core.Bid{{
				Price: 10 + float64(i), Theta: 0.5, Start: 1, End: 6, Rounds: 4,
				CompTime: 5, CommTime: 10,
			}},
			Learner:     &fl.Client{ID: i, Data: shards[i], Theta: 0.5, LR: 0.4},
			L2:          0.01,
			RecvTimeout: 120 * time.Second,
		}
		agents = append(agents, a)
		agentConns = append(agentConns, ac)
	}
	// Agent 0 lies about its window: claims [1,6] but vanishes after
	// iteration 2. Cheap enough to win.
	agents[0].Bids[0].Price = 1
	agents[0].Behavior.UnavailableAfter = 2

	report, agentReports := runSession(t, clk, server, serverConns, agents, agentConns)
	if !report.Auction.Feasible {
		t.Skip("auction infeasible")
	}
	won := false
	for _, w := range report.Auction.Winners {
		if w.Bid.Client == 0 {
			// The schedule must include an iteration beyond 2, or the lie
			// goes unexercised.
			beyond := false
			for _, s := range w.Slots {
				if s > 2 {
					beyond = true
				}
			}
			if !beyond {
				t.Skip("misreported window never scheduled beyond the true one")
			}
			won = true
		}
	}
	if !won {
		t.Skip("cheater did not win")
	}
	if agentReports[0].Paid != 0 || agentReports[0].PayReason != "dropped out" {
		t.Fatalf("window misreporter settlement = %+v, want refusal", agentReports[0])
	}
}
