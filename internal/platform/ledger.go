package platform

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// LedgerEntry records one settlement decision.
type LedgerEntry struct {
	Client int
	Amount float64
	Reason string
}

// Ledger is a concurrency-safe record of payments the auctioneer settles
// at session end.
type Ledger struct {
	mu      sync.Mutex
	entries []LedgerEntry
}

// Record appends a settlement.
func (l *Ledger) Record(client int, amount float64, reason string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, LedgerEntry{Client: client, Amount: amount, Reason: reason})
}

// Entries returns a copy of all settlements, ordered by client.
func (l *Ledger) Entries() []LedgerEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LedgerEntry, len(l.entries))
	copy(out, l.entries)
	sort.Slice(out, func(a, b int) bool { return out[a].Client < out[b].Client })
	return out
}

// Total returns the sum of all amounts paid.
func (l *Ledger) Total() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var sum float64
	for _, e := range l.entries {
		sum += e.Amount
	}
	return sum
}

// String renders the ledger for reports.
func (l *Ledger) String() string {
	var sb strings.Builder
	for _, e := range l.Entries() {
		fmt.Fprintf(&sb, "client %d: %.2f (%s)\n", e.Client, e.Amount, e.Reason)
	}
	return sb.String()
}
