// Package platform implements the distributed system of Fig. 1 of the
// paper: a cloud auctioneer server and mobile client agents exchanging
// messages over pluggable transports (in-process channels for simulation,
// newline-delimited JSON over TCP for real sockets).
//
// A session proceeds through the paper's phases:
//
//  1. the server announces the FL job (T, K, t_max);
//  2. clients submit sealed bids;
//  3. the server runs the A_FL auction and notifies winners of their
//     schedules and losers of rejection;
//  4. training rounds run: the server pushes the global model to the
//     clients scheduled in each global iteration, clients train locally to
//     their promised θ and return updates, the server aggregates (FedAvg);
//  5. settlement: winners that honored their schedule are paid their
//     critical-value remuneration, recorded in a Ledger; clients that
//     dropped out forfeit payment, matching the enforcement that backs the
//     paper's truthfulness argument for θ/window/round misreports.
package platform

import (
	"encoding/json"
	"fmt"

	"github.com/fedauction/afl/internal/core"
)

// MsgType tags protocol messages.
type MsgType string

// Protocol message types, in session order.
const (
	MsgAnnounce MsgType = "announce"
	MsgBids     MsgType = "bids"
	MsgAward    MsgType = "award"
	MsgRound    MsgType = "round"
	MsgUpdate   MsgType = "update"
	MsgPayment  MsgType = "payment"
	MsgBye      MsgType = "bye"
)

// Job is the FL job announcement.
type Job struct {
	Name string  `json:"name"`
	T    int     `json:"t"`
	K    int     `json:"k"`
	TMax float64 `json:"t_max"`
	Dim  int     `json:"dim"`
}

// Award tells a client the auction outcome for its bids.
type Award struct {
	Won bool `json:"won"`
	// BidIndex is the client-local index j of the accepted bid.
	BidIndex int `json:"bid_index"`
	// Slots lists the global iterations the client must participate in.
	Slots []int `json:"slots,omitempty"`
	// Payment is the critical-value remuneration, paid after the client
	// honors its schedule.
	Payment float64 `json:"payment"`
	Tg      int     `json:"tg"`
	// Repair marks a mid-session promotion: a losing bid re-awarded to
	// replace a dropped winner. Absent on the initial award round.
	Repair bool `json:"repair,omitempty"`
}

// Round asks a client to produce a local update for one global iteration.
type Round struct {
	Iteration int       `json:"iteration"`
	Weights   []float64 `json:"weights"`
}

// Update is a client's local training result.
type Update struct {
	Iteration  int       `json:"iteration"`
	Weights    []float64 `json:"weights"`
	Samples    int       `json:"samples"`
	LocalIters int       `json:"local_iters"`
	// AchievedTheta is the relative gradient-norm reduction the client
	// actually reached this round. The server audits it against the θ
	// the winning bid promised and refuses payment on violations —
	// the enforcement behind the paper's truthfulness-in-θ argument.
	AchievedTheta float64 `json:"achieved_theta"`
}

// Payment settles a client's remuneration at session end.
type Payment struct {
	Amount float64 `json:"amount"`
	// Reason explains zero payments ("dropped out", "lost auction").
	Reason string `json:"reason,omitempty"`
}

// Message is the protocol envelope. Exactly one payload field matching
// Type is set.
type Message struct {
	Type     MsgType    `json:"type"`
	ClientID int        `json:"client_id,omitempty"`
	Job      *Job       `json:"job,omitempty"`
	Bids     []core.Bid `json:"bids,omitempty"`
	Award    *Award     `json:"award,omitempty"`
	Round    *Round     `json:"round,omitempty"`
	Update   *Update    `json:"update,omitempty"`
	Payment  *Payment   `json:"payment,omitempty"`
}

// Validate checks that the envelope carries the payload its type claims.
func (m Message) Validate() error {
	switch m.Type {
	case MsgAnnounce:
		if m.Job == nil {
			return fmt.Errorf("platform: %s without job", m.Type)
		}
	case MsgBids:
		if m.Bids == nil {
			return fmt.Errorf("platform: %s without bids", m.Type)
		}
	case MsgAward:
		if m.Award == nil {
			return fmt.Errorf("platform: %s without award", m.Type)
		}
	case MsgRound:
		if m.Round == nil {
			return fmt.Errorf("platform: %s without round", m.Type)
		}
	case MsgUpdate:
		if m.Update == nil {
			return fmt.Errorf("platform: %s without update", m.Type)
		}
	case MsgPayment:
		if m.Payment == nil {
			return fmt.Errorf("platform: %s without payment", m.Type)
		}
	case MsgBye:
	default:
		return fmt.Errorf("platform: unknown message type %q", m.Type)
	}
	return nil
}

// encode marshals the message as one JSON line.
func (m Message) encode() ([]byte, error) {
	b, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("platform: encode %s: %w", m.Type, err)
	}
	return append(b, '\n'), nil
}

// decodeMessage parses one JSON line.
func decodeMessage(line []byte) (Message, error) {
	var m Message
	if err := json.Unmarshal(line, &m); err != nil {
		return Message{}, fmt.Errorf("platform: decode: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Message{}, err
	}
	return m, nil
}
