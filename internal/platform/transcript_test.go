package platform

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestSessionTranscript(t *testing.T) {
	var buf syncBuffer
	clk, server, serverConns, agents, agentConns := testSession(t, nil)
	server.cfg.Transcript = &buf
	report, _ := runSession(t, clk, server, serverConns, agents, agentConns)
	if !report.Auction.Feasible {
		t.Fatal("auction infeasible")
	}
	entries, err := ReadTranscript(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty transcript")
	}
	// Protocol ordering per client: announce → bids → award → … → payment → bye.
	perClient := map[int][]TranscriptEntry{}
	for _, e := range entries {
		perClient[e.Client] = append(perClient[e.Client], e)
	}
	if len(perClient) != 8 {
		t.Fatalf("transcript covers %d clients, want 8", len(perClient))
	}
	for id, es := range perClient {
		if es[0].Type != MsgAnnounce || es[0].Dir != "send" {
			t.Fatalf("client %d: first entry %+v, want announce", id, es[0])
		}
		if es[1].Type != MsgBids || es[1].Dir != "recv" || es[1].Bids != 1 {
			t.Fatalf("client %d: second entry %+v, want bids(1)", id, es[1])
		}
		if es[2].Type != MsgAward {
			t.Fatalf("client %d: third entry %+v, want award", id, es[2])
		}
		last := es[len(es)-1]
		if last.Type != MsgBye {
			t.Fatalf("client %d: last entry %+v, want bye", id, last)
		}
		if es[len(es)-2].Type != MsgPayment {
			t.Fatalf("client %d: penultimate entry %+v, want payment", id, es[len(es)-2])
		}
		// Round/update pairs carry iterations.
		for _, e := range es {
			if (e.Type == MsgRound || e.Type == MsgUpdate) && e.Iteration < 1 {
				t.Fatalf("client %d: %s without iteration", id, e.Type)
			}
		}
	}
	// Winners' award entries carry the payment amount.
	sawPaidAward := false
	for _, e := range entries {
		if e.Type == MsgAward && e.Won && e.Amount > 0 {
			sawPaidAward = true
		}
	}
	if !sawPaidAward {
		t.Fatal("no winning award recorded")
	}
}

func TestReadTranscriptErrors(t *testing.T) {
	if _, err := ReadTranscript(strings.NewReader("{bad json")); err == nil {
		t.Fatal("malformed transcript must error")
	}
	got, err := ReadTranscript(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty transcript: %v, %v", got, err)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for the transcript writer.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}
