package platform

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/fl"
)

// ServerConfig configures an auctioneer session.
type ServerConfig struct {
	// Job is announced to every connected client.
	Job Job
	// Auction parameterizes A_FL. Job.T/K/TMax take precedence when set.
	Auction core.Config
	// L2 is the ridge penalty of the global objective.
	L2 float64
	// Eval is the server-side evaluation set for reporting loss/accuracy.
	Eval fl.Dataset
	// RecvTimeout bounds every per-client receive. Zero means 5s.
	RecvTimeout time.Duration
	// ThetaTolerance is the audit slack: a winner whose reported achieved
	// accuracy exceeds its promised θ by more than this (additively) in
	// any round forfeits payment. Zero means 0.05; negative disables the
	// audit.
	ThetaTolerance float64
	// Transcript, when non-nil, receives one JSON line per protocol
	// message the server sends or receives (payload bodies elided). Use
	// ReadTranscript to parse it back.
	Transcript io.Writer
}

func (c ServerConfig) thetaTolerance() float64 {
	if c.ThetaTolerance == 0 {
		return 0.05
	}
	return c.ThetaTolerance
}

func (c ServerConfig) recvTimeout() time.Duration {
	if c.RecvTimeout <= 0 {
		return 5 * time.Second
	}
	return c.RecvTimeout
}

// RoundReport summarizes one global iteration of a session.
type RoundReport struct {
	Iteration int
	Scheduled []int
	Responded []int
	Failed    []int
	// Violations lists clients whose reported achieved accuracy broke
	// their promised θ this round (their updates are still aggregated,
	// but they forfeit payment at settlement).
	Violations []int
	GradNorm   float64
	Loss       float64
	Accuracy   float64
}

// SessionReport is the outcome of Server.RunSession.
type SessionReport struct {
	// Auction is the A_FL result over the received bids.
	Auction core.Result
	// Rounds reports every executed global iteration.
	Rounds []RoundReport
	// FinalWeights is the aggregated model after the last round.
	FinalWeights []float64
	// Ledger records all settlements.
	Ledger *Ledger
	// ClientsBid counts clients that submitted bids in time.
	ClientsBid int
}

// Server is the cloud auctioneer of Fig. 1.
type Server struct {
	cfg ServerConfig
}

// NewServer returns a server for one session configuration.
func NewServer(cfg ServerConfig) *Server {
	return &Server{cfg: cfg}
}

// RunSession drives a full auction + training session over the given
// client connections (client ID → connection). It always returns a report
// (possibly partial) alongside any fatal error.
func (s *Server) RunSession(conns map[int]Conn) (SessionReport, error) {
	report := SessionReport{Ledger: &Ledger{}}
	cfg := s.auctionConfig()
	timeout := s.cfg.recvTimeout()

	if tr := newTranscript(s.cfg.Transcript); tr != nil {
		wrapped := make(map[int]Conn, len(conns))
		for id, c := range conns {
			wrapped[id] = recordedConn{Conn: c, id: id, tr: tr}
		}
		conns = wrapped
	}

	ids := make([]int, 0, len(conns))
	for id := range conns {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	// Phase 1: announce.
	job := s.cfg.Job
	for _, id := range ids {
		if err := conns[id].Send(Message{Type: MsgAnnounce, Job: &job}); err != nil {
			return report, fmt.Errorf("announce to client %d: %w", id, err)
		}
	}

	// Phase 2: collect sealed bids. Silent or malformed clients are
	// excluded, not fatal.
	var bids []core.Bid
	for _, id := range ids {
		msg, err := recvType(conns[id], MsgBids, timeout)
		if err != nil {
			continue
		}
		for j, b := range msg.Bids {
			b.Client = id // the transport endpoint is authoritative
			b.Index = j
			if err := b.Validate(cfg.T); err != nil {
				continue
			}
			bids = append(bids, b)
		}
		report.ClientsBid++
	}

	// Phase 3: run A_FL.
	if len(bids) > 0 {
		res, err := core.RunAuction(bids, cfg)
		if err != nil {
			return report, fmt.Errorf("auction: %w", err)
		}
		report.Auction = res
	}
	winners := make(map[int]core.Winner)
	for _, w := range report.Auction.Winners {
		winners[w.Bid.Client] = w
	}
	for _, id := range ids {
		award := &Award{Won: false, Tg: report.Auction.Tg}
		if w, ok := winners[id]; ok {
			award = &Award{Won: true, BidIndex: w.Bid.Index, Slots: w.Slots, Payment: w.Payment, Tg: report.Auction.Tg}
		}
		_ = conns[id].Send(Message{Type: MsgAward, Award: award})
	}
	if !report.Auction.Feasible {
		s.settle(conns, ids, winners, nil, &report)
		return report, nil
	}

	// Phase 4: training rounds.
	schedule := make([][]int, report.Auction.Tg)
	for id, w := range winners {
		for _, t := range w.Slots {
			schedule[t-1] = append(schedule[t-1], id)
		}
	}
	weights := make([]float64, s.cfg.Job.Dim)
	failed := make(map[int]string) // client → forfeiture reason
	tol := s.cfg.thetaTolerance()
	for t := 1; t <= report.Auction.Tg; t++ {
		rr := RoundReport{Iteration: t}
		scheduled := schedule[t-1]
		sort.Ints(scheduled)
		rr.Scheduled = scheduled
		for _, id := range scheduled {
			if failed[id] == "dropped out" {
				rr.Failed = append(rr.Failed, id)
				continue
			}
			_ = conns[id].Send(Message{Type: MsgRound, Round: &Round{Iteration: t, Weights: weights}})
		}
		sumW := make([]float64, len(weights))
		var total float64
		for _, id := range scheduled {
			if failed[id] == "dropped out" {
				continue
			}
			msg, err := recvUpdate(conns[id], t, timeout)
			if err != nil {
				failed[id] = "dropped out"
				rr.Failed = append(rr.Failed, id)
				continue
			}
			rr.Responded = append(rr.Responded, id)
			// Audit the achieved local accuracy against the promise.
			if tol >= 0 && msg.Update.AchievedTheta > winners[id].Bid.Theta+tol {
				if failed[id] == "" {
					failed[id] = "accuracy violated"
				}
				rr.Violations = append(rr.Violations, id)
			}
			n := float64(msg.Update.Samples)
			if n <= 0 {
				n = 1
			}
			for j := range sumW {
				sumW[j] += n * msg.Update.Weights[j]
			}
			total += n
		}
		if total > 0 {
			for j := range weights {
				weights[j] = sumW[j] / total
			}
		}
		if s.cfg.Eval.Len() > 0 {
			rr.GradNorm = fl.Norm(fl.Grad(weights, s.cfg.Eval, s.cfg.L2))
			rr.Loss = fl.Loss(weights, s.cfg.Eval, s.cfg.L2)
			rr.Accuracy = fl.Accuracy(weights, s.cfg.Eval)
		}
		report.Rounds = append(report.Rounds, rr)
	}
	report.FinalWeights = weights

	// Phase 5: settlement.
	s.settle(conns, ids, winners, failed, &report)
	return report, nil
}

// settle pays reliable winners, refuses dropouts and accuracy violators,
// notifies losers, and says goodbye.
func (s *Server) settle(conns map[int]Conn, ids []int, winners map[int]core.Winner, failed map[int]string, report *SessionReport) {
	for _, id := range ids {
		var pay Payment
		switch {
		case !report.Auction.Feasible:
			pay = Payment{Amount: 0, Reason: "auction infeasible"}
		case failed[id] != "":
			pay = Payment{Amount: 0, Reason: failed[id]}
			report.Ledger.Record(id, 0, failed[id])
		default:
			if w, ok := winners[id]; ok {
				pay = Payment{Amount: w.Payment}
				report.Ledger.Record(id, w.Payment, "schedule honored")
			} else {
				pay = Payment{Amount: 0, Reason: "lost auction"}
			}
		}
		_ = conns[id].Send(Message{Type: MsgPayment, Payment: &pay})
		_ = conns[id].Send(Message{Type: MsgBye})
	}
}

func (s *Server) auctionConfig() core.Config {
	cfg := s.cfg.Auction
	if s.cfg.Job.T > 0 {
		cfg.T = s.cfg.Job.T
	}
	if s.cfg.Job.K > 0 {
		cfg.K = s.cfg.Job.K
	}
	if s.cfg.Job.TMax > 0 {
		cfg.TMax = s.cfg.Job.TMax
	}
	return cfg
}

// recvType reads until a message of the wanted type arrives (discarding
// stale messages) or the timeout budget is spent.
func recvType(c Conn, want MsgType, timeout time.Duration) (Message, error) {
	deadline := time.Now().Add(timeout)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return Message{}, ErrTimeout
		}
		msg, err := c.Recv(remain)
		if err != nil {
			return Message{}, err
		}
		if msg.Type == want {
			return msg, nil
		}
	}
}

// recvUpdate reads until an update for the given iteration arrives.
func recvUpdate(c Conn, iteration int, timeout time.Duration) (Message, error) {
	deadline := time.Now().Add(timeout)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return Message{}, ErrTimeout
		}
		msg, err := c.Recv(remain)
		if err != nil {
			return Message{}, err
		}
		if msg.Type == MsgUpdate && msg.Update.Iteration == iteration {
			return msg, nil
		}
	}
}
