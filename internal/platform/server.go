package platform

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/fedauction/afl/internal/colgen"
	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/fl"
	"github.com/fedauction/afl/internal/obs"
)

// ErrUnderCoverage and ErrInfeasible re-export the shared sentinels so
// platform callers can errors.Is against session degradation without
// importing core.
var (
	ErrUnderCoverage = core.ErrUnderCoverage
	ErrInfeasible    = core.ErrInfeasible
)

// ServerConfig configures an auctioneer session.
type ServerConfig struct {
	// Job is announced to every connected client.
	Job Job
	// Auction parameterizes A_FL. Job.T/K/TMax take precedence when set.
	Auction core.Config
	// Solver selects the winner-determination tier of the session's
	// auction sweep. The zero value (SolverExact) solves every candidate
	// T̂_g — the historical behaviour, bit-identical. Approximate tiers
	// attach a dual certificate to SessionReport.Auction.Cert bounding
	// the session's social cost against the full-enumeration optimum;
	// awards, payments and the training schedule then derive from the
	// approximately-selected T̂_g.
	Solver core.Solver
	// Stride is the base coarse stride of the approximate solver tiers
	// (zero selects the default; 1 is bit-identical to exact). It has no
	// effect under SolverExact.
	Stride int
	// L2 is the ridge penalty of the global objective.
	L2 float64
	// Eval is the server-side evaluation set for reporting loss/accuracy.
	Eval fl.Dataset
	// RecvTimeout bounds every per-client receive. Zero means 5s.
	RecvTimeout time.Duration
	// Retry bounds re-delivery of round requests to unresponsive winners.
	// The zero value grants a single attempt (no retry), the historical
	// behaviour.
	Retry RetryPolicy
	// Clock supplies time for receive deadlines and retry backoff. Nil
	// means the wall clock; sessions driven over VirtualPipe connections
	// must share the connections' VirtualClock.
	Clock Clock
	// DisableRepair switches off mid-session coverage repair: rounds a
	// dropped winner leaves short of K then simply run under-covered
	// (and are flagged in their RoundReport).
	DisableRepair bool
	// ThetaTolerance is the audit slack: a winner whose reported achieved
	// accuracy exceeds its promised θ by more than this (additively) in
	// any round forfeits payment. Zero means 0.05; negative disables the
	// audit.
	ThetaTolerance float64
	// Transcript, when non-nil, receives one JSON line per protocol
	// message the server sends or receives (payload bodies elided). Use
	// ReadTranscript to parse it back.
	Transcript io.Writer
	// Observer, when non-nil, receives structured phase events for the
	// session: the auction sweep (via the engine), retries fired,
	// stragglers and dropouts detected, coverage repairs, and per-round
	// completion. Phase latencies are timed on the session Clock, so
	// traces taken on a VirtualClock are deterministic. The observer
	// must be safe for concurrent use; nil costs nothing.
	Observer obs.Observer
}

// RetryPolicy governs per-message fault tolerance on the server side: an
// unresponsive winner gets Attempts deliveries of each round request,
// each with a full RecvTimeout to answer, separated by a backoff that
// doubles after every failure. A client that answers only after a retry
// is counted as a straggler; one that exhausts all attempts is declared
// dropped and triggers coverage repair.
type RetryPolicy struct {
	// Attempts is the total number of delivery attempts per round request
	// (1 = no retry). Zero means 1.
	Attempts int
	// Backoff is the pause before the second attempt, doubling on each
	// further one. Zero retries immediately.
	Backoff time.Duration
}

func (r RetryPolicy) attempts() int {
	if r.Attempts < 1 {
		return 1
	}
	return r.Attempts
}

func (c ServerConfig) thetaTolerance() float64 {
	if c.ThetaTolerance == 0 {
		return 0.05
	}
	return c.ThetaTolerance
}

func (c ServerConfig) recvTimeout() time.Duration {
	if c.RecvTimeout <= 0 {
		return 5 * time.Second
	}
	return c.RecvTimeout
}

func (c ServerConfig) clock() Clock {
	if c.Clock == nil {
		return WallClock{}
	}
	return c.Clock
}

// RoundReport summarizes one global iteration of a session.
type RoundReport struct {
	Iteration int
	Scheduled []int
	Responded []int
	Failed    []int
	// Violations lists clients whose reported achieved accuracy broke
	// their promised θ this round (their updates are still aggregated,
	// but they forfeit payment at settlement).
	Violations []int
	// Stragglers lists clients that answered only after at least one
	// retried round request.
	Stragglers []int
	// Promoted lists clients first scheduled into this round by a
	// coverage repair (replacements for dropped winners).
	Promoted []int
	// UnderCovered marks a round that closed with fewer than K
	// aggregated updates: a winner dropped and no repair existed.
	UnderCovered bool
	GradNorm     float64
	Loss         float64
	Accuracy     float64
}

// RepairRecord documents one mid-session coverage repair attempt.
type RepairRecord struct {
	// Round is the iteration in which the drop was detected.
	Round int
	// Dropped lists the clients newly declared dropped this round.
	Dropped []int
	// Promoted lists clients awarded replacement schedules.
	Promoted []int
	// Awards are the replacement awards: critical-value payments in the
	// residual market, slots within [CoveredFrom, Tg].
	Awards []core.Winner
	// Payments is the total replacement payment volume.
	Payments float64
	// Repaired reports whether a replacement set restored coverage.
	// False means the affected rounds run under-covered and flagged.
	Repaired bool
	// CoveredFrom is the first iteration from which coverage is restored:
	// Round itself when the current round could still be repaired,
	// Round+1 when only future rounds could, 0 when none.
	CoveredFrom int
}

// SessionReport is the outcome of Server.RunSession.
type SessionReport struct {
	// Auction is the A_FL result over the received bids.
	Auction core.Result
	// Rounds reports every executed global iteration.
	Rounds []RoundReport
	// FinalWeights is the aggregated model after the last round.
	FinalWeights []float64
	// Ledger records all settlements.
	Ledger *Ledger
	// ClientsBid counts clients that submitted bids in time.
	ClientsBid int
	// Repairs documents every mid-session coverage repair attempt, in
	// detection order.
	Repairs []RepairRecord
}

// Err summarizes session degradation on the shared sentinel surface: nil
// for a clean session, an ErrInfeasible-matching error when the auction
// selected no feasible T̂_g (so no training ran), and an
// ErrUnderCoverage-matching error naming the rounds that closed with
// fewer than K aggregated updates otherwise. Both match under errors.Is.
func (r SessionReport) Err() error {
	if !r.Auction.Feasible {
		return fmt.Errorf("session: %w: no T̂_g admits full coverage", ErrInfeasible)
	}
	var short []int
	for _, rr := range r.Rounds {
		if rr.UnderCovered {
			short = append(short, rr.Iteration)
		}
	}
	if len(short) > 0 {
		return fmt.Errorf("session: %w: rounds %v closed under-covered", ErrUnderCoverage, short)
	}
	return nil
}

// Server is the cloud auctioneer of Fig. 1.
type Server struct {
	cfg ServerConfig
}

// NewServer returns a server for one session configuration.
func NewServer(cfg ServerConfig) *Server {
	return &Server{cfg: cfg}
}

// RunSession drives a full auction + training session over the given
// client connections (client ID → connection). It always returns a report
// (possibly partial) alongside any fatal error.
func (s *Server) RunSession(conns map[int]Conn) (SessionReport, error) {
	report := SessionReport{Ledger: &Ledger{}}
	cfg := s.auctionConfig()
	timeout := s.cfg.recvTimeout()
	clk := s.cfg.clock()

	if tr := newTranscript(s.cfg.Transcript); tr != nil {
		wrapped := make(map[int]Conn, len(conns))
		for id, c := range conns {
			wrapped[id] = recordedConn{Conn: c, id: id, tr: tr}
		}
		conns = wrapped
	}

	ids := make([]int, 0, len(conns))
	for id := range conns {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	// Phase 1: announce.
	job := s.cfg.Job
	for _, id := range ids {
		if err := conns[id].Send(Message{Type: MsgAnnounce, Job: &job}); err != nil {
			return report, fmt.Errorf("announce to client %d: %w", id, err)
		}
	}

	// Phase 2: collect sealed bids. Silent or malformed clients are
	// excluded, not fatal.
	var bids []core.Bid
	for _, id := range ids {
		msg, err := recvType(conns[id], clk, MsgBids, timeout)
		if err != nil {
			continue
		}
		for j, b := range msg.Bids {
			b.Client = id // the transport endpoint is authoritative
			b.Index = j
			if err := b.Validate(cfg.T); err != nil {
				continue
			}
			bids = append(bids, b)
		}
		report.ClientsBid++
	}

	// Phase 3: run A_FL. The engine is retained for mid-session coverage
	// repair: re-awards reuse its precomputed qualification context, so
	// replacement payments stay critical values (Engine.Run is
	// bit-identical to RunAuction).
	var eng *core.Engine
	if len(bids) > 0 {
		var err error
		eng, err = core.NewEngine(bids, cfg)
		if err != nil {
			return report, fmt.Errorf("auction: %w", err)
		}
		if s.cfg.Observer != nil {
			// Time phases on the session clock: deterministic under a
			// VirtualClock, wall time otherwise.
			eng = eng.Observe(s.cfg.Observer, clk.Now)
		}
		// Infeasibility is not fatal here: the report carries the full
		// sweep diagnostics and SessionReport.Err surfaces the sentinel.
		ro := core.RunOptions{Solver: s.cfg.Solver, Stride: s.cfg.Stride}
		if s.cfg.Solver == core.SolverLPRound {
			ro.LP = colgen.Certifier{}
		}
		report.Auction, _ = eng.RunCtx(context.Background(), ro)
	}
	winners := make(map[int]core.Winner)
	for _, w := range report.Auction.Winners {
		winners[w.Bid.Client] = w
	}
	for _, id := range ids {
		award := &Award{Won: false, Tg: report.Auction.Tg}
		if w, ok := winners[id]; ok {
			award = &Award{Won: true, BidIndex: w.Bid.Index, Slots: w.Slots, Payment: w.Payment, Tg: report.Auction.Tg}
		}
		_ = conns[id].Send(Message{Type: MsgAward, Award: award})
	}
	if !report.Auction.Feasible {
		s.settle(conns, ids, winners, nil, &report)
		return report, nil
	}

	// Phase 4: training rounds.
	schedule := make([][]int, report.Auction.Tg)
	for id, w := range winners {
		for _, t := range w.Slots {
			schedule[t-1] = append(schedule[t-1], id)
		}
	}
	weights := make([]float64, s.cfg.Job.Dim)
	failed := make(map[int]string) // client → forfeiture reason
	tol := s.cfg.thetaTolerance()
	for t := 1; t <= report.Auction.Tg; t++ {
		var roundStart time.Time
		if s.cfg.Observer != nil {
			roundStart = clk.Now()
		}
		rr := RoundReport{Iteration: t}
		scheduled := schedule[t-1]
		sort.Ints(scheduled)
		rr.Scheduled = scheduled
		for _, id := range scheduled {
			if failed[id] == "dropped out" {
				rr.Failed = append(rr.Failed, id)
				continue
			}
			_ = conns[id].Send(Message{Type: MsgRound, Round: &Round{Iteration: t, Weights: weights}})
		}
		// Collect updates; when a winner exhausts its delivery attempts it
		// is declared dropped and the lost coverage is re-bought from the
		// losing bids (replacements scheduled for this very round are
		// asked immediately and collected on the next pass).
		updates := make(map[int]*Update, len(scheduled))
		pending := scheduled
		for len(pending) > 0 {
			var droppedNow []int
			for _, id := range pending {
				if failed[id] == "dropped out" {
					continue
				}
				msg, attempts, err := s.collectUpdate(conns[id], clk, id, t, weights, timeout)
				if err != nil {
					failed[id] = "dropped out"
					rr.Failed = append(rr.Failed, id)
					droppedNow = append(droppedNow, id)
					if s.cfg.Observer != nil {
						s.cfg.Observer.Observe(obs.Event{
							Kind: obs.EvDropDetected, Round: t, Client: id,
							Bid: -1, Value: float64(attempts),
						})
					}
					continue
				}
				if attempts > 1 {
					rr.Stragglers = append(rr.Stragglers, id)
					if s.cfg.Observer != nil {
						s.cfg.Observer.Observe(obs.Event{
							Kind: obs.EvStragglerDetected, Round: t, Client: id,
							Bid: -1, Value: float64(attempts), OK: true,
						})
					}
				}
				rr.Responded = append(rr.Responded, id)
				// Audit the achieved local accuracy against the promise.
				if tol >= 0 && msg.Update.AchievedTheta > winners[id].Bid.Theta+tol {
					if failed[id] == "" {
						failed[id] = "accuracy violated"
					}
					rr.Violations = append(rr.Violations, id)
				}
				updates[id] = msg.Update
			}
			if len(droppedNow) == 0 || eng == nil || s.cfg.DisableRepair {
				break
			}
			pending = s.repairCoverage(t, droppedNow, eng, conns, winners, failed, schedule, weights, &report)
			rr.Promoted = append(rr.Promoted, pending...)
		}
		// Aggregate (FedAvg) in responder order: originally scheduled
		// clients first, then promoted replacements, both deterministic.
		sumW := make([]float64, len(weights))
		var total float64
		for _, id := range rr.Responded {
			upd := updates[id]
			n := float64(upd.Samples)
			if n <= 0 {
				n = 1
			}
			for j := range sumW {
				sumW[j] += n * upd.Weights[j]
			}
			total += n
		}
		if total > 0 {
			for j := range weights {
				weights[j] = sumW[j] / total
			}
		}
		rr.UnderCovered = len(rr.Responded) < cfg.K
		if s.cfg.Observer != nil {
			s.cfg.Observer.Observe(obs.Event{
				Kind: obs.EvRoundDone, Tg: report.Auction.Tg, Round: t,
				Client: -1, Bid: -1, Value: float64(len(rr.Responded)),
				OK: !rr.UnderCovered, Dur: clk.Now().Sub(roundStart),
			})
		}
		if s.cfg.Eval.Len() > 0 {
			rr.GradNorm = fl.Norm(fl.Grad(weights, s.cfg.Eval, s.cfg.L2))
			rr.Loss = fl.Loss(weights, s.cfg.Eval, s.cfg.L2)
			rr.Accuracy = fl.Accuracy(weights, s.cfg.Eval)
		}
		report.Rounds = append(report.Rounds, rr)
	}
	report.FinalWeights = weights

	// Phase 5: settlement.
	s.settle(conns, ids, winners, failed, &report)
	return report, nil
}

// settle pays reliable winners, refuses dropouts and accuracy violators,
// notifies losers, and says goodbye.
func (s *Server) settle(conns map[int]Conn, ids []int, winners map[int]core.Winner, failed map[int]string, report *SessionReport) {
	for _, id := range ids {
		var pay Payment
		switch {
		case !report.Auction.Feasible:
			pay = Payment{Amount: 0, Reason: "auction infeasible"}
		case failed[id] != "":
			pay = Payment{Amount: 0, Reason: failed[id]}
			report.Ledger.Record(id, 0, failed[id])
		default:
			if w, ok := winners[id]; ok {
				pay = Payment{Amount: w.Payment}
				report.Ledger.Record(id, w.Payment, "schedule honored")
			} else {
				pay = Payment{Amount: 0, Reason: "lost auction"}
			}
		}
		_ = conns[id].Send(Message{Type: MsgPayment, Payment: &pay})
		_ = conns[id].Send(Message{Type: MsgBye})
	}
}

func (s *Server) auctionConfig() core.Config {
	cfg := s.cfg.Auction
	if s.cfg.Job.T > 0 {
		cfg.T = s.cfg.Job.T
	}
	if s.cfg.Job.K > 0 {
		cfg.K = s.cfg.Job.K
	}
	if s.cfg.Job.TMax > 0 {
		cfg.TMax = s.cfg.Job.TMax
	}
	return cfg
}

// collectUpdate waits for client id's update for iteration t, re-sending
// the round request per the retry policy with doubling backoff. It
// returns the update alongside the number of delivery attempts consumed
// (> 1 marks the client a straggler).
func (s *Server) collectUpdate(c Conn, clk Clock, id, t int, weights []float64, timeout time.Duration) (Message, int, error) {
	attempts := s.cfg.Retry.attempts()
	backoff := s.cfg.Retry.Backoff
	for a := 1; ; a++ {
		msg, err := recvUpdate(c, clk, t, timeout)
		if err == nil {
			return msg, a, nil
		}
		if a >= attempts {
			return Message{}, a, err
		}
		if backoff > 0 {
			clk.Sleep(backoff)
			backoff *= 2
		}
		if s.cfg.Observer != nil {
			s.cfg.Observer.Observe(obs.Event{
				Kind: obs.EvRetryFired, Round: t, Client: id, Bid: -1,
				Value: float64(a + 1),
			})
		}
		_ = c.Send(Message{Type: MsgRound, Round: &Round{Iteration: t, Weights: weights}})
	}
}

// repairCoverage runs the graceful-degradation path after the clients in
// dropped exhausted their delivery attempts at round t: it asks the
// auction engine for a critical-value-consistent re-award on the residual
// market (losing bids clamped to the remaining horizon, surviving
// coverage pre-committed), notifies the promoted replacements, splices
// them into the schedule, and records the attempt in the session report.
// When no replacement set restores coverage — not even conceding the
// current round — nothing is promoted and the short rounds run flagged.
// It returns the promoted clients whose replacement schedule includes
// round t itself; the caller collects their updates next.
func (s *Server) repairCoverage(t int, dropped []int, eng *core.Engine, conns map[int]Conn, winners map[int]core.Winner, failed map[int]string, schedule [][]int, weights []float64, report *SessionReport) []int {
	tg := report.Auction.Tg
	k := s.auctionConfig().K
	rec := RepairRecord{Round: t, Dropped: append([]int(nil), dropped...)}
	sort.Ints(rec.Dropped)

	base := make([]int, tg)
	for i := 0; i < t-1; i++ {
		base[i] = k // history cannot be re-covered; treat it as satisfied
	}
	for id, w := range winners {
		if failed[id] == "dropped out" {
			continue
		}
		for _, slot := range w.Slots {
			if slot >= t {
				base[slot-1]++
			}
		}
	}
	exclude := make(map[int]bool, len(winners)+len(failed))
	for id := range winners {
		exclude[id] = true
	}
	for id := range failed {
		exclude[id] = true
	}

	req := core.RepairRequest{Tg: tg, From: t, Base: base, Exclude: exclude}
	res, err := eng.Repair(req)
	coveredFrom := t
	if err == nil && !res.Feasible && t < tg {
		// The current round may be unrepairable (its collection window is
		// nearly over) while the future is not: concede round t — it will
		// be flagged under-covered — and repair from t+1.
		next := append([]int(nil), base...)
		next[t-1] = k
		req.From, req.Base = t+1, next
		if res2, err2 := eng.Repair(req); err2 == nil && res2.Feasible {
			res, coveredFrom = res2, t+1
		}
	}
	if err != nil || !res.Feasible {
		report.Repairs = append(report.Repairs, rec)
		return nil
	}
	rec.Repaired = true
	rec.CoveredFrom = coveredFrom
	rec.Awards = res.Winners
	var now []int
	for _, w := range res.Winners {
		id := w.Bid.Client
		winners[id] = w
		rec.Promoted = append(rec.Promoted, id)
		rec.Payments += w.Payment
		_ = conns[id].Send(Message{Type: MsgAward, Award: &Award{
			Won: true, BidIndex: w.Bid.Index, Slots: w.Slots,
			Payment: w.Payment, Tg: tg, Repair: true,
		}})
		for _, slot := range w.Slots {
			switch {
			case slot == t:
				now = append(now, id)
			case slot > t:
				schedule[slot-1] = append(schedule[slot-1], id)
			}
		}
	}
	for _, id := range now {
		_ = conns[id].Send(Message{Type: MsgRound, Round: &Round{Iteration: t, Weights: weights}})
	}
	report.Repairs = append(report.Repairs, rec)
	return now
}

// recvType reads until a message of the wanted type arrives (discarding
// stale messages) or the timeout budget of clock time is spent.
func recvType(c Conn, clk Clock, want MsgType, timeout time.Duration) (Message, error) {
	deadline := clk.Now().Add(timeout)
	for {
		remain := deadline.Sub(clk.Now())
		if remain <= 0 {
			return Message{}, ErrTimeout
		}
		msg, err := c.Recv(remain)
		if err != nil {
			return Message{}, err
		}
		if msg.Type == want {
			return msg, nil
		}
	}
}

// recvUpdate reads until an update for the given iteration arrives,
// discarding stale traffic (duplicated or late updates of earlier
// iterations, re-sent bids) within the same deadline budget.
func recvUpdate(c Conn, clk Clock, iteration int, timeout time.Duration) (Message, error) {
	deadline := clk.Now().Add(timeout)
	for {
		remain := deadline.Sub(clk.Now())
		if remain <= 0 {
			return Message{}, ErrTimeout
		}
		msg, err := c.Recv(remain)
		if err != nil {
			return Message{}, err
		}
		if msg.Type == MsgUpdate && msg.Update.Iteration == iteration {
			return msg, nil
		}
	}
}
