package platform

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Conn is a bidirectional, message-oriented connection between the server
// and one client agent.
type Conn interface {
	// Send delivers a message to the peer.
	Send(Message) error
	// Recv blocks for the next message, up to the timeout. A timeout
	// returns ErrTimeout.
	Recv(timeout time.Duration) (Message, error)
	// Close releases the connection; pending and future calls fail.
	Close() error
}

// ErrTimeout reports that Recv hit its deadline.
var ErrTimeout = errors.New("platform: receive timeout")

// ErrClosed reports use of a closed connection.
var ErrClosed = errors.New("platform: connection closed")

// memConn is one endpoint of an in-process connection pair.
type memConn struct {
	in   chan Message
	out  chan Message
	done chan struct{}
	once sync.Once
}

// Pipe returns the two endpoints of an in-process connection with the
// given buffer capacity per direction.
func Pipe(buffer int) (Conn, Conn) {
	if buffer < 1 {
		buffer = 16
	}
	ab := make(chan Message, buffer)
	ba := make(chan Message, buffer)
	done := make(chan struct{})
	a := &memConn{in: ba, out: ab, done: done}
	b := &memConn{in: ab, out: ba, done: done}
	return a, b
}

// Send implements Conn.
func (c *memConn) Send(m Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	// Check closure first: with buffer space free, a bare select could
	// pick the send case even after Close.
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	select {
	case <-c.done:
		return ErrClosed
	case c.out <- m:
		return nil
	}
}

// Recv implements Conn.
func (c *memConn) Recv(timeout time.Duration) (Message, error) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-c.done:
		// Drain anything already queued before reporting closure.
		select {
		case m := <-c.in:
			return m, nil
		default:
			return Message{}, ErrClosed
		}
	case m := <-c.in:
		return m, nil
	case <-timer.C:
		return Message{}, ErrTimeout
	}
}

// Close implements Conn. Closing either endpoint closes the pair.
func (c *memConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}

// tcpConn adapts a net.Conn with a newline-delimited JSON codec.
type tcpConn struct {
	conn net.Conn
	r    *bufio.Reader
	wmu  sync.Mutex
}

// NewTCPConn wraps an established net.Conn in the platform codec.
func NewTCPConn(conn net.Conn) Conn {
	return &tcpConn{conn: conn, r: bufio.NewReaderSize(conn, 1<<20)}
}

// Send implements Conn.
func (c *tcpConn) Send(m Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	b, err := m.encode()
	if err != nil {
		return err
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.conn.Write(b); err != nil {
		return fmt.Errorf("platform: send %s: %w", m.Type, err)
	}
	return nil
}

// Recv implements Conn.
func (c *tcpConn) Recv(timeout time.Duration) (Message, error) {
	if err := c.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return Message{}, err
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return Message{}, ErrTimeout
		}
		return Message{}, fmt.Errorf("platform: recv: %w", err)
	}
	return decodeMessage(line)
}

// Close implements Conn.
func (c *tcpConn) Close() error { return c.conn.Close() }

// Listen accepts n platform connections on the given TCP address, calling
// accepted for each as it arrives. It returns the bound address
// immediately; the accept loop runs until n connections arrived or the
// listener is closed via the returned stop function.
func Listen(addr string, n int, accepted func(Conn)) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("platform: listen: %w", err)
	}
	go func() {
		for i := 0; i < n; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepted(NewTCPConn(conn))
		}
	}()
	return ln.Addr().String(), func() { _ = ln.Close() }, nil
}

// Dial connects a client agent to a platform server.
func Dial(addr string, timeout time.Duration) (Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("platform: dial %s: %w", addr, err)
	}
	return NewTCPConn(conn), nil
}
