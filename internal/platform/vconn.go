package platform

import "time"

// DelayedSender is the optional Conn extension implemented by VirtualPipe
// endpoints: it schedules a message for delivery in the virtual future.
// Fault injectors use it to model latency, duplication and reordering
// without touching the transport itself.
type DelayedSender interface {
	// SendDelayed enqueues m for delivery after delay of virtual time.
	SendDelayed(m Message, delay time.Duration) error
}

// VirtualPipe returns the two endpoints of an in-process connection pair
// driven by the given virtual clock: the Pipe equivalent for
// deterministic tests. Queues are unbounded, so sends never block (a
// blocking send at quiescence would deadlock the simulated time);
// receives block in virtual time. Messages become deliverable at their
// scheduled virtual instant — Send delivers "now", SendDelayed in the
// future — and are received in (delivery time, send order) order, which
// is what lets injected delays reorder traffic deterministically.
//
// Closing either endpoint closes the pair: deliverable messages drain
// first, afterwards Recv returns ErrClosed; messages still in flight
// (scheduled after the close) are lost. Each endpoint must have a single
// receiver, the same discipline Pipe's channel semantics imply.
func VirtualPipe(clk *VirtualClock) (Conn, Conn) {
	p := &vpipe{clk: clk}
	return &virtualConn{p: p, dir: 0}, &virtualConn{p: p, dir: 1}
}

// vmsg is one queued message with its virtual delivery time and a pipe-
// wide sequence number breaking delivery-time ties in send order.
type vmsg struct {
	at  time.Time
	seq int
	msg Message
}

// vpipe is the shared state of a virtual connection pair, guarded by the
// clock's lock so waiter readiness can inspect it consistently.
type vpipe struct {
	clk    *VirtualClock
	closed bool
	seq    int
	// q[d] holds the messages destined for endpoint d.
	q [2][]vmsg
}

// virtualConn is one endpoint: it reads q[dir] and writes q[1-dir].
type virtualConn struct {
	p   *vpipe
	dir int
}

// Send implements Conn.
func (c *virtualConn) Send(m Message) error { return c.SendDelayed(m, 0) }

// SendDelayed implements DelayedSender.
func (c *virtualConn) SendDelayed(m Message, delay time.Duration) error {
	if err := m.Validate(); err != nil {
		return err
	}
	clk := c.p.clk
	clk.mu.Lock()
	defer clk.mu.Unlock()
	if c.p.closed {
		return ErrClosed
	}
	if delay < 0 {
		delay = 0
	}
	at := clk.now.Add(delay)
	c.p.seq++
	c.p.q[1-c.dir] = append(c.p.q[1-c.dir], vmsg{at: at, seq: c.p.seq, msg: m})
	if delay > 0 {
		clk.addAlarmLocked(at)
	}
	clk.cond.Broadcast()
	return nil
}

// deliverableLocked returns the index of the next receivable message —
// earliest (delivery time, sequence) among those due — or -1.
func (c *virtualConn) deliverableLocked() int {
	best := -1
	q := c.p.q[c.dir]
	for i := range q {
		if q[i].at.After(c.p.clk.now) {
			continue
		}
		if best < 0 || q[i].at.Before(q[best].at) ||
			(q[i].at.Equal(q[best].at) && q[i].seq < q[best].seq) {
			best = i
		}
	}
	return best
}

// Recv implements Conn. The calling goroutine must be a party registered
// with the clock's Go.
func (c *virtualConn) Recv(timeout time.Duration) (Message, error) {
	clk := c.p.clk
	clk.wait(timeout, func() bool {
		return c.deliverableLocked() >= 0 || c.p.closed
	})
	// Consume under the lock. Single-receiver discipline makes this safe:
	// nothing else can have taken the message between wait and here, and
	// re-checking delivery before the timeout verdict is what gives
	// delivery priority over an equal-time deadline.
	clk.mu.Lock()
	defer clk.mu.Unlock()
	if i := c.deliverableLocked(); i >= 0 {
		q := c.p.q[c.dir]
		m := q[i].msg
		c.p.q[c.dir] = append(q[:i], q[i+1:]...)
		return m, nil
	}
	if c.p.closed {
		return Message{}, ErrClosed
	}
	return Message{}, ErrTimeout
}

// Close implements Conn. Closing either endpoint closes the pair.
func (c *virtualConn) Close() error {
	clk := c.p.clk
	clk.mu.Lock()
	defer clk.mu.Unlock()
	c.p.closed = true
	clk.cond.Broadcast()
	return nil
}
