package platform

import (
	"sync"
	"time"
)

// VirtualClock is a deterministic simulated clock: no test driven by it
// depends on wall time, scheduler latency or CI machine speed.
//
// Goroutines that participate in the simulation register through Go.
// Virtual time never passes while any registered party is runnable; it
// advances only at quiescence — every party blocked in a virtual wait
// (Sleep, or Recv on a VirtualPipe connection) with nothing deliverable —
// and then jumps straight to the earliest pending waiter deadline or
// scheduled message delivery. At equal times delivery beats deadline: a
// waiter whose message materializes exactly at its deadline receives the
// message, which keeps timeout races deterministic.
//
// Only registered parties may block on the clock; the driving test
// goroutine observes the simulation through Wait.
//
// The zero value is unusable; call NewVirtualClock.
type VirtualClock struct {
	mu      sync.Mutex
	cond    *sync.Cond
	now     time.Time
	parties int
	blocked int
	waiters map[*vWaiter]struct{}
	// alarms holds future event times the clock may advance to (delayed
	// message deliveries); stale entries are dropped lazily.
	alarms []time.Time
}

// vWaiter is one party blocked in a virtual wait. ready must be a pure
// predicate over clock-lock-protected state: it is evaluated under the
// lock by arbitrary goroutines deciding whether time may advance, so it
// must not consume anything.
type vWaiter struct {
	deadline    time.Time
	hasDeadline bool
	ready       func() bool
}

// NewVirtualClock returns a virtual clock starting at the Unix epoch.
// The absolute origin is immaterial; only durations matter.
func NewVirtualClock() *VirtualClock {
	c := &VirtualClock{
		now:     time.Unix(0, 0).UTC(),
		waiters: make(map[*vWaiter]struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock: it blocks the calling party for d of virtual
// time. The caller must be a registered party.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.wait(d, nil)
}

// Go registers fn as a simulation party and runs it on its own
// goroutine. The party stays registered until fn returns.
func (c *VirtualClock) Go(fn func()) {
	c.mu.Lock()
	c.parties++
	c.mu.Unlock()
	go func() {
		defer func() {
			c.mu.Lock()
			c.parties--
			c.cond.Broadcast()
			c.mu.Unlock()
		}()
		fn()
	}()
}

// Wait blocks the caller — which must NOT be a registered party — until
// every party started with Go has returned.
func (c *VirtualClock) Wait() {
	c.mu.Lock()
	for c.parties > 0 {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// wait blocks the calling party until ready reports true or timeout of
// virtual time elapses (timeout < 0 waits without deadline). It returns
// whether ready fired before the deadline. ready is evaluated under the
// clock lock and must be pure; the caller consumes whatever made it true
// after wait returns, which is race-free as long as each consumable
// resource has a single consumer (true for VirtualPipe endpoints).
func (c *VirtualClock) wait(timeout time.Duration, ready func() bool) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := &vWaiter{ready: ready}
	if timeout >= 0 {
		w.deadline = c.now.Add(timeout)
		w.hasDeadline = true
	}
	c.waiters[w] = struct{}{}
	c.blocked++
	defer func() {
		delete(c.waiters, w)
		c.blocked--
	}()
	for {
		if w.ready != nil && w.ready() {
			return true
		}
		if w.hasDeadline && !c.now.Before(w.deadline) {
			return false
		}
		if !c.advanceLocked() {
			c.cond.Wait()
		}
	}
}

// addAlarmLocked schedules a future instant the clock may advance to.
func (c *VirtualClock) addAlarmLocked(at time.Time) {
	c.alarms = append(c.alarms, at)
}

// advanceLocked advances virtual time when the simulation is quiescent:
// every registered party is blocked, no waiter can consume a delivery,
// and no waiter has already expired (an expired waiter is about to
// return and act — advancing past it would make the jump target depend
// on goroutine wake-up order). Time then jumps to the earliest pending
// alarm or waiter deadline and every waiter is woken to re-check.
// Reports whether time moved.
func (c *VirtualClock) advanceLocked() bool {
	if c.parties == 0 || c.blocked < c.parties {
		return false
	}
	var next time.Time
	have := false
	for w := range c.waiters {
		if w.ready != nil && w.ready() {
			return false // a delivery is consumable: its owner runs first
		}
		if w.hasDeadline {
			if !c.now.Before(w.deadline) {
				return false // an expired waiter has not returned yet
			}
			if !have || w.deadline.Before(next) {
				next, have = w.deadline, true
			}
		}
	}
	keep := c.alarms[:0]
	for _, at := range c.alarms {
		if !c.now.Before(at) {
			continue // stale: already reachable, nothing left to trigger
		}
		keep = append(keep, at)
		if !have || at.Before(next) {
			next, have = at, true
		}
	}
	c.alarms = keep
	if !have {
		panic("platform: virtual clock deadlock — every party is blocked with no pending deadline or delivery")
	}
	c.now = next
	c.cond.Broadcast()
	return true
}
