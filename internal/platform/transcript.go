package platform

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// TranscriptEntry is one line of a session transcript: a compact record
// of a protocol message (payload bodies like model weights are elided;
// the transcript captures the conversation, not the tensors).
type TranscriptEntry struct {
	// Dir is "send" (server → client) or "recv" (client → server).
	Dir    string  `json:"dir"`
	Client int     `json:"client"`
	Type   MsgType `json:"type"`
	// Iteration is set for round/update messages.
	Iteration int `json:"iteration,omitempty"`
	// Bids is the bid count of a bids message.
	Bids int `json:"bids,omitempty"`
	// Amount is the payment of a payment message, or the award payment.
	Amount float64 `json:"amount,omitempty"`
	// Won is set on award messages.
	Won bool `json:"won,omitempty"`
}

// transcript serializes entries as JSON lines, safely across goroutines.
type transcript struct {
	mu  sync.Mutex
	enc *json.Encoder
}

func newTranscript(w io.Writer) *transcript {
	if w == nil {
		return nil
	}
	return &transcript{enc: json.NewEncoder(w)}
}

// log records one message. A nil transcript is a no-op, so call sites
// stay unconditional.
func (t *transcript) log(dir string, client int, m Message) {
	if t == nil {
		return
	}
	e := TranscriptEntry{Dir: dir, Client: client, Type: m.Type}
	switch {
	case m.Round != nil:
		e.Iteration = m.Round.Iteration
	case m.Update != nil:
		e.Iteration = m.Update.Iteration
	case m.Bids != nil:
		e.Bids = len(m.Bids)
	case m.Payment != nil:
		e.Amount = m.Payment.Amount
	case m.Award != nil:
		e.Won = m.Award.Won
		e.Amount = m.Award.Payment
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	_ = t.enc.Encode(e)
}

// recordedConn wraps a Conn so every message crossing it lands in the
// transcript.
type recordedConn struct {
	Conn
	id int
	tr *transcript
}

// Send implements Conn.
func (c recordedConn) Send(m Message) error {
	err := c.Conn.Send(m)
	if err == nil {
		c.tr.log("send", c.id, m)
	}
	return err
}

// Recv implements Conn.
func (c recordedConn) Recv(timeout time.Duration) (Message, error) {
	m, err := c.Conn.Recv(timeout)
	if err == nil {
		c.tr.log("recv", c.id, m)
	}
	return m, err
}

// ReadTranscript parses a JSONL transcript back into entries.
func ReadTranscript(r io.Reader) ([]TranscriptEntry, error) {
	dec := json.NewDecoder(r)
	var out []TranscriptEntry
	for {
		var e TranscriptEntry
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}
