package platform

import "fmt"

// AuditTranscript verifies that a completed session's transcript is a
// legal protocol conversation from the server's point of view, for every
// client independently:
//
//   - the first message to a client is the announcement, sent exactly once;
//   - bids arrive only after the announcement;
//   - awards (initial or repair promotions) follow the announcement;
//   - round requests go only to clients that hold an award, with
//     non-decreasing iteration numbers (equal numbers are retries);
//   - every received update answers a round request actually sent to that
//     client with that iteration number;
//   - settlement is exactly one payment (with a non-negative amount)
//     followed by exactly one goodbye, and nothing after the goodbye.
//
// Chaos testing replays this audit over every fault schedule: whatever
// the network drops, delays or duplicates, the server must never emit an
// out-of-order conversation.
func AuditTranscript(entries []TranscriptEntry) error {
	type clientState struct {
		announced bool
		awarded   bool
		lastRound int
		rounds    map[int]bool // iterations requested from this client
		paid      bool
		bye       bool
	}
	states := make(map[int]*clientState)
	state := func(id int) *clientState {
		st := states[id]
		if st == nil {
			st = &clientState{rounds: make(map[int]bool)}
			states[id] = st
		}
		return st
	}
	for i, e := range entries {
		st := state(e.Client)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("transcript entry %d (client %d, %s %s): %s",
				i, e.Client, e.Dir, e.Type, fmt.Sprintf(format, args...))
		}
		if st.bye {
			return fail("traffic after goodbye")
		}
		switch e.Dir {
		case "send":
			switch e.Type {
			case MsgAnnounce:
				if st.announced {
					return fail("duplicate announcement")
				}
				st.announced = true
			case MsgAward:
				if !st.announced {
					return fail("award before announcement")
				}
				if e.Won {
					st.awarded = true
				}
				if e.Amount < 0 {
					return fail("negative award payment %v", e.Amount)
				}
			case MsgRound:
				if !st.awarded {
					return fail("round request without a winning award")
				}
				if e.Iteration < 1 {
					return fail("iteration %d < 1", e.Iteration)
				}
				if e.Iteration < st.lastRound {
					return fail("iteration went backwards: %d after %d", e.Iteration, st.lastRound)
				}
				st.lastRound = e.Iteration
				st.rounds[e.Iteration] = true
			case MsgPayment:
				if !st.announced {
					return fail("payment before announcement")
				}
				if st.paid {
					return fail("duplicate payment")
				}
				if e.Amount < 0 {
					return fail("negative payment %v", e.Amount)
				}
				st.paid = true
			case MsgBye:
				if !st.paid {
					return fail("goodbye before payment")
				}
				st.bye = true
			default:
				return fail("server never sends this type")
			}
		case "recv":
			switch e.Type {
			case MsgBids:
				if !st.announced {
					return fail("bids before announcement")
				}
			case MsgUpdate:
				if !st.rounds[e.Iteration] {
					return fail("update for iteration %d never requested", e.Iteration)
				}
			default:
				return fail("server never accepts this type")
			}
		default:
			return fail("unknown direction %q", e.Dir)
		}
	}
	for id, st := range states {
		if st.announced && !st.bye {
			return fmt.Errorf("transcript: client %d never received a goodbye", id)
		}
	}
	return nil
}
