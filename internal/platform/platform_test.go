package platform

import (
	"sync"
	"testing"
	"time"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/fl"
	"github.com/fedauction/afl/internal/stats"
)

// testSession builds a small but complete FL marketplace: 8 clients with
// shards of a synthetic task, each bidding one window. The whole session
// runs on a virtual clock, so timeouts cost no wall time and every
// schedule is deterministic.
func testSession(t *testing.T, mutate func(agents []*Agent)) (*VirtualClock, *Server, map[int]Conn, []*Agent, []Conn) {
	t.Helper()
	clk := NewVirtualClock()
	rng := stats.NewRNG(42)
	ds, _ := fl.GenerateSynthetic(rng, fl.SyntheticOptions{Samples: 800, Dim: 4})
	shards := fl.PartitionIID(rng, ds, 8)
	job := Job{Name: "test-job", T: 6, K: 2, TMax: 60, Dim: 4}
	server := NewServer(ServerConfig{
		Job:         job,
		L2:          0.01,
		Eval:        ds,
		RecvTimeout: 2 * time.Second,
		Clock:       clk,
	})
	serverConns := make(map[int]Conn)
	var agents []*Agent
	var agentConns []Conn
	for i := 0; i < 8; i++ {
		sc, ac := VirtualPipe(clk)
		serverConns[i] = sc
		start := 1 + i%3
		end := start + 3
		if end > job.T {
			end = job.T
		}
		agents = append(agents, &Agent{
			ID: i,
			Bids: []core.Bid{{
				Price:    float64(10 + i),
				Theta:    0.5,
				Start:    start,
				End:      end,
				Rounds:   2,
				CompTime: 5,
				CommTime: 10,
			}},
			Learner: &fl.Client{ID: i, Data: shards[i], Theta: 0.5, LR: 0.4},
			L2:      0.01,
			// Longer than the server's worst-case sequence of per-phase
			// timeouts so an agent that ignores a round request is still
			// listening at settlement. Virtual time makes this free.
			RecvTimeout: 120 * time.Second,
		})
		agentConns = append(agentConns, ac)
	}
	if mutate != nil {
		mutate(agents)
	}
	return clk, server, serverConns, agents, agentConns
}

func runSession(t *testing.T, clk *VirtualClock, server *Server, serverConns map[int]Conn, agents []*Agent, agentConns []Conn) (SessionReport, []AgentReport) {
	t.Helper()
	reports := make([]AgentReport, len(agents))
	for i, a := range agents {
		clk.Go(func() {
			r, err := a.Run(agentConns[i])
			if err != nil {
				t.Errorf("agent %d: %v", a.ID, err)
			}
			reports[i] = r
		})
	}
	var report SessionReport
	var serverErr error
	clk.Go(func() {
		report, serverErr = server.RunSession(serverConns)
		for _, c := range serverConns {
			c.Close()
		}
	})
	clk.Wait()
	if serverErr != nil {
		t.Fatalf("server: %v", serverErr)
	}
	return report, reports
}

func TestFullSessionInMemory(t *testing.T) {
	clk, server, serverConns, agents, agentConns := testSession(t, nil)
	report, agentReports := runSession(t, clk, server, serverConns, agents, agentConns)

	if report.ClientsBid != 8 {
		t.Fatalf("ClientsBid = %d, want 8", report.ClientsBid)
	}
	if !report.Auction.Feasible {
		t.Fatal("auction should be feasible")
	}
	if len(report.Rounds) != report.Auction.Tg {
		t.Fatalf("%d round reports for T_g=%d", len(report.Rounds), report.Auction.Tg)
	}
	// Every round must have K responders (no faults injected).
	for _, rr := range report.Rounds {
		if len(rr.Responded) < server.cfg.Job.K {
			t.Fatalf("round %d: %d responders < K", rr.Iteration, len(rr.Responded))
		}
		if len(rr.Failed) != 0 {
			t.Fatalf("round %d: unexpected failures %v", rr.Iteration, rr.Failed)
		}
	}
	// Settlement: winners paid ≥ their price; losers zero.
	paidTotal := report.Ledger.Total()
	if paidTotal <= 0 {
		t.Fatal("no payments settled")
	}
	winners := map[int]core.Winner{}
	for _, w := range report.Auction.Winners {
		winners[w.Bid.Client] = w
	}
	for i, ar := range agentReports {
		if w, ok := winners[i]; ok {
			if !ar.Won {
				t.Fatalf("agent %d won but was not told", i)
			}
			if ar.Paid != w.Payment {
				t.Fatalf("agent %d paid %v, award said %v", i, ar.Paid, w.Payment)
			}
			if ar.Paid < agents[i].Bids[0].Price-1e-9 {
				t.Fatalf("agent %d paid %v below its price", i, ar.Paid)
			}
			if ar.RoundsRun != len(w.Slots) {
				t.Fatalf("agent %d ran %d rounds, scheduled %d", i, ar.RoundsRun, len(w.Slots))
			}
		} else if ar.Won || ar.Paid != 0 {
			t.Fatalf("agent %d lost but Won=%v Paid=%v", i, ar.Won, ar.Paid)
		}
	}
	// Model should actually learn.
	final := report.Rounds[len(report.Rounds)-1]
	if final.Accuracy < 0.7 {
		t.Fatalf("final accuracy %v too low", final.Accuracy)
	}
}

func TestSessionWithDropout(t *testing.T) {
	clk, server, serverConns, agents, agentConns := testSession(t, func(agents []*Agent) {
		// Make every agent cheap except the dropper, so the dropper wins.
		agents[0].Behavior.DropAfterRounds = 1
		agents[0].Bids[0].Price = 1
	})
	server.cfg.RecvTimeout = 300 * time.Millisecond
	report, agentReports := runSession(t, clk, server, serverConns, agents, agentConns)
	if !report.Auction.Feasible {
		t.Skip("auction infeasible in this configuration")
	}
	won0 := false
	for _, w := range report.Auction.Winners {
		if w.Bid.Client == 0 {
			won0 = true
		}
	}
	if !won0 {
		t.Skip("agent 0 did not win; dropout path not exercised")
	}
	// Agent 0 must be refused payment.
	if agentReports[0].Paid != 0 || agentReports[0].PayReason != "dropped out" {
		t.Fatalf("dropper settlement = %+v, want refusal", agentReports[0])
	}
	for _, e := range report.Ledger.Entries() {
		if e.Client == 0 && e.Amount != 0 {
			t.Fatalf("ledger paid the dropper: %+v", e)
		}
	}
	// Some round must record the failure.
	sawFailure := false
	for _, rr := range report.Rounds {
		for _, id := range rr.Failed {
			if id == 0 {
				sawFailure = true
			}
		}
	}
	if !sawFailure {
		t.Fatal("dropout never recorded in round reports")
	}
}

func TestSessionWithSilentClient(t *testing.T) {
	clk, server, serverConns, agents, agentConns := testSession(t, func(agents []*Agent) {
		agents[3].Behavior.Silent = true
	})
	// Short bid timeout: 200ms of virtual time for the silent client.
	server.cfg.RecvTimeout = 200 * time.Millisecond
	report, _ := runSession(t, clk, server, serverConns, agents, agentConns)
	if report.ClientsBid != 7 {
		t.Fatalf("ClientsBid = %d, want 7 (one silent)", report.ClientsBid)
	}
	for _, w := range report.Auction.Winners {
		if w.Bid.Client == 3 {
			t.Fatal("silent client cannot win")
		}
	}
}

func TestFullSessionOverTCP(t *testing.T) {
	rng := stats.NewRNG(7)
	ds, _ := fl.GenerateSynthetic(rng, fl.SyntheticOptions{Samples: 400, Dim: 3})
	shards := fl.PartitionIID(rng, ds, 4)
	job := Job{Name: "tcp-job", T: 4, K: 1, TMax: 60, Dim: 3}
	server := NewServer(ServerConfig{Job: job, L2: 0.01, Eval: ds, RecvTimeout: 3 * time.Second})

	serverConns := make(map[int]Conn)
	var mu sync.Mutex
	accepted := make(chan Conn, 4)
	addr, stop, err := Listen("127.0.0.1:0", 4, func(c Conn) { accepted <- c })
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	var wg sync.WaitGroup
	reports := make([]AgentReport, 4)
	for i := 0; i < 4; i++ {
		conn, err := Dial(addr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		agent := &Agent{
			ID: i,
			Bids: []core.Bid{{
				Price: float64(5 + i), Theta: 0.5, Start: 1, End: 4, Rounds: 2,
				CompTime: 5, CommTime: 10,
			}},
			Learner:     &fl.Client{ID: i, Data: shards[i], Theta: 0.5, LR: 0.4},
			L2:          0.01,
			RecvTimeout: 3 * time.Second,
		}
		wg.Add(1)
		go func(i int, c Conn) {
			defer wg.Done()
			r, err := agent.Run(c)
			if err != nil {
				t.Errorf("agent %d: %v", i, err)
			}
			mu.Lock()
			reports[i] = r
			mu.Unlock()
		}(i, conn)
	}
	// The server needs the connections in ID order: the accept order is
	// nondeterministic, so handshake by matching the first bid message...
	// simpler: agents dialed sequentially, but accept order can still
	// vary. Collect all four and probe each with a tiny announce-free
	// assumption: IDs are carried in the bids message, so the server maps
	// by the order bids arrive. For the test we just assign accepted
	// conns arbitrary IDs — the server overrides bid ownership by
	// connection, which is exactly what we assert here.
	for i := 0; i < 4; i++ {
		select {
		case c := <-accepted:
			serverConns[i] = c
		case <-time.After(2 * time.Second):
			t.Fatal("accept timeout")
		}
	}
	report, err := server.RunSession(serverConns)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range serverConns {
		c.Close()
	}
	wg.Wait()
	if report.ClientsBid != 4 {
		t.Fatalf("ClientsBid = %d", report.ClientsBid)
	}
	if !report.Auction.Feasible {
		t.Fatal("auction infeasible over TCP")
	}
	if len(report.FinalWeights) != 3 {
		t.Fatalf("final weights %v", report.FinalWeights)
	}
	paid := 0
	mu.Lock()
	defer mu.Unlock()
	for _, r := range reports {
		if r.Paid > 0 {
			paid++
		}
	}
	if paid == 0 {
		t.Fatal("nobody was paid over TCP")
	}
}

func TestPipeSemantics(t *testing.T) {
	a, b := Pipe(1)
	msg := Message{Type: MsgBye}
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv(time.Second)
	if err != nil || got.Type != MsgBye {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := b.Recv(50 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	// Invalid messages are rejected before transmission.
	if err := a.Send(Message{Type: MsgRound}); err == nil {
		t.Fatal("round without payload must fail validation")
	}
	a.Close()
	if err := a.Send(msg); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if _, err := b.Recv(50 * time.Millisecond); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestPipeDrainsQueuedAfterClose(t *testing.T) {
	a, b := Pipe(4)
	_ = a.Send(Message{Type: MsgBye})
	a.Close()
	if got, err := b.Recv(time.Second); err != nil || got.Type != MsgBye {
		t.Fatalf("queued message lost after close: %v, %v", got, err)
	}
}

func TestLedger(t *testing.T) {
	var l Ledger
	l.Record(2, 5, "x")
	l.Record(1, 3, "y")
	if l.Total() != 8 {
		t.Fatalf("total = %v", l.Total())
	}
	es := l.Entries()
	if len(es) != 2 || es[0].Client != 1 || es[1].Client != 2 {
		t.Fatalf("entries = %v", es)
	}
	if l.String() == "" {
		t.Fatal("empty ledger report")
	}
}

func TestMessageValidate(t *testing.T) {
	bad := []Message{
		{Type: MsgAnnounce},
		{Type: MsgBids},
		{Type: MsgAward},
		{Type: MsgRound},
		{Type: MsgUpdate},
		{Type: MsgPayment},
		{Type: "bogus"},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("message %d must fail validation", i)
		}
	}
	ok := Message{Type: MsgBids, Bids: []core.Bid{}}
	if err := ok.Validate(); err == nil {
		// Bids:nil fails; empty non-nil slice passes.
		t.Log("empty bids accepted")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 200*time.Millisecond); err == nil {
		t.Fatal("dialing a closed port must fail")
	}
}

func TestListenBadAddress(t *testing.T) {
	if _, _, err := Listen("256.0.0.1:99999", 1, func(Conn) {}); err == nil {
		t.Fatal("bad listen address must fail")
	}
}

func TestTCPConnRejectsInvalidMessages(t *testing.T) {
	accepted := make(chan Conn, 1)
	addr, stop, err := Listen("127.0.0.1:0", 1, func(c Conn) { accepted <- c })
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	client, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	serverSide := <-accepted
	defer serverSide.Close()
	if err := client.Send(Message{Type: MsgRound}); err == nil {
		t.Fatal("invalid message must be rejected before transmission")
	}
	// Valid round trip still works on the same conn.
	if err := client.Send(Message{Type: MsgBye}); err != nil {
		t.Fatal(err)
	}
	got, err := serverSide.Recv(time.Second)
	if err != nil || got.Type != MsgBye {
		t.Fatalf("round trip: %v, %v", got, err)
	}
	// Timeout semantics over TCP.
	if _, err := serverSide.Recv(100 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

// TestLargeSessionSoak runs a 50-agent in-memory session end to end —
// a smoke test for goroutine/channel pressure at a more realistic scale.
func TestLargeSessionSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	clk := NewVirtualClock()
	rng := stats.NewRNG(606)
	ds, _ := fl.GenerateSynthetic(rng, fl.SyntheticOptions{Samples: 2000, Dim: 4})
	shards := fl.PartitionIID(rng, ds, 50)
	job := Job{Name: "soak", T: 10, K: 6, TMax: 60, Dim: 4}
	server := NewServer(ServerConfig{Job: job, L2: 0.01, Eval: ds, RecvTimeout: 5 * time.Second, Clock: clk})
	serverConns := make(map[int]Conn, 50)
	reports := make([]AgentReport, 50)
	for i := 0; i < 50; i++ {
		sc, ac := VirtualPipe(clk)
		serverConns[i] = sc
		theta := rng.FloatRange(0.4, 0.7)
		start := rng.IntRange(1, 3)
		end := rng.IntRange(job.T-2, job.T)
		a := &Agent{
			ID: i,
			Bids: []core.Bid{{
				Price: rng.FloatRange(10, 50), Theta: theta,
				Start: start, End: end, Rounds: rng.IntRange(2, end-start),
				CompTime: rng.FloatRange(5, 10), CommTime: rng.FloatRange(10, 15),
			}},
			Learner:     &fl.Client{ID: i, Data: shards[i], Theta: theta, LR: 0.4},
			L2:          0.01,
			RecvTimeout: 300 * time.Second,
		}
		clk.Go(func() {
			r, err := a.Run(ac)
			if err != nil {
				t.Errorf("agent %d: %v", i, err)
			}
			reports[i] = r
		})
	}
	var report SessionReport
	var serverErr error
	clk.Go(func() {
		report, serverErr = server.RunSession(serverConns)
		for _, c := range serverConns {
			c.Close()
		}
	})
	clk.Wait()
	if serverErr != nil {
		t.Fatal(serverErr)
	}
	if !report.Auction.Feasible {
		t.Fatal("soak auction infeasible")
	}
	if report.ClientsBid != 50 {
		t.Fatalf("ClientsBid = %d", report.ClientsBid)
	}
	for _, rr := range report.Rounds {
		if len(rr.Responded) < job.K {
			t.Fatalf("round %d under-covered: %d < K", rr.Iteration, len(rr.Responded))
		}
	}
	paid := 0.0
	for _, r := range reports {
		paid += r.Paid
	}
	if paid != report.Ledger.Total() {
		t.Fatalf("agent-side %v vs ledger %v", paid, report.Ledger.Total())
	}
}
