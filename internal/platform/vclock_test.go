package platform

import (
	"errors"
	"testing"
	"time"
)

func TestVirtualClockSleepAdvancesDeterministically(t *testing.T) {
	clk := NewVirtualClock()
	start := clk.Now()
	var wake3, wake5 time.Time
	clk.Go(func() {
		clk.Sleep(5 * time.Second)
		wake5 = clk.Now()
	})
	clk.Go(func() {
		clk.Sleep(3 * time.Second)
		wake3 = clk.Now()
		clk.Sleep(10 * time.Second)
	})
	clk.Wait()
	if got := wake3.Sub(start); got != 3*time.Second {
		t.Fatalf("3s sleeper woke after %v", got)
	}
	if got := wake5.Sub(start); got != 5*time.Second {
		t.Fatalf("5s sleeper woke after %v", got)
	}
	if got := clk.Now().Sub(start); got != 13*time.Second {
		t.Fatalf("clock ended at +%v, want +13s", got)
	}
}

func TestVirtualPipeDeliversInOrder(t *testing.T) {
	clk := NewVirtualClock()
	a, b := VirtualPipe(clk)
	var got []int
	clk.Go(func() {
		for i := 1; i <= 3; i++ {
			_ = a.Send(Message{Type: MsgRound, Round: &Round{Iteration: i}})
		}
	})
	clk.Go(func() {
		for range 3 {
			m, err := b.Recv(time.Second)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			got = append(got, m.Round.Iteration)
		}
	})
	clk.Wait()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("messages out of order: %v", got)
	}
}

func TestVirtualPipeDelayReorders(t *testing.T) {
	clk := NewVirtualClock()
	a, b := VirtualPipe(clk)
	ds := a.(DelayedSender)
	var got []int
	clk.Go(func() {
		_ = ds.SendDelayed(Message{Type: MsgRound, Round: &Round{Iteration: 1}}, 10*time.Millisecond)
		_ = a.Send(Message{Type: MsgRound, Round: &Round{Iteration: 2}})
	})
	clk.Go(func() {
		for range 2 {
			m, err := b.Recv(time.Second)
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			got = append(got, m.Round.Iteration)
		}
	})
	clk.Wait()
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("delayed message should arrive second: %v", got)
	}
}

func TestVirtualPipeTimeoutAndTieBreak(t *testing.T) {
	clk := NewVirtualClock()
	a, b := VirtualPipe(clk)
	ds := a.(DelayedSender)

	// A message landing exactly at the receive deadline is delivered:
	// delivery beats deadline at ties.
	_ = ds.SendDelayed(Message{Type: MsgBye}, 5*time.Second)
	var tieMsg Message
	var tieErr error
	clk.Go(func() {
		tieMsg, tieErr = b.Recv(5 * time.Second)
	})
	clk.Wait()
	if tieErr != nil || tieMsg.Type != MsgBye {
		t.Fatalf("tie should deliver the message, got (%v, %v)", tieMsg.Type, tieErr)
	}

	// With nothing in flight the receive times out at its virtual deadline.
	start := clk.Now()
	var toErr error
	clk.Go(func() {
		_, toErr = b.Recv(2 * time.Second)
	})
	clk.Wait()
	if !errors.Is(toErr, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", toErr)
	}
	if got := clk.Now().Sub(start); got != 2*time.Second {
		t.Fatalf("timeout consumed %v of virtual time, want 2s", got)
	}
}

func TestVirtualPipeCloseDrainsThenFails(t *testing.T) {
	clk := NewVirtualClock()
	a, b := VirtualPipe(clk)
	_ = a.Send(Message{Type: MsgBye})
	_ = a.Close()
	var first, second error
	clk.Go(func() {
		_, first = b.Recv(time.Second)
		_, second = b.Recv(time.Second)
	})
	clk.Wait()
	if first != nil {
		t.Fatalf("queued message should drain after close, got %v", first)
	}
	if !errors.Is(second, ErrClosed) {
		t.Fatalf("want ErrClosed after drain, got %v", second)
	}
	if err := a.Send(Message{Type: MsgBye}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send on closed pipe: want ErrClosed, got %v", err)
	}
}
