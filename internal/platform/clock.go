package platform

import "time"

// Clock abstracts time for the session runtime: receive deadlines, retry
// backoff and straggler accounting all go through it, so tests can drive
// whole sessions on a deterministic virtual clock (see VirtualClock)
// while production uses the wall clock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks the caller for the given duration.
	Sleep(d time.Duration)
}

// WallClock is the real time.Now/time.Sleep clock. It is the default
// wherever a Clock is optional.
type WallClock struct{}

// Now implements Clock.
func (WallClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (WallClock) Sleep(d time.Duration) { time.Sleep(d) }
