package platform

import (
	"fmt"
	"time"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/fl"
)

// AgentBehavior injects client-side faults and strategies for experiments.
type AgentBehavior struct {
	// Silent clients never answer the announcement (connection loss
	// before bidding).
	Silent bool
	// DropAfterRounds, when positive, makes the agent stop answering
	// round requests after completing that many rounds — the unreliable
	// client of the paper's future-work discussion.
	DropAfterRounds int
	// UnavailableAfter, when positive, makes the agent ignore round
	// requests for global iterations beyond it — a client whose *claimed*
	// availability window overstated its true one. The server's
	// settlement rule (no payment for broken schedules) is what makes
	// window misreports unprofitable in the paper's Theorem 1 argument.
	UnavailableAfter int
}

// AgentReport captures what the agent observed during a session.
type AgentReport struct {
	Won        bool
	Award      Award
	RoundsRun  int
	LocalIters int
	Paid       float64
	PayReason  string
}

// Agent is a mobile client: it bids in the auction and, when it wins,
// trains its local model on the rounds it was scheduled for.
type Agent struct {
	// ID must match the server's connection map key.
	ID int
	// Bids are submitted verbatim (the server overrides Client/Index).
	Bids []core.Bid
	// Learner holds the local dataset, θ and learning rate.
	Learner *fl.Client
	// L2 must match the server's objective.
	L2 float64
	// Behavior injects faults.
	Behavior AgentBehavior
	// RecvTimeout bounds each blocking receive. Zero means 10s.
	RecvTimeout time.Duration
}

func (a *Agent) recvTimeout() time.Duration {
	if a.RecvTimeout <= 0 {
		return 10 * time.Second
	}
	return a.RecvTimeout
}

// Run participates in one session over the connection and returns the
// agent's view of it. It returns when the server says goodbye, the
// connection closes, or a receive times out.
func (a *Agent) Run(conn Conn) (AgentReport, error) {
	report := AgentReport{}
	// sent caches the update produced for each iteration so duplicated or
	// retried round requests (the server re-sends after a timeout, and a
	// faulty network may duplicate messages outright) are answered
	// idempotently: the cached update is re-sent without retraining, so
	// retries can neither double-count local work nor skew RoundsRun.
	sent := make(map[int]*Update)
	for {
		msg, err := conn.Recv(a.recvTimeout())
		if err != nil {
			if err == ErrClosed || err == ErrTimeout {
				return report, nil
			}
			return report, err
		}
		switch msg.Type {
		case MsgAnnounce:
			if a.Behavior.Silent {
				continue
			}
			if err := conn.Send(Message{Type: MsgBids, ClientID: a.ID, Bids: a.Bids}); err != nil {
				return report, fmt.Errorf("agent %d: submit bids: %w", a.ID, err)
			}
		case MsgAward:
			report.Won = msg.Award.Won
			report.Award = *msg.Award
		case MsgRound:
			if a.Behavior.DropAfterRounds > 0 && report.RoundsRun >= a.Behavior.DropAfterRounds {
				continue // gone dark: never answer again
			}
			if a.Behavior.UnavailableAfter > 0 && msg.Round.Iteration > a.Behavior.UnavailableAfter {
				continue // truly unavailable despite the claimed window
			}
			if a.Learner == nil {
				continue
			}
			if u, ok := sent[msg.Round.Iteration]; ok {
				if err := conn.Send(Message{Type: MsgUpdate, ClientID: a.ID, Update: u}); err != nil {
					return report, fmt.Errorf("agent %d: resend update: %w", a.ID, err)
				}
				continue
			}
			w, iters, achieved := a.Learner.LocalUpdateAchieved(msg.Round.Weights, a.L2)
			report.RoundsRun++
			report.LocalIters += iters
			update := &Update{
				Iteration:     msg.Round.Iteration,
				Weights:       w,
				Samples:       a.Learner.Data.Len(),
				LocalIters:    iters,
				AchievedTheta: achieved,
			}
			sent[msg.Round.Iteration] = update
			if err := conn.Send(Message{Type: MsgUpdate, ClientID: a.ID, Update: update}); err != nil {
				return report, fmt.Errorf("agent %d: send update: %w", a.ID, err)
			}
		case MsgPayment:
			report.Paid = msg.Payment.Amount
			report.PayReason = msg.Payment.Reason
		case MsgBye:
			return report, nil
		}
	}
}
