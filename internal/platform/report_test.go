package platform

import (
	"errors"
	"testing"

	"github.com/fedauction/afl/internal/core"
)

// TestSessionReportErr maps the report's degradation states onto the
// shared error sentinels.
func TestSessionReportErr(t *testing.T) {
	infeasible := SessionReport{}
	if err := infeasible.Err(); !errors.Is(err, ErrInfeasible) || !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("infeasible session: got %v, want ErrInfeasible", err)
	}

	degraded := SessionReport{
		Auction: core.Result{Feasible: true},
		Rounds: []RoundReport{
			{Iteration: 1},
			{Iteration: 2, UnderCovered: true},
			{Iteration: 3, UnderCovered: true},
		},
	}
	err := degraded.Err()
	if !errors.Is(err, ErrUnderCoverage) || !errors.Is(err, core.ErrUnderCoverage) {
		t.Fatalf("degraded session: got %v, want ErrUnderCoverage", err)
	}
	if errors.Is(err, ErrInfeasible) {
		t.Fatal("degraded session must not match ErrInfeasible")
	}

	clean := SessionReport{
		Auction: core.Result{Feasible: true},
		Rounds:  []RoundReport{{Iteration: 1}, {Iteration: 2}},
	}
	if err := clean.Err(); err != nil {
		t.Fatalf("clean session: got %v, want nil", err)
	}
}
