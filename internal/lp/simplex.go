// Package lp implements a self-contained two-phase primal simplex solver
// for linear programs in the form
//
//	minimize    c·x
//	subject to  a_i·x {≤,=,≥} b_i   for every constraint i
//	            x ≥ 0.
//
// It is the numerical substrate behind the column-generation lower bounds
// (internal/colgen) and the exact branch-and-bound solver (internal/exact)
// used to compute the paper's performance-ratio figures. The implementation
// favors robustness over raw speed: a dense tableau, Dantzig pricing with a
// Bland's-rule fallback to guarantee termination, and explicit artificial
// variables in phase one.
package lp

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Relation compares a constraint's left-hand side with its right-hand side.
type Relation int

// Constraint relations.
const (
	LE Relation = iota + 1 // a·x ≤ b
	GE                     // a·x ≥ b
	EQ                     // a·x = b
)

// String returns the relation symbol.
func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return "?"
	}
}

// Constraint is one row a·x {≤,=,≥} b. Coef must have exactly NumVars
// entries when the problem is solved.
type Constraint struct {
	Coef []float64
	Rel  Relation
	RHS  float64
}

// Problem is a linear program in the package's canonical form.
type Problem struct {
	// NumVars is the number of decision variables (all non-negative).
	NumVars int
	// Objective holds the cost coefficients c (length NumVars).
	Objective []float64
	// Constraints holds the rows.
	Constraints []Constraint
}

// Status classifies the solver outcome.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return "unknown"
	}
}

// Solution is the result of Solve.
type Solution struct {
	Status Status
	// X is the optimal primal point (length NumVars) when Status == Optimal.
	X []float64
	// Objective is c·X when Status == Optimal.
	Objective float64
	// Duals holds one dual multiplier per constraint (length
	// len(Constraints)) when Status == Optimal. Sign convention: for a
	// minimization problem, y_i ≥ 0 for ≥-rows, y_i ≤ 0 for ≤-rows, free
	// for =-rows, and c·X == Σ y_i·b_i at optimality.
	Duals []float64
}

// ErrBadProblem reports a structurally invalid problem.
var ErrBadProblem = errors.New("lp: malformed problem")

const (
	eps          = 1e-9
	maxDantzig   = 5000 // pricing iterations before switching to Bland's rule
	maxIterTotal = 200000
)

// Solve runs the two-phase simplex method on p.
func Solve(p Problem) (Solution, error) {
	if err := validate(p); err != nil {
		return Solution{}, err
	}
	t := newTableau(p)
	defer t.release()
	if !t.phaseOne() {
		return Solution{Status: Infeasible}, nil
	}
	switch t.phaseTwo() {
	case Unbounded:
		return Solution{Status: Unbounded}, nil
	default:
		return t.extract(p), nil
	}
}

func validate(p Problem) error {
	if p.NumVars < 1 {
		return fmt.Errorf("%w: NumVars=%d", ErrBadProblem, p.NumVars)
	}
	if len(p.Objective) != p.NumVars {
		return fmt.Errorf("%w: objective length %d ≠ NumVars %d", ErrBadProblem, len(p.Objective), p.NumVars)
	}
	for i, c := range p.Constraints {
		if len(c.Coef) != p.NumVars {
			return fmt.Errorf("%w: constraint %d has %d coefficients, want %d", ErrBadProblem, i, len(c.Coef), p.NumVars)
		}
		switch c.Rel {
		case LE, GE, EQ:
		default:
			return fmt.Errorf("%w: constraint %d has unknown relation %d", ErrBadProblem, i, c.Rel)
		}
		for j, v := range c.Coef {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: constraint %d coefficient %d is %v", ErrBadProblem, i, j, v)
			}
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("%w: constraint %d RHS is %v", ErrBadProblem, i, c.RHS)
		}
	}
	for j, v := range p.Objective {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: objective coefficient %d is %v", ErrBadProblem, j, v)
		}
	}
	return nil
}

// tableau is a dense simplex tableau with explicit slack, surplus and
// artificial columns.
//
// Column layout: [0, n) structural; [n, n+s) slack/surplus; [n+s, n+s+a)
// artificial. Row i of a holds the constraint coefficients; b holds the
// (non-negative) right-hand sides; basis[i] is the basic column of row i.
type tableau struct {
	m, n     int // rows, structural columns
	cols     int // total columns
	a        [][]float64
	b        []float64
	basis    []int
	cost     []float64 // phase-2 costs per column
	artStart int
	numArt   int
	// Per-row metadata for dual extraction.
	rowSlack     []int     // slack/surplus column of row i, or -1
	rowSlackSign []float64 // +1 slack (≤), −1 surplus (≥)
	rowArt       []int     // artificial column of row i, or -1
	rowFlipped   []bool    // row was negated to normalize b ≥ 0
	// Pooled working vectors: z holds reduced costs across iterate and
	// extract, phase1 the phase-1 objective. Sized with the tableau.
	z, phase1 []float64
}

// tableauPool recycles tableau backing storage across Solve calls. A
// column-generation run solves hundreds of masters of slowly growing
// size, and the dense tableau rows (m × cols float64) dominated the
// loop's allocation profile; reuse makes a steady-state Solve allocate
// only what escapes in the Solution (locked in by the alloc-guard test).
var tableauPool = sync.Pool{New: func() any { return new(tableau) }}

// growFloats resizes s to length n, reusing its backing array when large
// enough. Contents are unspecified — callers overwrite or clear.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// newTableau builds the initial tableau for p on pooled storage. Pooled
// vectors arrive with stale contents, so every field that the historical
// make-zeroing left at zero is cleared explicitly here: the constraint
// rows beyond their structural coefficients, the cost tail, the
// slack-sign and flip metadata, and (in phaseOne) the phase-1 objective
// prefix. b, basis, rowSlack and rowArt are fully overwritten per row.
func newTableau(p Problem) *tableau {
	m := len(p.Constraints)
	n := p.NumVars
	// Count slack/surplus columns.
	s := 0
	for _, c := range p.Constraints {
		if c.Rel != EQ {
			s++
		}
	}
	t := tableauPool.Get().(*tableau)
	t.m = m
	t.n = n
	t.cols = n + s + m // at most one artificial per row
	t.b = growFloats(t.b, m)
	t.basis = growInts(t.basis, m)
	t.rowSlack = growInts(t.rowSlack, m)
	t.rowSlackSign = growFloats(t.rowSlackSign, m)
	t.rowArt = growInts(t.rowArt, m)
	t.rowFlipped = growBools(t.rowFlipped, m)
	clear(t.rowSlackSign)
	clear(t.rowFlipped)
	if cap(t.a) < m {
		t.a = make([][]float64, m)
	} else {
		t.a = t.a[:m]
	}
	for i := range t.a {
		t.a[i] = growFloats(t.a[i], t.cols)
		clear(t.a[i])
	}
	t.cost = growFloats(t.cost, t.cols)
	clear(t.cost[copy(t.cost, p.Objective):])

	slack := n
	t.artStart = n + s
	art := t.artStart
	for i, c := range p.Constraints {
		t.rowSlack[i] = -1
		t.rowArt[i] = -1
		row := t.a[i]
		copy(row, c.Coef)
		rhs := c.RHS
		rel := c.Rel
		if rhs < 0 {
			// Normalize to b ≥ 0 by negating the row.
			for j := 0; j < n; j++ {
				row[j] = -row[j]
			}
			rhs = -rhs
			t.rowFlipped[i] = true
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		t.b[i] = rhs
		switch rel {
		case LE:
			row[slack] = 1
			t.basis[i] = slack
			t.rowSlack[i] = slack
			t.rowSlackSign[i] = 1
			slack++
		case GE:
			row[slack] = -1
			t.rowSlack[i] = slack
			t.rowSlackSign[i] = -1
			slack++
			row[art] = 1
			t.basis[i] = art
			t.rowArt[i] = art
			art++
		case EQ:
			row[art] = 1
			t.basis[i] = art
			t.rowArt[i] = art
			art++
		}
	}
	t.numArt = art - t.artStart
	t.cols = art // trim unused artificial columns
	for i := range t.a {
		t.a[i] = t.a[i][:t.cols]
	}
	t.cost = t.cost[:t.cols]
	t.z = growFloats(t.z, t.cols)
	t.phase1 = growFloats(t.phase1, t.cols)
	return t
}

// release returns the tableau's backing storage to the pool. extract
// copies everything that outlives the solve into the Solution, so no
// pooled slice escapes.
func (t *tableau) release() { tableauPool.Put(t) }

// phaseOne drives artificials out of the basis; reports feasibility.
func (t *tableau) phaseOne() bool {
	if t.numArt == 0 {
		return true
	}
	phase1 := t.phase1[:t.cols]
	clear(phase1[:t.artStart])
	for j := t.artStart; j < t.cols; j++ {
		phase1[j] = 1
	}
	if t.iterate(phase1) == Unbounded {
		return false // cannot happen: phase-1 objective bounded below by 0
	}
	// Feasible iff the artificial sum is (numerically) zero.
	var sum float64
	for i, bi := range t.basis {
		if bi >= t.artStart {
			sum += t.b[i]
		}
	}
	if sum > 1e-7 {
		return false
	}
	// Pivot remaining degenerate artificials out of the basis when
	// possible; rows with no eligible pivot are redundant and harmless.
	for i, bi := range t.basis {
		if bi < t.artStart {
			continue
		}
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				break
			}
		}
	}
	return true
}

func (t *tableau) phaseTwo() Status {
	return t.iterate(t.cost)
}

// iterate runs simplex pivots minimizing the given cost vector until
// optimality or unboundedness. Artificial columns are never re-entered.
func (t *tableau) iterate(cost []float64) Status {
	// Reduced costs against the current basis: z_j = c_j − c_B·B⁻¹A_j.
	// The tableau rows stay in canonical basis-reduced form, so the
	// reduction is a single pass over the basic rows. z lives in pooled
	// tableau storage; every use starts with a full copy from cost.
	z := t.z[:t.cols]
	copy(z, cost)
	t.reduceInto(z)
	for iter := 0; iter < maxIterTotal; iter++ {
		enter := -1
		if iter < maxDantzig {
			best := -eps
			for j := 0; j < t.cols; j++ {
				if t.isArtificial(j) && cost[j] == 0 {
					continue // keep artificials out in phase 2
				}
				if z[j] < best {
					best = z[j]
					enter = j
				}
			}
		} else {
			for j := 0; j < t.cols; j++ {
				if t.isArtificial(j) && cost[j] == 0 {
					continue
				}
				if z[j] < -eps {
					enter = j
					break
				}
			}
		}
		if enter == -1 {
			return Optimal
		}
		leave := -1
		// Expel a degenerate basic artificial on any nonzero entry first:
		// pivoting there keeps every artificial pinned at zero, so a basic
		// artificial can never silently regain a positive value in
		// phase 2 (which would mean leaving the feasible region).
		// (Phase 2 only — there cost[artificial] == 0; in phase 1
		// artificials are priced and the ordinary ratio test applies.)
		for i := 0; i < t.m; i++ {
			bi := t.basis[i]
			if bi >= t.artStart && cost[bi] == 0 && t.b[i] <= 1e-9 && math.Abs(t.a[i][enter]) > eps {
				leave = i
				break
			}
		}
		if leave >= 0 {
			t.pivot(leave, enter)
			copy(z, cost)
			t.reduceInto(z)
			continue
		}
		minRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][enter] > eps {
				ratio := t.b[i] / t.a[i][enter]
				if ratio < minRatio-eps || (ratio < minRatio+eps && (leave == -1 || t.basis[i] < t.basis[leave])) {
					minRatio = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return Unbounded
		}
		t.pivot(leave, enter)
		// Update reduced costs after the pivot.
		copy(z, cost)
		t.reduceInto(z)
	}
	return Optimal // iteration cap: return the best basis found
}

// reduceInto subtracts the basic components from z so z holds reduced
// costs for the current basis.
func (t *tableau) reduceInto(z []float64) {
	for i, bi := range t.basis {
		cb := z[bi]
		if cb == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j < t.cols; j++ {
			z[j] -= cb * row[j]
		}
	}
}

func (t *tableau) isArtificial(j int) bool { return j >= t.artStart }

// pivot performs a Gauss-Jordan pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	prow := t.a[row]
	pv := prow[col]
	inv := 1 / pv
	for j := 0; j < t.cols; j++ {
		prow[j] *= inv
	}
	t.b[row] *= inv
	prow[col] = 1 // kill rounding noise on the pivot column
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		irow := t.a[i]
		for j := 0; j < t.cols; j++ {
			irow[j] -= f * prow[j]
		}
		irow[col] = 0
		t.b[i] -= f * t.b[row]
		if t.b[i] < 0 && t.b[i] > -1e-11 {
			t.b[i] = 0
		}
	}
	t.basis[row] = col
}

// extract reads the primal point, objective, and duals out of the final
// tableau.
func (t *tableau) extract(p Problem) Solution {
	sol := Solution{Status: Optimal, X: make([]float64, p.NumVars), Duals: make([]float64, t.m)}
	for i, bi := range t.basis {
		if bi < p.NumVars {
			sol.X[bi] = t.b[i]
		}
	}
	for j, c := range p.Objective {
		sol.Objective += c * sol.X[j]
	}
	// Duals y = c_B·B⁻¹, read off the reduced costs of the columns that
	// formed the initial identity: for a slack column (+e_i) the reduced
	// cost is −y_i, for a surplus column (−e_i) it is +y_i, and for an
	// artificial column (+e_i, zero phase-2 cost) it is −y_i. Rows that
	// were negated to normalize b ≥ 0 flip the sign back.
	z := t.z[:t.cols]
	copy(z, t.cost)
	t.reduceInto(z)
	for i := 0; i < t.m; i++ {
		var y float64
		switch {
		case t.rowSlack[i] >= 0:
			y = -t.rowSlackSign[i] * z[t.rowSlack[i]]
		case t.rowArt[i] >= 0:
			y = -z[t.rowArt[i]]
		}
		if t.rowFlipped[i] {
			y = -y
		}
		sol.Duals[i] = y
	}
	return sol
}
