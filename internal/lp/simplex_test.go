package lp

import (
	"errors"
	"math"
	"testing"

	"github.com/fedauction/afl/internal/stats"
)

func mustSolve(t *testing.T, p Problem) Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestSolveTextbook(t *testing.T) {
	// min −3x −5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → x=2, y=6, obj=−36.
	p := Problem{
		NumVars:   2,
		Objective: []float64{-3, -5},
		Constraints: []Constraint{
			{Coef: []float64{1, 0}, Rel: LE, RHS: 4},
			{Coef: []float64{0, 2}, Rel: LE, RHS: 12},
			{Coef: []float64{3, 2}, Rel: LE, RHS: 18},
		},
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.X[0]-2) > 1e-7 || math.Abs(sol.X[1]-6) > 1e-7 {
		t.Fatalf("X = %v, want [2 6]", sol.X)
	}
	if math.Abs(sol.Objective+36) > 1e-7 {
		t.Fatalf("objective = %v, want -36", sol.Objective)
	}
}

func TestSolveGEAndEQ(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 10, x = 4 → x=4, y=6, obj=26.
	p := Problem{
		NumVars:   2,
		Objective: []float64{2, 3},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Rel: GE, RHS: 10},
			{Coef: []float64{1, 0}, Rel: EQ, RHS: 4},
		},
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.X[0]-4) > 1e-7 || math.Abs(sol.X[1]-6) > 1e-7 {
		t.Fatalf("X = %v, want [4 6]", sol.X)
	}
	if math.Abs(sol.Objective-26) > 1e-7 {
		t.Fatalf("objective = %v", sol.Objective)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coef: []float64{1}, Rel: GE, RHS: 5},
			{Coef: []float64{1}, Rel: LE, RHS: 3},
		},
	}
	if sol := mustSolve(t, p); sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := Problem{
		NumVars:   1,
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Coef: []float64{1}, Rel: GE, RHS: 0},
		},
	}
	if sol := mustSolve(t, p); sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// min x s.t. −x ≤ −5 (i.e. x ≥ 5) → x=5.
	p := Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coef: []float64{-1}, Rel: LE, RHS: -5},
		},
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal || math.Abs(sol.X[0]-5) > 1e-7 {
		t.Fatalf("sol = %+v, want x=5", sol)
	}
}

func TestSolveValidation(t *testing.T) {
	bad := []Problem{
		{NumVars: 0},
		{NumVars: 1, Objective: []float64{1, 2}},
		{NumVars: 1, Objective: []float64{1}, Constraints: []Constraint{{Coef: []float64{1, 2}, Rel: LE, RHS: 1}}},
		{NumVars: 1, Objective: []float64{1}, Constraints: []Constraint{{Coef: []float64{1}, Rel: 0, RHS: 1}}},
		{NumVars: 1, Objective: []float64{math.NaN()}},
		{NumVars: 1, Objective: []float64{1}, Constraints: []Constraint{{Coef: []float64{math.Inf(1)}, Rel: LE, RHS: 1}}},
		{NumVars: 1, Objective: []float64{1}, Constraints: []Constraint{{Coef: []float64{1}, Rel: LE, RHS: math.NaN()}}},
	}
	for i, p := range bad {
		if _, err := Solve(p); !errors.Is(err, ErrBadProblem) {
			t.Fatalf("problem %d: want ErrBadProblem, got %v", i, err)
		}
	}
}

func TestDualityOnSmallLPs(t *testing.T) {
	// Strong duality: c·x* == Σ y_i b_i, with sign-feasible duals.
	rng := stats.NewRNG(31)
	for trial := 0; trial < 200; trial++ {
		p := randomFeasibleLP(rng)
		sol := mustSolve(t, p)
		if sol.Status != Optimal {
			continue
		}
		var yb float64
		for i, c := range p.Constraints {
			y := sol.Duals[i]
			yb += y * c.RHS
			switch c.Rel {
			case GE:
				if y < -1e-6 {
					t.Fatalf("trial %d: ≥-row dual %v negative", trial, y)
				}
			case LE:
				if y > 1e-6 {
					t.Fatalf("trial %d: ≤-row dual %v positive", trial, y)
				}
			}
		}
		if math.Abs(yb-sol.Objective) > 1e-5*(1+math.Abs(sol.Objective)) {
			t.Fatalf("trial %d: duality gap: y·b=%v, c·x=%v", trial, yb, sol.Objective)
		}
		// Dual feasibility: Aᵀy ≤ c.
		for j := 0; j < p.NumVars; j++ {
			var ay float64
			for i, c := range p.Constraints {
				ay += sol.Duals[i] * c.Coef[j]
			}
			if ay > p.Objective[j]+1e-5 {
				t.Fatalf("trial %d: dual infeasible at var %d: %v > %v", trial, j, ay, p.Objective[j])
			}
		}
	}
}

// TestAgainstVertexEnumeration cross-checks the simplex optimum against
// brute-force enumeration of basic feasible points on random 2-3 variable
// problems with ≤-rows (bounded by a box so the optimum exists).
func TestAgainstVertexEnumeration(t *testing.T) {
	rng := stats.NewRNG(67)
	for trial := 0; trial < 300; trial++ {
		nv := rng.IntRange(2, 3)
		nc := rng.IntRange(1, 4)
		p := Problem{NumVars: nv, Objective: make([]float64, nv)}
		for j := range p.Objective {
			p.Objective[j] = rng.FloatRange(-5, 5)
		}
		for i := 0; i < nc; i++ {
			c := Constraint{Coef: make([]float64, nv), Rel: LE, RHS: rng.FloatRange(0, 10)}
			for j := range c.Coef {
				c.Coef[j] = rng.FloatRange(-2, 3)
			}
			p.Constraints = append(p.Constraints, c)
		}
		// Box: x_j ≤ 10 bounds the problem; x=0 is always feasible.
		for j := 0; j < nv; j++ {
			coef := make([]float64, nv)
			coef[j] = 1
			p.Constraints = append(p.Constraints, Constraint{Coef: coef, Rel: LE, RHS: 10})
		}
		sol := mustSolve(t, p)
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v on a bounded feasible LP", trial, sol.Status)
		}
		want := bruteForceMin(p)
		if math.Abs(sol.Objective-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("trial %d: simplex %v, brute force %v", trial, sol.Objective, want)
		}
		// Primal feasibility of the returned point.
		for i, c := range p.Constraints {
			var ax float64
			for j, v := range c.Coef {
				ax += v * sol.X[j]
			}
			if ax > c.RHS+1e-6 {
				t.Fatalf("trial %d: constraint %d violated: %v > %v", trial, i, ax, c.RHS)
			}
		}
		for j, x := range sol.X {
			if x < -1e-9 {
				t.Fatalf("trial %d: negative variable %d = %v", trial, j, x)
			}
		}
	}
}

// bruteForceMin enumerates all vertices of {Ax ≤ b, x ≥ 0} by solving all
// n×n subsystems of active constraints and returns the minimum objective
// over feasible vertices (the optimum of a bounded LP lies at a vertex).
func bruteForceMin(p Problem) float64 {
	n := p.NumVars
	// Build the full row set: constraints plus x_j ≥ 0 (as −x_j ≤ 0).
	var rows []lpRow
	for _, c := range p.Constraints {
		rows = append(rows, lpRow{a: c.Coef, b: c.RHS})
	}
	for j := 0; j < n; j++ {
		a := make([]float64, n)
		a[j] = -1
		rows = append(rows, lpRow{a: a, b: 0})
	}
	best := math.Inf(1)
	idx := make([]int, n)
	var rec func(start, d int)
	rec = func(start, d int) {
		if d == n {
			x, ok := solveSquare(rows, idx, n)
			if !ok {
				return
			}
			for j := 0; j < n; j++ {
				if x[j] < -1e-7 {
					return
				}
			}
			for _, r := range rows {
				var ax float64
				for j := 0; j < n; j++ {
					ax += r.a[j] * x[j]
				}
				if ax > r.b+1e-7 {
					return
				}
			}
			var obj float64
			for j := 0; j < n; j++ {
				obj += p.Objective[j] * x[j]
			}
			if obj < best {
				best = obj
			}
			return
		}
		for i := start; i < len(rows); i++ {
			idx[d] = i
			rec(i+1, d+1)
		}
	}
	rec(0, 0)
	return best
}

// lpRow is one inequality a·x ≤ b of the brute-force enumeration.
type lpRow struct {
	a []float64
	b float64
}

// solveSquare solves the n×n system formed by the chosen active rows via
// Gaussian elimination; ok is false for singular systems.
func solveSquare(rows []lpRow, idx []int, n int) ([]float64, bool) {
	m := make([][]float64, n)
	for i := 0; i < n; i++ {
		m[i] = make([]float64, n+1)
		copy(m[i], rows[idx[i]].a)
		m[i][n] = rows[idx[i]].b
	}
	for col := 0; col < n; col++ {
		piv := -1
		for r := col; r < n; r++ {
			if math.Abs(m[r][col]) > 1e-9 && (piv == -1 || math.Abs(m[r][col]) > math.Abs(m[piv][col])) {
				piv = r
			}
		}
		if piv == -1 {
			return nil, false
		}
		m[col], m[piv] = m[piv], m[col]
		f := m[col][col]
		for j := col; j <= n; j++ {
			m[col][j] /= f
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			g := m[r][col]
			for j := col; j <= n; j++ {
				m[r][j] -= g * m[col][j]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = m[i][n]
	}
	return x, true
}

// randomFeasibleLP generates a small LP guaranteed feasible (x=0 satisfies
// every row) and bounded (box constraints).
func randomFeasibleLP(rng *stats.RNG) Problem {
	nv := rng.IntRange(2, 4)
	p := Problem{NumVars: nv, Objective: make([]float64, nv)}
	for j := range p.Objective {
		p.Objective[j] = rng.FloatRange(0.1, 5) // positive costs keep min bounded
	}
	nc := rng.IntRange(1, 5)
	for i := 0; i < nc; i++ {
		c := Constraint{Coef: make([]float64, nv), RHS: rng.FloatRange(1, 10)}
		for j := range c.Coef {
			c.Coef[j] = rng.FloatRange(0, 3)
		}
		// Mix of row types; ≥-rows need a nonzero coefficient to stay
		// feasible, which positive coefficients provide.
		switch rng.Intn(3) {
		case 0:
			c.Rel = LE
		case 1:
			c.Rel = GE
			ok := false
			for _, v := range c.Coef {
				if v > 0.5 {
					ok = true
				}
			}
			if !ok {
				c.Coef[rng.Intn(nv)] = 1 + rng.Float64()
			}
		case 2:
			c.Rel = EQ
			ok := false
			for _, v := range c.Coef {
				if v > 0.5 {
					ok = true
				}
			}
			if !ok {
				c.Coef[rng.Intn(nv)] = 1 + rng.Float64()
			}
		}
		p.Constraints = append(p.Constraints, c)
	}
	return p
}

func TestStatusAndRelationStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || Status(0).String() != "unknown" {
		t.Fatal("status strings wrong")
	}
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" || Relation(0).String() != "?" {
		t.Fatal("relation strings wrong")
	}
}

func TestDegenerateAndRedundantLPs(t *testing.T) {
	// Duplicate equality rows create redundant constraints whose
	// artificials stay basic at zero after phase 1; phase 2 must not let
	// them regain value.
	p := Problem{
		NumVars:   2,
		Objective: []float64{1, 2},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Rel: EQ, RHS: 4},
			{Coef: []float64{1, 1}, Rel: EQ, RHS: 4},
			{Coef: []float64{2, 2}, Rel: EQ, RHS: 8},
			{Coef: []float64{1, 0}, Rel: GE, RHS: 1},
		},
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	// min x+2y with x+y=4, x≥1 → x=4, y=0, obj=4.
	if math.Abs(sol.Objective-4) > 1e-7 {
		t.Fatalf("objective %v, want 4", sol.Objective)
	}
	// Zero objective: any feasible vertex is optimal at 0.
	p2 := Problem{
		NumVars:   2,
		Objective: []float64{0, 0},
		Constraints: []Constraint{
			{Coef: []float64{1, 1}, Rel: GE, RHS: 2},
		},
	}
	sol2 := mustSolve(t, p2)
	if sol2.Status != Optimal || sol2.Objective != 0 {
		t.Fatalf("zero-objective LP: %+v", sol2)
	}
	// Conflicting duplicated equalities are infeasible.
	p3 := Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coef: []float64{1}, Rel: EQ, RHS: 1},
			{Coef: []float64{1}, Rel: EQ, RHS: 2},
		},
	}
	if sol3 := mustSolve(t, p3); sol3.Status != Infeasible {
		t.Fatalf("conflicting equalities: %v", sol3.Status)
	}
}

func TestLargeSparseLP(t *testing.T) {
	// A 120-row covering LP: min Σx s.t. each of 120 elements covered by
	// 3 of 200 sets. Optimum is 120/3 = 40 when sets partition evenly.
	const rows, cols = 120, 200
	p := Problem{NumVars: cols, Objective: make([]float64, cols)}
	for j := range p.Objective {
		p.Objective[j] = 1
	}
	for i := 0; i < rows; i++ {
		coef := make([]float64, cols)
		coef[i%cols] = 1
		coef[(i+40)%cols] = 1
		coef[(i+80)%cols] = 1
		p.Constraints = append(p.Constraints, Constraint{Coef: coef, Rel: GE, RHS: 1})
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if sol.Objective <= 0 || sol.Objective > rows {
		t.Fatalf("objective %v out of range", sol.Objective)
	}
	// Cover check.
	for i, c := range p.Constraints {
		var ax float64
		for j, v := range c.Coef {
			ax += v * sol.X[j]
		}
		if ax < 1-1e-6 {
			t.Fatalf("row %d uncovered: %v", i, ax)
		}
	}
}
