package lp

import "testing"

// poolProblem is a small mixed-relation LP exercising slack, surplus and
// artificial columns — the full tableau layout the pool must re-zero.
func poolProblem() Problem {
	return Problem{
		NumVars:   4,
		Objective: []float64{3, 2, 4, 1},
		Constraints: []Constraint{
			{Coef: []float64{1, 1, 1, 1}, Rel: GE, RHS: 2},
			{Coef: []float64{2, 1, 0, 0}, Rel: LE, RHS: 5},
			{Coef: []float64{0, 1, 1, 0}, Rel: EQ, RHS: 1},
			{Coef: []float64{1, 0, 0, 2}, Rel: GE, RHS: 1},
		},
	}
}

// TestSolveAllocSteadyState locks in the tableau pool: once the pool is
// warm, a Solve allocates only what escapes in the Solution (X, Duals
// and the struct bookkeeping around them) — the dense tableau rows,
// reduced-cost vectors and row metadata are all recycled.
func TestSolveAllocSteadyState(t *testing.T) {
	p := poolProblem()
	if sol, err := Solve(p); err != nil || sol.Status != Optimal {
		t.Fatalf("warmup solve: status=%v err=%v", sol.Status, err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := Solve(p); err != nil {
			t.Fatalf("Solve: %v", err)
		}
	})
	// X + Duals escape; leave headroom for runtime noise but stay far
	// below the ~12 per-solve tableau allocations pooling removed.
	if allocs > 6 {
		t.Fatalf("Solve allocates %.1f objects/run in steady state, want ≤ 6", allocs)
	}
}

// TestSolvePooledReuseIsClean re-solves problems of different shapes and
// sizes back-to-back so stale pooled storage from a larger tableau would
// corrupt a smaller one if any vector were under-cleared.
func TestSolvePooledReuseIsClean(t *testing.T) {
	big := Problem{
		NumVars:   6,
		Objective: []float64{5, 4, 3, 2, 1, 6},
		Constraints: []Constraint{
			{Coef: []float64{1, 1, 1, 1, 1, 1}, Rel: GE, RHS: 3},
			{Coef: []float64{1, 2, 3, 0, 0, 0}, Rel: LE, RHS: 10},
			{Coef: []float64{0, 0, 1, 1, 0, 0}, Rel: EQ, RHS: 1},
			{Coef: []float64{0, 0, 0, 0, 1, 1}, Rel: GE, RHS: 1},
			{Coef: []float64{1, 0, 0, 0, 0, 1}, Rel: LE, RHS: 4},
			{Coef: []float64{0, 1, 0, 1, 0, 0}, Rel: GE, RHS: 1},
		},
	}
	small := poolProblem()
	want, err := Solve(small)
	if err != nil || want.Status != Optimal {
		t.Fatalf("reference solve: status=%v err=%v", want.Status, err)
	}
	for i := 0; i < 50; i++ {
		if sol, err := Solve(big); err != nil || sol.Status != Optimal {
			t.Fatalf("iter %d big: status=%v err=%v", i, sol.Status, err)
		}
		got, err := Solve(small)
		if err != nil || got.Status != Optimal {
			t.Fatalf("iter %d small: status=%v err=%v", i, got.Status, err)
		}
		if got.Objective != want.Objective {
			t.Fatalf("iter %d: pooled reuse drifted objective %v → %v", i, want.Objective, got.Objective)
		}
		for j := range want.X {
			if got.X[j] != want.X[j] {
				t.Fatalf("iter %d: pooled reuse drifted X[%d] %v → %v", i, j, want.X[j], got.X[j])
			}
		}
		for j := range want.Duals {
			if got.Duals[j] != want.Duals[j] {
				t.Fatalf("iter %d: pooled reuse drifted dual %d %v → %v", i, j, want.Duals[j], got.Duals[j])
			}
		}
	}
}

// BenchmarkSolve tracks the steady-state cost of one pooled solve;
// -benchmem makes the allocation floor visible next to the latency.
func BenchmarkSolve(b *testing.B) {
	p := poolProblem()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
