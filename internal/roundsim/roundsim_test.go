package roundsim

import (
	"math"
	"testing"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/workload"
)

func solvedAuction(t *testing.T, tmax float64) ([]core.Bid, core.Result, core.Config) {
	t.Helper()
	p := workload.NewDefaultParams()
	p.Clients = 120
	p.T = 12
	p.K = 4
	p.TMax = tmax
	p.Seed = 9
	bids, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.Config()
	res, err := core.RunAuction(bids, cfg)
	if err != nil || !res.Feasible {
		t.Fatalf("auction failed: %v", err)
	}
	return bids, res, cfg
}

func TestSimulateDeterministic(t *testing.T) {
	_, res, cfg := solvedAuction(t, 60)
	sim, err := Simulate(res, cfg.K, Options{TMax: cfg.TMax})
	if err != nil {
		t.Fatal(err)
	}
	if len(sim.Rounds) != res.Tg {
		t.Fatalf("rounds = %d, want %d", len(sim.Rounds), res.Tg)
	}
	// With the (6d) filter enforced at auction time and no jitter, no
	// participant can exceed t_max: zero stragglers, zero failures.
	if sim.StragglerRate != 0 || sim.FailedRounds != 0 {
		t.Fatalf("deterministic run with (6d) enforced has stragglers=%.3f failed=%d",
			sim.StragglerRate, sim.FailedRounds)
	}
	for _, rt := range sim.Rounds {
		if rt.Duration <= 0 || rt.Duration > cfg.TMax {
			t.Fatalf("round %d duration %v outside (0, %v]", rt.Iteration, rt.Duration, cfg.TMax)
		}
		if rt.OnTime < cfg.K {
			t.Fatalf("round %d has %d on-time < K", rt.Iteration, rt.OnTime)
		}
	}
	if sim.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	// Determinism: same options, same result.
	sim2, _ := Simulate(res, cfg.K, Options{TMax: cfg.TMax})
	if sim2.Makespan != sim.Makespan {
		t.Fatal("deterministic simulation not reproducible")
	}
}

func TestSimulateJitterCausesStragglers(t *testing.T) {
	_, res, cfg := solvedAuction(t, 60)
	// Winners sit close to t_max=60? Not necessarily, so tighten the
	// cutoff at simulation time to force stragglers under heavy jitter.
	sim, err := Simulate(res, cfg.K, Options{TMax: 40, Jitter: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sim.StragglerRate == 0 {
		t.Fatal("heavy jitter with a tight cutoff produced no stragglers")
	}
	// Makespan accounting: every round costs at most the cutoff.
	if sim.Makespan > 40*float64(res.Tg)+1e-9 {
		t.Fatalf("makespan %v exceeds cutoff budget", sim.Makespan)
	}
}

func TestSimulateWithoutCutoff(t *testing.T) {
	_, res, cfg := solvedAuction(t, 60)
	sim, err := Simulate(res, cfg.K, Options{Jitter: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// No cutoff: nobody is dropped, no round fails, but durations are
	// unbounded above t_max (the cost of not enforcing (6d)).
	if sim.StragglerRate != 0 || sim.FailedRounds != 0 {
		t.Fatalf("uncut run dropped participants: %+v", sim)
	}
	exceeded := false
	for _, rt := range sim.Rounds {
		if rt.Duration > cfg.TMax {
			exceeded = true
		}
	}
	if !exceeded {
		t.Log("no round exceeded t_max under jitter; acceptable but unusual")
	}
	if sim.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestSimulateDropouts(t *testing.T) {
	_, res, cfg := solvedAuction(t, 60)
	// Certain dropout: every scheduled participation vanishes, every round
	// fails, and nobody is merely a straggler.
	all, err := Simulate(res, cfg.K, Options{TMax: cfg.TMax, DropoutProb: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	scheduled := 0
	for _, rt := range all.Rounds {
		scheduled += rt.OnTime + rt.Stragglers + rt.Dropouts
	}
	if all.Dropouts != scheduled || all.FailedRounds != res.Tg || all.StragglerRate != 0 {
		t.Fatalf("full-dropout run inconsistent: %+v", all)
	}
	// Partial dropout: deterministic under a fixed seed, and the zero
	// option draws nothing, leaving a jittered run bit-identical to one
	// that never mentioned the field.
	some, err := Simulate(res, cfg.K, Options{TMax: cfg.TMax, Jitter: 0.2, DropoutProb: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if some.Dropouts == 0 {
		t.Fatal("30% dropout produced none")
	}
	again, _ := Simulate(res, cfg.K, Options{TMax: cfg.TMax, Jitter: 0.2, DropoutProb: 0.3, Seed: 7})
	if again.Makespan != some.Makespan || again.Dropouts != some.Dropouts {
		t.Fatal("dropout simulation not reproducible")
	}
	base, _ := Simulate(res, cfg.K, Options{TMax: cfg.TMax, Jitter: 0.2, Seed: 7})
	zero, _ := Simulate(res, cfg.K, Options{TMax: cfg.TMax, Jitter: 0.2, DropoutProb: 0, Seed: 7})
	if zero.Makespan != base.Makespan || zero.StragglerRate != base.StragglerRate {
		t.Fatal("DropoutProb=0 perturbed the jitter stream")
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate(core.Result{}, 1, Options{}); err == nil {
		t.Fatal("infeasible result must error")
	}
	if _, err := Simulate(core.Result{Feasible: true, Tg: 1}, 0, Options{}); err == nil {
		t.Fatal("K=0 must error")
	}
}

func TestSimulateRoundFailure(t *testing.T) {
	// A single slow winner and a cutoff below its round time: the round
	// must fail.
	res := core.Result{
		Feasible: true,
		Tg:       1,
		Winners: []core.Winner{{
			Bid:   core.Bid{Client: 0, Price: 1, Theta: 0.3, Start: 1, End: 1, Rounds: 1, CompTime: 10, CommTime: 15},
			Slots: []int{1},
		}},
	}
	// Round time = ⌊10·0.7⌋·10 + 15 = 85 > 50.
	sim, err := Simulate(res, 1, Options{TMax: 50})
	if err != nil {
		t.Fatal(err)
	}
	if sim.FailedRounds != 1 || !sim.Rounds[0].Failed {
		t.Fatalf("expected a failed round: %+v", sim)
	}
	if math.Abs(sim.Rounds[0].Duration-50) > 1e-12 {
		t.Fatalf("failed round duration %v, want the cutoff", sim.Rounds[0].Duration)
	}
}
