// Package roundsim simulates the wall-clock execution of an auctioned
// schedule under synchronous FedAvg: in every global iteration the server
// waits for the slowest scheduled participant, whose round time is
//
//	t_ij = T_l(θ_ij)·t_i^cmp + t_i^com           (the paper's Eq. (2) time)
//
// perturbed by multiplicative jitter (hardware variation, the paper's
// §VIII caveat). Participants that exceed the per-iteration budget t_max
// are cut off as stragglers; an iteration that retains fewer than K
// on-time participants fails.
//
// The simulator quantifies what constraint (6d) buys: with the constraint
// enforced at auction time, even jittered rounds rarely exceed t_max;
// with it disabled, makespan and failure rates degrade.
package roundsim

import (
	"fmt"
	"math"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/stats"
)

// Options configures a simulation.
type Options struct {
	// Jitter is the standard deviation of the multiplicative lognormal
	// noise applied to each participant's round time (0 = deterministic).
	Jitter float64
	// TMax is the per-iteration cutoff; participants slower than this are
	// dropped from the round. Zero disables the cutoff.
	TMax float64
	// LocalIters maps θ to local iterations. Nil selects the paper's
	// simplified ⌊10(1−θ)⌋.
	LocalIters core.LocalIterFunc
	// DropoutProb is the per-participation probability that a scheduled
	// client vanishes mid-round (crash, network partition) and returns
	// nothing — distinct from a straggler, which finishes but too late.
	// Zero draws nothing from the RNG, so the zero path is bit-identical
	// to a simulation without the option.
	DropoutProb float64
	// Seed drives the jitter and dropout draws.
	Seed int64
}

// RoundTiming reports one simulated global iteration.
type RoundTiming struct {
	Iteration int
	// Duration is the wall-clock time of the round: the slowest on-time
	// participant (or the cutoff when stragglers were dropped).
	Duration float64
	// OnTime, Stragglers and Dropouts partition the scheduled
	// participants: finished in time, finished late, never returned.
	OnTime     int
	Stragglers int
	Dropouts   int
	// Failed is set when fewer than K participants finished on time.
	Failed bool
}

// Result aggregates a simulated schedule execution.
type Result struct {
	Rounds []RoundTiming
	// Makespan is the total wall-clock time of the job.
	Makespan float64
	// FailedRounds counts iterations with fewer than K on-time updates.
	FailedRounds int
	// StragglerRate is the fraction of scheduled participations cut off.
	StragglerRate float64
	// Dropouts counts scheduled participations that never returned.
	Dropouts int
}

// String summarizes the execution.
func (r Result) String() string {
	s := fmt.Sprintf("rounds=%d makespan=%.1f failed=%d stragglers=%.1f%%",
		len(r.Rounds), r.Makespan, r.FailedRounds, 100*r.StragglerRate)
	if r.Dropouts > 0 {
		s += fmt.Sprintf(" dropouts=%d", r.Dropouts)
	}
	return s
}

// Simulate executes an auction outcome under the timing model. The bids
// slice must be the one the auction ran on (winners index into it).
func Simulate(res core.Result, k int, opts Options) (Result, error) {
	if !res.Feasible {
		return Result{}, fmt.Errorf("roundsim: cannot simulate an infeasible auction result")
	}
	if k < 1 {
		return Result{}, fmt.Errorf("roundsim: K=%d must be ≥ 1", k)
	}
	localIters := opts.LocalIters
	if localIters == nil {
		localIters = core.PaperLocalIters
	}
	rng := stats.NewRNG(opts.Seed)
	// Scheduled participants per iteration with their nominal times.
	perRound := make([][]float64, res.Tg)
	for _, w := range res.Winners {
		nominal := w.Bid.PerRoundTime(localIters)
		for _, t := range w.Slots {
			if t >= 1 && t <= res.Tg {
				perRound[t-1] = append(perRound[t-1], nominal)
			}
		}
	}
	out := Result{}
	totalScheduled, totalStragglers := 0, 0
	for t := 1; t <= res.Tg; t++ {
		rt := RoundTiming{Iteration: t}
		var slowest float64
		for _, nominal := range perRound[t-1] {
			totalScheduled++
			if opts.DropoutProb > 0 && rng.Float64() < opts.DropoutProb {
				rt.Dropouts++
				out.Dropouts++
				continue
			}
			actual := nominal
			if opts.Jitter > 0 {
				actual = nominal * math.Exp(rng.Gaussian(0, opts.Jitter))
			}
			if opts.TMax > 0 && actual > opts.TMax {
				rt.Stragglers++
				totalStragglers++
				continue
			}
			rt.OnTime++
			slowest = math.Max(slowest, actual)
		}
		rt.Duration = slowest
		if opts.TMax > 0 && (rt.Stragglers > 0 || rt.Dropouts > 0) {
			// The server waited until the cutoff before giving up on the
			// stragglers and dropouts.
			rt.Duration = opts.TMax
		}
		if rt.OnTime < k {
			rt.Failed = true
			out.FailedRounds++
		}
		out.Makespan += rt.Duration
		out.Rounds = append(out.Rounds, rt)
	}
	if totalScheduled > 0 {
		out.StragglerRate = float64(totalStragglers) / float64(totalScheduled)
	}
	return out, nil
}
