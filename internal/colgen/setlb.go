package colgen

import (
	"math"
	"sort"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/lp"
)

// BidSet-native column generation.
//
// The row entry point (LowerBound) compiled its bid slice on every call
// and priced every qualified bid individually: one best-slot computation
// — an O(W log W) partial sort over the availability window — per bid per
// pricing round. Over the compiled population the same pass collapses
// along the shape-class index the greedy sweep already maintains: bids
// sharing a window shape (start, end, rounds) have identical best-slot
// sets against any dual vector, so the pass computes one best-slot set
// per distinct shape and walks each class's members in ascending
// (price, bid) order, breaking out of the class as soon as
//
//	price − gain ≥ max(0, max_i q_i)
//
// since reduced costs ρ − gain − q are nondecreasing in ρ within a class
// and every convexity dual q_i is ≤ max_i q_i. Skipped bids therefore
// have nonnegative reduced cost: they would neither enter the master nor
// contribute to the Lagrangian bound (which sums only negative terms), so
// the early exit is exact, not heuristic. For T = 50 a million-bid
// population has at most ~22k shapes, so a pricing round does thousands
// of best-slot computations instead of a million.

// SetLowerBound runs column generation for the WDP with the given
// qualified bids and fixed T̂_g directly over a compiled population,
// reusing its columns and shape-class index. It is the native entry
// point; LowerBound is a thin compile-then-delegate wrapper and returns
// bit-identical bounds (locked in by the differential suite).
func SetLowerBound(set *core.BidSet, qualified []int, tg int, cfg core.Config, opts Options) Result {
	if set == nil || tg < 1 || len(qualified) == 0 {
		return Result{}
	}
	seed := core.SolveWDPSet(set, qualified, tg, cfg)
	res, _, _ := lowerBoundSet(set, qualified, tg, cfg, opts, seed)
	return res
}

// Certifier adapts the column-generation bound to the core solver's
// LPCertifier hook: the approximate sweep hands it the greedy seed of the
// selected T̂_g and receives a lower bound plus the fractional columns of
// the final master for LP-guided rounding. The zero value selects
// aggressive budget caps tuned for the sweep's latency envelope (the
// dense master is the bottleneck at large populations; the Lagrangian
// fallback keeps the bound valid whenever a cap fires); set Opts for
// offline runs that want convergence.
type Certifier struct {
	Opts Options
}

// CertifyWDP implements core.LPCertifier.
func (c Certifier) CertifyWDP(set *core.BidSet, qualified []int, tg int, cfg core.Config, seed core.WDPResult) core.LPOutcome {
	if set == nil || tg < 1 || !seed.Feasible {
		return core.LPOutcome{}
	}
	opts := c.Opts
	if opts == (Options{}) {
		opts = Options{
			MaxIterations:     8,
			MaxColumnsPerIter: 64,
			MaxColumns:        len(seed.Winners) + 512,
		}
	}
	res, cols, x := lowerBoundSet(set, qualified, tg, cfg, opts, seed)
	if !res.Feasible {
		return core.LPOutcome{}
	}
	out := core.LPOutcome{
		Valid:      true,
		Converged:  res.Converged,
		LowerBound: res.LowerBound,
	}
	// x aligns with the cols prefix present at the last master solve;
	// columns appended afterwards never carry primal value.
	for j := range x {
		if x[j] > 1e-9 {
			out.Columns = append(out.Columns, core.LPColumn{
				Bid: cols[j].bid, Slots: cols[j].slots, Value: x[j],
			})
		}
	}
	return out
}

// lowerBoundSet is the column-generation loop over a compiled population:
// seed columns from the greedy cover, solve the restricted master, price
// by shape class, repeat until convergence or a budget cap. It returns
// the bound, the generated columns and the final master's primal point
// (aligned with the column prefix of its last solve) for rounding.
func lowerBoundSet(set *core.BidSet, qualified []int, tg int, cfg core.Config, opts Options, seed core.WDPResult) (Result, []column, []float64) {
	if !seed.Feasible {
		return Result{}, nil, nil
	}

	cols := make([]column, 0, len(seed.Winners))
	seen := make(map[colKey][]int)
	addCol := func(c column) bool {
		k := c.key()
		for _, j := range seen[k] {
			if slotsEqual(cols[j].slots, c.slots) {
				return false
			}
		}
		seen[k] = append(seen[k], len(cols))
		cols = append(cols, c)
		return true
	}
	for _, w := range seed.Winners {
		addCol(column{bid: w.BidIndex, client: w.Bid.Client, slots: w.Slots, cost: w.Bid.Price})
	}

	// Qualification bitmap: the class walk covers every member of every
	// class, so per-solve qualification is applied by lookup.
	qual := make([]bool, set.Len())
	for _, idx := range qualified {
		qual[idx] = true
	}

	res := Result{Feasible: true}
	var lastX []float64
	fallback := func(lb float64) (Result, []column, []float64) {
		if seed.Dual.Objective > lb {
			lb = seed.Dual.Objective // the greedy dual bound is always valid
		}
		res.LowerBound = lb
		return res, cols, lastX
	}
	maxIter := opts.maxIterations()
	for iter := 0; ; iter++ {
		sol, clientRow, err := solveMaster(cols, tg, cfg.K)
		if err != nil || sol.Status != lp.Optimal {
			res.LPValue = math.NaN()
			return fallback(math.Inf(-1))
		}
		res.LPValue = sol.Objective
		res.Iterations = iter + 1
		res.Columns = len(cols)
		lastX = sol.X

		g := sol.Duals[:tg] // coverage duals, ≥ 0
		q := func(client int) float64 {
			if row, ok := clientRow[client]; ok {
				return sol.Duals[tg+row]
			}
			return 0 // convexity row absent → slack → dual zero
		}
		// Convexity duals are ≤ 0 at an exact optimum, but the dense
		// master is finite-precision: the early-exit threshold absorbs any
		// positive drift so skipped bids provably price nonnegative.
		maxQ := 0.0
		for _, row := range clientRow {
			if d := sol.Duals[tg+row]; d > maxQ {
				maxQ = d
			}
		}

		type priced struct {
			rc  float64
			col column
		}
		var negatives []priced
		bestPerClient := make(map[int]float64)
		price := func(idx int, slots []int, gain float64) {
			client := set.ClientAt(idx)
			rc := set.PriceAt(idx) - gain - q(client)
			if rc < bestPerClient[client] {
				bestPerClient[client] = rc
			}
			if rc < -1e-7 {
				cs := make([]int, len(slots))
				copy(cs, slots)
				negatives = append(negatives, priced{rc: rc, col: column{
					bid: idx, client: client, slots: cs, cost: set.PriceAt(idx),
				}})
			}
		}
		if nc := set.ShapeClassCount(); nc > 0 {
			for c := 0; c < nc; c++ {
				lo, hi, r := set.ShapeClass(c)
				slots, gain := bestSlotsShape(lo, hi, r, tg, g)
				if slots == nil {
					continue
				}
				for _, idx := range set.ShapeClassMembers(c) {
					if !qual[idx] {
						continue
					}
					if set.PriceAt(idx)-gain >= maxQ {
						break // ascending price: the rest of the class prices ≥ 0
					}
					price(idx, slots, gain)
				}
			}
		} else {
			// Price views carry no class index; fall back to the per-bid pass.
			for _, idx := range qualified {
				lo, hi, r := set.WindowAt(idx)
				slots, gain := bestSlotsShape(lo, hi, r, tg, g)
				if slots == nil {
					continue
				}
				price(idx, slots, gain)
			}
		}
		var lagrangian float64
		for _, rc := range bestPerClient {
			lagrangian += rc // each ≤ 0
		}
		if len(negatives) == 0 {
			res.Converged = true
			res.LowerBound = sol.Objective
			return res, cols, lastX
		}
		budgetLeft := opts.maxColumns() - len(cols)
		if iter+1 >= maxIter || budgetLeft <= 0 {
			return fallback(sol.Objective + lagrangian)
		}
		// (rc, bid) is a total order — one column per bid per round — so
		// the insertion order is deterministic regardless of walk order.
		sort.Slice(negatives, func(a, b int) bool {
			if negatives[a].rc != negatives[b].rc {
				return negatives[a].rc < negatives[b].rc
			}
			return negatives[a].col.bid < negatives[b].col.bid
		})
		limit := min(opts.maxPerIter(), budgetLeft, len(negatives))
		improved := false
		for _, p := range negatives[:limit] {
			if addCol(p.col) {
				improved = true
			}
		}
		if !improved {
			// Every priced column already exists: numerical drift; the
			// Lagrangian bound remains valid.
			return fallback(sol.Objective + lagrangian)
		}
	}
}

// bestSlotsShape returns the r iterations with the largest coverage duals
// inside the clipped window [lo, min(hi, tg)], ascending, plus their dual
// sum — the best column of every bid sharing that window shape.
func bestSlotsShape(lo, hi, r, tg int, g []float64) ([]int, float64) {
	if hi > tg {
		hi = tg
	}
	n := hi - lo + 1
	if n < r {
		return nil, 0
	}
	cand := make([]int, 0, n)
	for t := lo; t <= hi; t++ {
		cand = append(cand, t)
	}
	sort.Slice(cand, func(a, c int) bool {
		ga, gc := g[cand[a]-1], g[cand[c]-1]
		if ga != gc {
			return ga > gc
		}
		return cand[a] < cand[c]
	})
	cand = cand[:r]
	var sum float64
	for _, t := range cand {
		sum += g[t-1]
	}
	sort.Ints(cand)
	return cand, sum
}
