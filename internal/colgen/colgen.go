// Package colgen computes lower bounds on the optimal cost of a
// winner-determination problem by solving the LP relaxation of the
// compact-exponential ILP (7) of the paper with delayed column generation.
//
// ILP (7) has one variable z_il per feasible schedule — exponentially many
// — so its LP relaxation cannot be written down directly. Column
// generation keeps a restricted master problem (RMP) over a small set of
// generated schedules,
//
//	minimize  Σ ρ_il·z_il
//	s.t.      Σ_{(i,l): t∈l} z_il ≥ K    for every iteration t   (7a)
//	          Σ_l z_il ≤ 1               for every client i      (7b)
//	          z ≥ 0,
//
// and repeatedly prices new schedules against the RMP duals: for coverage
// duals g(t) and client duals q_i (zero for clients not yet in the
// master), the best column of bid (i,j) takes the c_ij iterations of its
// window with the largest g(t); it enters when ρ_ij − Σ g(t) − q_i < 0.
// When no column prices negative, the RMP optimum equals the full LP
// optimum, which lower-bounds the ILP optimum. When an iteration or
// column budget runs out first, the Lagrangian bound — RMP value plus the
// sum over clients of their most negative reduced cost — is returned; it
// is valid at every iteration.
//
// The master only carries convexity rows for clients that own at least
// one generated column, so its size tracks the generated columns, not the
// full population; populations with thousands of clients stay tractable.
package colgen

import (
	"math"
	"sort"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/lp"
)

// Result reports a column-generation run.
type Result struct {
	// Feasible is false when the WDP itself has no integral solution
	// (detected via the greedy seed); no bound is produced then.
	Feasible bool
	// Converged reports whether pricing proved LP optimality.
	Converged bool
	// LowerBound is a valid lower bound on the optimal WDP cost.
	LowerBound float64
	// LPValue is the final restricted-master optimum (an upper bound on
	// the true LP value; equal to it when Converged).
	LPValue float64
	// Columns is the number of schedule columns generated.
	Columns int
	// Iterations is the number of pricing rounds performed.
	Iterations int
}

// Options tunes the column-generation loop.
type Options struct {
	// MaxIterations caps pricing rounds. Zero means 300.
	MaxIterations int
	// MaxColumnsPerIter caps how many priced columns enter per round
	// (most negative first). Zero means 200.
	MaxColumnsPerIter int
	// MaxColumns caps total master columns. Zero means 4000.
	MaxColumns int
}

func (o Options) maxIterations() int {
	if o.MaxIterations <= 0 {
		return 300
	}
	return o.MaxIterations
}

func (o Options) maxPerIter() int {
	if o.MaxColumnsPerIter <= 0 {
		return 200
	}
	return o.MaxColumnsPerIter
}

func (o Options) maxColumns() int {
	if o.MaxColumns <= 0 {
		return 4000
	}
	return o.MaxColumns
}

// column is one generated schedule.
type column struct {
	bid    int   // index into bids
	client int   // bidding client (master convexity row)
	slots  []int // scheduled iterations (ascending)
	cost   float64
}

// colKey is the comparable dedupe key of a column: the bid index plus an
// FNV-1a hash of its slot set. Hashing replaces the historical
// fmt.Sprint signature string, which allocated (and formatted) once per
// priced column on the hottest dedupe path of the loop; the key is a
// plain value, so computing it allocates nothing. Distinct slot sets can
// collide in the hash, so the dedupe map buckets column indices per key
// and confirms equality slot-by-slot (see addCol in LowerBound).
type colKey struct {
	bid  int
	hash uint64
}

// key returns the column's dedupe key.
func (c column) key() colKey {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, t := range c.slots {
		h ^= uint64(t)
		h *= prime64
	}
	return colKey{bid: c.bid, hash: h}
}

// slotsEqual reports whether two ascending slot sets are identical.
func slotsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// LowerBound runs column generation for the WDP with the given qualified
// bids and fixed T̂_g.
func LowerBound(bids []core.Bid, qualified []int, tg int, cfg core.Config, opts Options) Result {
	if tg < 1 || len(qualified) == 0 {
		return Result{}
	}
	// Seed with the greedy solution: it certifies integral feasibility
	// and gives the master a feasible starting basis.
	seed := core.SolveWDP(bids, qualified, tg, cfg)
	if !seed.Feasible {
		return Result{}
	}

	cols := make([]column, 0, len(seed.Winners))
	// seen buckets column indices by comparable key; the slot-by-slot
	// check inside resolves hash collisions exactly, so dedupe behaviour
	// is identical to comparing full slot sets.
	seen := make(map[colKey][]int)
	addCol := func(c column) bool {
		k := c.key()
		for _, j := range seen[k] {
			if slotsEqual(cols[j].slots, c.slots) {
				return false
			}
		}
		seen[k] = append(seen[k], len(cols))
		cols = append(cols, c)
		return true
	}
	for _, w := range seed.Winners {
		addCol(column{bid: w.BidIndex, client: w.Bid.Client, slots: w.Slots, cost: w.Bid.Price})
	}

	// All distinct qualified clients, for the Lagrangian bound.
	clientSet := make(map[int]struct{})
	for _, idx := range qualified {
		clientSet[bids[idx].Client] = struct{}{}
	}

	res := Result{Feasible: true}
	fallback := func(lb float64) Result {
		if seed.Dual.Objective > lb {
			lb = seed.Dual.Objective // the greedy dual bound is always valid
		}
		res.LowerBound = lb
		return res
	}
	maxIter := opts.maxIterations()
	for iter := 0; ; iter++ {
		sol, clientRow, err := solveMaster(cols, tg, cfg.K)
		if err != nil || sol.Status != lp.Optimal {
			// The seeded master is integrally feasible; a non-optimal
			// status here is numerical. Fall back to the greedy dual.
			res.LPValue = math.NaN()
			return fallback(math.Inf(-1))
		}
		res.LPValue = sol.Objective
		res.Iterations = iter + 1
		res.Columns = len(cols)

		g := sol.Duals[:tg] // coverage duals, ≥ 0
		q := func(client int) float64 {
			if row, ok := clientRow[client]; ok {
				return sol.Duals[tg+row]
			}
			return 0 // convexity row absent → slack → dual zero
		}

		// Price every qualified bid: the best column takes the c_ij
		// largest g(t) in the window.
		type priced struct {
			rc  float64
			col column
		}
		var negatives []priced
		bestPerClient := make(map[int]float64, len(clientSet))
		for _, idx := range qualified {
			b := bids[idx]
			slots, gain := bestSlots(b, tg, g)
			if slots == nil {
				continue
			}
			rc := b.Price - gain - q(b.Client)
			if rc < bestPerClient[b.Client] {
				bestPerClient[b.Client] = rc
			}
			if rc < -1e-7 {
				negatives = append(negatives, priced{rc: rc, col: column{
					bid: idx, client: b.Client, slots: slots, cost: b.Price,
				}})
			}
		}
		var lagrangian float64
		for _, rc := range bestPerClient {
			lagrangian += rc // each ≤ 0
		}
		if len(negatives) == 0 {
			res.Converged = true
			res.LowerBound = sol.Objective
			return res
		}
		budgetLeft := opts.maxColumns() - len(cols)
		if iter+1 >= maxIter || budgetLeft <= 0 {
			return fallback(sol.Objective + lagrangian)
		}
		sort.Slice(negatives, func(a, b int) bool { return negatives[a].rc < negatives[b].rc })
		limit := min(opts.maxPerIter(), budgetLeft, len(negatives))
		improved := false
		for _, p := range negatives[:limit] {
			if addCol(p.col) {
				improved = true
			}
		}
		if !improved {
			// Every priced column already exists: the master is at its LP
			// optimum over the generated set but pricing still sees
			// negative reduced costs, which indicates numerical drift.
			// The Lagrangian bound remains valid.
			return fallback(sol.Objective + lagrangian)
		}
	}
}

// bestSlots returns the c_ij iterations of the bid's clipped window with
// the largest coverage duals, plus their dual sum.
func bestSlots(b core.Bid, tg int, g []float64) ([]int, float64) {
	hi := min(b.End, tg)
	n := hi - b.Start + 1
	if n < b.Rounds {
		return nil, 0
	}
	cand := make([]int, 0, n)
	for t := b.Start; t <= hi; t++ {
		cand = append(cand, t)
	}
	sort.Slice(cand, func(a, c int) bool {
		ga, gc := g[cand[a]-1], g[cand[c]-1]
		if ga != gc {
			return ga > gc
		}
		return cand[a] < cand[c]
	})
	cand = cand[:b.Rounds]
	var sum float64
	for _, t := range cand {
		sum += g[t-1]
	}
	sort.Ints(cand)
	return cand, sum
}

// solveMaster builds and solves the restricted master LP over the
// generated columns. Convexity rows exist only for clients owning at
// least one column; the returned map gives each such client's row offset
// (relative to the tg coverage rows).
func solveMaster(cols []column, tg, k int) (lp.Solution, map[int]int, error) {
	n := len(cols)
	clientRow := make(map[int]int)
	var clients []int
	for _, c := range cols {
		if _, ok := clientRow[c.client]; !ok {
			clientRow[c.client] = len(clients)
			clients = append(clients, c.client)
		}
	}
	p := lp.Problem{NumVars: n, Objective: make([]float64, n)}
	rows := make([][]float64, tg+len(clients))
	for i := range rows {
		rows[i] = make([]float64, n)
	}
	for j, c := range cols {
		p.Objective[j] = c.cost
		for _, t := range c.slots {
			rows[t-1][j] = 1
		}
		rows[tg+clientRow[c.client]][j] = 1
	}
	for t := 0; t < tg; t++ {
		p.Constraints = append(p.Constraints, lp.Constraint{Coef: rows[t], Rel: lp.GE, RHS: float64(k)})
	}
	for i := range clients {
		p.Constraints = append(p.Constraints, lp.Constraint{Coef: rows[tg+i], Rel: lp.LE, RHS: 1})
	}
	sol, err := lp.Solve(p)
	return sol, clientRow, err
}
