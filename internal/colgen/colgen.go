// Package colgen computes lower bounds on the optimal cost of a
// winner-determination problem by solving the LP relaxation of the
// compact-exponential ILP (7) of the paper with delayed column generation.
//
// ILP (7) has one variable z_il per feasible schedule — exponentially many
// — so its LP relaxation cannot be written down directly. Column
// generation keeps a restricted master problem (RMP) over a small set of
// generated schedules,
//
//	minimize  Σ ρ_il·z_il
//	s.t.      Σ_{(i,l): t∈l} z_il ≥ K    for every iteration t   (7a)
//	          Σ_l z_il ≤ 1               for every client i      (7b)
//	          z ≥ 0,
//
// and repeatedly prices new schedules against the RMP duals: for coverage
// duals g(t) and client duals q_i (zero for clients not yet in the
// master), the best column of bid (i,j) takes the c_ij iterations of its
// window with the largest g(t); it enters when ρ_ij − Σ g(t) − q_i < 0.
// When no column prices negative, the RMP optimum equals the full LP
// optimum, which lower-bounds the ILP optimum. When an iteration or
// column budget runs out first, the Lagrangian bound — RMP value plus the
// sum over clients of their most negative reduced cost — is returned; it
// is valid at every iteration.
//
// The master only carries convexity rows for clients that own at least
// one generated column, so its size tracks the generated columns, not the
// full population; populations with thousands of clients stay tractable.
package colgen

import (
	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/lp"
)

// Result reports a column-generation run.
type Result struct {
	// Feasible is false when the WDP itself has no integral solution
	// (detected via the greedy seed); no bound is produced then.
	Feasible bool
	// Converged reports whether pricing proved LP optimality.
	Converged bool
	// LowerBound is a valid lower bound on the optimal WDP cost.
	LowerBound float64
	// LPValue is the final restricted-master optimum (an upper bound on
	// the true LP value; equal to it when Converged).
	LPValue float64
	// Columns is the number of schedule columns generated.
	Columns int
	// Iterations is the number of pricing rounds performed.
	Iterations int
}

// Options tunes the column-generation loop.
type Options struct {
	// MaxIterations caps pricing rounds. Zero means 300.
	MaxIterations int
	// MaxColumnsPerIter caps how many priced columns enter per round
	// (most negative first). Zero means 200.
	MaxColumnsPerIter int
	// MaxColumns caps total master columns. Zero means 4000.
	MaxColumns int
}

func (o Options) maxIterations() int {
	if o.MaxIterations <= 0 {
		return 300
	}
	return o.MaxIterations
}

func (o Options) maxPerIter() int {
	if o.MaxColumnsPerIter <= 0 {
		return 200
	}
	return o.MaxColumnsPerIter
}

func (o Options) maxColumns() int {
	if o.MaxColumns <= 0 {
		return 4000
	}
	return o.MaxColumns
}

// column is one generated schedule.
type column struct {
	bid    int   // index into bids
	client int   // bidding client (master convexity row)
	slots  []int // scheduled iterations (ascending)
	cost   float64
}

// colKey is the comparable dedupe key of a column: the bid index plus an
// FNV-1a hash of its slot set. Hashing replaces the historical
// fmt.Sprint signature string, which allocated (and formatted) once per
// priced column on the hottest dedupe path of the loop; the key is a
// plain value, so computing it allocates nothing. Distinct slot sets can
// collide in the hash, so the dedupe map buckets column indices per key
// and confirms equality slot-by-slot (see addCol in LowerBound).
type colKey struct {
	bid  int
	hash uint64
}

// key returns the column's dedupe key.
func (c column) key() colKey {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, t := range c.slots {
		h ^= uint64(t)
		h *= prime64
	}
	return colKey{bid: c.bid, hash: h}
}

// slotsEqual reports whether two ascending slot sets are identical.
func slotsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// LowerBound runs column generation for the WDP with the given qualified
// bids and fixed T̂_g. It is the row-oriented compat entry: the slice is
// compiled to a columnar BidSet and delegated to SetLowerBound, so the
// two paths return bit-identical bounds (locked in by the differential
// suite in setlb_test.go).
func LowerBound(bids []core.Bid, qualified []int, tg int, cfg core.Config, opts Options) Result {
	if tg < 1 || len(qualified) == 0 {
		return Result{}
	}
	return SetLowerBound(core.CompileBids(bids), qualified, tg, cfg, opts)
}

// solveMaster builds and solves the restricted master LP over the
// generated columns. Convexity rows exist only for clients owning at
// least one column; the returned map gives each such client's row offset
// (relative to the tg coverage rows).
func solveMaster(cols []column, tg, k int) (lp.Solution, map[int]int, error) {
	n := len(cols)
	clientRow := make(map[int]int)
	var clients []int
	for _, c := range cols {
		if _, ok := clientRow[c.client]; !ok {
			clientRow[c.client] = len(clients)
			clients = append(clients, c.client)
		}
	}
	p := lp.Problem{NumVars: n, Objective: make([]float64, n)}
	rows := make([][]float64, tg+len(clients))
	for i := range rows {
		rows[i] = make([]float64, n)
	}
	for j, c := range cols {
		p.Objective[j] = c.cost
		for _, t := range c.slots {
			rows[t-1][j] = 1
		}
		rows[tg+clientRow[c.client]][j] = 1
	}
	for t := 0; t < tg; t++ {
		p.Constraints = append(p.Constraints, lp.Constraint{Coef: rows[t], Rel: lp.GE, RHS: float64(k)})
	}
	for i := range clients {
		p.Constraints = append(p.Constraints, lp.Constraint{Coef: rows[tg+i], Rel: lp.LE, RHS: 1})
	}
	sol, err := lp.Solve(p)
	return sol, clientRow, err
}
