package colgen

import (
	"math"
	"testing"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/exact"
	"github.com/fedauction/afl/internal/stats"
)

// The differential suite promised by the SetLowerBound doc: the row
// entry point and the BidSet-native loop must report bit-identical
// results, a shared compiled handle must be reusable across T̂_g values
// without drift, and the Certifier adapter's bound must stay valid
// against the integral optimum.

func sameResult(a, b Result) bool {
	eq := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return math.IsNaN(x) && math.IsNaN(y)
		}
		return x == y
	}
	return a.Feasible == b.Feasible && a.Converged == b.Converged &&
		eq(a.LowerBound, b.LowerBound) && eq(a.LPValue, b.LPValue) &&
		a.Columns == b.Columns && a.Iterations == b.Iterations
}

func TestSetLowerBoundMatchesRowPath(t *testing.T) {
	rng := stats.NewRNG(91)
	for _, opts := range []Options{
		{},
		{MaxIterations: 2, MaxColumnsPerIter: 3, MaxColumns: 16},
	} {
		for trial := 0; trial < 60; trial++ {
			bids, tg, k := randomInstance(rng)
			cfg := core.Config{T: tg, K: k}
			qual := allIdx(bids)
			row := LowerBound(bids, qual, tg, cfg, opts)
			native := SetLowerBound(core.CompileBids(bids), qual, tg, cfg, opts)
			if !sameResult(row, native) {
				t.Fatalf("opts %+v trial %d: row %+v ≠ native %+v", opts, trial, row, native)
			}
		}
	}
}

func TestSetLowerBoundSharedHandle(t *testing.T) {
	// One compiled handle, many (tg, qualified) solves: results must be
	// identical to fresh compiles — the loop must not leave state behind
	// in the set.
	rng := stats.NewRNG(92)
	for trial := 0; trial < 20; trial++ {
		bids, tg, k := randomInstance(rng)
		cfg := core.Config{T: tg, K: k}
		qual := allIdx(bids)
		shared := core.CompileBids(bids)
		for pass := 0; pass < 2; pass++ {
			for cand := 1; cand <= tg; cand++ {
				got := SetLowerBound(shared, qual, cand, cfg, Options{})
				want := SetLowerBound(core.CompileBids(bids), qual, cand, cfg, Options{})
				if !sameResult(got, want) {
					t.Fatalf("trial %d pass %d tg %d: shared %+v ≠ fresh %+v", trial, pass, cand, got, want)
				}
			}
		}
	}
}

func TestSetLowerBoundNeverExceedsOptimum(t *testing.T) {
	rng := stats.NewRNG(93)
	checked := 0
	for trial := 0; trial < 60; trial++ {
		bids, tg, k := randomInstance(rng)
		cfg := core.Config{T: tg, K: k}
		qual := allIdx(bids)
		set := core.CompileBids(bids)
		res := SetLowerBound(set, qual, tg, cfg, Options{})
		opt := exact.SolveWDP(bids, qual, tg, cfg, exact.Options{})
		if !res.Feasible {
			continue
		}
		checked++
		if !opt.Feasible {
			t.Fatalf("trial %d: native feasible but exact infeasible", trial)
		}
		if res.LowerBound > opt.Cost+1e-5 {
			t.Fatalf("trial %d: native LB %v exceeds optimum %v", trial, res.LowerBound, opt.Cost)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d feasible instances", checked)
	}
}

func TestCertifierBoundIsValid(t *testing.T) {
	rng := stats.NewRNG(94)
	checked := 0
	for trial := 0; trial < 60; trial++ {
		bids, tg, k := randomInstance(rng)
		cfg := core.Config{T: tg, K: k}
		qual := allIdx(bids)
		set := core.CompileBids(bids)
		seed := core.SolveWDPSet(set, qual, tg, cfg)
		out := Certifier{}.CertifyWDP(set, qual, tg, cfg, seed)
		if !seed.Feasible {
			if out.Valid {
				t.Fatalf("trial %d: valid certificate for infeasible seed", trial)
			}
			continue
		}
		if !out.Valid {
			t.Fatalf("trial %d: no certificate for feasible seed", trial)
		}
		checked++
		opt := exact.SolveWDP(bids, qual, tg, cfg, exact.Options{})
		if out.LowerBound > opt.Cost+1e-5 {
			t.Fatalf("trial %d: certifier LB %v exceeds optimum %v", trial, out.LowerBound, opt.Cost)
		}
		if out.LowerBound > seed.Cost+1e-5 {
			t.Fatalf("trial %d: certifier LB %v exceeds greedy cost %v", trial, out.LowerBound, seed.Cost)
		}
		for _, c := range out.Columns {
			if c.Value <= 0 {
				t.Fatalf("trial %d: non-positive column weight %v", trial, c.Value)
			}
			if c.Bid < 0 || c.Bid >= set.Len() {
				t.Fatalf("trial %d: column bid %d out of range", trial, c.Bid)
			}
			for _, slot := range c.Slots {
				if slot < 1 || slot > tg {
					t.Fatalf("trial %d: column slot %d outside [1, %d]", trial, slot, tg)
				}
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d certified instances", checked)
	}
}

func TestCertifierExplicitOptsMatchNative(t *testing.T) {
	// With explicit caps the adapter must run the same loop as
	// SetLowerBound — same bound, same convergence verdict.
	rng := stats.NewRNG(95)
	opts := Options{MaxIterations: 5, MaxColumnsPerIter: 8, MaxColumns: 64}
	for trial := 0; trial < 40; trial++ {
		bids, tg, k := randomInstance(rng)
		cfg := core.Config{T: tg, K: k}
		qual := allIdx(bids)
		set := core.CompileBids(bids)
		seed := core.SolveWDPSet(set, qual, tg, cfg)
		if !seed.Feasible {
			continue
		}
		out := Certifier{Opts: opts}.CertifyWDP(set, qual, tg, cfg, seed)
		res := SetLowerBound(set, qual, tg, cfg, opts)
		if !out.Valid || !res.Feasible {
			t.Fatalf("trial %d: valid=%v feasible=%v", trial, out.Valid, res.Feasible)
		}
		if out.LowerBound != res.LowerBound || out.Converged != res.Converged {
			t.Fatalf("trial %d: certifier (%v, %v) ≠ native (%v, %v)",
				trial, out.LowerBound, out.Converged, res.LowerBound, res.Converged)
		}
	}
}
