package colgen

import (
	"fmt"
	"math/rand"
	"testing"
)

// keyBenchColumns draws a deterministic population of columns with the
// duplicate density the pricing loop actually produces: a few thousand
// candidate columns over a few hundred bids, where re-priced rounds keep
// proposing schedules the master already holds.
func keyBenchColumns(n int) []column {
	rng := rand.New(rand.NewSource(7))
	cols := make([]column, n)
	for i := range cols {
		bid := rng.Intn(n / 8)
		rounds := 2 + rng.Intn(4)
		slots := make([]int, rounds)
		t := 1 + rng.Intn(4)
		for j := range slots {
			slots[j] = t
			t += 1 + rng.Intn(3)
		}
		cols[i] = column{bid: bid, client: bid, slots: slots, cost: float64(bid)}
	}
	return cols
}

// TestColumnKeyDedupe checks the comparable-key dedupe against the
// historical string-signature semantics on a population dense with
// duplicates: both must admit exactly the same column subsequence.
func TestColumnKeyDedupe(t *testing.T) {
	cands := keyBenchColumns(4096)

	legacySeen := make(map[string]bool)
	var legacy []int
	for i, c := range cands {
		sig := fmt.Sprint(c.bid, c.slots)
		if !legacySeen[sig] {
			legacySeen[sig] = true
			legacy = append(legacy, i)
		}
	}

	var cols []column
	seen := make(map[colKey][]int)
	var got []int
	for i, c := range cands {
		k := c.key()
		dup := false
		for _, j := range seen[k] {
			if slotsEqual(cols[j].slots, c.slots) {
				dup = true
				break
			}
		}
		if !dup {
			seen[k] = append(seen[k], len(cols))
			cols = append(cols, c)
			got = append(got, i)
		}
	}

	if len(got) != len(legacy) {
		t.Fatalf("key dedupe admits %d columns, signature dedupe %d", len(got), len(legacy))
	}
	for i := range got {
		if got[i] != legacy[i] {
			t.Fatalf("dedupe order diverges at %d: column %d vs %d", i, got[i], legacy[i])
		}
	}
	if len(got) == len(cands) {
		t.Fatal("benchmark population has no duplicates — the test proves nothing")
	}
}

// BenchmarkDedupeSignature measures the historical dedupe: one formatted
// string allocation per candidate column.
func BenchmarkDedupeSignature(b *testing.B) {
	cands := keyBenchColumns(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seen := make(map[string]bool, len(cands))
		kept := 0
		for _, c := range cands {
			sig := fmt.Sprint(c.bid, c.slots)
			if !seen[sig] {
				seen[sig] = true
				kept++
			}
		}
	}
}

// BenchmarkDedupeKey measures the comparable-key dedupe that replaced
// it: an FNV-1a fold per candidate, no allocation outside the map
// itself.
func BenchmarkDedupeKey(b *testing.B) {
	cands := keyBenchColumns(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var cols []column
		seen := make(map[colKey][]int, len(cands))
		for _, c := range cands {
			k := c.key()
			dup := false
			for _, j := range seen[k] {
				if slotsEqual(cols[j].slots, c.slots) {
					dup = true
					break
				}
			}
			if !dup {
				seen[k] = append(seen[k], len(cols))
				cols = append(cols, c)
			}
		}
	}
}
