package colgen

import (
	"math"
	"testing"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/exact"
	"github.com/fedauction/afl/internal/stats"
	"github.com/fedauction/afl/internal/workload"
)

func allIdx(bids []core.Bid) []int {
	out := make([]int, len(bids))
	for i := range bids {
		out[i] = i
	}
	return out
}

func randomInstance(rng *stats.RNG) (bids []core.Bid, tg, k int) {
	tg = rng.IntRange(2, 7)
	k = rng.IntRange(1, 2)
	clients := rng.IntRange(k+1, 8)
	for c := 0; c < clients; c++ {
		n := rng.IntRange(1, 2)
		for j := 0; j < n; j++ {
			start := rng.IntRange(1, tg)
			end := rng.IntRange(start, tg)
			bids = append(bids, core.Bid{
				Client: c,
				Index:  j,
				Price:  float64(rng.IntRange(1, 30)),
				Theta:  0.4,
				Start:  start,
				End:    end,
				Rounds: rng.IntRange(1, end-start+1),
			})
		}
	}
	return bids, tg, k
}

func TestLowerBoundPaperExample(t *testing.T) {
	bids := []core.Bid{
		{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 2, Rounds: 1},
		{Client: 1, Price: 6, Theta: 0.5, Start: 2, End: 3, Rounds: 2},
		{Client: 2, Price: 5, Theta: 0.5, Start: 1, End: 3, Rounds: 2},
	}
	res := LowerBound(bids, allIdx(bids), 3, core.Config{T: 3, K: 1}, Options{})
	if !res.Feasible {
		t.Fatal("example is feasible")
	}
	if !res.Converged {
		t.Fatal("small instance must converge")
	}
	// The optimal integral cost is 7; the LP bound must not exceed it and
	// must be positive.
	if res.LowerBound <= 0 || res.LowerBound > 7+1e-7 {
		t.Fatalf("lower bound = %v, want in (0, 7]", res.LowerBound)
	}
}

func TestLowerBoundNeverExceedsOptimum(t *testing.T) {
	rng := stats.NewRNG(55)
	checked := 0
	for trial := 0; trial < 60; trial++ {
		bids, tg, k := randomInstance(rng)
		cfg := core.Config{T: tg, K: k}
		qual := allIdx(bids)
		cg := LowerBound(bids, qual, tg, cfg, Options{})
		opt := exact.SolveWDP(bids, qual, tg, cfg, exact.Options{})
		if cg.Feasible != opt.Feasible {
			// The colgen seed is the greedy solution; greedy feasibility
			// implies integral feasibility, so the only allowed mismatch
			// is colgen=infeasible (greedy failed) with exact=feasible.
			if cg.Feasible {
				t.Fatalf("trial %d: colgen feasible but exact infeasible", trial)
			}
			continue
		}
		if !cg.Feasible {
			continue
		}
		checked++
		if cg.LowerBound > opt.Cost+1e-5 {
			t.Fatalf("trial %d: colgen LB %v exceeds optimum %v", trial, cg.LowerBound, opt.Cost)
		}
		// The bound must also stay below (or at) the greedy cost.
		g := core.SolveWDP(bids, qual, tg, cfg)
		if cg.LowerBound > g.Cost+1e-5 {
			t.Fatalf("trial %d: colgen LB %v exceeds greedy cost %v", trial, cg.LowerBound, g.Cost)
		}
		// And it should be at least as strong as... nothing guaranteed
		// versus the greedy dual, but it must be positive.
		if cg.LowerBound <= 0 {
			t.Fatalf("trial %d: non-positive bound %v", trial, cg.LowerBound)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d feasible instances", checked)
	}
}

func TestLowerBoundTightOnConvergedLPs(t *testing.T) {
	// When colgen converges, the LP value it reports equals the bound.
	rng := stats.NewRNG(77)
	for trial := 0; trial < 40; trial++ {
		bids, tg, k := randomInstance(rng)
		res := LowerBound(bids, allIdx(bids), tg, core.Config{T: tg, K: k}, Options{})
		if !res.Feasible || !res.Converged {
			continue
		}
		if math.Abs(res.LowerBound-res.LPValue) > 1e-7 {
			t.Fatalf("trial %d: converged but LB %v ≠ LP %v", trial, res.LowerBound, res.LPValue)
		}
		if res.Columns <= 0 || res.Iterations <= 0 {
			t.Fatalf("trial %d: missing run stats %+v", trial, res)
		}
	}
}

func TestLowerBoundIterationCap(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 20; trial++ {
		bids, tg, k := randomInstance(rng)
		cfg := core.Config{T: tg, K: k}
		qual := allIdx(bids)
		capped := LowerBound(bids, qual, tg, cfg, Options{MaxIterations: 1})
		if !capped.Feasible {
			continue
		}
		opt := exact.SolveWDP(bids, qual, tg, cfg, exact.Options{})
		if !opt.Feasible {
			t.Fatalf("trial %d: exact infeasible but colgen seeded", trial)
		}
		// Even a capped run must report a valid bound.
		if capped.LowerBound > opt.Cost+1e-5 {
			t.Fatalf("trial %d: capped LB %v exceeds optimum %v", trial, capped.LowerBound, opt.Cost)
		}
	}
}

func TestLowerBoundInfeasible(t *testing.T) {
	bids := []core.Bid{{Client: 0, Price: 1, Theta: 0.4, Start: 1, End: 2, Rounds: 1}}
	if res := LowerBound(bids, allIdx(bids), 3, core.Config{T: 3, K: 1}, Options{}); res.Feasible {
		t.Fatal("uncoverable instance must be infeasible")
	}
	if res := LowerBound(nil, nil, 3, core.Config{T: 3, K: 1}, Options{}); res.Feasible {
		t.Fatal("empty instance must be infeasible")
	}
}

func TestApproximationCertificateAgainstColgen(t *testing.T) {
	// End-to-end Lemma 5 check at LP granularity: greedy cost ≤ τ·LB
	// with τ = H_{T̂_g}·ω from the greedy dual.
	rng := stats.NewRNG(2024)
	for trial := 0; trial < 40; trial++ {
		bids, tg, k := randomInstance(rng)
		cfg := core.Config{T: tg, K: k}
		qual := allIdx(bids)
		g := core.SolveWDP(bids, qual, tg, cfg)
		if !g.Feasible {
			continue
		}
		cg := LowerBound(bids, qual, tg, cfg, Options{})
		if !cg.Feasible {
			t.Fatalf("trial %d: greedy feasible but colgen not seeded", trial)
		}
		if g.Cost > g.Dual.RatioBound*cg.LowerBound+1e-5 {
			t.Fatalf("trial %d: cost %v exceeds τ·LB = %v·%v", trial, g.Cost, g.Dual.RatioBound, cg.LowerBound)
		}
	}
}

// TestLowerBoundOnGeneratedWorkloads runs the LP lower bound against the
// greedy A_FL solution on populations from the paper's workload
// generator (rather than the synthetic instances above): on every
// feasible (workload, T̂_g) pair, LB ≤ greedy cost, with a positive bound
// and the Lemma 5 certificate intact.
func TestLowerBoundOnGeneratedWorkloads(t *testing.T) {
	for _, seed := range []int64{11, 22, 33, 44} {
		p := workload.NewDefaultParams()
		p.Seed = seed
		p.Clients = 30
		p.BidsPerUser = 2
		p.T = 10
		p.K = 3
		bids, err := workload.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		cfg := p.Config()
		checked := 0
		for tg := 2; tg <= p.T; tg++ {
			qual := core.Qualified(bids, tg, cfg)
			g := core.SolveWDP(bids, qual, tg, cfg)
			if !g.Feasible {
				continue
			}
			cg := LowerBound(bids, qual, tg, cfg, Options{})
			if !cg.Feasible {
				t.Fatalf("seed %d tg %d: greedy feasible but colgen not seeded", seed, tg)
			}
			if cg.LowerBound <= 0 {
				t.Fatalf("seed %d tg %d: non-positive bound %v", seed, tg, cg.LowerBound)
			}
			if cg.LowerBound > g.Cost+1e-5 {
				t.Fatalf("seed %d tg %d: LB %v exceeds greedy cost %v", seed, tg, cg.LowerBound, g.Cost)
			}
			if g.Cost > g.Dual.RatioBound*cg.LowerBound+1e-5 {
				t.Fatalf("seed %d tg %d: cost %v breaks τ·LB = %v·%v",
					seed, tg, g.Cost, g.Dual.RatioBound, cg.LowerBound)
			}
			checked++
		}
		if checked == 0 {
			t.Fatalf("seed %d: no feasible T̂_g", seed)
		}
	}
}
