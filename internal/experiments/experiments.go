// Package experiments regenerates every figure of the paper's evaluation
// (§VII): performance ratios of A_winner and of all four algorithms
// (Fig. 3, Fig. 4), social-cost comparisons across client counts, bid
// counts and fixed T̂_g (Fig. 5, Fig. 6, Fig. 7), running time (Fig. 8),
// and payment versus claimed cost of winners (Fig. 9).
//
// Each runner returns a Figure holding a renderable chart, CSV-ready
// series, and measured headline numbers. Runners accept an Options with a
// Quick mode (small instances, used by unit tests and CI) and a full mode
// that matches the paper's scales.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/fedauction/afl/internal/baseline"
	"github.com/fedauction/afl/internal/colgen"
	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/plot"
)

// Options tunes experiment scale.
type Options struct {
	// Seed drives every workload draw; equal seeds reproduce figures
	// exactly.
	Seed int64
	// Trials averages each data point over this many seeded populations.
	// Zero means 3 (1 in Quick mode).
	Trials int
	// Quick shrinks instance sizes so the whole suite runs in seconds;
	// used by tests and the benchmark harness's -short mode.
	Quick bool
	// Workers bounds the pool the per-seed trial loops fan out over:
	// n > 0 uses n workers, anything else selects GOMAXPROCS. Every
	// trial derives its own seeded RNG and results are merged back in
	// trial order, so figures — and their CSV serializations — are
	// byte-identical for every worker count. Timed measurements (Fig. 8)
	// never run concurrently; only their workload generation does.
	Workers int
}

func (o Options) trials() int {
	if o.Trials > 0 {
		return o.Trials
	}
	if o.Quick {
		return 1
	}
	return 3
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs fn(0) … fn(n-1) over a bounded worker pool and returns
// when every call has finished. Iterations must be independent: each
// writes only its own result slot. With one worker (or n <= 1) the
// calls run inline in index order, which is also the deterministic
// order parallel runs must reproduce through slot-indexed merges.
func forEach(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Figure is one regenerated evaluation artifact.
type Figure struct {
	// ID is the paper's figure number, e.g. "fig5".
	ID string
	// Title describes what the paper's figure shows.
	Title string
	// Chart holds the measured series.
	Chart plot.Chart
	// Notes records headline observations (winners, reductions,
	// crossover points) for EXPERIMENTS.md.
	Notes []string
}

// Runner regenerates one figure.
type Runner func(Options) Figure

// Registry maps figure IDs to runners.
var Registry = map[string]Runner{
	"fig3":  Fig3,
	"fig4":  Fig4,
	"fig4j": Fig4J,
	"fig5":  Fig5,
	"fig6":  Fig6,
	"fig7":  Fig7,
	"fig8":  Fig8,
	"fig9":  Fig9,
}

// IDs returns the registry keys in order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// mechanisms returns the three baselines in the paper's reporting order.
func mechanisms() []baseline.Mechanism {
	return []baseline.Mechanism{baseline.Greedy{}, baseline.AOnline{}, baseline.FCFS{}}
}

// auctionLowerBound computes a valid lower bound on the overall optimal
// social cost: the minimum over feasible T̂_g of a per-WDP lower bound.
// The optimum commits to some T̂_g, so min_T̂g LB(T̂_g) ≤ OPT; every
// feasible T̂_g is tightened with column generation (the restricted
// master's size tracks generated columns, not the population, so this
// stays affordable even at I=1800), falling back to the greedy dual
// objective where column generation cannot improve it.
func auctionLowerBound(bids []core.Bid, cfg core.Config, res core.Result) float64 {
	// First pass: the instance-tight rescaled dual bound, available for
	// free from every solved WDP.
	type cand struct {
		tg int
		lb float64
	}
	var cands []cand
	for _, wdp := range res.WDPs {
		if wdp.Feasible {
			cands = append(cands, cand{tg: wdp.Tg, lb: wdp.Dual.Bound()})
		}
	}
	if len(cands) == 0 {
		return math.NaN()
	}
	// Second pass: column generation (bounded) tightens the weakest
	// bounds, which otherwise dominate the min. Refining any subset keeps
	// the min valid; iterate until the current minimum is no longer a
	// refinable candidate or the refinement budget is spent.
	sort.Slice(cands, func(a, b int) bool { return cands[a].lb < cands[b].lb })
	opts := colgen.Options{MaxIterations: 20, MaxColumnsPerIter: 120, MaxColumns: 1200}
	for i := range cands {
		qual := core.Qualified(bids, cands[i].tg, cfg)
		cg := colgen.LowerBound(bids, qual, cands[i].tg, cfg, opts)
		if cg.Feasible && cg.LowerBound > cands[i].lb {
			cands[i].lb = cg.LowerBound
		}
	}
	best := math.Inf(1)
	for _, c := range cands {
		best = math.Min(best, c.lb)
	}
	return best
}

// wdpLowerBound bounds one fixed-T̂_g WDP from below, preferring the
// column-generation bound and falling back to the greedy dual.
func wdpLowerBound(bids []core.Bid, qualified []int, tg int, cfg core.Config) float64 {
	cg := colgen.LowerBound(bids, qualified, tg, cfg, colgen.Options{MaxIterations: 80})
	if cg.Feasible {
		return cg.LowerBound
	}
	return math.NaN()
}

// note formats a headline observation.
func note(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// meanOf filters NaNs and averages.
func meanOf(xs []float64) float64 {
	var sum float64
	n := 0
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			sum += x
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
