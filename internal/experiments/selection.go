package experiments

import (
	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/fl"
	"github.com/fedauction/afl/internal/plot"
	"github.com/fedauction/afl/internal/stats"
)

// AblationSelection compares the auction-selected cohort against
// FedAvg-style random selection on an end-to-end training run. Random
// selection (the paper's §II strawman, as in FedAvg) picks K available
// clients per round and compensates each at its per-round price; the
// auction buys the same coverage with cost-aware winners. The chart plots
// accuracy per round for both schedules; the notes report the procurement
// cost of each.
func AblationSelection(opts Options) Figure {
	const (
		clients = 30
		dim     = 6
		tg      = 10
		k       = 4
	)
	fig := Figure{
		ID:    "selection",
		Title: "Auction-selected cohort vs random selection (accuracy per round)",
		Chart: plot.Chart{Title: "Ablation: client selection", XLabel: "global iteration", YLabel: "accuracy"},
	}
	rng := stats.NewRNG(opts.Seed + 555)
	full, _ := fl.GenerateSynthetic(rng, fl.SyntheticOptions{Samples: 2400, Dim: dim})
	shards := fl.PartitionNonIID(rng, full, clients, 0.5)

	var bids []core.Bid
	learners := make(map[int]*fl.Client, clients)
	for c := 0; c < clients; c++ {
		theta := rng.FloatRange(0.4, 0.7)
		start := rng.IntRange(1, 3)
		end := rng.IntRange(tg-3, tg)
		rounds := rng.IntRange(2, end-start)
		bids = append(bids, core.Bid{
			Client: c,
			Price:  rng.FloatRange(10, 50),
			Theta:  theta,
			Start:  start, End: end, Rounds: rounds,
			CompTime: rng.FloatRange(5, 10), CommTime: rng.FloatRange(10, 15),
		})
		learners[c] = &fl.Client{ID: c, Data: shards[c], Theta: theta, LR: 0.5}
	}
	cfg := core.Config{T: tg, K: k, TMax: 60}
	qual := core.Qualified(bids, tg, cfg)
	res := core.SolveWDP(bids, qual, tg, cfg)
	if !res.Feasible {
		fig.Notes = append(fig.Notes, note("auction infeasible"))
		return fig
	}
	auctionSchedule := make([][]int, tg)
	for _, w := range res.Winners {
		for _, t := range w.Slots {
			auctionSchedule[t-1] = append(auctionSchedule[t-1], w.Bid.Client)
		}
	}

	// Random selection: K clients per round among those whose window
	// covers the round and whose battery (c_ij of their first bid) is not
	// exhausted; each selected round is compensated at the client's
	// per-round price.
	randomSchedule := make([][]int, tg)
	var randomCost float64
	battery := make([]int, clients)
	for c := range battery {
		battery[c] = bids[c].Rounds
	}
	for t := 1; t <= tg; t++ {
		var avail []int
		for c := 0; c < clients; c++ {
			if battery[c] > 0 && t >= bids[c].Start && t <= bids[c].End {
				avail = append(avail, c)
			}
		}
		rng.Shuffle(len(avail), func(i, j int) { avail[i], avail[j] = avail[j], avail[i] })
		take := min(k, len(avail))
		for _, c := range avail[:take] {
			randomSchedule[t-1] = append(randomSchedule[t-1], c)
			battery[c]--
			randomCost += bids[c].Price / float64(bids[c].Rounds)
		}
	}

	trainCfg := fl.TrainConfig{Dim: dim, Rounds: tg, L2: 0.01, Seed: opts.Seed}
	aRun, err := fl.Train(learners, auctionSchedule, full, trainCfg)
	if err != nil {
		fig.Notes = append(fig.Notes, note("training error: %v", err))
		return fig
	}
	rRun, err := fl.Train(learners, randomSchedule, full, trainCfg)
	if err != nil {
		fig.Notes = append(fig.Notes, note("training error: %v", err))
		return fig
	}
	auctionSeries := plot.Series{Name: "A_FL cohort"}
	randomSeries := plot.Series{Name: "random cohort"}
	for _, h := range aRun.History {
		auctionSeries.Points = append(auctionSeries.Points, plot.Point{X: float64(h.Round), Y: h.Accuracy})
	}
	for _, h := range rRun.History {
		randomSeries.Points = append(randomSeries.Points, plot.Point{X: float64(h.Round), Y: h.Accuracy})
	}
	fig.Chart.Series = []plot.Series{auctionSeries, randomSeries}
	aFinal := aRun.History[len(aRun.History)-1].Accuracy
	rFinal := rRun.History[len(rRun.History)-1].Accuracy
	fig.Notes = append(fig.Notes,
		note("procurement cost: auction %.1f vs random %.1f (accuracy %.3f vs %.3f)",
			res.Cost, randomCost, aFinal, rFinal))
	return fig
}
