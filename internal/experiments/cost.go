package experiments

import (
	"math"

	"github.com/fedauction/afl/internal/baseline"
	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/plot"
	"github.com/fedauction/afl/internal/workload"
)

// costSweep runs all four algorithms over populations produced by vary and
// returns one series per algorithm.
func costSweep(opts Options, xs []int, vary func(p *workload.Params, x int)) ([]plot.Series, map[string]map[int]float64) {
	names := []string{"A_FL", "Greedy", "A_online", "FCFS"}
	acc := make(map[string]map[int][]float64)
	for _, n := range names {
		acc[n] = make(map[int][]float64)
	}
	for _, x := range xs {
		for trial := 0; trial < opts.trials(); trial++ {
			p := workload.NewDefaultParams()
			if opts.Quick {
				p.Clients = 120
				p.T = 15
				p.K = 4
			}
			vary(&p, x)
			p.Seed = opts.Seed + int64(trial)*104729 + int64(x)*13
			bids, err := workload.Generate(p)
			if err != nil {
				continue
			}
			cfg := p.Config()
			res, err := core.RunAuction(bids, cfg)
			if err != nil || !res.Feasible {
				continue
			}
			acc["A_FL"][x] = append(acc["A_FL"][x], res.Cost)
			for _, m := range mechanisms() {
				if out, ok := baseline.RunOverTg(m, bids, cfg); ok {
					acc[m.Name()][x] = append(acc[m.Name()][x], out.Cost)
				}
			}
		}
	}
	var series []plot.Series
	means := make(map[string]map[int]float64)
	for _, n := range names {
		s := plot.Series{Name: n}
		means[n] = make(map[int]float64)
		for _, x := range xs {
			if v := meanOf(acc[n][x]); !math.IsNaN(v) {
				s.Points = append(s.Points, plot.Point{X: float64(x), Y: v})
				means[n][x] = v
			}
		}
		series = append(series, s)
	}
	return series, means
}

// reductionNotes summarizes A_FL's cost reduction against each baseline,
// matching the paper's headline "10%, 40%, 75% versus Greedy, A_online,
// FCFS".
func reductionNotes(means map[string]map[int]float64, xs []int) []string {
	var notes []string
	for _, name := range []string{"Greedy", "A_online", "FCFS"} {
		var reds []float64
		for _, x := range xs {
			afl, ok1 := means["A_FL"][x]
			other, ok2 := means[name][x]
			if ok1 && ok2 && other > 0 {
				reds = append(reds, 1-afl/other)
			}
		}
		if len(reds) > 0 {
			best := 0.0
			for _, r := range reds {
				best = math.Max(best, r)
			}
			notes = append(notes, note("A_FL vs %s: mean reduction %.0f%%, max %.0f%%",
				name, 100*meanOf(reds), 100*best))
		}
	}
	return notes
}

// Fig5 reproduces "Social cost under different number of clients".
func Fig5(opts Options) Figure {
	is := []int{200, 600, 1000, 1400, 1800}
	if opts.Quick {
		is = []int{60, 120, 180}
	}
	series, means := costSweep(opts, is, func(p *workload.Params, x int) { p.Clients = x })
	fig := Figure{
		ID:    "fig5",
		Title: "Social cost vs number of clients I",
		Chart: plot.Chart{Title: "Fig. 5", XLabel: "clients I", YLabel: "social cost", Series: series},
	}
	fig.Notes = append(fig.Notes, reductionNotes(means, is)...)
	// The paper observes A_FL's cost decreasing slightly with I.
	if pts := series[0].Points; len(pts) >= 2 {
		fig.Notes = append(fig.Notes, note("A_FL cost trend over I: %.1f → %.1f", pts[0].Y, pts[len(pts)-1].Y))
	}
	return fig
}

// Fig6 reproduces "Social cost under different number of bids per client".
func Fig6(opts Options) Figure {
	js := []int{2, 4, 6, 8, 10}
	if opts.Quick {
		js = []int{2, 4, 6}
	}
	series, means := costSweep(opts, js, func(p *workload.Params, x int) { p.BidsPerUser = x })
	fig := Figure{
		ID:    "fig6",
		Title: "Social cost vs bids per client J",
		Chart: plot.Chart{Title: "Fig. 6", XLabel: "bids per client J", YLabel: "social cost", Series: series},
	}
	fig.Notes = append(fig.Notes, reductionNotes(means, js)...)
	if pts := series[0].Points; len(pts) >= 2 && pts[len(pts)-1].Y > pts[0].Y {
		fig.Notes = append(fig.Notes, note("cost increases with J as windows shrink (matches paper)"))
	}
	return fig
}

// Fig7 reproduces "Social cost at different fixed T̂_g": every algorithm
// solves the WDP at each T̂_g in [T_0, T], showing the balance point the
// paper reports (a U-shape with an interior minimum). With the §VII-A
// population the shape emerges from qualification scarcity: at small
// T̂_g few windows fit inside [1, T̂_g] and only low-θ (computation-
// heavy) bids qualify, so competition is weak and the cost per covered
// slot high; at large T̂_g there are K·T̂_g slots to fill and the
// (communication-dominated) volume takes over.
func Fig7(opts Options) Figure {
	p := workload.NewDefaultParams()
	p.Seed = opts.Seed + 7
	step := 2
	if opts.Quick {
		p.Clients = 150
		p.T = 20
		p.K = 4
		step = 2
	}
	fig := Figure{
		ID:    "fig7",
		Title: "Social cost at fixed T̂_g",
		Chart: plot.Chart{Title: "Fig. 7", XLabel: "T̂_g", YLabel: "social cost"},
	}
	bids, err := workload.Generate(p)
	if err != nil {
		fig.Notes = append(fig.Notes, note("workload error: %v", err))
		return fig
	}
	cfg := p.Config()
	t0 := core.MinTg(bids)
	algos := map[string]func(qual []int, tg int) (float64, bool){
		"A_FL": func(qual []int, tg int) (float64, bool) {
			res := core.SolveWDP(bids, qual, tg, cfg)
			return res.Cost, res.Feasible
		},
	}
	for _, m := range mechanisms() {
		m := m
		algos[m.Name()] = func(qual []int, tg int) (float64, bool) {
			out := m.Solve(bids, qual, tg, cfg)
			return out.Cost, out.Feasible
		}
	}
	order := []string{"A_FL", "Greedy", "A_online", "FCFS"}
	series := make(map[string]*plot.Series)
	for _, n := range order {
		series[n] = &plot.Series{Name: n}
	}
	bestTg, bestCost := 0, math.Inf(1)
	for tg := t0; tg <= cfg.T; tg += step {
		qual := core.Qualified(bids, tg, cfg)
		for _, n := range order {
			if cost, ok := algos[n](qual, tg); ok {
				series[n].Points = append(series[n].Points, plot.Point{X: float64(tg), Y: cost})
				if n == "A_FL" && cost < bestCost {
					bestCost, bestTg = cost, tg
				}
			}
		}
	}
	for _, n := range order {
		fig.Chart.Series = append(fig.Chart.Series, *series[n])
	}
	fig.Notes = append(fig.Notes,
		note("A_FL balance point at T̂_g=%d, cost %.1f (interior minimum; the paper reports T̂_g≈26 under its window distribution)", bestTg, bestCost))
	if pts := series["A_FL"].Points; len(pts) >= 2 {
		first, last := pts[0], pts[len(pts)-1]
		if bestCost < first.Y-1e-9 && bestCost < last.Y-1e-9 {
			fig.Notes = append(fig.Notes, note("U-shape confirmed: endpoints %.1f / %.1f above minimum %.1f", first.Y, last.Y, bestCost))
		}
	}
	return fig
}
