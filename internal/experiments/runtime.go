package experiments

import (
	"time"

	"github.com/fedauction/afl/internal/baseline"
	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/plot"
	"github.com/fedauction/afl/internal/workload"
)

// Fig8 reproduces "Running time": wall-clock time of A_FL and A_online
// across client counts, J = 10 as in the paper's largest input
// (I = 9000, J = 10). Absolute numbers depend on the host; the figure
// checks the ordering (A_FL faster) and the mild growth in I.
func Fig8(opts Options) Figure {
	is := []int{1000, 3000, 5000, 7000, 9000}
	reps := 3
	if opts.Quick {
		is = []int{200, 600, 1000}
		reps = 1
	}
	fig := Figure{
		ID:    "fig8",
		Title: "Running time vs number of clients (J=10)",
		Chart: plot.Chart{Title: "Fig. 8", XLabel: "clients I", YLabel: "runtime (ms)"},
	}
	afl := plot.Series{Name: "A_FL"}
	online := plot.Series{Name: "A_online"}
	var lastAFL, lastOnline float64
	// Generating the large populations (up to I=9000, J=10) dominates
	// the untimed part of this figure, so it fans out over the worker
	// pool. The timed reps below stay strictly serial: concurrent solves
	// would contend for cores and corrupt the wall-clock measurements
	// this figure exists to report.
	type input struct {
		bids []core.Bid
		cfg  core.Config
	}
	gen := make([]input, len(is))
	forEach(len(is), opts.workers(), func(i int) {
		p := workload.NewDefaultParams()
		p.Clients = is[i]
		p.BidsPerUser = 10
		p.Seed = opts.Seed + int64(is[i])
		if opts.Quick {
			p.T = 20
			p.K = 8
		}
		bids, err := workload.Generate(p)
		if err != nil {
			return
		}
		gen[i] = input{bids: bids, cfg: p.Config()}
	})
	for i, clientCount := range is {
		bids, cfg := gen[i].bids, gen[i].cfg
		if bids == nil {
			continue
		}
		var aflMS, onlineMS float64
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			if _, err := core.RunAuction(bids, cfg); err != nil {
				continue
			}
			aflMS += float64(time.Since(t0).Microseconds()) / 1000
			t1 := time.Now()
			baseline.RunOverTg(baseline.AOnline{}, bids, cfg)
			onlineMS += float64(time.Since(t1).Microseconds()) / 1000
		}
		lastAFL = aflMS / float64(reps)
		lastOnline = onlineMS / float64(reps)
		afl.Points = append(afl.Points, plot.Point{X: float64(clientCount), Y: lastAFL})
		online.Points = append(online.Points, plot.Point{X: float64(clientCount), Y: lastOnline})
	}
	fig.Chart.Series = []plot.Series{afl, online}
	fig.Notes = append(fig.Notes,
		note("largest instance: A_FL %.1f ms vs A_online %.1f ms (paper: A_FL < 60 s in MATLAB and faster than A_online)", lastAFL, lastOnline))
	return fig
}
