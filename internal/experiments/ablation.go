package experiments

import (
	"math"
	"sort"
	"time"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/plot"
	"github.com/fedauction/afl/internal/stats"
	"github.com/fedauction/afl/internal/workload"
)

// Ablations maps ablation IDs to runners. These quantify the design
// choices DESIGN.md calls out: the payment rule, the representative-
// schedule rule, the lazy-heap optimization, and the dropout-robustness
// extension (the paper's §VIII future-work scenario).
var Ablations = map[string]Runner{
	"payment-rules": AblationPaymentRules,
	"schedule-rule": AblationScheduleRule,
	"redundancy":    AblationRedundancy,
	"lazy-vs-naive": AblationLazyVsNaive,
	"selection":     AblationSelection,
	"timing":        AblationTiming,
	"vcg":           AblationVCG,
	"online":        AblationOnline,
	"diurnal":       AblationDiurnal,
}

// AblationIDs returns the ablation registry keys in order.
func AblationIDs() []string {
	ids := make([]string, 0, len(Ablations))
	for id := range Ablations {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// AblationPaymentRules compares the server's overpayment — total payment
// divided by total claimed cost — under the three payment rules across
// client counts. Algorithm 3 and the exact rule trade truthfulness
// guarantees against budget; pay-as-bid is the (non-truthful) floor at
// exactly 1.
func AblationPaymentRules(opts Options) Figure {
	is := []int{100, 200, 400}
	if opts.Quick {
		is = []int{60, 120}
	}
	fig := Figure{
		ID:    "payment-rules",
		Title: "Overpayment ratio (payments / social cost) by payment rule",
		Chart: plot.Chart{Title: "Ablation: payment rules", XLabel: "clients I", YLabel: "payments / cost"},
	}
	rules := []core.PaymentRule{core.RulePayBid, core.RuleCritical, core.RuleExactCritical}
	for _, rule := range rules {
		series := plot.Series{Name: rule.String()}
		for _, clientCount := range is {
			var ratios []float64
			for trial := 0; trial < opts.trials(); trial++ {
				p := workload.NewDefaultParams()
				p.Clients = clientCount
				p.T = 15
				p.K = 4
				p.Seed = opts.Seed + int64(trial)*31 + int64(clientCount)
				bids, err := workload.Generate(p)
				if err != nil {
					continue
				}
				cfg := p.Config()
				cfg.PaymentRule = rule
				cfg.ExcludeOwnBids = true
				cfg.ReservePrice = 10 * p.CostHi
				res, err := core.RunAuction(bids, cfg)
				if err != nil || !res.Feasible || res.Cost <= 0 {
					continue
				}
				ratios = append(ratios, res.TotalPayment()/res.Cost)
			}
			if r := meanOf(ratios); !math.IsNaN(r) {
				series.Points = append(series.Points, plot.Point{X: float64(clientCount), Y: r})
			}
		}
		fig.Chart.Series = append(fig.Chart.Series, series)
	}
	for _, s := range fig.Chart.Series {
		if len(s.Points) > 0 {
			var ys []float64
			for _, p := range s.Points {
				ys = append(ys, p.Y)
			}
			fig.Notes = append(fig.Notes, note("%s: mean overpayment ×%.3f", s.Name, meanOf(ys)))
		}
	}
	return fig
}

// AblationScheduleRule quantifies what the paper's least-covered
// representative schedule buys over naive earliest-fit: social cost and
// the fraction of WDPs the naive rule fails to cover at all.
func AblationScheduleRule(opts Options) Figure {
	tgs := []int{6, 10, 14, 18}
	clients := 200
	if opts.Quick {
		tgs = []int{6, 10}
		clients = 100
	}
	fig := Figure{
		ID:    "schedule-rule",
		Title: "Representative-schedule rule: least-covered (paper) vs earliest-fit",
		Chart: plot.Chart{Title: "Ablation: schedule rule", XLabel: "T̂_g", YLabel: "social cost"},
	}
	smart := plot.Series{Name: "least-covered"}
	naive := plot.Series{Name: "earliest-fit"}
	naiveFails, probes := 0, 0
	for _, tg := range tgs {
		var smartCosts, naiveCosts []float64
		for trial := 0; trial < opts.trials(); trial++ {
			p := workload.NewDefaultParams()
			p.Clients = clients
			p.T = tg
			p.K = 4
			p.Seed = opts.Seed + int64(trial)*17 + int64(tg)
			bids, err := workload.Generate(p)
			if err != nil {
				continue
			}
			cfg := p.Config()
			qual := core.Qualified(bids, tg, cfg)
			s := core.SolveWDP(bids, qual, tg, cfg)
			if !s.Feasible {
				continue
			}
			probes++
			smartCosts = append(smartCosts, s.Cost)
			nCfg := cfg
			nCfg.ScheduleRule = core.ScheduleEarliest
			n := core.SolveWDP(bids, qual, tg, nCfg)
			if !n.Feasible {
				naiveFails++
				continue
			}
			naiveCosts = append(naiveCosts, n.Cost)
		}
		if c := meanOf(smartCosts); !math.IsNaN(c) {
			smart.Points = append(smart.Points, plot.Point{X: float64(tg), Y: c})
		}
		if c := meanOf(naiveCosts); !math.IsNaN(c) {
			naive.Points = append(naive.Points, plot.Point{X: float64(tg), Y: c})
		}
	}
	fig.Chart.Series = []plot.Series{smart, naive}
	fig.Notes = append(fig.Notes,
		note("earliest-fit failed to cover %d/%d WDPs the paper's rule solved", naiveFails, probes))
	return fig
}

// AblationRedundancy explores the paper's future-work scenario: clients
// drop out mid-training. Buying redundancy — auctioning with coverage
// K+r instead of K — trades social cost for completion probability. For
// each dropout probability the Monte Carlo measures the fraction of
// global iterations that still receive at least K updates.
func AblationRedundancy(opts Options) Figure {
	dropouts := []float64{0, 0.1, 0.2, 0.3}
	redundancies := []int{0, 2, 4}
	const mcRuns = 200
	fig := Figure{
		ID:    "redundancy",
		Title: "Round-completion rate vs client dropout, by coverage redundancy",
		Chart: plot.Chart{Title: "Ablation: dropout redundancy", XLabel: "dropout probability", YLabel: "fraction of rounds with ≥K updates"},
	}
	p := workload.NewDefaultParams()
	p.Clients = 200
	p.T = 15
	p.K = 4
	p.Seed = opts.Seed + 77
	if opts.Quick {
		p.Clients = 120
	}
	bids, err := workload.Generate(p)
	if err != nil {
		fig.Notes = append(fig.Notes, note("workload error: %v", err))
		return fig
	}
	rng := stats.NewRNG(opts.Seed + 101)
	for _, r := range redundancies {
		cfg := p.Config()
		cfg.K += r
		res, err := core.RunAuction(bids, cfg)
		if err != nil || !res.Feasible {
			continue
		}
		// Per-round scheduled counts.
		scheduled := make([]int, res.Tg)
		for _, w := range res.Winners {
			for _, t := range w.Slots {
				scheduled[t-1]++
			}
		}
		series := plot.Series{Name: note("K+%d (cost %.0f)", r, res.Cost)}
		for _, dp := range dropouts {
			completed := 0
			total := 0
			for run := 0; run < mcRuns; run++ {
				for _, n := range scheduled {
					alive := 0
					for i := 0; i < n; i++ {
						if !rng.Bernoulli(dp) {
							alive++
						}
					}
					total++
					if alive >= p.K {
						completed++
					}
				}
			}
			series.Points = append(series.Points, plot.Point{X: dp, Y: float64(completed) / float64(total)})
		}
		fig.Chart.Series = append(fig.Chart.Series, series)
		fig.Notes = append(fig.Notes,
			note("redundancy %d: cost %.1f, completion at p=0.2: %.3f", r, res.Cost, seriesAt(series, 0.2)))
	}
	return fig
}

func seriesAt(s plot.Series, x float64) float64 {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y
		}
	}
	return math.NaN()
}

// AblationLazyVsNaive measures the lazy-heap A_winner against a direct
// transcription of Algorithm 2 that recomputes every representative
// schedule each round. Both produce identical selections (asserted in the
// core test suite); this ablation shows the asymptotic gap.
func AblationLazyVsNaive(opts Options) Figure {
	is := []int{200, 500, 1000, 2000}
	if opts.Quick {
		is = []int{100, 300}
	}
	fig := Figure{
		ID:    "lazy-vs-naive",
		Title: "A_winner implementations: lazy heap vs direct transcription",
		Chart: plot.Chart{Title: "Ablation: lazy vs naive A_winner", XLabel: "clients I", YLabel: "runtime (ms)"},
	}
	lazy := plot.Series{Name: "lazy heap"}
	naive := plot.Series{Name: "direct transcription"}
	for _, clientCount := range is {
		p := workload.NewDefaultParams()
		p.Clients = clientCount
		p.T = 20
		p.K = 8
		p.Seed = opts.Seed + int64(clientCount)
		bids, err := workload.Generate(p)
		if err != nil {
			continue
		}
		cfg := p.Config()
		qual := core.Qualified(bids, p.T, cfg)
		t0 := time.Now()
		fast := core.SolveWDP(bids, qual, p.T, cfg)
		lazyMS := float64(time.Since(t0).Microseconds()) / 1000
		t1 := time.Now()
		slowCost, feasible := naiveWDP(bids, qual, p.T, cfg.K)
		naiveMS := float64(time.Since(t1).Microseconds()) / 1000
		if !fast.Feasible || !feasible {
			continue
		}
		if math.Abs(fast.Cost-slowCost) > 1e-6 {
			fig.Notes = append(fig.Notes, note("WARNING: cost mismatch at I=%d: %.3f vs %.3f", clientCount, fast.Cost, slowCost))
		}
		lazy.Points = append(lazy.Points, plot.Point{X: float64(clientCount), Y: lazyMS})
		naive.Points = append(naive.Points, plot.Point{X: float64(clientCount), Y: naiveMS})
	}
	fig.Chart.Series = []plot.Series{lazy, naive}
	if n, m := len(lazy.Points), len(naive.Points); n > 0 && m > 0 {
		fig.Notes = append(fig.Notes, note("largest instance: lazy %.1f ms vs naive %.1f ms (×%.1f)",
			lazy.Points[n-1].Y, naive.Points[m-1].Y, naive.Points[m-1].Y/math.Max(lazy.Points[n-1].Y, 1e-9)))
	}
	return fig
}

// naiveWDP is a direct transcription of Algorithm 2 used only for the
// runtime ablation: every round it recomputes the representative schedule
// and marginal utility of every candidate from scratch.
func naiveWDP(bids []core.Bid, qualified []int, tg, k int) (float64, bool) {
	gamma := make([]int, tg+1)
	inC := make(map[int]bool, len(qualified))
	for _, idx := range qualified {
		inC[idx] = true
	}
	covered, cost := 0, 0.0
	repGain := func(idx int) (slots []int, gain int) {
		b := bids[idx]
		hi := b.End
		if hi > tg {
			hi = tg
		}
		cand := make([]int, 0, hi-b.Start+1)
		for t := b.Start; t <= hi; t++ {
			cand = append(cand, t)
		}
		sort.Slice(cand, func(x, y int) bool {
			if gamma[cand[x]] != gamma[cand[y]] {
				return gamma[cand[x]] < gamma[cand[y]]
			}
			return cand[x] < cand[y]
		})
		if len(cand) > b.Rounds {
			cand = cand[:b.Rounds]
		}
		for _, t := range cand {
			if gamma[t] < k {
				gain++
			}
		}
		return cand, gain
	}
	for covered < k*tg {
		best, bestGain := -1, 0
		bestKey := math.Inf(1)
		for _, idx := range qualified {
			if !inC[idx] {
				continue
			}
			_, gain := repGain(idx)
			if gain == 0 {
				continue
			}
			key := bids[idx].Price / float64(gain)
			if key < bestKey || (key == bestKey && idx < best) {
				bestKey, best, bestGain = key, idx, gain
			}
		}
		if best == -1 {
			return 0, false
		}
		_ = bestGain
		slots, _ := repGain(best)
		for _, sib := range qualified {
			if bids[sib].Client == bids[best].Client {
				delete(inC, sib)
			}
		}
		for _, t := range slots {
			if gamma[t] < k {
				covered++
			}
			gamma[t]++
		}
		cost += bids[best].Price
	}
	return cost, true
}
