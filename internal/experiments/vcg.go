package experiments

import (
	"math"
	"time"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/exact"
	"github.com/fedauction/afl/internal/plot"
	"github.com/fedauction/afl/internal/workload"
)

// AblationVCG compares A_FL against the VCG gold standard on instances
// small enough for exact branch-and-bound: VCG allocates optimally and
// pays externalities (exactly truthful); A_FL allocates near-optimally in
// polynomial time and pays Algorithm 3 critical values. The chart plots
// social costs; the notes report payment totals and runtimes — the
// polynomial-time-vs-optimality trade the paper's design occupies.
func AblationVCG(opts Options) Figure {
	// Below ~14 clients the §VII-A populations rarely cover 8 slots twice
	// (or leave essential winners with unbounded VCG payments), so the
	// sweep starts where both mechanisms are well-defined.
	sizes := []int{16, 22, 28, 34}
	if opts.Quick {
		sizes = []int{16, 20}
	}
	fig := Figure{
		ID:    "vcg",
		Title: "A_FL vs VCG (optimal, truthful, exponential-time) on small WDPs",
		Chart: plot.Chart{Title: "Ablation: VCG reference", XLabel: "clients I", YLabel: "social cost"},
	}
	aflCost := plot.Series{Name: "A_FL cost"}
	vcgCost := plot.Series{Name: "VCG (optimal) cost"}
	var aflPay, vcgPay, aflMS, vcgMS []float64
	for _, size := range sizes {
		var ac, vc []float64
		for trial := 0; trial < opts.trials(); trial++ {
			p := workload.NewDefaultParams()
			p.Clients = size
			p.BidsPerUser = 2
			p.T = 8
			p.K = 2
			p.Seed = opts.Seed + int64(trial)*97 + int64(size)
			bids, err := workload.Generate(p)
			if err != nil {
				continue
			}
			cfg := p.Config()
			tg := p.T
			qual := core.Qualified(bids, tg, cfg)
			t0 := time.Now()
			afl := core.SolveWDP(bids, qual, tg, cfg)
			aMS := float64(time.Since(t0).Microseconds()) / 1000
			if !afl.Feasible {
				continue
			}
			t1 := time.Now()
			vcg := exact.SolveVCG(bids, qual, tg, cfg, exact.Options{MaxNodes: 5000})
			vMS := float64(time.Since(t1).Microseconds()) / 1000
			if !vcg.Feasible || !vcg.Proven {
				continue
			}
			ac = append(ac, afl.Cost)
			vc = append(vc, vcg.Cost)
			aflPay = append(aflPay, afl.TotalPayment())
			if tp := vcg.TotalPayment(); !math.IsInf(tp, 0) {
				vcgPay = append(vcgPay, tp)
			}
			aflMS = append(aflMS, aMS)
			vcgMS = append(vcgMS, vMS)
		}
		if c := meanOf(ac); !math.IsNaN(c) {
			aflCost.Points = append(aflCost.Points, plot.Point{X: float64(size), Y: c})
		}
		if c := meanOf(vc); !math.IsNaN(c) {
			vcgCost.Points = append(vcgCost.Points, plot.Point{X: float64(size), Y: c})
		}
	}
	fig.Chart.Series = []plot.Series{aflCost, vcgCost}
	fig.Notes = append(fig.Notes,
		note("mean payments: A_FL %.1f vs VCG %.1f", meanOf(aflPay), meanOf(vcgPay)),
		note("mean runtime: A_FL %.2f ms vs VCG %.2f ms", meanOf(aflMS), meanOf(vcgMS)))
	return fig
}
