package experiments

import (
	"math"

	"github.com/fedauction/afl/internal/baseline"
	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/plot"
	"github.com/fedauction/afl/internal/workload"
)

// Fig3 reproduces "Performance ratio of A_winner": the ratio of the
// greedy WDP cost to the optimal (column-generation-bounded) WDP cost at
// different fixed numbers of global iterations T̂_g, one series per
// bids-per-client count J. Following §VII-B, every generated bid is
// qualified (θ and per-round times are drawn inside the feasible region
// for the swept T̂_g).
func Fig3(opts Options) Figure {
	tgs := []int{10, 20, 30, 40, 50}
	js := []int{2, 6, 10}
	clients, k := 100, 5
	if opts.Quick {
		tgs = []int{6, 10, 14}
		js = []int{2, 4}
		clients, k = 40, 3
	}
	fig := Figure{
		ID:    "fig3",
		Title: "Performance ratio of A_winner vs T̂_g (series: bids per client J)",
		Chart: plot.Chart{Title: "Fig. 3", XLabel: "T̂_g", YLabel: "performance ratio"},
	}
	// Every (J, T̂_g, trial) cell is an independent seeded solve, so the
	// whole grid fans out over the bounded pool; each job writes only its
	// own NaN-initialized slot and the aggregation below reads the slots
	// back in the original loop order, keeping the figure byte-identical
	// to a serial run for every worker count.
	trials := opts.trials()
	cells := make([]float64, len(js)*len(tgs)*trials)
	for i := range cells {
		cells[i] = math.NaN()
	}
	forEach(len(cells), opts.workers(), func(i int) {
		trial := i % trials
		tg := tgs[i/trials%len(tgs)]
		j := js[i/trials/len(tgs)]
		p := workload.NewDefaultParams()
		p.Clients = clients
		p.BidsPerUser = j
		p.T = tg
		p.K = k
		p.Seed = opts.Seed + int64(trial)*1009 + int64(tg)*31 + int64(j)
		// Keep every bid qualified at this T̂_g: θ below
		// 1−1/T̂_g and no per-round time limit.
		p.ThetaHi = math.Min(p.ThetaHi, 1-1/float64(tg)-1e-9)
		p.TMax = 0
		bids, err := workload.Generate(p)
		if err != nil {
			return
		}
		cfg := p.Config()
		qual := core.Qualified(bids, tg, cfg)
		res := core.SolveWDP(bids, qual, tg, cfg)
		if !res.Feasible {
			return
		}
		lb := wdpLowerBound(bids, qual, tg, cfg)
		if math.IsNaN(lb) || lb <= 0 {
			return
		}
		cells[i] = res.Cost / lb
	})
	worst := 0.0
	for ji, j := range js {
		series := plot.Series{Name: note("J=%d", j)}
		for ti := range tgs {
			base := (ji*len(tgs) + ti) * trials
			if r := meanOf(cells[base : base+trials]); !math.IsNaN(r) {
				series.Points = append(series.Points, plot.Point{X: float64(tgs[ti]), Y: r})
				worst = math.Max(worst, r)
			}
		}
		fig.Chart.Series = append(fig.Chart.Series, series)
	}
	fig.Notes = append(fig.Notes,
		note("worst observed A_winner ratio %.3f (paper: < 1.3)", worst))
	return fig
}

// Fig4 reproduces "Performance ratio of A_FL": the full-auction social
// cost of each algorithm divided by a lower bound on the overall optimum,
// across client counts I (J fixed to the default 5). Fig4J is the
// companion J sweep.
func Fig4(opts Options) Figure {
	is := []int{200, 600, 1000, 1400, 1800}
	if opts.Quick {
		is = []int{60, 120, 180}
	}
	return ratioSweep(opts, Figure{
		ID:    "fig4",
		Title: "Performance ratio of all algorithms vs number of clients I",
		Chart: plot.Chart{Title: "Fig. 4", XLabel: "clients I", YLabel: "performance ratio"},
	}, is, func(p *workload.Params, x int) { p.Clients = x })
}

// Fig4J reproduces the J half of Fig. 4: performance ratios across bids
// per client at the default I.
func Fig4J(opts Options) Figure {
	js := []int{2, 4, 6, 8, 10}
	if opts.Quick {
		js = []int{2, 4, 6}
	}
	return ratioSweep(opts, Figure{
		ID:    "fig4j",
		Title: "Performance ratio of all algorithms vs bids per client J",
		Chart: plot.Chart{Title: "Fig. 4 (J sweep)", XLabel: "bids per client J", YLabel: "performance ratio"},
	}, js, func(p *workload.Params, x int) {
		p.BidsPerUser = x
		if opts.Quick {
			p.Clients = 150
		} else {
			p.Clients = 600
		}
	})
}

// ratioSweep runs the four algorithms over populations produced by vary
// and reports cost / overall-optimum-lower-bound per point.
func ratioSweep(opts Options, fig Figure, xs []int, vary func(p *workload.Params, x int)) Figure {
	names := []string{"A_FL", "Greedy", "A_online", "FCFS"}
	acc := make(map[string]map[int][]float64)
	for _, n := range names {
		acc[n] = make(map[int][]float64)
	}
	// One job per (x, trial) cell: workload draw, the A_FL auction, the
	// shared lower bound and the three baselines, all on cell-local
	// state. Each job fills its own slot; the ordered merge below then
	// re-plays the serial append order exactly, so every worker count
	// produces the same accumulator contents and the same figure.
	trials := opts.trials()
	type cell struct {
		ratio map[string]float64 // per-algorithm ratio; nil when skipped
	}
	cells := make([]cell, len(xs)*trials)
	forEach(len(cells), opts.workers(), func(i int) {
		x := xs[i/trials]
		trial := i % trials
		p := workload.NewDefaultParams()
		if opts.Quick {
			p.T = 15
			p.K = 4
		}
		vary(&p, x)
		p.Seed = opts.Seed + int64(trial)*7919 + int64(x)
		bids, err := workload.Generate(p)
		if err != nil {
			return
		}
		cfg := p.Config()
		res, err := core.RunAuction(bids, cfg)
		if err != nil || !res.Feasible {
			return
		}
		lb := auctionLowerBound(bids, cfg, res)
		if math.IsNaN(lb) || lb <= 0 {
			return
		}
		ratio := map[string]float64{"A_FL": res.Cost / lb}
		for _, m := range mechanisms() {
			if out, ok := baseline.RunOverTg(m, bids, cfg); ok {
				ratio[m.Name()] = out.Cost / lb
			}
		}
		cells[i].ratio = ratio
	})
	for i, c := range cells {
		if c.ratio == nil {
			continue
		}
		x := xs[i/trials]
		for _, n := range names {
			if r, ok := c.ratio[n]; ok {
				acc[n][x] = append(acc[n][x], r)
			}
		}
	}
	var aflWorst float64
	for _, n := range names {
		series := plot.Series{Name: n}
		for _, x := range xs {
			if r := meanOf(acc[n][x]); !math.IsNaN(r) {
				series.Points = append(series.Points, plot.Point{X: float64(x), Y: r})
				if n == "A_FL" {
					aflWorst = math.Max(aflWorst, r)
				}
			}
		}
		fig.Chart.Series = append(fig.Chart.Series, series)
	}
	fig.Notes = append(fig.Notes,
		note("worst observed A_FL ratio %.3f (paper: smallest among all, < 1.3)", aflWorst))
	return fig
}
