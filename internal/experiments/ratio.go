package experiments

import (
	"math"

	"github.com/fedauction/afl/internal/baseline"
	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/plot"
	"github.com/fedauction/afl/internal/workload"
)

// Fig3 reproduces "Performance ratio of A_winner": the ratio of the
// greedy WDP cost to the optimal (column-generation-bounded) WDP cost at
// different fixed numbers of global iterations T̂_g, one series per
// bids-per-client count J. Following §VII-B, every generated bid is
// qualified (θ and per-round times are drawn inside the feasible region
// for the swept T̂_g).
func Fig3(opts Options) Figure {
	tgs := []int{10, 20, 30, 40, 50}
	js := []int{2, 6, 10}
	clients, k := 100, 5
	if opts.Quick {
		tgs = []int{6, 10, 14}
		js = []int{2, 4}
		clients, k = 40, 3
	}
	fig := Figure{
		ID:    "fig3",
		Title: "Performance ratio of A_winner vs T̂_g (series: bids per client J)",
		Chart: plot.Chart{Title: "Fig. 3", XLabel: "T̂_g", YLabel: "performance ratio"},
	}
	worst := 0.0
	for _, j := range js {
		series := plot.Series{Name: note("J=%d", j)}
		for _, tg := range tgs {
			var ratios []float64
			for trial := 0; trial < opts.trials(); trial++ {
				p := workload.NewDefaultParams()
				p.Clients = clients
				p.BidsPerUser = j
				p.T = tg
				p.K = k
				p.Seed = opts.Seed + int64(trial)*1009 + int64(tg)*31 + int64(j)
				// Keep every bid qualified at this T̂_g: θ below
				// 1−1/T̂_g and no per-round time limit.
				p.ThetaHi = math.Min(p.ThetaHi, 1-1/float64(tg)-1e-9)
				p.TMax = 0
				bids, err := workload.Generate(p)
				if err != nil {
					continue
				}
				cfg := p.Config()
				qual := core.Qualified(bids, tg, cfg)
				res := core.SolveWDP(bids, qual, tg, cfg)
				if !res.Feasible {
					continue
				}
				lb := wdpLowerBound(bids, qual, tg, cfg)
				if math.IsNaN(lb) || lb <= 0 {
					continue
				}
				ratios = append(ratios, res.Cost/lb)
			}
			if r := meanOf(ratios); !math.IsNaN(r) {
				series.Points = append(series.Points, plot.Point{X: float64(tg), Y: r})
				worst = math.Max(worst, r)
			}
		}
		fig.Chart.Series = append(fig.Chart.Series, series)
	}
	fig.Notes = append(fig.Notes,
		note("worst observed A_winner ratio %.3f (paper: < 1.3)", worst))
	return fig
}

// Fig4 reproduces "Performance ratio of A_FL": the full-auction social
// cost of each algorithm divided by a lower bound on the overall optimum,
// across client counts I (J fixed to the default 5). Fig4J is the
// companion J sweep.
func Fig4(opts Options) Figure {
	is := []int{200, 600, 1000, 1400, 1800}
	if opts.Quick {
		is = []int{60, 120, 180}
	}
	return ratioSweep(opts, Figure{
		ID:    "fig4",
		Title: "Performance ratio of all algorithms vs number of clients I",
		Chart: plot.Chart{Title: "Fig. 4", XLabel: "clients I", YLabel: "performance ratio"},
	}, is, func(p *workload.Params, x int) { p.Clients = x })
}

// Fig4J reproduces the J half of Fig. 4: performance ratios across bids
// per client at the default I.
func Fig4J(opts Options) Figure {
	js := []int{2, 4, 6, 8, 10}
	if opts.Quick {
		js = []int{2, 4, 6}
	}
	return ratioSweep(opts, Figure{
		ID:    "fig4j",
		Title: "Performance ratio of all algorithms vs bids per client J",
		Chart: plot.Chart{Title: "Fig. 4 (J sweep)", XLabel: "bids per client J", YLabel: "performance ratio"},
	}, js, func(p *workload.Params, x int) {
		p.BidsPerUser = x
		if opts.Quick {
			p.Clients = 150
		} else {
			p.Clients = 600
		}
	})
}

// ratioSweep runs the four algorithms over populations produced by vary
// and reports cost / overall-optimum-lower-bound per point.
func ratioSweep(opts Options, fig Figure, xs []int, vary func(p *workload.Params, x int)) Figure {
	names := []string{"A_FL", "Greedy", "A_online", "FCFS"}
	acc := make(map[string]map[int][]float64)
	for _, n := range names {
		acc[n] = make(map[int][]float64)
	}
	for _, x := range xs {
		for trial := 0; trial < opts.trials(); trial++ {
			p := workload.NewDefaultParams()
			if opts.Quick {
				p.T = 15
				p.K = 4
			}
			vary(&p, x)
			p.Seed = opts.Seed + int64(trial)*7919 + int64(x)
			bids, err := workload.Generate(p)
			if err != nil {
				continue
			}
			cfg := p.Config()
			res, err := core.RunAuction(bids, cfg)
			if err != nil || !res.Feasible {
				continue
			}
			lb := auctionLowerBound(bids, cfg, res)
			if math.IsNaN(lb) || lb <= 0 {
				continue
			}
			acc["A_FL"][x] = append(acc["A_FL"][x], res.Cost/lb)
			for _, m := range mechanisms() {
				if out, ok := baseline.RunOverTg(m, bids, cfg); ok {
					acc[m.Name()][x] = append(acc[m.Name()][x], out.Cost/lb)
				}
			}
		}
	}
	var aflWorst float64
	for _, n := range names {
		series := plot.Series{Name: n}
		for _, x := range xs {
			if r := meanOf(acc[n][x]); !math.IsNaN(r) {
				series.Points = append(series.Points, plot.Point{X: float64(x), Y: r})
				if n == "A_FL" {
					aflWorst = math.Max(aflWorst, r)
				}
			}
		}
		fig.Chart.Series = append(fig.Chart.Series, series)
	}
	fig.Notes = append(fig.Notes,
		note("worst observed A_FL ratio %.3f (paper: smallest among all, < 1.3)", aflWorst))
	return fig
}
