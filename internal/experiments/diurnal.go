package experiments

import (
	"math"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/plot"
	"github.com/fedauction/afl/internal/workload"
)

// AblationDiurnal studies availability skew: real phones are idle and
// charging in the evening, so windows cluster late in the horizon instead
// of uniformly (the §VII-A model). The sweep increases the diurnal peak
// and reports A_FL's social cost and the scarcity profile — how expensive
// the under-supplied early iterations become relative to the congested
// late ones.
func AblationDiurnal(opts Options) Figure {
	peaks := []float64{0, 2, 4, 8}
	fig := Figure{
		ID:    "diurnal",
		Title: "Availability skew: social cost vs diurnal peak strength",
		Chart: plot.Chart{Title: "Ablation: diurnal availability", XLabel: "diurnal peak strength", YLabel: "social cost"},
	}
	cost := plot.Series{Name: "A_FL cost"}
	winners := plot.Series{Name: "winners ×10"}
	for _, peak := range peaks {
		var costs, wins, early, late []float64
		for trial := 0; trial < opts.trials(); trial++ {
			p := workload.NewDefaultParams()
			p.Clients = 400
			p.T = 20
			p.K = 5
			p.DiurnalPeak = peak
			p.Seed = opts.Seed + int64(trial)*53 + int64(peak*100)
			if opts.Quick {
				p.Clients = 200
			}
			bids, err := workload.Generate(p)
			if err != nil {
				continue
			}
			cfg := p.Config()
			res, err := core.RunAuction(bids, cfg)
			if err != nil || !res.Feasible {
				continue
			}
			costs = append(costs, res.Cost)
			wins = append(wins, float64(len(res.Winners)))
			// Scarcity profile: how many winners serve the first vs the
			// last quarter of the chosen horizon.
			q := res.Tg / 4
			if q < 1 {
				q = 1
			}
			var e, l float64
			for _, w := range res.Winners {
				for _, t := range w.Slots {
					if t <= q {
						e++
					}
					if t > res.Tg-q {
						l++
					}
				}
			}
			early = append(early, e)
			late = append(late, l)
		}
		if c := meanOf(costs); !math.IsNaN(c) {
			cost.Points = append(cost.Points, plot.Point{X: peak, Y: c})
			winners.Points = append(winners.Points, plot.Point{X: peak, Y: 10 * meanOf(wins)})
			fig.Notes = append(fig.Notes,
				note("peak %.0f: cost %.1f, winners %.0f, early-quarter participations %.1f vs late-quarter %.1f",
					peak, c, meanOf(wins), meanOf(early), meanOf(late)))
		}
	}
	fig.Chart.Series = []plot.Series{cost, winners}
	return fig
}
