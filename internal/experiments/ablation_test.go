package experiments

import (
	"math"
	"testing"
)

func TestAblationRegistry(t *testing.T) {
	want := []string{"diurnal", "lazy-vs-naive", "online", "payment-rules", "redundancy", "schedule-rule", "selection", "timing", "vcg"}
	ids := AblationIDs()
	if len(ids) != len(want) {
		t.Fatalf("ablations = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ablations = %v, want %v", ids, want)
		}
	}
}

func TestAblationPaymentRules(t *testing.T) {
	fig := AblationPaymentRules(quickOpts())
	if len(fig.Chart.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Chart.Series))
	}
	ratios := map[string]float64{}
	for _, s := range fig.Chart.Series {
		if len(s.Points) == 0 {
			t.Fatalf("series %s empty", s.Name)
		}
		var sum float64
		for _, p := range s.Points {
			if p.Y < 1-1e-9 {
				t.Fatalf("%s overpayment %v below 1 (IR violated)", s.Name, p.Y)
			}
			sum += p.Y
		}
		ratios[s.Name] = sum / float64(len(s.Points))
	}
	// Pay-as-bid is exactly 1; truthful rules pay at least as much.
	if math.Abs(ratios["pay-bid"]-1) > 1e-9 {
		t.Fatalf("pay-bid overpayment %v, want exactly 1", ratios["pay-bid"])
	}
	if ratios["critical"] < ratios["pay-bid"]-1e-9 {
		t.Fatal("critical rule pays less than bids")
	}
}

func TestAblationScheduleRule(t *testing.T) {
	fig := AblationScheduleRule(quickOpts())
	if len(fig.Chart.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Chart.Series))
	}
	smart, naive := fig.Chart.Series[0], fig.Chart.Series[1]
	if smart.Name != "least-covered" || len(smart.Points) == 0 {
		t.Fatalf("smart series %+v", smart)
	}
	// Wherever both rules solved the WDP, the paper's rule must be
	// cheaper on average.
	if len(naive.Points) > 0 {
		var sSum, nSum float64
		n := 0
		for i := range naive.Points {
			for j := range smart.Points {
				if smart.Points[j].X == naive.Points[i].X {
					sSum += smart.Points[j].Y
					nSum += naive.Points[i].Y
					n++
				}
			}
		}
		if n > 0 && sSum > nSum+1e-9 {
			t.Fatalf("least-covered mean %.1f above earliest-fit %.1f", sSum/float64(n), nSum/float64(n))
		}
	}
	if len(fig.Notes) == 0 {
		t.Fatal("notes missing")
	}
}

func TestAblationRedundancy(t *testing.T) {
	fig := AblationRedundancy(quickOpts())
	if len(fig.Chart.Series) < 2 {
		t.Fatalf("series = %d", len(fig.Chart.Series))
	}
	for _, s := range fig.Chart.Series {
		if len(s.Points) != 4 {
			t.Fatalf("series %s has %d points", s.Name, len(s.Points))
		}
		// Completion at p=0 is exactly 1 and non-increasing in p.
		if s.Points[0].Y != 1 {
			t.Fatalf("series %s completion at p=0 is %v", s.Name, s.Points[0].Y)
		}
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y > s.Points[i-1].Y+0.02 {
				t.Fatalf("series %s completion increases with dropout: %v", s.Name, s.Points)
			}
		}
	}
	// More redundancy → better completion at the highest dropout.
	first := fig.Chart.Series[0]
	last := fig.Chart.Series[len(fig.Chart.Series)-1]
	if last.Points[3].Y < first.Points[3].Y-1e-9 {
		t.Fatalf("redundancy did not improve completion: %v vs %v", first.Points[3].Y, last.Points[3].Y)
	}
}

func TestAblationSelection(t *testing.T) {
	fig := AblationSelection(quickOpts())
	if len(fig.Chart.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Chart.Series))
	}
	for _, s := range fig.Chart.Series {
		if len(s.Points) == 0 {
			t.Fatalf("series %s empty", s.Name)
		}
		for _, p := range s.Points {
			if p.Y < 0 || p.Y > 1 {
				t.Fatalf("series %s accuracy %v outside [0,1]", s.Name, p.Y)
			}
		}
	}
	if len(fig.Notes) == 0 {
		t.Fatal("notes missing")
	}
}

func TestAblationTiming(t *testing.T) {
	fig := AblationTiming(quickOpts())
	if len(fig.Chart.Series) == 0 {
		t.Fatalf("no series: %v", fig.Notes)
	}
	for _, s := range fig.Chart.Series {
		if len(s.Points) == 0 {
			t.Fatalf("series %s empty", s.Name)
		}
		// Zero jitter never fails a round (the auction-time or
		// execution-time cutoff is consistent with nominal times only
		// when (6d) was enforced; without it stragglers exist even at
		// zero jitter, so only check the enforced series).
		if s.Name == "(6d) enforced (t_max=60)" && s.Points[0].Y != 0 {
			t.Fatalf("enforced (6d) fails rounds at zero jitter: %v", s.Points)
		}
		for _, p := range s.Points {
			if p.Y < 0 || p.Y > 1 {
				t.Fatalf("failure fraction %v outside [0,1]", p.Y)
			}
		}
	}
	if len(fig.Notes) == 0 {
		t.Fatal("notes missing")
	}
}

func TestAblationVCG(t *testing.T) {
	fig := AblationVCG(quickOpts())
	if len(fig.Chart.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Chart.Series))
	}
	aflCost, vcgCost := fig.Chart.Series[0], fig.Chart.Series[1]
	if len(aflCost.Points) == 0 || len(vcgCost.Points) == 0 {
		t.Fatal("empty series")
	}
	// VCG is optimal: its cost can never exceed A_FL's at the same size.
	for i := range vcgCost.Points {
		for j := range aflCost.Points {
			if aflCost.Points[j].X == vcgCost.Points[i].X &&
				vcgCost.Points[i].Y > aflCost.Points[j].Y+1e-6 {
				t.Fatalf("VCG cost %v above A_FL %v at I=%v",
					vcgCost.Points[i].Y, aflCost.Points[j].Y, vcgCost.Points[i].X)
			}
		}
	}
	if len(fig.Notes) < 2 {
		t.Fatal("notes missing")
	}
}

func TestAblationOnline(t *testing.T) {
	fig := AblationOnline(quickOpts())
	if len(fig.Chart.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Chart.Series))
	}
	cov := fig.Chart.Series[0]
	if len(cov.Points) == 0 {
		t.Fatal("empty coverage series")
	}
	for _, p := range cov.Points {
		if p.Y < 0 || p.Y > 1 {
			t.Fatalf("coverage %v outside [0,1]", p.Y)
		}
	}
	// Coverage is non-decreasing in the price ceiling.
	for i := 1; i < len(cov.Points); i++ {
		if cov.Points[i].Y < cov.Points[i-1].Y-1e-9 {
			t.Fatalf("coverage decreased with a higher ceiling: %v", cov.Points)
		}
	}
}

func TestAblationDiurnal(t *testing.T) {
	fig := AblationDiurnal(quickOpts())
	if len(fig.Chart.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Chart.Series))
	}
	cost := fig.Chart.Series[0]
	if len(cost.Points) == 0 {
		t.Fatal("empty cost series")
	}
	for _, p := range cost.Points {
		if p.Y <= 0 {
			t.Fatalf("non-positive cost %v", p.Y)
		}
	}
	if len(fig.Notes) == 0 {
		t.Fatal("notes missing")
	}
}

func TestAblationLazyVsNaive(t *testing.T) {
	fig := AblationLazyVsNaive(quickOpts())
	if len(fig.Chart.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Chart.Series))
	}
	for _, s := range fig.Chart.Series {
		if len(s.Points) == 0 {
			t.Fatalf("series %s empty", s.Name)
		}
	}
	for _, n := range fig.Notes {
		if len(n) >= 7 && n[:7] == "WARNING" {
			t.Fatalf("implementations disagree: %s", n)
		}
	}
}
