package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/fedauction/afl/internal/plot"
)

func quickOpts() Options { return Options{Seed: 1, Quick: true} }

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig3", "fig4", "fig4j", "fig5", "fig6", "fig7", "fig8", "fig9"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d figures: %v", len(ids), ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("IDs() = %v", ids)
		}
	}
	for _, id := range ids {
		if Registry[id] == nil {
			t.Fatalf("nil runner for %s", id)
		}
	}
}

func TestFig3QuickRatios(t *testing.T) {
	fig := Fig3(quickOpts())
	if fig.ID != "fig3" || len(fig.Chart.Series) != 2 {
		t.Fatalf("fig3 = %+v", fig)
	}
	for _, s := range fig.Chart.Series {
		if len(s.Points) == 0 {
			t.Fatalf("series %s empty", s.Name)
		}
		for _, p := range s.Points {
			// A ratio against a valid lower bound is ≥ 1 (tolerance for
			// LP numerics) and should be small per Lemma 5.
			if p.Y < 1-1e-6 || p.Y > 3 {
				t.Fatalf("series %s ratio %v at T̂_g=%v out of plausible range", s.Name, p.Y, p.X)
			}
		}
	}
	if len(fig.Notes) == 0 {
		t.Fatal("fig3 notes missing")
	}
}

func TestFig4QuickRatios(t *testing.T) {
	fig := Fig4(quickOpts())
	if len(fig.Chart.Series) != 4 {
		t.Fatalf("fig4 series = %d", len(fig.Chart.Series))
	}
	byName := map[string][]float64{}
	for _, s := range fig.Chart.Series {
		for _, p := range s.Points {
			if p.Y < 1-1e-6 {
				t.Fatalf("%s ratio %v below 1", s.Name, p.Y)
			}
			byName[s.Name] = append(byName[s.Name], p.Y)
		}
	}
	if len(byName["A_FL"]) == 0 {
		t.Fatal("A_FL series empty")
	}
	// A_FL should have the smallest mean ratio (the paper's headline).
	afl := mean(byName["A_FL"])
	for _, other := range []string{"Greedy", "A_online", "FCFS"} {
		if len(byName[other]) == 0 {
			continue
		}
		if afl > mean(byName[other])+1e-9 {
			t.Fatalf("A_FL mean ratio %.3f above %s %.3f", afl, other, mean(byName[other]))
		}
	}
}

func TestFig4JQuickRatios(t *testing.T) {
	fig := Fig4J(quickOpts())
	if len(fig.Chart.Series) != 4 {
		t.Fatalf("fig4j series = %d", len(fig.Chart.Series))
	}
	afl := fig.Chart.Series[0]
	if afl.Name != "A_FL" || len(afl.Points) == 0 {
		t.Fatalf("A_FL series %+v", afl)
	}
	for _, p := range afl.Points {
		if p.Y < 1-1e-6 {
			t.Fatalf("A_FL ratio %v below 1", p.Y)
		}
	}
}

func TestFig5QuickCosts(t *testing.T) {
	fig := Fig5(quickOpts())
	if len(fig.Chart.Series) != 4 {
		t.Fatalf("fig5 series = %d", len(fig.Chart.Series))
	}
	costs := map[string]float64{}
	for _, s := range fig.Chart.Series {
		if len(s.Points) == 0 {
			t.Fatalf("series %s empty", s.Name)
		}
		costs[s.Name] = mean(pointsY(s.Points))
	}
	for _, other := range []string{"Greedy", "A_online", "FCFS"} {
		if costs["A_FL"] > costs[other]+1e-9 {
			t.Fatalf("A_FL mean cost %.1f above %s %.1f", costs["A_FL"], other, costs[other])
		}
	}
	if len(fig.Notes) == 0 {
		t.Fatal("fig5 notes missing")
	}
}

func TestFig6QuickCosts(t *testing.T) {
	fig := Fig6(quickOpts())
	for _, s := range fig.Chart.Series {
		if len(s.Points) == 0 {
			t.Fatalf("series %s empty", s.Name)
		}
	}
	// The paper: costs increase with J. Check A_FL's first vs last point.
	afl := fig.Chart.Series[0]
	if afl.Name != "A_FL" {
		t.Fatalf("first series is %s", afl.Name)
	}
	if afl.Points[len(afl.Points)-1].Y < afl.Points[0].Y {
		t.Logf("A_FL cost not increasing with J at quick scale: %v", afl.Points)
	}
}

func TestFig7QuickShape(t *testing.T) {
	fig := Fig7(quickOpts())
	if len(fig.Chart.Series) != 4 {
		t.Fatalf("fig7 series = %d", len(fig.Chart.Series))
	}
	afl := fig.Chart.Series[0]
	if afl.Name != "A_FL" || len(afl.Points) < 3 {
		t.Fatalf("A_FL series too short: %+v", afl)
	}
	// A_FL generates the lowest cost at essentially every fixed T̂_g. Two
	// greedy orders can occasionally swap by a hair on one WDP, so allow
	// 5% pointwise slack and require A_FL to win on average.
	aflMean := mean(pointsY(afl.Points))
	for si, s := range fig.Chart.Series[1:] {
		for i, p := range s.Points {
			if i < len(afl.Points) && p.X == afl.Points[i].X && afl.Points[i].Y > 1.05*p.Y {
				t.Fatalf("A_FL cost %v above %s %v at T̂_g=%v (series %d)",
					afl.Points[i].Y, s.Name, p.Y, p.X, si)
			}
		}
		if m := mean(pointsY(s.Points)); aflMean > m+1e-9 {
			t.Fatalf("A_FL mean cost %.2f above %s mean %.2f", aflMean, s.Name, m)
		}
	}
	// The balance point should be interior (neither endpoint), showing
	// the computation/communication trade-off.
	minIdx := 0
	for i, p := range afl.Points {
		if p.Y < afl.Points[minIdx].Y {
			minIdx = i
		}
	}
	t.Logf("fig7 balance point at T̂_g=%v (index %d of %d)", afl.Points[minIdx].X, minIdx, len(afl.Points))
}

func TestFig8QuickRuntime(t *testing.T) {
	fig := Fig8(quickOpts())
	if len(fig.Chart.Series) != 2 {
		t.Fatalf("fig8 series = %d", len(fig.Chart.Series))
	}
	for _, s := range fig.Chart.Series {
		if len(s.Points) == 0 {
			t.Fatalf("series %s empty", s.Name)
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Fatalf("series %s has non-positive runtime %v", s.Name, p.Y)
			}
		}
	}
}

func TestFig9QuickIR(t *testing.T) {
	fig := Fig9(quickOpts())
	if len(fig.Chart.Series) != 2 {
		t.Fatalf("fig9 series = %d", len(fig.Chart.Series))
	}
	pay, cost := fig.Chart.Series[0], fig.Chart.Series[1]
	if pay.Name != "payment" || cost.Name != "claimed cost" {
		t.Fatalf("series order: %s, %s", pay.Name, cost.Name)
	}
	if len(pay.Points) == 0 || len(pay.Points) != len(cost.Points) {
		t.Fatalf("series lengths %d vs %d", len(pay.Points), len(cost.Points))
	}
	for i := range pay.Points {
		if pay.Points[i].Y < cost.Points[i].Y-1e-9 {
			t.Fatalf("winner %d paid %v below cost %v", i, pay.Points[i].Y, cost.Points[i].Y)
		}
	}
	for _, n := range fig.Notes {
		if strings.Contains(n, "violations") && !strings.Contains(n, " 0 individual-rationality") {
			t.Fatalf("IR violations reported: %s", n)
		}
	}
}

func TestFiguresRenderAndCSV(t *testing.T) {
	for _, id := range IDs() {
		fig := Registry[id](quickOpts())
		if out := fig.Chart.Render(60, 12); out == "" {
			t.Fatalf("%s: empty render", id)
		}
		csv := fig.Chart.CSV()
		if !strings.Contains(csv, "\n") {
			t.Fatalf("%s: empty CSV", id)
		}
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	return s / float64(len(xs))
}

func pointsY(ps []plot.Point) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = p.Y
	}
	return out
}
