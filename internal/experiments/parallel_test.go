package experiments

import (
	"sync/atomic"
	"testing"
)

// TestForEachCoversAllIndices checks the pool helper itself: every index
// runs exactly once for serial and parallel widths, including the
// degenerate shapes (zero jobs, more workers than jobs).
func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		for _, n := range []int{0, 1, 5, 64} {
			hits := make([]atomic.Int32, n)
			forEach(n, workers, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

// TestFiguresDeterministicAcrossWorkers is the determinism contract of
// the parallelized trial loops: for every figure whose trials now fan
// out over the pool (Fig3 and the two ratioSweep figures) plus the
// generation-parallel Fig8, a 4-worker run must produce byte-identical
// CSV output to a single-worker run — same points, same order, same
// formatting. This is what keeps the committed results/ goldens valid
// regardless of the -workers setting.
func TestFiguresDeterministicAcrossWorkers(t *testing.T) {
	for _, id := range []string{"fig3", "fig4", "fig4j"} {
		runner := Registry[id]
		serial := runner(Options{Seed: 3, Trials: 2, Quick: true, Workers: 1})
		parallel := runner(Options{Seed: 3, Trials: 2, Quick: true, Workers: 4})
		if s, p := serial.Chart.CSV(), parallel.Chart.CSV(); s != p {
			t.Errorf("%s: workers=4 CSV diverges from workers=1:\n--- serial ---\n%s--- parallel ---\n%s", id, s, p)
		}
	}
	// Fig8 reports wall-clock times, so its values cannot be compared;
	// its point set (which client counts generated successfully, in
	// which order) must still match.
	shape := func(workers int) []float64 {
		fig := Fig8(Options{Seed: 3, Quick: true, Workers: workers})
		var xs []float64
		for _, s := range fig.Chart.Series {
			for _, pt := range s.Points {
				xs = append(xs, pt.X)
			}
		}
		return xs
	}
	s, p := shape(1), shape(4)
	if len(s) != len(p) {
		t.Fatalf("fig8: workers=4 produced %d points, workers=1 %d", len(p), len(s))
	}
	for i := range s {
		if s[i] != p[i] {
			t.Fatalf("fig8: point %d at X=%v under workers=4, X=%v under workers=1", i, p[i], s[i])
		}
	}
}
