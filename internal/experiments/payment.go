package experiments

import (
	"sort"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/plot"
	"github.com/fedauction/afl/internal/workload"
)

// Fig9 reproduces "Payment versus claimed cost of winning bid": on a
// default instance, every winner's claimed cost and critical-value
// payment are plotted side by side (winners sorted by claimed cost).
// Individual rationality holds iff the payment series dominates the cost
// series pointwise.
func Fig9(opts Options) Figure {
	p := workload.NewDefaultParams()
	p.Seed = opts.Seed + 9
	if opts.Quick {
		p.Clients = 150
		p.T = 15
		p.K = 4
	}
	fig := Figure{
		ID:    "fig9",
		Title: "Payment vs claimed cost per winning bid",
		Chart: plot.Chart{Title: "Fig. 9", XLabel: "winner (sorted by claimed cost)", YLabel: "value"},
	}
	bids, err := workload.Generate(p)
	if err != nil {
		fig.Notes = append(fig.Notes, note("workload error: %v", err))
		return fig
	}
	cfg := p.Config()
	res, err := core.RunAuction(bids, cfg)
	if err != nil || !res.Feasible {
		fig.Notes = append(fig.Notes, note("auction infeasible"))
		return fig
	}
	winners := make([]core.Winner, len(res.Winners))
	copy(winners, res.Winners)
	sort.Slice(winners, func(a, b int) bool { return winners[a].Bid.Price < winners[b].Bid.Price })
	cost := plot.Series{Name: "claimed cost"}
	pay := plot.Series{Name: "payment"}
	violations := 0
	for i, w := range winners {
		cost.Points = append(cost.Points, plot.Point{X: float64(i + 1), Y: w.Bid.Price})
		pay.Points = append(pay.Points, plot.Point{X: float64(i + 1), Y: w.Payment})
		if w.Payment < w.Bid.Price-1e-9 {
			violations++
		}
	}
	fig.Chart.Series = []plot.Series{pay, cost}
	fig.Notes = append(fig.Notes,
		note("%d winners, %d individual-rationality violations (paper: none)", len(winners), violations))
	return fig
}
