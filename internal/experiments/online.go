package experiments

import (
	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/online"
	"github.com/fedauction/afl/internal/plot"
	"github.com/fedauction/afl/internal/workload"
)

// AblationOnline studies the faithful posted-price online mechanism (the
// paper's [17], no repair pass): how the price ceiling U steers the
// coverage/overpayment trade-off. A generous ceiling accepts almost
// everyone early (high coverage, high payments); a tight ceiling saves
// money but leaves iterations under-covered — exactly why the paper's
// offline A_FL wins on social cost in Fig. 5/6.
func AblationOnline(opts Options) Figure {
	multipliers := []float64{0.5, 1, 2, 4, 8}
	fig := Figure{
		ID:    "online",
		Title: "Posted-price online mechanism: coverage vs price ceiling",
		Chart: plot.Chart{Title: "Ablation: online posted prices", XLabel: "price ceiling multiplier (×max per-round price)", YLabel: "coverage"},
	}
	p := workload.NewDefaultParams()
	p.Clients = 300
	p.T = 15
	p.K = 4
	p.Seed = opts.Seed + 13
	if opts.Quick {
		p.Clients = 150
	}
	bids, err := workload.Generate(p)
	if err != nil {
		fig.Notes = append(fig.Notes, note("workload error: %v", err))
		return fig
	}
	cfg := p.Config()
	tg := p.T
	qual := core.Qualified(bids, tg, cfg)
	qualBids := make([]core.Bid, len(qual))
	for i, idx := range qual {
		qualBids[i] = bids[idx]
	}
	// Exogenous bounds from the population's per-round price range.
	baseLo, baseHi := 2.0, 50.0
	coverage := plot.Series{Name: "coverage"}
	overpay := plot.Series{Name: "payment / cost"}
	for _, m := range multipliers {
		res, err := online.Run(qualBids, online.ArrivalByStart(qualBids), online.Config{
			Tg: tg, K: p.K, L: baseLo, U: baseHi * m,
		})
		if err != nil {
			continue
		}
		coverage.Points = append(coverage.Points, plot.Point{X: m, Y: res.Coverage})
		ratio := 1.0
		if res.Cost > 0 {
			ratio = res.Payment / res.Cost
		}
		overpay.Points = append(overpay.Points, plot.Point{X: m, Y: ratio})
		fig.Notes = append(fig.Notes,
			note("U=×%.1f: coverage %.2f, winners %d, cost %.0f, payments %.0f",
				m, res.Coverage, len(res.Winners), res.Cost, res.Payment))
	}
	fig.Chart.Series = []plot.Series{coverage, overpay}
	return fig
}
