package experiments

import (
	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/plot"
	"github.com/fedauction/afl/internal/roundsim"
	"github.com/fedauction/afl/internal/workload"
)

// AblationTiming quantifies what constraint (6d) buys at execution time:
// the same population is auctioned once with the t_max qualification
// enforced and once without it, then both schedules are executed in the
// synchronous round simulator under increasing hardware jitter. The chart
// plots the fraction of failed rounds (fewer than K on-time updates);
// the notes report makespans and straggler rates.
func AblationTiming(opts Options) Figure {
	jitters := []float64{0, 0.1, 0.2, 0.3, 0.4}
	fig := Figure{
		ID:    "timing",
		Title: "Round failures vs hardware jitter, with and without constraint (6d)",
		Chart: plot.Chart{Title: "Ablation: t_max enforcement", XLabel: "timing jitter (σ of log round time)", YLabel: "failed-round fraction"},
	}
	p := workload.NewDefaultParams()
	p.Clients = 200
	p.T = 15
	p.K = 4
	p.Seed = opts.Seed + 31
	if opts.Quick {
		p.Clients = 120
	}
	// Slow the fleet down so t_max actually binds: computation up to 3×
	// the default range.
	p.CompHi = 25
	bids, err := workload.Generate(p)
	if err != nil {
		fig.Notes = append(fig.Notes, note("workload error: %v", err))
		return fig
	}
	cases := []struct {
		name string
		tmax float64
	}{
		{"(6d) enforced (t_max=60)", 60},
		{"(6d) disabled", 0},
	}
	for _, tc := range cases {
		cfg := p.Config()
		cfg.TMax = tc.tmax
		res, err := core.RunAuction(bids, cfg)
		if err != nil || !res.Feasible {
			fig.Notes = append(fig.Notes, note("%s: auction infeasible", tc.name))
			continue
		}
		series := plot.Series{Name: tc.name}
		var worstMakespan, worstStragglers float64
		for _, jitter := range jitters {
			sim, err := roundsim.Simulate(res, p.K, roundsim.Options{
				Jitter: jitter,
				TMax:   60, // execution cutoff is physical, always present
				Seed:   opts.Seed + int64(jitter*1000),
			})
			if err != nil {
				continue
			}
			frac := float64(sim.FailedRounds) / float64(len(sim.Rounds))
			series.Points = append(series.Points, plot.Point{X: jitter, Y: frac})
			worstMakespan = sim.Makespan
			worstStragglers = sim.StragglerRate
		}
		fig.Chart.Series = append(fig.Chart.Series, series)
		fig.Notes = append(fig.Notes,
			note("%s: cost %.1f, at max jitter makespan %.1f, straggler rate %.1f%%",
				tc.name, res.Cost, worstMakespan, 100*worstStragglers))
	}
	return fig
}
