package online

import (
	"math"
	"testing"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/stats"
)

func randomInstance(rng *stats.RNG) ([]core.Bid, int, int) {
	tg := rng.IntRange(3, 10)
	k := rng.IntRange(1, 3)
	clients := rng.IntRange(k+2, 16)
	var bids []core.Bid
	for c := 0; c < clients; c++ {
		start := rng.IntRange(1, tg)
		end := rng.IntRange(start, tg)
		bids = append(bids, core.Bid{
			Client: c,
			Price:  float64(rng.IntRange(1, 40)),
			Theta:  0.4,
			Start:  start,
			End:    end,
			Rounds: rng.IntRange(1, end-start+1),
		})
	}
	return bids, tg, k
}

func TestRunBasics(t *testing.T) {
	rng := stats.NewRNG(1)
	for trial := 0; trial < 60; trial++ {
		bids, tg, k := randomInstance(rng)
		res, err := Run(bids, ArrivalByStart(bids), Config{Tg: tg, K: k, L: 1, U: 40})
		if err != nil {
			t.Fatal(err)
		}
		if res.Coverage < 0 || res.Coverage > 1 {
			t.Fatalf("coverage %v", res.Coverage)
		}
		clients := map[int]bool{}
		cover := make([]int, tg+1)
		for _, w := range res.Winners {
			if clients[w.Bid.Client] {
				t.Fatal("client accepted twice")
			}
			clients[w.Bid.Client] = true
			if len(w.Slots) != w.Bid.Rounds {
				t.Fatalf("winner %v scheduled %d slots", w.Bid, len(w.Slots))
			}
			for _, s := range w.Slots {
				if s < w.Bid.Start || s > w.Bid.End || s > tg {
					t.Fatalf("slot %d outside window of %v", s, w.Bid)
				}
				cover[s]++
			}
			// Posted-price individual rationality.
			if w.Payment < w.Bid.Price-1e-9 {
				t.Fatalf("winner %v paid %v below cost", w.Bid, w.Payment)
			}
		}
		filled := 0
		for s := 1; s <= tg; s++ {
			filled += min(cover[s], k)
		}
		if filled != res.FilledSlots {
			t.Fatalf("filled slots %d, reported %d", filled, res.FilledSlots)
		}
		if res.Payment < res.Cost-1e-9 {
			t.Fatalf("payments %v below costs %v", res.Payment, res.Cost)
		}
	}
}

// TestPostedPriceTruthfulness asserts the defining property exactly: with
// exogenous price bounds and fixed arrival order, no unilateral price
// misreport by a (single-bid) client improves its utility.
func TestPostedPriceTruthfulness(t *testing.T) {
	rng := stats.NewRNG(2)
	for trial := 0; trial < 80; trial++ {
		bids, tg, k := randomInstance(rng)
		for i := range bids {
			bids[i].TrueCost = bids[i].Price
		}
		cfg := Config{Tg: tg, K: k, L: 1, U: 40}
		arrival := ArrivalByStart(bids)
		victim := rng.Intn(len(bids))
		truthful := utility(bids, arrival, victim, bids[victim].Price, cfg)
		for _, factor := range []float64{0.2, 0.6, 0.9, 1.1, 1.6, 3} {
			lying := utility(bids, arrival, victim, bids[victim].Price*factor, cfg)
			if lying > truthful+1e-9 {
				t.Fatalf("trial %d: posted-price mechanism manipulable: %v > %v at ×%v",
					trial, lying, truthful, factor)
			}
		}
	}
}

func utility(bids []core.Bid, arrival []int, victim int, claimed float64, cfg Config) float64 {
	mod := make([]core.Bid, len(bids))
	copy(mod, bids)
	mod[victim].Price = claimed
	res, err := Run(mod, arrival, cfg)
	if err != nil {
		return 0
	}
	for _, w := range res.Winners {
		if w.BidIndex == victim {
			return w.Payment - bids[victim].TrueCost
		}
	}
	return 0
}

func TestCoverageTradeoffVsOffline(t *testing.T) {
	// The posted-price mechanism sacrifices coverage; the offline greedy
	// covers fully whenever feasible. Confirm the direction of the trade
	// and that online coverage is still substantial on average.
	rng := stats.NewRNG(3)
	var coverage []float64
	for trial := 0; trial < 60; trial++ {
		bids, tg, k := randomInstance(rng)
		cfg := core.Config{T: tg, K: k}
		off := core.SolveWDP(bids, core.Qualified(bids, tg, cfg), tg, cfg)
		if !off.Feasible {
			continue
		}
		on, err := Run(bids, ArrivalByStart(bids), Config{Tg: tg, K: k, L: 1, U: 40})
		if err != nil {
			t.Fatal(err)
		}
		coverage = append(coverage, on.Coverage)
		if on.Coverage > 1+1e-9 {
			t.Fatalf("coverage above 1: %v", on.Coverage)
		}
	}
	if len(coverage) < 10 {
		t.Fatalf("only %d feasible instances", len(coverage))
	}
	var sum float64
	for _, c := range coverage {
		sum += c
	}
	if mean := sum / float64(len(coverage)); mean < 0.3 {
		t.Fatalf("online coverage unexpectedly poor: %.3f", mean)
	}
}

func TestRunErrors(t *testing.T) {
	bids := []core.Bid{{Client: 0, Price: 1, Theta: 0.4, Start: 1, End: 2, Rounds: 1}}
	if _, err := Run(bids, []int{0}, Config{Tg: 0, K: 1}); err == nil {
		t.Fatal("Tg=0 must error")
	}
	if _, err := Run(bids, []int{5}, Config{Tg: 2, K: 1}); err == nil {
		t.Fatal("bad arrival index must error")
	}
	// Empty arrival: zero coverage, no winners.
	res, err := Run(bids, nil, Config{Tg: 2, K: 1})
	if err != nil || len(res.Winners) != 0 || res.Coverage != 0 {
		t.Fatalf("empty arrival: %+v, %v", res, err)
	}
}

func TestAutoBounds(t *testing.T) {
	bids := []core.Bid{
		{Client: 0, Price: 10, Theta: 0.4, Start: 1, End: 4, Rounds: 2}, // 5/round
		{Client: 1, Price: 30, Theta: 0.4, Start: 1, End: 4, Rounds: 1}, // 30/round
	}
	lo, hi := autoBounds(bids, []int{0, 1})
	if lo != 5 || hi != 30 {
		t.Fatalf("auto bounds = (%v, %v), want (5, 30)", lo, hi)
	}
	lo, hi = autoBounds(nil, nil)
	if lo != 1 || hi != 1 {
		t.Fatalf("empty bounds = (%v, %v)", lo, hi)
	}
	// Auto bounds engage when Config.L/U are zero.
	res, err := Run(bids, []int{0, 1}, Config{Tg: 4, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Winners) == 0 {
		t.Fatal("auto-bound run accepted nobody")
	}
	if math.IsNaN(res.Coverage) {
		t.Fatal("NaN coverage")
	}
}

func TestPricesDecayWithFill(t *testing.T) {
	// Two identical single-slot bids: the first is paid U, the second a
	// strictly lower posted price.
	bids := []core.Bid{
		{Client: 0, Price: 1, Theta: 0.4, Start: 1, End: 1, Rounds: 1},
		{Client: 1, Price: 1, Theta: 0.4, Start: 1, End: 1, Rounds: 1},
		{Client: 2, Price: 1, Theta: 0.4, Start: 1, End: 1, Rounds: 1},
	}
	res, err := Run(bids, []int{0, 1, 2}, Config{Tg: 1, K: 2, L: 1, U: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Winners) < 2 {
		t.Fatalf("winners = %d", len(res.Winners))
	}
	if res.Winners[0].Payment != 16 {
		t.Fatalf("first payment %v, want U=16", res.Winners[0].Payment)
	}
	if res.Winners[1].Payment >= res.Winners[0].Payment {
		t.Fatalf("prices did not decay: %v then %v", res.Winners[0].Payment, res.Winners[1].Payment)
	}
}
