// Package online implements a posted-price online procurement mechanism
// in the style of Zhou et al., "An Efficient Cloud Market Mechanism for
// Computing Jobs with Soft Deadlines" (the paper's [17]), adapted to the
// FL setting: clients arrive one by one, the server maintains a marginal
// price for every global iteration that decays exponentially from U to L
// as the iteration fills,
//
//	p_t(γ) = U·(L/U)^(γ/K),
//
// and an arriving client is accepted — irrevocably — iff the posted
// prices of its best schedule cover its claimed cost. Winners are paid
// exactly those posted prices.
//
// Because the prices a client faces are fixed before it reports anything,
// the mechanism is a posted-price mechanism: reporting the true cost is a
// dominant strategy (the report only decides accept/decline at prices the
// client cannot influence), which the test suite asserts exactly. The
// price of this simplicity is coverage: unlike A_FL, the online mechanism
// may end with under-covered iterations; Result.Coverage reports the fill
// rate. baseline.AOnline wraps the same pricing with a repair pass so its
// social cost is comparable to the offline algorithms in the paper's
// figures; this package is the mechanism itself, incentives intact.
package online

import (
	"fmt"
	"math"
	"sort"

	"github.com/fedauction/afl/internal/core"
)

// Config parameterizes a run.
type Config struct {
	// Tg is the number of global iterations to fill.
	Tg int
	// K is the target number of participants per iteration.
	K int
	// L and U bound the marginal price per participation slot. Zero
	// values are auto-derived from the bid population's per-round prices
	// (min and max of b_ij/c_ij) — a convenience that technically makes
	// the posted prices depend on the reports; set L and U exogenously
	// (e.g. from market knowledge, as [17] assumes) for exact
	// truthfulness.
	L, U float64
}

// Result reports an online run.
type Result struct {
	// Winners lists accepted clients with schedules and posted-price
	// payments.
	Winners []core.Winner
	// Cost is Σ claimed costs of winners; Payment is Σ posted prices.
	Cost, Payment float64
	// FilledSlots counts participation slots covered (≤ K per iteration);
	// Coverage is FilledSlots / (K·Tg).
	FilledSlots int
	Coverage    float64
}

// Run executes the mechanism over the bids in the given arrival order
// (indices into bids; each client's bids must arrive together — the first
// acceptable one is taken, the rest are declined since only one bid per
// client can win). Bids never mutate.
func Run(bids []core.Bid, arrival []int, cfg Config) (Result, error) {
	if cfg.Tg < 1 || cfg.K < 1 {
		return Result{}, fmt.Errorf("online: bad config %+v", cfg)
	}
	lo, hi := cfg.L, cfg.U
	if lo <= 0 || hi <= 0 {
		alo, ahi := autoBounds(bids, arrival)
		if lo <= 0 {
			lo = alo
		}
		if hi <= 0 {
			hi = ahi
		}
	}
	if hi < lo {
		hi = lo
	}
	gamma := make([]int, cfg.Tg)
	price := func(t int) float64 {
		if gamma[t-1] >= cfg.K {
			return 0 // full iterations post price zero: no value in more
		}
		return hi * math.Pow(lo/hi, float64(gamma[t-1])/float64(cfg.K))
	}
	res := Result{}
	taken := make(map[int]bool)
	for _, idx := range arrival {
		if idx < 0 || idx >= len(bids) {
			return Result{}, fmt.Errorf("online: arrival index %d out of range", idx)
		}
		b := bids[idx]
		if taken[b.Client] {
			continue
		}
		slots, pay := bestSchedule(b, cfg.Tg, price)
		if slots == nil || pay < b.Price {
			continue // posted prices do not cover the claimed cost
		}
		taken[b.Client] = true
		for _, t := range slots {
			if gamma[t-1] < cfg.K {
				res.FilledSlots++
			}
			gamma[t-1]++
		}
		res.Winners = append(res.Winners, core.Winner{
			BidIndex: idx, Bid: b, Slots: slots, Payment: pay,
		})
		res.Cost += b.Price
		res.Payment += pay
	}
	res.Coverage = float64(res.FilledSlots) / float64(cfg.K*cfg.Tg)
	return res, nil
}

// ArrivalByStart orders bid indices by window start (the natural online
// arrival model for availability windows), ties by index.
func ArrivalByStart(bids []core.Bid) []int {
	order := make([]int, len(bids))
	for i := range bids {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return bids[order[a]].Start < bids[order[b]].Start
	})
	return order
}

// bestSchedule picks the c_ij iterations of the window with the highest
// posted prices; the schedule's total price is what the client would be
// paid.
func bestSchedule(b core.Bid, tg int, price func(int) float64) ([]int, float64) {
	hi := min(b.End, tg)
	if hi-b.Start+1 < b.Rounds {
		return nil, 0
	}
	cand := make([]int, 0, hi-b.Start+1)
	for t := b.Start; t <= hi; t++ {
		cand = append(cand, t)
	}
	sort.SliceStable(cand, func(x, y int) bool {
		return price(cand[x]) > price(cand[y])
	})
	cand = cand[:b.Rounds]
	var sum float64
	for _, t := range cand {
		sum += price(t)
	}
	sort.Ints(cand)
	return cand, sum
}

// autoBounds derives price bounds from the per-round prices of the bids.
func autoBounds(bids []core.Bid, arrival []int) (lo, hi float64) {
	lo, hi = math.Inf(1), 0
	for _, idx := range arrival {
		if idx < 0 || idx >= len(bids) {
			continue
		}
		pr := bids[idx].Price / float64(bids[idx].Rounds)
		lo = math.Min(lo, pr)
		hi = math.Max(hi, pr)
	}
	if math.IsInf(lo, 1) {
		lo, hi = 1, 1
	}
	if lo <= 0 {
		lo = 1e-9
	}
	return lo, hi
}
