package online

import (
	"testing"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/stats"
)

// misreportFactors is the probe grid the core truthfulness suite uses,
// densified around 1: under- and over-claims on both sides of the truth.
var misreportFactors = []float64{0.2, 0.6, 0.9, 0.97, 1.03, 1.1, 1.4, 1.6, 2.2, 3}

// TestExogenousBoundsResistEveryMisreport mirrors the core suite's
// exhaustive probe at unit level: with exogenous price bounds, every
// client in every instance is probed across the whole factor grid, and
// no misreport may ever beat truthtelling — the posted prices are fixed
// before the report, so the report only decides accept/decline.
func TestExogenousBoundsResistEveryMisreport(t *testing.T) {
	rng := stats.NewRNG(99)
	probes := 0
	for trial := 0; trial < 40; trial++ {
		bids, tg, k := randomInstance(rng)
		for i := range bids {
			bids[i].TrueCost = bids[i].Price
		}
		cfg := Config{Tg: tg, K: k, L: 1, U: 40}
		arrival := ArrivalByStart(bids)
		for victim := range bids {
			truthful := utility(bids, arrival, victim, bids[victim].Price, cfg)
			for _, factor := range misreportFactors {
				lying := utility(bids, arrival, victim, bids[victim].Price*factor, cfg)
				probes++
				if lying > truthful+1e-9 {
					t.Fatalf("trial %d victim %d: exogenous bounds manipulable: %v > %v at ×%v",
						trial, victim, lying, truthful, factor)
				}
			}
		}
	}
	if probes < 1000 {
		t.Fatalf("probe grid too thin: %d probes", probes)
	}
}

// TestAutoBoundsLeakageBaseline is the unit-level twin of the fleet's
// online_auto population: with L and U auto-derived from the reports,
// the posted prices are no longer report-independent, and a client can
// profit by misreporting (e.g. the price-setting client inflating U).
// The test pins this known leak as a baseline: the same probe grid that
// exogenous bounds survive MUST find gains here — if it stops finding
// any, the auto-bounds convenience has silently become truthful and the
// fleet's online_auto cell is measuring nothing.
func TestAutoBoundsLeakageBaseline(t *testing.T) {
	rng := stats.NewRNG(99)
	manipulable, probes := 0, 0
	maxGain := 0.0
	for trial := 0; trial < 40; trial++ {
		bids, tg, k := randomInstance(rng)
		for i := range bids {
			bids[i].TrueCost = bids[i].Price
		}
		cfg := Config{Tg: tg, K: k} // L = U = 0: bounds derived from reports
		arrival := ArrivalByStart(bids)
		for victim := range bids {
			truthful := utility(bids, arrival, victim, bids[victim].Price, cfg)
			for _, factor := range misreportFactors {
				lying := utility(bids, arrival, victim, bids[victim].Price*factor, cfg)
				probes++
				if gain := lying - truthful; gain > 1e-9 {
					manipulable++
					if gain > maxGain {
						maxGain = gain
					}
				}
			}
		}
	}
	if manipulable == 0 {
		t.Fatalf("auto-bounds found truthful across %d probes — baseline leak vanished; "+
			"either the bounds became exogenous or the probe grid broke", probes)
	}
	// The leak is material, not a rounding artifact: a price-setting
	// client inflating U moves its own payment by whole cost units.
	if maxGain < 0.5 {
		t.Fatalf("max auto-bounds gain %g suspiciously small over %d probes", maxGain, probes)
	}
	t.Logf("auto-bounds leakage baseline: %d/%d probes gain, max gain %.3f", manipulable, probes, maxGain)
}

// TestAutoBoundsPriceSetterGain pins the leak's textbook shape on a
// handcrafted instance: the client whose per-round claim sets the
// auto-derived ceiling U inflates that claim, the posted prices rise
// with it, and the same winning schedule now pays more — the mechanism
// hands the price-setter its own markup. Under exogenous bounds the
// identical deviation gains nothing.
func TestAutoBoundsPriceSetterGain(t *testing.T) {
	bids := []core.Bid{
		// Client 0 is the price-setter: per-round claim 10 = U.
		{Client: 0, Price: 20, TrueCost: 20, Theta: 0.4, Start: 1, End: 4, Rounds: 2},
		{Client: 1, Price: 4, TrueCost: 4, Theta: 0.4, Start: 1, End: 4, Rounds: 2},
		{Client: 2, Price: 4, TrueCost: 4, Theta: 0.4, Start: 1, End: 4, Rounds: 2},
	}
	cfg := Config{Tg: 4, K: 2}
	arrival := ArrivalByStart(bids)
	truthful := utility(bids, arrival, 0, bids[0].Price, cfg)
	var best float64
	for _, factor := range misreportFactors {
		if u := utility(bids, arrival, 0, bids[0].Price*factor, cfg); u > best {
			best = u
		}
	}
	if best <= truthful+1e-9 {
		t.Fatalf("price-setter cannot gain (%g vs truthful %g) — expected the auto-U leak", best, truthful)
	}
	// Exogenous bounds close the leak for the very same deviations.
	exo := Config{Tg: 4, K: 2, L: 2, U: 10}
	truthfulExo := utility(bids, arrival, 0, bids[0].Price, exo)
	for _, factor := range misreportFactors {
		if u := utility(bids, arrival, 0, bids[0].Price*factor, exo); u > truthfulExo+1e-9 {
			t.Fatalf("exogenous bounds leak at ×%v: %g > %g", factor, u, truthfulExo)
		}
	}
}
