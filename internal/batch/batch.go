// Package batch is the cross-auction throughput layer: it runs many
// independent A_FL auction instances over one clamped worker pool instead
// of letting each auction spin up its own goroutines and engine state.
//
// An FL services market serves one procurement auction per FL job, and
// jobs arrive continuously — so the unit of scaling is auctions per
// second, not the latency of one sweep. The naive way to run M auctions
// (M goroutines, each calling the facade) pays M full engine
// constructions, M uncoordinated goroutine fan-outs that oversubscribe
// each other, and has neither backpressure nor a cancellation story. This
// package replaces that with:
//
//   - a sharded work-stealing scheduler (Run): instances are dealt
//     round-robin onto per-worker shards; a worker drains its own shard
//     from the front and steals from the back of its neighbours' when
//     idle, so skewed instance costs cannot strand a worker;
//   - pooled engines: each instance is solved on a core.AcquireEngine
//     engine whose qualification arena is recycled through shape-keyed
//     pools, so steady-state batch solves allocate little beyond what
//     escapes into their Results;
//   - a bounded submission queue with backpressure (Service) for
//     long-lived serving processes, with mid-flight context cancellation
//     that surfaces partial results per instance and leaks no goroutines.
//
// Each instance's sweep runs sequentially (Workers: 1 inside the
// engine): across-instance parallelism already saturates the pool, and
// per-instance fan-out on top of it would oversubscribe the scheduler —
// the exact failure mode this package exists to remove. Results are
// bit-identical to running each instance through afl.Run serially.
package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fedauction/afl/internal/colgen"
	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/obs"
)

// Instance is one auction to solve: a sealed-bid population and its
// auction configuration. The batch layer never mutates either.
//
// The population may arrive in either layout. Set, when non-nil, is the
// columnar form (core.CompileBids) and takes precedence over Bids; it is
// the high-volume ingestion path — one compiled BidSet can back many
// instances, and consecutive instances of a worker that share one Set
// under an equivalent Cfg warm-start from the previous solve's engine
// (validation and the whole qualification rebuild are skipped, see
// core.ReacquireEngineSet). Bids is the row-oriented compat form,
// compiled on acquisition; the two yield bit-identical Outcomes.
type Instance struct {
	// Bids is the instance's sealed-bid population in row form. Ignored
	// when Set is non-nil.
	Bids []core.Bid
	// Set is the instance's population in columnar form; nil selects Bids.
	Set *core.BidSet
	// Cfg carries the instance's auction parameters (T, K, payment rule,
	// reserve, ...).
	Cfg core.Config
	// Solver selects this instance's sweep strategy (core.Solver); the
	// zero value is the exact enumeration, so historical instances are
	// untouched. Stride is the approximate tiers' base coarse stride
	// (zero selects the default).
	Solver core.Solver
	Stride int
}

// Outcome is the per-instance result of a batch run. Exactly one Outcome
// is produced per submitted instance, in all cases: solved, infeasible
// (Err matches core.ErrInfeasible, Result still carries the per-T̂_g
// diagnostics), rejected by validation, or abandoned by cancellation
// (Err matches core.ErrCanceled and the context cause).
type Outcome struct {
	// Index identifies the instance: its position in the slice passed to
	// Run, or the sequence number returned by Service.Submit.
	Index int
	// Result is the auction outcome; meaningful when Err is nil or
	// matches core.ErrInfeasible.
	Result core.Result
	// Err classifies failure using the package's sentinel surface.
	Err error
}

// Options configures a batch run or service.
type Options struct {
	// Workers is the width of the cross-auction pool: n > 0 uses n
	// workers, n <= 0 selects GOMAXPROCS. Run additionally clamps to the
	// instance count. Unlike a single sweep — where the zero value means
	// "inline" — a throughput layer defaults to using the machine.
	Workers int
	// Queue bounds the Service submission queue; Submit blocks (that is
	// the backpressure) once Queue instances are waiting. Zero selects
	// twice the worker count. Ignored by Run, whose instance slice is the
	// queue.
	Queue int
	// Observer receives the batch-level events (batch_started,
	// auction_queued, auction_dequeued, batch_done) and is passed through
	// to every instance's sweep, so per-auction phase events —
	// auction_started … auction_done, which carries the per-auction
	// latency — interleave with the batch stream. Nil disables
	// instrumentation entirely; non-nil observers must be safe for
	// concurrent use.
	Observer obs.Observer
	// Now supplies timestamps for latencies; nil selects time.Now.
	// Ignored when Observer is nil.
	Now func() time.Time
	// Rule, when non-nil, overrides every instance's Cfg.PaymentRule at
	// intake (Run's instance slice, Service submissions), leaving the
	// caller's Instances untouched. Nil solves each instance under its
	// own Cfg.
	Rule *core.PaymentRule
	// Solver, when non-nil, overrides every instance's Solver at intake,
	// with the same copy-on-override semantics as Rule.
	Solver *core.Solver
	// LP is the certifier hook handed to SolverLPRound instances. Nil
	// selects the column-generation default, so batch callers get a
	// working LP tier without wiring anything.
	LP core.LPCertifier
}

// certifier resolves the LP hook once per run or service: the configured
// hook, or the column-generation default.
func (o Options) certifier() core.LPCertifier {
	if o.LP != nil {
		return o.LP
	}
	return colgen.Certifier{}
}

// workers resolves the pool width for n runnable tasks.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return core.ClampWorkers(w, n)
}

// Run solves every instance over one shared worker pool and returns one
// Outcome per instance, index-aligned with instances. The only non-nil
// error is cancellation: partial work is kept — instances that finished
// before the cancellation keep their results, the rest carry an Err
// matching core.ErrCanceled — and the returned error matches both
// core.ErrCanceled and the context cause under errors.Is. No goroutine
// outlives the call.
func Run(ctx context.Context, instances []Instance, opts Options) ([]Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]Outcome, len(instances))
	for i := range out {
		out[i].Index = i
	}
	if len(instances) == 0 {
		return out, nil
	}
	if opts.Rule != nil || opts.Solver != nil {
		overridden := make([]Instance, len(instances))
		copy(overridden, instances)
		for i := range overridden {
			if opts.Rule != nil {
				overridden[i].Cfg.PaymentRule = *opts.Rule
			}
			if opts.Solver != nil {
				overridden[i].Solver = *opts.Solver
			}
		}
		instances = overridden
	}
	lpc := opts.certifier()
	workers := opts.workers(len(instances))
	obsv := opts.Observer
	now := opts.Now
	if obsv != nil && now == nil {
		now = time.Now
	}
	var start time.Time
	if obsv != nil {
		start = now()
		obsv.Observe(obs.Event{
			Kind: obs.EvBatchStarted, Round: workers, Client: -1, Bid: -1,
			Value: float64(len(instances)),
		})
		// Value is the queue depth after the enqueue (matching the
		// EvAuctionQueued contract and the Service path), so the gauge
		// climbs to len(instances) before the workers start draining.
		for i := range instances {
			obsv.Observe(obs.Event{
				Kind: obs.EvAuctionQueued, Client: -1, Bid: i,
				Value: float64(i + 1),
			})
		}
	}

	sched := newShards(len(instances), workers)
	var queued atomic.Int64
	queued.Store(int64(len(instances)))
	if workers == 1 {
		// Inline fast path: a single-width batch is a plain loop on the
		// calling goroutine. Spawning the one worker would hand every
		// solve to a fresh goroutine for no concurrency in return — on a
		// single-core runner that handoff costs several percent of
		// throughput. The event stream is identical: one worker drains
		// the lone shard in submission order.
		var eng *core.Engine
		for {
			idx, ok := sched.next(0)
			if !ok {
				break
			}
			depth := queued.Add(-1)
			if obsv != nil {
				obsv.Observe(obs.Event{
					Kind: obs.EvAuctionDequeued, Client: -1, Bid: idx,
					Value: float64(depth),
				})
			}
			out[idx], eng = solveOne(ctx, idx, instances[idx], obsv, now, lpc, eng)
		}
		eng.Release()
		return finishRun(ctx, out, len(instances), obsv, now, start)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			// The worker keeps its engine across instances: same-class
			// auctions rebind the held arena in place, so a GC flushing
			// the shape pools mid-batch never forces reconstruction.
			var eng *core.Engine
			defer func() { eng.Release() }()
			for {
				idx, ok := sched.next(self)
				if !ok {
					return
				}
				depth := queued.Add(-1)
				if obsv != nil {
					obsv.Observe(obs.Event{
						Kind: obs.EvAuctionDequeued, Client: -1, Bid: idx,
						Value: float64(depth),
					})
				}
				out[idx], eng = solveOne(ctx, idx, instances[idx], obsv, now, lpc, eng)
			}
		}(w)
	}
	wg.Wait()
	return finishRun(ctx, out, len(instances), obsv, now, start)
}

// finishRun emits the closing batch event and maps a canceled context to
// the sentinel error; shared by the inline and pooled paths of Run.
func finishRun(ctx context.Context, out []Outcome, n int, obsv obs.Observer, now func() time.Time, start time.Time) ([]Outcome, error) {
	err := ctx.Err()
	if obsv != nil {
		obsv.Observe(obs.Event{
			Kind: obs.EvBatchDone, Client: -1, Bid: -1,
			Value: float64(n), OK: err == nil, Dur: now().Sub(start),
		})
	}
	if err != nil {
		return out, canceledErr(ctx)
	}
	return out, nil
}

// solveOne runs a single instance on a pooled engine, rebinding the
// worker's held engine in place when the shape class matches (prev may be
// nil). The rebound engine is returned for the worker's next instance —
// nil after a validation error, so the next call falls back to a fresh
// acquisition. Cancellation is checked before touching the engine so a
// canceled batch drains its remaining instances in microseconds.
func solveOne(ctx context.Context, idx int, inst Instance, obsv obs.Observer, now func() time.Time, lpc core.LPCertifier, prev *core.Engine) (Outcome, *core.Engine) {
	o := Outcome{Index: idx}
	if ctx.Err() != nil {
		o.Err = canceledErr(ctx)
		return o, prev
	}
	var eng *core.Engine
	var err error
	if inst.Set != nil {
		eng, err = core.ReacquireEngineSet(prev, inst.Set, inst.Cfg)
	} else {
		eng, err = core.ReacquireEngine(prev, inst.Bids, inst.Cfg)
	}
	if err != nil {
		o.Err = err
		return o, nil
	}
	o.Result, o.Err = eng.RunCtx(ctx, core.RunOptions{
		Workers: 1, Observer: obsv, Now: now,
		Solver: inst.Solver, Stride: inst.Stride, LP: lpc,
	})
	return o, eng
}

// canceledErr mirrors core's convention: the returned error matches both
// core.ErrCanceled and the context cause under errors.Is.
func canceledErr(ctx context.Context) error {
	return fmt.Errorf("%w: %w", core.ErrCanceled, context.Cause(ctx))
}

// ErrClosed is returned by Service.Submit after Close.
var ErrClosed = errors.New("batch: service closed")

// shards is the work-stealing scheduler state of one Run call: one
// index deque per worker. Owners pop from the front of their own shard
// (preserving submission order under no contention); idle workers steal
// from the back of their neighbours', which keeps steals far from the
// owner's end and makes hand-tuned distribution unnecessary when
// instance costs are skewed.
type shards struct {
	qs []shard
}

type shard struct {
	mu   sync.Mutex
	jobs []int
	head int
}

func newShards(n, workers int) *shards {
	s := &shards{qs: make([]shard, workers)}
	per := (n + workers - 1) / workers
	for w := range s.qs {
		s.qs[w].jobs = make([]int, 0, per)
	}
	// Round-robin deal: shard w gets instances w, w+workers, ... so every
	// shard sees a representative mix of early and late submissions.
	for i := 0; i < n; i++ {
		q := &s.qs[i%workers]
		q.jobs = append(q.jobs, i)
	}
	return s
}

// next returns the next instance index for worker self: its own shard's
// front, or a steal from the back of another shard. ok is false only
// when every shard is empty, which (the instance set being fixed) means
// the batch is fully dealt.
func (s *shards) next(self int) (int, bool) {
	if idx, ok := s.qs[self].popFront(); ok {
		return idx, true
	}
	for off := 1; off < len(s.qs); off++ {
		victim := (self + off) % len(s.qs)
		if idx, ok := s.qs[victim].popBack(); ok {
			return idx, true
		}
	}
	return 0, false
}

func (q *shard) popFront() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= len(q.jobs) {
		return 0, false
	}
	idx := q.jobs[q.head]
	q.head++
	return idx, true
}

func (q *shard) popBack() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= len(q.jobs) {
		return 0, false
	}
	idx := q.jobs[len(q.jobs)-1]
	q.jobs = q.jobs[:len(q.jobs)-1]
	return idx, true
}
