package batch_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/fedauction/afl/internal/batch"
	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/obs"
	"github.com/fedauction/afl/internal/workload"
)

// batchInstances draws n differently-seeded auction instances.
func batchInstances(t testing.TB, n int, clients int) []batch.Instance {
	t.Helper()
	insts := make([]batch.Instance, n)
	for i := range insts {
		p := workload.NewDefaultParams()
		p.Seed = int64(1000 + i)
		p.Clients = clients
		p.T = 10 + i%5
		p.K = 3
		bids, err := workload.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		insts[i] = batch.Instance{Bids: bids, Cfg: p.Config()}
	}
	return insts
}

// serialOutcomes solves every instance on a fresh sequential engine — the
// reference the batch layer must match bit-for-bit.
func serialOutcomes(t testing.TB, insts []batch.Instance) []batch.Outcome {
	t.Helper()
	out := make([]batch.Outcome, len(insts))
	for i, inst := range insts {
		out[i].Index = i
		eng, err := core.NewEngine(inst.Bids, inst.Cfg)
		if err != nil {
			out[i].Err = err
			continue
		}
		out[i].Result, out[i].Err = eng.RunCtx(context.Background(), core.RunOptions{})
	}
	return out
}

// TestRunMatchesSerial is the differential test: for workers in {1, 4}
// every Outcome of a batch run — results, payments, per-T̂_g diagnostics
// — must be bit-identical to solving the same instance alone on a fresh
// sequential engine. This is the contract that makes the throughput
// layer transparent: batching is a scheduling decision, never an
// auction-semantics decision.
func TestRunMatchesSerial(t *testing.T) {
	insts := batchInstances(t, 12, 50)
	want := serialOutcomes(t, insts)
	for _, workers := range []int{1, 4} {
		got, err := batch.Run(context.Background(), insts, batch.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d outcomes for %d instances", workers, len(got), len(insts))
		}
		for i := range got {
			if got[i].Index != i {
				t.Fatalf("workers=%d: outcome %d carries index %d", workers, i, got[i].Index)
			}
			if (got[i].Err == nil) != (want[i].Err == nil) {
				t.Fatalf("workers=%d instance %d: batch err %v, serial err %v", workers, i, got[i].Err, want[i].Err)
			}
			if !reflect.DeepEqual(got[i].Result, want[i].Result) {
				t.Fatalf("workers=%d instance %d: batch result diverges from serial engine", workers, i)
			}
		}
	}
}

// TestRunEmptyAndValidation covers the degenerate edges: an empty batch
// returns an empty outcome slice and no error; an invalid instance fails
// alone with its validation error while its neighbours still solve.
func TestRunEmptyAndValidation(t *testing.T) {
	out, err := batch.Run(context.Background(), nil, batch.Options{})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %d outcomes", err, len(out))
	}

	insts := batchInstances(t, 3, 40)
	insts[1].Cfg.T = 0 // invalid horizon
	got, err := batch.Run(context.Background(), insts, batch.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got[1].Err == nil {
		t.Fatal("invalid instance solved without error")
	}
	for _, i := range []int{0, 2} {
		if got[i].Err != nil {
			t.Fatalf("instance %d poisoned by its invalid neighbour: %v", i, got[i].Err)
		}
		if !got[i].Result.Feasible {
			t.Fatalf("instance %d infeasible", i)
		}
	}
}

// TestRunCancellation cancels mid-batch from inside the observer (after
// the third auction completes) and checks the partial-results contract:
// finished instances keep their results, unstarted ones carry an error
// matching both core.ErrCanceled and the context cause, the batch error
// carries the same sentinel surface, and no goroutine outlives the call.
func TestRunCancellation(t *testing.T) {
	insts := batchInstances(t, 16, 50)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var mu sync.Mutex
		done := 0
		o := obs.ObserverFunc(func(e obs.Event) {
			if e.Kind == obs.EvAuctionDone {
				mu.Lock()
				done++
				if done == 3 {
					cancel()
				}
				mu.Unlock()
			}
		})
		before := runtime.NumGoroutine()
		out, err := batch.Run(ctx, insts, batch.Options{Workers: workers, Observer: o})
		if !errors.Is(err, core.ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want ErrCanceled ∧ context.Canceled", workers, err)
		}
		solved, canceled := 0, 0
		for i, oc := range out {
			switch {
			case oc.Err == nil:
				if !oc.Result.Feasible {
					t.Fatalf("workers=%d instance %d: nil error without a committed result", workers, i)
				}
				solved++
			case errors.Is(oc.Err, core.ErrCanceled):
				if !errors.Is(oc.Err, context.Canceled) {
					t.Fatalf("workers=%d instance %d: cancellation lost the context cause: %v", workers, i, oc.Err)
				}
				canceled++
			default:
				t.Fatalf("workers=%d instance %d: unexpected error %v", workers, i, oc.Err)
			}
		}
		if solved == 0 || canceled == 0 {
			t.Fatalf("workers=%d: %d solved / %d canceled — cancellation did not land mid-batch", workers, solved, canceled)
		}
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if g := runtime.NumGoroutine(); g > before {
			t.Fatalf("workers=%d: goroutine leak after cancellation: %d > %d", workers, g, before)
		}
		cancel()
	}
}

// TestRunGoldenBatchTrace pins the batch-level event stream of a
// single-worker run on a fixed two-instance batch and a deterministic
// clock. Per-auction events are filtered out so the golden covers
// exactly the batch layer's contract: one batch_started, per-instance
// queue/dequeue pairs with monotone depths, one batch_done with the
// fake-clock latency.
func TestRunGoldenBatchTrace(t *testing.T) {
	insts := batchInstances(t, 2, 30)
	tr := &obs.Trace{}
	filter := obs.ObserverFunc(func(e obs.Event) {
		switch e.Kind {
		case obs.EvBatchStarted, obs.EvAuctionQueued, obs.EvAuctionDequeued, obs.EvBatchDone:
			tr.Observe(e)
		}
	})
	base := time.Unix(0, 0).UTC()
	calls := 0
	now := func() time.Time {
		calls++
		return base.Add(time.Duration(calls) * time.Millisecond)
	}
	if _, err := batch.Run(context.Background(), insts, batch.Options{Workers: 1, Observer: filter, Now: now}); err != nil {
		t.Fatal(err)
	}
	want := `batch_started round=1 value=2 ok=false
auction_queued bid=0 value=1 ok=false
auction_queued bid=1 value=2 ok=false
auction_dequeued bid=0 value=1 ok=false
auction_dequeued bid=1 ok=false
batch_done value=2 ok=true dur=` + fmt.Sprint(time.Duration(calls-1)*time.Millisecond) + "\n"
	if got := tr.String(); got != want {
		t.Fatalf("batch trace mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestServiceDrain submits a stream of instances to a running Service,
// closes it, and checks the lifecycle contract: every submission yields
// exactly one Outcome carrying its Submit sequence number, results match
// the serial reference, Results is closed after the drain, Submit after
// Close returns ErrClosed, and the worker pool leaves no goroutine
// behind.
func TestServiceDrain(t *testing.T) {
	insts := batchInstances(t, 8, 40)
	want := serialOutcomes(t, insts)
	before := runtime.NumGoroutine()

	svc := batch.NewService(context.Background(), batch.Options{Workers: 2, Queue: 4})
	got := make([]batch.Outcome, len(insts))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for oc := range svc.Results() {
			got[oc.Index] = oc
		}
	}()
	for i, inst := range insts {
		idx, err := svc.Submit(context.Background(), inst)
		if err != nil {
			t.Errorf("submit %d: %v", i, err)
		}
		if idx != i {
			t.Errorf("submit %d: sequence number %d", i, idx)
		}
	}
	svc.Close()
	svc.Close() // idempotent
	wg.Wait()

	if _, err := svc.Submit(context.Background(), insts[0]); !errors.Is(err, batch.ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	for i := range got {
		if (got[i].Err == nil) != (want[i].Err == nil) {
			t.Fatalf("instance %d: service err %v, serial err %v", i, got[i].Err, want[i].Err)
		}
		if !reflect.DeepEqual(got[i].Result, want[i].Result) {
			t.Fatalf("instance %d: service result diverges from serial engine", i)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutine leak after Close: %d > %d", g, before)
	}
}

// TestServiceConcurrentSubmit hammers Submit from many producers at
// once — the documented use case, since backpressure only matters with
// concurrent submitters. Every submission must receive a distinct
// sequence number and exactly one Outcome must come back per number;
// under -race this also proves the sequence counter is not torn by
// producers holding the read lock simultaneously.
func TestServiceConcurrentSubmit(t *testing.T) {
	const producers, perProducer = 8, 6
	insts := batchInstances(t, 4, 30)
	svc := batch.NewService(context.Background(), batch.Options{Workers: 2, Queue: 4})

	type submission struct {
		idx int
		err error
	}
	subs := make(chan submission, producers*perProducer)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				idx, err := svc.Submit(context.Background(), insts[(p+i)%len(insts)])
				subs <- submission{idx: idx, err: err}
			}
		}(p)
	}
	done := make(chan struct{})
	received := make(map[int]int)
	go func() {
		defer close(done)
		for oc := range svc.Results() {
			received[oc.Index]++
		}
	}()
	wg.Wait()
	close(subs)
	svc.Close()
	<-done

	issued := make(map[int]bool)
	for s := range subs {
		if s.err != nil {
			t.Fatalf("concurrent submit: %v", s.err)
		}
		if issued[s.idx] {
			t.Fatalf("sequence number %d issued twice", s.idx)
		}
		issued[s.idx] = true
	}
	if len(issued) != producers*perProducer {
		t.Fatalf("%d distinct sequence numbers for %d submissions", len(issued), producers*perProducer)
	}
	for idx := 0; idx < producers*perProducer; idx++ {
		if !issued[idx] {
			t.Fatalf("sequence numbers not contiguous: %d never issued", idx)
		}
		if received[idx] != 1 {
			t.Fatalf("sequence number %d produced %d outcomes, want exactly 1", idx, received[idx])
		}
	}
}

// TestServiceBackpressure pins the bounded-queue contract: with one
// worker wedged mid-solve (the observer blocks on a gate) and the queue
// full, Submit must block until its context expires and then surface the
// cancellation sentinel. Releasing the gate drains the accepted
// submissions normally.
func TestServiceBackpressure(t *testing.T) {
	insts := batchInstances(t, 3, 30)
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	var once sync.Once
	o := obs.ObserverFunc(func(e obs.Event) {
		if e.Kind == obs.EvAuctionStarted {
			once.Do(func() {
				started <- struct{}{}
				<-gate // wedge the worker inside the first solve
			})
		}
	})
	svc := batch.NewService(context.Background(), batch.Options{Workers: 1, Queue: 1, Observer: o})
	defer svc.Close()

	if _, err := svc.Submit(context.Background(), insts[0]); err != nil {
		t.Fatal(err)
	}
	<-started // the worker holds instance 0 and is wedged
	if _, err := svc.Submit(context.Background(), insts[1]); err != nil {
		t.Fatal(err) // fills the queue
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := svc.Submit(ctx, insts[2]); !errors.Is(err, core.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("submit against a full queue: %v, want ErrCanceled ∧ DeadlineExceeded", err)
	}
	if d := svc.QueueDepth(); d != 1 {
		t.Fatalf("queue depth %d with one wedged worker and one queued instance", d)
	}

	close(gate)
	got := 0
	for oc := range svc.Results() {
		if oc.Err != nil {
			t.Fatalf("instance %d: %v", oc.Index, oc.Err)
		}
		got++
		if got == 2 {
			break
		}
	}
}

// TestServiceCancellation cancels the service's base context while
// instances are queued and checks that the workers stop, Close still
// closes Results, Submit reports the cancellation, and no goroutine
// survives.
func TestServiceCancellation(t *testing.T) {
	insts := batchInstances(t, 4, 30)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	svc := batch.NewService(ctx, batch.Options{Workers: 1, Queue: 8})
	for _, inst := range insts {
		if _, err := svc.Submit(context.Background(), inst); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	svc.Close()
	for range svc.Results() {
		// Drain whatever raced past the cancellation.
	}
	if _, err := svc.Submit(context.Background(), insts[0]); !errors.Is(err, batch.ErrClosed) {
		t.Fatalf("submit after canceled close: %v, want ErrClosed", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutine leak after canceled service: %d > %d", g, before)
	}
}

// TestServiceSubmitAfterCloseSentinel pins the shutdown edge: Submit and
// SubmitSeq after Close must fail with the exported ErrClosed sentinel —
// matchable via errors.Is and stable under repeated Close — and must not
// enqueue anything (Results stays empty).
func TestServiceSubmitAfterCloseSentinel(t *testing.T) {
	insts := batchInstances(t, 1, 30)
	svc := batch.NewService(context.Background(), batch.Options{Workers: 1, Queue: 1})
	svc.Close()

	idx, err := svc.Submit(context.Background(), insts[0])
	if !errors.Is(err, batch.ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if idx != 0 {
		t.Fatalf("failed Submit leaked sequence number %d", idx)
	}
	if err := svc.SubmitSeq(context.Background(), 7, insts[0]); !errors.Is(err, batch.ErrClosed) {
		t.Fatalf("SubmitSeq after Close = %v, want ErrClosed", err)
	}
	// The sentinel must also survive a second Close and a done context:
	// closed wins over cancellation, deterministically.
	svc.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Submit(ctx, insts[0]); !errors.Is(err, batch.ErrClosed) {
		t.Fatalf("Submit(canceled ctx) after Close = %v, want ErrClosed", err)
	}
	if _, ok := <-svc.Results(); ok {
		t.Fatal("rejected submission produced an outcome")
	}
}

// TestServiceSubmitCloseRace races many producers against Close under
// the race detector. The contract: every Submit either succeeds — and
// its sequence number yields exactly one Outcome — or fails with
// ErrClosed (never a panic, never a send on a closed channel); accepted
// sequence numbers are unique.
func TestServiceSubmitCloseRace(t *testing.T) {
	insts := batchInstances(t, 2, 20)
	for round := 0; round < 8; round++ {
		svc := batch.NewService(context.Background(), batch.Options{Workers: 2, Queue: 2})
		const producers = 6
		accepted := make([][]int, producers)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				<-start
				for i := 0; ; i++ {
					idx, err := svc.Submit(context.Background(), insts[(p+i)%len(insts)])
					if err != nil {
						if !errors.Is(err, batch.ErrClosed) {
							t.Errorf("producer %d: %v, want ErrClosed", p, err)
						}
						return
					}
					accepted[p] = append(accepted[p], idx)
				}
			}(p)
		}
		received := make(map[int]int)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for oc := range svc.Results() {
				received[oc.Index]++
			}
		}()
		close(start)
		runtime.Gosched()
		svc.Close() // races the producers' closed-check + send
		wg.Wait()
		<-done

		seen := make(map[int]bool)
		for p := range accepted {
			for _, idx := range accepted[p] {
				if seen[idx] {
					t.Fatalf("round %d: sequence number %d accepted twice", round, idx)
				}
				seen[idx] = true
				if received[idx] != 1 {
					t.Fatalf("round %d: accepted seq %d produced %d outcomes", round, idx, received[idx])
				}
			}
		}
		for idx, n := range received {
			if !seen[idx] {
				t.Fatalf("round %d: outcome for seq %d that no producer accepted (%d times)", round, idx, n)
			}
		}
	}
}

// TestServiceSubmitSeq covers the durability layer's recovery hook:
// replayed submissions keep their caller-chosen sequence numbers, the
// internal counter advances past the highest replayed seq so fresh
// Submit calls never collide, and results are bit-identical to the
// serial reference for the same instances.
func TestServiceSubmitSeq(t *testing.T) {
	insts := batchInstances(t, 5, 40)
	want := serialOutcomes(t, insts)

	svc := batch.NewService(context.Background(), batch.Options{Workers: 2, Queue: 8})
	got := make(map[int]batch.Outcome)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for oc := range svc.Results() {
			got[oc.Index] = oc
		}
	}()

	// Replay pending work under its original (gappy, out-of-order) seqs,
	// as a WAL recovery would after a crash that lost outcomes 1 and 3.
	for _, seq := range []int{3, 1} {
		if err := svc.SubmitSeq(context.Background(), seq, insts[seq]); err != nil {
			t.Fatal(err)
		}
	}
	// Fresh submissions must start past the replayed maximum.
	for _, i := range []int{4, 0, 2} {
		idx, err := svc.Submit(context.Background(), insts[i])
		if err != nil {
			t.Fatal(err)
		}
		if idx <= 3 {
			t.Fatalf("fresh Submit issued seq %d, colliding with replayed range", idx)
		}
		// Remap: outcome under idx solves insts[i].
		defer func(idx, i int) {
			if !reflect.DeepEqual(got[idx].Result, want[i].Result) {
				t.Errorf("fresh seq %d (instance %d) diverges from serial reference", idx, i)
			}
		}(idx, i)
	}
	svc.Close()
	<-done

	if len(got) != 5 {
		t.Fatalf("%d outcomes for 5 submissions", len(got))
	}
	for _, seq := range []int{1, 3} {
		oc, ok := got[seq]
		if !ok {
			t.Fatalf("replayed seq %d produced no outcome", seq)
		}
		if !reflect.DeepEqual(oc.Result, want[seq].Result) {
			t.Fatalf("replayed seq %d diverges from serial reference", seq)
		}
	}
}
