package batch

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/obs"
)

// Service is the long-lived form of the batch layer: a fixed worker pool
// consuming a bounded submission queue, built for serving daemons (the
// flplatform marketplace) where auction instances arrive continuously
// rather than as one batch.
//
//	svc := batch.NewService(ctx, batch.Options{Workers: 8, Queue: 64})
//	go func() { for o := range svc.Results() { ... } }()
//	idx, err := svc.Submit(ctx, inst) // blocks when 64 instances wait
//	...
//	svc.Close() // drain the queue, then close Results
//
// Backpressure is the queue bound: Submit blocks once Queue instances
// are waiting, so a traffic spike slows producers down instead of
// growing memory without limit. Canceling the base context stops the
// workers (in-flight sweeps are abandoned mid-solve, queued instances
// are dropped); Close performs a graceful drain. Either way no goroutine
// survives, and every instance that reached a worker produces exactly
// one Outcome on Results.
type Service struct {
	base   context.Context
	opts   Options
	lpc    core.LPCertifier
	jobs   chan serviceJob
	out    chan Outcome
	wg     sync.WaitGroup
	queued atomic.Int64
	start  time.Time
	solved atomic.Int64

	mu     sync.RWMutex
	closed bool
	next   atomic.Int64
}

type serviceJob struct {
	idx  int
	inst Instance
}

// NewService starts the worker pool. ctx bounds the service's whole
// lifetime: canceling it aborts queued and in-flight work. opts follows
// Run's conventions (Workers <= 0 selects GOMAXPROCS; Queue 0 selects
// twice the worker count).
func NewService(ctx context.Context, opts Options) *Service {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = opts.workers(1 << 30) // GOMAXPROCS, unclamped by a batch size
	}
	queue := opts.Queue
	if queue <= 0 {
		queue = 2 * workers
	}
	if opts.Observer != nil && opts.Now == nil {
		opts.Now = time.Now
	}
	s := &Service{
		base: ctx,
		opts: opts,
		lpc:  opts.certifier(),
		jobs: make(chan serviceJob, queue),
		out:  make(chan Outcome, queue+workers),
	}
	if opts.Observer != nil {
		s.start = opts.Now()
		opts.Observer.Observe(obs.Event{
			Kind: obs.EvBatchStarted, Round: workers, Client: -1, Bid: -1,
		})
	}
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *Service) worker() {
	defer s.wg.Done()
	// Held across submissions like a Run worker's engine: same-class
	// auctions rebind the arena in place. While the worker idles the
	// arena pins the last instance's bid slice; Close or cancellation
	// releases it.
	var eng *core.Engine
	defer func() { eng.Release() }()
	for {
		select {
		case <-s.base.Done():
			return
		case j, ok := <-s.jobs:
			if !ok {
				return
			}
			depth := s.queued.Add(-1)
			if o := s.opts.Observer; o != nil {
				o.Observe(obs.Event{
					Kind: obs.EvAuctionDequeued, Client: -1, Bid: j.idx,
					Value: float64(depth),
				})
			}
			var outcome Outcome
			outcome, eng = solveOne(s.base, j.idx, j.inst, s.opts.Observer, s.opts.Now, s.lpc, eng)
			s.solved.Add(1)
			select {
			case s.out <- outcome:
			case <-s.base.Done():
				// The consumer may be gone; dropping the outcome beats
				// leaking this worker forever.
				return
			}
		}
	}
}

// Submit enqueues one instance and returns its sequence number (the
// Index its Outcome will carry). It blocks while the queue is full —
// that is the backpressure contract — until ctx or the service's base
// context is done, or the service is closed, in which case the error
// reports which (ErrClosed, or an error matching core.ErrCanceled and
// the context cause). Submit is safe for concurrent use; sequence
// numbers are unique and increasing, but a Submit that fails after
// reserving its number (cancellation racing the enqueue) leaves a gap
// rather than reissuing it.
func (s *Service) Submit(ctx context.Context, inst Instance) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// The read lock covers the closed check and the send (so Close cannot
	// close s.jobs mid-Submit); the sequence counter is atomic because
	// concurrent producers all hold the read lock at once.
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	idx := int(s.next.Add(1) - 1)
	if err := s.enqueue(ctx, idx, inst); err != nil {
		return 0, err
	}
	return idx, nil
}

// SubmitSeq enqueues one instance under a caller-chosen sequence number
// — the recovery hook of the durability layer. A write-ahead log that
// assigned seq to a bid before a crash re-submits it under the same seq
// after restart, so the replayed Outcome carries the index the client
// was originally acknowledged with; the internal counter is advanced
// past seq so later Submit calls never collide with a replayed one.
//
// The caller owns sequence discipline: submitting the same seq twice in
// one service lifetime yields two Outcomes with equal Index. Blocking,
// cancellation and error semantics match Submit.
func (s *Service) SubmitSeq(ctx context.Context, seq int, inst Instance) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	for {
		cur := s.next.Load()
		if cur > int64(seq) || s.next.CompareAndSwap(cur, int64(seq)+1) {
			break
		}
	}
	return s.enqueue(ctx, seq, inst)
}

// enqueue performs the guarded send shared by Submit and SubmitSeq; the
// caller holds the read lock. The service-wide payment-rule and solver
// overrides are applied here, at intake, so every path into the pool
// sees them.
func (s *Service) enqueue(ctx context.Context, idx int, inst Instance) error {
	if s.opts.Rule != nil {
		inst.Cfg.PaymentRule = *s.opts.Rule
	}
	if s.opts.Solver != nil {
		inst.Solver = *s.opts.Solver
	}
	select {
	case s.jobs <- serviceJob{idx: idx, inst: inst}:
		depth := s.queued.Add(1)
		if o := s.opts.Observer; o != nil {
			o.Observe(obs.Event{
				Kind: obs.EvAuctionQueued, Client: -1, Bid: idx,
				Value: float64(depth),
			})
		}
		return nil
	case <-ctx.Done():
		return canceledErr(ctx)
	case <-s.base.Done():
		return canceledErr(s.base)
	}
}

// Results returns the outcome channel. It is closed by Close after the
// queue has drained (or immediately after the workers exit, when the
// base context was canceled); range over it to consume the service's
// output.
func (s *Service) Results() <-chan Outcome { return s.out }

// QueueDepth reports the number of submitted instances not yet picked up
// by a worker.
func (s *Service) QueueDepth() int { return int(s.queued.Load()) }

// Close stops accepting submissions, waits for the queue to drain and
// the workers to exit, then closes Results. It is idempotent. If the
// base context is already canceled the drain is immediate (workers exit
// without solving the backlog).
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	// No Submit is in flight past this point (Submit holds the read lock
	// for its whole send), so closing the queue is race-free.
	close(s.jobs)
	s.wg.Wait()
	if o := s.opts.Observer; o != nil {
		o.Observe(obs.Event{
			Kind: obs.EvBatchDone, Client: -1, Bid: -1,
			Value: float64(s.solved.Load()), OK: s.base.Err() == nil,
			Dur: s.opts.Now().Sub(s.start),
		})
	}
	close(s.out)
}
