// Package seedwdp is a frozen copy of the repository's original ("seed")
// A_FL solver: the map-based SolveWDP, the per-T̂_g re-qualification of
// RunAuction, and the seed payment rules, exactly as they shipped before
// the incremental WDP engine replaced them in internal/core.
//
// The package exists for two reasons and must NOT be used in production
// paths:
//
//   - it is the oracle of the differential-testing harness
//     (internal/core/differential_test.go), which asserts the incremental
//     engine returns bit-identical winners, schedules, payments and duals
//     on hundreds of seeded workloads;
//   - it is the baseline of cmd/benchcore, which records the seed-vs-
//     incremental speedup into BENCH_core.json.
//
// Because it is a differential oracle, this file is intentionally a
// verbatim transliteration of the seed algorithm — do not "improve" it.
// The only deliberate differences are cosmetic: it reuses the exported
// core types (Bid, Config, Dual), and its Winner exports the Covered/Phi
// dual bookkeeping that core keeps unexported.
package seedwdp

import (
	"container/heap"
	"math"
	"runtime"
	"sort"
	"sync"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/stats"
)

// Winner mirrors core.Winner with the dual bookkeeping exported.
type Winner struct {
	BidIndex int
	Bid      core.Bid
	Slots    []int
	Payment  float64
	AvgCost  float64

	// Covered lists the slots that were still available at selection time
	// (the paper's F_il) and Phi the recorded average cost φ(t,l).
	Covered []int
	Phi     float64
}

// WDPResult mirrors core.WDPResult.
type WDPResult struct {
	Tg       int
	Feasible bool
	Cost     float64
	Winners  []Winner
	Dual     core.Dual
	Rounds   int
}

// Result mirrors core.Result.
type Result struct {
	Feasible bool
	Tg       int
	Cost     float64
	Winners  []Winner
	Dual     core.Dual
	WDPs     []WDPResult
}

// localIters mirrors the unexported Config.localIters.
func localIters(c core.Config) core.LocalIterFunc {
	if c.LocalIters != nil {
		return c.LocalIters
	}
	return core.PaperLocalIters
}

// MinTg is the seed copy of core.MinTg.
func MinTg(bids []core.Bid) int {
	thetaMin := math.Inf(1)
	for _, b := range bids {
		thetaMin = math.Min(thetaMin, b.Theta)
	}
	if math.IsInf(thetaMin, 1) || thetaMin >= 1 {
		return 1
	}
	t0 := int(math.Ceil(1/(1-thetaMin) - 1e-9))
	if t0 < 1 {
		t0 = 1
	}
	return t0
}

// Qualified is the seed copy of core.Qualified: it re-filters the full
// bid slice for every T̂_g.
func Qualified(bids []core.Bid, tg int, cfg core.Config) []int {
	if tg < 1 {
		return nil
	}
	thetaMax := 1 - 1/float64(tg)
	li := localIters(cfg)
	const eps = 1e-12
	var out []int
	for idx, b := range bids {
		if b.Theta > thetaMax+eps {
			continue
		}
		if cfg.TMax > 0 && b.PerRoundTime(li) > cfg.TMax+eps {
			continue
		}
		if cfg.ReservePrice > 0 && b.Price > cfg.ReservePrice+eps {
			continue
		}
		if b.Start+b.Rounds-1 > tg {
			continue
		}
		out = append(out, idx)
	}
	return out
}

// RunAuction is the seed copy of core.RunAuction: an independent
// Qualified + SolveWDP from scratch per candidate T̂_g.
func RunAuction(bids []core.Bid, cfg core.Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := core.ValidateBids(bids, cfg.T, cfg.K); err != nil {
		return Result{}, err
	}
	res := Result{}
	t0 := MinTg(bids)
	for tg := t0; tg <= cfg.T; tg++ {
		qualified := Qualified(bids, tg, cfg)
		wdp := SolveWDP(bids, qualified, tg, cfg)
		res.WDPs = append(res.WDPs, wdp)
		if !wdp.Feasible {
			continue
		}
		if !res.Feasible || wdp.Cost < res.Cost {
			res.Feasible = true
			res.Tg = wdp.Tg
			res.Cost = wdp.Cost
			res.Winners = wdp.Winners
			res.Dual = wdp.Dual
		}
	}
	return res, nil
}

// RunAuctionConcurrent is the seed copy of core.RunAuctionConcurrent.
func RunAuctionConcurrent(bids []core.Bid, cfg core.Config, workers int) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := core.ValidateBids(bids, cfg.T, cfg.K); err != nil {
		return Result{}, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	t0 := MinTg(bids)
	n := cfg.T - t0 + 1
	if n <= 0 {
		return Result{}, nil
	}
	wdps := make([]WDPResult, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				tg := t0 + i
				wdps[i] = SolveWDP(bids, Qualified(bids, tg, cfg), tg, cfg)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	res := Result{WDPs: wdps}
	for _, wdp := range wdps {
		if !wdp.Feasible {
			continue
		}
		if !res.Feasible || wdp.Cost < res.Cost {
			res.Feasible = true
			res.Tg = wdp.Tg
			res.Cost = wdp.Cost
			res.Winners = wdp.Winners
			res.Dual = wdp.Dual
		}
	}
	return res, nil
}

// SolveWDP is the seed copy of core.SolveWDP: per-call maps, per-call
// heaps, fresh allocations throughout.
func SolveWDP(bids []core.Bid, qualified []int, tg int, cfg core.Config) WDPResult {
	res := WDPResult{Tg: tg}
	if tg < 1 || len(qualified) == 0 {
		return res
	}
	w := newWDPState(bids, qualified, tg, cfg)
	target := cfg.K * tg
	for w.covered < target {
		e, ok := w.popValid(&w.heapC, w.inC)
		if !ok {
			return res // not enough supply: this WDP is infeasible
		}
		w.selectWinner(e)
		res.Rounds++
	}
	res.Feasible = true
	res.Winners = w.winners
	for _, win := range w.winners {
		res.Cost += win.Bid.Price
	}
	res.Dual = w.finalizeDual(cfg.K)
	applyPaymentRule(bids, qualified, tg, cfg, &res)
	return res
}

// wdpState is the seed's mutable A_winner state (map-based membership,
// per-call heaps).
type wdpState struct {
	bids      []core.Bid
	qualified []int
	tg        int
	cfg       core.Config

	gamma      []int
	covered    int
	m          map[int]int
	slotBids   [][]int
	clientBids map[int][]int

	inC map[int]bool
	inG map[int]bool

	heapC entryHeap
	heapG entryHeap

	winners []Winner

	phiMax, phiMin, phiPrime []float64
	psiMax                   []float64
}

func newWDPState(bids []core.Bid, qualified []int, tg int, cfg core.Config) *wdpState {
	w := &wdpState{
		bids:       bids,
		qualified:  qualified,
		tg:         tg,
		cfg:        cfg,
		gamma:      make([]int, tg),
		m:          make(map[int]int, len(qualified)),
		slotBids:   make([][]int, tg),
		clientBids: make(map[int][]int),
		inC:        make(map[int]bool, len(qualified)),
		inG:        make(map[int]bool, len(qualified)),
		phiMax:     make([]float64, tg),
		phiMin:     make([]float64, tg),
		phiPrime:   make([]float64, tg),
		psiMax:     make([]float64, tg),
	}
	for t := 0; t < tg; t++ {
		w.phiMin[t] = math.Inf(1)
		w.phiPrime[t] = math.Inf(1)
	}
	for _, idx := range qualified {
		b := bids[idx]
		lo, hi := w.window(b)
		for t := lo; t <= hi; t++ {
			if b.Price > w.psiMax[t-1] {
				w.psiMax[t-1] = b.Price
			}
		}
		slo, shi := w.slotRange(b)
		w.m[idx] = shi - slo + 1
		for t := slo; t <= shi; t++ {
			w.slotBids[t-1] = append(w.slotBids[t-1], idx)
		}
		w.clientBids[b.Client] = append(w.clientBids[b.Client], idx)
		w.inC[idx] = true
		w.inG[idx] = true
		e := w.entryFor(idx)
		w.heapC = append(w.heapC, e)
		w.heapG = append(w.heapG, e)
	}
	heap.Init(&w.heapC)
	heap.Init(&w.heapG)
	return w
}

func (w *wdpState) window(b core.Bid) (lo, hi int) {
	hi = b.End
	if hi > w.tg {
		hi = w.tg
	}
	return b.Start, hi
}

func (w *wdpState) slotRange(b core.Bid) (lo, hi int) {
	lo, hi = w.window(b)
	if w.cfg.ScheduleRule == core.ScheduleEarliest && lo+b.Rounds-1 < hi {
		hi = lo + b.Rounds - 1
	}
	return lo, hi
}

func (w *wdpState) marginal(idx int) int {
	m := w.m[idx]
	if w.cfg.ScheduleRule == core.ScheduleEarliest {
		return m
	}
	if r := w.bids[idx].Rounds; r < m {
		return r
	}
	return m
}

func (w *wdpState) entryFor(idx int) heapEntry {
	r := w.marginal(idx)
	key := math.Inf(1)
	if r > 0 {
		key = w.bids[idx].Price / float64(r)
	}
	return heapEntry{key: key, bid: idx, mSnap: w.m[idx]}
}

func (w *wdpState) popValid(h *entryHeap, in map[int]bool) (heapEntry, bool) {
	for h.Len() > 0 {
		e := heap.Pop(h).(heapEntry)
		if !in[e.bid] {
			continue
		}
		if e.mSnap != w.m[e.bid] {
			if w.marginal(e.bid) > 0 {
				heap.Push(h, w.entryFor(e.bid))
			}
			continue
		}
		if w.marginal(e.bid) == 0 {
			continue
		}
		return e, true
	}
	return heapEntry{}, false
}

func (w *wdpState) peekValid(h *entryHeap, in map[int]bool, skip func(bid int) bool) (heapEntry, bool) {
	var kept []heapEntry
	var found heapEntry
	ok := false
	for h.Len() > 0 {
		e, popped := w.popValid(h, in)
		if !popped {
			break
		}
		if skip != nil && skip(e.bid) {
			kept = append(kept, e)
			continue
		}
		found, ok = e, true
		kept = append(kept, e)
		break
	}
	for _, e := range kept {
		heap.Push(h, e)
	}
	return found, ok
}

func (w *wdpState) representativeSchedule(idx int) (slots, available []int) {
	b := w.bids[idx]
	lo, hi := w.slotRange(b)
	cand := make([]int, 0, hi-lo+1)
	for t := lo; t <= hi; t++ {
		cand = append(cand, t)
	}
	if w.cfg.ScheduleRule != core.ScheduleEarliest {
		sort.Slice(cand, func(a, b int) bool {
			ga, gb := w.gamma[cand[a]-1], w.gamma[cand[b]-1]
			if ga != gb {
				return ga < gb
			}
			return cand[a] < cand[b]
		})
	}
	if len(cand) > b.Rounds {
		cand = cand[:b.Rounds]
	}
	slots = cand
	for _, t := range slots {
		if w.gamma[t-1] < w.cfg.K {
			available = append(available, t)
		}
	}
	sort.Ints(slots)
	return slots, available
}

func (w *wdpState) selectWinner(e heapEntry) {
	idx := e.bid
	b := w.bids[idx]
	slots, avail := w.representativeSchedule(idx)
	r := len(avail)
	phi := b.Price / float64(r)

	payment := w.criticalPayment(idx, b, r)

	for _, t := range avail {
		if phi > w.phiMax[t-1] {
			w.phiMax[t-1] = phi
		}
		if phi < w.phiMin[t-1] {
			w.phiMin[t-1] = phi
		}
	}

	if ge, ok := w.peekValid(&w.heapG, w.inG, nil); ok {
		gb := w.bids[ge.bid]
		gr := w.marginal(ge.bid)
		gphi := gb.Price / float64(gr)
		_, gavail := w.representativeSchedule(ge.bid)
		for _, t := range gavail {
			if gphi < w.phiPrime[t-1] {
				w.phiPrime[t-1] = gphi
			}
		}
	}

	for _, sib := range w.clientBids[b.Client] {
		delete(w.inC, sib)
	}
	delete(w.inG, idx)

	w.winners = append(w.winners, Winner{
		BidIndex: idx,
		Bid:      b,
		Slots:    slots,
		Payment:  payment,
		AvgCost:  phi,
		Covered:  avail,
		Phi:      phi,
	})

	for _, t := range slots {
		if w.gamma[t-1] < w.cfg.K {
			w.covered++
		}
		w.gamma[t-1]++
		if w.gamma[t-1] == w.cfg.K {
			for _, other := range w.slotBids[t-1] {
				w.m[other]--
			}
		}
	}
}

func (w *wdpState) criticalPayment(idx int, b core.Bid, r int) float64 {
	skip := func(other int) bool {
		if other == idx {
			return true
		}
		return w.cfg.ExcludeOwnBids && w.bids[other].Client == b.Client
	}
	if ce, ok := w.peekValid(&w.heapC, w.inC, skip); ok {
		critAvg := w.bids[ce.bid].Price / float64(w.marginal(ce.bid))
		return float64(r) * critAvg
	}
	return b.Price
}

func (w *wdpState) finalizeDual(k int) core.Dual {
	tg := w.tg
	d := core.Dual{
		Tg:         tg,
		G:          make([]float64, tg),
		Lambda:     make(map[int]float64, len(w.winners)),
		HarmonicTg: stats.Harmonic(tg),
	}
	for t := 0; t < tg; t++ {
		psiMin := math.Min(w.phiMin[t], w.phiPrime[t])
		if math.IsInf(psiMin, 1) || psiMin <= 0 {
			continue
		}
		if ratio := w.psiMax[t] / psiMin; ratio > d.Omega {
			d.Omega = ratio
		}
	}
	if d.Omega < 1 {
		d.Omega = 1
	}
	scale := d.HarmonicTg * d.Omega
	for t := 0; t < tg; t++ {
		d.G[t] = w.phiMax[t] / scale
	}
	var sumLambda float64
	for _, win := range w.winners {
		var l float64
		for _, t := range win.Covered {
			l += (w.phiMax[t-1] - win.Phi) / scale
		}
		d.Lambda[win.BidIndex] = l
		sumLambda += l
	}
	var sumG float64
	for t := 0; t < tg; t++ {
		sumG += d.G[t]
	}
	d.Objective = float64(k)*sumG - sumLambda
	d.RatioBound = scale
	d.TightObjective = w.tightDualObjective(k)
	return d
}

func (w *wdpState) tightDualObjective(k int) float64 {
	var sumEta float64
	for t := 0; t < w.tg; t++ {
		sumEta += w.phiMax[t]
	}
	if sumEta <= 0 {
		return 0
	}
	scale := math.Inf(1)
	top := make([]float64, 0, w.tg)
	for _, idx := range w.qualified {
		b := w.bids[idx]
		lo, hi := w.window(b)
		if hi-lo+1 < b.Rounds {
			continue
		}
		top = top[:0]
		for t := lo; t <= hi; t++ {
			top = append(top, w.phiMax[t-1])
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(top)))
		var worst float64
		for i := 0; i < b.Rounds; i++ {
			worst += top[i]
		}
		if worst > 0 {
			if s := b.Price / worst; s < scale {
				scale = s
			}
		}
	}
	if math.IsInf(scale, 1) {
		return 0
	}
	return scale * float64(k) * sumEta
}

// applyPaymentRule is the seed copy of core.applyPaymentRule.
func applyPaymentRule(bids []core.Bid, qualified []int, tg int, cfg core.Config, res *WDPResult) {
	switch cfg.PaymentRule {
	case core.RulePayBid:
		for i := range res.Winners {
			res.Winners[i].Payment = res.Winners[i].Bid.Price
		}
	case core.RuleExactCritical:
		for i := range res.Winners {
			res.Winners[i].Payment = exactCriticalPayment(bids, qualified, tg, cfg, res.Winners[i])
		}
	}
}

// exactCriticalPayment is the seed copy of core.exactCriticalPayment.
func exactCriticalPayment(bids []core.Bid, qualified []int, tg int, cfg core.Config, win Winner) float64 {
	probeCfg := cfg
	probeCfg.PaymentRule = core.RuleCritical
	probeQual := qualified
	if cfg.ExcludeOwnBids {
		probeQual = make([]int, 0, len(qualified))
		for _, idx := range qualified {
			if idx == win.BidIndex || bids[idx].Client != win.Bid.Client {
				probeQual = append(probeQual, idx)
			}
		}
	}
	probe := make([]core.Bid, len(bids))
	wins := func(price float64) bool {
		copy(probe, bids)
		probe[win.BidIndex].Price = price
		res := SolveWDP(probe, probeQual, tg, probeCfg)
		if !res.Feasible {
			return false
		}
		for _, w := range res.Winners {
			if w.BidIndex == win.BidIndex {
				return true
			}
		}
		return false
	}
	lo := win.Bid.Price
	if !wins(lo) {
		return lo
	}
	var hi float64
	if cfg.ReservePrice > 0 {
		if wins(cfg.ReservePrice) {
			return cfg.ReservePrice
		}
		hi = cfg.ReservePrice
	} else {
		hi = lo
		won := true
		for range 48 {
			hi *= 2
			if !wins(hi) {
				won = false
				break
			}
		}
		if won {
			return win.Payment
		}
	}
	for range 64 {
		if hi-lo <= 1e-12*math.Max(1, hi) {
			break
		}
		mid := lo + (hi-lo)/2
		if wins(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// heapEntry / entryHeap are the seed's lazy heap types.
type heapEntry struct {
	key   float64
	bid   int
	mSnap int
}

type entryHeap []heapEntry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(a, b int) bool {
	if h[a].key != h[b].key {
		return h[a].key < h[b].key
	}
	return h[a].bid < h[b].bid
}
func (h entryHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }

// Push implements heap.Interface.
func (h *entryHeap) Push(x any) { *h = append(*h, x.(heapEntry)) }

// Pop implements heap.Interface.
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
