package core

import (
	"errors"
	"fmt"
	"math"
)

// LocalIterFunc maps a local accuracy θ ∈ (0,1) to the number of local
// training iterations T_l(θ) a client must run per global iteration to
// reach it (Eq. (2) of the paper).
type LocalIterFunc func(theta float64) float64

// PaperLocalIters is the simplified local-iteration count the paper's
// evaluation uses: T_l(θ) = ⌊10·(1−θ)⌋.
func PaperLocalIters(theta float64) float64 {
	return math.Floor(10 * (1 - theta))
}

// LogLocalIters returns the analytical local-iteration count of Eq. (2),
// T_l(θ) = η·log(1/θ), for the given positive constant η.
func LogLocalIters(eta float64) LocalIterFunc {
	return func(theta float64) float64 {
		return eta * math.Log(1/theta)
	}
}

// Bid is one bid B_ij = {b_ij, θ_ij, [a_ij, d_ij], c_ij} submitted by a
// client, together with the client's per-round resource profile
// (t_i^cmp, t_i^com). Global iterations are 1-based: a bid with
// Start=2, End=5 is available in iterations 2, 3, 4 and 5.
type Bid struct {
	// Client is the index i of the bidding client. All bids sharing a
	// Client index are mutually exclusive: at most one can win (6f).
	Client int
	// Index is the bid's index j within the client's bid list. It is
	// informational; (Client, Index) identifies the bid in reports.
	Index int
	// Price is the claimed cost b_ij the client asks for its service.
	Price float64
	// TrueCost is the client's private true cost v_ij. It is used only by
	// simulations and truthfulness tests; the mechanism itself never reads
	// it. Zero means "equal to Price" (truthful bidding).
	TrueCost float64
	// Theta is the local accuracy θ_ij ∈ (0,1) the client commits to.
	// Smaller θ means more local computation per global iteration.
	Theta float64
	// Start and End delimit the availability window [a_ij, d_ij]
	// (inclusive, 1-based global iterations).
	Start, End int
	// Rounds is c_ij, the number of global iterations the client can
	// participate in within its window (battery-limited).
	Rounds int
	// CompTime is t_i^cmp, the time one local iteration takes.
	CompTime float64
	// CommTime is t_i^com, the per-global-iteration communication time.
	CommTime float64
}

// Cost returns the bid's true cost v_ij, falling back to the claimed price
// when TrueCost is unset.
func (b Bid) Cost() float64 {
	if b.TrueCost != 0 {
		return b.TrueCost
	}
	return b.Price
}

// PerRoundTime returns t_ij = T_l(θ_ij)·t_i^cmp + t_i^com, the time the bid
// needs inside one global iteration (constraint (6d) compares it with
// t_max).
func (b Bid) PerRoundTime(localIters LocalIterFunc) float64 {
	return localIters(b.Theta)*b.CompTime + b.CommTime
}

// WindowLen returns the number of iterations in the availability window.
func (b Bid) WindowLen() int { return b.End - b.Start + 1 }

// String renders the bid in the paper's tuple notation.
func (b Bid) String() string {
	return fmt.Sprintf("B[%d,%d]{b=%.2f, θ=%.2f, [%d,%d], c=%d}",
		b.Client, b.Index, b.Price, b.Theta, b.Start, b.End, b.Rounds)
}

// Validate reports whether the bid is internally consistent: positive
// price, θ ∈ (0,1), a well-formed window inside [1, maxT], and a round
// count that fits the window.
func (b Bid) Validate(maxT int) error {
	// NaN fails every ordered comparison, so the range checks below would
	// silently accept it (and ±Inf passes one-sided checks); reject
	// non-finite floats up front.
	for _, v := range [...]float64{b.Price, b.TrueCost, b.Theta, b.CompTime, b.CommTime} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("bid %s: non-finite field value %v", b, v)
		}
	}
	switch {
	case b.Client < 0:
		return fmt.Errorf("bid %s: negative client index", b)
	case b.Price <= 0:
		return fmt.Errorf("bid %s: price must be positive", b)
	case b.TrueCost < 0:
		return fmt.Errorf("bid %s: negative true cost", b)
	case b.Theta <= 0 || b.Theta >= 1:
		return fmt.Errorf("bid %s: θ must lie in (0,1)", b)
	case b.Start < 1 || b.End > maxT || b.Start > b.End:
		return fmt.Errorf("bid %s: window outside [1,%d]", b, maxT)
	case b.Rounds < 1 || b.Rounds > b.WindowLen():
		return fmt.Errorf("bid %s: rounds %d outside [1,%d]", b, b.Rounds, b.WindowLen())
	case b.CompTime < 0 || b.CommTime < 0:
		return fmt.Errorf("bid %s: negative timing", b)
	}
	return nil
}

// ErrNoBids is returned when an auction is run with an empty bid set.
var ErrNoBids = errors.New("core: no bids submitted")

// ValidateBids validates every bid and the basic auction parameters.
func ValidateBids(bids []Bid, maxT, k int) error {
	if maxT < 1 {
		return fmt.Errorf("core: maximum global iterations T=%d must be ≥ 1", maxT)
	}
	if k < 1 {
		return fmt.Errorf("core: per-iteration coverage K=%d must be ≥ 1", k)
	}
	if len(bids) == 0 {
		return ErrNoBids
	}
	for _, b := range bids {
		if err := b.Validate(maxT); err != nil {
			return err
		}
	}
	return nil
}
