package core

import (
	"sort"
	"testing"

	"github.com/fedauction/afl/internal/stats"
)

// TestDualFeasibilityLemma3 verifies the constructed duals satisfy the
// dual constraint (8a) of LP (8):
//
//	Σ_{t ∈ l} g(t) − λ_il − q_i ≤ ρ_il   for every feasible schedule l,
//
// with q_i = 0 and λ_il = 0 for unselected schedules. The schedule space
// is exponential, so the test samples random feasible schedules per bid
// (plus the representative and the winners' actual schedules) — exactly
// the claim of Lemma 3, checked empirically.
func TestDualFeasibilityLemma3(t *testing.T) {
	rng := stats.NewRNG(333)
	const tol = 1e-7
	for trial := 0; trial < 60; trial++ {
		bids, tg, k := randomWDPInstance(rng)
		cfg := Config{T: tg, K: k}
		qual := Qualified(bids, tg, cfg)
		res := SolveWDP(bids, qual, tg, cfg)
		if !res.Feasible {
			continue
		}
		g := res.Dual.G
		lambda := res.Dual.Lambda
		selectedSlots := map[int][]int{}
		for _, w := range res.Winners {
			selectedSlots[w.BidIndex] = w.Slots
		}
		for _, idx := range qual {
			b := bids[idx]
			hi := b.End
			if hi > tg {
				hi = tg
			}
			window := make([]int, 0, hi-b.Start+1)
			for s := b.Start; s <= hi; s++ {
				window = append(window, s)
			}
			if len(window) < b.Rounds {
				continue
			}
			// The winner's own schedule with its λ.
			if slots, ok := selectedSlots[idx]; ok {
				if v := slotDualSum(g, slots) - lambda[idx]; v > b.Price+tol {
					t.Fatalf("trial %d: selected schedule of %s violates (8a): %v > %v",
						trial, b, v, b.Price)
				}
			}
			// Random feasible schedules (λ = 0 when unselected).
			for probe := 0; probe < 8; probe++ {
				slots := sampleSchedule(rng, window, b.Rounds)
				if v := slotDualSum(g, slots); v > b.Price+tol {
					t.Fatalf("trial %d: schedule %v of %s violates (8a): %v > %v",
						trial, slots, b, v, b.Price)
				}
			}
		}
	}
}

func slotDualSum(g []float64, slots []int) float64 {
	var sum float64
	for _, t := range slots {
		sum += g[t-1]
	}
	return sum
}

func sampleSchedule(rng *stats.RNG, window []int, rounds int) []int {
	idx := rng.Perm(len(window))[:rounds]
	sort.Ints(idx)
	out := make([]int, rounds)
	for i, j := range idx {
		out[i] = window[j]
	}
	return out
}

// FuzzRunWDP exercises SolveWDP + CheckWDPSolution with fuzzer-shaped
// inputs: whatever the fuzzer produces, the solver must not panic, and
// any feasible solution it returns must satisfy every ILP (6) constraint.
func FuzzRunWDP(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(1), uint8(5))
	f.Add(int64(42), uint8(8), uint8(2), uint8(12))
	f.Add(int64(7), uint8(2), uint8(3), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, tgRaw, kRaw, clientsRaw uint8) {
		tg := int(tgRaw%12) + 1
		k := int(kRaw%3) + 1
		clients := int(clientsRaw%15) + 1
		rng := stats.NewRNG(seed)
		var bids []Bid
		for c := 0; c < clients; c++ {
			n := rng.IntRange(1, 2)
			for j := 0; j < n; j++ {
				start := rng.IntRange(1, tg)
				end := rng.IntRange(start, tg)
				bids = append(bids, Bid{
					Client: c,
					Index:  j,
					Price:  rng.FloatRange(0.5, 60),
					Theta:  rng.FloatRange(0.05, 0.95),
					Start:  start,
					End:    end,
					Rounds: rng.IntRange(1, end-start+1),
				})
			}
		}
		cfg := Config{T: tg, K: k}
		res, err := RunWDP(bids, tg, cfg)
		if err != nil {
			return // validation errors are acceptable outcomes
		}
		if !res.Feasible {
			return
		}
		if err := CheckWDPSolution(bids, res, cfg); err != nil {
			t.Fatalf("feasible result violates ILP (6): %v", err)
		}
		for _, w := range res.Winners {
			if w.Payment < w.Bid.Price-1e-9 {
				t.Fatalf("IR violated: %v paid %v", w.Bid, w.Payment)
			}
		}
	})
}
