package core

// ScheduleRule selects how A_winner forms a bid's representative schedule
// l_ij from the exponentially many feasible schedules.
type ScheduleRule int

const (
	// ScheduleLeastCovered takes the c_ij iterations of the window with
	// the smallest coverage count γ_t — the paper's rule, which maximizes
	// the schedule's marginal utility R_il(S). It is the zero value.
	ScheduleLeastCovered ScheduleRule = iota
	// ScheduleEarliest takes the first c_ij iterations of the window
	// regardless of coverage. It is a deliberately naive ablation
	// baseline quantifying what the least-covered rule buys.
	ScheduleEarliest
)

// String names the rule.
func (r ScheduleRule) String() string {
	switch r {
	case ScheduleLeastCovered:
		return "least-covered"
	case ScheduleEarliest:
		return "earliest-fit"
	default:
		return "unknown"
	}
}
