package core

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// Property suite of the approximate solver tiers: stride-1 coarse-to-fine
// is bit-identical to the exact sweep, certificates genuinely bound the
// full-enumeration optimum, ratios never dip below one, the exact tier
// never attaches a certificate, and feasibility is tier-independent.

func approxConfigs() []Config {
	return []Config{
		{T: 12, K: 2},
		{T: 12, K: 2, TMax: 60},
		{T: 16, K: 1, ReservePrice: 40},
		{T: 20, K: 3, TMax: 80},
		{T: 24, K: 2},
	}
}

func runTier(t *testing.T, bids []Bid, cfg Config, o RunOptions) Result {
	t.Helper()
	eng, err := NewEngine(bids, cfg)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	res, err := eng.RunCtx(context.Background(), o)
	if err != nil && err != ErrInfeasible {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestCoarseFineStrideOneBitIdenticalToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 60; trial++ {
		cfg := approxConfigs()[trial%len(approxConfigs())]
		bids := randomBids(rng, 1+rng.Intn(50), 1+rng.Intn(12), cfg.T)
		exact := runTier(t, bids, cfg, RunOptions{})
		approx := runTier(t, bids, cfg, RunOptions{Solver: SolverCoarseFine, Stride: 1})
		if approx.Feasible {
			if approx.Cert == nil {
				t.Fatalf("trial %d: coarse-fine attached no certificate", trial)
			}
			if approx.Cert.Solved != approx.Cert.Candidates {
				t.Fatalf("trial %d: stride 1 skipped candidates (%d/%d)",
					trial, approx.Cert.Solved, approx.Cert.Candidates)
			}
		}
		approx.Cert = nil
		if !reflect.DeepEqual(exact, approx) {
			t.Fatalf("trial %d: stride-1 result diverges from exact\nexact:  %+v\napprox: %+v",
				trial, exact, approx)
		}
	}
}

func TestApproxCertificateBoundsExactCost(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	checked := 0
	for trial := 0; trial < 80; trial++ {
		cfg := approxConfigs()[trial%len(approxConfigs())]
		bids := randomBids(rng, 1+rng.Intn(60), 1+rng.Intn(14), cfg.T)
		exact := runTier(t, bids, cfg, RunOptions{})
		for _, stride := range []int{0, 2, 5} {
			approx := runTier(t, bids, cfg, RunOptions{Solver: SolverCoarseFine, Stride: stride})
			// Feasibility parity: the gap-fallback pass guarantees the
			// approximate tiers agree with exact on the one boolean
			// callers branch on.
			if approx.Feasible != exact.Feasible {
				t.Fatalf("trial %d stride %d: feasibility %v ≠ exact %v",
					trial, stride, approx.Feasible, exact.Feasible)
			}
			if !approx.Feasible {
				if approx.Cert != nil {
					t.Fatalf("trial %d stride %d: certificate on infeasible result", trial, stride)
				}
				continue
			}
			checked++
			c := approx.Cert
			if c == nil {
				t.Fatalf("trial %d stride %d: no certificate", trial, stride)
			}
			if c.Solver != SolverCoarseFine {
				t.Fatalf("trial %d stride %d: certificate solver %v", trial, stride, c.Solver)
			}
			// The certificate lower-bounds min_tg OPT(tg), which the exact
			// greedy sweep upper-bounds — and the reported cost sits above
			// the same optimum, so the ratio is ≥ 1.
			if c.LowerBound > exact.Cost+1e-7 {
				t.Fatalf("trial %d stride %d: LB %v exceeds exact sweep cost %v",
					trial, stride, c.LowerBound, exact.Cost)
			}
			if !math.IsInf(c.Ratio, 1) {
				if c.Ratio < 1-1e-9 {
					t.Fatalf("trial %d stride %d: ratio %v < 1", trial, stride, c.Ratio)
				}
				if got := approx.Cost / c.LowerBound; math.Abs(got-c.Ratio) > 1e-9 {
					t.Fatalf("trial %d stride %d: ratio %v ≠ cost/LB %v", trial, stride, c.Ratio, got)
				}
			}
			if c.Solved < 1 || c.Solved > c.Candidates {
				t.Fatalf("trial %d stride %d: solved %d of %d", trial, stride, c.Solved, c.Candidates)
			}
		}
	}
	if checked < 30 {
		t.Fatalf("only %d feasible checks", checked)
	}
}

func TestExactTierAttachesNoCertificate(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 20; trial++ {
		cfg := approxConfigs()[trial%len(approxConfigs())]
		bids := randomBids(rng, 1+rng.Intn(40), 1+rng.Intn(10), cfg.T)
		res := runTier(t, bids, cfg, RunOptions{})
		if res.Cert != nil {
			t.Fatalf("trial %d: exact tier attached a certificate %+v", trial, res.Cert)
		}
		for _, w := range res.WDPs {
			if w.Skipped {
				t.Fatalf("trial %d: exact sweep marked tg %d skipped", trial, w.Tg)
			}
		}
	}
}

// capCertifier is a stub LPCertifier that certifies with the seed's own
// dual bound and returns the greedy winners as integral columns — enough
// to drive the SolverLPRound plumbing without importing colgen (which
// would close an import cycle from an in-package test).
type capCertifier struct{}

func (capCertifier) CertifyWDP(set *BidSet, qualified []int, tg int, cfg Config, seed WDPResult) LPOutcome {
	out := LPOutcome{Valid: true, Converged: true, LowerBound: seed.Dual.Bound()}
	for _, w := range seed.Winners {
		out.Columns = append(out.Columns, LPColumn{Bid: w.BidIndex, Slots: w.Slots, Value: 1})
	}
	return out
}

func TestLPRoundTierWithStubCertifier(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for trial := 0; trial < 40; trial++ {
		cfg := approxConfigs()[trial%len(approxConfigs())]
		bids := randomBids(rng, 1+rng.Intn(50), 1+rng.Intn(12), cfg.T)
		exact := runTier(t, bids, cfg, RunOptions{})
		res := runTier(t, bids, cfg, RunOptions{Solver: SolverLPRound, LP: capCertifier{}})
		if res.Feasible != exact.Feasible {
			t.Fatalf("trial %d: feasibility %v ≠ exact %v", trial, res.Feasible, exact.Feasible)
		}
		if !res.Feasible {
			continue
		}
		c := res.Cert
		if c == nil || c.Solver != SolverLPRound {
			t.Fatalf("trial %d: missing or mislabeled certificate %+v", trial, c)
		}
		// The stub certifies with the selected seed's dual bound; the
		// certificate still takes the min over every candidate, so it
		// cannot exceed the exact sweep cost.
		if c.LowerBound > exact.Cost+1e-7 {
			t.Fatalf("trial %d: LB %v exceeds exact cost %v", trial, c.LowerBound, exact.Cost)
		}
		// The rounded cover (or the greedy one it failed to beat) must be
		// a genuine cover: K per slot, one bid per client.
		gamma := make([]int, res.Tg)
		perClient := map[int]int{}
		for _, w := range res.Winners {
			perClient[w.Bid.Client]++
			for _, s := range w.Slots {
				if s < 1 || s > res.Tg {
					t.Fatalf("trial %d: slot %d outside [1, %d]", trial, s, res.Tg)
				}
				gamma[s-1]++
			}
		}
		for cli, n := range perClient {
			if n != 1 {
				t.Fatalf("trial %d: client %d won %d bids", trial, cli, n)
			}
		}
		for s := 0; s < res.Tg; s++ {
			if gamma[s] < cfg.K {
				t.Fatalf("trial %d: slot %d covered %d < K=%d", trial, s+1, gamma[s], cfg.K)
			}
		}
	}
}

func TestParseSolverRoundTrip(t *testing.T) {
	for _, s := range []Solver{SolverExact, SolverCoarseFine, SolverLPRound} {
		got, err := ParseSolver(s.String())
		if err != nil || got != s {
			t.Fatalf("round trip %v: got %v, err %v", s, got, err)
		}
	}
	if s, err := ParseSolver(""); err != nil || s != SolverExact {
		t.Fatalf("empty name: got %v, err %v (want exact, nil)", s, err)
	}
	if _, err := ParseSolver("nonsense"); err == nil {
		t.Fatal("unknown name accepted")
	}
}
