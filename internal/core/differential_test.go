package core_test

// Differential-testing harness for the incremental WDP engine.
//
// Every workload is solved four ways through the live code — RunAuction,
// RunAuctionConcurrent, Engine.Run and Engine.RunConcurrent — and once
// through internal/seedwdp, a frozen verbatim copy of the pre-engine
// solver. The four live paths must agree byte-for-byte (reflect.DeepEqual
// on the full Result, including unexported dual bookkeeping), and the
// live result must match the seed oracle on everything the oracle
// exposes: feasibility, T_g*, social cost, winners, schedules, payments,
// per-WDP outcomes and the complete dual certificate.
//
// Payments are rule-aware since pricing went lazy: under RuleCritical the
// claim stays full bit-identity, while under the post-processing rules
// (RulePayBid, RuleExactCritical) the live sweep prices only the selected
// T̂_g, so non-selected WDPs are held bit-identical to a RuleCritical
// oracle run (Algorithm 3 payments; the allocation is payment-independent)
// and the selected T̂_g's payments to the rule-applied oracle — exactly
// for RulePayBid, within 1e-9 relative for RuleExactCritical, whose
// bracket-seeded bisection converges to the same critical value as the
// oracle's blind-doubling search but not to the same last bit. The exact
// bit-level claim for the lazy path lives in
// TestDifferentialLazyPricingVsEagerReference, which compares against the
// retained eager-serial reference RunAuctionEager (same search, applied
// eagerly).
//
// This is the correctness lock that lets the engine share qualification
// delta lists, client groupings and pooled scratch arenas across the
// T̂_g sweep: any divergence in greedy order, tie-breaking, payments or
// duals fails here on one of ~200 seeded workloads spanning varied
// I, J, T, K, window shapes and degenerate cases (K beyond supply,
// single-slot windows, uniform prices, boundary accuracies).

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/seedwdp"
	"github.com/fedauction/afl/internal/workload"
)

// diffCase is one differential workload: a bid population plus an
// auction configuration.
type diffCase struct {
	name string
	bids []core.Bid
	cfg  core.Config
}

// generatedCases draws seeded §VII-A-style populations at varied scale
// and configuration. With 8 parameter variants × seeds it contributes
// the bulk of the ~200 workloads.
func generatedCases(t *testing.T) []diffCase {
	t.Helper()
	type variant struct {
		name     string
		clients  int
		bidsPer  int
		T, K     int
		model    workload.CostModel
		diurnal  float64
		schedule core.ScheduleRule
		rule     core.PaymentRule
		exclude  bool
		reserve  float64
	}
	variants := []variant{
		{name: "tiny", clients: 4, bidsPer: 1, T: 4, K: 1},
		{name: "small", clients: 12, bidsPer: 2, T: 8, K: 2},
		{name: "mid", clients: 30, bidsPer: 3, T: 10, K: 3},
		{name: "wide", clients: 24, bidsPer: 5, T: 14, K: 2},
		{name: "tight-k", clients: 10, bidsPer: 2, T: 6, K: 5}, // often infeasible
		{name: "resource", clients: 20, bidsPer: 3, T: 10, K: 2, model: workload.CostResource},
		{name: "diurnal", clients: 20, bidsPer: 3, T: 12, K: 2, diurnal: 2.5},
		{name: "earliest", clients: 16, bidsPer: 3, T: 10, K: 2, schedule: core.ScheduleEarliest},
		{name: "paybid", clients: 14, bidsPer: 2, T: 8, K: 2, rule: core.RulePayBid},
		{name: "reserve", clients: 18, bidsPer: 3, T: 9, K: 2, reserve: 35},
		{name: "exact-critical", clients: 8, bidsPer: 2, T: 5, K: 1,
			rule: core.RuleExactCritical, exclude: true, reserve: 120},
	}
	const seedsPerVariant = 18
	var cases []diffCase
	for _, v := range variants {
		for seed := int64(1); seed <= seedsPerVariant; seed++ {
			p := workload.NewDefaultParams()
			p.Clients = v.clients
			p.BidsPerUser = v.bidsPer
			p.T = v.T
			p.K = v.K
			p.Seed = seed
			p.CostModel = v.model
			p.DiurnalPeak = v.diurnal
			bids, err := workload.Generate(p)
			if err != nil {
				t.Fatalf("variant %s seed %d: %v", v.name, seed, err)
			}
			cfg := p.Config()
			cfg.ScheduleRule = v.schedule
			cfg.PaymentRule = v.rule
			cfg.ExcludeOwnBids = v.exclude
			cfg.ReservePrice = v.reserve
			cases = append(cases, diffCase{
				name: fmt.Sprintf("%s/seed%d", v.name, seed),
				bids: bids,
				cfg:  cfg,
			})
		}
	}
	return cases
}

// degenerateCases hand-builds the edge shapes random draws rarely hit.
func degenerateCases() []diffCase {
	singleSlot := func(n int) []core.Bid {
		var bids []core.Bid
		for i := 0; i < n; i++ {
			t := 1 + i%5
			bids = append(bids, core.Bid{
				Client: i, Price: float64(1 + i), Theta: 0.5,
				Start: t, End: t, Rounds: 1,
			})
		}
		return bids
	}
	uniformPrice := func(n int) []core.Bid {
		var bids []core.Bid
		for i := 0; i < n; i++ {
			bids = append(bids, core.Bid{
				Client: i, Price: 10, Theta: 0.5,
				Start: 1 + i%3, End: 4 + i%3, Rounds: 2,
			})
		}
		return bids
	}
	boundaryTheta := func() []core.Bid {
		var bids []core.Bid
		for tg := 2; tg <= 6; tg++ {
			theta := 1 - 1/float64(tg)
			bids = append(bids, core.Bid{
				Client: tg, Price: float64(tg), Theta: theta,
				Start: 1, End: 6, Rounds: 2,
			})
		}
		return bids
	}
	multiMinded := func() []core.Bid {
		var bids []core.Bid
		for c := 0; c < 3; c++ {
			for j := 0; j < 4; j++ {
				bids = append(bids, core.Bid{
					Client: c, Index: j, Price: float64(2 + c + j), Theta: 0.5,
					Start: 1 + j, End: 4 + j, Rounds: 1 + j%2,
				})
			}
		}
		return bids
	}
	return []diffCase{
		{name: "degenerate/k-beyond-supply", bids: singleSlot(3), cfg: core.Config{T: 5, K: 4}},
		{name: "degenerate/single-slot-windows", bids: singleSlot(10), cfg: core.Config{T: 5, K: 2}},
		{name: "degenerate/one-bid", bids: singleSlot(1), cfg: core.Config{T: 5, K: 1}},
		{name: "degenerate/uniform-prices", bids: uniformPrice(8), cfg: core.Config{T: 6, K: 2}},
		{name: "degenerate/uniform-prices-paybid", bids: uniformPrice(8),
			cfg: core.Config{T: 6, K: 2, PaymentRule: core.RulePayBid}},
		{name: "degenerate/boundary-theta", bids: boundaryTheta(), cfg: core.Config{T: 6, K: 1}},
		{name: "degenerate/multi-minded", bids: multiMinded(), cfg: core.Config{T: 7, K: 2}},
		{name: "degenerate/multi-minded-exclude", bids: multiMinded(),
			cfg: core.Config{T: 7, K: 2, PaymentRule: core.RuleExactCritical,
				ExcludeOwnBids: true, ReservePrice: 50}},
		{name: "degenerate/paper-example", bids: []core.Bid{
			{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 2, Rounds: 1},
			{Client: 1, Price: 6, Theta: 0.5, Start: 2, End: 3, Rounds: 2},
			{Client: 2, Price: 5, Theta: 0.5, Start: 1, End: 3, Rounds: 2},
		}, cfg: core.Config{T: 3, K: 1}},
	}
}

// payTolerance is the per-rule payment comparison tolerance against the
// rule-applied seed oracle on the selected T̂_g: 0 demands bit-identity
// (RuleCritical everywhere, RulePayBid — the claimed price both ways);
// RuleExactCritical allows 1e-9 relative slack between the seeded and the
// blind-doubling bisection, both of which stop within 1e-12·scale of the
// critical value.
func payTolerance(rule core.PaymentRule) float64 {
	if rule == core.RuleExactCritical {
		return 1e-9
	}
	return 0
}

func paymentsMatch(got, want, tol float64) bool {
	if tol == 0 {
		return got == want
	}
	return math.Abs(got-want) <= tol*math.Max(1, math.Abs(want))
}

// assertSeedEqual compares a live Result with the frozen-oracle Results on
// every field the oracle exposes. want is the rule-applied oracle run;
// wantA3 is an oracle run of the same workload under RuleCritical, the
// payments the lazy sweep leaves on non-selected WDPs (pass want itself
// when cfg.PaymentRule is RuleCritical). Everything except
// RuleExactCritical payments on the selected T̂_g is compared with ==: the
// claim is bit-identity, not approximation.
func assertSeedEqual(t *testing.T, got core.Result, want, wantA3 seedwdp.Result, cfg core.Config) {
	t.Helper()
	if got.Feasible != want.Feasible {
		t.Fatalf("Feasible = %v, seed oracle %v", got.Feasible, want.Feasible)
	}
	if got.Tg != want.Tg || got.Cost != want.Cost {
		t.Fatalf("Tg/Cost = %d/%v, seed oracle %d/%v", got.Tg, got.Cost, want.Tg, want.Cost)
	}
	tol := payTolerance(cfg.PaymentRule)
	assertSeedWinnersEqual(t, "auction", got.Winners, want.Winners, tol)
	if !reflect.DeepEqual(got.Dual, want.Dual) {
		t.Fatalf("Dual = %+v, seed oracle %+v", got.Dual, want.Dual)
	}
	if len(got.WDPs) != len(want.WDPs) || len(got.WDPs) != len(wantA3.WDPs) {
		t.Fatalf("len(WDPs) = %d, seed oracle %d/%d", len(got.WDPs), len(want.WDPs), len(wantA3.WDPs))
	}
	for i := range got.WDPs {
		g, w := got.WDPs[i], want.WDPs[i]
		if g.Tg != w.Tg || g.Feasible != w.Feasible || g.Cost != w.Cost || g.Rounds != w.Rounds {
			t.Fatalf("WDP[%d] = {Tg %d Feasible %v Cost %v Rounds %d}, seed oracle {Tg %d Feasible %v Cost %v Rounds %d}",
				i, g.Tg, g.Feasible, g.Cost, g.Rounds, w.Tg, w.Feasible, w.Cost, w.Rounds)
		}
		if chosen := got.Feasible && g.Tg == got.Tg; chosen {
			assertSeedWinnersEqual(t, fmt.Sprintf("WDP[%d]", i), g.Winners, w.Winners, tol)
		} else {
			// Non-selected candidates are priced lazily never: they carry
			// the in-greedy Algorithm 3 payments bit-for-bit.
			assertSeedWinnersEqual(t, fmt.Sprintf("WDP[%d] (A3)", i), g.Winners, wantA3.WDPs[i].Winners, 0)
		}
		if g.Feasible && !reflect.DeepEqual(g.Dual, w.Dual) {
			t.Fatalf("WDP[%d] dual diverged from seed oracle", i)
		}
	}
}

func assertSeedWinnersEqual(t *testing.T, where string, got []core.Winner, want []seedwdp.Winner, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d winners, seed oracle %d", where, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.BidIndex != w.BidIndex || g.Bid != w.Bid ||
			!paymentsMatch(g.Payment, w.Payment, tol) || g.AvgCost != w.AvgCost ||
			!reflect.DeepEqual(g.Slots, w.Slots) {
			t.Fatalf("%s winner %d = {bid %d pay %v avg %v slots %v}, seed oracle {bid %d pay %v avg %v slots %v}",
				where, i, g.BidIndex, g.Payment, g.AvgCost, g.Slots,
				w.BidIndex, w.Payment, w.AvgCost, w.Slots)
		}
	}
}

// TestDifferentialEngineVsSeed is the harness entry point: ~200 seeded
// workloads, four live paths, one frozen oracle, full bit-identity.
func TestDifferentialEngineVsSeed(t *testing.T) {
	cases := append(generatedCases(t), degenerateCases()...)
	if len(cases) < 200 {
		t.Fatalf("harness shrank to %d workloads; keep it near 200", len(cases))
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			seq, err := core.RunAuction(tc.bids, tc.cfg)
			if err != nil {
				t.Fatalf("RunAuction: %v", err)
			}
			conc, err := core.RunAuctionConcurrent(tc.bids, tc.cfg, 3)
			if err != nil {
				t.Fatalf("RunAuctionConcurrent: %v", err)
			}
			if !reflect.DeepEqual(seq, conc) {
				t.Fatal("RunAuctionConcurrent diverged from RunAuction")
			}
			eng, err := core.NewEngine(tc.bids, tc.cfg)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			if got := eng.Run(); !reflect.DeepEqual(seq, got) {
				t.Fatal("Engine.Run diverged from RunAuction")
			}
			if got := eng.RunConcurrent(2); !reflect.DeepEqual(seq, got) {
				t.Fatal("Engine.RunConcurrent diverged from RunAuction")
			}
			oracle, err := seedwdp.RunAuction(tc.bids, tc.cfg)
			if err != nil {
				t.Fatalf("seed oracle: %v", err)
			}
			oracleA3 := oracle
			if tc.cfg.PaymentRule != core.RuleCritical {
				cfgA3 := tc.cfg
				cfgA3.PaymentRule = core.RuleCritical
				if oracleA3, err = seedwdp.RunAuction(tc.bids, cfgA3); err != nil {
					t.Fatalf("seed A3 oracle: %v", err)
				}
			}
			assertSeedEqual(t, seq, oracle, oracleA3, tc.cfg)
			if seq.Feasible {
				if err := core.CheckSolution(tc.bids, seq, tc.cfg); err != nil {
					t.Fatalf("solution fails ILP(6) verification: %v", err)
				}
			}
		})
	}
}

// TestDifferentialFixedTg sweeps every T̂_g of a mid-size population
// through the standalone SolveWDP, the Engine's context path and the
// seed oracle, covering the fixed-T̂_g entry points (RunWDP, Fig. 3/7
// experiments) that the full-auction harness exercises only indirectly.
func TestDifferentialFixedTg(t *testing.T) {
	p := workload.NewDefaultParams()
	p.Clients = 25
	p.BidsPerUser = 3
	p.T = 12
	p.K = 2
	for seed := int64(1); seed <= 6; seed++ {
		p.Seed = seed
		bids, err := workload.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		cfg := p.Config()
		eng, err := core.NewEngine(bids, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for tg := 1; tg <= cfg.T; tg++ {
			direct := core.SolveWDP(bids, core.Qualified(bids, tg, cfg), tg, cfg)
			viaEngine := eng.SolveWDP(tg)
			if !reflect.DeepEqual(direct, viaEngine) {
				t.Fatalf("seed %d tg=%d: Engine.SolveWDP diverged from SolveWDP", seed, tg)
			}
			oracle := seedwdp.SolveWDP(bids, seedwdp.Qualified(bids, tg, cfg), tg, cfg)
			if direct.Tg != oracle.Tg || direct.Feasible != oracle.Feasible ||
				direct.Cost != oracle.Cost || direct.Rounds != oracle.Rounds {
				t.Fatalf("seed %d tg=%d: WDP outcome diverged from seed oracle", seed, tg)
			}
			assertSeedWinnersEqual(t, fmt.Sprintf("seed %d tg=%d", seed, tg), direct.Winners, oracle.Winners, 0)
			if direct.Feasible && !reflect.DeepEqual(direct.Dual, oracle.Dual) {
				t.Fatalf("seed %d tg=%d: dual diverged from seed oracle", seed, tg)
			}
		}
	}
}

// TestLazyPaymentSemanticsPinned pins the documented Result.WDPs
// contract (see result.go): under a post-processing payment rule the
// non-selected candidates keep their in-greedy Algorithm 3 payments —
// bit-identical to a RuleCritical run of the same workload — while the
// selected T̂_g's entry and the top-level Winners it aliases are fully
// priced, bit-identical to the eager reference.
func TestLazyPaymentSemanticsPinned(t *testing.T) {
	p := workload.NewDefaultParams()
	p.Clients = 16
	p.BidsPerUser = 2
	p.T = 8
	p.K = 2
	for seed := int64(1); seed <= 4; seed++ {
		p.Seed = seed
		bids, err := workload.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		cfg := p.Config()
		cfg.PaymentRule = core.RuleExactCritical
		cfg.ExcludeOwnBids = true
		lazy, err := core.RunAuction(bids, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !lazy.Feasible {
			t.Fatalf("seed %d: workload infeasible, fixture needs winners", seed)
		}
		cfgA3 := cfg
		cfgA3.PaymentRule = core.RuleCritical
		a3, err := core.RunAuction(bids, cfgA3)
		if err != nil {
			t.Fatal(err)
		}
		eager, err := core.RunAuctionEager(bids, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range lazy.WDPs {
			if lazy.WDPs[i].Tg == lazy.Tg {
				if !reflect.DeepEqual(lazy.WDPs[i].Winners, eager.WDPs[i].Winners) {
					t.Fatalf("seed %d: selected WDP[%d] not bit-identical to the eager reference", seed, i)
				}
				if !reflect.DeepEqual(lazy.Winners, lazy.WDPs[i].Winners) {
					t.Fatalf("seed %d: Result.Winners does not alias the selected WDP's winners", seed)
				}
				continue
			}
			if !reflect.DeepEqual(lazy.WDPs[i].Winners, a3.WDPs[i].Winners) {
				t.Fatalf("seed %d: non-selected WDP[%d] should carry Algorithm 3 payments", seed, i)
			}
		}
		if lazy.TotalPayment() != eager.TotalPayment() {
			t.Fatalf("seed %d: TotalPayment %v, eager reference %v", seed, lazy.TotalPayment(), eager.TotalPayment())
		}
	}
}

// TestDifferentialLazyPricingVsEagerReference forces RuleExactCritical on
// the whole workload corpus and holds the lazy pricing path — serial and
// over a 4-worker pool — to byte-identity with the retained eager-serial
// reference RunAuctionEager on the selected T̂_g: winners, payments,
// schedules, cost and dual, via reflect.DeepEqual with no tolerance. Both
// sides run the identical seeded bisection on identical inputs, so
// lazification must change where pricing happens, never what it computes.
func TestDifferentialLazyPricingVsEagerReference(t *testing.T) {
	cases := append(generatedCases(t), degenerateCases()...)
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := tc.cfg
			cfg.PaymentRule = core.RuleExactCritical
			eager, err := core.RunAuctionEager(tc.bids, cfg)
			if err != nil {
				t.Fatalf("RunAuctionEager: %v", err)
			}
			for _, workers := range []int{1, 4} {
				lazy, err := core.RunAuctionConcurrent(tc.bids, cfg, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if lazy.Feasible != eager.Feasible || lazy.Tg != eager.Tg ||
					lazy.Cost != eager.Cost || lazy.TotalPayment() != eager.TotalPayment() {
					t.Fatalf("workers=%d: outcome {%v %d %v %v} diverged from eager reference {%v %d %v %v}",
						workers, lazy.Feasible, lazy.Tg, lazy.Cost, lazy.TotalPayment(),
						eager.Feasible, eager.Tg, eager.Cost, eager.TotalPayment())
				}
				if !reflect.DeepEqual(lazy.Winners, eager.Winners) {
					t.Fatalf("workers=%d: chosen-T̂_g winners diverged from eager reference", workers)
				}
				if !reflect.DeepEqual(lazy.Dual, eager.Dual) {
					t.Fatalf("workers=%d: dual diverged from eager reference", workers)
				}
			}
		})
	}
}

// TestDifferentialColumnar10kVsSeed scales the differential harness to a
// 10⁴-bid single-minded population — large enough that the sweep engages
// the class-based selection fast path on every T̂_g with thousands of
// qualified bids per solve — and holds the columnar entry point to the
// frozen seed oracle at workers ∈ {1, 8}: full assertSeedEqual identity,
// DeepEqual across worker counts, DeepEqual against the []Bid compat
// wrapper, and ILP(6) verification of the chosen solution.
func TestDifferentialColumnar10kVsSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁴-bid differential run skipped under -short")
	}
	p := workload.NewDefaultParams()
	p.Clients = 10_000
	p.BidsPerUser = 1
	p.Seed = 7
	bids, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.Config()
	set := core.CompileBids(bids)
	eng, err := core.NewEngineSet(set, cfg)
	if err != nil {
		t.Fatalf("NewEngineSet: %v", err)
	}
	w1 := eng.Run()
	if got := eng.RunConcurrent(8); !reflect.DeepEqual(w1, got) {
		t.Fatal("workers=8 diverged from workers=1 on the columnar path")
	}
	rows, err := core.RunAuction(bids, cfg)
	if err != nil {
		t.Fatalf("RunAuction: %v", err)
	}
	if !reflect.DeepEqual(rows, w1) {
		t.Fatal("[]Bid compat wrapper diverged from the columnar path")
	}
	oracle, err := seedwdp.RunAuction(bids, cfg)
	if err != nil {
		t.Fatalf("seed oracle: %v", err)
	}
	assertSeedEqual(t, w1, oracle, oracle, cfg)
	if !w1.Feasible {
		t.Fatal("10⁴-bid workload infeasible; the fixture needs winners")
	}
	if err := core.CheckSolution(bids, w1, cfg); err != nil {
		t.Fatalf("solution fails ILP(6) verification: %v", err)
	}
}
