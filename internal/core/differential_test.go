package core_test

// Differential-testing harness for the incremental WDP engine.
//
// Every workload is solved four ways through the live code — RunAuction,
// RunAuctionConcurrent, Engine.Run and Engine.RunConcurrent — and once
// through internal/seedwdp, a frozen verbatim copy of the pre-engine
// solver. The four live paths must agree byte-for-byte (reflect.DeepEqual
// on the full Result, including unexported dual bookkeeping), and the
// live result must match the seed oracle on everything the oracle
// exposes: feasibility, T_g*, social cost, winners, schedules, payments,
// per-WDP outcomes and the complete dual certificate.
//
// This is the correctness lock that lets the engine share qualification
// delta lists, client groupings and pooled scratch arenas across the
// T̂_g sweep: any divergence in greedy order, tie-breaking, payments or
// duals fails here on one of ~200 seeded workloads spanning varied
// I, J, T, K, window shapes and degenerate cases (K beyond supply,
// single-slot windows, uniform prices, boundary accuracies).

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/seedwdp"
	"github.com/fedauction/afl/internal/workload"
)

// diffCase is one differential workload: a bid population plus an
// auction configuration.
type diffCase struct {
	name string
	bids []core.Bid
	cfg  core.Config
}

// generatedCases draws seeded §VII-A-style populations at varied scale
// and configuration. With 8 parameter variants × seeds it contributes
// the bulk of the ~200 workloads.
func generatedCases(t *testing.T) []diffCase {
	t.Helper()
	type variant struct {
		name     string
		clients  int
		bidsPer  int
		T, K     int
		model    workload.CostModel
		diurnal  float64
		schedule core.ScheduleRule
		rule     core.PaymentRule
		exclude  bool
		reserve  float64
	}
	variants := []variant{
		{name: "tiny", clients: 4, bidsPer: 1, T: 4, K: 1},
		{name: "small", clients: 12, bidsPer: 2, T: 8, K: 2},
		{name: "mid", clients: 30, bidsPer: 3, T: 10, K: 3},
		{name: "wide", clients: 24, bidsPer: 5, T: 14, K: 2},
		{name: "tight-k", clients: 10, bidsPer: 2, T: 6, K: 5}, // often infeasible
		{name: "resource", clients: 20, bidsPer: 3, T: 10, K: 2, model: workload.CostResource},
		{name: "diurnal", clients: 20, bidsPer: 3, T: 12, K: 2, diurnal: 2.5},
		{name: "earliest", clients: 16, bidsPer: 3, T: 10, K: 2, schedule: core.ScheduleEarliest},
		{name: "paybid", clients: 14, bidsPer: 2, T: 8, K: 2, rule: core.RulePayBid},
		{name: "reserve", clients: 18, bidsPer: 3, T: 9, K: 2, reserve: 35},
		{name: "exact-critical", clients: 8, bidsPer: 2, T: 5, K: 1,
			rule: core.RuleExactCritical, exclude: true, reserve: 120},
	}
	const seedsPerVariant = 18
	var cases []diffCase
	for _, v := range variants {
		for seed := int64(1); seed <= seedsPerVariant; seed++ {
			p := workload.NewDefaultParams()
			p.Clients = v.clients
			p.BidsPerUser = v.bidsPer
			p.T = v.T
			p.K = v.K
			p.Seed = seed
			p.CostModel = v.model
			p.DiurnalPeak = v.diurnal
			bids, err := workload.Generate(p)
			if err != nil {
				t.Fatalf("variant %s seed %d: %v", v.name, seed, err)
			}
			cfg := p.Config()
			cfg.ScheduleRule = v.schedule
			cfg.PaymentRule = v.rule
			cfg.ExcludeOwnBids = v.exclude
			cfg.ReservePrice = v.reserve
			cases = append(cases, diffCase{
				name: fmt.Sprintf("%s/seed%d", v.name, seed),
				bids: bids,
				cfg:  cfg,
			})
		}
	}
	return cases
}

// degenerateCases hand-builds the edge shapes random draws rarely hit.
func degenerateCases() []diffCase {
	singleSlot := func(n int) []core.Bid {
		var bids []core.Bid
		for i := 0; i < n; i++ {
			t := 1 + i%5
			bids = append(bids, core.Bid{
				Client: i, Price: float64(1 + i), Theta: 0.5,
				Start: t, End: t, Rounds: 1,
			})
		}
		return bids
	}
	uniformPrice := func(n int) []core.Bid {
		var bids []core.Bid
		for i := 0; i < n; i++ {
			bids = append(bids, core.Bid{
				Client: i, Price: 10, Theta: 0.5,
				Start: 1 + i%3, End: 4 + i%3, Rounds: 2,
			})
		}
		return bids
	}
	boundaryTheta := func() []core.Bid {
		var bids []core.Bid
		for tg := 2; tg <= 6; tg++ {
			theta := 1 - 1/float64(tg)
			bids = append(bids, core.Bid{
				Client: tg, Price: float64(tg), Theta: theta,
				Start: 1, End: 6, Rounds: 2,
			})
		}
		return bids
	}
	multiMinded := func() []core.Bid {
		var bids []core.Bid
		for c := 0; c < 3; c++ {
			for j := 0; j < 4; j++ {
				bids = append(bids, core.Bid{
					Client: c, Index: j, Price: float64(2 + c + j), Theta: 0.5,
					Start: 1 + j, End: 4 + j, Rounds: 1 + j%2,
				})
			}
		}
		return bids
	}
	return []diffCase{
		{name: "degenerate/k-beyond-supply", bids: singleSlot(3), cfg: core.Config{T: 5, K: 4}},
		{name: "degenerate/single-slot-windows", bids: singleSlot(10), cfg: core.Config{T: 5, K: 2}},
		{name: "degenerate/one-bid", bids: singleSlot(1), cfg: core.Config{T: 5, K: 1}},
		{name: "degenerate/uniform-prices", bids: uniformPrice(8), cfg: core.Config{T: 6, K: 2}},
		{name: "degenerate/uniform-prices-paybid", bids: uniformPrice(8),
			cfg: core.Config{T: 6, K: 2, PaymentRule: core.RulePayBid}},
		{name: "degenerate/boundary-theta", bids: boundaryTheta(), cfg: core.Config{T: 6, K: 1}},
		{name: "degenerate/multi-minded", bids: multiMinded(), cfg: core.Config{T: 7, K: 2}},
		{name: "degenerate/multi-minded-exclude", bids: multiMinded(),
			cfg: core.Config{T: 7, K: 2, PaymentRule: core.RuleExactCritical,
				ExcludeOwnBids: true, ReservePrice: 50}},
		{name: "degenerate/paper-example", bids: []core.Bid{
			{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 2, Rounds: 1},
			{Client: 1, Price: 6, Theta: 0.5, Start: 2, End: 3, Rounds: 2},
			{Client: 2, Price: 5, Theta: 0.5, Start: 1, End: 3, Rounds: 2},
		}, cfg: core.Config{T: 3, K: 1}},
	}
}

// assertSeedEqual compares a live Result with the frozen-oracle Result on
// every field the oracle exposes. Floats are compared with ==: the claim
// is bit-identity, not approximation.
func assertSeedEqual(t *testing.T, got core.Result, want seedwdp.Result) {
	t.Helper()
	if got.Feasible != want.Feasible {
		t.Fatalf("Feasible = %v, seed oracle %v", got.Feasible, want.Feasible)
	}
	if got.Tg != want.Tg || got.Cost != want.Cost {
		t.Fatalf("Tg/Cost = %d/%v, seed oracle %d/%v", got.Tg, got.Cost, want.Tg, want.Cost)
	}
	assertSeedWinnersEqual(t, "auction", got.Winners, want.Winners)
	if !reflect.DeepEqual(got.Dual, want.Dual) {
		t.Fatalf("Dual = %+v, seed oracle %+v", got.Dual, want.Dual)
	}
	if len(got.WDPs) != len(want.WDPs) {
		t.Fatalf("len(WDPs) = %d, seed oracle %d", len(got.WDPs), len(want.WDPs))
	}
	for i := range got.WDPs {
		g, w := got.WDPs[i], want.WDPs[i]
		if g.Tg != w.Tg || g.Feasible != w.Feasible || g.Cost != w.Cost || g.Rounds != w.Rounds {
			t.Fatalf("WDP[%d] = {Tg %d Feasible %v Cost %v Rounds %d}, seed oracle {Tg %d Feasible %v Cost %v Rounds %d}",
				i, g.Tg, g.Feasible, g.Cost, g.Rounds, w.Tg, w.Feasible, w.Cost, w.Rounds)
		}
		assertSeedWinnersEqual(t, fmt.Sprintf("WDP[%d]", i), g.Winners, w.Winners)
		if g.Feasible && !reflect.DeepEqual(g.Dual, w.Dual) {
			t.Fatalf("WDP[%d] dual diverged from seed oracle", i)
		}
	}
}

func assertSeedWinnersEqual(t *testing.T, where string, got []core.Winner, want []seedwdp.Winner) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d winners, seed oracle %d", where, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.BidIndex != w.BidIndex || g.Bid != w.Bid ||
			g.Payment != w.Payment || g.AvgCost != w.AvgCost ||
			!reflect.DeepEqual(g.Slots, w.Slots) {
			t.Fatalf("%s winner %d = {bid %d pay %v avg %v slots %v}, seed oracle {bid %d pay %v avg %v slots %v}",
				where, i, g.BidIndex, g.Payment, g.AvgCost, g.Slots,
				w.BidIndex, w.Payment, w.AvgCost, w.Slots)
		}
	}
}

// TestDifferentialEngineVsSeed is the harness entry point: ~200 seeded
// workloads, four live paths, one frozen oracle, full bit-identity.
func TestDifferentialEngineVsSeed(t *testing.T) {
	cases := append(generatedCases(t), degenerateCases()...)
	if len(cases) < 200 {
		t.Fatalf("harness shrank to %d workloads; keep it near 200", len(cases))
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			seq, err := core.RunAuction(tc.bids, tc.cfg)
			if err != nil {
				t.Fatalf("RunAuction: %v", err)
			}
			conc, err := core.RunAuctionConcurrent(tc.bids, tc.cfg, 3)
			if err != nil {
				t.Fatalf("RunAuctionConcurrent: %v", err)
			}
			if !reflect.DeepEqual(seq, conc) {
				t.Fatal("RunAuctionConcurrent diverged from RunAuction")
			}
			eng, err := core.NewEngine(tc.bids, tc.cfg)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			if got := eng.Run(); !reflect.DeepEqual(seq, got) {
				t.Fatal("Engine.Run diverged from RunAuction")
			}
			if got := eng.RunConcurrent(2); !reflect.DeepEqual(seq, got) {
				t.Fatal("Engine.RunConcurrent diverged from RunAuction")
			}
			oracle, err := seedwdp.RunAuction(tc.bids, tc.cfg)
			if err != nil {
				t.Fatalf("seed oracle: %v", err)
			}
			assertSeedEqual(t, seq, oracle)
			if seq.Feasible {
				if err := core.CheckSolution(tc.bids, seq, tc.cfg); err != nil {
					t.Fatalf("solution fails ILP(6) verification: %v", err)
				}
			}
		})
	}
}

// TestDifferentialFixedTg sweeps every T̂_g of a mid-size population
// through the standalone SolveWDP, the Engine's context path and the
// seed oracle, covering the fixed-T̂_g entry points (RunWDP, Fig. 3/7
// experiments) that the full-auction harness exercises only indirectly.
func TestDifferentialFixedTg(t *testing.T) {
	p := workload.NewDefaultParams()
	p.Clients = 25
	p.BidsPerUser = 3
	p.T = 12
	p.K = 2
	for seed := int64(1); seed <= 6; seed++ {
		p.Seed = seed
		bids, err := workload.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		cfg := p.Config()
		eng, err := core.NewEngine(bids, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for tg := 1; tg <= cfg.T; tg++ {
			direct := core.SolveWDP(bids, core.Qualified(bids, tg, cfg), tg, cfg)
			viaEngine := eng.SolveWDP(tg)
			if !reflect.DeepEqual(direct, viaEngine) {
				t.Fatalf("seed %d tg=%d: Engine.SolveWDP diverged from SolveWDP", seed, tg)
			}
			oracle := seedwdp.SolveWDP(bids, seedwdp.Qualified(bids, tg, cfg), tg, cfg)
			if direct.Tg != oracle.Tg || direct.Feasible != oracle.Feasible ||
				direct.Cost != oracle.Cost || direct.Rounds != oracle.Rounds {
				t.Fatalf("seed %d tg=%d: WDP outcome diverged from seed oracle", seed, tg)
			}
			assertSeedWinnersEqual(t, fmt.Sprintf("seed %d tg=%d", seed, tg), direct.Winners, oracle.Winners)
			if direct.Feasible && !reflect.DeepEqual(direct.Dual, oracle.Dual) {
				t.Fatalf("seed %d tg=%d: dual diverged from seed oracle", seed, tg)
			}
		}
	}
}
