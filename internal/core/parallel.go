package core

import (
	"context"
	"sync"
	"time"

	"github.com/fedauction/afl/internal/obs"
)

// RunAuctionConcurrent is RunAuction with the T̂_g enumeration fanned out
// over a worker pool. The winner-determination problems of Algorithm 1
// are independent across T̂_g values, so they parallelize perfectly; the
// result is bit-identical to the sequential RunAuction (the same
// deterministic per-WDP greedy, the same minimum-cost tie-breaking by
// smaller T̂_g).
//
// All workers read the same immutable auction context — qualification is
// a prefix of one shared array, slot rows and sibling groups are computed
// once — and each worker holds one pooled scratch arena for the segment
// it owns.
//
// workers ≤ 0 selects GOMAXPROCS; requests beyond the number of
// candidate T̂_g values are clamped (see ClampWorkers).
//
// Deprecated: new code should use the afl.Run facade (or Engine.RunCtx)
// with WithWorkers, which adds context cancellation and observability.
// This wrapper is kept for compatibility and returns bit-identical
// results.
func RunAuctionConcurrent(bids []Bid, cfg Config, workers int) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := ValidateBids(bids, cfg.T, cfg.K); err != nil {
		return Result{}, err
	}
	return newAuctionContext(CompileBids(bids), cfg).runConcurrent(workers), nil
}

// runConcurrent adapts the historical workers convention (≤ 0 means
// GOMAXPROCS) onto the unified sweep.
func (ax *auctionContext) runConcurrent(workers int) Result {
	if workers <= 0 {
		workers = -1
	}
	res, _ := ax.sweep(context.Background(), RunOptions{Workers: workers})
	return res
}

// sweepPar shards the candidate range into one contiguous T̂_g segment
// per worker and runs the segments concurrently. workers has already been
// clamped to [1, tasks].
//
// Contiguous segments replace the historical one-T̂_g-at-a-time task
// channel for two reasons. First, ascending T̂_g order inside a segment
// is what lets each worker carry the incremental ψ_max column forward
// (see sweepSegment) instead of rebuilding it per solve. Second, each
// worker writes a contiguous, disjoint half-open range of the shared
// result array and owns all of its mutable scratch outright, so workers
// never interleave writes within a cache line — no false sharing and no
// per-task channel synchronization on the hot path.
//
// Segment boundaries are weighted by the qualification prefix sums: a
// solve at T̂_g costs roughly |J_{T̂_g}| ∝ qualCount[tg] heap and slot
// work, so cutting the cumulative weight into equal parts balances wall
// time far better than cutting the T̂_g count would (qualified sets only
// grow with T̂_g).
//
// On cancellation every segment abandons its remaining candidates at the
// next between-solves check and the partial results are discarded — no
// goroutine outlives the call.
func (ax *auctionContext) sweepPar(ctx context.Context, res *Result, workers int, obsv obs.Observer, now func() time.Time) error {
	lo, hi := ax.t0, ax.cfg.T
	wdps := make([]WDPResult, hi-lo+1)
	bounds := ax.segmentBounds(workers)
	var wg sync.WaitGroup
	for s := 0; s+1 < len(bounds); s++ {
		segLo, segHi := bounds[s], bounds[s+1]-1
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The only segment error is cancellation, reported once below.
			_ = ax.sweepSegment(ctx, segLo, segHi, wdps[segLo-lo:segHi-lo+1], obsv, now)
		}()
	}
	wg.Wait()
	if ctx.Err() != nil {
		return canceledErr(ctx)
	}
	reduceWDPs(res, wdps)
	return nil
}

// segmentBounds cuts [t0, T] into at most workers contiguous segments of
// near-equal cumulative qualification weight, returned as half-open cut
// points: segment s is [bounds[s], bounds[s+1]). Weights are
// qualCount[tg]+1 — the +1 keeps degenerate sweeps (nobody qualified for
// long prefixes) from lumping every T̂_g into one segment.
func (ax *auctionContext) segmentBounds(workers int) []int {
	lo, hi := ax.t0, ax.cfg.T
	var total int64
	for tg := lo; tg <= hi; tg++ {
		total += int64(ax.qualCount[tg]) + 1
	}
	bounds := make([]int, 1, workers+1)
	bounds[0] = lo
	var cum int64
	for tg := lo; tg < hi && len(bounds) < workers; tg++ {
		cum += int64(ax.qualCount[tg]) + 1
		if cum*int64(workers) >= int64(len(bounds))*total {
			bounds = append(bounds, tg+1)
		}
	}
	return append(bounds, hi+1)
}
