package core

import (
	"context"
	"sync"
	"time"

	"github.com/fedauction/afl/internal/obs"
)

// RunAuctionConcurrent is RunAuction with the T̂_g enumeration fanned out
// over a worker pool. The winner-determination problems of Algorithm 1
// are independent across T̂_g values, so they parallelize perfectly; the
// result is bit-identical to the sequential RunAuction (the same
// deterministic per-WDP greedy, the same minimum-cost tie-breaking by
// smaller T̂_g).
//
// All workers read the same immutable auction context — qualification is
// a prefix of one shared array, client groupings are computed once — and
// each worker holds one pooled scratch arena for the WDPs it drains.
//
// workers ≤ 0 selects GOMAXPROCS; requests beyond the number of
// candidate T̂_g values are clamped (see ClampWorkers).
//
// Deprecated: new code should use the afl.Run facade (or Engine.RunCtx)
// with WithWorkers, which adds context cancellation and observability.
// This wrapper is kept for compatibility and returns bit-identical
// results.
func RunAuctionConcurrent(bids []Bid, cfg Config, workers int) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := ValidateBids(bids, cfg.T, cfg.K); err != nil {
		return Result{}, err
	}
	return newAuctionContext(bids, cfg).runConcurrent(workers), nil
}

// runConcurrent adapts the historical workers convention (≤ 0 means
// GOMAXPROCS) onto the unified sweep.
func (ax *auctionContext) runConcurrent(workers int) Result {
	if workers <= 0 {
		workers = -1
	}
	res, _ := ax.sweep(context.Background(), RunOptions{Workers: workers})
	return res
}

// sweepPar fans the per-T̂_g WDPs over a worker pool. workers has
// already been clamped to [1, tasks]. On cancellation the feeder stops
// handing out tasks, the workers drain the channel without solving, and
// the partial results are discarded — no goroutine outlives the call.
func (ax *auctionContext) sweepPar(ctx context.Context, res *Result, workers int, obsv obs.Observer, now func() time.Time) error {
	n := ax.cfg.T - ax.t0 + 1
	wdps := make([]WDPResult, n)
	var wg sync.WaitGroup
	next := make(chan int)
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := acquireScratch(len(ax.bids), ax.cfg.T)
			defer releaseScratch(sc)
			for i := range next {
				if ctx.Err() != nil {
					continue // canceled: drain the queue without solving
				}
				tg := ax.t0 + i
				var t0 time.Time
				if obsv != nil {
					t0 = now()
				}
				wdps[i] = solveWDP(ax.bids, ax.qualifiedAt(tg), tg, ax.cfg, sc, ax.clientBids, nil)
				if obsv != nil {
					obsv.Observe(obs.Event{
						Kind: obs.EvWDPSolved, Tg: tg, Client: -1, Bid: -1,
						Value: wdps[i].Cost, OK: wdps[i].Feasible, Dur: now().Sub(t0),
					})
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			break feed
		}
	}
	close(next)
	wg.Wait()
	if ctx.Err() != nil {
		return canceledErr(ctx)
	}

	res.WDPs = wdps
	for _, wdp := range wdps {
		if !wdp.Feasible {
			continue
		}
		if !res.Feasible || wdp.Cost < res.Cost {
			res.Feasible = true
			res.Tg = wdp.Tg
			res.Cost = wdp.Cost
			res.Winners = wdp.Winners
			res.Dual = wdp.Dual
		}
	}
	return nil
}
