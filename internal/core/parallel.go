package core

import (
	"runtime"
	"sync"
)

// RunAuctionConcurrent is RunAuction with the T̂_g enumeration fanned out
// over a worker pool. The winner-determination problems of Algorithm 1
// are independent across T̂_g values, so they parallelize perfectly; the
// result is bit-identical to the sequential RunAuction (the same
// deterministic per-WDP greedy, the same minimum-cost tie-breaking by
// smaller T̂_g).
//
// All workers read the same immutable auction context — qualification is
// a prefix of one shared array, client groupings are computed once — and
// each worker holds one pooled scratch arena for the WDPs it drains.
//
// workers ≤ 0 selects GOMAXPROCS.
func RunAuctionConcurrent(bids []Bid, cfg Config, workers int) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := ValidateBids(bids, cfg.T, cfg.K); err != nil {
		return Result{}, err
	}
	return newAuctionContext(bids, cfg).runConcurrent(workers), nil
}

// runConcurrent fans the per-T̂_g WDPs of the sweep over a worker pool.
func (ax *auctionContext) runConcurrent(workers int) Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := ax.cfg.T - ax.t0 + 1
	if n <= 0 {
		return Result{}
	}
	wdps := make([]WDPResult, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := acquireScratch(len(ax.bids), ax.cfg.T)
			defer releaseScratch(sc)
			for i := range next {
				tg := ax.t0 + i
				wdps[i] = solveWDP(ax.bids, ax.qualifiedAt(tg), tg, ax.cfg, sc, ax.clientBids, nil)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	res := Result{WDPs: wdps}
	for _, wdp := range wdps {
		if !wdp.Feasible {
			continue
		}
		if !res.Feasible || wdp.Cost < res.Cost {
			res.Feasible = true
			res.Tg = wdp.Tg
			res.Cost = wdp.Cost
			res.Winners = wdp.Winners
			res.Dual = wdp.Dual
		}
	}
	return res
}
