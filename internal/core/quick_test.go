package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// wdpInstance is a fuzzable WDP instance with a custom quick.Generator so
// testing/quick drives structurally valid auctions.
type wdpInstance struct {
	Bids []Bid
	Tg   int
	K    int
}

var _ quick.Generator = wdpInstance{}

// Generate implements quick.Generator.
func (wdpInstance) Generate(r *rand.Rand, size int) reflect.Value {
	tg := 2 + r.Intn(10)
	k := 1 + r.Intn(3)
	clients := k + 1 + r.Intn(min(size, 12)+1)
	inst := wdpInstance{Tg: tg, K: k}
	for c := 0; c < clients; c++ {
		n := 1 + r.Intn(2)
		for j := 0; j < n; j++ {
			start := 1 + r.Intn(tg)
			end := start + r.Intn(tg-start+1)
			inst.Bids = append(inst.Bids, Bid{
				Client: c,
				Index:  j,
				Price:  0.5 + 50*r.Float64(),
				Theta:  0.05 + 0.9*r.Float64(),
				Start:  start,
				End:    end,
				Rounds: 1 + r.Intn(end-start+1),
			})
		}
	}
	return reflect.ValueOf(inst)
}

// TestQuickWDPInvariants drives SolveWDP with generated instances and
// checks the full invariant bundle on every feasible outcome: ILP (6)
// constraints, individual rationality, the Lemma 5 certificate, and
// non-negative duals.
func TestQuickWDPInvariants(t *testing.T) {
	f := func(inst wdpInstance) bool {
		cfg := Config{T: inst.Tg, K: inst.K}
		qual := Qualified(inst.Bids, inst.Tg, cfg)
		res := SolveWDP(inst.Bids, qual, inst.Tg, cfg)
		if !res.Feasible {
			return true
		}
		if err := CheckWDPSolution(inst.Bids, res, cfg); err != nil {
			t.Logf("invalid solution: %v", err)
			return false
		}
		for _, w := range res.Winners {
			if w.Payment < w.Bid.Price-1e-9 {
				t.Logf("IR violated: %v paid %v", w.Bid, w.Payment)
				return false
			}
		}
		d := res.Dual
		if res.Cost > d.RatioBound*d.Objective+1e-6 {
			t.Logf("Lemma 5 violated: P=%v > τ·D=%v", res.Cost, d.RatioBound*d.Objective)
			return false
		}
		if d.TightObjective < -1e-12 || d.Objective < -1e-12 {
			t.Logf("negative dual objective")
			return false
		}
		for _, g := range d.G {
			if g < -1e-12 {
				t.Logf("negative g(t)")
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAuctionInvariants drives the full A_FL enumeration with
// generated instances: the chosen T̂_g must be the cheapest feasible WDP
// and the solution must satisfy every constraint including (6b)/(6h).
func TestQuickAuctionInvariants(t *testing.T) {
	f := func(inst wdpInstance) bool {
		cfg := Config{T: inst.Tg, K: inst.K}
		res, err := RunAuction(inst.Bids, cfg)
		if err != nil {
			t.Logf("unexpected error: %v", err)
			return false
		}
		if !res.Feasible {
			return true
		}
		if err := CheckSolution(inst.Bids, res, cfg); err != nil {
			t.Logf("invalid solution: %v", err)
			return false
		}
		for _, wdp := range res.WDPs {
			if wdp.Feasible && wdp.Cost < res.Cost-1e-9 {
				t.Logf("non-minimal T̂_g chosen")
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
