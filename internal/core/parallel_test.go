package core

import (
	"math"
	"testing"

	"github.com/fedauction/afl/internal/stats"
)

func TestRunAuctionConcurrentMatchesSequential(t *testing.T) {
	rng := stats.NewRNG(515)
	cfg := Config{T: 12, K: 2, TMax: 60}
	for trial := 0; trial < 25; trial++ {
		bids := randomAuctionBids(rng, cfg.T, 14)
		seq, err := RunAuction(bids, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 0} {
			par, err := RunAuctionConcurrent(bids, cfg, workers)
			if err != nil {
				t.Fatal(err)
			}
			if par.Feasible != seq.Feasible {
				t.Fatalf("trial %d workers=%d: feasible %v vs %v", trial, workers, par.Feasible, seq.Feasible)
			}
			if !seq.Feasible {
				continue
			}
			if par.Tg != seq.Tg || math.Abs(par.Cost-seq.Cost) > 1e-12 {
				t.Fatalf("trial %d workers=%d: (T_g, cost) = (%d, %v) vs (%d, %v)",
					trial, workers, par.Tg, par.Cost, seq.Tg, seq.Cost)
			}
			if len(par.Winners) != len(seq.Winners) {
				t.Fatalf("trial %d workers=%d: %d winners vs %d", trial, workers, len(par.Winners), len(seq.Winners))
			}
			for i := range seq.Winners {
				if par.Winners[i].BidIndex != seq.Winners[i].BidIndex ||
					par.Winners[i].Payment != seq.Winners[i].Payment {
					t.Fatalf("trial %d workers=%d: winner %d differs", trial, workers, i)
				}
			}
			if len(par.WDPs) != len(seq.WDPs) {
				t.Fatalf("trial %d workers=%d: WDP trace length %d vs %d",
					trial, workers, len(par.WDPs), len(seq.WDPs))
			}
		}
	}
}

func TestRunAuctionConcurrentValidation(t *testing.T) {
	if _, err := RunAuctionConcurrent(nil, Config{T: 5, K: 1}, 2); err == nil {
		t.Fatal("expected validation error")
	}
	if _, err := RunAuctionConcurrent([]Bid{{Client: 0, Price: 1, Theta: 0.5, Start: 1, End: 2, Rounds: 1}}, Config{T: 0, K: 1}, 2); err == nil {
		t.Fatal("expected config error")
	}
}
