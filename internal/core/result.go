package core

import (
	"fmt"
	"sort"
	"strings"
)

// Winner records one accepted bid together with its schedule and payment.
type Winner struct {
	// BidIndex is the position of the winning bid in the slice passed to
	// the auction.
	BidIndex int
	// Bid is a copy of the winning bid.
	Bid Bid
	// Slots lists the global iterations (1-based, ascending) the client is
	// scheduled to participate in; len(Slots) == Bid.Rounds.
	Slots []int
	// Payment is the critical-value remuneration p_i.
	Payment float64
	// AvgCost is the bid's average cost ρ/R_il(S) at selection time
	// (diagnostic; the greedy selection key).
	AvgCost float64

	// covered lists the slots that were still available (γ_t < K) at
	// selection time — the set F_il of the paper — and phi is the recorded
	// average cost φ(t,l) shared by those slots. Both feed the dual
	// variables.
	covered []int
	phi     float64
}

// Utility returns the winner's utility p_i − v_ij under its true cost.
func (w Winner) Utility() float64 { return w.Payment - w.Bid.Cost() }

// Dual carries the dual variables of LP (8) constructed by A_winner
// (lines 16-23 of Algorithm 2). Its objective value is a lower bound on
// the optimal WDP cost, which makes the pair (primal cost, dual objective)
// a per-instance approximation certificate (Lemma 5).
type Dual struct {
	// Tg is the number of global iterations of the WDP this dual certifies.
	Tg int
	// G holds g(t) for t = 1..Tg at index t-1.
	G []float64
	// Lambda maps a winner's BidIndex to its λ_il value.
	Lambda map[int]float64
	// Omega is ω = max_t ψ_max^t / ψ_min^t (line 18).
	Omega float64
	// HarmonicTg is H_{T̂_g} = Σ_{t=1..T̂_g} 1/t.
	HarmonicTg float64
	// Objective is the dual objective D = Σ_t K·g(t) − Σ λ_il (all q_i = 0),
	// a valid lower bound on the optimal WDP cost.
	Objective float64
	// TightObjective is an instance-tight alternative lower bound: the
	// paper scales the duals by the worst-case 1/(H_{T̂_g}·ω), but on a
	// given instance the largest feasible uniform scale s — the one at
	// which s·η_φ(t) still satisfies every dual constraint with
	// λ = q = 0 — is usually much larger. TightObjective = s·K·Σ_t η_φ(t)
	// is dual-feasible by construction and typically a far stronger bound
	// than Objective.
	TightObjective float64
	// RatioBound is τ = H_{T̂_g}·ω, the proven approximation ratio of
	// A_winner on this instance (Lemma 5).
	RatioBound float64
}

// Bound returns the best (largest) available dual lower bound on the
// optimal WDP cost.
func (d Dual) Bound() float64 {
	if d.TightObjective > d.Objective {
		return d.TightObjective
	}
	return d.Objective
}

// WDPResult is the outcome of A_winner on one winner-determination problem.
type WDPResult struct {
	// Tg is the fixed number of global iterations of this WDP.
	Tg int
	// Feasible reports whether the qualified bids could cover all K·T̂_g
	// participation slots.
	Feasible bool
	// Cost is the social cost Σ ρ_il of the selected schedules.
	Cost float64
	// Winners lists the accepted bids with schedules and payments.
	Winners []Winner
	// Dual is the approximation certificate (valid only when Feasible).
	Dual Dual
	// Rounds is the number of greedy selection rounds A_winner performed.
	Rounds int
	// Skipped marks a candidate an approximate sweep never solved: the
	// entry is a placeholder (Feasible false carries no information) whose
	// bound contribution comes from the capacity certificate instead. The
	// exact sweep never sets it.
	Skipped bool
}

// TotalPayment returns the sum of payments to winners.
func (r WDPResult) TotalPayment() float64 {
	var sum float64
	for _, w := range r.Winners {
		sum += w.Payment
	}
	return sum
}

// Result is the outcome of the full A_FL auction (Algorithm 1).
type Result struct {
	// Feasible reports whether any T̂_g ∈ [T_0, T] admitted a feasible WDP.
	Feasible bool
	// Tg is T_g^*, the chosen number of global iterations.
	Tg int
	// Cost is the minimum social cost across all WDPs.
	Cost float64
	// Winners lists the accepted bids with schedules and payments. The
	// payments honor the configured payment rule: pricing is applied
	// lazily, once, to the selected T̂_g's winners after the sweep picks
	// the argmin, and is bit-identical to pricing every candidate T̂_g
	// eagerly (the pre-lazification behaviour, retained as
	// RunAuctionEager and locked in by the differential suite).
	Winners []Winner
	// Dual is the approximation certificate of the winning WDP.
	Dual Dual
	// WDPs records the per-T̂_g outcome (cost, feasibility) of every WDP
	// A_FL enumerated, in increasing T̂_g order; useful for Fig. 7-style
	// analyses. Allocation data (winner sets, schedules, costs, duals) is
	// exact for every entry, but only the selected T̂_g's entry — whose
	// winner slice Winners aliases — carries rule-adjusted payments;
	// non-selected entries keep the Algorithm 3 payments computed
	// in-greedy, whatever cfg.PaymentRule says. Use Engine.SolveWDP for a
	// fully priced non-selected candidate. Under an approximate solver
	// tier, entries the sweep skipped are placeholders with Skipped set.
	WDPs []WDPResult
	// Cert is the quality certificate of an approximate solver tier
	// (RunOptions.Solver != SolverExact): a lower bound on the
	// full-enumeration optimum and the certified ratio of Cost against
	// it. The exact tier leaves it nil — its per-WDP Lemma 5 dual plays
	// that role — so exact results remain bit-identical to historical
	// builds.
	Cert *Certificate
}

// TotalPayment returns the sum of payments to winners.
func (r Result) TotalPayment() float64 {
	var sum float64
	for _, w := range r.Winners {
		sum += w.Payment
	}
	return sum
}

// ThetaMax returns the maximum local accuracy among the winning bids, or 0
// when there are no winners.
func (r Result) ThetaMax() float64 {
	var max float64
	for _, w := range r.Winners {
		if w.Bid.Theta > max {
			max = w.Bid.Theta
		}
	}
	return max
}

// WinnerByClient returns the winning bid of the given client, if any.
func (r Result) WinnerByClient(client int) (Winner, bool) {
	for _, w := range r.Winners {
		if w.Bid.Client == client {
			return w, true
		}
	}
	return Winner{}, false
}

// String renders a compact human-readable report of the auction outcome.
func (r Result) String() string {
	if !r.Feasible {
		return "auction infeasible: no T̂_g admits full coverage"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "T_g*=%d cost=%.2f payments=%.2f winners=%d ratio≤%.3f\n",
		r.Tg, r.Cost, r.TotalPayment(), len(r.Winners), r.Dual.RatioBound)
	ws := make([]Winner, len(r.Winners))
	copy(ws, r.Winners)
	sort.Slice(ws, func(a, b int) bool { return ws[a].BidIndex < ws[b].BidIndex })
	for _, w := range ws {
		fmt.Fprintf(&sb, "  client %d bid %d: price=%.2f pay=%.2f slots=%v\n",
			w.Bid.Client, w.Bid.Index, w.Bid.Price, w.Payment, w.Slots)
	}
	return sb.String()
}
