package core_test

import (
	"math"
	"reflect"
	"testing"

	"github.com/fedauction/afl/internal/core"
)

// fuzzDecodeBids turns an arbitrary byte stream into a bid population,
// deliberately covering both well-formed and hostile shapes: windows that
// are empty, inverted, or outside [1, T]; Rounds exceeding the window;
// NaN/zero/over-unity θ; negative prices. ValidateBids is the gate under
// test — anything it accepts must survive the full auction pipeline.
func fuzzDecodeBids(data []byte, maxT int) []core.Bid {
	const stride = 9
	n := len(data) / stride
	if n > 32 {
		n = 32
	}
	bids := make([]core.Bid, 0, n)
	for i := 0; i < n; i++ {
		d := data[i*stride : (i+1)*stride]
		b := core.Bid{
			Client: int(d[0] % 12),
			Index:  i,
			Price:  float64(int(d[1])-8) / 4, // occasionally ≤ 0
			Theta:  float64(d[2]) / 200,      // can exceed 1
			Start:  int(d[3]%80) - 8,         // can be < 1 or > T
			End:    int(d[4]%80) - 8,
			Rounds: int(d[5]%12) - 1, // can be ≤ 0 or exceed the window
			// Per-round timing; d[8]&1 flips in NaN θ to probe float guards.
			CompTime: float64(d[6]) / 10,
			CommTime: float64(d[7]) / 10,
		}
		if d[8]&1 == 1 {
			b.Theta = math.NaN()
		}
		b.TrueCost = b.Price
		bids = append(bids, b)
	}
	return bids
}

// FuzzValidateBids drives arbitrary bid populations through the full
// public pipeline. The invariant: ValidateBids either rejects the input,
// or everything downstream — sequential sweep, concurrent sweep, Engine,
// solution checking — completes without panicking, and the three live
// paths agree bit-for-bit.
func FuzzValidateBids(f *testing.F) {
	// One well-formed bid, one empty-window bid, one all-zeros population.
	f.Add([]byte{1, 16, 100, 9, 12, 3, 50, 50, 0}, uint8(12), uint8(2), uint8(0))
	f.Add([]byte{2, 16, 100, 12, 9, 3, 50, 50, 0}, uint8(12), uint8(2), uint8(1))
	f.Add(make([]byte, 27), uint8(8), uint8(1), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, rawT, rawK, rawRule uint8) {
		maxT := int(rawT%64) + 1
		k := int(rawK%8) + 1
		bids := fuzzDecodeBids(data, maxT)
		if err := core.ValidateBids(bids, maxT, k); err != nil {
			return // rejected inputs need no further guarantees
		}
		cfg := core.Config{
			T:              maxT,
			K:              k,
			PaymentRule:    core.PaymentRule(rawRule % 3),
			ExcludeOwnBids: rawRule&4 != 0,
		}
		if rawRule&8 != 0 {
			cfg.ReservePrice = 100
		}
		seq, err := core.RunAuction(bids, cfg)
		if err != nil {
			return // ErrNoBids on empty populations
		}
		if err := core.CheckSolution(bids, seq, cfg); err != nil {
			t.Fatalf("accepted bids produced an invalid solution: %v", err)
		}
		conc, err := core.RunAuctionConcurrent(bids, cfg, 2)
		if err != nil {
			t.Fatalf("concurrent errored where sequential succeeded: %v", err)
		}
		if !reflect.DeepEqual(seq, conc) {
			t.Fatal("concurrent result diverged from sequential")
		}
		eng, err := core.NewEngine(bids, cfg)
		if err != nil {
			t.Fatalf("NewEngine rejected validated bids: %v", err)
		}
		if got := eng.Run(); !reflect.DeepEqual(seq, got) {
			t.Fatal("Engine result diverged from RunAuction")
		}
	})
}
