package core

import "sync"

// wdpScratch is the reusable allocation arena of one A_winner run. The
// seed solver allocated its entire working state — membership maps,
// slot indices, heaps, dual accumulators — afresh for every SolveWDP
// call, i.e. O(I·J) allocations per candidate T̂_g. The scratch arena
// turns all of that into flat slices that persist across calls (via a
// sync.Pool), so a solve only allocates what escapes into its result:
// the winner records, their schedules, and the dual certificate —
// O(winners + T̂_g) instead of O(I·J).
//
// Correct reuse relies on every field being (re)initialized by
// wdpScratch.init before it is read: gamma, the φ/ψ accumulators and the
// per-slot bid lists are reset for t ∈ [1, tg]; m, inC and inG are
// (re)written for exactly the qualified bid indices, which are the only
// indices the solver ever reads (heap entries, slot lists and the
// candidate pruning all range over qualified bids; stale values at
// unqualified indices are dead). Nothing is cleared on release.
type wdpScratch struct {
	// state is the embedded solver state, reused so a solve performs no
	// per-call wdpState allocation.
	state wdpState

	// Indexed by global iteration t−1; capacity grows to the largest tg
	// seen.
	gamma                            []int
	slotBids                         [][]int
	phiMax, phiMin, phiPrime, psiMax []float64

	// slotRows holds borrowed row headers when a solve runs against the
	// auction context's precomputed slot CSR (solveEnv.slotStart). It is
	// deliberately separate from slotBids: those rows are append-grown and
	// reset with [:0], which must never alias the context's immutable CSR
	// storage.
	slotRows [][]int

	// sweepPsi is the incrementally maintained ψ_max column of one sweep
	// segment (see sweepSegment); it outlives individual solves, which
	// borrow prefixes of it read-only via solveEnv.psi.
	sweepPsi []float64

	// Indexed by bid index; capacity grows to the largest bid slice seen.
	m        []int
	inC, inG []bool

	// Greedy selection heaps and the peek restore buffer.
	heapC, heapG entryHeap
	kept         []heapEntry

	// Representative-schedule and tight-dual work buffers.
	cand, avail []int
	top         []float64

	// Class-path state (see classsel.go), indexed by class row. clsInit
	// keeps the first-qualified head position per class, with −1 meaning
	// untouched; the invariant that every entry is −1 at solve entry is
	// maintained by resetting exactly the previous solve's clsTouched
	// list, which keeps the reset O(touched) across pool reuse.
	// filledPrefix is the per-solve filled-slot prefix-sum column
	// (length tg+1); keptCls the class-peek restore buffer.
	clsHeapC, clsHeapG        classHeap
	clsInit, clsCurC, clsCurG []int
	clsTouched                []int
	keptCls                   []classEntry
	filledPrefix              []int

	// chunk backs the winner schedules that escape into Results: slots and
	// covered sub-slices are carved append-only out of one slab instead of
	// one make per winner — the dominant allocation site of a solve.
	// Carved regions are never reused (the offset only advances, and a
	// fresh slab replaces an exhausted one), so escaping sub-slices stay
	// valid for the life of their Result; capacities are clamped so an
	// append on a Result slice copies out instead of stomping a neighbour.
	chunk    []int
	chunkOff int
}

// resultChunkInts is the slab size of the winner-schedule allocator:
// 32 KiB of ints, a few hundred winner schedules per slab at typical
// window widths.
const resultChunkInts = 4096

// allocResult carves n ints off the current slab, starting a fresh slab
// when the remainder is too small. The returned slice has capacity
// exactly n.
func (sc *wdpScratch) allocResult(n int) []int {
	if len(sc.chunk)-sc.chunkOff < n {
		size := resultChunkInts
		if n > size {
			size = n
		}
		sc.chunk = make([]int, size)
		sc.chunkOff = 0
	}
	buf := sc.chunk[sc.chunkOff : sc.chunkOff+n : sc.chunkOff+n]
	sc.chunkOff += n
	return buf
}

var scratchPool = sync.Pool{New: func() any { return new(wdpScratch) }}

// acquireScratch returns a scratch arena sized for nBids bids and a
// horizon of tg iterations. Pair with releaseScratch.
func acquireScratch(nBids, tg int) *wdpScratch {
	sc := scratchPool.Get().(*wdpScratch)
	sc.ensure(nBids, tg)
	return sc
}

// releaseScratch returns the arena to the pool. References held by the
// embedded state are dropped so pooled memory cannot pin a caller's
// bids or results.
func releaseScratch(sc *wdpScratch) {
	sc.state = wdpState{}
	scratchPool.Put(sc)
}

// ensure grows the arena to the requested dimensions, preserving any
// capacity (including the inner slot-list capacity) already acquired.
func (sc *wdpScratch) ensure(nBids, tg int) {
	if len(sc.m) < nBids {
		sc.m = make([]int, nBids)
		sc.inC = make([]bool, nBids)
		sc.inG = make([]bool, nBids)
	}
	if len(sc.gamma) < tg {
		old := sc.slotBids
		sc.slotBids = make([][]int, tg)
		copy(sc.slotBids, old)
		sc.slotRows = make([][]int, tg)
		sc.gamma = make([]int, tg)
		sc.phiMax = make([]float64, tg)
		sc.phiMin = make([]float64, tg)
		sc.phiPrime = make([]float64, tg)
		sc.psiMax = make([]float64, tg)
		sc.sweepPsi = make([]float64, tg)
	}
	if len(sc.filledPrefix) < tg+1 {
		sc.filledPrefix = make([]int, tg+1)
	}
}

// ensureClass grows the class-path arrays to n class rows. Fresh clsInit
// entries start at the −1 sentinel; surviving entries stay under the
// clsTouched reset protocol (see the field comment).
func (sc *wdpScratch) ensureClass(n int) {
	if len(sc.clsInit) >= n {
		return
	}
	sc.clsInit = make([]int, n)
	for i := range sc.clsInit {
		sc.clsInit[i] = -1
	}
	sc.clsCurC = make([]int, n)
	sc.clsCurG = make([]int, n)
	sc.clsTouched = sc.clsTouched[:0]
}
