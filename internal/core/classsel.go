package core

import (
	"math"
	"slices"
	"sync"
)

// Class-based greedy selection: the large-population fast path of the
// T̂_g sweep.
//
// Bids sharing an availability-window shape (start, end, rounds) are
// interchangeable to the greedy except for price: their effective slot
// ranges coincide, so their marginal utilities are equal at every point
// of the run, and the average-cost order within the shape class is
// exactly the (price, bid) order — fixed at compile time. The selection
// heaps therefore need only one entry per CLASS (its head: the cheapest
// member still in the set), not one per bid. For T = 50 there are at
// most Σ_{W=1..50} (51−W)·W = 22 100 shapes, so a million-bid heap
// collapses to a few-thousand-entry heap, and the mass staleness churn
// that dominated per-bid selection (every slot fill invalidates the
// entries of every bid whose window contains the slot) shrinks by the
// same factor: one lazy re-key per affected class instead of one per
// affected bid.
//
// Exactness. The per-bid greedy pops the minimum valid (key, bid) with
// key = price/marginal. Within a class, marginal is uniform, so the
// class head (first member in (price, bid) order that is qualified and
// still in the set) attains the class's minimum (key, bid); the global
// minimum is the minimum over class heads, which is what the class heap
// pops. Stored entries only ever underestimate — keys grow as slots
// fill, and head replacement moves to a member with larger (price, bid)
// — so the same lazy re-key argument as the per-bid heap applies, and
// every pop returns the exact minimum. Selection order, payments and
// duals are bit-identical to the per-bid path; the differential suite
// (seedwdp, eager-serial) and the class/per-bid cross-checks lock this
// in empirically.
//
// The class path is engaged only by the sweep (solveEnv.classes, see
// sweepSegment): pricing probes rewrite a private price column, which
// invalidates the compile-time price order of the class members, and
// session repair pre-commits coverage (base != nil), so both keep the
// fully general per-bid heaps.

// classHolder caches the lazily built classIndex of one compiled
// population. compile attaches a fresh holder, so engine-pool rebuilds
// invalidate the cache; price-view copies (withPrices) drop it to nil
// instead, since the index's price-sorted member order is meaningless
// under a probe's rewritten column.
type classHolder struct {
	once sync.Once
	idx  classIndex
}

// classes returns the population's shape-class index, building it on
// first use (concurrent sweep segments share one build via the holder's
// Once). It returns nil on price views, which must not use the class
// path.
func (s *BidSet) classes() *classIndex {
	h := s.cls
	if h == nil {
		return nil
	}
	h.once.Do(func() { h.idx.build(s) })
	return &h.idx
}

// classIndex groups the population's bids by availability-window shape
// (start, end, rounds), with each class's members sorted by (price, bid)
// — ascending average cost for any shared marginal. Like the sibling
// CSR it covers ALL bids; per-solve qualification is applied by the
// enterTg filter during head scans.
type classIndex struct {
	n int
	// Shape of class c.
	lo, hi, r []int
	// Member CSR: members[memberStart[c]:memberStart[c+1]] lists class
	// c's bids in (price, bid) order.
	memberStart []int
	members     []int
	// classOf[i] is bid i's class row; memberPos[i] its position inside
	// the class's member row.
	classOf, memberPos []int
}

// build derives the index from the compiled columns: shape interning in
// one pass, a counting placement into the member CSR, then one
// (price, bid) sort per class.
func (ci *classIndex) build(s *BidSet) {
	type shape struct{ lo, hi, r int }
	ids := make(map[shape]int)
	ci.classOf = make([]int, s.n)
	for i := 0; i < s.n; i++ {
		sh := shape{s.start[i], s.end[i], s.rounds[i]}
		c, ok := ids[sh]
		if !ok {
			c = len(ids)
			ids[sh] = c
			ci.lo = append(ci.lo, sh.lo)
			ci.hi = append(ci.hi, sh.hi)
			ci.r = append(ci.r, sh.r)
		}
		ci.classOf[i] = c
	}
	ci.n = len(ids)
	ci.memberStart = make([]int, ci.n+1)
	for _, c := range ci.classOf {
		ci.memberStart[c+1]++
	}
	for c := 0; c < ci.n; c++ {
		ci.memberStart[c+1] += ci.memberStart[c]
	}
	ci.members = make([]int, s.n)
	cur := make([]int, ci.n)
	copy(cur, ci.memberStart[:ci.n])
	for i := 0; i < s.n; i++ {
		c := ci.classOf[i]
		ci.members[cur[c]] = i
		cur[c]++
	}
	ci.memberPos = make([]int, s.n)
	for c := 0; c < ci.n; c++ {
		row := ci.members[ci.memberStart[c]:ci.memberStart[c+1]]
		// (price, bid) is a total order (validated prices are finite), so
		// the unstable sort's permutation is deterministic.
		slices.SortFunc(row, func(a, b int) int {
			switch pa, pb := s.price[a], s.price[b]; {
			case pa < pb:
				return -1
			case pa > pb:
				return 1
			}
			return a - b
		})
		for j, b := range row {
			ci.memberPos[b] = j
		}
	}
}

// initClasses builds the class-level selection state for one solve: the
// first-qualified head position per touched class (doubling as the
// class's minimum qualified price for the tight dual), zeroed filled-slot
// prefix sums, cursors, and the two class heaps. The clsInit array
// persists sentinel −1 entries across solves and pool reuse: each solve
// resets exactly the classes the previous one touched, so the reset is
// O(touched), not O(classes).
func (w *wdpState) initClasses(env solveEnv) {
	sc := w.sc
	cls := env.classes
	sc.ensureClass(cls.n)
	for _, c := range sc.clsTouched {
		sc.clsInit[c] = -1
	}
	sc.clsTouched = sc.clsTouched[:0]
	for _, idx := range w.qualified {
		c := cls.classOf[idx]
		p := cls.memberPos[idx]
		if sc.clsInit[c] < 0 {
			sc.clsInit[c] = p
			sc.clsTouched = append(sc.clsTouched, c)
		} else if p < sc.clsInit[c] {
			sc.clsInit[c] = p
		}
	}
	fp := sc.filledPrefix[:w.tg+1]
	for i := range fp {
		fp[i] = 0
	}
	w.filledPrefix = fp
	w.cls = cls
	w.enterTg = env.enterTg
	w.curC = sc.clsCurC
	w.curG = sc.clsCurG
	sc.clsHeapC = sc.clsHeapC[:0]
	sc.clsHeapG = sc.clsHeapG[:0]
	for _, c := range sc.clsTouched {
		pos := sc.clsInit[c]
		w.curC[c] = pos
		w.curG[c] = pos
		head := cls.members[cls.memberStart[c]+pos]
		// A qualified member implies start + rounds − 1 ≤ tg, so the
		// clipped width covers rounds and the class marginal is ≥ 1.
		e, alive := w.classEntryAt(c, head)
		if !alive {
			continue
		}
		sc.clsHeapC = append(sc.clsHeapC, e)
		sc.clsHeapG = append(sc.clsHeapG, e)
	}
	sc.clsHeapC.init()
	sc.clsHeapG.init()
}

// classMembers returns class c's member row ((price, bid) ascending).
func (w *wdpState) classMembers(c int) []int {
	return w.cls.members[w.cls.memberStart[c]:w.cls.memberStart[c+1]]
}

// classShi returns the upper end of class c's rule-effective slot range,
// clipped to the solve horizon — the class-uniform analogue of the shi
// computed per bid by the per-bid init.
func (w *wdpState) classShi(c int) int {
	hi := w.cls.hi[c]
	if hi > w.tg {
		hi = w.tg
	}
	if w.cfg.ScheduleRule == ScheduleEarliest {
		if e := w.cls.lo[c] + w.cls.r[c] - 1; e < hi {
			hi = e
		}
	}
	return hi
}

// classM is the class-uniform m: the number of still-open (γ_t < K)
// iterations in the effective slot range, read from the filled-slot
// prefix sums instead of per-bid decrement bookkeeping.
func (w *wdpState) classM(c int) int {
	lo, shi := w.cls.lo[c], w.classShi(c)
	return (shi - lo + 1) - (w.filledPrefix[shi] - w.filledPrefix[lo-1])
}

// classMarginal is the class-uniform marginal utility min(c_ij, m) (m
// alone under earliest-fit), equal to marginal(b) for every member b.
func (w *wdpState) classMarginal(c int) int {
	m := w.classM(c)
	if w.cfg.ScheduleRule == ScheduleEarliest {
		return m
	}
	if r := w.cls.r[c]; r < m {
		return r
	}
	return m
}

// classEntryAt keys class c under its current head and m; alive is false
// when the class's marginal has hit zero (permanent: m only shrinks).
func (w *wdpState) classEntryAt(c, head int) (classEntry, bool) {
	m := w.classM(c)
	marg := m
	if w.cfg.ScheduleRule != ScheduleEarliest {
		if r := w.cls.r[c]; r < marg {
			marg = r
		}
	}
	if marg <= 0 {
		return classEntry{}, false
	}
	return classEntry{key: w.set.price[head] / float64(marg), head: head, cls: c, mSnap: m}, true
}

// classHead advances cur[c] past members that are unqualified at this
// horizon or permanently removed from the set and returns the head bid,
// or −1 when the class is exhausted. Both skip reasons are permanent
// within one solve, so the cursor only moves forward — O(class size)
// total advancement per solve.
func (w *wdpState) classHead(c int, in []bool, cur []int) int {
	members := w.classMembers(c)
	i := cur[c]
	for i < len(members) {
		if b := members[i]; w.enterTg[b] <= w.tg && in[b] {
			cur[c] = i
			return b
		}
		i++
	}
	cur[c] = i
	return -1
}

// popValidClass pops the minimum (key, head) class entry whose stored
// key, head and m snapshot all match the current state, lazily re-keying
// stale entries — the class-level popValid. Classes whose marginal hits
// zero are dropped (m never grows), exactly as the per-bid heap drops
// zero-marginal entries.
func (w *wdpState) popValidClass(h *classHeap, in []bool, cur []int) (classEntry, bool) {
	for h.Len() > 0 {
		e := h.pop()
		head := w.classHead(e.cls, in, cur)
		if head < 0 {
			continue
		}
		cme, alive := w.classEntryAt(e.cls, head)
		if !alive {
			continue
		}
		if cme != e {
			h.push(cme)
			continue
		}
		return e, true
	}
	return classEntry{}, false
}

// classBest returns the minimum-(price, bid) member of class c at or
// after position from that is qualified, still in the set and not
// skipped, with the class marginal. The cursor is NOT advanced: skipped
// members remain live candidates for later rounds.
func (w *wdpState) classBest(c int, in []bool, from int, skip func(int) bool) (bid, marg int, ok bool) {
	members := w.classMembers(c)
	for i := from; i < len(members); i++ {
		b := members[i]
		if w.enterTg[b] > w.tg || !in[b] {
			continue
		}
		if skip != nil && skip(b) {
			continue
		}
		if mg := w.classMarginal(c); mg > 0 {
			return b, mg, true
		}
		return 0, 0, false
	}
	return 0, 0, false
}

// peekValidClass returns the bid attaining the minimum (key, bid) over
// every valid, non-skipped member reachable from h — plus, when
// seedCls ≥ 0, the seeded class, whose heap entry the caller has already
// consumed (the winner's class during A_payment). All popped entries are
// restored, so the heap is unchanged on return.
//
// Early stop: a stored entry only ever underestimates its class's true
// (key, head), and a class's best non-skipped member is ≥ its head in
// (key, bid), so once the heap top's stored order is ≥ the best
// candidate found, no remaining class can beat it. This returns exactly
// the minimum the per-bid peekValid finds by popping through entries.
func (w *wdpState) peekValidClass(h *classHeap, in []bool, cur []int, skip func(int) bool, seedCls int) (bid, marg int, ok bool) {
	var bestKey float64
	bid = -1
	if seedCls >= 0 {
		if b, mg, found := w.classBest(seedCls, in, cur[seedCls], skip); found {
			bid, marg = b, mg
			bestKey = w.set.price[b] / float64(mg)
		}
	}
	kept := w.sc.keptCls[:0]
	for h.Len() > 0 {
		if bid >= 0 {
			top := (*h)[0]
			if top.key > bestKey || (top.key == bestKey && top.head >= bid) {
				break
			}
		}
		e, popped := w.popValidClass(h, in, cur)
		if !popped {
			break
		}
		kept = append(kept, e)
		if b, mg, found := w.classBest(e.cls, in, cur[e.cls], skip); found {
			key := w.set.price[b] / float64(mg)
			if bid < 0 || key < bestKey || (key == bestKey && b < bid) {
				bid, marg, bestKey = b, mg, key
			}
		}
	}
	for _, e := range kept {
		h.push(e)
	}
	w.sc.keptCls = kept[:0]
	return bid, marg, bid >= 0
}

// selectWinnerClass is selectWinner on the class heaps: identical
// payment, dual and coverage semantics, with the per-bid m decrements
// over slot rows replaced by an O(tg) filled-slot prefix bump and the
// winner's class re-keyed back into the candidate heap under its new
// head.
func (w *wdpState) selectWinnerClass(ce classEntry) {
	idx := ce.head
	slots, avail := w.representativeSchedule(idx)
	r := len(avail) // == classMarginal(ce.cls) by construction
	phi := w.set.price[idx] / float64(r)

	payment := w.criticalPaymentClass(ce, r)

	// Record φ(t, l*) on the newly covered iterations (line 9).
	for _, t := range avail {
		if phi > w.phiMax[t-1] {
			w.phiMax[t-1] = phi
		}
		if phi < w.phiMin[t-1] {
			w.phiMin[t-1] = phi
		}
	}

	// Lines 11-12: the best schedule in the grand set G, which still
	// includes the selected schedule itself at this point.
	if gb, gm, ok := w.peekValidClass(&w.sc.clsHeapG, w.inG, w.curG, nil, -1); ok {
		gphi := w.set.price[gb] / float64(gm)
		for _, t := range w.repAvailable(gb) {
			if gphi < w.phiPrime[t-1] {
				w.phiPrime[t-1] = gphi
			}
		}
	}

	// Lines 13-14: C drops every bid of the winning client; G drops only
	// the selected schedule.
	for _, sib := range w.set.siblings(idx) {
		w.inC[sib] = false
	}
	w.inG[idx] = false

	w.winners = append(w.winners, Winner{
		BidIndex: idx,
		Bid:      w.set.Bid(idx),
		Slots:    slots,
		Payment:  payment,
		AvgCost:  phi,
		covered:  avail,
		phi:      phi,
	})

	// Update coverage; a slot filling up bumps the filled-prefix suffix,
	// which is what every classM reads — no per-bid m bookkeeping.
	for _, t := range slots {
		if w.gamma[t-1] < w.cfg.K {
			w.covered++
		}
		w.gamma[t-1]++
		if w.gamma[t-1] == w.cfg.K {
			for j := t; j <= w.tg; j++ {
				w.filledPrefix[j]++
			}
		}
	}

	// The winner's class re-enters the candidate heap under its new head
	// (the main-loop pop consumed its only entry).
	if head := w.classHead(ce.cls, w.inC, w.curC); head >= 0 {
		if e, alive := w.classEntryAt(ce.cls, head); alive {
			w.sc.clsHeapC.push(e)
		}
	}
}

// criticalPaymentClass is criticalPayment on the class heap. The
// winner's class entry was consumed by the main-loop pop, so its
// remaining members (the winner's siblings and classmates) are seeded
// into the peek explicitly — they are exactly the entries that would
// still sit in a per-bid candidate heap.
func (w *wdpState) criticalPaymentClass(ce classEntry, r int) float64 {
	idx := ce.head
	cli := w.set.client[idx]
	skip := func(other int) bool {
		if other == idx {
			return true
		}
		return w.cfg.ExcludeOwnBids && w.set.client[other] == cli
	}
	if b, mg, ok := w.peekValidClass(&w.sc.clsHeapC, w.inC, w.curC, skip, ce.cls); ok {
		critAvg := w.set.price[b] / float64(mg)
		return float64(r) * critAvg
	}
	return w.set.price[idx]
}

// tightDualClass is tightDualObjective memoized per class: the binding
// constraint Σ of the c_ij largest η_φ values over the clipped window is
// shared by every member of a shape class, and the minimizing member is
// the one with minimum price — the first qualified member in the class's
// (price, bid) order, recorded by initClasses. Division by the shared
// positive worst-sum is monotone and float min is exact and
// order-independent, so the class-wise minimum equals the per-bid
// minimum bit-for-bit.
func (w *wdpState) tightDualClass(k int) float64 {
	var sumEta float64
	for t := 0; t < w.tg; t++ {
		sumEta += w.phiMax[t]
	}
	if sumEta <= 0 {
		return 0
	}
	scale := math.Inf(1)
	top := w.sc.top[:0]
	cls := w.cls
	for _, c := range w.sc.clsTouched {
		lo, hi := cls.lo[c], cls.hi[c]
		if hi > w.tg {
			hi = w.tg
		}
		r := cls.r[c]
		if hi-lo+1 < r {
			continue
		}
		top = top[:0]
		for t := lo; t <= hi; t++ {
			top = append(top, w.phiMax[t-1])
		}
		slices.Sort(top)
		var worst float64
		for i := len(top) - 1; i >= len(top)-r; i-- {
			worst += top[i]
		}
		if worst > 0 {
			minPrice := w.set.price[cls.members[cls.memberStart[c]+w.sc.clsInit[c]]]
			if s := minPrice / worst; s < scale {
				scale = s
			}
		}
	}
	w.sc.top = top[:0]
	if math.IsInf(scale, 1) {
		return 0
	}
	return scale * float64(k) * sumEta
}

// classEntry is one lazily keyed class in the class-level selection
// heaps: the head's average cost and identity plus the class m at push
// time, all three of which serve as the staleness marker.
type classEntry struct {
	key   float64 // head's average cost ρ / R at push time
	head  int     // head bid at push time; the (key, bid) tie-break
	cls   int     // class row
	mSnap int     // class m at push time
}

// classHeap is a min-heap of classEntry ordered by (key, head) — the
// same total order the per-bid entryHeap uses, restricted to heads, so
// the two heaps pop the same global minimum. The operations replicate
// container/heap on the concrete type, exactly as entryHeap does.
type classHeap []classEntry

func (h classHeap) Len() int { return len(h) }
func (h classHeap) Less(a, b int) bool {
	if h[a].key != h[b].key {
		return h[a].key < h[b].key
	}
	return h[a].head < h[b].head
}
func (h classHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }

func (h *classHeap) init() {
	n := h.Len()
	for i := n/2 - 1; i >= 0; i-- {
		h.down(i, n)
	}
}

func (h *classHeap) push(e classEntry) {
	*h = append(*h, e)
	h.up(h.Len() - 1)
}

func (h *classHeap) pop() classEntry {
	n := h.Len() - 1
	h.Swap(0, n)
	h.down(0, n)
	old := *h
	e := old[n]
	*h = old[:n]
	return e
}

func (h *classHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		j = i
	}
}

func (h *classHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h.Less(j2, j1) {
			j = j2 // = 2*i + 2  // right child
		}
		if !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		i = j
	}
}
