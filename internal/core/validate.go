package core

import (
	"fmt"
	"math"
)

// CheckSolution verifies that an auction outcome satisfies every constraint
// of ILP (6). It is used by the test suite and by downstream consumers that
// want a defense-in-depth check before acting on a solution (paying
// clients, launching training).
//
// Checks performed:
//
//	(6a) every iteration t ∈ [1, T_g] has at least K scheduled participants;
//	(6b) T_g ≥ 1/(1−θ_max) over the winners' local accuracies;
//	(6c) every winner is scheduled for exactly c_ij iterations;
//	(6d) every winner's per-round time fits t_max;
//	(6e) every scheduled iteration lies inside the winner's window;
//	(6f) at most one accepted bid per client;
//	plus internal consistency (slots within [1, T_g], no duplicate slots,
//	payments individually rational against claimed prices).
func CheckSolution(bids []Bid, res Result, cfg Config) error {
	if !res.Feasible {
		return nil
	}
	if res.Tg < 1 || res.Tg > cfg.T {
		return fmt.Errorf("core: T_g=%d outside [1,%d]", res.Tg, cfg.T)
	}
	coverage := make([]int, res.Tg)
	clients := make(map[int]bool)
	localIters := cfg.localIters()
	var cost float64
	for _, w := range res.Winners {
		b := w.Bid
		if w.BidIndex < 0 || w.BidIndex >= len(bids) {
			return fmt.Errorf("core: winner bid index %d out of range", w.BidIndex)
		}
		if bids[w.BidIndex] != b {
			return fmt.Errorf("core: winner %s does not match bids[%d]", b, w.BidIndex)
		}
		if clients[b.Client] {
			return fmt.Errorf("core: client %d won more than one bid (6f)", b.Client)
		}
		clients[b.Client] = true
		if len(w.Slots) != b.Rounds {
			return fmt.Errorf("core: %s scheduled %d slots, want c=%d (6c)", b, len(w.Slots), b.Rounds)
		}
		seen := make(map[int]bool, len(w.Slots))
		for _, t := range w.Slots {
			if t < 1 || t > res.Tg {
				return fmt.Errorf("core: %s scheduled at t=%d outside [1,%d]", b, t, res.Tg)
			}
			if seen[t] {
				return fmt.Errorf("core: %s scheduled twice at t=%d", b, t)
			}
			seen[t] = true
			if t < b.Start || t > b.End {
				return fmt.Errorf("core: %s scheduled at t=%d outside window [%d,%d] (6e)", b, t, b.Start, b.End)
			}
			coverage[t-1]++
		}
		if thr := 1 / (1 - b.Theta); float64(res.Tg) < thr-1e-9 {
			return fmt.Errorf("core: winner %s needs T_g ≥ %.3f, got %d (6b)", b, thr, res.Tg)
		}
		if cfg.TMax > 0 {
			if pt := b.PerRoundTime(localIters); pt > cfg.TMax+1e-9 {
				return fmt.Errorf("core: winner %s per-round time %.3f exceeds t_max=%.3f (6d)", b, pt, cfg.TMax)
			}
		}
		if w.Payment < b.Price-1e-9 {
			return fmt.Errorf("core: winner %s paid %.4f below its price %.4f", b, w.Payment, b.Price)
		}
		cost += b.Price
	}
	for t := 1; t <= res.Tg; t++ {
		if coverage[t-1] < cfg.K {
			return fmt.Errorf("%w: iteration %d has %d participants, want ≥ %d (6a)", ErrUnderCoverage, t, coverage[t-1], cfg.K)
		}
	}
	if math.Abs(cost-res.Cost) > 1e-6*(1+math.Abs(cost)) {
		return fmt.Errorf("core: reported cost %.6f differs from recomputed %.6f", res.Cost, cost)
	}
	return nil
}

// CheckWDPSolution verifies a single WDP outcome against the fixed-T̂_g
// constraints (everything in CheckSolution except the T_g choice itself).
func CheckWDPSolution(bids []Bid, wdp WDPResult, cfg Config) error {
	if !wdp.Feasible {
		return nil
	}
	res := Result{Feasible: true, Tg: wdp.Tg, Cost: wdp.Cost, Winners: wdp.Winners, Dual: wdp.Dual}
	// A WDP is solved for a fixed T̂_g that may exceed nothing; reuse the
	// full checker with T widened to the WDP horizon.
	wide := cfg
	if wide.T < wdp.Tg {
		wide.T = wdp.Tg
	}
	return CheckSolution(bids, res, wide)
}
