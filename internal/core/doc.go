// Package core implements the A_FL procurement auction of
//
//	Zhou, Pang, Wang, Lui, Li. "A Truthful Procurement Auction for
//	Incentivizing Heterogeneous Clients in Federated Learning." ICDCS 2021.
//
// The auction is a reverse auction: a cloud server (the buyer) procures
// participation in a federated-learning job from mobile clients (the
// sellers). Each client submits up to J bids; a bid names a claimed cost, a
// local accuracy θ, an availability window of global iterations, and a
// number of participation rounds. The server must jointly decide
//
//   - T_g, the number of global iterations (coupled to the maximum local
//     accuracy among winners via T_g ≥ 1/(1−θ_max), Eq. (1) of the paper),
//   - which bids win (at most one per client, ILP (6)),
//   - how to schedule each winner's rounds so every global iteration has at
//     least K participants, and
//   - truthful critical-value payments.
//
// The entry point is RunAuction (Algorithm 1, A_FL). It enumerates T̂_g,
// filters the qualified bid set for each candidate value, and solves the
// resulting winner-determination problem with SolveWDP (Algorithm 2,
// A_winner), which also produces the dual variables (g(t), λ, ω, H_{T̂_g})
// that certify the approximation ratio of Lemma 5 and serve as a lower
// bound on the WDP optimum. Payments follow the critical-value rule of
// Algorithm 3 (A_payment).
package core
