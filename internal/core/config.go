package core

import "fmt"

// Config carries the auction-wide parameters of ILP (6).
type Config struct {
	// T is the maximum number of global iterations the server allows.
	T int
	// K is the number of participants required in every global iteration
	// (constraint (6a)).
	K int
	// TMax is t_max, the wall-clock budget of a single global iteration
	// (constraint (6d)). Zero disables the check.
	TMax float64
	// LocalIters maps θ to local-iteration counts. Nil selects
	// PaperLocalIters, the simplified form used in the paper's evaluation.
	LocalIters LocalIterFunc
	// PaymentRule selects the payment computation. The zero value,
	// RuleCritical, is the paper's Algorithm 3.
	PaymentRule PaymentRule
	// ReservePrice, when positive, disqualifies bids whose claimed price
	// exceeds it and caps every payment at it. A reserve is what makes
	// RuleExactCritical exactly truthful even for "essential" bids (bids
	// that would win at any price and therefore have no finite critical
	// value): such winners are paid the bid-independent reserve. Zero
	// disables the reserve, matching the paper.
	ReservePrice float64
	// ScheduleRule selects how a bid's representative schedule is formed.
	// The zero value, ScheduleLeastCovered, is the paper's rule.
	ScheduleRule ScheduleRule
	// ExcludeOwnBids controls the critical-value payment rule. The paper's
	// Algorithm 3 picks the second-smallest average cost among *all*
	// remaining candidate schedules except the selected one; with
	// ExcludeOwnBids set, the winner's own other bids are also excluded so
	// a multi-minded client can never set its own critical price.
	ExcludeOwnBids bool
}

// localIters returns the configured local-iteration function or the
// paper's default.
func (c Config) localIters() LocalIterFunc {
	if c.LocalIters != nil {
		return c.LocalIters
	}
	return PaperLocalIters
}

// Validate checks the configuration parameters.
func (c Config) Validate() error {
	if c.T < 1 {
		return fmt.Errorf("core: config T=%d must be ≥ 1", c.T)
	}
	if c.K < 1 {
		return fmt.Errorf("core: config K=%d must be ≥ 1", c.K)
	}
	if c.TMax < 0 {
		return fmt.Errorf("core: config TMax=%g must be ≥ 0", c.TMax)
	}
	if c.ReservePrice < 0 {
		return fmt.Errorf("core: config ReservePrice=%g must be ≥ 0", c.ReservePrice)
	}
	switch c.PaymentRule {
	case RuleCritical, RuleExactCritical, RulePayBid:
	default:
		return fmt.Errorf("core: unknown payment rule %d", c.PaymentRule)
	}
	switch c.ScheduleRule {
	case ScheduleLeastCovered, ScheduleEarliest:
	default:
		return fmt.Errorf("core: unknown schedule rule %d", c.ScheduleRule)
	}
	return nil
}
