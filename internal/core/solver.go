package core

import "fmt"

// Solver selects the winner-determination strategy of a full A_FL sweep.
// The zero value is the exact greedy enumeration — every candidate T̂_g
// solved with A_winner, bit-identical to the historical behaviour — so
// existing callers are untouched. The approximate tiers trade candidate
// coverage for speed and return a certified Certificate alongside the
// result, bounding how far the reported cost can be from what the full
// exact enumeration would have returned.
type Solver int

const (
	// SolverExact solves every candidate T̂_g ∈ [T_0, T] with A_winner
	// and selects the argmin — Algorithm 1 exactly. No certificate is
	// attached (Result.Cert stays nil): the exact path carries its
	// per-WDP Lemma 5 dual instead and pays zero certificate overhead.
	SolverExact Solver = iota
	// SolverCoarseFine solves every k-th candidate T̂_g (the coarse
	// pass, stride adapted to the observed cost curvature), then refines
	// around the coarse argmin until its immediate neighbours are solved.
	// The ψ_max column and the shared scratch arena warm-start every
	// solve exactly as in the exact sweep. Stride 1 degenerates to the
	// exact sweep bit-for-bit, with a certificate attached.
	SolverCoarseFine
	// SolverLPRound runs the coarse-to-fine pass and then solves the
	// column-generation LP relaxation at the selected T̂_g
	// (RunOptions.LP), rounding the fractional solution to a feasible
	// cover that is adopted when it beats the greedy cover — the one tier
	// that can return a CHEAPER cover than the exact sweep. Without an
	// LP hook installed it degrades to SolverCoarseFine's behaviour
	// (the facade, batch scheduler and market daemon always install one).
	SolverLPRound
)

// String returns the solver's wire name, used by the market WAL and the
// benchmark artifacts. The exact tier's name is "exact"; an empty wire
// string parses back to it (see ParseSolver).
func (s Solver) String() string {
	switch s {
	case SolverExact:
		return "exact"
	case SolverCoarseFine:
		return "coarse-fine"
	case SolverLPRound:
		return "lp-round"
	default:
		return "unknown"
	}
}

// ParseSolver maps a wire name back to its Solver. The empty string
// parses to SolverExact so omitted fields of historical WAL records and
// JSON payloads keep their pre-solver meaning.
func ParseSolver(name string) (Solver, error) {
	switch name {
	case "", "exact":
		return SolverExact, nil
	case "coarse-fine":
		return SolverCoarseFine, nil
	case "lp-round":
		return SolverLPRound, nil
	}
	return SolverExact, fmt.Errorf("core: unknown solver %q", name)
}

// Certificate is the quality certificate of an approximate sweep: a
// lower bound on what the FULL exact enumeration would have returned —
// min over every T̂_g ∈ [T_0, T] of the A_winner cost at that T̂_g, the
// value SolverExact computes — so Result.Cost / LowerBound bounds the
// loss of skipping candidates against the bit-identical exact reference.
//
// The bound takes, for every candidate T̂_g, a valid lower bound on its
// A_winner cost and then the minimum over candidates:
//
//   - a SOLVED feasible candidate contributes its exact cost — the
//     approximate tiers re-use the exact per-T̂_g solver, so the value
//     is the exact sweep's own (an adopted LP-rounded cover contributes
//     its smaller cost, still a valid lower bound on the greedy cover it
//     beat); a solved infeasible candidate contributes nothing, since
//     the exact sweep has no cover there either;
//   - a SKIPPED candidate contributes the capacity bound capLB(T̂_g):
//     every feasible cover must buy at least K·T̂_g participation
//     rounds from the bids qualified at T̂_g, and relaxing the
//     one-bid-per-client and per-slot structure to a fractional knapsack
//     over rounds lower-bounds OPT(T̂_g) ≤ A_winner(T̂_g) without
//     solving anything.
//
// The sweep tightens the bound toward a fixed target ratio by greedily
// solving the skipped candidates whose capacity bound binds the minimum
// (see the tightening loop in sweepApprox); a stride-1 coarse-to-fine
// run solves everything and certifies Ratio == 1 exactly.
type Certificate struct {
	// Solver identifies the tier that produced the result.
	Solver Solver
	// LowerBound is the certified lower bound on the exact sweep's cost
	// (min over all candidate T̂_g of the A_winner cost).
	LowerBound float64
	// Ratio is Result.Cost / LowerBound — the certified approximation
	// ratio of the reported cover against the exact sweep (+Inf when no
	// positive bound exists).
	Ratio float64
	// Solved counts the candidate T̂_g values actually solved;
	// Candidates is the full enumeration size T − T_0 + 1.
	Solved, Candidates int
	// Converged reports that the LP pricing loop proved LP optimality at
	// the selected T̂_g (SolverLPRound only).
	Converged bool
}

// LPColumn is one fractional schedule of an LP relaxation solution, as
// handed back by an LPCertifier for rounding: bid index, its scheduled
// iterations (ascending) and the fractional activation z ∈ (0, 1].
type LPColumn struct {
	Bid   int
	Slots []int
	Value float64
}

// LPOutcome is what an LPCertifier reports for one WDP: a valid lower
// bound on the optimal WDP cost at that T̂_g plus the fractional columns
// of the final restricted master, for LP-guided rounding.
type LPOutcome struct {
	// Valid is false when the certifier could not produce a bound (the
	// caller then keeps the coarse-to-fine certificate).
	Valid bool
	// Converged reports that pricing proved the bound is the exact LP
	// optimum rather than a Lagrangian relaxation bound.
	Converged bool
	// LowerBound is the certified lower bound on OPT(T̂_g).
	LowerBound float64
	// Columns are the positive-valued columns of the final master
	// solution, for rounding. May be empty.
	Columns []LPColumn
}

// LPCertifier computes an LP lower bound for one winner-determination
// problem over the compiled columnar population. It is a hook rather
// than a direct dependency so the core solver does not import the
// column-generation package (which itself builds on core); the colgen
// package provides the canonical implementation and every public entry
// point (facade, batch scheduler, market daemon) installs it. seed is
// the greedy solution at tg — feasible by construction — which the
// certifier uses as its initial column set.
type LPCertifier interface {
	CertifyWDP(set *BidSet, qualified []int, tg int, cfg Config, seed WDPResult) LPOutcome
}
