package core

import (
	"context"
	"errors"
	"math"
	"testing"
)

// exactPaymentFixture solves one WDP and bisects the exact critical
// payment of its first winner, returning the winner, payment and probe
// count. It drives the unexported search directly so the fixtures below
// can use zero-price bids, which ValidateBids rejects at the public
// boundary.
func exactPaymentFixture(t *testing.T, ctx context.Context, bids []Bid, tg int, cfg Config) (Winner, float64, int) {
	t.Helper()
	qualified := Qualified(bids, tg, cfg)
	set := CompileBids(bids)
	sc := acquireScratch(set.Len(), tg)
	res := solveWDP(set, qualified, tg, cfg, sc, nil, solveEnv{})
	releaseScratch(sc)
	if !res.Feasible || len(res.Winners) == 0 {
		t.Fatalf("fixture WDP infeasible: %+v", res)
	}
	pr := newPricer(set, tg)
	defer pr.release()
	pay, probes, err := exactCriticalPayment(ctx, set, qualified, tg, cfg, solveEnv{}, nil, res.Winners[0], pr)
	if ctx.Err() == nil && err != nil {
		t.Fatalf("exactCriticalPayment: %v", err)
	}
	if ctx.Err() != nil {
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("canceled context: err = %v, want ErrCanceled", err)
		}
		return res.Winners[0], 0, probes
	}
	return res.Winners[0], pay, probes
}

// TestExactCriticalZeroPriceWinner pins the zero-price-winner fix: the
// old search doubled hi starting from the winner's own price, so a
// zero-price winner's bracket never grew — 48 probes at price 0, then the
// Algorithm 3 fallback (here 0, since a zero-price competitor remains)
// instead of the true critical value. The positive doubling floor finds
// it: client 2's 6-priced bid is the schedule that would replace the
// winner once it out-prices slot 2's residual competition.
func TestExactCriticalZeroPriceWinner(t *testing.T) {
	bids := []Bid{
		{Client: 0, Price: 0, Theta: 0.5, Start: 1, End: 2, Rounds: 2},
		{Client: 1, Price: 0, Theta: 0.5, Start: 1, End: 1, Rounds: 1},
		{Client: 2, Price: 6, Theta: 0.5, Start: 1, End: 2, Rounds: 2},
	}
	cfg := Config{T: 2, K: 1, PaymentRule: RuleExactCritical}
	win, pay, probes := exactPaymentFixture(t, context.Background(), bids, 2, cfg)
	if win.BidIndex != 0 || win.Payment != 0 {
		t.Fatalf("fixture winner = bid %d with A3 payment %v, want bid 0 at 0", win.BidIndex, win.Payment)
	}
	if math.Abs(pay-6) > 1e-6 {
		t.Fatalf("critical payment = %v, want 6 (the price at which client 2 takes slot 2)", pay)
	}
	if probes >= 64 {
		t.Fatalf("search used %d probes; the doubling floor should find the bracket in a handful", probes)
	}
}

// TestExactCriticalSeedEarlyExit pins the bracket seeding: when the
// Algorithm 3 payment is the exact critical value (two full-window bids
// competing for the same slots), the search must confirm it with exactly
// three probes — own price, the seed, one tolerance step above — and
// return the seed bit-for-bit, instead of opening a blind doubling
// bracket and bisecting.
func TestExactCriticalSeedEarlyExit(t *testing.T) {
	bids := []Bid{
		{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 2, Rounds: 2},
		{Client: 1, Price: 10, Theta: 0.5, Start: 1, End: 2, Rounds: 2},
	}
	cfg := Config{T: 2, K: 1, PaymentRule: RuleExactCritical}
	win, pay, probes := exactPaymentFixture(t, context.Background(), bids, 2, cfg)
	if win.BidIndex != 0 || win.Payment != 10 {
		t.Fatalf("fixture winner = bid %d with A3 payment %v, want bid 0 at 10", win.BidIndex, win.Payment)
	}
	if pay != 10 {
		t.Fatalf("critical payment = %v, want exactly 10 (the confirmed seed)", pay)
	}
	if probes != 3 {
		t.Fatalf("search used %d probes, want exactly 3 (price, seed, seed+step)", probes)
	}
}

// TestExactCriticalCanceledContext verifies the bisection honors a
// canceled context before its first probe, reporting ErrCanceled.
func TestExactCriticalCanceledContext(t *testing.T) {
	bids := []Bid{
		{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 2, Rounds: 2},
		{Client: 1, Price: 10, Theta: 0.5, Start: 1, End: 2, Rounds: 2},
	}
	cfg := Config{T: 2, K: 1, PaymentRule: RuleExactCritical}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, probes := exactPaymentFixture(t, ctx, bids, 2, cfg)
	if probes != 0 {
		t.Fatalf("canceled context consumed %d probes, want 0", probes)
	}
}
