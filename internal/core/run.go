package core

import (
	"context"
	"runtime"
	"time"

	"github.com/fedauction/afl/internal/obs"
)

// RunOptions configures one execution of the A_FL sweep. The zero value
// runs sequentially, uninstrumented — exactly the historical RunAuction
// behaviour.
type RunOptions struct {
	// Workers selects the fan-out of the independent per-T̂_g
	// winner-determination solves and, under RuleExactCritical, of the
	// per-winner pricing bisections on the selected T̂_g: 0 or 1 runs
	// inline on the calling goroutine; n > 1 uses n workers (clamped to
	// the number of tasks of each stage); n < 0 selects GOMAXPROCS.
	// Every setting returns bit-identical results.
	Workers int
	// Observer receives structured phase events (sweep start, per-T̂_g
	// solves, the exact-critical pricing stage, winners, payments,
	// completion). Nil disables instrumentation entirely: the hot path
	// then performs no timing calls and no additional allocations. With
	// Workers > 1 the observer must be safe for concurrent use and
	// per-T̂_g / per-winner events arrive in worker completion order.
	Observer obs.Observer
	// Now supplies timestamps for phase latencies. Nil selects time.Now.
	// Ignored when Observer is nil; inject a deterministic source for
	// golden-testing traces.
	Now func() time.Time
}

// ClampWorkers is the single place worker counts are validated: negative
// requests select GOMAXPROCS, and the result is clamped to [1, tasks] so
// a pool never spawns more goroutines than it has tasks. The sweep, the
// pricing stage and the cross-auction batch scheduler all resolve their
// widths through it.
func ClampWorkers(workers, tasks int) int {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > tasks {
		workers = tasks
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// sweep executes the full T̂_g enumeration honoring ctx and opts. It is
// the one implementation behind RunAuction, RunAuctionConcurrent,
// Engine.Run, Engine.RunConcurrent and Engine.RunCtx. A nil error means
// the sweep ran to completion (the result may still be infeasible); the
// only error is cancellation, in which case partial work is abandoned
// and an ErrCanceled-wrapping error is returned.
func (ax *auctionContext) sweep(ctx context.Context, o RunOptions) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	obsv := o.Observer
	now := o.Now
	if obsv != nil && now == nil {
		now = time.Now
	}
	var start time.Time
	if obsv != nil {
		start = now()
		obsv.Observe(obs.Event{
			Kind: obs.EvAuctionStarted, Tg: ax.cfg.T, Round: ax.t0,
			Client: -1, Bid: -1, Value: float64(len(ax.bids)),
		})
	}
	res := Result{}
	if n := ax.cfg.T - ax.t0 + 1; n > 0 {
		var err error
		if workers := ClampWorkers(o.Workers, n); workers == 1 {
			err = ax.sweepSeq(ctx, &res, obsv, now)
		} else {
			err = ax.sweepPar(ctx, &res, workers, obsv, now)
		}
		if err != nil {
			return Result{}, err
		}
	}
	if err := ax.priceChosen(ctx, &res, o.Workers, obsv, now); err != nil {
		return Result{}, err
	}
	if obsv != nil {
		for _, w := range res.Winners {
			obsv.Observe(obs.Event{
				Kind: obs.EvWinnerAccepted, Tg: res.Tg, Client: w.Bid.Client,
				Bid: w.BidIndex, Value: w.Bid.Price, OK: true,
			})
			obsv.Observe(obs.Event{
				Kind: obs.EvPaymentComputed, Tg: res.Tg, Client: w.Bid.Client,
				Bid: w.BidIndex, Value: w.Payment, OK: true,
			})
		}
		obsv.Observe(obs.Event{
			Kind: obs.EvAuctionDone, Tg: res.Tg, Client: -1, Bid: -1,
			Value: res.Cost, OK: res.Feasible, Dur: now().Sub(start),
		})
	}
	return res, nil
}

// priceChosen is the sweep's lazy payment stage: it applies the payment
// rule to the winners of the selected T̂_g only, after the enumeration
// picked the argmin. Non-selected entries of res.WDPs keep the Algorithm 3
// payments solveWDP computed in-greedy. res.Winners aliases the chosen
// WDP's winner slice, so committing payments through the WDP updates both
// views. Pricing fans out over the same worker budget as the sweep.
func (ax *auctionContext) priceChosen(ctx context.Context, res *Result, workers int, obsv obs.Observer, now func() time.Time) error {
	if !res.Feasible {
		return nil
	}
	wdp := &res.WDPs[res.Tg-ax.t0]
	return priceWinners(ctx, ax.bids, ax.qualifiedAt(res.Tg), res.Tg, ax.cfg, ax.clientBids, nil, wdp, workers, obsv, now)
}

// sweepSeq is the sequential incremental sweep: one pooled scratch
// arena, one shared context, qualification by prefix extension.
// Cancellation is checked between solves, so a canceled context abandons
// the remaining candidates without tearing down a solve midway.
func (ax *auctionContext) sweepSeq(ctx context.Context, res *Result, obsv obs.Observer, now func() time.Time) error {
	sc := acquireScratch(len(ax.bids), ax.cfg.T)
	defer releaseScratch(sc)
	for tg := ax.t0; tg <= ax.cfg.T; tg++ {
		if ctx.Err() != nil {
			return canceledErr(ctx)
		}
		var t0 time.Time
		if obsv != nil {
			t0 = now()
		}
		wdp := solveWDP(ax.bids, ax.qualifiedAt(tg), tg, ax.cfg, sc, ax.clientBids, nil)
		if obsv != nil {
			obsv.Observe(obs.Event{
				Kind: obs.EvWDPSolved, Tg: tg, Client: -1, Bid: -1,
				Value: wdp.Cost, OK: wdp.Feasible, Dur: now().Sub(t0),
			})
		}
		res.WDPs = append(res.WDPs, wdp)
		if !wdp.Feasible {
			continue
		}
		if !res.Feasible || wdp.Cost < res.Cost {
			res.Feasible = true
			res.Tg = wdp.Tg
			res.Cost = wdp.Cost
			res.Winners = wdp.Winners
			res.Dual = wdp.Dual
		}
	}
	return nil
}
