package core

import (
	"context"
	"runtime"
	"time"

	"github.com/fedauction/afl/internal/obs"
)

// RunOptions configures one execution of the A_FL sweep. The zero value
// runs sequentially, uninstrumented — exactly the historical RunAuction
// behaviour.
type RunOptions struct {
	// Workers selects the fan-out of the independent per-T̂_g
	// winner-determination solves and, under RuleExactCritical, of the
	// per-winner pricing bisections on the selected T̂_g: 0 or 1 runs
	// inline on the calling goroutine; n > 1 uses n workers (clamped to
	// the number of tasks of each stage); n < 0 selects GOMAXPROCS.
	// Every setting returns bit-identical results.
	Workers int
	// Observer receives structured phase events (sweep start, per-T̂_g
	// solves, the exact-critical pricing stage, winners, payments,
	// completion). Nil disables instrumentation entirely: the hot path
	// then performs no timing calls and no additional allocations. With
	// Workers > 1 the observer must be safe for concurrent use and
	// per-T̂_g / per-winner events arrive in worker completion order.
	Observer obs.Observer
	// Now supplies timestamps for phase latencies. Nil selects time.Now.
	// Ignored when Observer is nil; inject a deterministic source for
	// golden-testing traces.
	Now func() time.Time
	// Solver selects the sweep strategy (see Solver). The zero value is
	// the exact enumeration; the approximate tiers skip candidates and
	// attach a Certificate to the result. Approximate sweeps run their
	// candidate walk sequentially — the coarse set is chosen online from
	// preceding solves — but Workers still fans out the pricing stage.
	Solver Solver
	// Stride is the base coarse stride of the approximate tiers: solve
	// every Stride-th candidate, adapting to the observed cost curvature.
	// Zero selects the default (4). Stride 1 solves every candidate —
	// bit-identical to the exact sweep, with a certificate attached.
	Stride int
	// LP is the column-generation hook of SolverLPRound. Nil degrades
	// that tier to SolverCoarseFine's certificate; the facade, batch
	// scheduler and market daemon always install the colgen implementation.
	LP LPCertifier
}

// ClampWorkers is the single place worker counts are validated: negative
// requests select GOMAXPROCS, and the result is clamped to [1, tasks] so
// a pool never spawns more goroutines than it has tasks. The sweep, the
// pricing stage and the cross-auction batch scheduler all resolve their
// widths through it.
func ClampWorkers(workers, tasks int) int {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > tasks {
		workers = tasks
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// sweep executes the full T̂_g enumeration honoring ctx and opts. It is
// the one implementation behind RunAuction, RunAuctionConcurrent,
// Engine.Run, Engine.RunConcurrent and Engine.RunCtx. A nil error means
// the sweep ran to completion (the result may still be infeasible); the
// only error is cancellation, in which case partial work is abandoned
// and an ErrCanceled-wrapping error is returned.
func (ax *auctionContext) sweep(ctx context.Context, o RunOptions) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	obsv := o.Observer
	now := o.Now
	if obsv != nil && now == nil {
		now = time.Now
	}
	var start time.Time
	if obsv != nil {
		start = now()
		obsv.Observe(obs.Event{
			Kind: obs.EvAuctionStarted, Tg: ax.cfg.T, Round: ax.t0,
			Client: -1, Bid: -1, Value: float64(ax.set.n),
		})
	}
	res := Result{}
	if n := ax.cfg.T - ax.t0 + 1; n > 0 {
		var err error
		if o.Solver != SolverExact {
			err = ax.sweepApprox(ctx, &res, o, obsv, now)
		} else if workers := ClampWorkers(o.Workers, n); workers == 1 {
			err = ax.sweepSeq(ctx, &res, obsv, now)
		} else {
			err = ax.sweepPar(ctx, &res, workers, obsv, now)
		}
		if err != nil {
			return Result{}, err
		}
	}
	if err := ax.priceChosen(ctx, &res, o.Workers, obsv, now); err != nil {
		return Result{}, err
	}
	if obsv != nil {
		for _, w := range res.Winners {
			obsv.Observe(obs.Event{
				Kind: obs.EvWinnerAccepted, Tg: res.Tg, Client: w.Bid.Client,
				Bid: w.BidIndex, Value: w.Bid.Price, OK: true,
			})
			obsv.Observe(obs.Event{
				Kind: obs.EvPaymentComputed, Tg: res.Tg, Client: w.Bid.Client,
				Bid: w.BidIndex, Value: w.Payment, OK: true,
			})
		}
		obsv.Observe(obs.Event{
			Kind: obs.EvAuctionDone, Tg: res.Tg, Client: -1, Bid: -1,
			Value: res.Cost, OK: res.Feasible, Dur: now().Sub(start),
		})
	}
	return res, nil
}

// priceChosen is the sweep's lazy payment stage: it applies the payment
// rule to the winners of the selected T̂_g only, after the enumeration
// picked the argmin. Non-selected entries of res.WDPs keep the Algorithm 3
// payments solveWDP computed in-greedy. res.Winners aliases the chosen
// WDP's winner slice, so committing payments through the WDP updates both
// views. Pricing fans out over the same worker budget as the sweep.
func (ax *auctionContext) priceChosen(ctx context.Context, res *Result, workers int, obsv obs.Observer, now func() time.Time) error {
	if !res.Feasible {
		return nil
	}
	wdp := &res.WDPs[res.Tg-ax.t0]
	// Pricing probes rewrite bid prices, so the env carries the slot CSR
	// (price-independent) but never a ψ column.
	return priceWinners(ctx, ax.set, ax.qualifiedAt(res.Tg), res.Tg, ax.cfg, ax.env(), nil, wdp, workers, obsv, now)
}

// sweepSegment solves the contiguous candidate range T̂_g ∈ [lo, hi] into
// out[0 : hi-lo+1], with out[tg-lo] receiving the solve for tg. It is the
// unit of work of both the sequential sweep (one segment spanning
// [T_0, T]) and the sharded parallel sweep (one segment per worker, see
// sweepPar). Each segment owns one pooled scratch arena — no state is
// shared between concurrent segments except the read-only context and
// disjoint halves of out, so there is nothing to false-share.
//
// Under the paper's least-covered rule the segment maintains the ψ_max
// column incrementally across its ascending T̂_g: extending the horizon
// by one slot adds column maxima only for the new slot (its CSR row,
// filtered to already-qualified bids) and for the windows of the bids
// entering at the new T̂_g. Both updates may overlap; max is idempotent
// and order-independent, so the column is bit-identical to the per-solve
// accumulation it replaces, at amortized O(row + entrant windows) instead
// of O(Σ qualified windows) per T̂_g. Under ScheduleEarliest ψ ranges
// over the availability window while slots cover only the earliest-fit
// range, so the per-solve accumulation is kept.
//
// Cancellation is checked between solves, so a canceled context abandons
// the remaining candidates without tearing down a solve midway.
func (ax *auctionContext) sweepSegment(ctx context.Context, lo, hi int, out []WDPResult, obsv obs.Observer, now func() time.Time) error {
	return ax.sweepSegmentMask(ctx, lo, hi, out, nil, obsv, now)
}

// sweepSegmentMask is sweepSegment with a candidate filter: pick(tg)
// decides, per ascending candidate, whether the WDP at tg is solved or
// skipped. The ψ_max column is maintained across EVERY candidate of the
// range — maintenance is O(slot row + entrant windows) per step, far
// cheaper than a solve — so the solves that do run are bit-identical to
// the ones the unmasked sweep would have produced at the same tg. A
// skipped candidate leaves (or installs) a Skipped placeholder in out;
// an entry already carrying a solve from a previous pass is never
// overwritten by a skip, which is what lets the approximate tiers
// re-walk a range to refine only its unsolved candidates. nil pick
// solves everything — the exact sweep.
func (ax *auctionContext) sweepSegmentMask(ctx context.Context, lo, hi int, out []WDPResult, pick func(tg int) bool, obsv obs.Observer, now func() time.Time) error {
	set := ax.set
	sc := acquireScratch(set.n, hi)
	defer releaseScratch(sc)
	env := ax.env()
	// Engage the class-based selection fast path (classsel.go): the
	// sweep's solves share one compile-time class index, and — unlike
	// the pricing probes, which rewrite prices — never invalidate its
	// (price, bid) member order. The index is built once per population
	// (concurrent segments share it through the holder's Once) and is
	// reused by every auction warm-started on the same BidSet.
	if cls := set.classes(); cls != nil {
		env.classes = cls
		env.enterTg = ax.enterTg
	}
	var psi []float64
	if ax.cfg.ScheduleRule == ScheduleLeastCovered {
		// Seed the column for the segment's first horizon: ψ over the
		// clipped windows of everything qualified at lo.
		psi = sc.sweepPsi[:hi]
		for t := range psi[:lo] {
			psi[t] = 0
		}
		for _, idx := range ax.qualifiedAt(lo) {
			p := set.price[idx]
			wlo, whi := set.start[idx], set.end[idx]
			if whi > lo {
				whi = lo
			}
			for t := wlo; t <= whi; t++ {
				if p > psi[t-1] {
					psi[t-1] = p
				}
			}
		}
		env.psi = psi
	}
	for tg := lo; tg <= hi; tg++ {
		if tg > lo && psi != nil {
			// New slot tg: its maximum over already-qualified bids comes
			// from the precomputed CSR row, filtered by entry point.
			psi[tg-1] = 0
			for _, idx := range ax.slotRow(tg) {
				if ax.enterTg[idx] <= tg {
					if p := set.price[idx]; p > psi[tg-1] {
						psi[tg-1] = p
					}
				}
			}
			// Bids entering at tg: fold their clipped windows in.
			for _, idx := range ax.qualOrder[ax.qualCount[tg-1]:ax.qualCount[tg]] {
				p := set.price[idx]
				wlo, whi := set.start[idx], set.end[idx]
				if whi > tg {
					whi = tg
				}
				for t := wlo; t <= whi; t++ {
					if p > psi[t-1] {
						psi[t-1] = p
					}
				}
			}
		}
		if ctx.Err() != nil {
			return canceledErr(ctx)
		}
		if pick != nil && !pick(tg) {
			if out[tg-lo].Tg == 0 {
				out[tg-lo] = WDPResult{Tg: tg, Skipped: true}
			}
			continue
		}
		var t0 time.Time
		if obsv != nil {
			t0 = now()
		}
		wdp := solveWDP(set, ax.qualifiedAt(tg), tg, ax.cfg, sc, nil, env)
		if obsv != nil {
			obsv.Observe(obs.Event{
				Kind: obs.EvWDPSolved, Tg: tg, Client: -1, Bid: -1,
				Value: wdp.Cost, OK: wdp.Feasible, Dur: now().Sub(t0),
			})
		}
		out[tg-lo] = wdp
	}
	return nil
}

// reduceWDPs installs the per-T̂_g results and selects the argmin-cost
// feasible candidate, scanning in ascending T̂_g order so ties keep the
// smallest T̂_g — the same selection the incremental argmin of the
// historical sequential sweep made.
func reduceWDPs(res *Result, wdps []WDPResult) {
	res.WDPs = wdps
	for i := range wdps {
		wdp := &wdps[i]
		if !wdp.Feasible {
			continue
		}
		if !res.Feasible || wdp.Cost < res.Cost {
			res.Feasible = true
			res.Tg = wdp.Tg
			res.Cost = wdp.Cost
			res.Winners = wdp.Winners
			res.Dual = wdp.Dual
		}
	}
}

// sweepSeq is the sequential incremental sweep: one segment spanning the
// whole candidate range.
func (ax *auctionContext) sweepSeq(ctx context.Context, res *Result, obsv obs.Observer, now func() time.Time) error {
	wdps := make([]WDPResult, ax.cfg.T-ax.t0+1)
	if err := ax.sweepSegment(ctx, ax.t0, ax.cfg.T, wdps, obsv, now); err != nil {
		return err
	}
	reduceWDPs(res, wdps)
	return nil
}
