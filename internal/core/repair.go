package core

import (
	"context"
	"fmt"
	"time"

	"github.com/fedauction/afl/internal/obs"
)

// RepairRequest describes a mid-session coverage repair: some winners
// dropped out after iterations already ran, and the caller wants the
// missing per-iteration coverage bought back from the losing bids.
type RepairRequest struct {
	// Tg is the session's committed number of global iterations (the
	// T̂_g the original auction selected). Must lie in [1, cfg.T].
	Tg int
	// From is the first iteration (1-based) replacements may serve.
	// Iterations before From are history; the caller should mark them
	// satisfied in Base (≥ K), since no replacement can re-run them.
	From int
	// Base[t-1] is the coverage iteration t already has from surviving
	// winners. Length must be Tg; entries must be non-negative.
	Base []int
	// Exclude bars clients from promotion: current and former winners
	// (they are already committed or already failed) and any client the
	// caller no longer trusts.
	Exclude map[int]bool
}

// RepairResult is the outcome of Engine.Repair.
type RepairResult struct {
	// Feasible reports whether a replacement set restoring full coverage
	// K on every iteration in [From, Tg] exists.
	Feasible bool
	// Cost is the total claimed price of the promoted schedules.
	Cost float64
	// Winners are the promoted replacements. BidIndex refers to the
	// engine's original bid slice; Bid carries the residual window that
	// was actually awarded (clamped to [From, Tg]); Slots ⊆ [From, Tg];
	// Payment is the critical value in the residual market, so the
	// re-award inherits the truthfulness of the original mechanism.
	Winners []Winner
	// Deficit lists the iterations (1-based, ≥ From) short of K under
	// Base alone — the rounds that run under-covered when no repair
	// exists.
	Deficit []int
}

// Repair runs a critical-value-consistent re-award on the residual
// market left by mid-session dropouts. It clamps every non-excluded
// bid's availability window to [From, Tg], re-qualifies the clamped
// population, and solves the winner-determination problem with the
// surviving coverage pre-committed, so the greedy buys exactly the
// missing coverage at minimum average cost and pays critical values in
// that residual market. The engine's bid slice and shared context are
// never mutated; Repair is safe for concurrent use like every other
// Engine method.
func (e *Engine) Repair(req RepairRequest) (RepairResult, error) {
	return e.RepairCtx(context.Background(), req, RunOptions{})
}

// RepairCtx is Repair honoring ctx and opts: under RuleExactCritical the
// residual solve's payments go through the same lazy pricing stage as the
// sweep (fanned over opts.Workers, canceled mid-bisection with an
// ErrCanceled-wrapping error, reported through the pricing events). An
// unset opts.Observer falls back to the engine's attached observer, as in
// RunCtx.
func (e *Engine) RepairCtx(ctx context.Context, req RepairRequest, opts RunOptions) (RepairResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := e.ax.cfg
	set := e.ax.set
	if req.Tg < 1 || req.Tg > cfg.T {
		return RepairResult{}, fmt.Errorf("core: repair Tg=%d outside [1,%d]", req.Tg, cfg.T)
	}
	if req.From < 1 || req.From > req.Tg {
		return RepairResult{}, fmt.Errorf("core: repair From=%d outside [1,%d]", req.From, req.Tg)
	}
	if len(req.Base) != req.Tg {
		return RepairResult{}, fmt.Errorf("core: repair base has %d entries, want %d", len(req.Base), req.Tg)
	}
	res := RepairResult{}
	for t := req.From; t <= req.Tg; t++ {
		g := req.Base[t-1]
		if g < 0 {
			return RepairResult{}, fmt.Errorf("core: repair base[%d]=%d is negative", t-1, g)
		}
		if g < cfg.K {
			res.Deficit = append(res.Deficit, t)
		}
	}
	if len(res.Deficit) == 0 {
		res.Feasible = true // nothing to buy: the survivors still cover K
		return res, nil
	}
	// Instrumentation: a repair is "triggered" once a real deficit exists.
	// The observer (per-call, falling back to the engine's attached one)
	// also times the residual solve; the hooks vanish when neither is set.
	obsv := opts.Observer
	now := opts.Now
	if obsv == nil {
		obsv = e.obsv
		if now == nil {
			now = e.now
		}
	}
	var start time.Time
	if obsv != nil {
		if now == nil {
			now = time.Now
		}
		start = now()
		obsv.Observe(obs.Event{
			Kind: obs.EvRepairTriggered, Tg: req.Tg, Round: req.From,
			Client: -1, Bid: -1, Value: float64(len(res.Deficit)),
		})
		defer func() {
			obsv.Observe(obs.Event{
				Kind: obs.EvRepairDone, Tg: req.Tg, Round: req.From,
				Client: -1, Bid: -1, Value: res.Cost, OK: res.Feasible,
				Dur: now().Sub(start),
			})
		}()
	}

	// Build the residual bid population: losing bids clamped to the
	// remaining horizon. Rounds caps to the clamped window so the bids
	// stay internally valid.
	residual := make([]Bid, 0, set.Len())
	orig := make([]int, 0, set.Len())
	for idx := 0; idx < set.Len(); idx++ {
		b := set.Bid(idx)
		if req.Exclude[b.Client] {
			continue
		}
		lo, hi := b.Start, b.End
		if lo < req.From {
			lo = req.From
		}
		if hi > req.Tg {
			hi = req.Tg
		}
		if lo > hi {
			continue // window entirely in the past or beyond the horizon
		}
		rb := b
		rb.Start, rb.End = lo, hi
		if n := hi - lo + 1; rb.Rounds > n {
			rb.Rounds = n
		}
		residual = append(residual, rb)
		orig = append(orig, idx)
	}
	if len(residual) == 0 {
		return res, nil
	}
	qualified := Qualified(residual, req.Tg, cfg)
	if len(qualified) == 0 {
		return res, nil
	}
	rset := CompileBids(residual)
	sc := acquireScratch(rset.Len(), req.Tg)
	defer releaseScratch(sc)
	wdp := solveWDP(rset, qualified, req.Tg, cfg, sc, req.Base, solveEnv{})
	if !wdp.Feasible {
		return res, nil
	}
	// Lazy payment stage on the residual market, before the winner indices
	// are remapped (the bisection probes index the residual population).
	if err := priceWinners(ctx, rset, qualified, req.Tg, cfg, solveEnv{}, req.Base, &wdp, opts.Workers, obsv, now); err != nil {
		return RepairResult{}, err
	}
	res.Feasible = true
	res.Cost = wdp.Cost
	res.Winners = wdp.Winners
	for i := range res.Winners {
		// Map back to the auction's bid slice; the Bid field keeps the
		// clamped window that was actually awarded.
		res.Winners[i].BidIndex = orig[res.Winners[i].BidIndex]
	}
	return res, nil
}
