package core

import (
	"reflect"
	"sync"
)

// Engine pooling for cross-auction throughput. A one-shot NewEngine pays
// the full precomputation allocation — the columnar compile, the
// qualification order, the slot CSR — on every auction. A batch layer
// solving thousands of instances per second would spend most of its
// cycles re-growing those structures, so AcquireEngine hands out engines
// whose backing arenas are recycled through shape-keyed sync.Pools: a
// released arena keeps every slice it has grown, and the next acquisition
// of a similar shape rebuilds qualification into that capacity with close
// to zero fresh allocation.
//
// Pools are keyed by the instance's shape class — bid count and horizon
// rounded up to powers of two — so wildly different instance sizes do not
// churn each other's arenas, while instances of one traffic class (the
// common case for a production auction service) share a hot pool.
//
// On top of the shape pools sits cross-auction warm-starting
// (ReacquireEngineSet): when consecutive instances of a batch share one
// *BidSet and an equivalent Config, the rebind skips validation and the
// entire context rebuild — the adjacent instance's qualification order,
// entry points and slot rows are reused as-is, so re-running a million-bid
// population under the same market rules costs nothing between solves.

// engineArena bundles a reusable Engine with the auction context it wraps
// and the columnar store backing the []Bid compat path. All three are
// recycled together.
type engineArena struct {
	eng Engine
	ax  auctionContext
	// ownSet is the arena-owned columnar store that []Bid acquisitions
	// compile into; BidSet acquisitions bypass it and bind the caller's
	// set directly.
	ownSet BidSet
	shape  shapeKey
}

// shapeKey is an arena pool key: the power-of-two capacity class of the
// bid population and of the iteration horizon.
type shapeKey struct {
	bids, t int
}

func shapeOf(nBids, T int) shapeKey {
	return shapeKey{bids: ceilPow2(nBids), t: ceilPow2(T)}
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// enginePools maps shapeKey -> *sync.Pool of *engineArena.
var enginePools sync.Map

func poolFor(k shapeKey) *sync.Pool {
	if p, ok := enginePools.Load(k); ok {
		return p.(*sync.Pool)
	}
	p, _ := enginePools.LoadOrStore(k, &sync.Pool{New: func() any { return &engineArena{shape: k} }})
	return p.(*sync.Pool)
}

// AcquireEngine validates the bid population and returns a pooled Engine
// for it. It is semantically identical to NewEngine — every method of the
// returned engine yields bit-identical results — but the bids are
// compiled into a recycled columnar arena and the qualification
// structures rebuilt into recycled capacity, so steady-state batch
// traffic acquires engines almost allocation-free. Call Release when the
// engine (and every Result obtained from it) no longer needs the shared
// qualification order; the arena then returns to its pool.
//
// The engine retains the bid slice until Release, and must not be used
// after Release (reuse would race with the next acquirer's rebuild).
func AcquireEngine(bids []Bid, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ValidateBids(bids, cfg.T, cfg.K); err != nil {
		return nil, err
	}
	ar := poolFor(shapeOf(len(bids), cfg.T)).Get().(*engineArena)
	ar.bind(bids, cfg)
	return &ar.eng, nil
}

// AcquireEngineSet is AcquireEngine for a pre-compiled population: the
// caller's BidSet is bound directly (no compile, no copy) and retained
// until the next Reacquire or Release.
func AcquireEngineSet(set *BidSet, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ValidateBidSet(set, cfg.T, cfg.K); err != nil {
		return nil, err
	}
	ar := poolFor(shapeOf(set.n, cfg.T)).Get().(*engineArena)
	ar.bindSet(set, cfg)
	return &ar.eng, nil
}

// bind compiles bids into the arena's own columnar store and rebuilds the
// context around it.
func (ar *engineArena) bind(bids []Bid, cfg Config) {
	ar.ownSet.compile(bids)
	ar.ax.rebuild(&ar.ownSet, cfg)
	ar.eng = Engine{ax: &ar.ax, arena: ar}
}

// bindSet rebuilds the context around a caller-owned BidSet.
func (ar *engineArena) bindSet(set *BidSet, cfg Config) {
	ar.ax.rebuild(set, cfg)
	ar.eng = Engine{ax: &ar.ax, arena: ar}
}

// ReacquireEngine rebinds a previously acquired engine to a new instance,
// recompiling and rebuilding into the arena it already holds when the
// shape class matches. This is the worker-local fast path of the batch
// layer: a worker that keeps its engine across same-class auctions never
// touches the pool between instances, so a GC cycle mid-batch — which is
// free to flush pooled arenas — cannot force it back to full
// reconstruction. A nil prev, an arena-less prev (NewEngine), or a shape
// mismatch falls back to Release + AcquireEngine. On a validation error
// prev is released and the returned engine is nil, so the idiomatic
// `eng, err = ReacquireEngine(eng, ...)` never leaks an arena.
//
// Like AcquireEngine, the returned engine retains bids until the next
// Reacquire or Release, and prev must not be used after the call (its
// arena now backs the returned engine).
func ReacquireEngine(prev *Engine, bids []Bid, cfg Config) (*Engine, error) {
	var ar *engineArena
	if prev != nil {
		ar = prev.arena
	}
	if ar == nil || ar.shape != shapeOf(len(bids), cfg.T) {
		prev.Release()
		return AcquireEngine(bids, cfg)
	}
	if err := cfg.Validate(); err != nil {
		prev.Release()
		return nil, err
	}
	if err := ValidateBids(bids, cfg.T, cfg.K); err != nil {
		prev.Release()
		return nil, err
	}
	ar.bind(bids, cfg)
	return &ar.eng, nil
}

// ReacquireEngineSet rebinds a previously acquired engine to a new
// columnar instance. Its fast path is the cross-auction warm start: when
// prev is already bound to the same *BidSet under an equivalent Config,
// the population was validated and its context derived on the first
// acquisition and neither depends on anything else, so the rebind returns
// prev unchanged — no validation, no rebuild, every precomputed structure
// (entry points, qualification order, slot CSR) carried over to seed the
// next instance's sweep. Otherwise it behaves like ReacquireEngine with
// the columnar validation path.
func ReacquireEngineSet(prev *Engine, set *BidSet, cfg Config) (*Engine, error) {
	var ar *engineArena
	if prev != nil {
		ar = prev.arena
	}
	if ar != nil && ar.ax.set == set && cfgEqualForReuse(ar.ax.cfg, cfg) {
		return prev, nil
	}
	if ar == nil || ar.shape != shapeOf(set.n, cfg.T) {
		prev.Release()
		return AcquireEngineSet(set, cfg)
	}
	if err := cfg.Validate(); err != nil {
		prev.Release()
		return nil, err
	}
	if err := ValidateBidSet(set, cfg.T, cfg.K); err != nil {
		prev.Release()
		return nil, err
	}
	ar.bindSet(set, cfg)
	return &ar.eng, nil
}

// cfgEqualForReuse reports whether two configs derive identical auction
// contexts, i.e. whether a warm-started engine may skip its rebuild. All
// scalar fields must match exactly; the LocalIters hooks must both be nil
// or be the same function (compared by code pointer — a conservative
// test: distinct closures over identical behaviour just take the rebuild
// path).
func cfgEqualForReuse(a, b Config) bool {
	if a.T != b.T || a.K != b.K || a.TMax != b.TMax ||
		a.PaymentRule != b.PaymentRule || a.ReservePrice != b.ReservePrice ||
		a.ScheduleRule != b.ScheduleRule || a.ExcludeOwnBids != b.ExcludeOwnBids {
		return false
	}
	if (a.LocalIters == nil) != (b.LocalIters == nil) {
		return false
	}
	return a.LocalIters == nil ||
		reflect.ValueOf(a.LocalIters).Pointer() == reflect.ValueOf(b.LocalIters).Pointer()
}

// Release returns the engine's arena to its shape pool. It is a no-op on
// a nil engine, on engines built by NewEngine and on Observe copies (only
// the engine handed out by AcquireEngine owns the arena). The arena drops
// its BidSet reference so pooled memory never pins caller data; the grown
// column and qualification capacity is what the pool exists to keep.
func (e *Engine) Release() {
	if e == nil {
		return
	}
	ar := e.arena
	if ar == nil {
		return
	}
	e.arena = nil
	ar.ax.set = nil
	poolFor(ar.shape).Put(ar)
}
