package core

import "sync"

// Engine pooling for cross-auction throughput. A one-shot NewEngine pays
// the full qualification precomputation allocation — the delta lists, the
// client grouping map, the sorted qualification order — on every auction.
// A batch layer solving thousands of instances per second would spend
// most of its cycles re-growing those structures, so AcquireEngine hands
// out engines whose backing arenas are recycled through shape-keyed
// sync.Pools: a released arena keeps every slice and map it has grown,
// and the next acquisition of a similar shape rebuilds qualification into
// that capacity with close to zero fresh allocation.
//
// Pools are keyed by the instance's shape class — bid count and horizon
// rounded up to powers of two — so wildly different instance sizes do not
// churn each other's arenas, while instances of one traffic class (the
// common case for a production auction service) share a hot pool.

// engineArena bundles a reusable Engine with the auction context it wraps
// and the construction scratch the context rebuild needs. All three are
// recycled together.
type engineArena struct {
	eng   Engine
	ax    auctionContext
	enter [][]int
	shape shapeKey
}

// shapeKey is an arena pool key: the power-of-two capacity class of the
// bid population and of the iteration horizon.
type shapeKey struct {
	bids, t int
}

func shapeOf(nBids, T int) shapeKey {
	return shapeKey{bids: ceilPow2(nBids), t: ceilPow2(T)}
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// enginePools maps shapeKey -> *sync.Pool of *engineArena.
var enginePools sync.Map

func poolFor(k shapeKey) *sync.Pool {
	if p, ok := enginePools.Load(k); ok {
		return p.(*sync.Pool)
	}
	p, _ := enginePools.LoadOrStore(k, &sync.Pool{New: func() any { return &engineArena{shape: k} }})
	return p.(*sync.Pool)
}

// AcquireEngine validates the bid population and returns a pooled Engine
// for it. It is semantically identical to NewEngine — every method of the
// returned engine yields bit-identical results — but the qualification
// structures are rebuilt into a recycled arena, so steady-state batch
// traffic acquires engines almost allocation-free. Call Release when the
// engine (and every Result obtained from it) no longer needs the shared
// qualification order; the arena then returns to its pool.
//
// The engine retains the bid slice until Release, and must not be used
// after Release (reuse would race with the next acquirer's rebuild).
func AcquireEngine(bids []Bid, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ValidateBids(bids, cfg.T, cfg.K); err != nil {
		return nil, err
	}
	ar := poolFor(shapeOf(len(bids), cfg.T)).Get().(*engineArena)
	ar.enter = ar.ax.rebuild(bids, cfg, ar.enter)
	ar.eng = Engine{ax: &ar.ax, arena: ar}
	return &ar.eng, nil
}

// ReacquireEngine rebinds a previously acquired engine to a new instance,
// rebuilding qualification into the arena it already holds when the shape
// class matches. This is the worker-local fast path of the batch layer: a
// worker that keeps its engine across same-class auctions never touches
// the pool between instances, so a GC cycle mid-batch — which is free to
// flush pooled arenas — cannot force it back to full reconstruction. A
// nil prev, an arena-less prev (NewEngine), or a shape mismatch falls
// back to Release + AcquireEngine. On a validation error prev is released
// and the returned engine is nil, so the idiomatic
// `eng, err = ReacquireEngine(eng, ...)` never leaks an arena.
//
// Like AcquireEngine, the returned engine retains bids until the next
// Reacquire or Release, and prev must not be used after the call (its
// arena now backs the returned engine).
func ReacquireEngine(prev *Engine, bids []Bid, cfg Config) (*Engine, error) {
	var ar *engineArena
	if prev != nil {
		ar = prev.arena
	}
	if ar == nil || ar.shape != shapeOf(len(bids), cfg.T) {
		prev.Release()
		return AcquireEngine(bids, cfg)
	}
	if err := cfg.Validate(); err != nil {
		prev.Release()
		return nil, err
	}
	if err := ValidateBids(bids, cfg.T, cfg.K); err != nil {
		prev.Release()
		return nil, err
	}
	ar.enter = ar.ax.rebuild(bids, cfg, ar.enter)
	ar.eng = Engine{ax: &ar.ax, arena: ar}
	return &ar.eng, nil
}

// Release returns the engine's arena to its shape pool. It is a no-op on
// a nil engine, on engines built by NewEngine and on Observe copies (only
// the engine handed out by AcquireEngine owns the arena). The arena drops
// its bid slice reference so pooled memory never pins caller data; the
// grown qualification capacity is what the pool exists to keep.
func (e *Engine) Release() {
	if e == nil {
		return
	}
	ar := e.arena
	if ar == nil {
		return
	}
	e.arena = nil
	ar.ax.bids = nil
	poolFor(ar.shape).Put(ar)
}
