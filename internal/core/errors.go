package core

import (
	"context"
	"errors"
	"fmt"
)

// Exported error sentinels unify the error surface of the auction stack.
// Every layer (core solver, networked platform, public facade) returns
// errors that match these with errors.Is, so callers branch on outcome
// classes instead of string-matching messages. ErrNoBids (bid.go)
// completes the set.
var (
	// ErrInfeasible reports that no T̂_g ∈ [T_0, T] admits K participants
	// in every global iteration. Engine.RunCtx (and the afl.Run facade)
	// return it alongside a Result that still carries the per-T̂_g WDP
	// outcomes for diagnosis.
	ErrInfeasible = errors.New("core: auction infeasible: no T̂_g admits full coverage")

	// ErrCanceled reports that a sweep was abandoned mid-flight because
	// its context was done. The returned error also wraps the context's
	// cause, so errors.Is(err, context.Canceled) (or DeadlineExceeded)
	// works too.
	ErrCanceled = errors.New("core: sweep canceled")

	// ErrUnderCoverage marks an outcome in which some global iteration
	// has fewer than K participants: a solution failing constraint (6a)
	// in CheckSolution, or a degraded session round on the platform.
	ErrUnderCoverage = errors.New("core: iteration coverage below K")
)

// canceledErr wraps ErrCanceled around the context's cause so both
// sentinels match under errors.Is.
func canceledErr(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
}
