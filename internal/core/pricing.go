package core

import (
	"context"
	"sync"
	"time"

	"github.com/fedauction/afl/internal/obs"
)

// pricer bundles the per-worker state of an exact-critical pricing pass:
// one pooled scratch arena serving every probe solve, one probe view of
// the market's BidSet with a private price column (each bisection probe
// rewrites only the priced winner's own entry, restored when the winner
// is done — every other column and the sibling index stay shared), and
// one reusable qualification buffer for the ExcludeOwnBids sibling
// pruning. A pricer is single-goroutine state; concurrent workers each
// hold their own.
type pricer struct {
	sc    *wdpScratch
	probe *BidSet
	qual  []int
}

// newPricer returns a pricer for the given market, with the probe price
// column populated. Pair with release.
func newPricer(set *BidSet, tg int) *pricer {
	price := make([]float64, set.n)
	copy(price, set.price)
	return &pricer{
		sc:    acquireScratch(set.n, tg),
		probe: set.withPrices(price),
		qual:  make([]int, 0, set.n),
	}
}

// release returns the pricer's scratch arena to the pool.
func (pr *pricer) release() { releaseScratch(pr.sc) }

// priceWinners is the lazy payment stage: it applies cfg.PaymentRule to
// the winners of one already-solved WDP — the selected T̂_g of a sweep,
// or a repair's residual solve — instead of pricing every candidate T̂_g
// eagerly. RuleCritical is a no-op (Algorithm 3 payments are computed
// in-greedy); RulePayBid rewrites payments in place; RuleExactCritical
// fans the per-winner bisections of exactCriticalPayment over a clamped
// worker pool (the winners are independent markets-with-one-price-moved,
// so they parallelize perfectly) and emits obs pricing events.
//
// Payments are staged and committed only when every winner priced, so a
// canceled context returns an ErrCanceled-wrapping error with res
// untouched. workers follows the ClampWorkers convention; obsv/now follow
// the sweep convention (nil observer disables instrumentation entirely,
// nil now with a live observer selects time.Now).
func priceWinners(ctx context.Context, set *BidSet, qualified []int, tg int, cfg Config, env solveEnv, base []int, res *WDPResult, workers int, obsv obs.Observer, now func() time.Time) error {
	if !res.Feasible || len(res.Winners) == 0 {
		return nil
	}
	switch cfg.PaymentRule {
	case RulePayBid:
		for i := range res.Winners {
			res.Winners[i].Payment = res.Winners[i].Bid.Price
		}
		return nil
	case RuleExactCritical:
		// The instrumented bisection stage below.
	default:
		return nil
	}
	n := len(res.Winners)
	workers = ClampWorkers(workers, n)
	var start time.Time
	if obsv != nil {
		if now == nil {
			now = time.Now
		}
		start = now()
		obsv.Observe(obs.Event{
			Kind: obs.EvPricingStarted, Tg: tg, Round: workers,
			Client: -1, Bid: -1, Value: float64(n),
		})
	}
	pays := make([]float64, n)
	var err error
	if workers == 1 {
		err = priceSeq(ctx, set, qualified, tg, cfg, env, base, res.Winners, pays, obsv, now)
	} else {
		err = pricePar(ctx, set, qualified, tg, cfg, env, base, res.Winners, pays, workers, obsv, now)
	}
	if err != nil {
		if obsv != nil {
			obsv.Observe(obs.Event{
				Kind: obs.EvPricingDone, Tg: tg, Client: -1, Bid: -1,
				OK: false, Dur: now().Sub(start),
			})
		}
		return err
	}
	var total float64
	for i := range res.Winners {
		res.Winners[i].Payment = pays[i]
		total += pays[i]
	}
	if obsv != nil {
		obsv.Observe(obs.Event{
			Kind: obs.EvPricingDone, Tg: tg, Client: -1, Bid: -1,
			Value: total, OK: true, Dur: now().Sub(start),
		})
	}
	return nil
}

// priceSeq bisects every winner inline on the calling goroutine with one
// pricer. Cancellation is honored mid-bisection by exactCriticalPayment.
func priceSeq(ctx context.Context, set *BidSet, qualified []int, tg int, cfg Config, env solveEnv, base []int, winners []Winner, pays []float64, obsv obs.Observer, now func() time.Time) error {
	pr := newPricer(set, tg)
	defer pr.release()
	for i := range winners {
		var t0 time.Time
		if obsv != nil {
			t0 = now()
		}
		pay, probes, err := exactCriticalPayment(ctx, set, qualified, tg, cfg, env, base, winners[i], pr)
		if err != nil {
			return err
		}
		pays[i] = pay
		if obsv != nil {
			obsv.Observe(obs.Event{
				Kind: obs.EvWinnerPriced, Tg: tg, Round: probes,
				Client: winners[i].Bid.Client, Bid: winners[i].BidIndex,
				Value: pay, OK: true, Dur: now().Sub(t0),
			})
		}
	}
	return nil
}

// pricePar fans the per-winner bisections over a worker pool, mirroring
// sweepPar: each worker holds one pricer, a canceled context makes the
// feeder stop handing out winners and the workers drain the channel
// without solving, and no goroutine outlives the call. workers has
// already been clamped to [1, len(winners)]. Per-winner events arrive in
// worker completion order.
func pricePar(ctx context.Context, set *BidSet, qualified []int, tg int, cfg Config, env solveEnv, base []int, winners []Winner, pays []float64, workers int, obsv obs.Observer, now func() time.Time) error {
	var wg sync.WaitGroup
	next := make(chan int)
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pr := newPricer(set, tg)
			defer pr.release()
			for i := range next {
				if ctx.Err() != nil {
					continue // canceled: drain the queue without solving
				}
				var t0 time.Time
				if obsv != nil {
					t0 = now()
				}
				pay, probes, err := exactCriticalPayment(ctx, set, qualified, tg, cfg, env, base, winners[i], pr)
				if err != nil {
					continue // canceled mid-bisection; keep draining
				}
				pays[i] = pay
				if obsv != nil {
					obsv.Observe(obs.Event{
						Kind: obs.EvWinnerPriced, Tg: tg, Round: probes,
						Client: winners[i].Bid.Client, Bid: winners[i].BidIndex,
						Value: pay, OK: true, Dur: now().Sub(t0),
					})
				}
			}
		}()
	}
feed:
	for i := 0; i < len(winners); i++ {
		select {
		case next <- i:
		case <-done:
			break feed
		}
	}
	close(next)
	wg.Wait()
	if ctx.Err() != nil {
		return canceledErr(ctx)
	}
	return nil
}

// RunAuctionEager is RunAuction with eager payment application: every
// candidate T̂_g's WDP is fully priced under cfg.PaymentRule, serially,
// as the pre-lazification sweep did. It is the retained eager-serial
// reference that the differential suite and cmd/benchcore hold the lazy
// pricing path to — the selected T̂_g's winners and payments must be
// bit-identical between the two. Production callers should use the
// afl.Run facade (or Engine.RunCtx), which prices only the selected T̂_g.
func RunAuctionEager(bids []Bid, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := ValidateBids(bids, cfg.T, cfg.K); err != nil {
		return Result{}, err
	}
	set := CompileBids(bids)
	ax := newAuctionContext(set, cfg)
	res := Result{}
	if ax.cfg.T-ax.t0+1 <= 0 {
		return res, nil
	}
	sc := acquireScratch(set.n, ax.cfg.T)
	defer releaseScratch(sc)
	for tg := ax.t0; tg <= ax.cfg.T; tg++ {
		qualified := ax.qualifiedAt(tg)
		wdp := solveWDP(set, qualified, tg, ax.cfg, sc, nil, ax.env())
		applyPaymentRule(set, qualified, tg, ax.cfg, ax.env(), nil, &wdp)
		res.WDPs = append(res.WDPs, wdp)
		if !wdp.Feasible {
			continue
		}
		if !res.Feasible || wdp.Cost < res.Cost {
			res.Feasible = true
			res.Tg = wdp.Tg
			res.Cost = wdp.Cost
			res.Winners = wdp.Winners
			res.Dual = wdp.Dual
		}
	}
	return res, nil
}
