package core

import (
	"fmt"
	"math"
	"slices"
)

// BidSet is the columnar (struct-of-arrays) form of a bid population: one
// flat parallel slice per bid field, plus a client-sibling index computed
// once at compile time. It is the storage layout of the WDP hot path —
// qualification scans, ψ_max accumulation and the greedy selection loop
// read one column at a time instead of striding over 96-byte Bid structs,
// which keeps million-bid scans cache-linear.
//
// A BidSet is immutable after CompileBids and safe to share: across the
// worker pool of one sweep, across the instances of a batch (see
// Instance.Set in internal/batch), and across the durable market's
// submissions. Compile once, solve everywhere — the row-oriented []Bid
// entry points remain as thin compat wrappers that compile on entry and
// return bit-identical results.
//
// Column values are exact copies of the source fields, so the round trip
// Bid(i) == bids[i] holds field-for-field for every input, including
// non-finite floats and out-of-range windows (validation is a separate
// concern; see ValidateBidSet).
type BidSet struct {
	n int

	// Float columns.
	price, trueCost, theta, comp, comm []float64
	// Int columns.
	start, end, rounds, client, index []int

	// Client-sibling grouping as a CSR: sibOrder lists every bid index
	// grouped by client (groups ascending by client id, indices ascending
	// inside a group), sibStart[r]..sibStart[r+1] delimits group r, and
	// sibRow[i] is bid i's group row. It replaces the map[int][]int
	// client grouping of the row-oriented engine. Like that grouping it
	// covers ALL bids, qualified or not: clearing the candidate flag of a
	// sibling that was never qualified is a no-op (flags at unqualified
	// indices are dead), so one grouping serves every solve.
	sibOrder, sibStart, sibRow []int

	// cls caches the lazily built shape-class index of the class-based
	// selection fast path (see classsel.go). compile attaches a fresh
	// holder; withPrices views drop it, keeping probes on the per-bid
	// path.
	cls *classHolder
}

// CompileBids builds the columnar form of bids. The input slice is read
// once and not retained; len(bids) == 0 yields a valid empty set.
func CompileBids(bids []Bid) *BidSet {
	s := &BidSet{}
	s.compile(bids)
	return s
}

// compile (re)derives the columns and the sibling index in place, reusing
// whatever column capacity the receiver already holds — the engine-pool
// rebuild path for the []Bid compat wrappers.
func (s *BidSet) compile(bids []Bid) {
	n := len(bids)
	s.n = n
	s.price = growF(s.price, n)
	s.trueCost = growF(s.trueCost, n)
	s.theta = growF(s.theta, n)
	s.comp = growF(s.comp, n)
	s.comm = growF(s.comm, n)
	s.start = growI(s.start, n)
	s.end = growI(s.end, n)
	s.rounds = growI(s.rounds, n)
	s.client = growI(s.client, n)
	s.index = growI(s.index, n)
	for i, b := range bids {
		s.price[i], s.trueCost[i], s.theta[i] = b.Price, b.TrueCost, b.Theta
		s.comp[i], s.comm[i] = b.CompTime, b.CommTime
		s.start[i], s.end[i], s.rounds[i] = b.Start, b.End, b.Rounds
		s.client[i], s.index[i] = b.Client, b.Index
	}
	s.buildSiblings()
	// Any previously built class index described the old population.
	s.cls = &classHolder{}
}

// buildSiblings computes the client-sibling CSR from the client column.
func (s *BidSet) buildSiblings() {
	n := s.n
	s.sibOrder = growI(s.sibOrder, n)
	for i := range s.sibOrder {
		s.sibOrder[i] = i
	}
	slices.SortFunc(s.sibOrder, func(a, b int) int {
		switch ca, cb := s.client[a], s.client[b]; {
		case ca < cb:
			return -1
		case ca > cb:
			return 1
		}
		return a - b
	})
	s.sibRow = growI(s.sibRow, n)
	s.sibStart = s.sibStart[:0]
	for k := 0; k < n; k++ {
		if k == 0 || s.client[s.sibOrder[k]] != s.client[s.sibOrder[k-1]] {
			s.sibStart = append(s.sibStart, k)
		}
		s.sibRow[s.sibOrder[k]] = len(s.sibStart) - 1
	}
	s.sibStart = append(s.sibStart, n)
}

// Len returns the number of bids in the set.
func (s *BidSet) Len() int { return s.n }

// Bid reconstructs bid i from the columns. The reconstruction is exact:
// Bid(i) equals the i-th element of the slice CompileBids consumed,
// field for field.
func (s *BidSet) Bid(i int) Bid {
	return Bid{
		Client: s.client[i], Index: s.index[i],
		Price: s.price[i], TrueCost: s.trueCost[i], Theta: s.theta[i],
		Start: s.start[i], End: s.end[i], Rounds: s.rounds[i],
		CompTime: s.comp[i], CommTime: s.comm[i],
	}
}

// Bids materializes the whole set back into a fresh row-oriented slice —
// the exact slice CompileBids was built from. It is the bridge for
// consumers that still speak []Bid (the durable market's log encoding,
// diagnostics).
func (s *BidSet) Bids() []Bid {
	out := make([]Bid, s.n)
	for i := range out {
		out[i] = s.Bid(i)
	}
	return out
}

// siblings returns the indices of every bid sharing bid i's client,
// including i itself — the one-bid-per-client pruning set of Algorithm 2
// line 13. The returned slice aliases the set's index storage and must be
// treated as read-only.
func (s *BidSet) siblings(i int) []int {
	r := s.sibRow[i]
	return s.sibOrder[s.sibStart[r]:s.sibStart[r+1]]
}

// withPrices returns a shallow view of the set with the price column
// replaced — every other column and the sibling index are shared with the
// receiver. It is the probe instrument of exact-critical pricing: a
// bisection rewrites one entry of its private price column per probe
// instead of mirroring the whole population.
func (s *BidSet) withPrices(price []float64) *BidSet {
	v := *s
	v.price = price
	// The class index orders members by the ORIGINAL price column; a
	// probe view must not inherit it.
	v.cls = nil
	return &v
}

// minTg is the columnar MinTg: T_0 = ⌈1/(1−θ_min)⌉ over the theta column,
// bit-identical to MinTg on the materialized rows.
func (s *BidSet) minTg() int {
	thetaMin := math.Inf(1)
	for _, th := range s.theta {
		thetaMin = math.Min(thetaMin, th)
	}
	if math.IsInf(thetaMin, 1) || thetaMin >= 1 {
		return 1
	}
	t0 := int(math.Ceil(1/(1-thetaMin) - 1e-9))
	if t0 < 1 {
		t0 = 1
	}
	return t0
}

// ValidateBidSet validates every bid of the set and the basic auction
// parameters. It is the columnar twin of ValidateBids: the same checks in
// the same order producing the same errors, scanning columns instead of
// rows, so the two paths accept and reject identical populations with
// identical messages.
func ValidateBidSet(s *BidSet, maxT, k int) error {
	if maxT < 1 {
		return fmt.Errorf("core: maximum global iterations T=%d must be ≥ 1", maxT)
	}
	if k < 1 {
		return fmt.Errorf("core: per-iteration coverage K=%d must be ≥ 1", k)
	}
	if s == nil || s.n == 0 {
		return ErrNoBids
	}
	for i := 0; i < s.n; i++ {
		for _, v := range [...]float64{s.price[i], s.trueCost[i], s.theta[i], s.comp[i], s.comm[i]} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("bid %s: non-finite field value %v", s.Bid(i), v)
			}
		}
		winLen := s.end[i] - s.start[i] + 1
		switch {
		case s.client[i] < 0:
			return fmt.Errorf("bid %s: negative client index", s.Bid(i))
		case s.price[i] <= 0:
			return fmt.Errorf("bid %s: price must be positive", s.Bid(i))
		case s.trueCost[i] < 0:
			return fmt.Errorf("bid %s: negative true cost", s.Bid(i))
		case s.theta[i] <= 0 || s.theta[i] >= 1:
			return fmt.Errorf("bid %s: θ must lie in (0,1)", s.Bid(i))
		case s.start[i] < 1 || s.end[i] > maxT || s.start[i] > s.end[i]:
			return fmt.Errorf("bid %s: window outside [1,%d]", s.Bid(i), maxT)
		case s.rounds[i] < 1 || s.rounds[i] > winLen:
			return fmt.Errorf("bid %s: rounds %d outside [1,%d]", s.Bid(i), s.rounds[i], winLen)
		case s.comp[i] < 0 || s.comm[i] < 0:
			return fmt.Errorf("bid %s: negative timing", s.Bid(i))
		}
	}
	return nil
}

// growF returns s resized to n, reusing capacity when possible.
func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growI returns s resized to n, reusing capacity when possible.
func growI(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
