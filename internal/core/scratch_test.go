package core_test

import (
	"reflect"
	"testing"

	"github.com/fedauction/afl/internal/core"
)

// TestWinnerSlicesAppendSafe locks in the safety contract of the
// slab-backed winner schedules: neighbouring Winner records share one
// backing chunk, so every escaping slice must have capacity clamped to
// its length — an append on one winner's Slots must copy out rather
// than stomp the next winner's data.
func TestWinnerSlicesAppendSafe(t *testing.T) {
	bids, cfg := poolWorkload(t, 77, 60, 12, 3)
	res, err := core.RunAuction(bids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || len(res.Winners) < 2 {
		t.Fatalf("workload not discriminating: feasible=%v winners=%d",
			res.Feasible, len(res.Winners))
	}
	snapshot := make([][]int, len(res.Winners))
	for i, w := range res.Winners {
		if cap(w.Slots) != len(w.Slots) {
			t.Errorf("winner %d: Slots capacity %d exceeds length %d", i, cap(w.Slots), len(w.Slots))
		}
		snapshot[i] = append([]int(nil), w.Slots...)
	}
	for _, w := range res.Winners {
		_ = append(w.Slots, -1) // must copy out, not write the shared chunk
	}
	for i, w := range res.Winners {
		if !reflect.DeepEqual(snapshot[i], w.Slots) {
			t.Fatalf("winner %d: Slots mutated by an append on a sibling slice", i)
		}
	}
}
