package core

import (
	"context"
	"sort"
)

// auctionContext is the shared immutable per-auction state of the
// incremental WDP engine. It is built once per auction and then read by
// every SolveWDP call of the T̂_g sweep (sequentially or from concurrent
// workers), replacing the seed behaviour of re-deriving qualification
// sets, client groupings and slot indices from scratch for each of the
// T − T_0 + 1 candidate iteration counts.
//
// The key observation is that the qualification predicate of Algorithm 1
// line 6 is monotone in T̂_g:
//
//   - θ_ij ≤ 1 − 1/T̂_g becomes easier as T̂_g grows (1 − 1/T̂_g is
//     non-decreasing, and float64 division is correctly rounded, hence
//     weakly monotone, so this holds bit-exactly, not just in ℝ);
//   - a_ij + c_ij − 1 ≤ T̂_g becomes easier as T̂_g grows;
//   - the t_max and reserve-price checks do not depend on T̂_g at all.
//
// A bid therefore has a single entry point enterTg: the smallest T̂_g at
// which it qualifies (or none within [1, T]). Sorting bids by
// (enterTg, index) yields one shared backing array whose prefixes are
// exactly the qualified sets — J_{T̂_g} = qualOrder[:qualCount[T̂_g]] —
// so the sweep performs zero re-filtering and zero per-T̂_g allocation
// for qualification.
//
// All fields are written only by newAuctionContext and read-only
// afterwards, which is what makes sharing the context across the worker
// pool of RunAuctionConcurrent safe.
type auctionContext struct {
	bids []Bid
	cfg  Config
	// t0 is T_0 = ⌈1/(1−θ_min)⌉, the start of the T̂_g sweep.
	t0 int

	// qualOrder lists bid indices sorted by (enterTg, bid index).
	qualOrder []int
	// qualCount[tg] is |J_{T̂_g}| for tg ∈ [0, cfg.T]; the qualified set
	// for tg is qualOrder[:qualCount[tg]].
	qualCount []int
	// clientBids groups ALL bid indices by client, superseding the
	// per-call per-qualified grouping of the seed path. Using the
	// all-bids grouping in the winner pruning of Algorithm 2 line 13 is
	// sound: clearing the candidate flag of a bid that was never
	// qualified is a no-op.
	clientBids map[int][]int
}

// newAuctionContext precomputes the shared state for one auction. bids
// must already have passed ValidateBids; the context retains (and never
// mutates) the slice.
func newAuctionContext(bids []Bid, cfg Config) *auctionContext {
	ax := &auctionContext{}
	ax.rebuild(bids, cfg, nil)
	return ax
}

// rebuild (re)derives the full context for a new bid population in place,
// reusing whatever slice and map capacity the receiver already holds.
// This is the engine pool's steady-state path (see AcquireEngine): after
// the first few rebuilds of a given shape, qualification costs zero
// allocations beyond what escapes into results. enter is an optional
// construction scratch — the per-T̂_g entry lists — returned (possibly
// grown) so pooled callers retain it across rebuilds; one-shot callers
// pass nil. The derivation is line-for-line the historical
// newAuctionContext loop, so a rebuilt context is bit-identical to a
// fresh one.
func (ax *auctionContext) rebuild(bids []Bid, cfg Config, enter [][]int) [][]int {
	ax.bids = bids
	ax.cfg = cfg
	ax.t0 = MinTg(bids)
	if ax.clientBids == nil {
		ax.clientBids = make(map[int][]int)
	} else {
		// Truncate in place: entries for clients absent from this
		// population become empty slices, which behave exactly like
		// missing keys everywhere the grouping is read (lookups only).
		for c := range ax.clientBids {
			ax.clientBids[c] = ax.clientBids[c][:0]
		}
	}
	T := cfg.T
	// enter[tg] lists the bids whose smallest qualifying T̂_g is tg.
	if cap(enter) < T+1 {
		enter = make([][]int, T+1)
	}
	enter = enter[:T+1]
	for i := range enter {
		enter[i] = enter[i][:0]
	}
	localIters := cfg.localIters()
	// The tolerance must match Qualified exactly: the delta lists are
	// required to reproduce its qualified sets bit-for-bit.
	const eps = 1e-12
	for idx, b := range bids {
		ax.clientBids[b.Client] = append(ax.clientBids[b.Client], idx)
		if cfg.TMax > 0 && b.PerRoundTime(localIters) > cfg.TMax+eps {
			continue
		}
		if cfg.ReservePrice > 0 && b.Price > cfg.ReservePrice+eps {
			continue
		}
		// Smallest tg satisfying the θ constraint, located by binary
		// search over the monotone predicate using the exact float
		// expression of Qualified.
		thetaOK := func(tg int) bool {
			thetaMax := 1 - 1/float64(tg)
			return !(b.Theta > thetaMax+eps)
		}
		if !thetaOK(T) {
			continue // never qualifies within the horizon
		}
		enterTg := sort.Search(T, func(i int) bool { return thetaOK(i + 1) }) + 1
		// The window-fit constraint a_ij + c_ij − 1 ≤ T̂_g.
		if fit := b.Start + b.Rounds - 1; fit > enterTg {
			enterTg = fit
		}
		if enterTg > T {
			continue
		}
		enter[enterTg] = append(enter[enterTg], idx)
	}
	if cap(ax.qualOrder) < len(bids) {
		ax.qualOrder = make([]int, 0, len(bids))
	}
	ax.qualOrder = ax.qualOrder[:0]
	if cap(ax.qualCount) < T+1 {
		ax.qualCount = make([]int, T+1)
	}
	ax.qualCount = ax.qualCount[:T+1]
	ax.qualCount[0] = 0
	for tg := 1; tg <= T; tg++ {
		ax.qualOrder = append(ax.qualOrder, enter[tg]...)
		ax.qualCount[tg] = len(ax.qualOrder)
	}
	return enter
}

// qualifiedAt returns the qualified bid set J_{T̂_g} as a capped
// read-only prefix of the shared qualification order. The slice must not
// be mutated or appended to by callers; SolveWDP treats it as read-only.
//
// The returned set is Qualified(bids, tg, cfg) up to ordering: entries
// are sorted by (enterTg, index) rather than by index alone. Every
// consumer of a qualified set — heap construction (total order on
// (key, bid)), ψ_max maxima, slot-index m decrements, client pruning and
// the tight-dual minimum — is order-independent, so the two orderings
// produce bit-identical WDP results; the differential harness locks this
// in empirically.
func (ax *auctionContext) qualifiedAt(tg int) []int {
	if tg < 1 {
		return nil
	}
	if tg > ax.cfg.T {
		tg = ax.cfg.T
	}
	n := ax.qualCount[tg]
	return ax.qualOrder[:n:n]
}

// run executes the sequential incremental T̂_g sweep: one pooled scratch
// arena, one shared context, qualification by prefix extension. It is a
// convenience wrapper over sweep with default options (sequential,
// uninstrumented, background context).
func (ax *auctionContext) run() Result {
	res, _ := ax.sweep(context.Background(), RunOptions{})
	return res
}
