package core

import (
	"context"
	"sort"
)

// auctionContext is the shared immutable per-auction state of the
// incremental WDP engine. It is built once per auction over the columnar
// BidSet and then read by every SolveWDP call of the T̂_g sweep
// (sequentially or from concurrent sweep segments), replacing the seed
// behaviour of re-deriving qualification sets, client groupings and slot
// indices from scratch for each of the T − T_0 + 1 candidate iteration
// counts.
//
// The key observation is that the qualification predicate of Algorithm 1
// line 6 is monotone in T̂_g:
//
//   - θ_ij ≤ 1 − 1/T̂_g becomes easier as T̂_g grows (1 − 1/T̂_g is
//     non-decreasing, and float64 division is correctly rounded, hence
//     weakly monotone, so this holds bit-exactly, not just in ℝ);
//   - a_ij + c_ij − 1 ≤ T̂_g becomes easier as T̂_g grows;
//   - the t_max and reserve-price checks do not depend on T̂_g at all.
//
// A bid therefore has a single entry point enterTg: the smallest T̂_g at
// which it qualifies (or none within [1, T]). Counting-sorting bids by
// (enterTg, index) yields one shared backing array whose prefixes are
// exactly the qualified sets — J_{T̂_g} = qualOrder[:qualCount[T̂_g]] —
// so the sweep performs zero re-filtering and zero per-T̂_g allocation
// for qualification. The same pass derives a full-horizon slot CSR
// (slotStart/slotElems) so per-solve slot-index construction collapses to
// row-header assignment, and the enterTg column plus qualCount prefix
// sums drive both the incremental ψ_max replay and the weighted
// segmentation of the parallel sweep (see run.go / parallel.go).
//
// All fields are written only by rebuild and read-only afterwards, which
// is what makes sharing the context across sweep segments safe.
type auctionContext struct {
	set *BidSet
	cfg Config
	// t0 is T_0 = ⌈1/(1−θ_min)⌉, the start of the T̂_g sweep.
	t0 int

	// enterTg[i] is the smallest T̂_g ∈ [1, cfg.T] at which bid i
	// qualifies, or cfg.T+1 when it never does within the horizon.
	enterTg []int
	// qualOrder lists qualifying bid indices sorted by (enterTg, index).
	qualOrder []int
	// qualCount[tg] is |J_{T̂_g}| for tg ∈ [0, cfg.T]; the qualified set
	// for tg is qualOrder[:qualCount[tg]].
	qualCount []int

	// slotStart/slotElems form the full-horizon slot CSR: for iteration
	// t ∈ [1, T], slotElems[slotStart[t-1]:slotStart[t]] lists (ascending)
	// every ever-qualifying bid whose rule-effective slot range contains
	// t, with the range's upper end clipped to T rather than to any
	// particular T̂_g. For every solve horizon tg and t ≤ tg the clip is
	// immaterial — t ≤ min(hi, tg) ⟺ t ≤ min(hi, T) — so the row IS the
	// per-tg slot index of the row-oriented engine, padded with bids that
	// enter only at a later T̂_g. Those padding entries are harmless where
	// the rows are consumed (the m decrement when a slot fills): m is only
	// ever read through heap entries of currently qualified bids, so a
	// decrement at a not-yet-qualified index is a dead write into
	// worker-private scratch.
	slotStart, slotElems []int

	// cnt is construction scratch for the counting sorts, retained across
	// pool rebuilds.
	cnt []int
}

// newAuctionContext precomputes the shared state for one auction. The set
// must already have passed ValidateBidSet; the context retains (and never
// mutates) it.
func newAuctionContext(set *BidSet, cfg Config) *auctionContext {
	ax := &auctionContext{}
	ax.rebuild(set, cfg)
	return ax
}

// rebuild (re)derives the full context for a new bid population in place,
// reusing whatever slice capacity the receiver already holds. This is the
// engine pool's steady-state path (see AcquireEngine): after the first
// few rebuilds of a given shape, qualification costs zero allocations
// beyond what escapes into results. The qualification predicate is
// evaluated with exactly the expressions and tolerances of Qualified, so
// the prefix sets reproduce its qualified sets bit-for-bit (up to the
// documented (enterTg, index) ordering).
func (ax *auctionContext) rebuild(set *BidSet, cfg Config) {
	ax.set = set
	ax.cfg = cfg
	ax.t0 = set.minTg()
	T := cfg.T
	n := set.n
	localIters := cfg.localIters()
	// The tolerance must match Qualified exactly: the prefix sets are
	// required to reproduce its qualified sets bit-for-bit.
	const eps = 1e-12
	never := T + 1
	ax.enterTg = growI(ax.enterTg, n)
	for i := 0; i < n; i++ {
		theta := set.theta[i]
		if cfg.TMax > 0 && localIters(theta)*set.comp[i]+set.comm[i] > cfg.TMax+eps {
			ax.enterTg[i] = never
			continue
		}
		if cfg.ReservePrice > 0 && set.price[i] > cfg.ReservePrice+eps {
			ax.enterTg[i] = never
			continue
		}
		// Smallest tg satisfying the θ constraint, located by binary
		// search over the monotone predicate using the exact float
		// expression of Qualified.
		thetaOK := func(tg int) bool {
			thetaMax := 1 - 1/float64(tg)
			return !(theta > thetaMax+eps)
		}
		if !thetaOK(T) {
			ax.enterTg[i] = never // never qualifies within the horizon
			continue
		}
		enter := sort.Search(T, func(k int) bool { return thetaOK(k + 1) }) + 1
		// The window-fit constraint a_ij + c_ij − 1 ≤ T̂_g.
		if fit := set.start[i] + set.rounds[i] - 1; fit > enter {
			enter = fit
		}
		if enter > T {
			enter = never
		}
		ax.enterTg[i] = enter
	}

	// qualOrder via a counting sort on enterTg. Bids are placed in index
	// order within each enterTg bucket, which is exactly the (enterTg,
	// index) order the historical per-T̂_g entry lists produced.
	cnt := growI(ax.cnt, T+2)
	for i := range cnt {
		cnt[i] = 0
	}
	for i := 0; i < n; i++ {
		cnt[ax.enterTg[i]]++
	}
	ax.qualCount = growI(ax.qualCount, T+1)
	ax.qualCount[0] = 0
	total := 0
	for tg := 1; tg <= T; tg++ {
		c := cnt[tg]
		cnt[tg] = total // becomes the write cursor for bucket tg
		total += c
		ax.qualCount[tg] = total
	}
	ax.qualOrder = growI(ax.qualOrder, total)
	for i := 0; i < n; i++ {
		if e := ax.enterTg[i]; e <= T {
			ax.qualOrder[cnt[e]] = i
			cnt[e]++
		}
	}
	ax.cnt = cnt

	ax.buildSlotCSR()
}

// buildSlotCSR derives the full-horizon slot rows (see the field comment
// on slotStart). Row sizes come from a difference array, so counting is
// O(n + T); filling is O(Σ slot-range lengths), the same work one
// row-oriented solve at T̂_g = T used to spend per solve.
func (ax *auctionContext) buildSlotCSR() {
	set, cfg, T := ax.set, ax.cfg, ax.cfg.T
	rowHi := func(i int) int {
		hi := set.end[i]
		if cfg.ScheduleRule == ScheduleEarliest {
			if e := set.start[i] + set.rounds[i] - 1; e < hi {
				hi = e
			}
		}
		if hi > T {
			hi = T
		}
		return hi
	}
	d := ax.cnt[:T+1] // reuse the counting-sort scratch as a diff array
	for i := range d {
		d[i] = 0
	}
	for i := 0; i < set.n; i++ {
		if ax.enterTg[i] > T {
			continue
		}
		lo, hi := set.start[i], rowHi(i)
		d[lo-1]++
		if hi < T {
			d[hi]--
		}
	}
	ax.slotStart = growI(ax.slotStart, T+1)
	ax.slotStart[0] = 0
	run, total := 0, 0
	for t := 1; t <= T; t++ {
		run += d[t-1]
		total += run
		ax.slotStart[t] = total
	}
	ax.slotElems = growI(ax.slotElems, total)
	// Rewrite the diff array into per-row write cursors; ascending bid
	// order per row falls out of the ascending fill loop.
	for t := 1; t <= T; t++ {
		d[t-1] = ax.slotStart[t-1]
	}
	for i := 0; i < set.n; i++ {
		if ax.enterTg[i] > T {
			continue
		}
		lo, hi := set.start[i], rowHi(i)
		for t := lo; t <= hi; t++ {
			ax.slotElems[d[t-1]] = i
			d[t-1]++
		}
	}
}

// env packages the context's precomputed slot rows for solveWDP; the ψ
// column is attached per segment by the sweep (see sweepSegment).
func (ax *auctionContext) env() solveEnv {
	return solveEnv{slotStart: ax.slotStart, slotElems: ax.slotElems}
}

// slotRow returns the full-horizon slot row for iteration t ∈ [1, T].
func (ax *auctionContext) slotRow(t int) []int {
	return ax.slotElems[ax.slotStart[t-1]:ax.slotStart[t]]
}

// qualifiedAt returns the qualified bid set J_{T̂_g} as a capped
// read-only prefix of the shared qualification order. The slice must not
// be mutated or appended to by callers; SolveWDP treats it as read-only.
//
// The returned set is Qualified(bids, tg, cfg) up to ordering: entries
// are sorted by (enterTg, index) rather than by index alone. Every
// consumer of a qualified set — heap construction (total order on
// (key, bid)), ψ_max maxima, slot-index m decrements, client pruning and
// the tight-dual minimum — is order-independent, so the two orderings
// produce bit-identical WDP results; the differential harness locks this
// in empirically.
func (ax *auctionContext) qualifiedAt(tg int) []int {
	if tg < 1 {
		return nil
	}
	if tg > ax.cfg.T {
		tg = ax.cfg.T
	}
	n := ax.qualCount[tg]
	return ax.qualOrder[:n:n]
}

// run executes the sequential incremental T̂_g sweep: one pooled scratch
// arena, one shared context, qualification by prefix extension. It is a
// convenience wrapper over sweep with default options (sequential,
// uninstrumented, background context).
func (ax *auctionContext) run() Result {
	res, _ := ax.sweep(context.Background(), RunOptions{})
	return res
}
