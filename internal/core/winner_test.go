package core

import (
	"math"
	"sort"
	"testing"

	"github.com/fedauction/afl/internal/stats"
)

// exampleBids returns the three-bid instance of the worked example in
// §V-B of the paper: T̂_g = 3, K = 1,
// B1($2,[1,2],1), B2($6,[2,3],2), B3($5,[1,3],2).
func exampleBids() []Bid {
	return []Bid{
		{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 2, Rounds: 1},
		{Client: 1, Price: 6, Theta: 0.5, Start: 2, End: 3, Rounds: 2},
		{Client: 2, Price: 5, Theta: 0.5, Start: 1, End: 3, Rounds: 2},
	}
}

func TestSolveWDPPaperExample(t *testing.T) {
	bids := exampleBids()
	cfg := Config{T: 3, K: 1}
	res := SolveWDP(bids, []int{0, 1, 2}, 3, cfg)
	if !res.Feasible {
		t.Fatal("paper example must be feasible")
	}
	if got, want := res.Cost, 7.0; got != want {
		t.Fatalf("cost = %v, want %v", got, want)
	}
	if len(res.Winners) != 2 {
		t.Fatalf("winners = %d, want 2", len(res.Winners))
	}
	// First iteration selects B1 (avg 2 < 2.5 < 3) at payment
	// R_1·(ρ_3/R_3) = 1·2.5 = 2.5.
	w1 := res.Winners[0]
	if w1.BidIndex != 0 {
		t.Fatalf("first winner = bid %d, want bid 0", w1.BidIndex)
	}
	if got, want := w1.Payment, 2.5; got != want {
		t.Fatalf("B1 payment = %v, want %v", got, want)
	}
	if len(w1.Slots) != 1 || w1.Slots[0] != 1 {
		t.Fatalf("B1 slots = %v, want [1]", w1.Slots)
	}
	// Second iteration selects B3 ({2,3}, avg 2.5 < 3) at payment
	// R_3·(ρ_2/R_2) = 2·3 = 6.
	w2 := res.Winners[1]
	if w2.BidIndex != 2 {
		t.Fatalf("second winner = bid %d, want bid 2", w2.BidIndex)
	}
	if got, want := w2.Payment, 6.0; got != want {
		t.Fatalf("B3 payment = %v, want %v", got, want)
	}
	if len(w2.Slots) != 2 || w2.Slots[0] != 2 || w2.Slots[1] != 3 {
		t.Fatalf("B3 slots = %v, want [2 3]", w2.Slots)
	}
}

func TestSolveWDPInfeasible(t *testing.T) {
	tests := []struct {
		name      string
		bids      []Bid
		qualified []int
		tg        int
		k         int
	}{
		{
			name:      "no qualified bids",
			bids:      exampleBids(),
			qualified: nil,
			tg:        3,
			k:         1,
		},
		{
			name: "uncovered iteration",
			bids: []Bid{
				{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 2, Rounds: 2},
			},
			qualified: []int{0},
			tg:        3,
			k:         1,
		},
		{
			name: "not enough distinct clients for K",
			bids: []Bid{
				{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 2, Rounds: 2},
				{Client: 0, Price: 3, Theta: 0.5, Start: 1, End: 2, Rounds: 2},
			},
			qualified: []int{0, 1},
			tg:        2,
			k:         2,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			res := SolveWDP(tc.bids, tc.qualified, tc.tg, Config{T: tc.tg, K: tc.k})
			if res.Feasible {
				t.Fatalf("expected infeasible, got cost %v winners %v", res.Cost, res.Winners)
			}
		})
	}
}

func TestSolveWDPOneBidPerClient(t *testing.T) {
	// A client offering two cheap bids may still win only one of them.
	bids := []Bid{
		{Client: 0, Index: 0, Price: 1, Theta: 0.5, Start: 1, End: 2, Rounds: 1},
		{Client: 0, Index: 1, Price: 1, Theta: 0.5, Start: 2, End: 3, Rounds: 1},
		{Client: 1, Index: 0, Price: 10, Theta: 0.5, Start: 1, End: 3, Rounds: 3},
	}
	res := SolveWDP(bids, []int{0, 1, 2}, 3, Config{T: 3, K: 1})
	if !res.Feasible {
		t.Fatal("instance should be feasible via client 1")
	}
	seen := map[int]int{}
	for _, w := range res.Winners {
		seen[w.Bid.Client]++
	}
	for c, n := range seen {
		if n > 1 {
			t.Fatalf("client %d won %d bids", c, n)
		}
	}
}

func TestSolveWDPSchedulePrefersLeastCovered(t *testing.T) {
	// With K=2 and one slot already coverable only through a wide bid, the
	// representative schedule must grab the least-covered iterations.
	bids := []Bid{
		{Client: 0, Price: 1, Theta: 0.5, Start: 1, End: 3, Rounds: 3},
		{Client: 1, Price: 2, Theta: 0.5, Start: 1, End: 3, Rounds: 3},
		{Client: 2, Price: 9, Theta: 0.5, Start: 1, End: 3, Rounds: 1},
	}
	res := SolveWDP(bids, []int{0, 1, 2}, 3, Config{T: 3, K: 2})
	if !res.Feasible {
		t.Fatal("feasible instance reported infeasible")
	}
	// Clients 0 and 1 fully cover all three iterations twice; client 2 is
	// unnecessary and must not be selected.
	if len(res.Winners) != 2 {
		t.Fatalf("winners = %v, want exactly clients 0 and 1", res.Winners)
	}
	if got, want := res.Cost, 3.0; got != want {
		t.Fatalf("cost = %v, want %v", got, want)
	}
}

func TestWDPResultCoversEveryIteration(t *testing.T) {
	rng := stats.NewRNG(7)
	for trial := 0; trial < 50; trial++ {
		bids, tg, k := randomWDPInstance(rng)
		qual := Qualified(bids, tg, Config{T: tg, K: k})
		res := SolveWDP(bids, qual, tg, Config{T: tg, K: k})
		if !res.Feasible {
			continue
		}
		if err := CheckWDPSolution(bids, res, Config{T: tg, K: k}); err != nil {
			t.Fatalf("trial %d: invalid solution: %v", trial, err)
		}
	}
}

// naiveSolveWDP is a direct O(rounds·bids·T log T) transcription of
// Algorithm 2 without the lazy-heap optimization. It recomputes every
// representative schedule and marginal utility from scratch each round and
// serves as the reference the optimized SolveWDP is checked against.
func naiveSolveWDP(bids []Bid, qualified []int, tg, k int) (winners []Winner, feasible bool) {
	gamma := make([]int, tg+1)
	inC := make(map[int]bool)
	for _, idx := range qualified {
		inC[idx] = true
	}
	covered := 0
	repSchedule := func(idx int) (slots []int, avail int) {
		b := bids[idx]
		hi := b.End
		if hi > tg {
			hi = tg
		}
		var cand []int
		for t := b.Start; t <= hi; t++ {
			cand = append(cand, t)
		}
		sort.Slice(cand, func(x, y int) bool {
			if gamma[cand[x]] != gamma[cand[y]] {
				return gamma[cand[x]] < gamma[cand[y]]
			}
			return cand[x] < cand[y]
		})
		if len(cand) > b.Rounds {
			cand = cand[:b.Rounds]
		}
		for _, t := range cand {
			if gamma[t] < k {
				avail++
			}
		}
		sort.Ints(cand)
		return cand, avail
	}
	for covered < k*tg {
		best, second := -1, -1
		var bestKey, secondKey float64
		bestKey, secondKey = math.Inf(1), math.Inf(1)
		bestR := 0
		for _, idx := range qualified {
			if !inC[idx] {
				continue
			}
			_, r := repSchedule(idx)
			if r == 0 {
				continue
			}
			key := bids[idx].Price / float64(r)
			if key < bestKey || (key == bestKey && (best == -1 || idx < best)) {
				if best != -1 {
					secondKey, second = bestKey, best
				}
				bestKey, best, bestR = key, idx, r
			} else if key < secondKey || (key == secondKey && (second == -1 || idx < second)) {
				secondKey, second = key, idx
			}
		}
		if best == -1 {
			return nil, false
		}
		slots, _ := repSchedule(best)
		pay := bids[best].Price
		if second != -1 {
			pay = float64(bestR) * secondKey
		}
		winners = append(winners, Winner{BidIndex: best, Bid: bids[best], Slots: slots, Payment: pay})
		for _, sib := range qualified {
			if bids[sib].Client == bids[best].Client {
				delete(inC, sib)
			}
		}
		for _, t := range slots {
			if gamma[t] < k {
				covered++
			}
			gamma[t]++
		}
	}
	return winners, true
}

func TestSolveWDPMatchesNaiveReference(t *testing.T) {
	rng := stats.NewRNG(42)
	for trial := 0; trial < 120; trial++ {
		bids, tg, k := randomWDPInstance(rng)
		qual := allIndices(bids)
		got := SolveWDP(bids, qual, tg, Config{T: tg, K: k})
		want, feasible := naiveSolveWDP(bids, qual, tg, k)
		if got.Feasible != feasible {
			t.Fatalf("trial %d: feasible = %v, reference %v", trial, got.Feasible, feasible)
		}
		if !feasible {
			continue
		}
		if len(got.Winners) != len(want) {
			t.Fatalf("trial %d: %d winners, reference %d", trial, len(got.Winners), len(want))
		}
		for i := range want {
			g, w := got.Winners[i], want[i]
			if g.BidIndex != w.BidIndex {
				t.Fatalf("trial %d round %d: selected bid %d, reference %d", trial, i, g.BidIndex, w.BidIndex)
			}
			if math.Abs(g.Payment-w.Payment) > 1e-9 {
				t.Fatalf("trial %d round %d: payment %v, reference %v", trial, i, g.Payment, w.Payment)
			}
			if len(g.Slots) != len(w.Slots) {
				t.Fatalf("trial %d round %d: slots %v, reference %v", trial, i, g.Slots, w.Slots)
			}
			for s := range w.Slots {
				if g.Slots[s] != w.Slots[s] {
					t.Fatalf("trial %d round %d: slots %v, reference %v", trial, i, g.Slots, w.Slots)
				}
			}
		}
	}
}

// randomWDPInstance generates a small random instance with enough supply to
// usually (not always) be feasible.
func randomWDPInstance(rng *stats.RNG) (bids []Bid, tg, k int) {
	tg = rng.IntRange(2, 8)
	k = rng.IntRange(1, 3)
	clients := rng.IntRange(k+1, 10)
	for c := 0; c < clients; c++ {
		nbids := rng.IntRange(1, 3)
		for j := 0; j < nbids; j++ {
			start := rng.IntRange(1, tg)
			end := rng.IntRange(start, tg)
			// end ≤ tg already guarantees the qualification constraint
			// a + c − 1 ≤ T̂_g for any c ≤ end − start + 1.
			maxRounds := end - start + 1
			bids = append(bids, Bid{
				Client: c,
				Index:  j,
				Price:  float64(rng.IntRange(1, 50)),
				Theta:  rng.FloatRange(0.1, 0.6),
				Start:  start,
				End:    end,
				Rounds: rng.IntRange(1, maxRounds),
			})
		}
	}
	return bids, tg, k
}

func allIndices(bids []Bid) []int {
	out := make([]int, len(bids))
	for i := range bids {
		out[i] = i
	}
	return out
}

func TestDualCertificate(t *testing.T) {
	rng := stats.NewRNG(11)
	for trial := 0; trial < 80; trial++ {
		bids, tg, k := randomWDPInstance(rng)
		res := SolveWDP(bids, allIndices(bids), tg, Config{T: tg, K: k})
		if !res.Feasible {
			continue
		}
		d := res.Dual
		if d.Omega < 1 {
			t.Fatalf("trial %d: ω = %v < 1", trial, d.Omega)
		}
		if d.HarmonicTg <= 0 {
			t.Fatalf("trial %d: H = %v", trial, d.HarmonicTg)
		}
		if d.Objective <= 0 {
			t.Fatalf("trial %d: dual objective %v must be positive", trial, d.Objective)
		}
		// Lemma 5: P ≤ H_{T̂_g}·ω·D.
		if res.Cost > d.RatioBound*d.Objective+1e-6 {
			t.Fatalf("trial %d: P=%v exceeds τ·D=%v (τ=%v, D=%v)",
				trial, res.Cost, d.RatioBound*d.Objective, d.RatioBound, d.Objective)
		}
		for _, g := range d.G {
			if g < -1e-12 {
				t.Fatalf("trial %d: negative dual g(t)=%v", trial, g)
			}
		}
		for idx, l := range d.Lambda {
			if l < -1e-12 {
				t.Fatalf("trial %d: negative dual λ[%d]=%v", trial, idx, l)
			}
		}
	}
}

func TestDualIsLowerBoundOnEnumeratedOptimum(t *testing.T) {
	// On tiny instances, enumerate all feasible bid subsets to find the
	// optimal WDP cost and confirm D ≤ OPT (weak duality).
	rng := stats.NewRNG(23)
	for trial := 0; trial < 40; trial++ {
		tg := rng.IntRange(2, 4)
		k := 1
		var bids []Bid
		clients := rng.IntRange(2, 6)
		for c := 0; c < clients; c++ {
			start := rng.IntRange(1, tg)
			end := rng.IntRange(start, tg)
			maxRounds := end - start + 1
			if start+maxRounds > tg {
				maxRounds = tg - start
			}
			if maxRounds < 1 {
				continue
			}
			bids = append(bids, Bid{
				Client: c,
				Price:  float64(rng.IntRange(1, 20)),
				Theta:  0.4,
				Start:  start,
				End:    end,
				Rounds: rng.IntRange(1, maxRounds),
			})
		}
		if len(bids) == 0 {
			continue
		}
		res := SolveWDP(bids, allIndices(bids), tg, Config{T: tg, K: k})
		if !res.Feasible {
			continue
		}
		opt, ok := bruteForceWDP(bids, tg, k)
		if !ok {
			t.Fatalf("trial %d: greedy feasible but brute force infeasible", trial)
		}
		if res.Dual.Objective > opt+1e-6 {
			t.Fatalf("trial %d: dual %v exceeds optimum %v", trial, res.Dual.Objective, opt)
		}
		if res.Dual.TightObjective > opt+1e-6 {
			t.Fatalf("trial %d: tight dual %v exceeds optimum %v", trial, res.Dual.TightObjective, opt)
		}
		if res.Dual.Bound() < res.Dual.Objective {
			t.Fatalf("trial %d: Bound() below Objective", trial)
		}
		if res.Cost < opt-1e-9 {
			t.Fatalf("trial %d: greedy cost %v below optimum %v", trial, res.Cost, opt)
		}
	}
}

// bruteForceWDP enumerates all subsets of bids (one per client enforced)
// and all schedules implicitly by checking coverage feasibility of the
// subset via a greedy max-flow-free argument valid for K=1: a subset is
// feasible iff its bids can cover every t. For K=1 coverage, bid windows
// with c rounds form a transversal problem solved exactly by bipartite
// matching; here we use small sizes and a recursive assignment.
func bruteForceWDP(bids []Bid, tg, k int) (float64, bool) {
	best := math.Inf(1)
	n := len(bids)
	var rec func(i int, chosen []int)
	rec = func(i int, chosen []int) {
		if i == n {
			if subsetCovers(bids, chosen, tg, k) {
				var c float64
				for _, idx := range chosen {
					c += bids[idx].Price
				}
				if c < best {
					best = c
				}
			}
			return
		}
		rec(i+1, chosen)
		for _, idx := range chosen {
			if bids[idx].Client == bids[i].Client {
				return // one bid per client
			}
		}
		rec(i+1, append(chosen, i))
	}
	rec(0, nil)
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}

// subsetCovers decides whether the chosen bids can be scheduled (each bid
// placing exactly its Rounds inside its window, at most once per slot per
// bid) so that every slot gets at least k participants. Solved exactly via
// backtracking over per-bid slot choices; fine for the tiny test sizes.
func subsetCovers(bids []Bid, chosen []int, tg, k int) bool {
	cover := make([]int, tg+1)
	var place func(bi int) bool
	place = func(bi int) bool {
		if bi == len(chosen) {
			for t := 1; t <= tg; t++ {
				if cover[t] < k {
					return false
				}
			}
			return true
		}
		b := bids[chosen[bi]]
		hi := b.End
		if hi > tg {
			hi = tg
		}
		var slots []int
		for t := b.Start; t <= hi; t++ {
			slots = append(slots, t)
		}
		var combo func(startIdx, left int) bool
		var picked []int
		combo = func(startIdx, left int) bool {
			if left == 0 {
				for _, t := range picked {
					cover[t]++
				}
				ok := place(bi + 1)
				for _, t := range picked {
					cover[t]--
				}
				return ok
			}
			for s := startIdx; s <= len(slots)-left; s++ {
				picked = append(picked, slots[s])
				if combo(s+1, left-1) {
					picked = picked[:len(picked)-1]
					return true
				}
				picked = picked[:len(picked)-1]
			}
			return false
		}
		if b.Rounds > len(slots) {
			return false
		}
		return combo(0, b.Rounds)
	}
	return place(0)
}
