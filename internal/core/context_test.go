package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// randomBids draws a small population directly (internal/workload cannot
// be imported from an in-package test: it would close an import cycle).
func randomBids(rng *rand.Rand, n, maxClients, maxT int) []Bid {
	bids := make([]Bid, 0, n)
	for i := 0; i < n; i++ {
		start := 1 + rng.Intn(maxT)
		end := start + rng.Intn(maxT-start+1)
		b := Bid{
			Client:   rng.Intn(maxClients),
			Index:    i,
			Price:    1 + 49*rng.Float64(),
			Theta:    0.05 + 0.9*rng.Float64(),
			Start:    start,
			End:      end,
			Rounds:   1 + rng.Intn(end-start+1),
			CompTime: 5 + 5*rng.Float64(),
			CommTime: 10 + 5*rng.Float64(),
		}
		b.TrueCost = b.Price
		bids = append(bids, b)
	}
	return bids
}

// TestContextQualificationMatchesQualified locks the delta-list
// qualification of auctionContext to the reference predicate Qualified:
// for every T̂_g in [1, T] the two must produce the same set, across
// configurations with and without t_max and reserve-price filters.
func TestContextQualificationMatchesQualified(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfgs := []Config{
		{T: 12, K: 2},
		{T: 12, K: 2, TMax: 60},
		{T: 12, K: 2, TMax: 45, ReservePrice: 30},
		{T: 7, K: 1, ReservePrice: 25},
		{T: 20, K: 3, TMax: 80},
	}
	for trial := 0; trial < 50; trial++ {
		cfg := cfgs[trial%len(cfgs)]
		bids := randomBids(rng, 1+rng.Intn(40), 1+rng.Intn(12), cfg.T)
		if err := ValidateBids(bids, cfg.T, cfg.K); err != nil {
			t.Fatalf("trial %d: generator produced invalid bids: %v", trial, err)
		}
		ax := newAuctionContext(CompileBids(bids), cfg)
		for tg := 1; tg <= cfg.T; tg++ {
			want := Qualified(bids, tg, cfg)
			got := append([]int(nil), ax.qualifiedAt(tg)...)
			sort.Ints(got)
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d tg=%d: context qualification %v != Qualified %v",
					trial, tg, got, want)
			}
		}
	}
}

// TestContextThetaBoundary pins the exact float behaviour at the
// qualification boundary θ = 1 − 1/T̂_g: the binary-searched entry
// threshold must agree with the linear predicate even at the tolerance
// edge.
func TestContextThetaBoundary(t *testing.T) {
	cfg := Config{T: 10, K: 1}
	var bids []Bid
	for tg := 2; tg <= 10; tg++ {
		theta := 1 - 1/float64(tg) // exactly at the boundary for this tg
		bids = append(bids,
			Bid{Client: len(bids), Price: 1, Theta: theta, Start: 1, End: 1, Rounds: 1},
			Bid{Client: len(bids) + 1, Price: 1, Theta: theta + 1e-9, Start: 1, End: 1, Rounds: 1},
			Bid{Client: len(bids) + 2, Price: 1, Theta: theta - 1e-9, Start: 1, End: 1, Rounds: 1},
		)
	}
	ax := newAuctionContext(CompileBids(bids), cfg)
	for tg := 1; tg <= cfg.T; tg++ {
		want := Qualified(bids, tg, cfg)
		got := append([]int(nil), ax.qualifiedAt(tg)...)
		sort.Ints(got)
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("tg=%d: boundary qualification %v != Qualified %v", tg, got, want)
		}
	}
}

// TestScratchReuseIsClean interleaves solves of different instances
// through the pool and checks each solve is unaffected by what the arena
// held before — the correctness condition of pooled reuse.
func TestScratchReuseIsClean(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type instance struct {
		bids []Bid
		cfg  Config
		want Result
	}
	var instances []instance
	for i := 0; i < 8; i++ {
		cfg := Config{T: 4 + rng.Intn(8), K: 1 + rng.Intn(3)}
		bids := randomBids(rng, 5+rng.Intn(25), 2+rng.Intn(8), cfg.T)
		res, err := RunAuction(bids, cfg)
		if err != nil {
			t.Fatal(err)
		}
		instances = append(instances, instance{bids, cfg, res})
	}
	// Re-run every instance several times in shuffled order; pooled
	// arenas now carry state from other instances.
	for round := 0; round < 4; round++ {
		for _, i := range rng.Perm(len(instances)) {
			in := instances[i]
			got, err := RunAuction(in.bids, in.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, in.want) {
				t.Fatalf("round %d instance %d: result changed across pooled reuse", round, i)
			}
		}
	}
}

// TestEngineReuse checks an Engine yields identical results across
// repeated and concurrent invocations of all its methods.
func TestEngineReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := Config{T: 10, K: 2}
	bids := randomBids(rng, 40, 12, cfg.T)
	eng, err := NewEngine(bids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := eng.Run()
	for i := 0; i < 3; i++ {
		if got := eng.Run(); !reflect.DeepEqual(got, want) {
			t.Fatalf("Run %d diverged from first Run", i)
		}
		if got := eng.RunConcurrent(3); !reflect.DeepEqual(got, want) {
			t.Fatalf("RunConcurrent %d diverged from Run", i)
		}
	}
	for tg := 1; tg <= cfg.T; tg++ {
		direct := SolveWDP(bids, Qualified(bids, tg, cfg), tg, cfg)
		viaEngine := eng.SolveWDP(tg)
		if !reflect.DeepEqual(direct, viaEngine) {
			t.Fatalf("tg=%d: Engine.SolveWDP diverged from SolveWDP", tg)
		}
	}
	if got := eng.SolveWDP(0); got.Feasible {
		t.Fatal("tg=0 must be infeasible")
	}
	if got := eng.SolveWDP(cfg.T + 1); got.Feasible {
		t.Fatal("tg>T must be infeasible")
	}
}

// TestSolveWDPTargetOverflow pins the K·T̂_g overflow guard: demand that
// overflows int must be reported infeasible, not (as the seed code did)
// silently satisfied by an empty selection.
func TestSolveWDPTargetOverflow(t *testing.T) {
	bids := []Bid{{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 2, Rounds: 1}}
	const bigTg = int(^uint(0) >> 2) // MaxInt/2: K=4 overflows K·tg
	res := SolveWDP(bids, []int{0}, bigTg, Config{T: bigTg, K: 4})
	if res.Feasible {
		t.Fatal("overflowing K·T̂_g demand must be infeasible")
	}
	if len(res.Winners) != 0 {
		t.Fatalf("infeasible WDP returned winners: %v", res.Winners)
	}
}
