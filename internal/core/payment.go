package core

import (
	"context"
	"math"
)

// PaymentRule selects how winner payments are computed.
type PaymentRule int

const (
	// RuleCritical is the paper's A_payment (Algorithm 3): each winner is
	// paid its marginal utility times the second-smallest average cost in
	// the candidate set of the round it was selected in. It is the zero
	// value deliberately, so Config{} reproduces the paper. The rule is
	// locally critical (Lemma 2) but, because the marginal utility R_il(S)
	// of a deferred schedule can shrink, it is not always the exact
	// Myerson threshold — see RuleExactCritical.
	RuleCritical PaymentRule = iota
	// RuleExactCritical pays each winner the exact critical value of its
	// bid: the supremum claimed price at which the bid still wins, found
	// by bisection over re-runs of the (price-monotone) greedy
	// allocation. It makes the mechanism exactly truthful in the claimed
	// price at the cost of O(log(1/ε)) extra solver runs per winner.
	//
	// Since pricing is lazy, a full sweep bisects only the winners of the
	// selected T̂_g (see priceWinners); standalone SolveWDP calls still
	// price their result eagerly.
	RuleExactCritical
	// RulePayBid pays each winner its claimed price. Not truthful; used
	// as a baseline in incentive experiments.
	RulePayBid
)

// String returns the rule's name.
func (r PaymentRule) String() string {
	switch r {
	case RuleCritical:
		return "critical"
	case RuleExactCritical:
		return "exact-critical"
	case RulePayBid:
		return "pay-bid"
	default:
		return "unknown"
	}
}

// bisectTol is the absolute convergence tolerance of the critical-value
// bisection at price magnitude x.
func bisectTol(x float64) float64 { return 1e-12 * math.Max(1, x) }

// applyPaymentRule post-processes the payments of a feasible WDP result
// according to cfg.PaymentRule. It is the eager entry point, used where a
// fully priced WDPResult must come back from a single call (SolveWDP,
// Engine.SolveWDP, RunAuctionEager); the lazy sweep path prices only the
// selected T̂_g through priceWinners instead. RuleCritical payments were
// already computed during the greedy run. env carries whatever
// price-independent precomputed structure the caller holds (the slot CSR;
// never a ψ column, since bisection probes rewrite prices). base is the
// pre-committed coverage of the solve (nil for a full market); probes
// must replay the same residual market or the bisection would price the
// wrong instance.
func applyPaymentRule(set *BidSet, qualified []int, tg int, cfg Config, env solveEnv, base []int, res *WDPResult) {
	switch cfg.PaymentRule {
	case RulePayBid:
		for i := range res.Winners {
			res.Winners[i].Payment = res.Winners[i].Bid.Price
		}
	case RuleExactCritical:
		if len(res.Winners) == 0 {
			return
		}
		pr := newPricer(set, tg)
		defer pr.release()
		for i := range res.Winners {
			// A Background context cannot be canceled, so the error is
			// structurally nil here.
			pay, _, _ := exactCriticalPayment(context.Background(), set, qualified, tg, cfg, env, base, res.Winners[i], pr)
			res.Winners[i].Payment = pay
		}
	}
}

// exactCriticalPayment bisects for the supremum price at which the
// winner's bid still wins the WDP, holding every other bid fixed. The
// allocation is monotone in a bid's price (lowering the price can only
// move its selection to an earlier greedy round), so the winning region is
// an interval [0, c*) and the bisection is exact up to tolerance.
//
// win.Payment must carry the Algorithm 3 payment of the greedy run: the
// locally critical value never undercuts the claimed price and usually
// coincides with — or tightly brackets — the exact threshold, so the
// search probes it first and collapses to three probes when it is the
// answer, instead of opening with blind geometric doubling.
//
// When the bid wins at any price (no competing supply), the Algorithm 3
// payment — its own claimed price, by the fallback of A_payment — is kept.
//
// The caller owns pr; probes mutate only pr's buffers plus the winner's
// own probe slot (restored on return), so distinct pricers may bisect
// distinct winners concurrently. probes reports the number of full greedy
// re-solves consumed. A canceled ctx abandons the search mid-bisection
// with an ErrCanceled-wrapping error.
func exactCriticalPayment(ctx context.Context, set *BidSet, qualified []int, tg int, cfg Config, env solveEnv, base []int, win Winner, pr *pricer) (pay float64, probes int, err error) {
	probeCfg := cfg
	probeCfg.PaymentRule = RuleCritical // probes only need the allocation
	probeQual := qualified
	if cfg.ExcludeOwnBids {
		// Drop the winner's sibling bids from the probe instance so a
		// multi-minded client cannot move its own critical value by
		// re-pricing its other bids. (The shared sibling CSR may still
		// list them; pruning a bid outside the qualified set is a no-op.)
		probeQual = pr.qual[:0]
		for _, idx := range qualified {
			if idx == win.BidIndex || set.client[idx] != win.Bid.Client {
				probeQual = append(probeQual, idx)
			}
		}
		pr.qual = probeQual[:0]
	}
	// pr.probe shares every column of set except its private price column,
	// which already mirrors set's; each probe rewrites only the winner's
	// own entry and the deferred restore hands the next winner a clean
	// mirror again.
	probe := pr.probe
	defer func() { probe.price[win.BidIndex] = set.price[win.BidIndex] }()
	wins := func(price float64) (bool, error) {
		if ctx.Err() != nil {
			return false, canceledErr(ctx)
		}
		probes++
		probe.price[win.BidIndex] = price
		res := solveWDP(probe, probeQual, tg, probeCfg, pr.sc, base, env)
		if !res.Feasible {
			return false, nil
		}
		for _, w := range res.Winners {
			if w.BidIndex == win.BidIndex {
				return true, nil
			}
		}
		return false, nil
	}
	lo := win.Bid.Price
	w, err := wins(lo)
	if err != nil {
		return 0, probes, err
	}
	if !w {
		// The bid won only through interaction with its sibling bids;
		// without them it loses even at its own price. Pay the price
		// itself to preserve individual rationality.
		return lo, probes, nil
	}
	hi := math.Inf(1)
	if seed := win.Payment; seed > lo && !math.IsInf(seed, 1) &&
		(cfg.ReservePrice <= 0 || seed < cfg.ReservePrice) {
		// Probe the Algorithm 3 payment and one tolerance step above it:
		// when the locally critical value is the exact threshold (the
		// common case), the search ends here.
		step := bisectTol(seed)
		w, err = wins(seed)
		if err != nil {
			return 0, probes, err
		}
		if w {
			up, uerr := wins(seed + step)
			if uerr != nil {
				return 0, probes, uerr
			}
			if !up {
				return seed, probes, nil
			}
			lo = seed + step
		} else {
			down := seed - step
			if down <= lo {
				return lo, probes, nil
			}
			w, err = wins(down)
			if err != nil {
				return 0, probes, err
			}
			if w {
				return down, probes, nil
			}
			hi = down
		}
	}
	if math.IsInf(hi, 1) {
		if cfg.ReservePrice > 0 {
			// With a reserve, prices above it are disqualified, so the
			// threshold lives in [lo, reserve]. An essential winner is paid
			// the reserve itself — a bid-independent value.
			w, err = wins(cfg.ReservePrice)
			if err != nil {
				return 0, probes, err
			}
			if w {
				return cfg.ReservePrice, probes, nil
			}
			hi = cfg.ReservePrice
		} else {
			// Geometric doubling from a positive floor, so a zero-price
			// winner's bracket still grows (hi *= 2 from 0 never would).
			// Winning probes advance lo, keeping the final bracket one
			// doubling wide.
			d := lo
			if d < 1 {
				d = 1
			}
			won := true
			for range 48 {
				d *= 2
				w, err = wins(d)
				if err != nil {
					return 0, probes, err
				}
				if !w {
					won = false
					hi = d
					break
				}
				lo = d
			}
			if won {
				// Essential winner with no reserve configured: no finite
				// critical value exists. Keep the Algorithm 3 payment and
				// accept the (documented) loss of exact truthfulness on this
				// edge; configure ReservePrice to remove it.
				return win.Payment, probes, nil
			}
		}
	}
	for range 64 {
		if hi-lo <= bisectTol(hi) {
			break
		}
		mid := lo + (hi-lo)/2
		w, err = wins(mid)
		if err != nil {
			return 0, probes, err
		}
		if w {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, probes, nil
}
