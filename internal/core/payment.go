package core

import "math"

// PaymentRule selects how winner payments are computed.
type PaymentRule int

const (
	// RuleCritical is the paper's A_payment (Algorithm 3): each winner is
	// paid its marginal utility times the second-smallest average cost in
	// the candidate set of the round it was selected in. It is the zero
	// value deliberately, so Config{} reproduces the paper. The rule is
	// locally critical (Lemma 2) but, because the marginal utility R_il(S)
	// of a deferred schedule can shrink, it is not always the exact
	// Myerson threshold — see RuleExactCritical.
	RuleCritical PaymentRule = iota
	// RuleExactCritical pays each winner the exact critical value of its
	// bid: the supremum claimed price at which the bid still wins, found
	// by bisection over re-runs of the (price-monotone) greedy
	// allocation. It makes the mechanism exactly truthful in the claimed
	// price at the cost of O(log(1/ε)) extra solver runs per winner.
	RuleExactCritical
	// RulePayBid pays each winner its claimed price. Not truthful; used
	// as a baseline in incentive experiments.
	RulePayBid
)

// String returns the rule's name.
func (r PaymentRule) String() string {
	switch r {
	case RuleCritical:
		return "critical"
	case RuleExactCritical:
		return "exact-critical"
	case RulePayBid:
		return "pay-bid"
	default:
		return "unknown"
	}
}

// applyPaymentRule post-processes the payments of a feasible WDP result
// according to cfg.PaymentRule. RuleCritical payments were already computed
// during the greedy run. clientBids is the solve's client grouping, passed
// through so the bisection probes of RuleExactCritical reuse it instead of
// regrouping per probe. base is the pre-committed coverage of the solve
// (nil for a full market); probes must replay the same residual market or
// the bisection would price the wrong instance.
func applyPaymentRule(bids []Bid, qualified []int, tg int, cfg Config, clientBids map[int][]int, base []int, res *WDPResult) {
	switch cfg.PaymentRule {
	case RulePayBid:
		for i := range res.Winners {
			res.Winners[i].Payment = res.Winners[i].Bid.Price
		}
	case RuleExactCritical:
		for i := range res.Winners {
			res.Winners[i].Payment = exactCriticalPayment(bids, qualified, tg, cfg, clientBids, base, res.Winners[i])
		}
	}
}

// exactCriticalPayment bisects for the supremum price at which the
// winner's bid still wins the WDP, holding every other bid fixed. The
// allocation is monotone in a bid's price (lowering the price can only
// move its selection to an earlier greedy round), so the winning region is
// an interval [0, c*) and the bisection is exact up to tolerance.
//
// When the bid wins at any price (no competing supply), the Algorithm 3
// payment — its own claimed price, by the fallback of A_payment — is kept.
func exactCriticalPayment(bids []Bid, qualified []int, tg int, cfg Config, clientBids map[int][]int, base []int, win Winner) float64 {
	probeCfg := cfg
	probeCfg.PaymentRule = RuleCritical // probes only need the allocation
	probeQual := qualified
	if cfg.ExcludeOwnBids {
		// Drop the winner's sibling bids from the probe instance so a
		// multi-minded client cannot move its own critical value by
		// re-pricing its other bids. (clientBids may still list the
		// siblings; pruning a bid outside the qualified set is a no-op.)
		probeQual = make([]int, 0, len(qualified))
		for _, idx := range qualified {
			if idx == win.BidIndex || bids[idx].Client != win.Bid.Client {
				probeQual = append(probeQual, idx)
			}
		}
	}
	probe := make([]Bid, len(bids))
	// One pooled scratch serves every probe of the bisection: each
	// solveWDP call fully re-initializes the state it touches.
	sc := acquireScratch(len(bids), tg)
	defer releaseScratch(sc)
	wins := func(price float64) bool {
		copy(probe, bids)
		probe[win.BidIndex].Price = price
		res := solveWDP(probe, probeQual, tg, probeCfg, sc, clientBids, base)
		if !res.Feasible {
			return false
		}
		for _, w := range res.Winners {
			if w.BidIndex == win.BidIndex {
				return true
			}
		}
		return false
	}
	lo := win.Bid.Price
	if !wins(lo) {
		// The bid won only through interaction with its sibling bids;
		// without them it loses even at its own price. Pay the price
		// itself to preserve individual rationality.
		return lo
	}
	var hi float64
	if cfg.ReservePrice > 0 {
		// With a reserve, prices above it are disqualified, so the
		// threshold lives in [lo, reserve]. An essential winner is paid
		// the reserve itself — a bid-independent value.
		if wins(cfg.ReservePrice) {
			return cfg.ReservePrice
		}
		hi = cfg.ReservePrice
	} else {
		hi = lo
		won := true
		for range 48 {
			hi *= 2
			if !wins(hi) {
				won = false
				break
			}
		}
		if won {
			// Essential winner with no reserve configured: no finite
			// critical value exists. Keep the Algorithm 3 payment and
			// accept the (documented) loss of exact truthfulness on this
			// edge; configure ReservePrice to remove it.
			return win.Payment
		}
	}
	for range 64 {
		if hi-lo <= 1e-12*math.Max(1, hi) {
			break
		}
		mid := lo + (hi-lo)/2
		if wins(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
