package core_test

// Truthfulness regression suite for the incremental engine. The in-package
// mechanism tests (mechanism_test.go) probe the seed solver directly; this
// file locks the same economic properties onto the public Engine path, so a
// future change to the shared-context plumbing that silently altered
// payments or selection would fail here even if it kept costs intact:
//
//   - under RuleExactCritical no single-minded client — winner or loser —
//     can increase its utility by misreporting its price, including
//     misreports placed just above and just below the computed payment
//     (the Myerson critical-value property);
//   - A_winner's cost sits between the exact optimum (internal/exact
//     brute force) and RatioBound·optimum, and the dual certificate
//     lower-bounds the optimum;
//   - RuleCritical reproduces the §V-B worked example exactly through
//     both public entry points (RunWDP and Engine.SolveWDP).

import (
	"context"
	"reflect"
	"testing"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/exact"
	"github.com/fedauction/afl/internal/workload"
)

// tinyParams draws a single-minded population small enough for brute-force
// cross-checks. Prices stay below the reserve so the reserve only bounds
// the critical-value bisection, never the qualification.
func tinyParams(seed int64, clients, t, k int) workload.Params {
	p := workload.NewDefaultParams()
	p.Clients = clients
	p.BidsPerUser = 1
	p.T = t
	p.K = k
	p.TMax = 120
	p.Seed = seed
	return p
}

// engineWDPUtility overrides one bid's claimed price, re-solves the fixed
// T̂_g WDP through a fresh Engine, and returns the bidding client's
// utility: payment minus true cost if one of its bids won, 0 otherwise.
func engineWDPUtility(t *testing.T, bids []core.Bid, victim int, claimed float64, tg int, cfg core.Config) float64 {
	t.Helper()
	mod := make([]core.Bid, len(bids))
	copy(mod, bids)
	mod[victim].Price = claimed
	eng, err := core.NewEngine(mod, cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res := eng.SolveWDP(tg)
	if !res.Feasible {
		return 0
	}
	for _, w := range res.Winners {
		if w.Bid.Client == bids[victim].Client {
			return w.Payment - w.Bid.Cost()
		}
	}
	return 0
}

// TestEngineExactCriticalTruthfulness asserts that under RuleExactCritical
// no unilateral price misreport strictly increases a single-minded
// client's utility on the Engine path. Winners are additionally probed at
// claims just below and just above their computed payment: below must keep
// them winning (the payment is a threshold, not a function of the claim),
// above must not be profitable.
func TestEngineExactCriticalTruthfulness(t *testing.T) {
	winnersProbed, losersProbed := 0, 0
	for seed := int64(1); seed <= 24; seed++ {
		p := tinyParams(seed, 5+int(seed%5), 6, 1+int(seed%2))
		bids, err := workload.Generate(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range bids {
			bids[i].TrueCost = bids[i].Price
		}
		cfg := p.Config()
		cfg.PaymentRule = core.RuleExactCritical
		cfg.ExcludeOwnBids = true
		cfg.ReservePrice = 500
		eng, err := core.NewEngine(bids, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		base := eng.Run()
		if !base.Feasible {
			continue
		}
		// The parallel pricing pool must not perturb the economics the
		// probes below certify: 4 workers, bit-identical result.
		if par, err := eng.RunCtx(context.Background(), core.RunOptions{Workers: 4}); err != nil {
			t.Fatalf("seed %d: RunCtx(Workers:4): %v", seed, err)
		} else if !reflect.DeepEqual(par, base) {
			t.Fatalf("seed %d: parallel pricing diverged from the serial run", seed)
		}
		tg := base.Tg
		won := make(map[int]core.Winner)
		for _, w := range base.Winners {
			won[w.BidIndex] = w
		}
		for victim := range bids {
			truthful := engineWDPUtility(t, bids, victim, bids[victim].Price, tg, cfg)
			if truthful < -1e-9 {
				t.Fatalf("seed %d bid %d: truthful utility %.9f negative — individual rationality broken",
					seed, victim, truthful)
			}
			claims := []float64{
				bids[victim].Price * 0.5,
				bids[victim].Price * 0.9,
				bids[victim].Price * 1.1,
				bids[victim].Price * 1.5,
				bids[victim].Price * 2.5,
			}
			if w, ok := won[victim]; ok {
				winnersProbed++
				claims = append(claims, w.Payment*(1-1e-3), w.Payment*(1+1e-3))
			} else {
				losersProbed++
			}
			for _, claimed := range claims {
				if claimed <= 0 {
					continue
				}
				lying := engineWDPUtility(t, bids, victim, claimed, tg, cfg)
				if lying > truthful+1e-6 {
					t.Fatalf("seed %d bid %d (client %d): misreport %.4f→%.4f raises utility %.6f→%.6f",
						seed, victim, bids[victim].Client, bids[victim].Price, claimed, truthful, lying)
				}
			}
			if w, ok := won[victim]; ok && w.Payment > bids[victim].Price*(1+1e-9) {
				// Claiming just below the payment must keep the client a
				// winner at (essentially) the same payment: utility grows
				// by exactly the drop in claimed-vs-true cost gap, i.e.
				// stays equal since true cost is unchanged.
				under := engineWDPUtility(t, bids, victim, w.Payment*(1-1e-3), tg, cfg)
				if under < truthful-1e-4 {
					t.Fatalf("seed %d bid %d: claiming below payment %.4f dropped utility %.6f→%.6f — payment is not a critical value",
						seed, victim, w.Payment, truthful, under)
				}
			}
		}
	}
	if winnersProbed == 0 || losersProbed == 0 {
		t.Fatalf("degenerate probe mix: %d winners, %d losers", winnersProbed, losersProbed)
	}
}

// TestParallelPricingMisreportProbes extends the misreport probes to the
// lazy-parallel pricing path. Incentive compatibility proper is a fixed-
// T̂_g property (a misreport can shift the Algorithm 1 argmin, so the
// full-sweep utility is not monotone in the claim; the fixed-T̂_g probes
// live in TestEngineExactCriticalTruthfulness, whose instances the
// parallel path must reproduce bit-for-bit). What the probes here
// certify is therefore:
//
//   - misreport equivalence: on every perturbed market, a full concurrent
//     auction (sweep and exact-critical pricing fanned over 4 workers)
//     returns exactly the winners and payments of the eager-serial
//     reference, so lazification and the worker pool preserve whatever
//     incentives the eager mechanism has, claim by claim;
//   - individual rationality on the parallel path: a winner's payment
//     never undercuts its claimed price.
func TestParallelPricingMisreportProbes(t *testing.T) {
	probed := 0
	probe := func(bids []core.Bid, victim int, claimed float64, cfg core.Config) {
		t.Helper()
		mod := make([]core.Bid, len(bids))
		copy(mod, bids)
		mod[victim].Price = claimed
		par, err := core.RunAuctionConcurrent(mod, cfg, 4)
		if err != nil {
			t.Fatalf("RunAuctionConcurrent: %v", err)
		}
		eager, err := core.RunAuctionEager(mod, cfg)
		if err != nil {
			t.Fatalf("RunAuctionEager: %v", err)
		}
		if par.Feasible != eager.Feasible || par.Tg != eager.Tg ||
			!reflect.DeepEqual(par.Winners, eager.Winners) {
			t.Fatalf("bid %d claiming %.4f: parallel outcome diverged from the eager reference",
				victim, claimed)
		}
		for _, w := range par.Winners {
			if w.Payment < w.Bid.Price-1e-9 {
				t.Fatalf("bid %d claiming %.4f: winner %d paid %.6f below its price %.6f",
					victim, claimed, w.BidIndex, w.Payment, w.Bid.Price)
			}
		}
		probed++
	}
	for seed := int64(1); seed <= 6; seed++ {
		p := tinyParams(200+seed, 5+int(seed%4), 6, 1+int(seed%2))
		bids, err := workload.Generate(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range bids {
			bids[i].TrueCost = bids[i].Price
		}
		cfg := p.Config()
		cfg.PaymentRule = core.RuleExactCritical
		cfg.ExcludeOwnBids = true
		cfg.ReservePrice = 500
		for victim := range bids {
			for _, factor := range []float64{0.6, 1.0, 1.4, 2.2} {
				probe(bids, victim, bids[victim].Price*factor, cfg)
			}
		}
	}
	if probed < 100 {
		t.Fatalf("only %d misreports probed", probed)
	}
}

// TestEngineCostBracketsExactOptimum cross-checks the Engine's greedy WDP
// against the brute-force optimum on every feasible T̂_g of tiny
// instances: optimum ≤ greedy cost ≤ RatioBound·optimum, and the dual
// certificate never exceeds the optimum.
func TestEngineCostBracketsExactOptimum(t *testing.T) {
	checked := 0
	for seed := int64(1); seed <= 12; seed++ {
		p := tinyParams(100+seed, 4+int(seed%4), 5, 1+int(seed%2))
		if seed%3 == 0 {
			p.BidsPerUser = 2 // exercise one-bid-per-client in the optimum too
		}
		bids, err := workload.Generate(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cfg := p.Config()
		eng, err := core.NewEngine(bids, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for tg := 1; tg <= cfg.T; tg++ {
			res := eng.SolveWDP(tg)
			if !res.Feasible {
				continue // greedy A_winner is incomplete: it may miss solutions
			}
			qualified := core.Qualified(bids, tg, cfg)
			opt, ok := exact.BruteForce(bids, qualified, tg, cfg.K)
			if !ok {
				t.Fatalf("seed %d tg=%d: engine found a solution brute force says cannot exist", seed, tg)
			}
			checked++
			if res.Cost < opt-1e-9 {
				t.Fatalf("seed %d tg=%d: greedy cost %.9f below optimum %.9f", seed, tg, res.Cost, opt)
			}
			if res.Cost > res.Dual.RatioBound*opt+1e-6 {
				t.Fatalf("seed %d tg=%d: greedy cost %.6f exceeds RatioBound %.3f × optimum %.6f",
					seed, tg, res.Cost, res.Dual.RatioBound, opt)
			}
			if res.Dual.Bound() > opt+1e-6 {
				t.Fatalf("seed %d tg=%d: dual bound %.6f exceeds optimum %.6f — certificate invalid",
					seed, tg, res.Dual.Bound(), opt)
			}
		}
	}
	if checked < 20 {
		t.Fatalf("only %d feasible WDPs cross-checked against brute force", checked)
	}
}

// TestWorkedExamplePublicPaths reproduces the §V-B worked example —
// B1($2,[1,2],1), B2($6,[2,3],2), B3($5,[1,3],2) with T̂_g = 3, K = 1 —
// through both public entry points and asserts the paper's exact numbers:
// winners B1 (payment 2.5, slot {1}) and B3 (payment 6, slots {2,3}),
// total cost 7.
func TestWorkedExamplePublicPaths(t *testing.T) {
	bids := []core.Bid{
		{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 2, Rounds: 1},
		{Client: 1, Price: 6, Theta: 0.5, Start: 2, End: 3, Rounds: 2},
		{Client: 2, Price: 5, Theta: 0.5, Start: 1, End: 3, Rounds: 2},
	}
	cfg := core.Config{T: 3, K: 1, PaymentRule: core.RuleCritical}

	fromRunWDP, err := core.RunWDP(bids, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(bids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fromEngine := eng.SolveWDP(3)

	for name, res := range map[string]core.WDPResult{"RunWDP": fromRunWDP, "Engine.SolveWDP": fromEngine} {
		if !res.Feasible {
			t.Fatalf("%s: worked example must be feasible", name)
		}
		if res.Cost != 7.0 {
			t.Fatalf("%s: cost = %v, want 7", name, res.Cost)
		}
		if len(res.Winners) != 2 {
			t.Fatalf("%s: %d winners, want 2", name, len(res.Winners))
		}
		w1, w2 := res.Winners[0], res.Winners[1]
		if w1.BidIndex != 0 || w1.Payment != 2.5 || len(w1.Slots) != 1 || w1.Slots[0] != 1 {
			t.Fatalf("%s: first winner = bid %d payment %v slots %v, want bid 0 payment 2.5 slots [1]",
				name, w1.BidIndex, w1.Payment, w1.Slots)
		}
		if w2.BidIndex != 2 || w2.Payment != 6.0 || len(w2.Slots) != 2 || w2.Slots[0] != 2 || w2.Slots[1] != 3 {
			t.Fatalf("%s: second winner = bid %d payment %v slots %v, want bid 2 payment 6 slots [2 3]",
				name, w2.BidIndex, w2.Payment, w2.Slots)
		}
	}
}

// setWDPUtility is engineWDPUtility through the columnar facade: the
// misreported population is recompiled with CompileBids and solved via
// NewEngineSet.
func setWDPUtility(t *testing.T, bids []core.Bid, victim int, claimed float64, tg int, cfg core.Config) float64 {
	t.Helper()
	mod := make([]core.Bid, len(bids))
	copy(mod, bids)
	mod[victim].Price = claimed
	eng, err := core.NewEngineSet(core.CompileBids(mod), cfg)
	if err != nil {
		t.Fatalf("NewEngineSet: %v", err)
	}
	res := eng.SolveWDP(tg)
	if !res.Feasible {
		return 0
	}
	for _, w := range res.Winners {
		if w.Bid.Client == bids[victim].Client {
			return w.Payment - w.Bid.Cost()
		}
	}
	return 0
}

// TestColumnarExactCriticalMisreportProbes replays the misreport probes
// through the columnar ingestion path. Two claims per probe: the set
// path's utility equals the row path's EXACTLY (== on float64 — the
// columnar engine is a layout change, not an arithmetic change), and no
// misreport beats truthful bidding through the set path either.
func TestColumnarExactCriticalMisreportProbes(t *testing.T) {
	probed := 0
	for seed := int64(1); seed <= 8; seed++ {
		p := tinyParams(400+seed, 5+int(seed%4), 6, 1+int(seed%2))
		bids, err := workload.Generate(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range bids {
			bids[i].TrueCost = bids[i].Price
		}
		cfg := p.Config()
		cfg.PaymentRule = core.RuleExactCritical
		cfg.ExcludeOwnBids = true
		cfg.ReservePrice = 500
		set := core.CompileBids(bids)
		eng, err := core.NewEngineSet(set, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		base := eng.Run()
		rowEng, err := core.NewEngine(bids, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(base, rowEng.Run()) {
			t.Fatalf("seed %d: columnar full auction diverged from the row path", seed)
		}
		if !base.Feasible {
			continue
		}
		tg := base.Tg
		for victim := range bids {
			truthful := setWDPUtility(t, bids, victim, bids[victim].Price, tg, cfg)
			for _, factor := range []float64{0.6, 0.9, 1.1, 1.8} {
				claimed := bids[victim].Price * factor
				viaSet := setWDPUtility(t, bids, victim, claimed, tg, cfg)
				viaRows := engineWDPUtility(t, bids, victim, claimed, tg, cfg)
				if viaSet != viaRows {
					t.Fatalf("seed %d bid %d claiming %.4f: set utility %.9f != row utility %.9f",
						seed, victim, claimed, viaSet, viaRows)
				}
				if viaSet > truthful+1e-6 {
					t.Fatalf("seed %d bid %d: misreport %.4f→%.4f raises columnar utility %.6f→%.6f",
						seed, victim, bids[victim].Price, claimed, truthful, viaSet)
				}
				probed++
			}
		}
	}
	if probed < 100 {
		t.Fatalf("only %d columnar misreports probed", probed)
	}
}
