package core

import (
	"math"
	"math/rand"
	"testing"
)

// buildRepairScenario runs the auction on a random population, "drops"
// the first winner, and assembles the repair request the session runtime
// would issue at detection round detect: history marked satisfied,
// surviving winners' future slots pre-committed, all winners and the
// dropped client excluded from promotion.
func buildRepairScenario(t *testing.T, rng *rand.Rand, cfg Config) (eng *Engine, req RepairRequest, dropped int, ok bool) {
	t.Helper()
	bids := randomBids(rng, 10+rng.Intn(30), 4+rng.Intn(10), cfg.T)
	eng, err := NewEngine(bids, cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res := eng.Run()
	if !res.Feasible || len(res.Winners) < 2 {
		return nil, RepairRequest{}, 0, false
	}
	drop := res.Winners[0]
	detect := drop.Slots[0] // the drop is noticed at the winner's first round
	base := make([]int, res.Tg)
	for i := 0; i < detect-1; i++ {
		base[i] = cfg.K
	}
	exclude := map[int]bool{drop.Bid.Client: true}
	for _, w := range res.Winners[1:] {
		exclude[w.Bid.Client] = true
		for _, s := range w.Slots {
			if s >= detect {
				base[s-1]++
			}
		}
	}
	return eng, RepairRequest{Tg: res.Tg, From: detect, Base: base, Exclude: exclude}, drop.Bid.Client, true
}

func TestRepairRestoresCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := Config{T: 10, K: 2}
	repaired := 0
	for trial := 0; trial < 200; trial++ {
		eng, req, droppedClient, ok := buildRepairScenario(t, rng, cfg)
		if !ok {
			continue
		}
		res, err := eng.Repair(req)
		if err != nil {
			t.Fatalf("trial %d: Repair: %v", trial, err)
		}
		if len(res.Deficit) == 0 {
			// The schedule over-covered the dropped slots (representative
			// schedules may include already-full iterations): nothing to buy.
			if !res.Feasible || len(res.Winners) != 0 {
				t.Fatalf("trial %d: empty deficit must repair trivially, got %+v", trial, res)
			}
			continue
		}
		if !res.Feasible {
			continue // legitimately unrepairable: too little losing supply
		}
		repaired++
		gamma := append([]int(nil), req.Base...)
		var cost float64
		for _, w := range res.Winners {
			if req.Exclude[w.Bid.Client] {
				t.Fatalf("trial %d: excluded client %d promoted", trial, w.Bid.Client)
			}
			if w.Bid.Client == droppedClient {
				t.Fatalf("trial %d: dropped client %d promoted", trial, droppedClient)
			}
			if w.Payment+1e-9 < w.Bid.Price {
				t.Fatalf("trial %d: replacement paid %.6f below its price %.6f",
					trial, w.Payment, w.Bid.Price)
			}
			cost += w.Bid.Price
			for _, s := range w.Slots {
				if s < req.From || s > req.Tg {
					t.Fatalf("trial %d: replacement slot %d outside [%d,%d]",
						trial, s, req.From, req.Tg)
				}
				gamma[s-1]++
			}
		}
		for tt := req.From; tt <= req.Tg; tt++ {
			if gamma[tt-1] < cfg.K {
				t.Fatalf("trial %d: iteration %d still covered %d < K=%d after repair",
					trial, tt, gamma[tt-1], cfg.K)
			}
		}
		if math.Abs(cost-res.Cost) > 1e-9 {
			t.Fatalf("trial %d: reported cost %.6f != summed prices %.6f", trial, res.Cost, cost)
		}
	}
	if repaired == 0 {
		t.Fatal("no trial produced a feasible repair; scenario generator too hostile")
	}
}

func TestRepairNothingToBuy(t *testing.T) {
	cfg := Config{T: 6, K: 2}
	bids := randomBids(rand.New(rand.NewSource(3)), 20, 8, cfg.T)
	eng, err := NewEngine(bids, cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	base := make([]int, 6)
	for i := range base {
		base[i] = cfg.K
	}
	res, err := eng.Repair(RepairRequest{Tg: 6, From: 3, Base: base})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if !res.Feasible || len(res.Winners) != 0 || res.Cost != 0 {
		t.Fatalf("saturated base should repair trivially, got %+v", res)
	}
}

func TestRepairValidation(t *testing.T) {
	cfg := Config{T: 6, K: 2}
	bids := randomBids(rand.New(rand.NewSource(4)), 20, 8, cfg.T)
	eng, err := NewEngine(bids, cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	base := make([]int, 6)
	bad := []RepairRequest{
		{Tg: 0, From: 1, Base: nil},
		{Tg: 7, From: 1, Base: make([]int, 7)},
		{Tg: 6, From: 0, Base: base},
		{Tg: 6, From: 7, Base: base},
		{Tg: 6, From: 1, Base: make([]int, 5)},
		{Tg: 6, From: 1, Base: []int{0, 0, -1, 0, 0, 0}},
	}
	for i, req := range bad {
		if _, err := eng.Repair(req); err == nil {
			t.Fatalf("request %d should have been rejected: %+v", i, req)
		}
	}
}

func TestRepairInfeasibleReportsDeficit(t *testing.T) {
	cfg := Config{T: 6, K: 2}
	bids := randomBids(rand.New(rand.NewSource(5)), 20, 8, cfg.T)
	eng, err := NewEngine(bids, cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	exclude := make(map[int]bool)
	for _, b := range bids {
		exclude[b.Client] = true
	}
	res, err := eng.Repair(RepairRequest{Tg: 6, From: 2, Base: make([]int, 6), Exclude: exclude})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if res.Feasible {
		t.Fatal("repair with every client excluded cannot be feasible")
	}
	if len(res.Deficit) != 5 {
		t.Fatalf("deficit should list iterations 2..6, got %v", res.Deficit)
	}
}

// TestRepairEmptyBaseMatchesSolveWDP pins the residual solver to the
// original one: with no pre-committed coverage, no exclusions and the
// full horizon, Repair must reproduce Engine.SolveWDP exactly.
func TestRepairEmptyBaseMatchesSolveWDP(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := Config{T: 8, K: 2}
	for trial := 0; trial < 100; trial++ {
		bids := randomBids(rng, 10+rng.Intn(25), 4+rng.Intn(8), cfg.T)
		eng, err := NewEngine(bids, cfg)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		want := eng.SolveWDP(cfg.T)
		got, err := eng.Repair(RepairRequest{Tg: cfg.T, From: 1, Base: make([]int, cfg.T)})
		if err != nil {
			t.Fatalf("trial %d: Repair: %v", trial, err)
		}
		if got.Feasible != want.Feasible {
			t.Fatalf("trial %d: feasibility %v != %v", trial, got.Feasible, want.Feasible)
		}
		if !want.Feasible {
			continue
		}
		if math.Abs(got.Cost-want.Cost) > 1e-12 {
			t.Fatalf("trial %d: cost %.12f != %.12f", trial, got.Cost, want.Cost)
		}
		if len(got.Winners) != len(want.Winners) {
			t.Fatalf("trial %d: %d winners != %d", trial, len(got.Winners), len(want.Winners))
		}
		for i := range got.Winners {
			g, w := got.Winners[i], want.Winners[i]
			if g.BidIndex != w.BidIndex || g.Payment != w.Payment {
				t.Fatalf("trial %d winner %d: (%d, %.12f) != (%d, %.12f)",
					trial, i, g.BidIndex, g.Payment, w.BidIndex, w.Payment)
			}
		}
	}
}

// TestRepairPaymentsAreCriticalValues is the misreport probe on the
// repair market: under RuleExactCritical, a promoted replacement keeps
// winning (at the same payment) when it underbids its payment, and loses
// the promotion when it overbids it. That is precisely the critical-value
// property that makes truthful bidding dominant for replacements.
func TestRepairPaymentsAreCriticalValues(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cfg := Config{T: 10, K: 2, PaymentRule: RuleExactCritical}
	probes := 0
	for trial := 0; trial < 120 && probes < 25; trial++ {
		eng, req, _, ok := buildRepairScenario(t, rng, cfg)
		if !ok {
			continue
		}
		res, err := eng.Repair(req)
		if err != nil {
			t.Fatalf("trial %d: Repair: %v", trial, err)
		}
		if !res.Feasible || len(res.Winners) == 0 {
			continue
		}
		w := res.Winners[0]
		bids := eng.ax.set.Bids()
		reRun := func(price float64) (won bool, payment float64) {
			probe := append([]Bid(nil), bids...)
			probe[w.BidIndex].Price = price
			probeEng, err := NewEngine(probe, cfg)
			if err != nil {
				t.Fatalf("trial %d: probe engine: %v", trial, err)
			}
			pres, err := probeEng.Repair(req)
			if err != nil {
				t.Fatalf("trial %d: probe repair: %v", trial, err)
			}
			for _, pw := range pres.Winners {
				if pw.Bid.Client == w.Bid.Client && pw.Bid.Index == w.Bid.Index {
					return true, pw.Payment
				}
			}
			return false, 0
		}
		if wonAtHuge, _ := reRun(w.Payment*1e6 + 1); wonAtHuge {
			// Essential replacement: without a reserve price it wins at any
			// bid and has no finite critical value (documented
			// RuleExactCritical edge), so the probes do not apply.
			continue
		}
		if under := 0.5 * w.Bid.Price; under > 0 {
			won, pay := reRun(under)
			if !won {
				t.Fatalf("trial %d: replacement lost after lowering its price", trial)
			}
			if math.Abs(pay-w.Payment) > 1e-6*(1+w.Payment) {
				t.Fatalf("trial %d: payment moved with own bid: %.9f != %.9f", trial, pay, w.Payment)
			}
		}
		if over := w.Payment * 1.001; over > w.Bid.Price {
			if won, _ := reRun(over); won {
				t.Fatalf("trial %d: replacement still promoted bidding %.6f above its critical value %.6f",
					trial, over, w.Payment)
			}
		}
		probes++
	}
	if probes == 0 {
		t.Fatal("no feasible repair produced a probe; generator too hostile")
	}
}
