package core

import "math"

// Read-only column and shape-class accessors over a compiled population.
//
// They exist for the column-generation package, which prices bids against
// LP duals directly on the compiled columns: per-bid Bid() copies would
// dominate a pricing pass over 10⁵⁺ bids, and the shape-class index turns
// that pass from one best-slot computation per bid into one per distinct
// availability-window shape, with a price-ordered early exit inside each
// class. The accessors are exact views — no recomputation, no copies
// beyond scalar reads — so a consumer sees precisely the columns the
// greedy solver uses.

// PriceAt returns bid i's claimed price ρ.
func (s *BidSet) PriceAt(i int) float64 { return s.price[i] }

// ClientAt returns the client that owns bid i.
func (s *BidSet) ClientAt(i int) int { return s.client[i] }

// WindowAt returns bid i's availability window [start, end] and its
// required participation rounds.
func (s *BidSet) WindowAt(i int) (start, end, rounds int) {
	return s.start[i], s.end[i], s.rounds[i]
}

// ShapeClassCount returns the number of distinct availability-window
// shapes (start, end, rounds) in the population, building the class index
// on first use. It returns 0 on price views (pricing probes), whose
// rewritten price column invalidates the index's member order.
func (s *BidSet) ShapeClassCount() int {
	ci := s.classes()
	if ci == nil {
		return 0
	}
	return ci.n
}

// ShapeClass returns the window shape of class c.
func (s *BidSet) ShapeClass(c int) (start, end, rounds int) {
	ci := s.classes()
	return ci.lo[c], ci.hi[c], ci.r[c]
}

// ShapeClassMembers returns class c's bid indices in ascending
// (price, bid) order — the greedy's intra-class selection order. The
// returned slice aliases the index; callers must not mutate it.
func (s *BidSet) ShapeClassMembers(c int) []int {
	ci := s.classes()
	row := ci.members[ci.memberStart[c]:ci.memberStart[c+1]]
	return row[:len(row):len(row)]
}

// SolveWDPSet is SolveWDP over an already compiled population: identical
// greedy, payments and dual certificate, minus the per-call row
// compilation. It is the seeding entry of the column-generation lower
// bound, which operates on the same BidSet and must start from exactly
// the cover the sweep would produce at tg.
func SolveWDPSet(set *BidSet, qualified []int, tg int, cfg Config) WDPResult {
	if tg < 1 || len(qualified) == 0 {
		return WDPResult{Tg: tg}
	}
	if cfg.K > math.MaxInt/tg {
		return WDPResult{Tg: tg}
	}
	sc := acquireScratch(set.n, tg)
	res := solveWDP(set, qualified, tg, cfg, sc, nil, solveEnv{})
	releaseScratch(sc)
	applyPaymentRule(set, qualified, tg, cfg, solveEnv{}, nil, &res)
	return res
}
