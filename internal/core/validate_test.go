package core

import (
	"strings"
	"testing"
)

// validSolution builds a small hand-checked feasible solution to corrupt.
func validSolution() ([]Bid, Result, Config) {
	bids := []Bid{
		{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 3, Rounds: 2, CompTime: 5, CommTime: 10},
		{Client: 1, Price: 3, Theta: 0.5, Start: 1, End: 3, Rounds: 3, CompTime: 5, CommTime: 10},
	}
	res := Result{
		Feasible: true,
		Tg:       3,
		Cost:     5,
		Winners: []Winner{
			{BidIndex: 0, Bid: bids[0], Slots: []int{1, 2}, Payment: 2.5},
			{BidIndex: 1, Bid: bids[1], Slots: []int{1, 2, 3}, Payment: 3.5},
		},
	}
	cfg := Config{T: 3, K: 1, TMax: 60}
	return bids, res, cfg
}

func TestCheckSolutionAcceptsValid(t *testing.T) {
	bids, res, cfg := validSolution()
	if err := CheckSolution(bids, res, cfg); err != nil {
		t.Fatal(err)
	}
	// Infeasible results are trivially fine.
	if err := CheckSolution(bids, Result{}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCheckSolutionRejectsCorruptions(t *testing.T) {
	tests := []struct {
		name    string
		corrupt func(bids []Bid, res *Result, cfg *Config)
		errPart string
	}{
		{
			name:    "Tg above T",
			corrupt: func(_ []Bid, r *Result, _ *Config) { r.Tg = 9 },
			errPart: "outside",
		},
		{
			name:    "bid index out of range",
			corrupt: func(_ []Bid, r *Result, _ *Config) { r.Winners[0].BidIndex = 7 },
			errPart: "out of range",
		},
		{
			name:    "winner bid mismatch",
			corrupt: func(_ []Bid, r *Result, _ *Config) { r.Winners[0].Bid.Price = 99; r.Cost = 102 },
			errPart: "does not match",
		},
		{
			name: "duplicate client",
			corrupt: func(bids []Bid, r *Result, _ *Config) {
				r.Winners[1] = r.Winners[0]
				r.Cost = 4
			},
			errPart: "(6f)",
		},
		{
			name:    "wrong slot count",
			corrupt: func(_ []Bid, r *Result, _ *Config) { r.Winners[0].Slots = []int{1} },
			errPart: "(6c)",
		},
		{
			name:    "slot above Tg",
			corrupt: func(_ []Bid, r *Result, _ *Config) { r.Winners[1].Slots = []int{1, 2, 9} },
			errPart: "outside [1,3]",
		},
		{
			name:    "duplicate slot",
			corrupt: func(_ []Bid, r *Result, _ *Config) { r.Winners[1].Slots = []int{1, 2, 2} },
			errPart: "twice",
		},
		{
			name: "slot outside window",
			corrupt: func(bids []Bid, r *Result, _ *Config) {
				bids[0].Start = 2
				r.Winners[0].Bid.Start = 2
				r.Winners[0].Slots = []int{1, 2}
			},
			errPart: "(6e)",
		},
		{
			name: "theta incompatible with Tg",
			corrupt: func(bids []Bid, r *Result, _ *Config) {
				bids[0].Theta = 0.9
				r.Winners[0].Bid.Theta = 0.9
			},
			errPart: "(6b)",
		},
		{
			name: "per-round time above t_max",
			corrupt: func(bids []Bid, r *Result, cfg *Config) {
				cfg.TMax = 10
			},
			errPart: "(6d)",
		},
		{
			name:    "payment below price",
			corrupt: func(_ []Bid, r *Result, _ *Config) { r.Winners[0].Payment = 1 },
			errPart: "below its price",
		},
		{
			name:    "cost mismatch",
			corrupt: func(_ []Bid, r *Result, _ *Config) { r.Cost = 42 },
			errPart: "differs from recomputed",
		},
		{
			name: "coverage shortfall",
			corrupt: func(_ []Bid, r *Result, _ *Config) {
				r.Winners = r.Winners[:1]
				r.Cost = 2
			},
			errPart: "(6a)",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			bids, res, cfg := validSolution()
			tc.corrupt(bids, &res, &cfg)
			err := CheckSolution(bids, res, cfg)
			if err == nil {
				t.Fatal("corruption not detected")
			}
			if !strings.Contains(err.Error(), tc.errPart) {
				t.Fatalf("error %q does not mention %q", err, tc.errPart)
			}
		})
	}
}

func TestCheckWDPSolutionWidensHorizon(t *testing.T) {
	// A WDP solved at T̂_g beyond cfg.T (possible when callers sweep) must
	// still validate against its own horizon.
	bids := []Bid{
		{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 4, Rounds: 4},
	}
	wdp := WDPResult{
		Tg:       4,
		Feasible: true,
		Cost:     2,
		Winners: []Winner{
			{BidIndex: 0, Bid: bids[0], Slots: []int{1, 2, 3, 4}, Payment: 2},
		},
	}
	if err := CheckWDPSolution(bids, wdp, Config{T: 2, K: 1}); err != nil {
		t.Fatal(err)
	}
	if err := CheckWDPSolution(bids, WDPResult{}, Config{T: 2, K: 1}); err != nil {
		t.Fatal(err)
	}
}
