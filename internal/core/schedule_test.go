package core

import (
	"testing"

	"github.com/fedauction/afl/internal/stats"
)

func TestScheduleRuleString(t *testing.T) {
	if ScheduleLeastCovered.String() != "least-covered" ||
		ScheduleEarliest.String() != "earliest-fit" ||
		ScheduleRule(9).String() != "unknown" {
		t.Fatal("schedule rule names wrong")
	}
}

func TestConfigValidateScheduleRule(t *testing.T) {
	cfg := Config{T: 5, K: 1, ScheduleRule: ScheduleRule(42)}
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected unknown-schedule-rule error")
	}
}

func TestEarliestFitSchedules(t *testing.T) {
	// Earliest-fit always uses the first c slots of the window.
	bids := []Bid{
		{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 4, Rounds: 2},
		{Client: 1, Price: 3, Theta: 0.5, Start: 1, End: 4, Rounds: 2},
		{Client: 2, Price: 4, Theta: 0.5, Start: 1, End: 4, Rounds: 4},
	}
	cfg := Config{T: 4, K: 1, ScheduleRule: ScheduleEarliest}
	res := SolveWDP(bids, []int{0, 1, 2}, 4, cfg)
	if !res.Feasible {
		t.Fatal("instance feasible via client 2")
	}
	for _, w := range res.Winners {
		for i, s := range w.Slots {
			if s != w.Bid.Start+i {
				t.Fatalf("earliest-fit winner %v scheduled %v, want prefix of window", w.Bid, w.Slots)
			}
		}
	}
	if err := CheckWDPSolution(bids, res, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEarliestFitCanFailWhereLeastCoveredSucceeds(t *testing.T) {
	// Both clients' earliest-fit schedules pile onto slot 1-2 leaving 3-4
	// uncovered; the least-covered rule spreads them.
	bids := []Bid{
		{Client: 0, Price: 1, Theta: 0.5, Start: 1, End: 4, Rounds: 2},
		{Client: 1, Price: 1, Theta: 0.5, Start: 1, End: 4, Rounds: 2},
	}
	smart := SolveWDP(bids, []int{0, 1}, 4, Config{T: 4, K: 1})
	naive := SolveWDP(bids, []int{0, 1}, 4, Config{T: 4, K: 1, ScheduleRule: ScheduleEarliest})
	if !smart.Feasible {
		t.Fatal("least-covered rule should cover all four slots")
	}
	if naive.Feasible {
		t.Fatal("earliest-fit should fail: both schedules fixed to slots {1,2}")
	}
}

func TestEarliestFitNeverCheaperOnAverage(t *testing.T) {
	rng := stats.NewRNG(909)
	var smartSum, naiveSum float64
	n := 0
	for trial := 0; trial < 80; trial++ {
		bids, tg, k := randomWDPInstance(rng)
		cfg := Config{T: tg, K: k}
		qual := Qualified(bids, tg, cfg)
		smart := SolveWDP(bids, qual, tg, cfg)
		naive := SolveWDP(bids, qual, tg, Config{T: tg, K: k, ScheduleRule: ScheduleEarliest})
		if !smart.Feasible || !naive.Feasible {
			continue
		}
		if err := CheckWDPSolution(bids, naive, Config{T: tg, K: k}); err != nil {
			t.Fatalf("trial %d: naive solution invalid: %v", trial, err)
		}
		smartSum += smart.Cost
		naiveSum += naive.Cost
		n++
	}
	if n < 10 {
		t.Fatalf("only %d jointly feasible instances", n)
	}
	if smartSum > naiveSum+1e-9 {
		t.Fatalf("least-covered mean cost %.2f above earliest-fit %.2f over %d instances",
			smartSum/float64(n), naiveSum/float64(n), n)
	}
}
