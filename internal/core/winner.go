package core

import (
	"math"
	"slices"
	"sort"

	"github.com/fedauction/afl/internal/stats"
)

// solveEnv carries optional precomputed structure into solveWDP. A zero
// solveEnv means "build everything per solve" — the fully general
// standalone path, valid for arbitrary qualified sets. The sweep and the
// pricing probes attach the auction context's shared structure instead:
//
//   - slotStart/slotElems, when non-nil, are the context's full-horizon
//     slot CSR (see auctionContext.slotStart). Per-solve slot-index
//     construction then collapses to tg row-header assignments. Requires
//     qualified ⊆ {i : enterTg[i] ≤ T}, which holds for every context- or
//     probe-derived qualified set.
//   - psi, when non-nil, is the externally maintained ψ_max column for
//     slots [1, len(psi)] with len(psi) ≥ tg: psi[t-1] is the maximum
//     bidding price among qualified bids whose clipped window contains t.
//     The sweep maintains it incrementally across ascending T̂_g
//     (ScheduleLeastCovered only — see sweepSegment); float max over a
//     set is order-independent, so the replayed column is bit-identical
//     to the per-solve accumulation it replaces.
//   - classes + enterTg, when non-nil, engage the class-based selection
//     fast path (see classsel.go): the greedy heaps hold one entry per
//     availability-window shape class instead of one per bid, with
//     bit-identical selection order. Only the sweep attaches them —
//     pricing probes rewrite prices (breaking the compile-time class
//     order) and repair pre-commits coverage (base != nil), so both run
//     the fully general per-bid heaps.
type solveEnv struct {
	slotStart, slotElems []int
	psi                  []float64
	classes              *classIndex
	enterTg              []int
}

// SolveWDP runs A_winner (Algorithm 2) on one winner-determination problem:
// given the qualified bid indices for a fixed number of global iterations
// tg, it greedily selects schedules with minimum average cost until every
// iteration t ∈ [1, tg] has cfg.K participants, computes critical-value
// payments (Algorithm 3), and assembles the dual certificate of Lemma 5.
//
// bids is the full bid slice of the auction; qualified indexes into it.
// The function never mutates bids or qualified. It is the row-oriented
// compat entry: the slice is compiled to a columnar BidSet on entry
// (compilation is exact, so results are bit-identical to pre-columnar
// builds). Working state comes from a pooled scratch arena, so a call
// only allocates the compiled columns and what escapes into the returned
// WDPResult; sweep and batch callers avoid even that by solving through
// an Engine or a shared BidSet.
func SolveWDP(bids []Bid, qualified []int, tg int, cfg Config) WDPResult {
	if tg < 1 || len(qualified) == 0 {
		return WDPResult{Tg: tg}
	}
	if cfg.K > math.MaxInt/tg {
		// Guard before sizing the arena: a K·tg that overflows int is
		// unfillable demand, not a tg-sized allocation request.
		return WDPResult{Tg: tg}
	}
	set := CompileBids(bids)
	sc := acquireScratch(set.n, tg)
	res := solveWDP(set, qualified, tg, cfg, sc, nil, solveEnv{})
	releaseScratch(sc)
	// Standalone solves are priced eagerly: a single-WDP caller expects a
	// finished result. The sweep instead leaves solveWDP's Algorithm 3
	// payments in place and prices only the selected T̂_g (priceWinners).
	applyPaymentRule(set, qualified, tg, cfg, solveEnv{}, nil, &res)
	return res
}

// solveWDP is the engine behind SolveWDP: the same greedy, payments and
// dual bookkeeping, operating on the columnar BidSet with caller-provided
// scratch (reused across the T̂_g sweep and across payment-probe re-runs)
// and optional precomputed structure in env.
//
// base, when non-nil, pre-commits base[t-1] units of coverage to
// iteration t before the greedy starts — the residual market of a
// mid-session repair, where surviving winners already cover part of the
// demand. The greedy then only buys the missing coverage; payments are
// critical values in that residual market. base is read-only; nil keeps
// the original empty-market behaviour bit-for-bit.
func solveWDP(set *BidSet, qualified []int, tg int, cfg Config, sc *wdpScratch, base []int, env solveEnv) WDPResult {
	res := WDPResult{Tg: tg}
	if tg < 1 || len(qualified) == 0 {
		return res
	}
	if cfg.K > math.MaxInt/tg {
		// K·tg overflows int: demand this large can never be covered by
		// a validated bid population, so the WDP is infeasible. (The
		// pre-guard seed code wrapped the target negative and declared
		// an empty selection feasible.)
		return res
	}
	w := sc.init(set, qualified, tg, cfg, base, env)
	target := cfg.K * tg
	if w.cls != nil {
		for w.covered < target {
			ce, ok := w.popValidClass(&sc.clsHeapC, w.inC, w.curC)
			if !ok {
				return res // not enough supply: this WDP is infeasible
			}
			w.selectWinnerClass(ce)
			res.Rounds++
		}
	} else {
		for w.covered < target {
			e, ok := w.popValid(&sc.heapC, w.inC)
			if !ok {
				return res // not enough supply: this WDP is infeasible
			}
			w.selectWinner(e)
			res.Rounds++
		}
	}
	res.Feasible = true
	res.Winners = w.winners
	for _, win := range w.winners {
		res.Cost += win.Bid.Price
	}
	res.Dual = w.finalizeDual(cfg.K)
	// Winners carry the Algorithm 3 payments computed in-greedy. Rules
	// that post-process payments (RulePayBid, RuleExactCritical) are
	// applied lazily by the caller — once, on the WDP whose payments are
	// actually used — via applyPaymentRule or priceWinners.
	return res
}

// wdpState is the mutable state of one A_winner run. All of its storage
// is backed by a wdpScratch arena; only result data (winners, schedules,
// duals) is freshly allocated.
type wdpState struct {
	set       *BidSet
	qualified []int
	tg        int
	cfg       Config
	sc        *wdpScratch

	// gamma[t-1] is γ_t, the number of clients scheduled at iteration t.
	gamma []int
	// covered is R(S) = Σ_t min(γ_t, K).
	covered int
	// m[idx] is the number of still-available (γ_t < K) iterations inside
	// bid idx's effective window; the bid's marginal utility is
	// R = min(c, m). m is valid only at qualified bid indices.
	m []int
	// slotBids[t-1] lists the bids whose effective slot range contains t,
	// so m can be decremented when t fills up. Rows are either scratch-
	// owned per-solve lists of qualified bids, or (env path) borrowed
	// subslices of the context's full-horizon CSR — the latter also carry
	// not-yet-qualified bids, whose m entries are dead (never read).
	slotBids [][]int

	// inC / inG are membership flags for the candidate set C and the grand
	// set G of Algorithm 2, valid at qualified bid indices. C drops every
	// bid of a winning client; G drops only the selected schedule.
	// (The selection heaps live in sc.heapC / sc.heapG: entries carry a
	// snapshot of m; a popped entry whose snapshot is stale is re-keyed
	// and reinserted — average cost only grows as slots fill, so the lazy
	// strategy preserves exact greedy order.)
	inC, inG []bool

	winners []Winner

	// Dual bookkeeping (lines 9, 11-12 and 16-23 of Algorithm 2).
	// phiMax[t-1] = η_φ(t) = max_l φ(t,l) over selected schedules.
	// phiMin[t-1] = min_l φ(t,l) over selected schedules.
	// phiPrime[t-1] = min over rounds of φ(t, l^{i#})' for the best
	// unselected schedule of each round.
	phiMax, phiMin, phiPrime []float64
	// psiMax[t-1] = ψ_max^t, the maximum bidding price among qualified
	// bids whose window contains t. Either accumulated during init or
	// borrowed read-only from env.psi.
	psiMax []float64

	// Class-path state (nil / unused on the per-bid path; see
	// classsel.go). cls is the population's shape-class index, enterTg
	// the qualification entry points for member scans, curC/curG the
	// per-class head cursors of the two selection sets, and
	// filledPrefix[t] the number of filled (γ = K) slots in [1, t] —
	// the class-uniform m source.
	cls          *classIndex
	enterTg      []int
	curC, curG   []int
	filledPrefix []int
}

// init resets the arena for one solve and builds the initial A_winner
// state: slot indices, marginal-utility counters, membership flags and
// the two selection heaps. It touches exactly the state the solve will
// read, which is what makes pooled reuse safe without any clearing on
// release.
func (sc *wdpScratch) init(set *BidSet, qualified []int, tg int, cfg Config, base []int, env solveEnv) *wdpState {
	w := &sc.state
	*w = wdpState{
		set:       set,
		qualified: qualified,
		tg:        tg,
		cfg:       cfg,
		sc:        sc,
		gamma:     sc.gamma[:tg],
		m:         sc.m,
		inC:       sc.inC,
		inG:       sc.inG,
		phiMax:    sc.phiMax[:tg],
		phiMin:    sc.phiMin[:tg],
		phiPrime:  sc.phiPrime[:tg],
		psiMax:    sc.psiMax[:tg],
	}
	extPsi := env.psi != nil
	if extPsi {
		w.psiMax = env.psi[:tg]
	}
	// Owned rows and borrowed CSR rows live in separate scratch arrays:
	// sc.slotBids rows are append-grown and reset with [:0], which must
	// never alias the context's immutable slotElems storage.
	extSlots := env.slotStart != nil
	if extSlots {
		w.slotBids = sc.slotRows[:tg]
	} else {
		w.slotBids = sc.slotBids[:tg]
	}
	for t := 0; t < tg; t++ {
		g := 0
		if base != nil {
			g = base[t]
		}
		w.gamma[t] = g
		if g >= cfg.K {
			w.covered += cfg.K
		} else {
			w.covered += g
		}
		if extSlots {
			w.slotBids[t] = env.slotElems[env.slotStart[t]:env.slotStart[t+1]]
		} else {
			w.slotBids[t] = w.slotBids[t][:0]
		}
		w.phiMax[t] = 0
		w.phiMin[t] = math.Inf(1)
		w.phiPrime[t] = math.Inf(1)
		if !extPsi {
			w.psiMax[t] = 0
		}
	}
	sc.heapC = sc.heapC[:0]
	sc.heapG = sc.heapG[:0]
	earliest := cfg.ScheduleRule == ScheduleEarliest
	// The class path replaces the per-bid heaps and m bookkeeping with
	// class-level structure (see classsel.go); the membership flags and
	// any per-solve ψ accumulation stay per-bid.
	classes := env.classes != nil && base == nil
	for _, idx := range qualified {
		lo := set.start[idx]
		hi := set.end[idx]
		if hi > tg {
			hi = tg
		}
		if !extPsi {
			p := set.price[idx]
			for t := lo; t <= hi; t++ {
				if p > w.psiMax[t-1] {
					w.psiMax[t-1] = p
				}
			}
		}
		w.inC[idx] = true
		w.inG[idx] = true
		if classes {
			continue
		}
		// m counts the still-available iterations the bid's representative
		// schedule can draw from: the whole window under the paper's
		// least-covered rule, only the fixed earliest-fit slots otherwise.
		shi := hi
		if earliest {
			if e := lo + set.rounds[idx] - 1; e < shi {
				shi = e
			}
		}
		if base == nil {
			w.m[idx] = shi - lo + 1
		} else {
			// Pre-committed coverage consumes slot capacity before the
			// greedy starts: m counts only the still-open iterations.
			n := 0
			for t := lo; t <= shi; t++ {
				if w.gamma[t-1] < cfg.K {
					n++
				}
			}
			w.m[idx] = n
		}
		if !extSlots {
			for t := lo; t <= shi; t++ {
				w.slotBids[t-1] = append(w.slotBids[t-1], idx)
			}
		}
		e := w.entryFor(idx)
		sc.heapC = append(sc.heapC, e)
		sc.heapG = append(sc.heapG, e)
	}
	if classes {
		w.initClasses(env)
	} else {
		sc.heapC.init()
		sc.heapG.init()
	}
	return w
}

// windowOf returns bid idx's effective availability window [lo, hi]
// clipped to the WDP horizon.
func (w *wdpState) windowOf(idx int) (lo, hi int) {
	hi = w.set.end[idx]
	if hi > w.tg {
		hi = w.tg
	}
	return w.set.start[idx], hi
}

// slotRangeOf returns the iterations a bid's representative schedule draws
// from: the whole clipped window under ScheduleLeastCovered, the fixed
// first c_ij iterations under ScheduleEarliest.
func (w *wdpState) slotRangeOf(idx int) (lo, hi int) {
	lo, hi = w.windowOf(idx)
	if w.cfg.ScheduleRule == ScheduleEarliest && lo+w.set.rounds[idx]-1 < hi {
		hi = lo + w.set.rounds[idx] - 1
	}
	return lo, hi
}

// marginal returns the utility gain R_il(S) of the bid's representative
// schedule. Under the paper's least-covered rule the schedule takes the
// c_ij smallest-γ iterations of the window; available iterations
// (γ_t < K) sort before full ones, so the gain is min(c_ij, m). Under
// earliest-fit the slot set is fixed and the gain is exactly the number
// of its slots still available.
func (w *wdpState) marginal(idx int) int {
	m := w.m[idx]
	if w.cfg.ScheduleRule == ScheduleEarliest {
		return m
	}
	if r := w.set.rounds[idx]; r < m {
		return r
	}
	return m
}

func (w *wdpState) entryFor(idx int) heapEntry {
	r := w.marginal(idx)
	key := math.Inf(1)
	if r > 0 {
		key = w.set.price[idx] / float64(r)
	}
	return heapEntry{key: key, bid: idx, mSnap: w.m[idx]}
}

// popValid pops the minimum-average-cost entry of h whose membership flag
// is set and whose m snapshot is current, lazily re-keying stale entries.
func (w *wdpState) popValid(h *entryHeap, in []bool) (heapEntry, bool) {
	for h.Len() > 0 {
		e := h.pop()
		if !in[e.bid] {
			continue
		}
		if e.mSnap != w.m[e.bid] {
			if w.marginal(e.bid) > 0 {
				h.push(w.entryFor(e.bid))
			}
			continue
		}
		if w.marginal(e.bid) == 0 {
			continue
		}
		return e, true
	}
	return heapEntry{}, false
}

// peekValid returns the minimum valid entry of h not rejected by skip,
// restoring every entry it inspected. It is used for the critical-value
// payment (second-smallest average cost in C) and for the best unselected
// schedule (i#, l#) in G.
func (w *wdpState) peekValid(h *entryHeap, in []bool, skip func(bid int) bool) (heapEntry, bool) {
	kept := w.sc.kept[:0]
	var found heapEntry
	ok := false
	for h.Len() > 0 {
		e, popped := w.popValid(h, in)
		if !popped {
			break
		}
		if skip != nil && skip(e.bid) {
			kept = append(kept, e)
			continue
		}
		found, ok = e, true
		kept = append(kept, e)
		break
	}
	for _, e := range kept {
		h.push(e)
	}
	w.sc.kept = kept[:0]
	return found, ok
}

// repCandidates computes the bid's representative schedule l_ij — the
// c_ij iterations with the smallest coverage count γ_t inside the
// effective window, ties broken by iteration index — into buf, in
// least-covered-first order.
func (w *wdpState) repCandidates(idx int, buf []int) []int {
	lo, hi := w.slotRangeOf(idx)
	cand := buf[:0]
	for t := lo; t <= hi; t++ {
		cand = append(cand, t)
	}
	if w.cfg.ScheduleRule != ScheduleEarliest {
		// (γ_t, t) is a total order — no equal keys — so the unstable
		// slices.SortFunc yields the same permutation sort.Slice did,
		// without the reflect-based swapper allocation.
		slices.SortFunc(cand, func(a, b int) int {
			if ga, gb := w.gamma[a-1], w.gamma[b-1]; ga != gb {
				return ga - gb
			}
			return a - b
		})
	}
	if r := w.set.rounds[idx]; len(cand) > r {
		cand = cand[:r]
	}
	return cand
}

// representativeSchedule returns the bid's representative schedule (slots,
// ascending) and the subset F_il that is still available (γ_t < K, in
// least-covered order). Both slices escape into the Winner record, so they
// cannot live in reusable scratch; they are carved out of the scratch's
// append-only slab (allocResult) — one slab allocation per few hundred
// winners instead of one make per winner, which was the dominant
// allocation site of a solve. The candidate work happens in scratch.
func (w *wdpState) representativeSchedule(idx int) (slots, available []int) {
	cand := w.repCandidates(idx, w.sc.cand)
	w.sc.cand = cand[:0]
	navail := 0
	for _, t := range cand {
		if w.gamma[t-1] < w.cfg.K {
			navail++
		}
	}
	buf := w.sc.allocResult(len(cand) + navail)
	slots = buf[:len(cand):len(cand)]
	copy(slots, cand)
	sort.Ints(slots)
	available = buf[len(cand):len(cand)]
	for _, t := range cand {
		if w.gamma[t-1] < w.cfg.K {
			available = append(available, t)
		}
	}
	return slots, available
}

// repAvailable returns the still-available subset of the bid's
// representative schedule using scratch buffers only (nothing escapes);
// it feeds the best-unselected dual bookkeeping.
func (w *wdpState) repAvailable(idx int) []int {
	cand := w.repCandidates(idx, w.sc.cand)
	w.sc.cand = cand[:0]
	avail := w.sc.avail[:0]
	for _, t := range cand {
		if w.gamma[t-1] < w.cfg.K {
			avail = append(avail, t)
		}
	}
	w.sc.avail = avail[:0]
	return avail
}

// selectWinner performs lines 9-14 of Algorithm 2 for the popped minimum
// entry e: payment, dual recording, set updates, and coverage updates.
func (w *wdpState) selectWinner(e heapEntry) {
	idx := e.bid
	slots, avail := w.representativeSchedule(idx)
	r := len(avail) // == marginal(idx) by construction
	phi := w.set.price[idx] / float64(r)

	payment := w.criticalPayment(idx, r)

	// Record φ(t, l*) on the newly covered iterations (line 9).
	for _, t := range avail {
		if phi > w.phiMax[t-1] {
			w.phiMax[t-1] = phi
		}
		if phi < w.phiMin[t-1] {
			w.phiMin[t-1] = phi
		}
	}

	// Lines 11-12: record the best schedule in the grand set G, which at
	// this point still includes the selected schedule itself.
	if ge, ok := w.peekValid(&w.sc.heapG, w.inG, nil); ok {
		gr := w.marginal(ge.bid)
		gphi := w.set.price[ge.bid] / float64(gr)
		for _, t := range w.repAvailable(ge.bid) {
			if gphi < w.phiPrime[t-1] {
				w.phiPrime[t-1] = gphi
			}
		}
	}

	// Lines 13-14: C drops every bid of the winning client; G drops only
	// the selected schedule.
	for _, sib := range w.set.siblings(idx) {
		w.inC[sib] = false
	}
	w.inG[idx] = false

	w.winners = append(w.winners, Winner{
		BidIndex: idx,
		Bid:      w.set.Bid(idx),
		Slots:    slots,
		Payment:  payment,
		AvgCost:  phi,
		covered:  avail,
		phi:      phi,
	})

	// Update coverage; when an iteration fills up, shrink m for every bid
	// whose window contains it.
	for _, t := range slots {
		if w.gamma[t-1] < w.cfg.K {
			w.covered++
		}
		w.gamma[t-1]++
		if w.gamma[t-1] == w.cfg.K {
			for _, other := range w.slotBids[t-1] {
				w.m[other]--
			}
		}
	}
}

// criticalPayment implements A_payment (Algorithm 3): the winner is paid
// its marginal utility times the second-smallest average cost among the
// remaining candidates. With Config.ExcludeOwnBids, the winner's own other
// bids cannot be the critical schedule. When no competitor remains the
// winner is paid its own bid.
func (w *wdpState) criticalPayment(idx, r int) float64 {
	cli := w.set.client[idx]
	skip := func(other int) bool {
		if other == idx {
			return true
		}
		return w.cfg.ExcludeOwnBids && w.set.client[other] == cli
	}
	// The winner's entry has already been popped from heapC, but its
	// sibling bids (same client) may remain and are skipped per the rule.
	if ce, ok := w.peekValid(&w.sc.heapC, w.inC, skip); ok {
		critAvg := w.set.price[ce.bid] / float64(w.marginal(ce.bid))
		return float64(r) * critAvg
	}
	return w.set.price[idx]
}

// finalizeDual computes lines 16-23 of Algorithm 2: ω, g(t), λ_il and the
// dual objective D, which lower-bounds the optimal WDP cost.
func (w *wdpState) finalizeDual(k int) Dual {
	tg := w.tg
	d := Dual{
		Tg:         tg,
		G:          make([]float64, tg),
		Lambda:     make(map[int]float64, len(w.winners)),
		HarmonicTg: stats.Harmonic(tg),
	}
	// ω = max_t ψ_max^t / ψ_min^t with ψ_min^t the smallest recorded
	// average cost at t among selected schedules and best-unselected
	// snapshots (line 17-18).
	for t := 0; t < tg; t++ {
		psiMin := math.Min(w.phiMin[t], w.phiPrime[t])
		if math.IsInf(psiMin, 1) || psiMin <= 0 {
			continue
		}
		if ratio := w.psiMax[t] / psiMin; ratio > d.Omega {
			d.Omega = ratio
		}
	}
	if d.Omega < 1 {
		d.Omega = 1
	}
	scale := d.HarmonicTg * d.Omega
	for t := 0; t < tg; t++ {
		d.G[t] = w.phiMax[t] / scale
	}
	var sumLambda float64
	for _, win := range w.winners {
		var l float64
		for _, t := range win.covered {
			l += (w.phiMax[t-1] - win.phi) / scale
		}
		d.Lambda[win.BidIndex] = l
		sumLambda += l
	}
	var sumG float64
	for t := 0; t < tg; t++ {
		sumG += d.G[t]
	}
	d.Objective = float64(k)*sumG - sumLambda
	d.RatioBound = scale
	d.TightObjective = w.tightDualObjective(k)
	return d
}

// tightDualObjective computes the largest uniform scale s at which
// g(t) = s·η_φ(t) stays dual feasible with λ = q = 0 — constraint (8a)
// then reads Σ_{t∈l} g(t) ≤ ρ_il for every feasible schedule l, whose
// binding case per bid is the c_ij largest η_φ values in its window — and
// returns the resulting dual objective s·K·Σ_t η_φ(t).
func (w *wdpState) tightDualObjective(k int) float64 {
	if w.cls != nil {
		return w.tightDualClass(k)
	}
	var sumEta float64
	for t := 0; t < w.tg; t++ {
		sumEta += w.phiMax[t]
	}
	if sumEta <= 0 {
		return 0
	}
	scale := math.Inf(1)
	top := w.sc.top[:0]
	for _, idx := range w.qualified {
		lo, hi := w.windowOf(idx)
		r := w.set.rounds[idx]
		if hi-lo+1 < r {
			continue
		}
		top = top[:0]
		for t := lo; t <= hi; t++ {
			top = append(top, w.phiMax[t-1])
		}
		// Ascending sort, summed from the tail: the same descending value
		// sequence as sort.Reverse without its per-call allocations.
		slices.Sort(top)
		var worst float64
		for i := len(top) - 1; i >= len(top)-r; i-- {
			worst += top[i]
		}
		if worst > 0 {
			if s := w.set.price[idx] / worst; s < scale {
				scale = s
			}
		}
	}
	w.sc.top = top[:0]
	if math.IsInf(scale, 1) {
		return 0
	}
	return scale * float64(k) * sumEta
}

// heapEntry is one lazily keyed candidate in the greedy selection heaps.
type heapEntry struct {
	key   float64 // average cost ρ / R at push time
	bid   int     // index into the auction's bid slice
	mSnap int     // m value at push time; staleness marker
}

// entryHeap is a min-heap of heapEntry ordered by (key, bid).
type entryHeap []heapEntry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(a, b int) bool {
	if h[a].key != h[b].key {
		return h[a].key < h[b].key
	}
	return h[a].bid < h[b].bid
}
func (h entryHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }

// The typed heap operations below replicate container/heap verbatim on
// the concrete element type. heap.Push/heap.Pop box every heapEntry in an
// interface — one allocation per call, the dominant allocator of the whole
// sweep — and the lazy re-keying in popValid makes pops and re-pushes the
// hot path. The element movement is identical to container/heap's, so the
// heap layout, and with it every pop order, is bit-for-bit unchanged.

func (h *entryHeap) init() {
	n := h.Len()
	for i := n/2 - 1; i >= 0; i-- {
		h.down(i, n)
	}
}

func (h *entryHeap) push(e heapEntry) {
	*h = append(*h, e)
	h.up(h.Len() - 1)
}

func (h *entryHeap) pop() heapEntry {
	n := h.Len() - 1
	h.Swap(0, n)
	h.down(0, n)
	old := *h
	e := old[n]
	*h = old[:n]
	return e
}

func (h *entryHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		j = i
	}
}

func (h *entryHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h.Less(j2, j1) {
			j = j2 // = 2*i + 2  // right child
		}
		if !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		i = j
	}
}
