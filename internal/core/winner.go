package core

import (
	"container/heap"
	"math"
	"sort"

	"github.com/fedauction/afl/internal/stats"
)

// SolveWDP runs A_winner (Algorithm 2) on one winner-determination problem:
// given the qualified bid indices for a fixed number of global iterations
// tg, it greedily selects schedules with minimum average cost until every
// iteration t ∈ [1, tg] has cfg.K participants, computes critical-value
// payments (Algorithm 3), and assembles the dual certificate of Lemma 5.
//
// bids is the full bid slice of the auction; qualified indexes into it.
// The function never mutates bids.
func SolveWDP(bids []Bid, qualified []int, tg int, cfg Config) WDPResult {
	res := WDPResult{Tg: tg}
	if tg < 1 || len(qualified) == 0 {
		return res
	}
	w := newWDPState(bids, qualified, tg, cfg)
	target := cfg.K * tg
	for w.covered < target {
		e, ok := w.popValid(&w.heapC, w.inC)
		if !ok {
			return res // not enough supply: this WDP is infeasible
		}
		w.selectWinner(e)
		res.Rounds++
	}
	res.Feasible = true
	res.Winners = w.winners
	for _, win := range w.winners {
		res.Cost += win.Bid.Price
	}
	res.Dual = w.finalizeDual(cfg.K)
	applyPaymentRule(bids, qualified, tg, cfg, &res)
	return res
}

// wdpState is the mutable state of one A_winner run.
type wdpState struct {
	bids      []Bid
	qualified []int
	tg        int
	cfg       Config

	// gamma[t-1] is γ_t, the number of clients scheduled at iteration t.
	gamma []int
	// covered is R(S) = Σ_t min(γ_t, K).
	covered int
	// m[idx] is the number of still-available (γ_t < K) iterations inside
	// bid idx's effective window; the bid's marginal utility is
	// R = min(c, m). m is tracked only for qualified bids.
	m map[int]int
	// slotBids[t-1] lists the qualified bids whose effective window
	// contains t, so m can be decremented when t fills up.
	slotBids [][]int
	// clientBids groups qualified bid indices by client for the
	// one-bid-per-client pruning of line 13.
	clientBids map[int][]int

	// inC / inG are membership flags for the candidate set C and the grand
	// set G of Algorithm 2. C drops every bid of a winning client; G drops
	// only the selected schedule.
	inC map[int]bool
	inG map[int]bool
	// heapC / heapG are lazy min-heaps over average cost. Entries carry a
	// snapshot of m; a popped entry whose snapshot is stale is re-keyed
	// and reinserted (average cost only grows as slots fill, so the lazy
	// strategy preserves exact greedy order).
	heapC entryHeap
	heapG entryHeap

	winners []Winner

	// Dual bookkeeping (lines 9, 11-12 and 16-23 of Algorithm 2).
	// phiMax[t-1] = η_φ(t) = max_l φ(t,l) over selected schedules.
	// phiMin[t-1] = min_l φ(t,l) over selected schedules.
	// phiPrime[t-1] = min over rounds of φ(t, l^{i#})' for the best
	// unselected schedule of each round.
	phiMax, phiMin, phiPrime []float64
	// psiMax[t-1] = ψ_max^t, the maximum bidding price among qualified
	// bids whose window contains t.
	psiMax []float64
}

func newWDPState(bids []Bid, qualified []int, tg int, cfg Config) *wdpState {
	w := &wdpState{
		bids:       bids,
		qualified:  qualified,
		tg:         tg,
		cfg:        cfg,
		gamma:      make([]int, tg),
		m:          make(map[int]int, len(qualified)),
		slotBids:   make([][]int, tg),
		clientBids: make(map[int][]int),
		inC:        make(map[int]bool, len(qualified)),
		inG:        make(map[int]bool, len(qualified)),
		phiMax:     make([]float64, tg),
		phiMin:     make([]float64, tg),
		phiPrime:   make([]float64, tg),
		psiMax:     make([]float64, tg),
	}
	for t := 0; t < tg; t++ {
		w.phiMin[t] = math.Inf(1)
		w.phiPrime[t] = math.Inf(1)
	}
	for _, idx := range qualified {
		b := bids[idx]
		lo, hi := w.window(b)
		for t := lo; t <= hi; t++ {
			if b.Price > w.psiMax[t-1] {
				w.psiMax[t-1] = b.Price
			}
		}
		// m counts the still-available iterations the bid's representative
		// schedule can draw from: the whole window under the paper's
		// least-covered rule, only the fixed earliest-fit slots otherwise.
		slo, shi := w.slotRange(b)
		w.m[idx] = shi - slo + 1
		for t := slo; t <= shi; t++ {
			w.slotBids[t-1] = append(w.slotBids[t-1], idx)
		}
		w.clientBids[b.Client] = append(w.clientBids[b.Client], idx)
		w.inC[idx] = true
		w.inG[idx] = true
		e := w.entryFor(idx)
		w.heapC = append(w.heapC, e)
		w.heapG = append(w.heapG, e)
	}
	heap.Init(&w.heapC)
	heap.Init(&w.heapG)
	return w
}

// window returns the bid's effective availability window [lo, hi] clipped
// to the WDP horizon.
func (w *wdpState) window(b Bid) (lo, hi int) {
	hi = b.End
	if hi > w.tg {
		hi = w.tg
	}
	return b.Start, hi
}

// slotRange returns the iterations a bid's representative schedule draws
// from: the whole clipped window under ScheduleLeastCovered, the fixed
// first c_ij iterations under ScheduleEarliest.
func (w *wdpState) slotRange(b Bid) (lo, hi int) {
	lo, hi = w.window(b)
	if w.cfg.ScheduleRule == ScheduleEarliest && lo+b.Rounds-1 < hi {
		hi = lo + b.Rounds - 1
	}
	return lo, hi
}

// marginal returns the utility gain R_il(S) of the bid's representative
// schedule. Under the paper's least-covered rule the schedule takes the
// c_ij smallest-γ iterations of the window; available iterations
// (γ_t < K) sort before full ones, so the gain is min(c_ij, m). Under
// earliest-fit the slot set is fixed and the gain is exactly the number
// of its slots still available.
func (w *wdpState) marginal(idx int) int {
	m := w.m[idx]
	if w.cfg.ScheduleRule == ScheduleEarliest {
		return m
	}
	if r := w.bids[idx].Rounds; r < m {
		return r
	}
	return m
}

func (w *wdpState) entryFor(idx int) heapEntry {
	r := w.marginal(idx)
	key := math.Inf(1)
	if r > 0 {
		key = w.bids[idx].Price / float64(r)
	}
	return heapEntry{key: key, bid: idx, mSnap: w.m[idx]}
}

// popValid pops the minimum-average-cost entry of h whose membership flag
// is set and whose m snapshot is current, lazily re-keying stale entries.
func (w *wdpState) popValid(h *entryHeap, in map[int]bool) (heapEntry, bool) {
	for h.Len() > 0 {
		e := heap.Pop(h).(heapEntry)
		if !in[e.bid] {
			continue
		}
		if e.mSnap != w.m[e.bid] {
			if w.marginal(e.bid) > 0 {
				heap.Push(h, w.entryFor(e.bid))
			}
			continue
		}
		if w.marginal(e.bid) == 0 {
			continue
		}
		return e, true
	}
	return heapEntry{}, false
}

// peekValid returns the minimum valid entry of h not rejected by skip,
// restoring every entry it inspected. It is used for the critical-value
// payment (second-smallest average cost in C) and for the best unselected
// schedule (i#, l#) in G.
func (w *wdpState) peekValid(h *entryHeap, in map[int]bool, skip func(bid int) bool) (heapEntry, bool) {
	var kept []heapEntry
	var found heapEntry
	ok := false
	for h.Len() > 0 {
		e, popped := w.popValid(h, in)
		if !popped {
			break
		}
		if skip != nil && skip(e.bid) {
			kept = append(kept, e)
			continue
		}
		found, ok = e, true
		kept = append(kept, e)
		break
	}
	for _, e := range kept {
		heap.Push(h, e)
	}
	return found, ok
}

// representativeSchedule returns the bid's representative schedule l_ij —
// the c_ij iterations with the smallest coverage count γ_t inside the
// effective window, ties broken by iteration index — and the subset F_il
// of those that are still available.
func (w *wdpState) representativeSchedule(idx int) (slots, available []int) {
	b := w.bids[idx]
	lo, hi := w.slotRange(b)
	cand := make([]int, 0, hi-lo+1)
	for t := lo; t <= hi; t++ {
		cand = append(cand, t)
	}
	if w.cfg.ScheduleRule != ScheduleEarliest {
		sort.Slice(cand, func(a, b int) bool {
			ga, gb := w.gamma[cand[a]-1], w.gamma[cand[b]-1]
			if ga != gb {
				return ga < gb
			}
			return cand[a] < cand[b]
		})
	}
	if len(cand) > b.Rounds {
		cand = cand[:b.Rounds]
	}
	slots = cand
	for _, t := range slots {
		if w.gamma[t-1] < w.cfg.K {
			available = append(available, t)
		}
	}
	sort.Ints(slots)
	return slots, available
}

// selectWinner performs lines 9-14 of Algorithm 2 for the popped minimum
// entry e: payment, dual recording, set updates, and coverage updates.
func (w *wdpState) selectWinner(e heapEntry) {
	idx := e.bid
	b := w.bids[idx]
	slots, avail := w.representativeSchedule(idx)
	r := len(avail) // == marginal(idx) by construction
	phi := b.Price / float64(r)

	payment := w.criticalPayment(idx, b, r)

	// Record φ(t, l*) on the newly covered iterations (line 9).
	for _, t := range avail {
		if phi > w.phiMax[t-1] {
			w.phiMax[t-1] = phi
		}
		if phi < w.phiMin[t-1] {
			w.phiMin[t-1] = phi
		}
	}

	// Lines 11-12: record the best schedule in the grand set G, which at
	// this point still includes the selected schedule itself.
	if ge, ok := w.peekValid(&w.heapG, w.inG, nil); ok {
		gb := w.bids[ge.bid]
		gr := w.marginal(ge.bid)
		gphi := gb.Price / float64(gr)
		_, gavail := w.representativeSchedule(ge.bid)
		for _, t := range gavail {
			if gphi < w.phiPrime[t-1] {
				w.phiPrime[t-1] = gphi
			}
		}
	}

	// Lines 13-14: C drops every bid of the winning client; G drops only
	// the selected schedule.
	for _, sib := range w.clientBids[b.Client] {
		delete(w.inC, sib)
	}
	delete(w.inG, idx)

	w.winners = append(w.winners, Winner{
		BidIndex: idx,
		Bid:      b,
		Slots:    slots,
		Payment:  payment,
		AvgCost:  phi,
		covered:  avail,
		phi:      phi,
	})

	// Update coverage; when an iteration fills up, shrink m for every bid
	// whose window contains it.
	for _, t := range slots {
		if w.gamma[t-1] < w.cfg.K {
			w.covered++
		}
		w.gamma[t-1]++
		if w.gamma[t-1] == w.cfg.K {
			for _, other := range w.slotBids[t-1] {
				w.m[other]--
			}
		}
	}
}

// criticalPayment implements A_payment (Algorithm 3): the winner is paid
// its marginal utility times the second-smallest average cost among the
// remaining candidates. With Config.ExcludeOwnBids, the winner's own other
// bids cannot be the critical schedule. When no competitor remains the
// winner is paid its own bid.
func (w *wdpState) criticalPayment(idx int, b Bid, r int) float64 {
	skip := func(other int) bool {
		if other == idx {
			return true
		}
		return w.cfg.ExcludeOwnBids && w.bids[other].Client == b.Client
	}
	// The winner's entry has already been popped from heapC, but its
	// sibling bids (same client) may remain and are skipped per the rule.
	if ce, ok := w.peekValid(&w.heapC, w.inC, skip); ok {
		critAvg := w.bids[ce.bid].Price / float64(w.marginal(ce.bid))
		return float64(r) * critAvg
	}
	return b.Price
}

// finalizeDual computes lines 16-23 of Algorithm 2: ω, g(t), λ_il and the
// dual objective D, which lower-bounds the optimal WDP cost.
func (w *wdpState) finalizeDual(k int) Dual {
	tg := w.tg
	d := Dual{
		Tg:         tg,
		G:          make([]float64, tg),
		Lambda:     make(map[int]float64, len(w.winners)),
		HarmonicTg: stats.Harmonic(tg),
	}
	// ω = max_t ψ_max^t / ψ_min^t with ψ_min^t the smallest recorded
	// average cost at t among selected schedules and best-unselected
	// snapshots (line 17-18).
	for t := 0; t < tg; t++ {
		psiMin := math.Min(w.phiMin[t], w.phiPrime[t])
		if math.IsInf(psiMin, 1) || psiMin <= 0 {
			continue
		}
		if ratio := w.psiMax[t] / psiMin; ratio > d.Omega {
			d.Omega = ratio
		}
	}
	if d.Omega < 1 {
		d.Omega = 1
	}
	scale := d.HarmonicTg * d.Omega
	for t := 0; t < tg; t++ {
		d.G[t] = w.phiMax[t] / scale
	}
	var sumLambda float64
	for _, win := range w.winners {
		var l float64
		for _, t := range win.covered {
			l += (w.phiMax[t-1] - win.phi) / scale
		}
		d.Lambda[win.BidIndex] = l
		sumLambda += l
	}
	var sumG float64
	for t := 0; t < tg; t++ {
		sumG += d.G[t]
	}
	d.Objective = float64(k)*sumG - sumLambda
	d.RatioBound = scale
	d.TightObjective = w.tightDualObjective(k)
	return d
}

// tightDualObjective computes the largest uniform scale s at which
// g(t) = s·η_φ(t) stays dual feasible with λ = q = 0 — constraint (8a)
// then reads Σ_{t∈l} g(t) ≤ ρ_il for every feasible schedule l, whose
// binding case per bid is the c_ij largest η_φ values in its window — and
// returns the resulting dual objective s·K·Σ_t η_φ(t).
func (w *wdpState) tightDualObjective(k int) float64 {
	var sumEta float64
	for t := 0; t < w.tg; t++ {
		sumEta += w.phiMax[t]
	}
	if sumEta <= 0 {
		return 0
	}
	scale := math.Inf(1)
	top := make([]float64, 0, w.tg)
	for _, idx := range w.qualified {
		b := w.bids[idx]
		lo, hi := w.window(b)
		if hi-lo+1 < b.Rounds {
			continue
		}
		top = top[:0]
		for t := lo; t <= hi; t++ {
			top = append(top, w.phiMax[t-1])
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(top)))
		var worst float64
		for i := 0; i < b.Rounds; i++ {
			worst += top[i]
		}
		if worst > 0 {
			if s := b.Price / worst; s < scale {
				scale = s
			}
		}
	}
	if math.IsInf(scale, 1) {
		return 0
	}
	return scale * float64(k) * sumEta
}

// heapEntry is one lazily keyed candidate in the greedy selection heaps.
type heapEntry struct {
	key   float64 // average cost ρ / R at push time
	bid   int     // index into the auction's bid slice
	mSnap int     // m value at push time; staleness marker
}

// entryHeap is a min-heap of heapEntry ordered by (key, bid).
type entryHeap []heapEntry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(a, b int) bool {
	if h[a].key != h[b].key {
		return h[a].key < h[b].key
	}
	return h[a].bid < h[b].bid
}
func (h entryHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }

// Push implements heap.Interface.
func (h *entryHeap) Push(x any) { *h = append(*h, x.(heapEntry)) }

// Pop implements heap.Interface.
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
