package core

import "math"

// MinTg returns T_0, the smallest feasible number of global iterations
// given the bids' local accuracies (lines 2-3 of Algorithm 1):
// T_0 = ⌈1/(1−θ_min)⌉ where θ_min is the minimum local accuracy among all
// bids. The result is at least 1.
func MinTg(bids []Bid) int {
	thetaMin := math.Inf(1)
	for _, b := range bids {
		thetaMin = math.Min(thetaMin, b.Theta)
	}
	if math.IsInf(thetaMin, 1) || thetaMin >= 1 {
		return 1
	}
	// The small slack keeps exact reciprocals (e.g. 1/(1−0.8) = 5) from
	// rounding up spuriously under floating point.
	t0 := int(math.Ceil(1/(1-thetaMin) - 1e-9))
	if t0 < 1 {
		t0 = 1
	}
	return t0
}

// Qualified returns the indices (into bids) of the qualified bid set
// J_{T̂_g} for a fixed number of global iterations tg (line 6 of
// Algorithm 1). A bid qualifies when
//
//   - θ_ij ≤ θ_max = 1 − 1/T̂_g  (constraint (6b): the bid's accuracy does
//     not force more global iterations than T̂_g),
//   - t_ij = T_l(θ_ij)·t_i^cmp + t_i^com ≤ t_max  (constraint (6d)), and
//   - a_ij + c_ij − 1 ≤ T̂_g  (the bid's rounds fit inside [a_ij, T̂_g]).
//
// The last condition is printed as a_ij + c_ij ≤ T̂_g in Algorithm 1, but
// that form contradicts the paper's own worked example (§V-B qualifies
// B2 = ($6, [2,3], 2) for T̂_g = 3 even though 2+2 > 3); the off-by-one
// corrected form is used here. It also guarantees the representative
// schedule always finds c_ij slots inside the clipped window.
func Qualified(bids []Bid, tg int, cfg Config) []int {
	if tg < 1 {
		return nil
	}
	thetaMax := 1 - 1/float64(tg)
	localIters := cfg.localIters()
	// A small tolerance keeps bids generated exactly at the boundary
	// (θ = 1 − 1/T̂_g) qualified despite floating-point rounding.
	const eps = 1e-12
	var out []int
	for idx, b := range bids {
		if b.Theta > thetaMax+eps {
			continue
		}
		if cfg.TMax > 0 && b.PerRoundTime(localIters) > cfg.TMax+eps {
			continue
		}
		if cfg.ReservePrice > 0 && b.Price > cfg.ReservePrice+eps {
			continue
		}
		if b.Start+b.Rounds-1 > tg {
			continue
		}
		out = append(out, idx)
	}
	return out
}
