package core

import (
	"errors"
	"math"
	"testing"

	"github.com/fedauction/afl/internal/stats"
)

func TestMinTg(t *testing.T) {
	tests := []struct {
		name string
		bids []Bid
		want int
	}{
		{"empty", nil, 1},
		{"theta half", []Bid{{Theta: 0.5}}, 2},
		{"theta 0.3", []Bid{{Theta: 0.3}, {Theta: 0.9}}, 2},
		{"theta 0.75", []Bid{{Theta: 0.75}}, 4},
		{"theta 0.8", []Bid{{Theta: 0.8}, {Theta: 0.9}}, 5},
		{"tiny theta", []Bid{{Theta: 0.01}}, 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := MinTg(tc.bids); got != tc.want {
				t.Fatalf("MinTg = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestQualified(t *testing.T) {
	cfg := Config{T: 10, K: 1, TMax: 60}
	bids := []Bid{
		// θ=0.5 needs T̂_g ≥ 2; per-round time 5·⌊10·0.5⌋+10 = 35 ≤ 60.
		{Client: 0, Price: 1, Theta: 0.5, Start: 1, End: 5, Rounds: 2, CompTime: 5, CommTime: 10},
		// θ=0.9 needs T̂_g ≥ 10.
		{Client: 1, Price: 1, Theta: 0.9, Start: 1, End: 5, Rounds: 2, CompTime: 5, CommTime: 10},
		// Slow client: ⌊10·(1−0.2)⌋·10+10 = 90 > 60 fails (6d).
		{Client: 2, Price: 1, Theta: 0.2, Start: 1, End: 5, Rounds: 2, CompTime: 10, CommTime: 10},
		// Starts too late for its rounds: a+c−1 = 9+2−1 = 10 > 8.
		{Client: 3, Price: 1, Theta: 0.5, Start: 9, End: 10, Rounds: 2, CompTime: 5, CommTime: 10},
	}
	got := Qualified(bids, 8, cfg)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("Qualified(tg=8) = %v, want [0]", got)
	}
	// At T̂_g = 10, the θ=0.9 bid qualifies (θ_max = 0.9) and so does the
	// late bid (its two rounds fit in [9,10]).
	got = Qualified(bids, 10, cfg)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("Qualified(tg=10) = %v, want [0 1 3]", got)
	}
	if got := Qualified(bids, 0, cfg); got != nil {
		t.Fatalf("Qualified(tg=0) = %v, want nil", got)
	}
}

func TestRunAuctionValidation(t *testing.T) {
	valid := Bid{Client: 0, Price: 1, Theta: 0.5, Start: 1, End: 2, Rounds: 1}
	tests := []struct {
		name string
		bids []Bid
		cfg  Config
	}{
		{"bad T", []Bid{valid}, Config{T: 0, K: 1}},
		{"bad K", []Bid{valid}, Config{T: 5, K: 0}},
		{"negative TMax", []Bid{valid}, Config{T: 5, K: 1, TMax: -1}},
		{"no bids", nil, Config{T: 5, K: 1}},
		{"bad theta", []Bid{{Client: 0, Price: 1, Theta: 1.5, Start: 1, End: 2, Rounds: 1}}, Config{T: 5, K: 1}},
		{"bad window", []Bid{{Client: 0, Price: 1, Theta: 0.5, Start: 3, End: 2, Rounds: 1}}, Config{T: 5, K: 1}},
		{"window beyond T", []Bid{{Client: 0, Price: 1, Theta: 0.5, Start: 1, End: 9, Rounds: 1}}, Config{T: 5, K: 1}},
		{"zero price", []Bid{{Client: 0, Price: 0, Theta: 0.5, Start: 1, End: 2, Rounds: 1}}, Config{T: 5, K: 1}},
		{"rounds exceed window", []Bid{{Client: 0, Price: 1, Theta: 0.5, Start: 1, End: 2, Rounds: 3}}, Config{T: 5, K: 1}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := RunAuction(tc.bids, tc.cfg); err == nil {
				t.Fatal("expected a validation error")
			}
		})
	}
	if _, err := RunAuction(nil, Config{T: 5, K: 1}); !errors.Is(err, ErrNoBids) {
		t.Fatalf("want ErrNoBids, got %v", err)
	}
}

func TestRunAuctionPicksCheapestTg(t *testing.T) {
	// Two clients can cover T̂_g = 2 cheaply; covering T̂_g = 3 requires an
	// expensive third participation. A_FL must settle on T̂_g = 2.
	bids := []Bid{
		{Client: 0, Price: 2, Theta: 0.4, Start: 1, End: 2, Rounds: 2},
		{Client: 1, Price: 2, Theta: 0.4, Start: 1, End: 2, Rounds: 2},
		{Client: 2, Price: 100, Theta: 0.4, Start: 1, End: 3, Rounds: 3},
	}
	cfg := Config{T: 3, K: 1}
	res, err := RunAuction(bids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("auction infeasible")
	}
	if res.Tg != 2 {
		t.Fatalf("T_g* = %d, want 2", res.Tg)
	}
	if res.Cost != 2 {
		t.Fatalf("cost = %v, want 2 (single client covers both iterations)", res.Cost)
	}
	if err := CheckSolution(bids, res, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunAuctionRespectsThetaCoupling(t *testing.T) {
	// A bid with θ=0.75 requires T_g ≥ 4; with T=3 it can never win.
	bids := []Bid{
		{Client: 0, Price: 1, Theta: 0.75, Start: 1, End: 3, Rounds: 2},
		{Client: 1, Price: 50, Theta: 0.4, Start: 1, End: 3, Rounds: 2},
		{Client: 2, Price: 50, Theta: 0.4, Start: 1, End: 3, Rounds: 2},
	}
	cfg := Config{T: 3, K: 1}
	res, err := RunAuction(bids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("auction infeasible")
	}
	for _, w := range res.Winners {
		if w.Bid.Client == 0 {
			t.Fatalf("θ=0.75 bid won at T_g=%d despite violating (6b)", res.Tg)
		}
	}
	if err := CheckSolution(bids, res, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunAuctionInfeasible(t *testing.T) {
	// Only one client but K=2: no WDP can ever have enough participants.
	bids := []Bid{
		{Client: 0, Price: 1, Theta: 0.5, Start: 1, End: 4, Rounds: 3},
		{Client: 0, Price: 2, Theta: 0.5, Start: 1, End: 4, Rounds: 2},
	}
	res, err := RunAuction(bids, Config{T: 4, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatalf("expected infeasible result, got %+v", res)
	}
	if len(res.WDPs) == 0 {
		t.Fatal("per-T̂_g WDP trace missing")
	}
}

func TestRunAuctionRandomFeasibility(t *testing.T) {
	rng := stats.NewRNG(99)
	cfg := Config{T: 12, K: 2, TMax: 60}
	for trial := 0; trial < 40; trial++ {
		bids := randomAuctionBids(rng, cfg.T, 12)
		res, err := RunAuction(bids, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			continue
		}
		if err := CheckSolution(bids, res, cfg); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The chosen WDP must be the cheapest feasible one.
		for _, wdp := range res.WDPs {
			if wdp.Feasible && wdp.Cost < res.Cost-1e-9 {
				t.Fatalf("trial %d: WDP at T̂_g=%d cheaper (%v) than chosen (%v)",
					trial, wdp.Tg, wdp.Cost, res.Cost)
			}
		}
	}
}

func TestRunWDP(t *testing.T) {
	bids := exampleBids()
	cfg := Config{T: 3, K: 1}
	res, err := RunWDP(bids, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Cost != 7 {
		t.Fatalf("RunWDP = %+v, want feasible cost 7", res)
	}
	if _, err := RunWDP(bids, 3, Config{T: 0, K: 1}); err == nil {
		t.Fatal("expected config validation error")
	}
	if _, err := RunWDP(nil, 3, cfg); err == nil {
		t.Fatal("expected bid validation error")
	}
}

// randomAuctionBids draws a bid population resembling the paper's setup at
// small scale, with per-round times that always satisfy t_max = 60.
func randomAuctionBids(rng *stats.RNG, maxT, clients int) []Bid {
	var bids []Bid
	for c := 0; c < clients; c++ {
		comp := rng.FloatRange(5, 10)
		comm := rng.FloatRange(10, 15)
		nbids := rng.IntRange(1, 3)
		for j := 0; j < nbids; j++ {
			start := rng.IntRange(1, maxT-1)
			end := rng.IntRange(start+1, maxT)
			bids = append(bids, Bid{
				Client:   c,
				Index:    j,
				Price:    rng.FloatRange(10, 50),
				Theta:    rng.FloatRange(0.3, 0.8),
				Start:    start,
				End:      end,
				Rounds:   rng.IntRange(1, end-start),
				CompTime: comp,
				CommTime: comm,
			})
		}
	}
	return bids
}

func TestResultHelpers(t *testing.T) {
	bids := exampleBids()
	cfg := Config{T: 3, K: 1}
	res, err := RunAuction(bids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("infeasible")
	}
	if got := res.TotalPayment(); got <= 0 {
		t.Fatalf("TotalPayment = %v", got)
	}
	if got := res.ThetaMax(); got != 0.5 {
		t.Fatalf("ThetaMax = %v, want 0.5", got)
	}
	if _, ok := res.WinnerByClient(0); !ok {
		t.Fatal("client 0 should have a winning bid")
	}
	if _, ok := res.WinnerByClient(42); ok {
		t.Fatal("client 42 should not be a winner")
	}
	if s := res.String(); s == "" {
		t.Fatal("empty report")
	}
	if s := (Result{}).String(); s == "" {
		t.Fatal("empty infeasible report")
	}
}

func TestLocalIterFuncs(t *testing.T) {
	if got := PaperLocalIters(0.5); got != 5 {
		t.Fatalf("PaperLocalIters(0.5) = %v, want 5", got)
	}
	if got := PaperLocalIters(0.34); got != 6 {
		t.Fatalf("PaperLocalIters(0.34) = %v, want 6 (floor of 6.6)", got)
	}
	f := LogLocalIters(2)
	if got, want := f(0.5), 2*math.Log(2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("LogLocalIters(2)(0.5) = %v, want %v", got, want)
	}
	b := Bid{Theta: 0.5, CompTime: 5, CommTime: 10}
	if got := b.PerRoundTime(PaperLocalIters); got != 35 {
		t.Fatalf("PerRoundTime = %v, want 35", got)
	}
}

func TestBidHelpers(t *testing.T) {
	b := Bid{Client: 1, Index: 2, Price: 10, TrueCost: 8, Theta: 0.5, Start: 2, End: 6, Rounds: 3}
	if got := b.Cost(); got != 8 {
		t.Fatalf("Cost = %v, want 8 (TrueCost)", got)
	}
	b.TrueCost = 0
	if got := b.Cost(); got != 10 {
		t.Fatalf("Cost = %v, want 10 (Price fallback)", got)
	}
	if got := b.WindowLen(); got != 5 {
		t.Fatalf("WindowLen = %v, want 5", got)
	}
	if b.String() == "" {
		t.Fatal("empty String")
	}
}

func TestBidValidateBranches(t *testing.T) {
	base := Bid{Client: 0, Price: 1, Theta: 0.5, Start: 1, End: 3, Rounds: 2, CompTime: 1, CommTime: 1}
	if err := base.Validate(5); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Bid){
		func(b *Bid) { b.Client = -1 },
		func(b *Bid) { b.Price = 0 },
		func(b *Bid) { b.TrueCost = -1 },
		func(b *Bid) { b.Theta = 0 },
		func(b *Bid) { b.Theta = 1 },
		func(b *Bid) { b.Start = 0 },
		func(b *Bid) { b.End = 9 },
		func(b *Bid) { b.Start, b.End = 3, 2 },
		func(b *Bid) { b.Rounds = 0 },
		func(b *Bid) { b.Rounds = 5 },
		func(b *Bid) { b.CompTime = -1 },
		func(b *Bid) { b.CommTime = -1 },
	}
	for i, m := range mutations {
		b := base
		m(&b)
		if err := b.Validate(5); err == nil {
			t.Fatalf("mutation %d not rejected: %+v", i, b)
		}
	}
}

func TestWDPResultTotalPayment(t *testing.T) {
	bids := exampleBids()
	res := SolveWDP(bids, []int{0, 1, 2}, 3, Config{T: 3, K: 1})
	if got := res.TotalPayment(); got != 8.5 {
		t.Fatalf("WDP total payment = %v, want 2.5+6", got)
	}
}

func TestDualBound(t *testing.T) {
	d := Dual{Objective: 3, TightObjective: 5}
	if d.Bound() != 5 {
		t.Fatalf("Bound = %v", d.Bound())
	}
	d.TightObjective = 1
	if d.Bound() != 3 {
		t.Fatalf("Bound = %v", d.Bound())
	}
}

func TestConfigLocalItersOverride(t *testing.T) {
	cfg := Config{T: 5, K: 1, TMax: 100, LocalIters: LogLocalIters(2)}
	bids := []Bid{{Client: 0, Price: 1, Theta: 0.5, Start: 1, End: 3, Rounds: 1, CompTime: 5, CommTime: 10}}
	// With η=2: T_l = 2·ln2 ≈ 1.386 → per-round ≈ 16.9 ≤ 100 → qualified.
	if got := Qualified(bids, 3, cfg); len(got) != 1 {
		t.Fatalf("Qualified with custom LocalIters = %v", got)
	}
	// A tiny budget rejects the same bid.
	cfg.TMax = 10
	if got := Qualified(bids, 3, cfg); len(got) != 0 {
		t.Fatalf("Qualified with tight t_max = %v", got)
	}
}
