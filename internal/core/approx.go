package core

import (
	"context"
	"math"
	"slices"
	"time"

	"github.com/fedauction/afl/internal/obs"
)

// Approximate sweep tiers (SolverCoarseFine, SolverLPRound): the sweep
// solves only a subset of the candidate T̂_g values and certifies the
// skipped ones with the capacity lower bound, so the returned Certificate
// bounds the cost of the reported cover against what the FULL exact
// enumeration would have returned. See solver.go for the certificate
// semantics.

// defaultStride is the base coarse stride when RunOptions.Stride is 0:
// solve every 4th candidate, adapt with the observed cost curvature.
const defaultStride = 4

// Curvature thresholds of the adaptive stride: the relative second
// difference of consecutive coarse costs above curvHigh halves the
// stride (the cost curve is bending — sample densely near the bend),
// below curvLow the stride grows by one up to 2× the base (the curve is
// flat — coarse samples suffice).
const (
	curvHigh = 0.02
	curvLow  = 0.002
)

// strideController drives the adaptive coarse pass. pick is called for
// every candidate T̂_g in ascending order by the masked sweep segment;
// by the time pick(tg) runs, the result of the previously picked
// candidate is already in out, so the controller folds it into the
// stride before deciding. All state is derived from solve results alone,
// keeping the candidate selection a pure function of the instance.
type strideController struct {
	out    []WDPResult
	t0, T  int
	base   int
	stride int
	next   int // next candidate to solve
	last   int // most recently picked candidate, -1 when consumed
	costs  [3]float64
	ncosts int
}

func newStrideController(out []WDPResult, t0, T, base int) *strideController {
	if base < 1 {
		base = defaultStride
	}
	return &strideController{out: out, t0: t0, T: T, base: base, stride: base, next: t0, last: -1}
}

// pick reports whether tg joins the coarse set, absorbing the previous
// pick's outcome into the stride first.
func (c *strideController) pick(tg int) bool {
	if c.last >= c.t0 {
		c.absorb(&c.out[c.last-c.t0])
		c.last = -1
	}
	if tg < c.next && tg != c.T {
		return false
	}
	c.last = tg
	c.next = tg + c.stride
	return true
}

// absorb updates the stride from one coarse solve: infeasibility resets
// to the base (the feasibility boundary must not be overshot), and the
// relative second difference of the last three feasible costs bends the
// stride toward dense sampling where the cost curve turns.
func (c *strideController) absorb(w *WDPResult) {
	if !w.Feasible {
		c.stride = c.base
		c.ncosts = 0
		return
	}
	if c.ncosts < len(c.costs) {
		c.costs[c.ncosts] = w.Cost
		c.ncosts++
	} else {
		c.costs[0], c.costs[1], c.costs[2] = c.costs[1], c.costs[2], w.Cost
	}
	if c.ncosts < 3 {
		return
	}
	d2 := math.Abs(c.costs[2]-2*c.costs[1]+c.costs[0]) / math.Max(math.Abs(c.costs[2]), 1e-9)
	switch {
	case d2 > curvHigh:
		if c.stride > 1 {
			c.stride /= 2
		}
	case d2 < curvLow:
		// Base 1 is the documented exact-dense mode: never coarsen it.
		if c.base > 1 && c.stride < 2*c.base {
			c.stride++
		}
	}
}

// capacityIndex answers the capacity lower bound capLB(tg): the minimum
// cost of buying at least K·tg participation rounds from the bids
// qualified at tg, with the last bid bought fractionally. Qualification
// includes the window-fit constraint a + c − 1 ≤ T̂_g (see
// auctionContext.rebuild), so every qualified bid delivers its full c
// rounds within the horizon; any feasible cover therefore buys ≥ K·tg
// rounds, and dropping the one-bid-per-client and per-slot structure
// only lowers the minimum — capLB(tg) ≤ OPT(tg) for every tg, including
// candidates the sweep never solved.
//
// The index sorts the ever-qualified bids once by unit price ρ/c; each
// query walks the prefix of that order restricted to enterTg ≤ tg until
// the demand is met. Early exit keeps queries far below O(n) on
// populations with supply to spare.
type capacityIndex struct {
	order []int     // ever-qualified bids, ascending unit price ρ/c
	unit  []float64 // unit price aligned with order
}

func (ax *auctionContext) buildCapacityIndex() *capacityIndex {
	q := ax.qualifiedAt(ax.cfg.T)
	ci := &capacityIndex{
		order: make([]int, len(q)),
		unit:  make([]float64, ax.set.n),
	}
	copy(ci.order, q)
	for _, idx := range q {
		ci.unit[idx] = ax.set.price[idx] / float64(ax.set.rounds[idx])
	}
	slices.SortFunc(ci.order, func(a, b int) int {
		switch ua, ub := ci.unit[a], ci.unit[b]; {
		case ua < ub:
			return -1
		case ua > ub:
			return 1
		}
		return a - b
	})
	return ci
}

// lowerBound returns capLB(tg), or +Inf when the qualified supply cannot
// cover the demand even fractionally.
func (ci *capacityIndex) lowerBound(ax *auctionContext, tg int) float64 {
	demand := ax.cfg.K * tg
	var cost float64
	for _, idx := range ci.order {
		if ax.enterTg[idx] > tg {
			continue
		}
		r := ax.set.rounds[idx]
		if r >= demand {
			cost += ci.unit[idx] * float64(demand)
			return cost
		}
		demand -= r
		cost += ax.set.price[idx]
	}
	return math.Inf(1)
}

// sweepApprox is the approximate counterpart of sweepSeq: an adaptive
// coarse pass over the candidate range, refinement around the coarse
// argmin until its immediate neighbours are solved, the optional
// LP-guided tightening and rounding of SolverLPRound, and the
// certificate assembly. It runs sequentially — the coarse set is decided
// online from preceding solves, so there is no independent fan-out;
// RunOptions.Workers still parallelizes the pricing stage afterwards.
func (ax *auctionContext) sweepApprox(ctx context.Context, res *Result, o RunOptions, obsv obs.Observer, now func() time.Time) error {
	t0, T := ax.t0, ax.cfg.T
	wdps := make([]WDPResult, T-t0+1)
	ctrl := newStrideController(wdps, t0, T, o.Stride)
	if err := ax.sweepSegmentMask(ctx, t0, T, wdps, ctrl.pick, obsv, now); err != nil {
		return err
	}
	reduceWDPs(res, wdps)

	// Feasibility parity with the exact sweep: when no coarse candidate
	// is feasible, a feasible T̂_g may still hide in a skipped gap —
	// reporting ErrInfeasible then would diverge from the exact tier on
	// the one outcome callers branch on. Fall back to solving every
	// remaining candidate.
	if !res.Feasible {
		err := ax.sweepSegmentMask(ctx, t0, T, wdps,
			func(tg int) bool { return wdps[tg-t0].Skipped }, obsv, now)
		if err != nil {
			return err
		}
		*res = Result{}
		reduceWDPs(res, wdps)
	}

	// Refinement: bisect the maximal skipped gaps flanking the current
	// argmin — each round solves only the midpoint of each flanking gap
	// (the ascending re-walk replays the incremental ψ_max column, so
	// refined solves are bit-identical to what the exact sweep would have
	// produced at the same T̂_g). A better midpoint moves the argmin and
	// restarts the bisection around it; a worse one halves the gap. The
	// loop ends when the argmin's immediate neighbours are solved; every
	// round solves at least one skipped candidate, so it terminates. The
	// cost curve need not be unimodal — a sharper minimum hiding in a
	// half-gap the bisection discards is exactly what the certificate's
	// per-candidate lower bounds price in.
	refine := func() error {
		for res.Feasible {
			lo, hi := res.Tg, res.Tg
			for lo-1 >= t0 && wdps[lo-1-t0].Skipped {
				lo--
			}
			for hi+1 <= T && wdps[hi+1-t0].Skipped {
				hi++
			}
			if lo == res.Tg && hi == res.Tg {
				return nil
			}
			mids := [2]int{-1, -1}
			if lo < res.Tg {
				mids[0] = (lo + res.Tg - 1) / 2
			}
			if hi > res.Tg {
				mids[1] = (res.Tg + 1 + hi) / 2
			}
			err := ax.sweepSegmentMask(ctx, lo, hi, wdps[lo-t0:hi-t0+1],
				func(tg int) bool { return (tg == mids[0] || tg == mids[1]) && wdps[tg-t0].Skipped }, obsv, now)
			if err != nil {
				return err
			}
			*res = Result{}
			reduceWDPs(res, wdps)
		}
		return nil
	}
	if err := refine(); err != nil {
		return err
	}

	// Certificate tightening: the certificate's minimum runs over the
	// exact A_winner cost of every solved candidate and the capacity
	// bound of every skipped one (see buildCertificate). Skipped
	// candidates where capLB dips far below any real cover — typically
	// large T̂_g, where extra cheap supply qualifies so the fractional
	// knapsack gets cheaper while actual covers get dearer — therefore
	// drag the certified ratio down without being competitive at all.
	// Solving the binding skipped candidate replaces its capacity bound
	// with its exact cost (one ordinary greedy solve, orders of magnitude
	// cheaper than LP-certifying it), so a few targeted solves lift the
	// certificate to the target ratio whenever the dip region is narrow.
	// The budget caps the spend on wide dip regions; the ratio is then
	// reported as achieved. A tightening solve that beats the current
	// selection moves the argmin — re-reduce and re-anchor the bisection
	// around it before continuing.
	ci := ax.buildCapacityIndex()
	for budget := certTightenBudget; budget > 0 && res.Feasible; budget-- {
		arg, bound := -1, math.Inf(1)
		for i := range wdps {
			if !wdps[i].Skipped {
				continue
			}
			if b := ci.lowerBound(ax, t0+i); b < bound {
				arg, bound = i, b
			}
		}
		if arg < 0 || bound >= res.Cost/certTargetRatio {
			break // certified at the target (or nothing left to lift)
		}
		err := ax.sweepSegmentMask(ctx, t0+arg, t0+arg, wdps[arg:arg+1],
			func(int) bool { return true }, obsv, now)
		if err != nil {
			return err
		}
		if wdps[arg].Feasible && wdps[arg].Cost < res.Cost {
			*res = Result{}
			reduceWDPs(res, wdps)
			if err := refine(); err != nil {
				return err
			}
		}
	}

	// SolverLPRound: solve the column-generation LP relaxation at the
	// selected candidate and round its fractional solution to a feasible
	// cover, adopted when it beats the greedy one — the adopted cost then
	// IS the selected candidate's certificate contribution, below the
	// exact sweep's. Without a hook the tier degrades to the
	// coarse-to-fine certificate (documented for direct core callers; the
	// facade, batch scheduler and market daemon always install one).
	var lpConverged bool
	if o.Solver == SolverLPRound && o.LP != nil && res.Feasible {
		seed := wdps[res.Tg-t0]
		out := o.LP.CertifyWDP(ax.set, ax.qualifiedAt(res.Tg), res.Tg, ax.cfg, seed)
		if out.Valid {
			lpConverged = out.Converged
			if rounded, ok := ax.roundLPCover(res.Tg, out.Columns, seed); ok && rounded.Cost < seed.Cost {
				wdps[res.Tg-t0] = rounded
				res.Winners = rounded.Winners
				res.Cost = rounded.Cost
			}
		}
	}

	res.Cert = ax.buildCertificate(o.Solver, res, wdps, ci, lpConverged)
	if obsv != nil && res.Cert != nil {
		obsv.Observe(obs.Event{
			Kind: obs.EvCertificateComputed, Tg: res.Tg, Round: res.Cert.Solved,
			Client: -1, Bid: -1, Value: res.Cert.Ratio, OK: res.Feasible,
			Label: o.Solver.String(),
		})
	}
	return nil
}

// certTargetRatio is the certified ratio the tightening loop drives the
// certificate toward: once every skipped candidate's capacity bound sits
// at or above Result.Cost / certTargetRatio, no further solves are spent.
// certTightenBudget caps the targeted solves; on workloads whose capLB
// dip region is wider than the budget, the achieved (larger) ratio is
// reported honestly instead.
const (
	certTargetRatio   = 1.05
	certTightenBudget = 8
)

// buildCertificate assembles the certificate's lower bound on the EXACT
// SWEEP's cost — min over every candidate T̂_g of the A_winner cost at
// that T̂_g, the value SolverExact returns. Every solved feasible
// candidate contributes its exact cost (approximate-tier solves are
// bit-identical to the exact sweep's, and an adopted LP-rounded cover
// only contributes a smaller, still-valid value); a solved infeasible
// candidate contributes nothing (the exact sweep has no cover there
// either); a skipped candidate contributes capLB(tg) ≤ OPT(tg), which
// lower-bounds its A_winner cost whenever one exists.
func (ax *auctionContext) buildCertificate(solver Solver, res *Result, wdps []WDPResult, ci *capacityIndex, lpConverged bool) *Certificate {
	if !res.Feasible {
		return nil
	}
	t0 := ax.t0
	lb := math.Inf(1)
	solved := 0
	for i := range wdps {
		var b float64
		switch {
		case wdps[i].Skipped:
			b = ci.lowerBound(ax, t0+i)
		case wdps[i].Feasible:
			solved++
			b = wdps[i].Cost
		default:
			solved++
			continue
		}
		if b < lb {
			lb = b
		}
	}
	cert := &Certificate{
		Solver:     solver,
		LowerBound: lb,
		Ratio:      math.Inf(1),
		Solved:     solved,
		Candidates: len(wdps),
		Converged:  lpConverged,
	}
	if lb > 0 && !math.IsInf(lb, 1) {
		cert.Ratio = res.Cost / lb
	}
	return cert
}

// roundLPCover rounds a fractional LP solution at tg to a feasible
// integral cover: columns are taken in descending fractional value (ties
// by bid index), at most one per client, skipping columns that add no
// still-needed coverage; any residual demand is bought by the greedy
// solver on the remaining clients with the rounded coverage pre-committed
// (solveWDP's base path — the mid-session-repair machinery reused as the
// rounding completer). ok is false when no complete cover results.
//
// Rounded winners carry Payment = Price: an LP-guided winner has no
// in-greedy Algorithm 3 critical value, and paying the claimed price is
// individually rational by construction — the same fallback
// exactCriticalPayment applies to winners that only win through sibling
// interaction. Greedy completion winners keep their critical payments,
// and RuleExactCritical re-prices the whole selected set as usual; see
// the DESIGN.md approximation notes for the incentive accounting.
func (ax *auctionContext) roundLPCover(tg int, cols []LPColumn, seed WDPResult) (WDPResult, bool) {
	if len(cols) == 0 {
		return WDPResult{}, false
	}
	set, cfg := ax.set, ax.cfg
	order := make([]int, 0, len(cols))
	for i, c := range cols {
		if c.Value > 1e-9 && len(c.Slots) > 0 && c.Bid >= 0 && c.Bid < set.n {
			order = append(order, i)
		}
	}
	slices.SortFunc(order, func(a, b int) int {
		switch va, vb := cols[a].Value, cols[b].Value; {
		case va > vb:
			return -1
		case va < vb:
			return 1
		}
		return cols[a].Bid - cols[b].Bid
	})
	gamma := make([]int, tg)
	used := make(map[int]bool)
	var winners []Winner
	var cost float64
	for _, i := range order {
		c := cols[i]
		cli := set.client[c.Bid]
		if used[cli] {
			continue
		}
		adds := false
		for _, t := range c.Slots {
			if t >= 1 && t <= tg && gamma[t-1] < cfg.K {
				adds = true
				break
			}
		}
		if !adds {
			continue
		}
		used[cli] = true
		slots := make([]int, len(c.Slots))
		copy(slots, c.Slots)
		for _, t := range slots {
			if t >= 1 && t <= tg {
				gamma[t-1]++
			}
		}
		price := set.price[c.Bid]
		winners = append(winners, Winner{
			BidIndex: c.Bid,
			Bid:      set.Bid(c.Bid),
			Slots:    slots,
			Payment:  price,
			AvgCost:  price / float64(len(slots)),
		})
		cost += price
	}
	short := false
	for t := 0; t < tg; t++ {
		if gamma[t] < cfg.K {
			short = true
			break
		}
	}
	if short {
		qualified := ax.qualifiedAt(tg)
		residualQ := make([]int, 0, len(qualified))
		for _, idx := range qualified {
			if !used[set.client[idx]] {
				residualQ = append(residualQ, idx)
			}
		}
		sc := acquireScratch(set.n, tg)
		resid := solveWDP(set, residualQ, tg, cfg, sc, gamma, ax.env())
		releaseScratch(sc)
		if !resid.Feasible {
			return WDPResult{}, false
		}
		winners = append(winners, resid.Winners...)
		cost += resid.Cost
	}
	if len(winners) == 0 {
		return WDPResult{}, false
	}
	// The Lemma 5 dual is an instance certificate of the greedy run at
	// tg, valid as a lower bound on OPT(tg) regardless of which primal
	// cover is reported — keep the seed's.
	return WDPResult{Tg: tg, Feasible: true, Cost: cost, Winners: winners, Dual: seed.Dual, Rounds: seed.Rounds}, true
}
