package core_test

// Property tests for the columnar bid store. CompileBids promises an
// EXACT AoS↔SoA round trip — Bid(i) and Bids() reproduce the compiled
// rows field-for-field, including non-finite floats and out-of-range
// windows — and the set-accepting entry points (NewEngineSet,
// AcquireEngineSet, ReacquireEngineSet) promise bit-identical results to
// their []Bid twins. Both claims are locked here; FuzzCompileBids extends
// them to arbitrary byte-derived populations with a checked-in seed
// corpus (testdata/fuzz/FuzzCompileBids).

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/workload"
)

// bidBitsEqual compares two bids field-for-field at the bit level: float
// fields via Float64bits so NaN payloads and signed zeros must survive
// the columnar round trip, not just compare ==.
func bidBitsEqual(a, b core.Bid) bool {
	ff := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	return a.Client == b.Client && a.Index == b.Index &&
		ff(a.Price, b.Price) && ff(a.TrueCost, b.TrueCost) && ff(a.Theta, b.Theta) &&
		a.Start == b.Start && a.End == b.End && a.Rounds == b.Rounds &&
		ff(a.CompTime, b.CompTime) && ff(a.CommTime, b.CommTime)
}

// roundTripCases mixes generated §VII-A populations with hand-built
// hostile rows: non-finite floats, inverted and out-of-range windows,
// negative everything, signed zeros. Validity is irrelevant to the round
// trip — CompileBids must preserve whatever it is given.
func roundTripCases(t *testing.T) map[string][]core.Bid {
	t.Helper()
	cases := map[string][]core.Bid{
		"empty": nil,
		"hostile": {
			{Client: -3, Index: 7, Price: math.NaN(), TrueCost: math.Inf(1), Theta: math.Inf(-1),
				Start: -5, End: -9, Rounds: -1, CompTime: math.Copysign(0, -1), CommTime: math.NaN()},
			{Client: 0, Index: 0},
			{Client: 1 << 30, Index: -1, Price: -1e308, TrueCost: 5e-324, Theta: 2,
				Start: 1 << 20, End: 0, Rounds: 1 << 10, CompTime: -7, CommTime: math.MaxFloat64},
		},
	}
	for seed := int64(1); seed <= 8; seed++ {
		p := workload.NewDefaultParams()
		p.Clients = 20 + int(seed)*13
		p.BidsPerUser = 1 + int(seed%4)
		p.Seed = seed
		bids, err := workload.Generate(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cases[fmt.Sprintf("generated/seed%d", seed)] = bids
	}
	return cases
}

// TestCompileBidsRoundTrip locks the exactness contract of the columnar
// store: Bid(i) equals row i of the compiled slice bit-for-bit for every
// index, Bids() reproduces the whole slice, and Len matches.
func TestCompileBidsRoundTrip(t *testing.T) {
	for name, bids := range roundTripCases(t) {
		set := core.CompileBids(bids)
		if set.Len() != len(bids) {
			t.Fatalf("%s: Len = %d, compiled %d bids", name, set.Len(), len(bids))
		}
		for i := range bids {
			if got := set.Bid(i); !bidBitsEqual(got, bids[i]) {
				t.Fatalf("%s: Bid(%d) = %+v, compiled from %+v", name, i, got, bids[i])
			}
		}
		back := set.Bids()
		if len(back) != len(bids) {
			t.Fatalf("%s: Bids() returned %d rows, compiled %d", name, len(back), len(bids))
		}
		for i := range bids {
			if !bidBitsEqual(back[i], bids[i]) {
				t.Fatalf("%s: Bids()[%d] = %+v, compiled from %+v", name, i, back[i], bids[i])
			}
		}
	}
}

// TestValidateBidSetMatchesValidateBids holds the columnar validator to
// the row validator's exact behaviour: same accept/reject decision and
// the same error message on every population, valid or hostile.
func TestValidateBidSetMatchesValidateBids(t *testing.T) {
	for name, bids := range roundTripCases(t) {
		for _, dims := range [][2]int{{50, 20}, {12, 2}, {0, 1}, {5, 0}} {
			maxT, k := dims[0], dims[1]
			rowErr := core.ValidateBids(bids, maxT, k)
			setErr := core.ValidateBidSet(core.CompileBids(bids), maxT, k)
			if (rowErr == nil) != (setErr == nil) {
				t.Fatalf("%s T=%d K=%d: ValidateBids=%v, ValidateBidSet=%v", name, maxT, k, rowErr, setErr)
			}
			if rowErr != nil && rowErr.Error() != setErr.Error() {
				t.Fatalf("%s T=%d K=%d: error message diverged:\n rows: %v\n  set: %v", name, maxT, k, rowErr, setErr)
			}
		}
	}
}

// TestEngineSetPathsBitIdentical runs one population through every
// set-accepting construction path — NewEngineSet, AcquireEngineSet, the
// ReacquireEngineSet warm start (same set, same config: the context
// rebuild is skipped entirely) and a Reacquire rebind under a changed
// config — and holds each to reflect.DeepEqual against the []Bid twin,
// serial and over a worker pool.
func TestEngineSetPathsBitIdentical(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		p := workload.NewDefaultParams()
		p.Clients = 60 + int(seed)*17
		p.BidsPerUser = 1 + int(seed%3)
		p.Seed = 100 + seed
		bids, err := workload.Generate(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cfg := p.Config()
		rowEng, err := core.NewEngine(bids, cfg)
		if err != nil {
			t.Fatalf("seed %d: NewEngine: %v", seed, err)
		}
		want := rowEng.Run()

		set := core.CompileBids(bids)
		setEng, err := core.NewEngineSet(set, cfg)
		if err != nil {
			t.Fatalf("seed %d: NewEngineSet: %v", seed, err)
		}
		if got := setEng.Run(); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: NewEngineSet.Run diverged from NewEngine.Run", seed)
		}
		if got := setEng.RunConcurrent(4); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: NewEngineSet.RunConcurrent(4) diverged", seed)
		}

		pooled, err := core.AcquireEngineSet(set, cfg)
		if err != nil {
			t.Fatalf("seed %d: AcquireEngineSet: %v", seed, err)
		}
		if got := pooled.Run(); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: AcquireEngineSet.Run diverged", seed)
		}
		// Warm start: same set, equivalent config — the rebind must hand
		// back an engine that still reproduces the result exactly.
		warm, err := core.ReacquireEngineSet(pooled, set, cfg)
		if err != nil {
			t.Fatalf("seed %d: ReacquireEngineSet warm: %v", seed, err)
		}
		if got := warm.Run(); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: warm-started engine diverged", seed)
		}
		// Changed config: the rebind must rebuild, not reuse, and the
		// result must match a cold engine under the new config.
		cfg2 := cfg
		cfg2.PaymentRule = core.RulePayBid
		rebound, err := core.ReacquireEngineSet(warm, set, cfg2)
		if err != nil {
			t.Fatalf("seed %d: ReacquireEngineSet rebind: %v", seed, err)
		}
		cold, err := core.NewEngineSet(set, cfg2)
		if err != nil {
			t.Fatalf("seed %d: NewEngineSet cfg2: %v", seed, err)
		}
		if got, want2 := rebound.Run(), cold.Run(); !reflect.DeepEqual(got, want2) {
			t.Fatalf("seed %d: rebound engine diverged from cold engine under new config", seed)
		}
		rebound.Release()
	}
}

// FuzzCompileBids drives arbitrary byte-derived populations through the
// columnar facade. Three invariants, each unconditional:
//
//   - the AoS↔SoA round trip is exact at the bit level, valid or not;
//   - ValidateBidSet agrees with ValidateBids — same decision, same
//     message — on every population;
//   - populations both validators accept solve identically through the
//     row path (RunAuction) and the set path (NewEngineSet), serial and
//     concurrent.
func FuzzCompileBids(f *testing.F) {
	f.Add([]byte{1, 16, 100, 9, 12, 3, 50, 50, 0}, uint8(12), uint8(2))
	f.Add([]byte{2, 16, 100, 12, 9, 3, 50, 50, 0, 3, 20, 90, 1, 6, 2, 10, 10, 1}, uint8(12), uint8(2))
	f.Add(make([]byte, 27), uint8(8), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, rawT, rawK uint8) {
		maxT := int(rawT%64) + 1
		k := int(rawK%8) + 1
		bids := fuzzDecodeBids(data, maxT)
		set := core.CompileBids(bids)
		if set.Len() != len(bids) {
			t.Fatalf("Len = %d, compiled %d bids", set.Len(), len(bids))
		}
		for i := range bids {
			if got := set.Bid(i); !bidBitsEqual(got, bids[i]) {
				t.Fatalf("Bid(%d) = %+v, compiled from %+v", i, got, bids[i])
			}
		}
		rowErr := core.ValidateBids(bids, maxT, k)
		setErr := core.ValidateBidSet(set, maxT, k)
		if (rowErr == nil) != (setErr == nil) {
			t.Fatalf("validators disagree: rows %v, set %v", rowErr, setErr)
		}
		if rowErr != nil {
			if rowErr.Error() != setErr.Error() {
				t.Fatalf("validator messages diverged:\n rows: %v\n  set: %v", rowErr, setErr)
			}
			return
		}
		cfg := core.Config{T: maxT, K: k}
		rows, err := core.RunAuction(bids, cfg)
		if err != nil {
			return // ErrNoBids on empty populations
		}
		eng, err := core.NewEngineSet(set, cfg)
		if err != nil {
			t.Fatalf("NewEngineSet rejected a validated set: %v", err)
		}
		if got := eng.Run(); !reflect.DeepEqual(rows, got) {
			t.Fatal("set path diverged from row path")
		}
		if got := eng.RunConcurrent(2); !reflect.DeepEqual(rows, got) {
			t.Fatal("concurrent set path diverged from row path")
		}
	})
}
