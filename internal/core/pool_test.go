package core_test

import (
	"context"
	"reflect"
	"testing"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/workload"
)

// poolWorkload draws a population for the engine-pool tests.
func poolWorkload(t *testing.T, seed int64, clients, maxT, k int) ([]core.Bid, core.Config) {
	t.Helper()
	p := workload.NewDefaultParams()
	p.Seed = seed
	p.Clients = clients
	p.T = maxT
	p.K = k
	bids, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.Config()
	return bids, cfg
}

// TestAcquireEngineMatchesNewEngine runs a sequence of differently-seeded
// populations through one recycled arena chain (acquire → run → release,
// so each acquisition after the first reuses the previous instance's
// arena) and requires bit-identity with a fresh NewEngine on every
// instance. Any state bleeding across rebuilds — a stale qualification
// prefix, a leftover client-group entry — shows up as a Result diff.
func TestAcquireEngineMatchesNewEngine(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= 8; seed++ {
		bids, cfg := poolWorkload(t, seed, 60+int(seed)*7, 10+int(seed), 3)
		fresh, err := core.NewEngine(bids, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, wantErr := fresh.RunCtx(ctx, core.RunOptions{})

		pooled, err := core.AcquireEngine(bids, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, gotErr := pooled.RunCtx(ctx, core.RunOptions{})
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("seed %d: pooled err %v, fresh err %v", seed, gotErr, wantErr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: pooled engine result diverges from NewEngine", seed)
		}
		if q1, q2 := pooled.QualifiedAt(cfg.T), fresh.QualifiedAt(cfg.T); !reflect.DeepEqual(q1, q2) {
			t.Fatalf("seed %d: qualified sets diverge: %v vs %v", seed, q1, q2)
		}
		pooled.Release()
	}
}

// TestPooledEngineMisreportProbe is the no-state-bleed probe: a client
// misreports its price, the misreported population runs on a pooled
// engine whose arena just solved the truthful population, and the outcome
// must match a fresh engine on the misreported population bit-for-bit.
// If the recycled arena leaked anything from the truthful run — the old
// price through a stale grouping, the old qualification order — the
// misreported auction would come out different, and with it the
// truthfulness guarantee of the batch layer.
func TestPooledEngineMisreportProbe(t *testing.T) {
	ctx := context.Background()
	bids, cfg := poolWorkload(t, 42, 80, 12, 3)

	truthful, err := core.AcquireEngine(bids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := truthful.RunCtx(ctx, core.RunOptions{})
	if err != nil || !base.Feasible {
		t.Fatalf("truthful run: %+v, %v", base.Feasible, err)
	}
	if len(base.Winners) == 0 {
		t.Fatal("no winners to probe")
	}
	win := base.Winners[0]
	truthful.Release()

	// Misreport: the first winner claims a higher price.
	misreported := make([]core.Bid, len(bids))
	copy(misreported, bids)
	misreported[win.BidIndex].Price *= 1.05

	fresh, err := core.NewEngine(misreported, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, wantErr := fresh.RunCtx(ctx, core.RunOptions{})

	// The pooled acquisition reuses the arena the truthful run just
	// released (same shape class, single goroutine).
	probe, err := core.AcquireEngine(misreported, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, gotErr := probe.RunCtx(ctx, core.RunOptions{})
	probe.Release()
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("probe err %v, fresh err %v", gotErr, wantErr)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("misreport probe on a reused engine diverges from a fresh engine")
	}

	// Truthfulness invariant on the reused path: if the misreporting
	// winner still wins, its payment must not move (critical-value
	// payments are independent of the winner's own claim as long as the
	// claim stays below the critical value).
	for _, w := range got.Winners {
		if w.BidIndex == win.BidIndex && got.Tg == base.Tg && w.Payment != win.Payment {
			t.Fatalf("payment moved under misreport on reused engine: %v -> %v", win.Payment, w.Payment)
		}
	}
}

// TestReacquireEngineRebindsInPlace drives one engine through a chain of
// differently-seeded instances with ReacquireEngine — same shape class, so
// every step after the first rebinds the held arena without touching the
// pool — and requires bit-identity with a fresh NewEngine per instance.
// It then crosses a shape boundary (fallback to Release + Acquire) and an
// invalid config (prev released, nil engine back) and checks the chain
// recovers.
func TestReacquireEngineRebindsInPlace(t *testing.T) {
	ctx := context.Background()
	var eng *core.Engine
	var err error
	for seed := int64(1); seed <= 6; seed++ {
		bids, cfg := poolWorkload(t, seed, 60, 12, 3)
		fresh, ferr := core.NewEngine(bids, cfg)
		if ferr != nil {
			t.Fatal(ferr)
		}
		want, wantErr := fresh.RunCtx(ctx, core.RunOptions{})

		eng, err = core.ReacquireEngine(eng, bids, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, gotErr := eng.RunCtx(ctx, core.RunOptions{})
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("seed %d: reacquired err %v, fresh err %v", seed, gotErr, wantErr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: reacquired engine diverges from NewEngine", seed)
		}
	}

	// Shape-class crossing: a much larger horizon lands in another pool.
	bids, cfg := poolWorkload(t, 99, 200, 40, 5)
	eng, err = core.ReacquireEngine(eng, bids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := core.NewEngine(bids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := fresh.RunCtx(ctx, core.RunOptions{})
	if got, _ := eng.RunCtx(ctx, core.RunOptions{}); !reflect.DeepEqual(got, want) {
		t.Fatal("shape-crossing reacquire diverges from NewEngine")
	}

	// Validation error: prev is released, nil comes back, and the chain
	// recovers on the next valid instance.
	bad := cfg
	bad.T = 0
	if eng, err = core.ReacquireEngine(eng, bids, bad); err == nil || eng != nil {
		t.Fatalf("invalid config: engine %v, err %v", eng, err)
	}
	bids, cfg = poolWorkload(t, 100, 60, 12, 3)
	eng, err = core.ReacquireEngine(eng, bids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Run().Feasible {
		t.Fatal("post-recovery instance infeasible")
	}
	eng.Release()
}

// TestReleaseIdempotent checks the Release contract: double release and
// releasing a NewEngine-built engine are no-ops.
func TestReleaseIdempotent(t *testing.T) {
	bids, cfg := poolWorkload(t, 7, 40, 12, 2)
	eng, err := core.AcquireEngine(bids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Run().Feasible {
		t.Fatal("workload infeasible")
	}
	eng.Release()
	eng.Release() // second release is a no-op

	plain, err := core.NewEngine(bids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain.Release() // non-pooled engines have no arena
	if !plain.Run().Feasible {
		t.Fatal("NewEngine unusable after no-op Release")
	}
}
