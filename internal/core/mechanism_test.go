package core

import (
	"testing"

	"github.com/fedauction/afl/internal/stats"
)

// wdpUtility runs SolveWDP after overriding one bid's claimed price and
// returns the bidding client's utility: payment minus the true cost of
// whichever of its bids actually won (0 if none did).
func wdpUtility(bids []Bid, victim int, claimed float64, tg int, cfg Config) float64 {
	mod := make([]Bid, len(bids))
	copy(mod, bids)
	mod[victim].Price = claimed
	res := SolveWDP(mod, Qualified(mod, tg, cfg), tg, cfg)
	if !res.Feasible {
		return 0
	}
	for _, w := range res.Winners {
		if w.Bid.Client == bids[victim].Client {
			return w.Payment - w.Bid.Cost()
		}
	}
	return 0
}

// TestWDPTruthfulnessExactCritical checks strict truthfulness under the
// exact critical-value payment rule in the single-parameter setting the
// Myerson characterization covers: victims are clients with exactly one
// bid, and a reserve price gives essential bids a finite, bid-independent
// payment. No unilateral price misreport may strictly increase a client's
// utility.
func TestWDPTruthfulnessExactCritical(t *testing.T) {
	rng := stats.NewRNG(314)
	probed := 0
	for trial := 0; trial < 120 && probed < 40; trial++ {
		bids, tg, k := randomWDPInstance(rng)
		cfg := Config{T: tg, K: k, PaymentRule: RuleExactCritical, ExcludeOwnBids: true, ReservePrice: 500}
		for i := range bids {
			bids[i].TrueCost = bids[i].Price
		}
		base := SolveWDP(bids, Qualified(bids, tg, cfg), tg, cfg)
		if !base.Feasible {
			continue
		}
		victim := singleBidVictim(bids, rng)
		if victim < 0 {
			continue
		}
		probed++
		truthful := wdpUtility(bids, victim, bids[victim].Price, tg, cfg)
		for _, factor := range []float64{0.25, 0.5, 0.8, 0.95, 1.05, 1.25, 2, 4} {
			misreport := bids[victim].Price * factor
			lying := wdpUtility(bids, victim, misreport, tg, cfg)
			if lying > truthful+1e-6 {
				t.Fatalf("trial %d: client %d gains by misreporting %.4f→%.4f: utility %.6f > %.6f",
					trial, bids[victim].Client, bids[victim].Price, misreport, lying, truthful)
			}
		}
	}
	if probed == 0 {
		t.Fatal("no single-bid victims probed")
	}
}

// singleBidVictim returns the index of a uniformly chosen bid whose client
// submitted only that bid, or -1 if every client is multi-minded.
func singleBidVictim(bids []Bid, rng *stats.RNG) int {
	perClient := make(map[int]int)
	for _, b := range bids {
		perClient[b.Client]++
	}
	var candidates []int
	for i, b := range bids {
		if perClient[b.Client] == 1 {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return -1
	}
	return candidates[rng.Intn(len(candidates))]
}

// TestMultiMindedManipulation measures, for both payment rules, how often
// a multi-minded client profits from re-pricing one of its bids. Exact
// truthfulness for multi-minded (XOR) bidders is a multi-parameter
// mechanism-design problem outside both Myerson's characterization and the
// paper's proofs; this test documents the residual manipulation surface
// instead of asserting it away.
func TestMultiMindedManipulation(t *testing.T) {
	for _, rule := range []PaymentRule{RuleCritical, RuleExactCritical} {
		t.Run(rule.String(), func(t *testing.T) {
			rng := stats.NewRNG(4242)
			probes, violations := 0, 0
			for trial := 0; trial < 60; trial++ {
				bids, tg, k := randomWDPInstance(rng)
				cfg := Config{T: tg, K: k, PaymentRule: rule, ExcludeOwnBids: true, ReservePrice: 500}
				for i := range bids {
					bids[i].TrueCost = bids[i].Price
				}
				base := SolveWDP(bids, Qualified(bids, tg, cfg), tg, cfg)
				if !base.Feasible {
					continue
				}
				victim := rng.Intn(len(bids))
				truthful := wdpUtility(bids, victim, bids[victim].Price, tg, cfg)
				for _, factor := range []float64{0.5, 1.5, 3} {
					probes++
					if wdpUtility(bids, victim, bids[victim].Price*factor, tg, cfg) > truthful+1e-9 {
						violations++
					}
				}
			}
			if probes == 0 {
				t.Fatal("no feasible probes")
			}
			rate := float64(violations) / float64(probes)
			t.Logf("%s: %d/%d profitable multi-minded misreports (%.1f%%)", rule, violations, probes, 100*rate)
			if rate > 0.15 {
				t.Fatalf("manipulation rate %.1f%% unexpectedly high", 100*rate)
			}
		})
	}
}

// TestWDPAlgorithm3NearTruthfulness measures how close the paper's
// Algorithm 3 payment is to truthful. The payment is critical only within
// the selection round (Lemma 2); across rounds the marginal utility of a
// deferred schedule can shrink, so small profitable misreports exist. The
// test pins down that (a) violations are rare and (b) the gain is bounded
// by the achievable payment spread, documenting the reproduction finding
// rather than asserting a property the implementation does not have.
func TestWDPAlgorithm3NearTruthfulness(t *testing.T) {
	rng := stats.NewRNG(1618)
	probes, violations := 0, 0
	var worstGain float64
	for trial := 0; trial < 80; trial++ {
		bids, tg, k := randomWDPInstance(rng)
		cfg := Config{T: tg, K: k, ExcludeOwnBids: true}
		for i := range bids {
			bids[i].TrueCost = bids[i].Price
		}
		base := SolveWDP(bids, Qualified(bids, tg, cfg), tg, cfg)
		if !base.Feasible {
			continue
		}
		victim := rng.Intn(len(bids))
		truthful := wdpUtility(bids, victim, bids[victim].Price, tg, cfg)
		for _, factor := range []float64{0.5, 0.8, 1.25, 2} {
			probes++
			lying := wdpUtility(bids, victim, bids[victim].Price*factor, tg, cfg)
			if gain := lying - truthful; gain > 1e-9 {
				violations++
				if gain > worstGain {
					worstGain = gain
				}
			}
		}
	}
	if probes == 0 {
		t.Fatal("no feasible probes")
	}
	rate := float64(violations) / float64(probes)
	t.Logf("Algorithm 3 misreport probes: %d, profitable: %d (%.1f%%), worst gain %.3f",
		probes, violations, 100*rate, worstGain)
	if rate > 0.10 {
		t.Fatalf("Algorithm 3 profitable-misreport rate %.1f%% unexpectedly high", 100*rate)
	}
}

// TestWDPIndividualRationality checks Theorem 2 for all payment rules:
// every winner's payment is at least its claimed price.
func TestWDPIndividualRationality(t *testing.T) {
	rules := []PaymentRule{RuleCritical, RuleExactCritical, RulePayBid}
	for _, rule := range rules {
		t.Run(rule.String(), func(t *testing.T) {
			rng := stats.NewRNG(2718)
			for trial := 0; trial < 50; trial++ {
				bids, tg, k := randomWDPInstance(rng)
				cfg := Config{T: tg, K: k, PaymentRule: rule}
				res := SolveWDP(bids, Qualified(bids, tg, cfg), tg, cfg)
				if !res.Feasible {
					continue
				}
				for _, w := range res.Winners {
					if w.Payment < w.Bid.Price-1e-9 {
						t.Fatalf("trial %d: winner %s paid %.6f < price %.6f",
							trial, w.Bid, w.Payment, w.Bid.Price)
					}
				}
			}
		})
	}
}

// TestWDPMonotonicity checks Lemma 1: a winning bid that unilaterally
// lowers its price is still selected. The greedy is selection-monotone
// (the lowered bid is picked no later than before), but because
// Algorithm 2 never backtracks, an earlier selection can occasionally
// steer the rest of the run into a dead end and make the *whole* WDP
// infeasible — a mechanism edge the paper's "enough clients" assumption
// papers over. Those feasibility collapses are counted and bounded; when
// the run stays feasible, winning is asserted strictly.
func TestWDPMonotonicity(t *testing.T) {
	rng := stats.NewRNG(161803)
	probes, collapses := 0, 0
	for trial := 0; trial < 60; trial++ {
		bids, tg, k := randomWDPInstance(rng)
		cfg := Config{T: tg, K: k}
		res := SolveWDP(bids, Qualified(bids, tg, cfg), tg, cfg)
		if !res.Feasible || len(res.Winners) == 0 {
			continue
		}
		w := res.Winners[rng.Intn(len(res.Winners))]
		for _, factor := range []float64{0.3, 0.6, 0.9} {
			probes++
			mod := make([]Bid, len(bids))
			copy(mod, bids)
			mod[w.BidIndex].Price *= factor
			res2 := SolveWDP(mod, Qualified(mod, tg, cfg), tg, cfg)
			if !res2.Feasible {
				collapses++
				continue
			}
			stillWins := false
			for _, w2 := range res2.Winners {
				if w2.BidIndex == w.BidIndex {
					stillWins = true
					break
				}
			}
			if !stillWins {
				t.Fatalf("trial %d: bid %d lost after lowering its price ×%.1f",
					trial, w.BidIndex, factor)
			}
		}
	}
	if probes == 0 {
		t.Fatal("no probes ran")
	}
	rate := float64(collapses) / float64(probes)
	t.Logf("feasibility collapses after price cuts: %d/%d (%.1f%%)", collapses, probes, 100*rate)
	if rate > 0.05 {
		t.Fatalf("feasibility-collapse rate %.1f%% unexpectedly high", 100*rate)
	}
}

// TestWDPExactCriticalIsThreshold verifies the defining property of the
// exact rule: bidding just below the payment wins, just above loses
// (whenever a finite threshold exists).
func TestWDPExactCriticalIsThreshold(t *testing.T) {
	rng := stats.NewRNG(577)
	checked := 0
	for trial := 0; trial < 200 && checked < 25; trial++ {
		bids, tg, k := randomWDPInstance(rng)
		cfg := Config{T: tg, K: k, PaymentRule: RuleExactCritical, ExcludeOwnBids: true, ReservePrice: 10000}
		res := SolveWDP(bids, Qualified(bids, tg, cfg), tg, cfg)
		if !res.Feasible || len(res.Winners) == 0 {
			continue
		}
		w := res.Winners[0]
		if w.Payment <= w.Bid.Price*1.001 {
			continue // no margin to probe on either side
		}
		singleBid := true
		for i, b := range bids {
			if i != w.BidIndex && b.Client == w.Bid.Client {
				singleBid = false
				break
			}
		}
		if !singleBid {
			// The payment threshold is defined on the sibling-free probe
			// instance; probing the original instance would conflate the
			// multi-minded channel measured elsewhere.
			continue
		}
		checked++
		probe := func(price float64) bool {
			mod := make([]Bid, len(bids))
			copy(mod, bids)
			mod[w.BidIndex].Price = price
			r2 := SolveWDP(mod, Qualified(mod, tg, cfg), tg, cfg)
			for _, w2 := range r2.Winners {
				if w2.BidIndex == w.BidIndex {
					return true
				}
			}
			return false
		}
		if !probe(w.Payment * 0.999) {
			t.Fatalf("trial %d: bidding just below the exact payment (%.6f) lost", trial, w.Payment)
		}
		if probe(w.Payment * 1.001) {
			t.Fatalf("trial %d: bidding just above the exact payment (%.6f) still wins", trial, w.Payment)
		}
	}
	if checked == 0 {
		t.Fatal("no instance exercised the threshold probe")
	}
}

// TestAuctionIndividualRationality extends IR to the full A_FL enumeration.
func TestAuctionIndividualRationality(t *testing.T) {
	rng := stats.NewRNG(8128)
	cfg := Config{T: 10, K: 2, TMax: 60}
	for trial := 0; trial < 40; trial++ {
		bids := randomAuctionBids(rng, cfg.T, 10)
		res, err := RunAuction(bids, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Feasible {
			continue
		}
		for _, w := range res.Winners {
			if w.Payment < w.Bid.Price-1e-9 {
				t.Fatalf("trial %d: winner %s paid %.6f < price %.6f",
					trial, w.Bid, w.Payment, w.Bid.Price)
			}
			if w.Utility() < -1e-9 {
				t.Fatalf("trial %d: negative utility %.6f for %s", trial, w.Utility(), w.Bid)
			}
		}
	}
}

func TestPaymentRuleString(t *testing.T) {
	tests := []struct {
		rule PaymentRule
		want string
	}{
		{RuleCritical, "critical"},
		{RuleExactCritical, "exact-critical"},
		{RulePayBid, "pay-bid"},
		{PaymentRule(99), "unknown"},
	}
	for _, tc := range tests {
		if got := tc.rule.String(); got != tc.want {
			t.Errorf("String(%d) = %q, want %q", tc.rule, got, tc.want)
		}
	}
}

func TestConfigValidatePaymentRule(t *testing.T) {
	cfg := Config{T: 5, K: 1, PaymentRule: PaymentRule(42)}
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected unknown-payment-rule error")
	}
}

func TestPayBidRule(t *testing.T) {
	bids := exampleBids()
	cfg := Config{T: 3, K: 1, PaymentRule: RulePayBid}
	res := SolveWDP(bids, []int{0, 1, 2}, 3, cfg)
	if !res.Feasible {
		t.Fatal("infeasible")
	}
	for _, w := range res.Winners {
		if w.Payment != w.Bid.Price {
			t.Fatalf("pay-bid payment %v ≠ price %v", w.Payment, w.Bid.Price)
		}
	}
}
