package core

// RunAuction executes the full A_FL auction (Algorithm 1): it derives the
// feasible range [T_0, T] for the number of global iterations from the
// bids' local accuracies, forms the qualified bid set and solves the
// winner-determination problem for every T̂_g in the range, and returns the
// minimum-social-cost solution with its schedules, critical-value payments
// and dual certificate.
//
// The sweep runs on the incremental WDP engine: one shared immutable
// auction context (monotone qualification delta lists, client groupings)
// and one pooled scratch arena serve every candidate T̂_g, so per-T̂_g
// work is proportional to the solve itself, not to rebuilding state.
// Results are bit-identical to solving each WDP independently from
// scratch (the differential harness in differential_test.go enforces
// this against a frozen copy of the pre-engine solver).
//
// The returned Result is infeasible (Feasible == false) when no T̂_g admits
// K participants in every global iteration.
func RunAuction(bids []Bid, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := ValidateBids(bids, cfg.T, cfg.K); err != nil {
		return Result{}, err
	}
	return newAuctionContext(CompileBids(bids), cfg).run(), nil
}

// RunWDP is a convenience wrapper that qualifies bids for a fixed T̂_g and
// solves the single winner-determination problem. Experiments that sweep
// T̂_g directly (the paper's Fig. 3 and Fig. 7) use it instead of the full
// enumeration.
func RunWDP(bids []Bid, tg int, cfg Config) (WDPResult, error) {
	if err := cfg.Validate(); err != nil {
		return WDPResult{}, err
	}
	if err := ValidateBids(bids, cfg.T, cfg.K); err != nil {
		return WDPResult{}, err
	}
	return SolveWDP(bids, Qualified(bids, tg, cfg), tg, cfg), nil
}
