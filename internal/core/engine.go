package core

import (
	"context"
	"time"

	"github.com/fedauction/afl/internal/obs"
)

// Engine is the reusable incremental A_FL solver. It wraps the shared
// immutable auction context — the columnar bid store, per-bid
// qualification entry points (exploiting the monotonicity of line 6 of
// Algorithm 1 in T̂_g), the full-horizon slot rows, and the feasible
// sweep range [T_0, T] — so a caller that runs the same bid population
// several times (re-pricing studies, what-if sweeps, serving layers) pays
// the precomputation once.
//
// RunAuction and RunAuctionConcurrent are one-shot wrappers over exactly
// this engine; constructing an Engine yields bit-identical results to
// them on every method.
//
// The Engine retains (and never mutates) the bids passed to NewEngine or
// the BidSet passed to NewEngineSet; callers must not mutate them while
// the Engine is in use. All methods are safe for concurrent use: the
// context is read-only, all mutable solver state lives in pooled per-call
// scratch arenas, and the attached observer (see Observe) is required to
// be concurrency-safe.
type Engine struct {
	ax *auctionContext
	// obsv receives phase events from Run/RunConcurrent/RunCtx (unless
	// overridden per call) and from Repair. Nil disables instrumentation.
	obsv obs.Observer
	// now supplies timestamps for phase latencies; nil means time.Now.
	now func() time.Time
	// arena is non-nil only on engines handed out by AcquireEngine; it is
	// what Release recycles. Observe copies deliberately drop it so only
	// the original owner can return the arena to its pool.
	arena *engineArena
}

// NewEngine validates the configuration and bid population, compiles the
// bids to their columnar form and precomputes the shared auction context.
func NewEngine(bids []Bid, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ValidateBids(bids, cfg.T, cfg.K); err != nil {
		return nil, err
	}
	return &Engine{ax: newAuctionContext(CompileBids(bids), cfg)}, nil
}

// NewEngineSet is NewEngine for a pre-compiled columnar population: the
// compile step is skipped entirely and the engine shares the caller's
// BidSet. It yields bit-identical results to NewEngine on the
// materialized rows (set.Bids()).
func NewEngineSet(set *BidSet, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ValidateBidSet(set, cfg.T, cfg.K); err != nil {
		return nil, err
	}
	return &Engine{ax: newAuctionContext(set, cfg)}, nil
}

// Observe returns a copy of the engine that reports phase events to o,
// timing phases with now (nil selects time.Now). The copy shares the
// precomputed auction context with the receiver, so it costs nothing to
// create; the receiver itself is unchanged, which keeps engines shared
// across goroutines race-free. Passing a nil o returns an
// un-instrumented copy. o must be safe for concurrent use.
func (e *Engine) Observe(o obs.Observer, now func() time.Time) *Engine {
	return &Engine{ax: e.ax, obsv: o, now: now}
}

// T0 returns T_0 = ⌈1/(1−θ_min)⌉, the smallest candidate number of
// global iterations of the sweep.
func (e *Engine) T0() int { return e.ax.t0 }

// Run executes the full A_FL sweep sequentially on the shared context.
func (e *Engine) Run() Result {
	res, _ := e.ax.sweep(context.Background(), RunOptions{Observer: e.obsv, Now: e.now})
	return res
}

// RunConcurrent executes the sweep with the independent per-T̂_g WDPs
// fanned out over a worker pool (workers ≤ 0 selects GOMAXPROCS; counts
// beyond the number of candidate T̂_g values are clamped).
func (e *Engine) RunConcurrent(workers int) Result {
	if workers <= 0 {
		workers = -1
	}
	res, _ := e.ax.sweep(context.Background(), RunOptions{Workers: workers, Observer: e.obsv, Now: e.now})
	return res
}

// RunCtx executes the sweep honoring ctx and opts. An unset
// opts.Observer falls back to the engine's attached observer. RunCtx
// maps outcomes onto the sentinel error surface:
//
//   - ctx canceled mid-sweep: partial work is abandoned and the error
//     matches both ErrCanceled and the context cause under errors.Is;
//   - sweep complete but no T̂_g admits full coverage: ErrInfeasible,
//     with the returned Result still carrying every per-T̂_g WDP outcome;
//   - otherwise nil, with a Result bit-identical to Run (and to the
//     deprecated RunAuction/RunAuctionConcurrent) for every Workers
//     setting.
func (e *Engine) RunCtx(ctx context.Context, opts RunOptions) (Result, error) {
	if opts.Observer == nil {
		opts.Observer = e.obsv
		if opts.Now == nil {
			opts.Now = e.now
		}
	}
	res, err := e.ax.sweep(ctx, opts)
	if err != nil {
		return res, err
	}
	if !res.Feasible {
		return res, ErrInfeasible
	}
	return res, nil
}

// SolveWDP solves the single winner-determination problem for a fixed
// T̂_g using the precomputed qualification, with the payment rule applied
// eagerly (a single-WDP caller expects a finished result; only the full
// sweep defers pricing to the selected T̂_g). tg must lie in [1, cfg.T];
// out-of-range values yield an infeasible result.
func (e *Engine) SolveWDP(tg int) WDPResult {
	if tg < 1 || tg > e.ax.cfg.T {
		return WDPResult{Tg: tg}
	}
	qualified := e.ax.qualifiedAt(tg)
	if len(qualified) == 0 {
		return WDPResult{Tg: tg}
	}
	sc := acquireScratch(e.ax.set.n, tg)
	res := solveWDP(e.ax.set, qualified, tg, e.ax.cfg, sc, nil, e.ax.env())
	releaseScratch(sc)
	applyPaymentRule(e.ax.set, qualified, tg, e.ax.cfg, e.ax.env(), nil, &res)
	return res
}

// QualifiedAt returns a copy of the qualified bid set J_{T̂_g} from the
// precomputed entry points. It equals Qualified(bids, tg, cfg) as a set;
// entries are ordered by (first qualifying T̂_g, bid index).
func (e *Engine) QualifiedAt(tg int) []int {
	q := e.ax.qualifiedAt(tg)
	if q == nil {
		return nil
	}
	out := make([]int, len(q))
	copy(out, q)
	return out
}
