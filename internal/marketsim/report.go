package marketsim

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// PopulationReport is one (strategy, mechanism) cell of the fleet's
// economics: mean per-agent-round realized utility under the strategic
// reports vs the truthful counterfactual, and their difference — the
// strategy's leakage. Negative leakage means the strategy loses money
// relative to truthtelling.
type PopulationReport struct {
	Strategy  string `json:"strategy"`
	Mechanism string `json:"mechanism"`
	// Rounds is the number of auction rounds aggregated; AgentRounds the
	// number of (strategic agent, round) utility samples behind the means.
	Rounds      int `json:"rounds"`
	AgentRounds int `json:"agent_rounds"`
	// Infeasible counts strategic-side rounds with no feasible outcome;
	// TruthInfeasible the counterfactual's. Both contribute zero utility.
	Infeasible      int `json:"infeasible"`
	TruthInfeasible int `json:"truth_infeasible"`
	// MeanStrategicUtility and MeanTruthfulUtility are per agent-round.
	MeanStrategicUtility float64 `json:"mean_strategic_utility"`
	MeanTruthfulUtility  float64 `json:"mean_truthful_utility"`
	// Leakage = strategic − truthful.
	Leakage float64 `json:"leakage"`
}

// Report is the fleet's deterministic artifact: a pure function of the
// fleet seed and shape — no timestamps, no latencies, no worker-count
// dependence — so `same seed ⇒ byte-identical report` is a testable
// property, and any byte diff between two runs is a real change in the
// mechanism or the harness.
type Report struct {
	Seed     int64 `json:"seed"`
	Sessions int   `json:"sessions"`
	Clients  int   `json:"clients"`
	T        int   `json:"t"`
	K        int   `json:"k"`
	Rounds   int   `json:"rounds"`
	// Populations is ordered strategy-major, mechanism-minor (the
	// Strategies and mechanism declaration orders).
	Populations []PopulationReport `json:"populations"`
}

// truthfulnessEps absorbs float accumulation noise in the assertion: a
// true violation is a per-agent-round utility gap, measured in cost
// units (≥ ~1), not in ulps.
const truthfulnessEps = 1e-9

// nearTruthfulTol is the relative leakage tolerance for strategic
// populations: 2% of the cell's mean truthful utility. It is not a
// fudge factor — it is the documented near-truthfulness envelope of the
// implementation (EXPERIMENTS.md "Deviations"): misreports perturb the
// chosen T̂_g and the greedy's selection order, multi-minded menus (the
// sybil counterfactual) are manipulable on ≈1% of probes even under the
// exact-critical rule, and essential winners collect per-bid reserve
// payments that an identity split can multiply (see
// TestSybilEssentialReserveEdge and DESIGN.md "Strategic robustness").
// Across fleet-scale runs (the ≥1000-session default) observed strategic
// leakage stays within ~1.1% of truthful utility; gains beyond 2% mean
// a strategy found something genuinely new.
const nearTruthfulTol = 0.02

// AssertTruthful checks the fleet's central claim: under A_FL, no
// strategic population's mean utility exceeds its truthful
// counterfactual beyond the implementation's documented
// near-truthfulness envelope (nearTruthfulTol). The online variants are
// deliberately exempt — their leakage is the measurement, not an
// invariant. The truthful control population is held to exact equality
// (its strategic and counterfactual vectors are the same bids), pinning
// the harness itself. The tolerance is calibrated for fleet-scale means:
// small fleets (≲1000 sessions) can legitimately trip it when a rare
// essential-reserve sybil jackpot lands in a thin sample.
func (r Report) AssertTruthful() error {
	for _, p := range r.Populations {
		if p.Mechanism != MechAFL {
			continue
		}
		if p.Strategy == string(StratTruthful) {
			if p.Leakage != 0 {
				return fmt.Errorf("marketsim: truthful control has non-zero leakage %g — harness bug", p.Leakage)
			}
			continue
		}
		tol := nearTruthfulTol * p.MeanTruthfulUtility
		if tol < truthfulnessEps {
			tol = truthfulnessEps
		}
		if p.Leakage > tol {
			return fmt.Errorf("marketsim: population %q beats truthtelling under %s beyond the near-truthful envelope: strategic %g > truthful %g (leakage %g > tolerance %g over %d agent-rounds; see DESIGN.md \"Strategic robustness\")",
				p.Strategy, p.Mechanism, p.MeanStrategicUtility, p.MeanTruthfulUtility, p.Leakage, tol, p.AgentRounds)
		}
	}
	return nil
}

// Population returns the named cell, or false.
func (r Report) Population(strategy, mechanism string) (PopulationReport, bool) {
	for _, p := range r.Populations {
		if p.Strategy == strategy && p.Mechanism == mechanism {
			return p, true
		}
	}
	return PopulationReport{}, false
}

// Encode renders the report as deterministic indented JSON with a
// trailing newline.
func (r Report) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Bench is the BENCH_market.json load artifact: throughput and latency
// of the strategic A_FL solves through the service target, plus the
// rate-limit and admission rejections the edge issued while absorbing
// the fleet. Unlike Report it contains wall-clock measurements and is
// not byte-stable across runs.
type Bench struct {
	Sessions int `json:"sessions"`
	Workers  int `json:"workers"`
	// Auctions counts strategic A_FL solves through the target.
	Auctions       int     `json:"auctions"`
	ElapsedMs      float64 `json:"elapsed_ms"`
	AuctionsPerSec float64 `json:"auctions_per_sec"`
	// P50Ms and P99Ms are exact nearest-rank percentiles over every
	// solve's submit-to-commit latency.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// RateLimited and AdmissionRejected count edge rejections (HTTP 429
	// and 503), from the server-side obs registry when wired, otherwise
	// from the target's client-side counters.
	RateLimited       int64 `json:"rate_limited"`
	AdmissionRejected int64 `json:"admission_rejected"`
	// Ingest and Recovery are the durability fast-path tables (present
	// when the run included -durability): sustained fully durable
	// ingest with and without group commit, and cold-restart recovery
	// time against history length with and without checkpoints.
	Ingest   []IngestRow   `json:"ingest,omitempty"`
	Recovery []RecoveryRow `json:"recovery,omitempty"`
}

// Encode renders the artifact as indented JSON with a trailing newline.
func (b Bench) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
