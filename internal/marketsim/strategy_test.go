package marketsim

import (
	"math"
	"testing"

	"github.com/fedauction/afl/internal/chaos"
	"github.com/fedauction/afl/internal/core"
)

func mustSession(t *testing.T, sc Script) *session {
	t.Helper()
	s, err := newSession(sc)
	if err != nil {
		t.Fatalf("newSession(%+v): %v", sc, err)
	}
	return s
}

// TestTruthfulControl pins the control population: every client is an
// agent and the strategic vector IS the truthful vector, bid for bid.
func TestTruthfulControl(t *testing.T) {
	s := mustSession(t, Script{Seed: 11, Strategy: StratTruthful, Clients: 10, T: 8, K: 2, Rounds: 2, CostModel: CostUniform})
	if len(s.agents) != 10 {
		t.Fatalf("control tracked %d agents, want all 10", len(s.agents))
	}
	strat, truth := s.strategicBids(), s.truthfulBids()
	if len(strat) != len(truth) {
		t.Fatalf("vector lengths differ: %d vs %d", len(strat), len(truth))
	}
	for i := range strat {
		if strat[i] != truth[i] {
			t.Fatalf("bid %d differs between strategic and truthful control: %+v vs %+v", i, strat[i], truth[i])
		}
	}
}

// TestSybilSplit checks the identity split's conservation laws: the
// identities partition the owner's round budget, each claims a pro-rata
// cost share inflated by the per-identity overhead, and they wear fresh
// client IDs that all map back to agent 0.
func TestSybilSplit(t *testing.T) {
	sc := Script{Seed: 23, Strategy: StratSybil, Clients: 8, T: 8, K: 2, Rounds: 1, CostModel: CostUniform, Sybils: 3}
	s := mustSession(t, sc)
	owner := s.base[0]
	if owner.Rounds < 2 {
		t.Fatalf("seed gave owner %d rounds; pick a seed with a splittable bid", owner.Rounds)
	}
	vec := s.strategicBids()
	var ids []core.Bid
	for _, b := range vec {
		if b.Client >= sc.Clients || b.Client == 0 {
			ids = append(ids, b)
		}
	}
	wantIDs := s.sybilCount()
	if len(ids) != wantIDs {
		t.Fatalf("got %d sybil identities, want %d", len(ids), wantIDs)
	}
	totalRounds := 0
	for _, id := range ids {
		totalRounds += id.Rounds
		if id.Rounds < 1 {
			t.Fatalf("identity with %d rounds", id.Rounds)
		}
		wantCost := owner.TrueCost * float64(id.Rounds) / float64(owner.Rounds) * (1 + sybilOverhead)
		if math.Abs(id.TrueCost-wantCost) > 1e-9 || id.Price != id.TrueCost {
			t.Fatalf("identity cost %g (price %g), want pro-rata+overhead %g", id.TrueCost, id.Price, wantCost)
		}
		if a, ok := s.agentOf(id.Client); !ok || a != 0 {
			t.Fatalf("identity client %d does not map to agent 0", id.Client)
		}
	}
	if totalRounds != owner.Rounds {
		t.Fatalf("identities claim %d rounds total, owner has %d", totalRounds, owner.Rounds)
	}
	// Honest bystanders are untouched.
	for c := 1; c < sc.Clients; c++ {
		if vec[c] != s.base[c] {
			t.Fatalf("sybil split mutated bystander %d", c)
		}
	}
}

// TestSybilTruthfulMenu checks the counterfactual is the paper's honest
// multi-minded menu: one alternative per feasible round count, all under
// the owner's real identity at pro-rata honest prices.
func TestSybilTruthfulMenu(t *testing.T) {
	sc := Script{Seed: 23, Strategy: StratSybil, Clients: 8, T: 8, K: 2, Rounds: 1, CostModel: CostUniform, Sybils: 3}
	s := mustSession(t, sc)
	owner := s.base[0]
	truth := s.truthfulBids()
	if want := sc.Clients + owner.Rounds - 1; len(truth) != want {
		t.Fatalf("menu has %d bids, want %d (base + %d alternatives)", len(truth), want, owner.Rounds-1)
	}
	seenIndex := map[int]bool{owner.Index: true}
	for _, b := range truth[sc.Clients:] {
		if b.Client != 0 {
			t.Fatalf("menu alternative under client %d, want 0", b.Client)
		}
		if seenIndex[b.Index] {
			t.Fatalf("duplicate menu index %d — alternatives must be mutually exclusive per (6f)", b.Index)
		}
		seenIndex[b.Index] = true
		if b.Rounds < 1 || b.Rounds >= owner.Rounds {
			t.Fatalf("menu alternative with %d rounds, want 1..%d", b.Rounds, owner.Rounds-1)
		}
		wantCost := owner.TrueCost * float64(b.Rounds) / float64(owner.Rounds)
		if math.Abs(b.TrueCost-wantCost) > 1e-9 || b.Price != b.TrueCost {
			t.Fatalf("menu alternative cost %g, want honest pro-rata %g", b.TrueCost, wantCost)
		}
	}
}

// TestStragglerTruncation checks the truthful counterfactual reports only
// the serviceable prefix: windows cut to crash−1, rounds clamped, cost
// pro-rated, and a client whose crash precedes its window abstains.
func TestStragglerTruncation(t *testing.T) {
	// Search a few seeds for a session exercising both a mid-window crash
	// and at least one crash-free straggler, so the test sees both paths.
	for _, seed := range []int64{3, 5, 9, 14, 21, 40, 77} {
		sc := Script{Seed: seed, Strategy: StratStraggler, Clients: 16, T: 8, K: 2, Rounds: 1, CostModel: CostUniform}
		s := mustSession(t, sc)
		if len(s.plan.Crash) == 0 {
			continue
		}
		truth := s.truthfulBids()
		byClient := make(map[int]core.Bid, len(truth))
		for _, b := range truth {
			byClient[b.Client] = b
		}
		for _, a := range s.agents {
			orig := s.base[a]
			crash, crashed := s.plan.Crash[a]
			got, present := byClient[a]
			if !crashed {
				if !present || got != orig {
					t.Fatalf("seed %d: crash-free straggler %d altered: %+v", seed, a, got)
				}
				continue
			}
			if crash <= orig.Start {
				if present {
					t.Fatalf("seed %d: client %d crashes at %d before window start %d but still bids", seed, a, crash, orig.Start)
				}
				continue
			}
			if !present {
				t.Fatalf("seed %d: serviceable straggler %d missing from truthful vector", seed, a)
			}
			if got.End != crash-1 && got.End != orig.End {
				t.Fatalf("seed %d: client %d end %d, want min(crash-1=%d, orig=%d)", seed, a, got.End, crash-1, orig.End)
			}
			if got.End >= crash {
				t.Fatalf("seed %d: client %d truthful window reaches dead round %d", seed, a, crash)
			}
			if max := got.End - got.Start + 1; got.Rounds > max {
				t.Fatalf("seed %d: client %d rounds %d exceed window %d", seed, a, got.Rounds, max)
			}
			wantCost := orig.TrueCost * float64(got.Rounds) / float64(orig.Rounds)
			if math.Abs(got.TrueCost-wantCost) > 1e-9 {
				t.Fatalf("seed %d: client %d cost %g, want pro-rata %g", seed, a, got.TrueCost, wantCost)
			}
		}
		return
	}
	t.Fatal("no probed seed produced a crash plan")
}

// handSession builds a session directly so utility accounting can be
// tested against handcrafted win records.
func handSession(strategy Strategy, agents []int, owner map[int]int, crash map[int]int) *session {
	own := make(map[int]int)
	for _, a := range agents {
		own[a] = a
	}
	for id, a := range owner {
		own[id] = a
	}
	return &session{
		sc:     Script{Strategy: strategy, Clients: 4, T: 6, K: 1, Rounds: 1, CostModel: CostUniform},
		agents: agents,
		owner:  own,
		plan:   chaos.FaultPlan{Crash: crash},
	}
}

// TestUtilitiesCompletion pins payment-on-completion: a fully served
// schedule earns payment − cost; a schedule cut short by a crash forfeits
// the payment and sinks the served rounds' cost.
func TestUtilitiesCompletion(t *testing.T) {
	vec := []core.Bid{
		{Client: 0, Price: 10, TrueCost: 10, Start: 1, End: 4, Rounds: 2},
		{Client: 1, Price: 12, TrueCost: 12, Start: 1, End: 6, Rounds: 3},
	}
	s := handSession(StratStraggler, []int{0, 1}, nil, map[int]int{1: 3})
	u := s.utilities(vec, []winRec{
		{BidIndex: 0, Client: 0, Slots: []int{1, 2}, Payment: 18},
		{BidIndex: 1, Client: 1, Slots: []int{1, 2, 4}, Payment: 30},
	})
	// Client 0: complete, 18 − 10.
	if math.Abs(u[0]-8) > 1e-9 {
		t.Fatalf("complete winner utility %g, want 8", u[0])
	}
	// Client 1: crash at round 3 kills slot 4; 2 of 3 served ⇒ forfeit
	// payment, sink 2×(12/3) = 8.
	if math.Abs(u[1]-(-8)) > 1e-9 {
		t.Fatalf("incomplete winner utility %g, want -8", u[1])
	}
	// Losers contribute an explicit zero.
	u = s.utilities(vec, nil)
	if u[0] != 0 || u[1] != 0 {
		t.Fatalf("losing agents should have zero utility, got %v", u)
	}
}

// TestUtilitiesDeviceCollision pins the one-update-per-iteration limit:
// when two identities of the same agent are scheduled into the same
// iteration, only the first (by bid index) trains there; the other misses
// the slot and forfeits.
func TestUtilitiesDeviceCollision(t *testing.T) {
	vec := []core.Bid{
		{Client: 0, Price: 10, TrueCost: 10, Start: 1, End: 6, Rounds: 2}, // identity A
		{Client: 4, Price: 10, TrueCost: 10, Start: 1, End: 6, Rounds: 2}, // identity B, same device
	}
	s := handSession(StratSybil, []int{0}, map[int]int{4: 0}, nil)
	// Disjoint schedules: both complete, both paid.
	u := s.utilities(vec, []winRec{
		{BidIndex: 0, Client: 0, Slots: []int{1, 2}, Payment: 15},
		{BidIndex: 1, Client: 4, Slots: []int{3, 4}, Payment: 15},
	})
	if math.Abs(u[0]-10) > 1e-9 {
		t.Fatalf("disjoint identities: agent utility %g, want 15−10 + 15−10 = 10", u[0])
	}
	// Overlapping schedules: identity B collides on slot 2, serves only
	// slot 3 of its 2-slot schedule ⇒ forfeits its payment, sinks one
	// round's cost (5). Identity A still completes: +5 − 5 = 0.
	u = s.utilities(vec, []winRec{
		{BidIndex: 0, Client: 0, Slots: []int{1, 2}, Payment: 15},
		{BidIndex: 1, Client: 4, Slots: []int{2, 3}, Payment: 15},
	})
	if math.Abs(u[0]-0) > 1e-9 {
		t.Fatalf("colliding identities: agent utility %g, want (15−10) + (−5) = 0", u[0])
	}
}

// TestLearnerUpdate pins the shading learners' win/loss dynamics and the
// multiplier bounds.
func TestLearnerUpdate(t *testing.T) {
	s := mustSession(t, Script{Seed: 31, Strategy: StratShade, Clients: 9, T: 8, K: 2, Rounds: 1, CostModel: CostUniform})
	if len(s.agents) != 3 { // clients 0, 3, 6
		t.Fatalf("shade population tracked %d agents, want 3", len(s.agents))
	}
	s.learnerUpdate([]winRec{{Client: 0}})
	if m := s.mult[0]; math.Abs(m-learnerUp) > 1e-12 {
		t.Fatalf("winner multiplier %g, want %g", m, learnerUp)
	}
	if m := s.mult[3]; math.Abs(m-learnerDown) > 1e-12 {
		t.Fatalf("loser multiplier %g, want %g", m, learnerDown)
	}
	// Repeated wins cap at learnerCap; repeated losses floor at learnerFloor.
	for i := 0; i < 40; i++ {
		s.learnerUpdate([]winRec{{Client: 0}})
	}
	if m := s.mult[0]; m != learnerCap {
		t.Fatalf("runaway winner multiplier %g, want cap %g", m, learnerCap)
	}
	if m := s.mult[3]; m != learnerFloor {
		t.Fatalf("runaway loser multiplier %g, want floor %g", m, learnerFloor)
	}
	// The shaded price is TrueCost × multiplier.
	vec := s.strategicBids()
	if want := s.base[0].TrueCost * learnerCap; math.Abs(vec[0].Price-want) > 1e-9 {
		t.Fatalf("shaded price %g, want %g", vec[0].Price, want)
	}
}

// TestRingInflation checks the collusive ring inflates exactly its
// members by the common factor and leaves the field honest.
func TestRingInflation(t *testing.T) {
	sc := Script{Seed: 41, Strategy: StratRing, Clients: 12, T: 8, K: 2, Rounds: 1, CostModel: CostWireless, Ring: 4, Shade: 1.5}
	s := mustSession(t, sc)
	vec := s.strategicBids()
	for c := 0; c < sc.Clients; c++ {
		want := s.base[c].TrueCost
		if c < 4 {
			want *= 1.5
		}
		if math.Abs(vec[c].Price-want) > 1e-9 {
			t.Fatalf("client %d price %g, want %g", c, vec[c].Price, want)
		}
		if vec[c].TrueCost != s.base[c].TrueCost {
			t.Fatalf("ring mutated client %d true cost", c)
		}
	}
}

// TestWirelessCosts sanity-checks the energy model: positive bounded
// costs, honest prices, windows inside [1, T], heterogeneity across the
// population.
func TestWirelessCosts(t *testing.T) {
	s := mustSession(t, Script{Seed: 51, Strategy: StratTruthful, Clients: 32, T: 10, K: 2, Rounds: 1, CostModel: CostWireless})
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, b := range s.base {
		if err := b.Validate(10); err != nil {
			t.Fatalf("wireless bid invalid: %v", err)
		}
		if b.Price != b.TrueCost {
			t.Fatalf("wireless base not honest: price %g cost %g", b.Price, b.TrueCost)
		}
		per := b.TrueCost / float64(b.Rounds)
		lo, hi = math.Min(lo, per), math.Max(hi, per)
	}
	if hi <= lo {
		t.Fatalf("no cost heterogeneity: per-round costs all %g", lo)
	}
	if hi > onlineU {
		t.Fatalf("per-round wireless cost %g exceeds exogenous online bound U=%d", hi, onlineU)
	}
}

// TestSybilEssentialReserveEdge pins the known sybil edge the fleet can
// surface (EXPERIMENTS.md "Deviations"; DESIGN.md "Strategic
// robustness"): an essential winner — one whose removal makes coverage
// infeasible — has an unbounded critical value and is paid the reserve,
// per *bid*. A client essential in a thin window can therefore split its
// multi-round bid across sybil identities and collect the reserve once
// per identity instead of once. The edge is heavy-tailed and rare (thin
// windows at fleet scale), which is why AssertTruthful carries the
// near-truthfulness tolerance instead of a hard zero; this test keeps
// the edge itself from silently vanishing or growing.
func TestSybilEssentialReserveEdge(t *testing.T) {
	cfg := Script{T: 4, K: 2}.auctionConfig()
	filler := []core.Bid{
		// Client 1 is the only other coverage in the thin window [1,2].
		{Client: 1, Price: 5, TrueCost: 5, Theta: 0.5, Start: 1, End: 2, Rounds: 2},
		// Clients 2-4 cover the thick window [3,4] with slack: none of
		// them is essential.
		{Client: 2, Price: 6, TrueCost: 6, Theta: 0.5, Start: 3, End: 4, Rounds: 2},
		{Client: 3, Price: 6, TrueCost: 6, Theta: 0.5, Start: 3, End: 4, Rounds: 2},
		{Client: 4, Price: 6, TrueCost: 6, Theta: 0.5, Start: 3, End: 4, Rounds: 2},
	}
	solve := func(t *testing.T, vec []core.Bid) core.Result {
		t.Helper()
		eng, err := core.NewEngine(vec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := eng.Run()
		if !r.Feasible {
			t.Fatal("instance infeasible — the edge needs both sides feasible")
		}
		return r
	}
	paid := func(r core.Result, client int) float64 {
		for _, w := range r.Winners {
			if w.Bid.Client == client {
				return w.Payment
			}
		}
		return 0
	}

	// Honest: client 0 bids its true 2-round demand in [1,2]. It is
	// essential (without it the window has one client for K=2), so it is
	// paid the reserve — once.
	honest := append([]core.Bid{
		{Client: 0, Price: 4, TrueCost: 4, Theta: 0.5, Start: 1, End: 2, Rounds: 2},
	}, filler...)
	hr := solve(t, honest)
	if p := paid(hr, 0); p != reservePrice {
		t.Fatalf("essential honest winner paid %g, want the reserve %d", p, reservePrice)
	}

	// Split: the same demand as two single-round identities. Each is
	// still essential, and each collects the reserve: 2× the payment for
	// identical work, minus only the sybil overhead on cost.
	split := append([]core.Bid{
		{Client: 5, Price: 2.4, TrueCost: 2.4, Theta: 0.5, Start: 1, End: 2, Rounds: 1},
		{Client: 6, Price: 2.4, TrueCost: 2.4, Theta: 0.5, Start: 1, End: 2, Rounds: 1},
	}, filler...)
	sr := solve(t, split)
	for _, id := range []int{5, 6} {
		if p := paid(sr, id); p != reservePrice {
			t.Fatalf("essential sybil identity %d paid %g, want the reserve %d", id, p, reservePrice)
		}
	}
	honestU := paid(hr, 0) - 4
	splitU := paid(sr, 5) + paid(sr, 6) - 4.8
	if splitU <= honestU {
		t.Fatalf("sybil essential-reserve edge vanished: split %g ≤ honest %g — "+
			"if the mechanism or reserve semantics changed, update AssertTruthful's envelope rationale",
			splitU, honestU)
	}
}
