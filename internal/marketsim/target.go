package marketsim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/fedauction/afl/internal/batch"
	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/marketd"
)

// Target is the market service a fleet hammers: one auction instance in,
// one committed outcome back. Implementations must be safe for
// concurrent use — the whole point of the fleet is thousands of sessions
// submitting at once.
type Target interface {
	// Solve submits one instance under the given client key and blocks
	// until its outcome commits.
	Solve(ctx context.Context, client string, inst batch.Instance) (marketd.OutcomeRecord, error)
	// Rejected reports the rate-limit and admission rejections the
	// target observed while serving the fleet.
	Rejected() (rateLimited, admission int64)
}

// MarketTarget drives an in-process marketd.Market — the real service
// stack (batch scheduler, pooled engines, commit protocol) minus the
// HTTP edge.
type MarketTarget struct {
	M *marketd.Market
}

// Solve implements Target.
func (t MarketTarget) Solve(ctx context.Context, client string, inst batch.Instance) (marketd.OutcomeRecord, error) {
	seq, err := t.M.Submit(ctx, client, inst)
	if err != nil {
		return marketd.OutcomeRecord{}, err
	}
	return t.M.Wait(ctx, seq)
}

// Rejected implements Target; an in-process market has no HTTP edge, so
// nothing is ever turned away.
func (MarketTarget) Rejected() (int64, int64) { return 0, 0 }

// HTTPTarget drives a marketd daemon over its real HTTP API: POST the
// submission (honoring Retry-After on 429/503 like a compliant client),
// then poll the outcome to commitment. Its counters record how often the
// edge pushed back.
type HTTPTarget struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client is the HTTP client; nil selects http.DefaultClient.
	Client *http.Client
	// PollInterval is the outcome polling cadence (default 2ms — the
	// fleet's sessions are sub-millisecond solves).
	PollInterval time.Duration
	// RetryWait, when positive, overrides the server's Retry-After advice
	// on 429/503 — a test knob keeping deliberately saturated fleets
	// snappy. Zero (production) honors the header.
	RetryWait time.Duration

	rateLimited atomic.Int64
	admission   atomic.Int64
}

func (t *HTTPTarget) httpClient() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

// Solve implements Target.
func (t *HTTPTarget) Solve(ctx context.Context, client string, inst batch.Instance) (marketd.OutcomeRecord, error) {
	seq, err := t.submit(ctx, client, inst)
	if err != nil {
		return marketd.OutcomeRecord{}, err
	}
	return t.poll(ctx, seq)
}

// submit POSTs until the edge admits the submission, sleeping out each
// Retry-After. The retry loop is bounded by ctx, not a count: a loaded
// market sheds by delaying, not by losing sessions.
func (t *HTTPTarget) submit(ctx context.Context, client string, inst batch.Instance) (int, error) {
	cw, err := marketd.FromConfig(inst.Cfg)
	if err != nil {
		return -1, err
	}
	body, err := json.Marshal(marketd.SubmitRequest{Client: client, Bids: inst.Bids, Cfg: cw})
	if err != nil {
		return -1, err
	}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.BaseURL+"/v1/auctions", bytes.NewReader(body))
		if err != nil {
			return -1, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := t.httpClient().Do(req)
		if err != nil {
			return -1, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return -1, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var ack marketd.SubmitResponse
			if err := json.Unmarshal(data, &ack); err != nil {
				return -1, fmt.Errorf("marketsim: undecodable ack %q: %v", data, err)
			}
			return ack.Seq, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if resp.StatusCode == http.StatusTooManyRequests {
				t.rateLimited.Add(1)
			} else {
				t.admission.Add(1)
			}
			wait := time.Second
			if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
				wait = time.Duration(s) * time.Second
			}
			if t.RetryWait > 0 {
				wait = t.RetryWait
			}
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return -1, context.Cause(ctx)
			}
		default:
			return -1, fmt.Errorf("marketsim: submit rejected: %d %s", resp.StatusCode, data)
		}
	}
}

// poll GETs the outcome until it commits (200; 202 means still pending).
func (t *HTTPTarget) poll(ctx context.Context, seq int) (marketd.OutcomeRecord, error) {
	interval := t.PollInterval
	if interval <= 0 {
		interval = 2 * time.Millisecond
	}
	url := fmt.Sprintf("%s/v1/auctions/%d", t.BaseURL, seq)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return marketd.OutcomeRecord{}, err
		}
		resp, err := t.httpClient().Do(req)
		if err != nil {
			return marketd.OutcomeRecord{}, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return marketd.OutcomeRecord{}, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var rec marketd.OutcomeRecord
			if err := json.Unmarshal(data, &rec); err != nil {
				return rec, fmt.Errorf("marketsim: undecodable outcome %q: %v", data, err)
			}
			return rec, nil
		case http.StatusAccepted:
			select {
			case <-time.After(interval):
			case <-ctx.Done():
				return marketd.OutcomeRecord{}, context.Cause(ctx)
			}
		default:
			return marketd.OutcomeRecord{}, fmt.Errorf("marketsim: outcome %d: %d %s", seq, resp.StatusCode, data)
		}
	}
}

// Rejected implements Target.
func (t *HTTPTarget) Rejected() (int64, int64) {
	return t.rateLimited.Load(), t.admission.Load()
}

// winsFromRecord flattens a committed outcome into the mechanism-
// independent winner view.
func winsFromRecord(rec marketd.OutcomeRecord) []winRec {
	out := make([]winRec, len(rec.Winners))
	for i, w := range rec.Winners {
		out[i] = winRec{BidIndex: w.BidIndex, Client: w.Client, Slots: w.Slots, Payment: w.Payment}
	}
	return out
}

// EngineTarget solves instances inline with core.Engine — no service in
// the loop. It is the fuzzing and unit-test target: byte-for-byte the
// economics of the service path (the service solves with the same
// engine), minus the concurrency.
type EngineTarget struct{}

// Solve implements Target.
func (EngineTarget) Solve(_ context.Context, _ string, inst batch.Instance) (marketd.OutcomeRecord, error) {
	var (
		eng *core.Engine
		err error
	)
	if inst.Set != nil {
		eng, err = core.NewEngineSet(inst.Set, inst.Cfg)
	} else {
		eng, err = core.NewEngine(inst.Bids, inst.Cfg)
	}
	if err != nil {
		return marketd.OutcomeRecord{}, err
	}
	res := eng.Run()
	rec := marketd.OutcomeRecord{Feasible: res.Feasible}
	if !res.Feasible {
		return rec, nil
	}
	rec.Tg = res.Tg
	rec.Cost = res.Cost
	rec.Winners = make([]marketd.WinnerRecord, len(res.Winners))
	for i, w := range res.Winners {
		rec.Winners[i] = marketd.WinnerRecord{
			BidIndex: w.BidIndex, Client: w.Bid.Client, Index: w.Bid.Index,
			Price: w.Bid.Price, Theta: w.Bid.Theta, Slots: w.Slots, Payment: w.Payment,
		}
		rec.Total += w.Payment
	}
	return rec, nil
}

// Rejected implements Target.
func (EngineTarget) Rejected() (int64, int64) { return 0, 0 }
