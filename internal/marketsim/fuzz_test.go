package marketsim

import (
	"reflect"
	"testing"
)

// FuzzMarketScript fuzzes the simulator's wire format end to end: any
// byte string either fails DecodeScript or yields a script whose session
// materializes without panicking and whose strategic and truthful bid
// vectors are structurally sound and deterministic. The seed corpus in
// testdata/fuzz covers every strategy and both cost generators.
func FuzzMarketScript(f *testing.F) {
	f.Add([]byte(`{"seed":1,"strategy":"truthful","clients":8,"t":6,"k":2,"rounds":2,"cost_model":"uniform"}`))
	f.Add([]byte(`{"seed":2,"strategy":"shade","clients":9,"t":8,"k":2,"rounds":3,"cost_model":"wireless"}`))
	f.Add([]byte(`{"seed":3,"strategy":"ring","clients":12,"t":8,"k":3,"rounds":2,"cost_model":"uniform","ring":4,"shade":1.5}`))
	f.Add([]byte(`{"seed":4,"strategy":"sybil","clients":8,"t":8,"k":2,"rounds":1,"cost_model":"wireless","sybils":3}`))
	f.Add([]byte(`{"seed":5,"strategy":"straggler","clients":16,"t":8,"k":2,"rounds":2,"cost_model":"uniform"}`))
	f.Add([]byte(`{"seed":-6,"strategy":"sybil","clients":2,"t":2,"k":1,"rounds":1,"cost_model":"uniform","sybils":8}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := DecodeScript(data)
		if err != nil {
			return
		}
		s, err := newSession(sc)
		if err != nil {
			t.Fatalf("validated script failed to materialize: %v (%+v)", err, sc)
		}
		strat := s.strategicBids()
		truth := s.truthfulBids()
		// Structural soundness: every report fits the horizon. Sybil
		// identities inflate client IDs past sc.Clients by design; the
		// horizon bound is what core enforces at admission.
		for _, b := range strat {
			if err := b.Validate(sc.T); err != nil {
				t.Fatalf("strategic bid invalid: %v (script %+v)", err, sc)
			}
		}
		for _, b := range truth {
			if err := b.Validate(sc.T); err != nil {
				t.Fatalf("truthful bid invalid: %v (script %+v)", err, sc)
			}
		}
		// Determinism: a second materialization replays identically.
		s2, err := newSession(sc)
		if err != nil {
			t.Fatalf("second materialization failed: %v", err)
		}
		if !reflect.DeepEqual(strat, s2.strategicBids()) {
			t.Fatalf("strategic bids not deterministic for %+v", sc)
		}
		if !reflect.DeepEqual(truth, s2.truthfulBids()) {
			t.Fatalf("truthful bids not deterministic for %+v", sc)
		}
		if !reflect.DeepEqual(s.plan.Crash, s2.plan.Crash) {
			t.Fatalf("crash plan not deterministic for %+v", sc)
		}
	})
}
