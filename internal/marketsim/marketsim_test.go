package marketsim

import (
	"bytes"
	"context"
	"testing"
)

// smokeSessions is large enough to exercise every (strategy, cost model)
// pair many times while staying in unit-test time on the inline solver.
const smokeSessions = 200

func smokeConfig(workers int) FleetConfig {
	cfg := DefaultFleetConfig()
	cfg.Sessions = smokeSessions
	cfg.Workers = workers
	return cfg
}

// TestFleetDeterminism is the replay contract: the economics Report is a
// pure function of the fleet seed — byte-identical across runs and across
// worker counts. Any diff is a real change in the mechanism or harness.
func TestFleetDeterminism(t *testing.T) {
	ctx := context.Background()
	rep1, _, err := RunFleet(ctx, smokeConfig(1))
	if err != nil {
		t.Fatalf("serial fleet: %v", err)
	}
	rep8, _, err := RunFleet(ctx, smokeConfig(8))
	if err != nil {
		t.Fatalf("parallel fleet: %v", err)
	}
	b1, err := rep1.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	b8, err := rep8.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !bytes.Equal(b1, b8) {
		t.Fatalf("report differs between 1 and 8 workers:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", b1, b8)
	}
}

// TestFleetSeedSensitivity guards against a degenerate generator: a
// different fleet seed must actually produce different economics.
func TestFleetSeedSensitivity(t *testing.T) {
	ctx := context.Background()
	cfgA := smokeConfig(4)
	cfgB := smokeConfig(4)
	cfgB.Seed = 2
	repA, _, err := RunFleet(ctx, cfgA)
	if err != nil {
		t.Fatalf("fleet A: %v", err)
	}
	repB, _, err := RunFleet(ctx, cfgB)
	if err != nil {
		t.Fatalf("fleet B: %v", err)
	}
	bA, _ := repA.Encode()
	bB, _ := repB.Encode()
	if bytes.Equal(bA, bB) {
		t.Fatal("fleets with different seeds produced identical reports")
	}
}

// TestFleetTruthfulness runs the fleet's central assertion at unit scale:
// no strategic population beats truthtelling under A_FL, and the truthful
// control population's leakage is exactly zero.
func TestFleetTruthfulness(t *testing.T) {
	rep, _, err := RunFleet(context.Background(), smokeConfig(4))
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	if err := rep.AssertTruthful(); err != nil {
		t.Fatalf("truthfulness assertion: %v", err)
	}
	ctrl, ok := rep.Population(string(StratTruthful), MechAFL)
	if !ok {
		t.Fatal("missing truthful/a_fl population")
	}
	if ctrl.Leakage != 0 {
		t.Fatalf("truthful control leakage = %g, want exactly 0", ctrl.Leakage)
	}
	if ctrl.AgentRounds == 0 {
		t.Fatal("truthful control aggregated zero agent-rounds")
	}
	// Every (strategy, mechanism) cell must be present and populated.
	for _, st := range Strategies {
		for _, mech := range mechanisms {
			p, ok := rep.Population(string(st), mech)
			if !ok {
				t.Fatalf("missing population %s/%s", st, mech)
			}
			if p.Rounds == 0 || p.AgentRounds == 0 {
				t.Fatalf("population %s/%s aggregated no rounds (%+v)", st, mech, p)
			}
		}
	}
}

// TestAssertTruthfulRejects pins the assertion's failure modes: a
// positive-leakage strategic cell fails, and a non-zero control fails as
// a harness bug even when the leakage is tiny or negative.
func TestAssertTruthfulRejects(t *testing.T) {
	mk := func(strategy string, truthful, leak float64) Report {
		return Report{Populations: []PopulationReport{{
			Strategy:            strategy,
			Mechanism:           MechAFL,
			MeanTruthfulUtility: truthful,
			Leakage:             leak,
		}}}
	}
	if err := mk(string(StratRing), 5, 0.5).AssertTruthful(); err == nil {
		t.Fatal("leakage beyond the near-truthful envelope passed the assertion")
	}
	if err := mk(string(StratTruthful), 5, -1e-12).AssertTruthful(); err == nil {
		t.Fatal("non-zero truthful control passed the assertion")
	}
	if err := mk(string(StratRing), 5, -0.5).AssertTruthful(); err != nil {
		t.Fatalf("negative strategic leakage failed the assertion: %v", err)
	}
	// Leakage inside the documented near-truthfulness envelope (2% of the
	// truthful mean) is tolerated — the implementation's T̂_g selection and
	// multi-minded menus are only near-truthful (EXPERIMENTS.md).
	if err := mk(string(StratSybil), 5, 0.01*5).AssertTruthful(); err != nil {
		t.Fatalf("within-envelope leakage failed the assertion: %v", err)
	}
	// The envelope is relative: when the truthful side earns nothing, any
	// material gain is a violation.
	if err := mk(string(StratSybil), 0, 0.1).AssertTruthful(); err == nil {
		t.Fatal("gain over a zero-utility truthful baseline passed the assertion")
	}
	// Online cells are measurements, not invariants: positive leakage is
	// reported, never asserted.
	leaky := Report{Populations: []PopulationReport{{
		Strategy: string(StratShade), Mechanism: MechOnlineAuto, Leakage: 3.0,
	}}}
	if err := leaky.AssertTruthful(); err != nil {
		t.Fatalf("online leakage tripped the A_FL assertion: %v", err)
	}
}

// TestBenchShape checks the load artifact's accounting: one strategic
// A_FL solve per (session, round), ordered percentiles, a throughput
// figure.
func TestBenchShape(t *testing.T) {
	cfg := smokeConfig(4)
	_, bench, err := RunFleet(context.Background(), cfg)
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	if want := cfg.Sessions * cfg.Rounds; bench.Auctions != want {
		t.Fatalf("Auctions = %d, want sessions×rounds = %d", bench.Auctions, want)
	}
	if bench.AuctionsPerSec <= 0 {
		t.Fatalf("AuctionsPerSec = %g, want > 0", bench.AuctionsPerSec)
	}
	if bench.P50Ms < 0 || bench.P99Ms < bench.P50Ms {
		t.Fatalf("percentiles out of order: p50=%g p99=%g", bench.P50Ms, bench.P99Ms)
	}
	if bench.RateLimited != 0 || bench.AdmissionRejected != 0 {
		t.Fatalf("inline target reported rejections: %d/%d", bench.RateLimited, bench.AdmissionRejected)
	}
}

// TestScriptsCoverage checks the fleet deals every strategy and both cost
// models, with per-session seeds that are themselves deterministic.
func TestScriptsCoverage(t *testing.T) {
	cfg := smokeConfig(1)
	scripts := cfg.Scripts()
	if len(scripts) != cfg.Sessions {
		t.Fatalf("got %d scripts, want %d", len(scripts), cfg.Sessions)
	}
	seen := map[string]int{}
	for _, sc := range scripts {
		if err := sc.Validate(); err != nil {
			t.Fatalf("fleet emitted invalid script: %v", err)
		}
		seen[string(sc.Strategy)+"/"+sc.CostModel]++
	}
	for _, st := range Strategies {
		for _, cm := range []string{CostUniform, CostWireless} {
			if seen[string(st)+"/"+cm] == 0 {
				t.Fatalf("fleet never dealt %s/%s", st, cm)
			}
		}
	}
	again := cfg.Scripts()
	for i := range scripts {
		if scripts[i] != again[i] {
			t.Fatalf("script %d not deterministic: %+v vs %+v", i, scripts[i], again[i])
		}
	}
}

func TestScriptValidate(t *testing.T) {
	valid := Script{Seed: 1, Strategy: StratShade, Clients: 8, T: 6, K: 2, Rounds: 2, CostModel: CostUniform}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid script rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Script)
	}{
		{"clients-low", func(s *Script) { s.Clients = 1 }},
		{"clients-high", func(s *Script) { s.Clients = maxScriptClients + 1 }},
		{"t-low", func(s *Script) { s.T = 1 }},
		{"t-high", func(s *Script) { s.T = maxScriptT + 1 }},
		{"k-zero", func(s *Script) { s.K = 0 }},
		{"k-over-clients", func(s *Script) { s.K = s.Clients + 1 }},
		{"rounds-zero", func(s *Script) { s.Rounds = 0 }},
		{"rounds-high", func(s *Script) { s.Rounds = maxScriptRounds + 1 }},
		{"ring-negative", func(s *Script) { s.Ring = -1 }},
		{"sybils-high", func(s *Script) { s.Sybils = 9 }},
		{"shade-negative", func(s *Script) { s.Shade = -0.1 }},
		{"shade-high", func(s *Script) { s.Shade = 9 }},
		{"bad-strategy", func(s *Script) { s.Strategy = "bribe" }},
		{"bad-cost-model", func(s *Script) { s.CostModel = "quantum" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := valid
			tc.mut(&sc)
			if err := sc.Validate(); err == nil {
				t.Fatalf("invalid script accepted: %+v", sc)
			}
		})
	}
}

func TestDecodeScript(t *testing.T) {
	raw := []byte(`{"seed":7,"strategy":"sybil","clients":12,"t":8,"k":2,"rounds":3,"cost_model":"wireless","sybils":3}`)
	sc, err := DecodeScript(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if sc.Strategy != StratSybil || sc.Sybils != 3 || sc.CostModel != CostWireless {
		t.Fatalf("decoded fields wrong: %+v", sc)
	}
	if _, err := DecodeScript([]byte(`{`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := DecodeScript([]byte(`{"seed":1,"strategy":"shade","clients":999,"t":8,"k":2,"rounds":1,"cost_model":"uniform"}`)); err == nil {
		t.Fatal("invalid script accepted")
	}
}

func TestQuantileIndex(t *testing.T) {
	cases := []struct {
		n    int
		q    float64
		want int
	}{
		{1, 0.50, 0},
		{1, 0.99, 0},
		{2, 0.50, 0},
		{2, 0.99, 1},
		{100, 0.50, 49},
		{100, 0.99, 98},
		{1000, 0.99, 989},
	}
	for _, tc := range cases {
		if got := quantileIndex(tc.n, tc.q); got != tc.want {
			t.Fatalf("quantileIndex(%d, %g) = %d, want %d", tc.n, tc.q, got, tc.want)
		}
	}
}

func TestFleetConfigValidate(t *testing.T) {
	bad := []FleetConfig{
		{},
		{Sessions: 0, Clients: 8, T: 6, K: 2, Rounds: 1},
		{Sessions: 10, Clients: 1, T: 6, K: 1, Rounds: 1},
		{Sessions: 10, Clients: 8, T: 1, K: 2, Rounds: 1},
		{Sessions: 10, Clients: 8, T: 6, K: 9, Rounds: 1},
		{Sessions: 10, Clients: 8, T: 6, K: 2, Rounds: 0},
	}
	for i, cfg := range bad {
		if _, _, err := RunFleet(context.Background(), cfg); err == nil {
			t.Fatalf("case %d: invalid fleet config accepted: %+v", i, cfg)
		}
	}
}
