// Package marketsim is the adversarial market simulation fleet: a load
// driver that runs thousands of seeded strategic sessions against the
// real auction service and asserts, empirically, the paper's central
// claim — that no strategic population beats truthtelling under A_FL —
// while quantifying the leakage of the online payment variants.
//
// A session is a Script: one seeded population, one strategic
// perturbation (bid-shading learners, a collusive ring, a sybil
// splitter, dropout-prone stragglers), a handful of auction rounds. The
// strategic bid vector is solved by the Target — the production service
// stack (in-process marketd.Market or its HTTP daemon) — while the
// truthful counterfactual re-solves the honest vector through
// core.Engine, and the same pair runs through the internal/online
// posted-price variants. The fleet aggregates per-agent realized utility
// against the counterfactual per (strategy, mechanism) cell into a
// Report that is a pure function of the fleet seed (byte-identical
// replay at any worker count), and separately into a Bench load artifact
// (auctions/s, latency percentiles, edge rejections) that is *not*
// byte-stable — timing never is.
package marketsim

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/fedauction/afl/internal/batch"
	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/obs"
	"github.com/fedauction/afl/internal/online"
	"github.com/fedauction/afl/internal/stats"
)

// Exogenous posted-price bounds for MechOnline: wide enough to cover
// every per-round cost either generator draws (uniform ≤ 50 per bid,
// wireless ≤ ~40 per round), fixed a priori so the posted prices are
// report-independent — the configuration under which the mechanism is
// exactly truthful.
const (
	onlineL = 1
	onlineU = 60
)

// FleetConfig shapes a fleet run. The zero value is not runnable; use
// DefaultFleetConfig and override.
type FleetConfig struct {
	// Sessions is the number of seeded sessions (scripts) to run.
	Sessions int
	// Seed derives every session seed; equal seeds yield byte-identical
	// Reports at any worker count.
	Seed int64
	// Workers bounds concurrent sessions; <= 0 selects GOMAXPROCS.
	Workers int
	// Clients, T, K, Rounds shape every session (see Script).
	Clients, T, K, Rounds int
	// Target solves the strategic A_FL instances. Nil selects
	// EngineTarget{} (inline solver, no service).
	Target Target
	// Metrics, when set, supplies the server-side rejection counters
	// (afl_rate_limited_total, afl_admission_rejected_total) for the
	// Bench artifact; wire the same Metrics into the market's Observer.
	// Nil falls back to the Target's client-side counters.
	Metrics *obs.Metrics
}

// DefaultFleetConfig returns a runnable configuration: populations large
// enough that A_FL instances are usually feasible, small enough that a
// thousand sessions finish in CI-smoke time.
func DefaultFleetConfig() FleetConfig {
	return FleetConfig{
		Sessions: 1000,
		Seed:     1,
		Clients:  16,
		T:        8,
		K:        2,
		Rounds:   3,
	}
}

func (c FleetConfig) validate() error {
	switch {
	case c.Sessions < 1:
		return fmt.Errorf("marketsim: Sessions=%d must be ≥ 1", c.Sessions)
	case c.Clients < 2 || c.Clients > maxScriptClients:
		return fmt.Errorf("marketsim: Clients=%d outside [2,%d]", c.Clients, maxScriptClients)
	case c.T < 2 || c.T > maxScriptT:
		return fmt.Errorf("marketsim: T=%d outside [2,%d]", c.T, maxScriptT)
	case c.K < 1 || c.K > c.Clients:
		return fmt.Errorf("marketsim: K=%d outside [1,Clients]", c.K)
	case c.Rounds < 1 || c.Rounds > maxScriptRounds:
		return fmt.Errorf("marketsim: Rounds=%d outside [1,%d]", c.Rounds, maxScriptRounds)
	}
	return nil
}

// Scripts expands the fleet configuration into its session scripts: a
// deterministic function of the fleet seed, dealing strategies and cost
// models round-robin so every population sees both generators.
func (c FleetConfig) Scripts() []Script {
	rng := stats.NewRNG(c.Seed)
	out := make([]Script, c.Sessions)
	models := []string{CostUniform, CostWireless}
	for i := range out {
		out[i] = Script{
			Seed:      rng.Int63(),
			Strategy:  Strategies[i%len(Strategies)],
			Clients:   c.Clients,
			T:         c.T,
			K:         c.K,
			Rounds:    c.Rounds,
			CostModel: models[(i/len(Strategies))%len(models)],
		}
	}
	return out
}

// mechAccum is one (strategy, mechanism) cell mid-aggregation.
type mechAccum struct {
	stratSum, truthSum float64
	agentRounds        int
	rounds             int
	infeasible         int // strategic-side rounds with no feasible outcome
	truthInfeasible    int // counterfactual rounds with no feasible outcome
}

func (m *mechAccum) add(o *mechAccum) {
	m.stratSum += o.stratSum
	m.truthSum += o.truthSum
	m.agentRounds += o.agentRounds
	m.rounds += o.rounds
	m.infeasible += o.infeasible
	m.truthInfeasible += o.truthInfeasible
}

// sessionResult is one session's contribution, aggregated serially in
// session order after the pool drains so float accumulation is
// worker-count independent.
type sessionResult struct {
	strategy  Strategy
	mech      map[string]*mechAccum
	latencies []time.Duration // strategic A_FL service solves only
	err       error
}

// RunFleet executes the whole fleet and returns the deterministic
// economics Report plus the (non-deterministic) Bench load artifact.
// The error surfaces session failures — service errors, validation
// rejections — not assertion failures; call Report.AssertTruthful for
// those.
func RunFleet(ctx context.Context, cfg FleetConfig) (Report, Bench, error) {
	if err := cfg.validate(); err != nil {
		return Report{}, Bench{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	target := cfg.Target
	if target == nil {
		target = EngineTarget{}
	}
	scripts := cfg.Scripts()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scripts) {
		workers = len(scripts)
	}

	results := make([]sessionResult, len(scripts))
	start := time.Now()
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = runSession(ctx, scripts[i], target, fmt.Sprintf("sim-%d", i))
			}
		}()
	}
	for i := range scripts {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)

	// Serial fold in session order: the Report's float sums must not
	// depend on which worker finished first.
	cells := make(map[string]*mechAccum)
	var lats []time.Duration
	var auctions int
	for i, r := range results {
		if r.err != nil {
			return Report{}, Bench{}, fmt.Errorf("marketsim: session %d (%s): %w", i, scripts[i].Strategy, r.err)
		}
		for mech, acc := range r.mech {
			key := string(r.strategy) + "/" + mech
			cell := cells[key]
			if cell == nil {
				cell = &mechAccum{}
				cells[key] = cell
			}
			cell.add(acc)
		}
		lats = append(lats, r.latencies...)
		auctions += len(r.latencies)
	}

	rep := Report{Seed: cfg.Seed, Sessions: cfg.Sessions, Clients: cfg.Clients, T: cfg.T, K: cfg.K, Rounds: cfg.Rounds}
	for _, st := range Strategies {
		for _, mech := range mechanisms {
			cell := cells[string(st)+"/"+mech]
			if cell == nil {
				continue
			}
			pop := PopulationReport{
				Strategy:        string(st),
				Mechanism:       mech,
				Rounds:          cell.rounds,
				AgentRounds:     cell.agentRounds,
				Infeasible:      cell.infeasible,
				TruthInfeasible: cell.truthInfeasible,
			}
			if cell.agentRounds > 0 {
				pop.MeanStrategicUtility = cell.stratSum / float64(cell.agentRounds)
				pop.MeanTruthfulUtility = cell.truthSum / float64(cell.agentRounds)
				pop.Leakage = pop.MeanStrategicUtility - pop.MeanTruthfulUtility
			}
			rep.Populations = append(rep.Populations, pop)
		}
	}

	bench := buildBench(cfg, workers, target, auctions, elapsed, lats)
	return rep, bench, nil
}

// runSession plays one script to completion: Rounds consecutive auction
// rounds, the strategic vector solved by the service target, the
// truthful counterfactual re-solved locally via core.Engine, both
// vectors also pushed through the online posted-price variants. Only the
// shading learner changes its reports between rounds, fed by the A_FL
// outcomes it observes.
func runSession(ctx context.Context, sc Script, target Target, clientKey string) sessionResult {
	res := sessionResult{strategy: sc.Strategy, mech: make(map[string]*mechAccum)}
	for _, m := range mechanisms {
		res.mech[m] = &mechAccum{}
	}
	s, err := newSession(sc)
	if err != nil {
		res.err = err
		return res
	}
	cfg := sc.auctionConfig()
	tvec := s.truthfulBids()

	// The truthful counterfactual is round-invariant (only learners move
	// between rounds, and only on the strategic side), so solve it once
	// per mechanism and replay the per-round utility.
	truthAFL, truthAFLFeasible, err := solveEngine(tvec, core.CompileBids(tvec), cfg, s)
	if err != nil {
		res.err = fmt.Errorf("truthful counterfactual: %w", err)
		return res
	}
	truthOnline := make(map[string]float64)
	truthOnlineOK := make(map[string]bool)
	for _, mech := range []string{MechOnline, MechOnlineAuto} {
		u, ok, err := solveOnline(tvec, sc, mech, s)
		if err != nil {
			res.err = fmt.Errorf("truthful %s: %w", mech, err)
			return res
		}
		truthOnline[mech], truthOnlineOK[mech] = u, ok
	}

	for round := 0; round < sc.Rounds; round++ {
		vec := s.strategicBids()

		// A_FL through the service under test. The strategic vector is
		// compiled into its columnar handle once, here at the submission
		// edge; every in-process solver downstream (batch worker, engine
		// target) binds the same BidSet instead of re-deriving the layout,
		// while the HTTP target keeps serializing the row form.
		inst := batch.Instance{Bids: vec, Set: core.CompileBids(vec), Cfg: cfg}
		t0 := time.Now()
		rec, err := target.Solve(ctx, clientKey, inst)
		if err != nil {
			res.err = fmt.Errorf("round %d (%s): %w", round, s.describe(), err)
			return res
		}
		res.latencies = append(res.latencies, time.Since(t0))
		if rec.Err != "" && !strings.Contains(rec.Err, "infeasible") {
			res.err = fmt.Errorf("round %d (%s): service: %s", round, s.describe(), rec.Err)
			return res
		}
		acc := res.mech[MechAFL]
		acc.rounds++
		acc.agentRounds += len(s.agents)
		var wins []winRec
		if rec.Feasible {
			wins = winsFromRecord(rec)
			acc.stratSum += s.sumAgents(s.utilities(vec, wins))
		} else {
			acc.infeasible++
		}
		if truthAFLFeasible {
			acc.truthSum += truthAFL
		} else {
			acc.truthInfeasible++
		}

		// Online variants, solved locally on the same vectors.
		for _, mech := range []string{MechOnline, MechOnlineAuto} {
			acc := res.mech[mech]
			acc.rounds++
			acc.agentRounds += len(s.agents)
			u, ok, err := solveOnline(vec, sc, mech, s)
			if err != nil {
				res.err = fmt.Errorf("round %d %s: %w", round, mech, err)
				return res
			}
			if ok {
				acc.stratSum += u
			} else {
				acc.infeasible++
			}
			if truthOnlineOK[mech] {
				acc.truthSum += truthOnline[mech]
			} else {
				acc.truthInfeasible++
			}
		}

		s.learnerUpdate(wins)
	}
	return res
}

// solveEngine runs the honest vector through the offline solver and
// returns the session agents' total per-round utility. The vector's
// pre-compiled columnar handle is bound directly; vec is kept only for
// the row-oriented utility accounting.
func solveEngine(vec []core.Bid, set *core.BidSet, cfg core.Config, s *session) (float64, bool, error) {
	eng, err := core.NewEngineSet(set, cfg)
	if err != nil {
		return 0, false, err
	}
	r := eng.Run()
	if !r.Feasible {
		return 0, false, nil
	}
	return s.sumAgents(s.utilities(vec, winsFromResult(r.Winners))), true, nil
}

// solveOnline runs one vector through the posted-price mechanism —
// exogenous bounds for MechOnline, report-derived for MechOnlineAuto —
// and returns the session agents' total utility. The online mechanism
// has no feasibility gate; ok is false only when it accepts nobody.
func solveOnline(vec []core.Bid, sc Script, mech string, s *session) (float64, bool, error) {
	ocfg := online.Config{Tg: sc.T, K: sc.K}
	if mech == MechOnline {
		ocfg.L, ocfg.U = onlineL, onlineU
	}
	r, err := online.Run(vec, online.ArrivalByStart(vec), ocfg)
	if err != nil {
		return 0, false, err
	}
	if len(r.Winners) == 0 {
		return 0, false, nil
	}
	return s.sumAgents(s.utilities(vec, winsFromResult(r.Winners))), true, nil
}

// buildBench assembles the load artifact from the fleet's latency
// samples and the rejection counters (server-side obs metrics when
// wired, client-side target counters otherwise).
func buildBench(cfg FleetConfig, workers int, target Target, auctions int, elapsed time.Duration, lats []time.Duration) Bench {
	b := Bench{
		Sessions:  cfg.Sessions,
		Workers:   workers,
		Auctions:  auctions,
		ElapsedMs: elapsed.Seconds() * 1e3,
	}
	if elapsed > 0 {
		b.AuctionsPerSec = float64(auctions) / elapsed.Seconds()
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		b.P50Ms = lats[quantileIndex(len(lats), 0.50)].Seconds() * 1e3
		b.P99Ms = lats[quantileIndex(len(lats), 0.99)].Seconds() * 1e3
	}
	if cfg.Metrics != nil {
		reg := cfg.Metrics.Registry()
		b.RateLimited = reg.Counter("afl_rate_limited_total").Value()
		b.AdmissionRejected = reg.Counter("afl_admission_rejected_total").Value()
	} else {
		b.RateLimited, b.AdmissionRejected = target.Rejected()
	}
	return b
}

// quantileIndex maps a quantile to a sorted-sample index (nearest-rank).
func quantileIndex(n int, q float64) int {
	i := int(q*float64(n)+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}
