package marketsim

import (
	"encoding/json"
	"fmt"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/stats"
	"github.com/fedauction/afl/internal/workload"
)

// Strategy names one strategic agent population. Every strategy shares
// the same honest base population and differs only in how its strategic
// subset reports: prices, identities, or availability.
type Strategy string

const (
	// StratTruthful is the control population: nobody deviates, so the
	// strategic and counterfactual utilities must coincide exactly. A
	// non-zero gap here is a bug in the harness, not a mechanism finding.
	StratTruthful Strategy = "truthful"
	// StratShade marks adaptive bid-shading learners: every third client
	// multiplies its reported cost by a per-agent factor that moves up
	// after a win (ask for more) and down after a loss (undercut to win),
	// the classic probing bidder a deployed market actually faces.
	StratShade Strategy = "shade"
	// StratRing is a collusive ring: the first Ring clients inflate their
	// reports by a common factor, trying to lift the critical prices they
	// set for one another. Collusion is outside the paper's unilateral
	// truthfulness guarantee, so this population measures how much a
	// coordinated group can extract in practice.
	StratRing Strategy = "ring"
	// StratSybil is identity splitting: client 0 poses as Sybils
	// independent bidders, splitting its rounds and cost basis (plus a
	// per-identity overhead — each extra identity pays its own
	// registration and communication energy) to evade the one-win-per-
	// client constraint (6f).
	StratSybil Strategy = "sybil"
	// StratStraggler is availability inflation by dropout-prone clients:
	// every fourth client advertises its full window even though a
	// chaos-plan crash round will stop it mid-schedule. Payment is
	// completion-contingent — a schedule cut short by the crash forfeits
	// the whole payment while the served rounds' cost stays sunk — and
	// the truthful counterfactual reports only the serviceable prefix.
	StratStraggler Strategy = "straggler"
)

// Strategies lists every population in fleet order.
var Strategies = []Strategy{StratTruthful, StratShade, StratRing, StratSybil, StratStraggler}

// Mechanisms evaluated per session.
const (
	// MechAFL is the paper's A_FL with exact-critical payments, solved by
	// the market service under test — the mechanism the fleet asserts
	// truthful.
	MechAFL = "a_fl"
	// MechOnline is the posted-price online mechanism with exogenous
	// price bounds (internal/online with L, U fixed a priori) — truthful
	// for unilateral price misreports by construction.
	MechOnline = "online"
	// MechOnlineAuto is the same mechanism with auto-derived bounds: the
	// posted prices then depend on the reports, which is the leak the
	// fleet quantifies.
	MechOnlineAuto = "online_auto"
)

// mechanisms in report order.
var mechanisms = []string{MechAFL, MechOnline, MechOnlineAuto}

// Cost model names for Script.CostModel.
const (
	// CostUniform draws claimed costs U[10,50] as in §VII-A.
	CostUniform = "uniform"
	// CostWireless derives costs from a heterogeneous wireless energy
	// model (CPU frequency, channel gain — see WirelessParams).
	CostWireless = "wireless"
)

// Script is the seeded unit of replay: everything one session does —
// population, strategy knobs, rounds — is a pure function of the script,
// so a failing session is a permanent reproducer. Scripts are the fuzz
// surface of the simulator (FuzzMarketScript) and the wire format of a
// deterministic fleet.
type Script struct {
	// Seed drives every draw of the session: population, crash rounds,
	// learner tie-breaks.
	Seed int64 `json:"seed"`
	// Strategy selects the strategic population.
	Strategy Strategy `json:"strategy"`
	// Clients, T, K shape the session's auction instances.
	Clients int `json:"clients"`
	T       int `json:"t"`
	K       int `json:"k"`
	// Rounds is the number of consecutive auction rounds in the session;
	// only the shading learner changes its reports between rounds.
	Rounds int `json:"rounds"`
	// CostModel selects the true-cost generator (CostUniform or
	// CostWireless).
	CostModel string `json:"cost_model"`
	// Ring is the collusive group size for StratRing (default 3).
	Ring int `json:"ring,omitempty"`
	// Sybils is the identity count for StratSybil (default 2).
	Sybils int `json:"sybils,omitempty"`
	// Shade is the ring's common inflation factor (default 1.35).
	Shade float64 `json:"shade,omitempty"`
}

// Limits keeping fuzzed scripts cheap; real fleets stay well inside.
const (
	maxScriptClients = 64
	maxScriptT       = 24
	maxScriptRounds  = 8
)

// Validate rejects scripts that are internally inconsistent or too large
// to simulate cheaply.
func (sc Script) Validate() error {
	switch {
	case sc.Clients < 2 || sc.Clients > maxScriptClients:
		return fmt.Errorf("marketsim: clients %d outside [2,%d]", sc.Clients, maxScriptClients)
	case sc.T < 2 || sc.T > maxScriptT:
		return fmt.Errorf("marketsim: t %d outside [2,%d]", sc.T, maxScriptT)
	case sc.K < 1 || sc.K > sc.Clients:
		return fmt.Errorf("marketsim: k %d outside [1,clients]", sc.K)
	case sc.Rounds < 1 || sc.Rounds > maxScriptRounds:
		return fmt.Errorf("marketsim: rounds %d outside [1,%d]", sc.Rounds, maxScriptRounds)
	case sc.Ring < 0 || sc.Ring > sc.Clients:
		return fmt.Errorf("marketsim: ring %d outside [0,clients]", sc.Ring)
	case sc.Sybils < 0 || sc.Sybils > 8:
		return fmt.Errorf("marketsim: sybils %d outside [0,8]", sc.Sybils)
	case sc.Shade < 0 || sc.Shade > 8:
		return fmt.Errorf("marketsim: shade %g outside [0,8]", sc.Shade)
	}
	switch sc.Strategy {
	case StratTruthful, StratShade, StratRing, StratSybil, StratStraggler:
	default:
		return fmt.Errorf("marketsim: unknown strategy %q", sc.Strategy)
	}
	switch sc.CostModel {
	case CostUniform, CostWireless:
	default:
		return fmt.Errorf("marketsim: unknown cost model %q", sc.CostModel)
	}
	return nil
}

// DecodeScript parses and validates a JSON script.
func DecodeScript(data []byte) (Script, error) {
	var sc Script
	if err := json.Unmarshal(data, &sc); err != nil {
		return sc, fmt.Errorf("marketsim: undecodable script: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return sc, err
	}
	return sc, nil
}

// ring returns the effective ring size.
func (sc Script) ring() int {
	r := sc.Ring
	if r == 0 {
		r = 3
	}
	if r < 2 {
		r = 2
	}
	if r > sc.Clients {
		r = sc.Clients
	}
	return r
}

// sybils returns the effective identity count.
func (sc Script) sybils() int {
	s := sc.Sybils
	if s == 0 {
		s = 2
	}
	if s < 2 {
		s = 2
	}
	return s
}

// shade returns the ring's inflation factor.
func (sc Script) shade() float64 {
	if sc.Shade == 0 {
		return 1.35
	}
	return sc.Shade
}

// auctionConfig is the A_FL configuration every session instance runs
// under: exact-critical payments with own-bid exclusion and a reserve,
// the configuration under which the core regression suite proves the
// mechanism exactly truthful for unilateral misreports.
func (sc Script) auctionConfig() core.Config {
	return core.Config{
		T:              sc.T,
		K:              sc.K,
		PaymentRule:    core.RuleExactCritical,
		ExcludeOwnBids: true,
		ReservePrice:   reservePrice,
	}
}

// reservePrice caps payments and bounds the critical-value bisection. It
// sits above the bulk of honestly generated costs (uniform ≤ 50; the
// wireless model's tail can exceed it, pricing those clients out of the
// market identically under strategic and truthful reports) — but only
// just above: a loose reserve turns every barely-feasible market into a
// jackpot for whichever bid happens to be essential, which is exactly
// the rent a sybil splitter farms by faking per-iteration client
// diversity. A tight reserve is the standard procurement defense: the
// buyer never pays more than its outside option, and since payments are
// capped at it, underbidding one's cost to sneak below it is a
// guaranteed loss. Strategically inflated bids (shading learners cap at
// ×3) can and do price themselves past it; that is their loss to bear.
const reservePrice = 80

// basePopulation draws the session's honest single-minded population:
// one bid per client, Price == TrueCost (truthful reports), availability
// windows inside [1, T]. All strategy vectors are derived from this base.
func (sc Script) basePopulation(rng *stats.RNG) ([]core.Bid, error) {
	switch sc.CostModel {
	case CostWireless:
		return genWireless(rng.Split(), sc.Clients, sc.T), nil
	default:
		p := workload.NewDefaultParams()
		p.Clients = sc.Clients
		p.BidsPerUser = 1
		p.T = sc.T
		p.K = sc.K
		p.TMax = 0
		p.Seed = rng.Int63()
		bids, err := workload.Generate(p)
		if err != nil {
			return nil, err
		}
		for i := range bids {
			bids[i].TrueCost = bids[i].Price
		}
		return bids, nil
	}
}
