package marketsim

import (
	"math"

	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/stats"
)

// Wireless heterogeneous cost model, following the energy accounting of
// Le et al., "An Incentive Mechanism for Federated Learning in Wireless
// Cellular Networks: An Auction Approach" (arXiv:2009.10269): a client's
// true cost of one participation round is the energy it burns, computation
// plus uplink transmission, with heterogeneity entering through the CPU
// frequency and the channel gain:
//
//	t_cmp = C·D / f            one local iteration of training
//	E_cmp = κ·C·D·f²           its dynamic CPU energy
//	r     = B·log2(1 + g·p/N0) uplink rate from the channel gain g
//	t_com = S / r              update transmission time
//	E_com = p·t_com            its transmission energy
//
//	cost/round = w·(T_l(θ)·E_cmp + E_com)
//
// Fast CPUs burn quadratically more energy per iteration but finish
// sooner; clients at the cell edge (small g) pay heavily for the uplink —
// exactly the computation-vs-communication heterogeneity the paper's
// Fig. 7 narrative relies on, now grounded in a physical model instead of
// a uniform draw.
type wirelessParams struct {
	fLo, fHi   float64 // CPU frequency, GHz
	cycles     float64 // C·D, gigacycles per local iteration
	kappa      float64 // effective capacitance (scaled)
	bandwidth  float64 // B, MHz
	txPower    float64 // p, W
	noise      float64 // N0·B, W
	updateBits float64 // S, Mbit
	weight     float64 // w, cost units per Joule
}

// defaultWireless is tuned so generated per-round costs land in roughly
// the same [10, 60] band as the §VII-A uniform draws, keeping the two
// cost models interchangeable under one reserve price.
var defaultWireless = wirelessParams{
	fLo: 0.5, fHi: 2.0,
	cycles:     0.4,
	kappa:      1.2,
	bandwidth:  1.0,
	txPower:    0.5,
	noise:      0.02,
	updateBits: 2.0,
	weight:     1.0,
}

// genWireless draws one heterogeneous single-minded population of n
// clients over horizon t. Each client gets a CPU frequency, a Rayleigh-
// style exponential channel gain, an availability window and a battery-
// limited round count; its bid's Price equals its TrueCost (honest base —
// strategies perturb from here).
func genWireless(rng *stats.RNG, n, t int) []core.Bid {
	p := defaultWireless
	bids := make([]core.Bid, 0, n)
	for c := 0; c < n; c++ {
		f := rng.FloatRange(p.fLo, p.fHi)
		gain := rng.Exponential(1)
		if gain < 0.05 {
			gain = 0.05 // deep fade floor: keep rates finite and costs bounded
		}
		theta := rng.FloatRange(0.3, 0.8)

		tCmp := p.cycles / f
		eCmp := p.kappa * p.cycles * f * f
		rate := p.bandwidth * math.Log2(1+gain*p.txPower/p.noise)
		tCom := p.updateBits / rate
		eCom := p.txPower * tCom

		start := rng.IntRange(1, t-1)
		end := rng.IntRange(start+1, t)
		rounds := rng.IntRange(1, end-start+1)

		perRound := p.weight * (core.PaperLocalIters(theta)*eCmp + eCom)
		cost := perRound * float64(rounds)
		if cost < 1 {
			cost = 1
		}
		bids = append(bids, core.Bid{
			Client:   c,
			Price:    cost,
			TrueCost: cost,
			Theta:    theta,
			Start:    start,
			End:      end,
			Rounds:   rounds,
			CompTime: tCmp,
			CommTime: tCom,
		})
	}
	return bids
}
