package marketsim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/fedauction/afl/internal/batch"
	"github.com/fedauction/afl/internal/marketd"
	"github.com/fedauction/afl/internal/workload"
)

// IngestRow is one cell of the sustained-ingest table: N concurrent
// submitters pushing auctions through a durable market at SyncEvery=1
// (every commit fully durable before its ack), with and without group
// commit.
type IngestRow struct {
	Mode           string  `json:"mode"` // "serial-fsync" | "group-commit"
	Submitters     int     `json:"submitters"`
	Auctions       int     `json:"auctions"`
	ElapsedMs      float64 `json:"elapsed_ms"`
	AuctionsPerSec float64 `json:"auctions_per_sec"`
	// AllocsPerAuction is the whole-pipeline heap-allocation count per
	// committed auction (submit, WAL encode/append, solve, commit, ack),
	// from runtime.MemStats deltas.
	AllocsPerAuction float64 `json:"allocs_per_auction"`
	// Fsyncs counts the WAL's fsync calls for the run; RecordsPerFsync
	// is the realized coalescing factor (≈1 for serial fsync).
	Fsyncs          int64   `json:"fsyncs"`
	RecordsPerFsync float64 `json:"records_per_fsync"`
}

// RecoveryRow is one cell of the recovery-time-vs-history table: a
// market directory holding History committed auctions is reopened cold
// and the replay cost measured, with and without checkpoints.
type RecoveryRow struct {
	History     int     `json:"history"`
	Checkpoints bool    `json:"checkpoints"`
	OpenMs      float64 `json:"open_ms"`
	// TailReplayed is how many WAL records recovery actually replayed:
	// the full history without checkpoints, the post-checkpoint tail
	// with them.
	TailReplayed int   `json:"tail_replayed"`
	WALBytes     int64 `json:"wal_bytes"`
	Segments     int   `json:"wal_segments"`
	// StateVerified reports that the recovered state was checked against
	// the uncheckpointed replay of the same workload (byte-identical
	// snapshots at small histories, ledger equality at large ones).
	StateVerified bool `json:"state_verified"`
}

// DurabilityBench is the fast-path section of BENCH_market.json.
type DurabilityBench struct {
	Ingest   []IngestRow   `json:"ingest,omitempty"`
	Recovery []RecoveryRow `json:"recovery,omitempty"`
}

// DurabilityOptions shapes RunDurabilityBench.
type DurabilityOptions struct {
	// Auctions per ingest run (default 400; quick 120).
	Auctions int
	// Submitters is the ingest concurrency (default 16 — enough
	// in-flight commits for the group-commit syncer to coalesce; the
	// serial-fsync baseline is insensitive to it, every append being
	// serialized behind its own flush anyway).
	Submitters int
	// Histories for the recovery table (default 1e3..1e6, quick 1e3..1e4).
	Histories []int
	// CheckpointEvery for the checkpointed recovery runs (default 1000).
	CheckpointEvery int
	Quick           bool
}

func (o *DurabilityOptions) defaults() {
	if o.Auctions == 0 {
		o.Auctions = 400
		if o.Quick {
			o.Auctions = 120
		}
	}
	if o.Submitters == 0 {
		o.Submitters = 16
	}
	if len(o.Histories) == 0 {
		o.Histories = []int{1_000, 10_000, 100_000, 1_000_000}
		if o.Quick {
			o.Histories = []int{1_000, 10_000}
		}
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 1000
	}
}

// benchInstance is the smallest meaningful auction: the durability
// benches measure the WAL and recovery machinery, so the solve must
// cost as little as possible without becoming degenerate.
func benchInstance(seed int64) (batch.Instance, error) {
	p := workload.NewDefaultParams()
	p.Seed = seed
	p.Clients = 4
	p.BidsPerUser = 2
	p.T = 6
	p.K = 1
	bids, err := workload.Generate(p)
	if err != nil {
		return batch.Instance{}, err
	}
	return batch.Instance{Bids: bids, Cfg: p.Config()}, nil
}

// RunDurabilityBench measures the market fast path: sustained fully
// durable ingest with and without group commit, and cold-restart
// recovery time against history length with and without checkpoints.
func RunDurabilityBench(ctx context.Context, opts DurabilityOptions) (DurabilityBench, error) {
	opts.defaults()
	var out DurabilityBench

	inst, err := benchInstance(1)
	if err != nil {
		return out, err
	}

	// Ingest throughput is noisy (fsync cost on the bench host varies
	// run to run), so each mode reports the median of three runs.
	const ingestReps = 3
	for _, group := range []bool{false, true} {
		rows := make([]IngestRow, 0, ingestReps)
		for r := 0; r < ingestReps; r++ {
			row, err := runIngest(ctx, inst, opts, group)
			if err != nil {
				return out, err
			}
			rows = append(rows, row)
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].AuctionsPerSec < rows[j].AuctionsPerSec })
		out.Ingest = append(out.Ingest, rows[len(rows)/2])
	}

	for _, h := range opts.Histories {
		for _, ckpt := range []bool{false, true} {
			row, err := runRecovery(ctx, inst, h, ckpt, opts)
			if err != nil {
				return out, err
			}
			out.Recovery = append(out.Recovery, row)
		}
	}
	return out, nil
}

func runIngest(ctx context.Context, inst batch.Instance, opts DurabilityOptions, group bool) (IngestRow, error) {
	dir, err := os.MkdirTemp("", "afl-ingest-*")
	if err != nil {
		return IngestRow{}, err
	}
	defer os.RemoveAll(dir)

	mode := "serial-fsync"
	cfg := marketd.Config{Dir: dir, Workers: opts.Submitters, SyncEvery: 1}
	if group {
		mode = "group-commit"
		cfg.GroupCommit = true
	}
	m, err := marketd.Open(ctx, cfg)
	if err != nil {
		return IngestRow{}, err
	}
	defer m.Close()

	n := opts.Auctions
	var wg sync.WaitGroup
	errs := make(chan error, opts.Submitters)
	work := make(chan int)

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for w := 0; w < opts.Submitters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				seq, err := m.Submit(ctx, "bench", inst)
				if err != nil {
					errs <- err
					return
				}
				if _, err := m.Wait(ctx, seq); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	select {
	case err := <-errs:
		return IngestRow{}, fmt.Errorf("ingest %s: %w", mode, err)
	default:
	}

	info := m.WALInfo()
	row := IngestRow{
		Mode:             mode,
		Submitters:       opts.Submitters,
		Auctions:         n,
		ElapsedMs:        float64(elapsed.Microseconds()) / 1e3,
		AuctionsPerSec:   float64(n) / elapsed.Seconds(),
		AllocsPerAuction: float64(after.Mallocs-before.Mallocs) / float64(n),
		Fsyncs:           info.Syncs,
	}
	if info.Syncs > 0 {
		row.RecordsPerFsync = float64(info.Records) / float64(info.Syncs)
	}
	return row, nil
}

// buildHistory fills dir with n committed auctions of inst, fsync-free
// (history construction is not the thing being measured). Checkpointed
// histories also bound retention to one checkpoint interval — the
// deployment shape checkpoints exist for: without it the snapshot
// embeds all of history and restoring it is O(history) again.
func buildHistory(ctx context.Context, dir string, inst batch.Instance, n, checkpointEvery int) error {
	cfg := marketd.Config{Dir: dir, Workers: runtime.GOMAXPROCS(0), NoSync: true}
	if checkpointEvery > 0 {
		cfg.CheckpointEvery = checkpointEvery
		cfg.SegmentBytes = 8 << 20
		cfg.RetainOutcomes = checkpointEvery
	}
	m, err := marketd.Open(ctx, cfg)
	if err != nil {
		return err
	}
	defer m.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 1)
	work := make(chan struct{})
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				seq, err := m.Submit(ctx, "hist", inst)
				if err == nil {
					_, err = m.Wait(ctx, seq)
				}
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- struct{}{}
	}
	close(work)
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}
	return m.Close()
}

func runRecovery(ctx context.Context, inst batch.Instance, history int, ckpt bool, opts DurabilityOptions) (RecoveryRow, error) {
	dir, err := os.MkdirTemp("", "afl-recovery-*")
	if err != nil {
		return RecoveryRow{}, err
	}
	defer os.RemoveAll(dir)

	every := 0
	if ckpt {
		every = opts.CheckpointEvery
	}
	if err := buildHistory(ctx, dir, inst, history, every); err != nil {
		return RecoveryRow{}, fmt.Errorf("build history %d (ckpt=%v): %w", history, ckpt, err)
	}

	cfg := marketd.Config{Dir: dir, Workers: 1, NoSync: true, CheckpointEvery: every}
	if every > 0 {
		cfg.RetainOutcomes = every
	}
	start := time.Now()
	m, err := marketd.Open(ctx, cfg)
	if err != nil {
		return RecoveryRow{}, fmt.Errorf("reopen history %d (ckpt=%v): %w", history, ckpt, err)
	}
	openMs := float64(time.Since(start).Microseconds()) / 1e3
	defer m.Close()

	info := m.WALInfo()
	row := RecoveryRow{
		History:      history,
		Checkpoints:  ckpt,
		OpenMs:       openMs,
		TailReplayed: info.TailReplayed,
		WALBytes:     info.Bytes,
		Segments:     info.Segments,
	}

	// Equivalence check at small histories: the checkpointed recovery
	// must agree with an uncheckpointed full replay of the same workload
	// — the ledger exactly (it folds all of history, including pruned
	// outcomes) and every retained outcome byte-for-byte. Large
	// histories skip the second full build to keep the bench tractable;
	// the marketd test suite carries the equivalence proof.
	if ckpt && history <= 10_000 {
		refDir, err := os.MkdirTemp("", "afl-recovery-ref-*")
		if err != nil {
			return row, err
		}
		defer os.RemoveAll(refDir)
		if err := buildHistory(ctx, refDir, inst, history, 0); err != nil {
			return row, err
		}
		ref, err := marketd.Open(ctx, marketd.Config{Dir: refDir, Workers: 1, NoSync: true})
		if err != nil {
			return row, err
		}
		defer ref.Close()
		lg, rg := m.Ledger(), ref.Ledger()
		if len(lg) != len(rg) {
			return row, fmt.Errorf("checkpointed ledger has %d clients, full replay %d", len(lg), len(rg))
		}
		for c, p := range rg {
			if lg[c] != p {
				return row, fmt.Errorf("checkpointed ledger diverged for client %d: %g vs %g", c, lg[c], p)
			}
		}
		for seq := history - opts.CheckpointEvery; seq < history; seq++ {
			if seq < 0 {
				continue
			}
			got, ok, err := m.Outcome(seq)
			if !ok || err != nil {
				continue // outside the retained window
			}
			want, _, err := ref.Outcome(seq)
			if err != nil {
				return row, err
			}
			gj, _ := json.Marshal(got)
			wj, _ := json.Marshal(want)
			if !bytes.Equal(gj, wj) {
				return row, fmt.Errorf("checkpointed outcome %d diverged from full replay", seq)
			}
		}
		row.StateVerified = true
	}
	return row, nil
}
