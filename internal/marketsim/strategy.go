package marketsim

import (
	"fmt"
	"sort"

	"github.com/fedauction/afl/internal/chaos"
	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/stats"
)

// Learner dynamics and structural-manipulation knobs. They are package
// constants, not script fields: the fleet compares populations, and a
// comparison only means something when every session's learners probe the
// same way.
const (
	// learnerUp/learnerDown move a shading learner's multiplier after a
	// win (ask for more next round) or a loss (undercut to get back in).
	learnerUp   = 1.12
	learnerDown = 0.88
	// learnerCap/learnerFloor bound the multiplier: beyond ×3 a bid prices
	// itself out of any market, below ×0.6 the learner is dumping.
	learnerCap   = 3.0
	learnerFloor = 0.6
	// sybilOverhead is the extra true cost each split identity pays —
	// every identity maintains its own enrollment: registration and
	// attestation, its own secure-aggregation key exchange, and its own
	// per-round model download and upload. The communication-energy share
	// of a round (eCom in the wireless model, Le et al.) is duplicated
	// per identity rather than amortized across the device's rounds.
	sybilOverhead = 0.20
	// stragglerCrashProb is the probability a straggler actually has a
	// dropout round inside its window.
	stragglerCrashProb = 0.7
)

// winRec is the mechanism-independent view of one accepted bid: enough
// to attribute a payment to a strategic agent and pro-rate it by served
// slots. Both the market service's OutcomeRecord and the local solver
// results flatten into it.
type winRec struct {
	BidIndex int
	Client   int
	Slots    []int
	Payment  float64
}

// session is one script's materialized state: the honest base
// population, the strategic agent set, learner multipliers, the sybil
// identity map, and the chaos fault plan carrying dropout rounds.
type session struct {
	sc   Script
	base []core.Bid // honest reports, full availability, Price == TrueCost

	agents []int           // strategic client IDs, ascending
	mult   map[int]float64 // shading-learner multiplier per strategic client
	owner  map[int]int     // sybil identity client -> owning agent
	plan   chaos.FaultPlan // straggler dropout schedule (Crash map)
}

// newSession derives every seeded decision of the session up front:
// population, strategic subset, crash rounds. After construction the only
// mutable state is the learner multipliers.
func newSession(sc Script) (*session, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(sc.Seed)
	base, err := sc.basePopulation(rng)
	if err != nil {
		return nil, err
	}
	s := &session{
		sc:    sc,
		base:  base,
		mult:  make(map[int]float64),
		owner: make(map[int]int),
		plan:  chaos.FaultPlan{Seed: sc.Seed},
	}
	switch sc.Strategy {
	case StratTruthful:
		// No deviators — but every client is tracked as an agent, so the
		// control population pins strategic utility == counterfactual
		// utility exactly. A non-zero gap here is a harness bug, not a
		// mechanism finding.
		for c := 0; c < sc.Clients; c++ {
			s.agents = append(s.agents, c)
		}
	case StratShade:
		for c := 0; c < sc.Clients; c += 3 {
			s.agents = append(s.agents, c)
			s.mult[c] = 1.0
		}
	case StratRing:
		for c := 0; c < sc.ring(); c++ {
			s.agents = append(s.agents, c)
		}
	case StratSybil:
		s.agents = []int{0}
		k := s.sybilCount()
		for i := 0; i < k; i++ {
			s.owner[sc.Clients+i] = 0
		}
	case StratStraggler:
		crash := make(map[int]int)
		for c := 0; c < sc.Clients; c += 4 {
			s.agents = append(s.agents, c)
			b := s.base[c]
			// Draw order is fixed per agent (probability, then round) so
			// the schedule is a pure function of the seed regardless of
			// which draws end up used.
			p := rng.Float64()
			r := b.Start
			if b.End > b.Start {
				r = rng.IntRange(b.Start+1, b.End)
			}
			if p < stragglerCrashProb {
				crash[c] = r
			}
		}
		s.plan.Crash = crash
	}
	for _, a := range s.agents {
		if _, ok := s.owner[a]; !ok {
			s.owner[a] = a
		}
	}
	sort.Ints(s.agents)
	return s, nil
}

// sybilCount clamps the configured identity count to the owner's round
// budget: an identity with zero rounds is not a bid.
func (s *session) sybilCount() int {
	k := s.sc.sybils()
	if r := s.base[0].Rounds; k > r {
		k = r
	}
	if k < 2 {
		k = 2 // a single identity is just the honest bid
	}
	return k
}

// strategicBids returns the population's current reports: the honest
// base perturbed along the strategy's misreport dimension (price for
// shading and rings, identity for sybils, availability for stragglers).
// The slice is freshly allocated; the base never mutates.
func (s *session) strategicBids() []core.Bid {
	out := make([]core.Bid, len(s.base))
	copy(out, s.base)
	switch s.sc.Strategy {
	case StratShade:
		for _, c := range s.agents {
			out[c].Price = s.base[c].TrueCost * s.mult[c]
		}
	case StratRing:
		for _, c := range s.agents {
			out[c].Price = s.base[c].TrueCost * s.sc.shade()
		}
	case StratSybil:
		owner := s.base[0]
		k := s.sybilCount()
		if owner.Rounds < 2 {
			break // nothing to split; the "sybil" is the honest bid
		}
		ids := make([]core.Bid, 0, k)
		per := owner.Rounds / k
		extra := owner.Rounds % k
		for i := 0; i < k; i++ {
			r := per
			if i < extra {
				r++
			}
			share := owner.TrueCost * float64(r) / float64(owner.Rounds) * (1 + sybilOverhead)
			id := owner
			id.Client = s.sc.Clients + i
			id.Index = 0
			id.Rounds = r
			id.TrueCost = share
			id.Price = share
			ids = append(ids, id)
		}
		out[0] = ids[0]
		out = append(out, ids[1:]...)
	case StratStraggler:
		// Stragglers report honestly on price but advertise the full
		// window their crash round will cut short; nothing to edit —
		// the base IS the inflated report. The truthful counterfactual
		// truncates instead.
	}
	return out
}

// truthfulBids returns the counterfactual reports: every strategic agent
// reporting truthfully (honest price, single identity, serviceable
// availability only), everyone else unchanged. A straggler whose crash
// round precedes its whole window abstains.
//
// The sybil counterfactual deserves its asterisk: the honest form of "I
// can serve up to c rounds" is not one all-or-nothing bid but the menu
// the paper's own bid language provides — J mutually-exclusive bids per
// client, constraint (6f) — one alternative per feasible round count at
// pro-rata price, all under the client's real identity. Comparing the
// split identities against the single rigid bid would conflate the
// false-name manipulation with mere bid granularity; against the honest
// menu, the only thing splitting buys is the evasion of (6f) itself.
func (s *session) truthfulBids() []core.Bid {
	if s.sc.Strategy == StratSybil {
		out := make([]core.Bid, len(s.base))
		copy(out, s.base)
		owner := s.base[0]
		for r := 1; r < owner.Rounds; r++ {
			alt := owner
			alt.Index = r
			alt.Rounds = r
			alt.TrueCost = owner.TrueCost * float64(r) / float64(owner.Rounds)
			alt.Price = alt.TrueCost
			out = append(out, alt)
		}
		return out
	}
	if s.sc.Strategy != StratStraggler {
		out := make([]core.Bid, len(s.base))
		copy(out, s.base)
		return out
	}
	out := make([]core.Bid, 0, len(s.base))
	for _, b := range s.base {
		if crash, ok := s.plan.Crash[b.Client]; ok && crash > 0 {
			if crash <= b.Start {
				continue // no serviceable prefix: truthfully, no bid
			}
			if crash <= b.End {
				b.End = crash - 1
			}
			if max := b.End - b.Start + 1; b.Rounds > max {
				b.Rounds = max
			}
			// The cost basis is per-round energy; fewer serviceable
			// rounds cost proportionally less.
			orig := s.base[b.Client]
			b.TrueCost = orig.TrueCost * float64(b.Rounds) / float64(orig.Rounds)
			b.Price = b.TrueCost
		}
		out = append(out, b)
	}
	return out
}

// agentOf maps a winning client ID back to the strategic agent owning it
// (sybil identities map to their owner). ok is false for honest clients.
func (s *session) agentOf(client int) (int, bool) {
	a, ok := s.owner[client]
	return a, ok
}

// utilities folds one mechanism outcome into per-agent realized utility
// under payment-on-completion: a winner is paid iff it serves every
// scheduled slot; an incomplete schedule forfeits the whole payment but
// the true cost of the rounds actually trained stays sunk. (Pro-rata
// payment would make availability inflation weakly dominant — a lucky
// schedule placed entirely before the crash pays the full-window rate —
// whereas completion-contingent payment is what the market's ledger
// actually implements: outcomes settle on delivery.)
//
// Two physical limits decide what gets served:
//
//   - a chaos-plan crash round stops a straggler's device: slots at or
//     after the crash are never trained;
//   - one device trains at most one update per global iteration: when
//     several identities of the same agent (sybils) are scheduled into
//     the same iteration, only the first (by bid index) trains there —
//     the rest miss the slot and forfeit.
//
// For honest singleton clients both limits are vacuous and utility
// reduces to payment − true cost. Losing agents contribute an explicit
// 0, so population means average over the whole strategic set, not just
// its winners.
func (s *session) utilities(vec []core.Bid, wins []winRec) map[int]float64 {
	u := make(map[int]float64, len(s.agents))
	for _, a := range s.agents {
		u[a] = 0
	}
	ordered := make([]winRec, len(wins))
	copy(ordered, wins)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].BidIndex < ordered[j].BidIndex })
	occupied := make(map[int]map[int]bool) // agent -> iterations its device trained
	for _, w := range ordered {
		a, ok := s.agentOf(w.Client)
		if !ok {
			continue
		}
		if w.BidIndex < 0 || w.BidIndex >= len(vec) {
			continue
		}
		b := vec[w.BidIndex]
		sched := len(w.Slots)
		if sched == 0 || b.Rounds == 0 {
			continue
		}
		crash := s.plan.Crash[b.Client] // 0 when absent: never crashes
		occ := occupied[a]
		if occ == nil {
			occ = make(map[int]bool, sched)
			occupied[a] = occ
		}
		served := 0
		for _, t := range w.Slots {
			if crash > 0 && t >= crash {
				continue // device dead: slot never trained, no cost
			}
			if occ[t] {
				continue // device busy training another identity's update
			}
			occ[t] = true
			served++
		}
		perRound := b.Cost() / float64(b.Rounds)
		if served < sched {
			u[a] -= perRound * float64(served) // incomplete: sunk cost, no pay
		} else {
			u[a] += w.Payment - perRound*float64(sched)
		}
	}
	return u
}

// learnerUpdate advances the shading learners' multipliers from the
// round's A_FL outcome: winners ask for more next round, losers undercut.
func (s *session) learnerUpdate(wins []winRec) {
	if s.sc.Strategy != StratShade {
		return
	}
	won := make(map[int]bool, len(wins))
	for _, w := range wins {
		won[w.Client] = true
	}
	for _, c := range s.agents {
		m := s.mult[c]
		if won[c] {
			m *= learnerUp
			if m > learnerCap {
				m = learnerCap
			}
		} else {
			m *= learnerDown
			if m < learnerFloor {
				m = learnerFloor
			}
		}
		s.mult[c] = m
	}
}

// winsFromResult flattens a local solver result.
func winsFromResult(winners []core.Winner) []winRec {
	out := make([]winRec, len(winners))
	for i, w := range winners {
		out[i] = winRec{BidIndex: w.BidIndex, Client: w.Bid.Client, Slots: w.Slots, Payment: w.Payment}
	}
	return out
}

// sumAgents sums a utility map in agent order (deterministic float
// accumulation).
func (s *session) sumAgents(u map[int]float64) float64 {
	var sum float64
	for _, a := range s.agents {
		sum += u[a]
	}
	return sum
}

// describe renders the session for error messages.
func (s *session) describe() string {
	return fmt.Sprintf("strategy=%s seed=%d clients=%d t=%d k=%d", s.sc.Strategy, s.sc.Seed, s.sc.Clients, s.sc.T, s.sc.K)
}
