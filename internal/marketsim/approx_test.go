package marketsim

import (
	"context"
	"testing"

	"github.com/fedauction/afl/internal/colgen"
	"github.com/fedauction/afl/internal/core"
	"github.com/fedauction/afl/internal/stats"
)

// Misreport probes against the approximate solver tiers.
//
// The fleet's truthful counterfactual (RunFleet) runs the exact engine,
// so it says nothing about what a deviation buys a client once the sweep
// solves only a subset of the candidate T̂_g values. This probe measures
// that directly: one deviating agent, a grid of price multipliers, both
// approximate tiers, utility compared against the same tier's truthful
// run. Payments themselves remain exact Algorithm 3 critical values on
// whichever T̂_g the approximate sweep selects — the tiers approximate
// CANDIDATE ENUMERATION, never pricing — so the only leakage channel is
// a misreport steering the coarse pass toward a different T̂_g. The
// envelope pinned here is the empirical size of that channel; regressions
// that widen it (e.g. a pricing shortcut sneaking into an approximate
// tier) fail loudly.

// approxProbeEnvelope is the pinned per-probe leakage bound, in cost
// units, for a unilateral misreport under the approximate tiers.
// Unlike the exact tier — provably truthful, leakage 0 — the
// approximate tiers have a real deviation channel: a misreport can
// steer WHICH candidates the adaptive coarse pass solves, moving the
// selected T̂_g to one where the deviator wins (or wins dearer). The
// payment at the selected T̂_g is still an exact critical value, so the
// channel's size is bounded by the per-round cost scale of the
// population, not by the reserve: measured max over the probe grid
// below is ≈15.3 (an underbid flipping the selected candidate for a
// population whose costs sit in the [10, 60] band). The pin fails
// loudly if a change widens the channel past its measured envelope —
// e.g. a pricing shortcut sneaking into an approximate tier, which
// would push leakage toward reserve scale.
const approxProbeEnvelope = 16.0

func approxTiers() []core.RunOptions {
	return []core.RunOptions{
		{Solver: core.SolverCoarseFine},
		{Solver: core.SolverCoarseFine, Stride: 6},
		{Solver: core.SolverLPRound, LP: colgen.Certifier{}},
	}
}

func probeSolve(t *testing.T, bids []core.Bid, cfg core.Config, o core.RunOptions) core.Result {
	t.Helper()
	eng, err := core.NewEngine(bids, cfg)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	res, err := eng.RunCtx(context.Background(), o)
	if err != nil && err != core.ErrInfeasible {
		t.Fatalf("solve: %v", err)
	}
	return res
}

// agentUtility is the deviator's realized utility: payment minus true
// cost over its accepted bids, zero when it loses or the market fails.
func agentUtility(res core.Result, agent int) float64 {
	if !res.Feasible {
		return 0
	}
	var u float64
	for _, w := range res.Winners {
		if w.Bid.Client == agent {
			u += w.Payment - w.Bid.TrueCost
		}
	}
	return u
}

func TestApproxTiersMisreportEnvelope(t *testing.T) {
	multipliers := []float64{0.8, 0.9, 1.1, 1.25}
	cfg := core.Config{
		T: 12, K: 2,
		PaymentRule:    core.RuleExactCritical,
		ExcludeOwnBids: true,
		ReservePrice:   reservePrice,
	}
	var worst float64
	probes := 0
	for seed := int64(1); seed <= 8; seed++ {
		base := genWireless(stats.NewRNG(seed), 30, cfg.T)
		for ti, o := range approxTiers() {
			truthful := probeSolve(t, base, cfg, o)
			// The deviator set: every truthful winner plus a sample of
			// losers (losers can only gain by deviating INTO the market).
			deviators := map[int]bool{}
			for _, w := range truthful.Winners {
				deviators[w.Bid.Client] = true
			}
			for c := 0; c < len(base); c += 7 {
				deviators[base[c].Client] = true
			}
			for agent := range deviators {
				honest := agentUtility(truthful, agent)
				for _, mul := range multipliers {
					dev := make([]core.Bid, len(base))
					copy(dev, base)
					for i := range dev {
						if dev[i].Client == agent {
							dev[i].Price *= mul
						}
					}
					res := probeSolve(t, dev, cfg, o)
					probes++
					if gain := agentUtility(res, agent) - honest; gain > worst {
						worst = gain
						if gain > approxProbeEnvelope {
							t.Errorf("seed %d tier %d agent %d ×%.2f: leakage %v exceeds envelope %v",
								seed, ti, agent, mul, gain, approxProbeEnvelope)
						}
					}
				}
			}
		}
	}
	if probes < 500 {
		t.Fatalf("only %d probes ran", probes)
	}
	t.Logf("max leakage over %d probes: %v (envelope %v)", probes, worst, approxProbeEnvelope)
}

// TestApproxTiersPaymentsAreCritical locks the "approximate enumeration,
// exact pricing" separation: at whichever T̂_g an approximate sweep
// selects, every greedy winner's payment must equal the payment the
// EXACT single-WDP solve at that T̂_g computes for it. (SolverLPRound's
// rounded-in winners pay their claimed price by design; the rounding is
// only adopted when it lowers total cost, and this run keeps the greedy
// cover whenever the LP does not improve it.)
func TestApproxTiersPaymentsAreCritical(t *testing.T) {
	cfg := core.Config{
		T: 14, K: 2,
		PaymentRule:    core.RuleExactCritical,
		ExcludeOwnBids: true,
		ReservePrice:   reservePrice,
	}
	for seed := int64(1); seed <= 6; seed++ {
		bids := genWireless(stats.NewRNG(seed), 36, cfg.T)
		for ti, o := range approxTiers() {
			res := probeSolve(t, bids, cfg, o)
			if !res.Feasible {
				continue
			}
			eng, err := core.NewEngine(bids, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref := eng.SolveWDP(res.Tg)
			refPay := map[int]float64{}
			sameCover := len(ref.Winners) == len(res.Winners)
			for _, w := range ref.Winners {
				refPay[w.BidIndex] = w.Payment
			}
			for _, w := range res.Winners {
				if _, ok := refPay[w.BidIndex]; !ok {
					sameCover = false
				}
			}
			if !sameCover {
				// SolverLPRound adopted a rounded cover. RuleExactCritical
				// re-prices over THAT set, so the greedy cover's critical
				// values are not the reference; individual rationality and
				// the reserve cap still are.
				for _, w := range res.Winners {
					if w.Payment < w.Bid.Price-1e-9 || w.Payment > cfg.ReservePrice+1e-9 {
						t.Fatalf("seed %d tier %d: rounded winner %d pays %v outside [price %v, reserve %v]",
							seed, ti, w.BidIndex, w.Payment, w.Bid.Price, cfg.ReservePrice)
					}
				}
				continue
			}
			for _, w := range res.Winners {
				if w.Payment != refPay[w.BidIndex] {
					t.Fatalf("seed %d tier %d: winner %d pays %v, exact critical value %v",
						seed, ti, w.BidIndex, w.Payment, refPay[w.BidIndex])
				}
			}
		}
	}
}
