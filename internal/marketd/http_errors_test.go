package marketd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"testing"
	"time"
)

// TestHandlerErrorTable pins the daemon's whole error surface in one
// table: wrong methods (405 from the pattern router), unknown and
// malformed sequence numbers, malformed bid JSON, rate-limit 429s with a
// concrete Retry-After value, and admission 503s at MaxPending. Each row
// builds its own market so the rows are independent and order-free.
func TestHandlerErrorTable(t *testing.T) {
	goodBody := func(t *testing.T) *bytes.Reader {
		return submitBody(t, "alice", marketInstances(t, 1)[0])
	}
	cases := []struct {
		name string
		// setup returns a configured handler; nil means a plain open
		// market with one worker.
		setup func(t *testing.T) http.Handler
		// method, path, body form the request; a nil body sends none.
		method string
		path   string
		body   func(t *testing.T) *bytes.Reader
		// want is the status; wantRetryAfter the exact header value ("" =
		// must be absent); wantError a substring of the JSON error body
		// ("" = body unchecked).
		want           int
		wantRetryAfter string
		wantError      string
	}{
		{
			name:   "submit with GET is 405",
			method: http.MethodGet, path: "/v1/auctions",
			want: http.StatusMethodNotAllowed,
		},
		{
			name:   "outcome with POST is 405",
			method: http.MethodPost, path: "/v1/auctions/0", body: goodBody,
			want: http.StatusMethodNotAllowed,
		},
		{
			name:   "ledger with DELETE is 405",
			method: http.MethodDelete, path: "/v1/ledger",
			want: http.StatusMethodNotAllowed,
		},
		{
			name:   "unknown sequence is 404",
			method: http.MethodGet, path: "/v1/auctions/9000",
			want: http.StatusNotFound, wantError: "unknown",
		},
		{
			name:   "non-numeric sequence is 400",
			method: http.MethodGet, path: "/v1/auctions/latest",
			want: http.StatusBadRequest, wantError: "bad sequence",
		},
		{
			name:   "truncated JSON is 400",
			method: http.MethodPost, path: "/v1/auctions",
			body: func(*testing.T) *bytes.Reader { return bytes.NewReader([]byte(`{"client":"a","bids":[{`)) },
			want: http.StatusBadRequest, wantError: "bad request body",
		},
		{
			name:   "mistyped bid field is 400",
			method: http.MethodPost, path: "/v1/auctions",
			body: func(*testing.T) *bytes.Reader {
				return bytes.NewReader([]byte(`{"client":"a","bids":[{"client":0,"price":"expensive"}]}`))
			},
			want: http.StatusBadRequest, wantError: "bad request body",
		},
		{
			name:   "empty bid list is 400",
			method: http.MethodPost, path: "/v1/auctions",
			body: func(*testing.T) *bytes.Reader { return bytes.NewReader([]byte(`{"client":"a","bids":[]}`)) },
			want: http.StatusBadRequest, wantError: "no bids",
		},
		{
			name: "over-burst submission is 429 with whole-second advice",
			setup: func(t *testing.T) http.Handler {
				clk := &fakeClock{t: time.Unix(1000, 0)}
				m := openMarket(t, Config{Workers: 1, RatePerSec: 0.5, Burst: 1, Now: clk.now})
				h := Handler(m)
				if rr := doJSON(t, h, http.MethodPost, "/v1/auctions", goodBody(t), nil); rr.Code != http.StatusOK {
					t.Fatalf("burst-exhausting submit = %d", rr.Code)
				}
				return h
			},
			method: http.MethodPost, path: "/v1/auctions", body: goodBody,
			// At 0.5 tokens/s the bucket is 2s from refill: Retry-After
			// must carry the computed wait, not a constant.
			want: http.StatusTooManyRequests, wantRetryAfter: "2", wantError: "rate limit",
		},
		{
			name: "saturated market is 503 with retry advice",
			setup: func(t *testing.T) http.Handler {
				gate := make(chan struct{})
				t.Cleanup(func() { close(gate) })
				gated := marketInstances(t, 1)[0]
				gated.Cfg.LocalIters = func(float64) float64 { <-gate; return 1 }
				m := openMarket(t, Config{Workers: 1, Queue: 8, MaxPending: 1})
				if _, err := m.Submit(t.Context(), "seed", gated); err != nil {
					t.Fatal(err)
				}
				return Handler(m)
			},
			method: http.MethodPost, path: "/v1/auctions", body: goodBody,
			want: http.StatusServiceUnavailable, wantRetryAfter: "1", wantError: "saturated",
		},
		{
			name: "closed market is 503",
			setup: func(t *testing.T) http.Handler {
				m := openMarket(t, Config{Workers: 1})
				if err := m.Close(); err != nil {
					t.Fatal(err)
				}
				return Handler(m)
			},
			method: http.MethodPost, path: "/v1/auctions", body: goodBody,
			want: http.StatusServiceUnavailable, wantError: "closed",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h http.Handler
			if tc.setup != nil {
				h = tc.setup(t)
			} else {
				h = Handler(openMarket(t, Config{Workers: 1}))
			}
			var body *bytes.Reader
			if tc.body != nil {
				body = tc.body(t)
			}
			rr := doJSON(t, h, tc.method, tc.path, body, nil)
			if rr.Code != tc.want {
				t.Fatalf("status = %d, want %d; body %s", rr.Code, tc.want, rr.Body.String())
			}
			if got := rr.Header().Get("Retry-After"); got != tc.wantRetryAfter {
				t.Fatalf("Retry-After = %q, want %q", got, tc.wantRetryAfter)
			}
			if tc.wantRetryAfter != "" {
				if s, err := strconv.Atoi(tc.wantRetryAfter); err != nil || s < 1 {
					t.Fatalf("test wants non-integral Retry-After %q", tc.wantRetryAfter)
				}
			}
			if tc.wantError != "" {
				var eb errorBody
				if err := json.Unmarshal(rr.Body.Bytes(), &eb); err != nil {
					t.Fatalf("error body not JSON: %q", rr.Body.String())
				}
				if !bytes.Contains([]byte(eb.Error), []byte(tc.wantError)) {
					t.Fatalf("error %q does not mention %q", eb.Error, tc.wantError)
				}
			}
		})
	}
}

// TestInvalidBidAcknowledgedThenFailed pins the durable-queue contract
// for semantically invalid bids: a negative price survives JSON decoding,
// so the edge acknowledges it (200 — it is durably logged like any other
// submission) and the validation failure surfaces in the committed
// outcome's Err instead of an HTTP status.
func TestInvalidBidAcknowledgedThenFailed(t *testing.T) {
	m := openMarket(t, Config{Workers: 1})
	h := Handler(m)
	inst := marketInstances(t, 1)[0]
	inst.Bids[0].Price = -5

	var ack SubmitResponse
	rr := doJSON(t, h, http.MethodPost, "/v1/auctions", submitBody(t, "alice", inst), &ack)
	if rr.Code != http.StatusOK {
		t.Fatalf("invalid-bid submit = %d, want 200 (ack-then-fail); body %s", rr.Code, rr.Body.String())
	}
	rec, err := m.Wait(t.Context(), ack.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Err == "" {
		t.Fatalf("invalid bid committed without error: %+v", rec)
	}
	if rec.Feasible || len(rec.Winners) != 0 {
		t.Fatalf("invalid bid produced winners: %+v", rec)
	}
}

// openMarket opens a market bound to the test's lifetime.
func openMarket(t *testing.T, cfg Config) *Market {
	t.Helper()
	m, err := Open(t.Context(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}
