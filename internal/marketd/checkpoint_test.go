package marketd

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/fedauction/afl/internal/batch"
)

// runMarket opens a market with cfg (Dir filled by the caller), submits
// every instance, waits for all commits, snapshots, and closes.
func runMarket(t testing.TB, cfg Config, insts []batch.Instance) []byte {
	t.Helper()
	m, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range insts {
		seq, err := m.Submit(context.Background(), "c", inst)
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		if _, err := m.Wait(context.Background(), seq); err != nil {
			t.Fatalf("wait(%d): %v", seq, err)
		}
	}
	snap := m.Snapshot()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestCheckpointRecoveryMatchesFullReplay is the tentpole equivalence:
// a checkpointing market's recovered state is byte-identical to the
// unbounded-log replay of the same workload, while replaying only the
// tail since the last checkpoint.
func TestCheckpointRecoveryMatchesFullReplay(t *testing.T) {
	insts := marketInstances(t, 9)
	golden := goldenSnapshot(t, insts)

	dir := t.TempDir()
	cfg := Config{Dir: dir, Workers: 1, CheckpointEvery: 3}
	if got := runMarket(t, cfg, insts); !bytes.Equal(got, golden) {
		t.Fatalf("checkpointing run diverged from golden:\n got %s\nwant %s", got, golden)
	}

	m, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if snap := m.Snapshot(); !bytes.Equal(snap, golden) {
		t.Fatalf("checkpoint recovery diverged from golden:\n got %s\nwant %s", snap, golden)
	}
	info := m.WALInfo()
	if info.LastCheckpointSeq != 9 {
		t.Fatalf("LastCheckpointSeq = %d, want 9", info.LastCheckpointSeq)
	}
	// 9 commits, checkpoint every 3: the newest checkpoint covers all 9,
	// so recovery replays an empty tail.
	if info.TailReplayed != 0 {
		t.Fatalf("TailReplayed = %d, want 0 (recovery should start at the newest checkpoint)", info.TailReplayed)
	}
	if info.Segments > 2 {
		t.Fatalf("pruning left %d segments", info.Segments)
	}
	next, committed, pending, _ := m.Counts()
	if next != 9 || committed != 9 || pending != 0 {
		t.Fatalf("Counts = %d/%d/%d, want 9/9/0", next, committed, pending)
	}
}

// TestCheckpointMidTailRecovery: commits past the last checkpoint live
// only in the tail; recovery replays exactly them.
func TestCheckpointMidTailRecovery(t *testing.T) {
	insts := marketInstances(t, 8)
	golden := goldenSnapshot(t, insts)
	dir := t.TempDir()
	cfg := Config{Dir: dir, Workers: 1, CheckpointEvery: 3}
	runMarket(t, cfg, insts) // checkpoints after 3 and 6; seqs 6,7 in the tail

	m, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if snap := m.Snapshot(); !bytes.Equal(snap, golden) {
		t.Fatal("mid-tail recovery diverged from golden")
	}
	info := m.WALInfo()
	if info.LastCheckpointSeq != 6 {
		t.Fatalf("LastCheckpointSeq = %d, want 6", info.LastCheckpointSeq)
	}
	// Two committed auctions after the checkpoint, one winner each or
	// more: tail = their pay+outcome records. At minimum 2 outcomes.
	if info.TailReplayed < 2 || info.TailReplayed > 12 {
		t.Fatalf("TailReplayed = %d, want the small post-checkpoint tail", info.TailReplayed)
	}
}

// TestCheckpointCrashPointsRecover drives the two checkpoint crash
// points and requires recovery to converge to the golden state.
func TestCheckpointCrashPointsRecover(t *testing.T) {
	insts := marketInstances(t, 7)
	golden := goldenSnapshot(t, insts)
	for _, point := range []string{CrashCheckpointRotated, CrashCheckpointWritten} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			armed := true
			cfg := Config{
				Dir: dir, Workers: 1, CheckpointEvery: 3,
				Crash: func(p string, seq int) bool {
					if armed && p == point {
						armed = false
						return true
					}
					return false
				},
			}
			m, err := Open(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, inst := range insts {
				seq, serr := m.Submit(context.Background(), "c", inst)
				if serr != nil {
					break // killed mid-run; recovery takes over
				}
				if _, werr := m.Wait(context.Background(), seq); werr != nil {
					break
				}
			}
			if !m.Killed() {
				t.Fatalf("crash point %s never fired", point)
			}
			m.Close()

			// Reopen without the crash hook and finish the workload.
			m2, err := Open(context.Background(), Config{Dir: dir, Workers: 1, CheckpointEvery: 3})
			if err != nil {
				t.Fatalf("reopen after %s: %v", point, err)
			}
			defer m2.Close()
			next, _, _, _ := m2.Counts()
			for i := next; i < len(insts); i++ {
				seq, serr := m2.Submit(context.Background(), "c", insts[i])
				if serr != nil {
					t.Fatal(serr)
				}
				if _, werr := m2.Wait(context.Background(), seq); werr != nil {
					t.Fatal(werr)
				}
			}
			// Wait for any recovered pending submissions too.
			for i := 0; i < len(insts); i++ {
				if _, err := m2.Wait(context.Background(), i); err != nil {
					t.Fatalf("wait(%d) after recovery: %v", i, err)
				}
			}
			if snap := m2.Snapshot(); !bytes.Equal(snap, golden) {
				t.Fatalf("recovery after %s diverged from golden:\n got %s\nwant %s", point, snap, golden)
			}
		})
	}
}

// TestRetentionPrunesOutcomes: a bounded retention window serves old
// seqs as ErrPruned while the ledger keeps their payments, across
// restarts and checkpoints.
func TestRetentionPrunesOutcomes(t *testing.T) {
	insts := marketInstances(t, 8)
	dir := t.TempDir()
	cfg := Config{Dir: dir, Workers: 1, CheckpointEvery: 3, RetainOutcomes: 2}

	unbounded := Config{Dir: t.TempDir(), Workers: 1}
	mRef, err := Open(context.Background(), unbounded)
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range insts {
		seq, _ := mRef.Submit(context.Background(), "c", inst)
		if _, err := mRef.Wait(context.Background(), seq); err != nil {
			t.Fatal(err)
		}
	}
	refLedger := mRef.Ledger()
	mRef.Close()

	m, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range insts {
		seq, _ := m.Submit(context.Background(), "c", inst)
		if _, err := m.Wait(context.Background(), seq); err != nil {
			t.Fatal(err)
		}
	}
	ledger := m.Ledger()
	if len(ledger) != len(refLedger) {
		t.Fatalf("retention changed the ledger: %v vs %v", ledger, refLedger)
	}
	for c, p := range refLedger {
		if ledger[c] != p {
			t.Fatalf("ledger[%d] = %v, want %v", c, ledger[c], p)
		}
	}
	if _, _, err := m.Outcome(0); !errors.Is(err, ErrPruned) {
		t.Fatalf("Outcome(0) err = %v, want ErrPruned", err)
	}
	if _, err := m.Wait(context.Background(), 0); !errors.Is(err, ErrPruned) {
		t.Fatalf("Wait(0) err = %v, want ErrPruned", err)
	}
	if _, ok, err := m.Outcome(7); !ok || err != nil {
		t.Fatalf("Outcome(7) = ok %v err %v, want retained", ok, err)
	}
	m.Close()

	// Restart: the retention state survives through the checkpoint.
	m2, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if _, _, err := m2.Outcome(1); !errors.Is(err, ErrPruned) {
		t.Fatalf("restart Outcome(1) err = %v, want ErrPruned", err)
	}
	ledger2 := m2.Ledger()
	for c, p := range refLedger {
		if ledger2[c] != p {
			t.Fatalf("restart ledger[%d] = %v, want %v", c, ledger2[c], p)
		}
	}
}

// TestGroupCommitMarket: a group-commit market under concurrent
// submitters solves every instance to its serial-reference outcome,
// survives restart byte-identically, and fsyncs fewer times than it
// writes records. Seq assignment races between submitters, so outcomes
// are checked per instance rather than against the ordered golden.
func TestGroupCommitMarket(t *testing.T) {
	insts := marketInstances(t, 8)
	dir := t.TempDir()
	cfg := Config{Dir: dir, Workers: 2, GroupCommit: true}

	m, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	seqs := make([]int, len(insts))
	errCh := make(chan error, len(insts))
	for i := range insts {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			seq, err := m.Submit(context.Background(), "c", insts[i])
			if err != nil {
				errCh <- err
				return
			}
			seqs[i] = seq
			if _, err := m.Wait(context.Background(), seq); err != nil {
				errCh <- err
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for i, seq := range seqs {
		rec, ok, err := m.Outcome(seq)
		if !ok || err != nil {
			t.Fatalf("Outcome(%d) = ok %v err %v", seq, ok, err)
		}
		assertRecordEqual(t, rec, solveRecord(t, seq, insts[i]))
	}
	info := m.WALInfo()
	// 8 bids + ≥8 outcomes + pay records: well above 16 records. Group
	// commit must have coalesced at least some fsyncs.
	if info.Syncs >= 16 {
		t.Fatalf("group commit did not coalesce: %d fsyncs", info.Syncs)
	}
	snap := m.Snapshot()
	m.Close()

	m2, err := Open(context.Background(), Config{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.Snapshot(); !bytes.Equal(got, snap) {
		t.Fatalf("group-commit restart diverged:\n got %s\nwant %s", got, snap)
	}
}

// TestGroupCommitWithCheckpoints combines every fast-path feature and
// still requires golden-state equality across a restart.
func TestGroupCommitWithCheckpoints(t *testing.T) {
	insts := marketInstances(t, 9)
	golden := goldenSnapshot(t, insts)
	dir := t.TempDir()
	cfg := Config{
		Dir: dir, Workers: 2, GroupCommit: true,
		CheckpointEvery: 4, SegmentRecords: 6,
	}
	if got := runMarket(t, cfg, insts); !bytes.Equal(got, golden) {
		t.Fatal("combined fast-path run diverged from golden")
	}
	m, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if snap := m.Snapshot(); !bytes.Equal(snap, golden) {
		t.Fatal("combined fast-path recovery diverged from golden")
	}
}

// TestSubmitBatchMatchesLoop: a batched submission commits the same
// state as a loop of single submissions of the same instances.
func TestSubmitBatchMatchesLoop(t *testing.T) {
	insts := marketInstances(t, 5)
	golden := goldenSnapshot(t, insts)
	dir := t.TempDir()
	m, err := Open(context.Background(), Config{Dir: dir, Workers: 2, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := m.SubmitBatch(context.Background(), "c", insts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != len(insts) {
		t.Fatalf("SubmitBatch returned %d seqs, want %d", len(seqs), len(insts))
	}
	for i, seq := range seqs {
		if seq != i {
			t.Fatalf("seqs[%d] = %d, want consecutive from 0", i, seq)
		}
		if _, err := m.Wait(context.Background(), seq); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.Snapshot()
	m.Close()
	if !bytes.Equal(snap, golden) {
		t.Fatalf("batched submission diverged from golden:\n got %s\nwant %s", snap, golden)
	}
}
