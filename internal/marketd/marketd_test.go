package marketd

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/fedauction/afl/internal/batch"
	"github.com/fedauction/afl/internal/wal"
	"github.com/fedauction/afl/internal/workload"
)

// marketInstances draws n differently-seeded auction instances. The
// seed base is chosen so every instance is feasible with a non-empty
// winner set — the crash matrix needs real pay records to tear.
func marketInstances(t testing.TB, n int) []batch.Instance {
	t.Helper()
	insts := make([]batch.Instance, n)
	for i := range insts {
		p := workload.NewDefaultParams()
		p.Seed = int64(4020 + i)
		p.Clients = 12
		p.T = 10 + i%4
		p.K = 3
		bids, err := workload.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		insts[i] = batch.Instance{Bids: bids, Cfg: p.Config()}
	}
	return insts
}

// goldenSnapshot runs every instance through an uninterrupted durable
// market in its own directory and returns the canonical state.
func goldenSnapshot(t testing.TB, insts []batch.Instance) []byte {
	t.Helper()
	m, err := Open(context.Background(), Config{Dir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range insts {
		seq, err := m.Submit(context.Background(), "golden", inst)
		if err != nil {
			t.Fatalf("golden submit: %v", err)
		}
		if _, err := m.Wait(context.Background(), seq); err != nil {
			t.Fatalf("golden wait(%d): %v", seq, err)
		}
	}
	snap := m.Snapshot()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestVolatileMatchesSerial pins that a market with no durability
// directory is a transparent wrapper over the batch service: every
// committed outcome equals flattening the serial reference solve.
func TestVolatileMatchesSerial(t *testing.T) {
	insts := marketInstances(t, 4)
	m, err := Open(context.Background(), Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i, inst := range insts {
		seq, err := m.Submit(context.Background(), "c", inst)
		if err != nil {
			t.Fatal(err)
		}
		if seq != i {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	for i, inst := range insts {
		got, err := m.Wait(context.Background(), i)
		if err != nil {
			t.Fatal(err)
		}
		ref := solveRecord(t, i, inst)
		assertRecordEqual(t, got, ref)
	}
}

// solveRecord solves one instance on the batch layer's serial reference
// path and flattens it to the durable form.
func solveRecord(t testing.TB, seq int, inst batch.Instance) OutcomeRecord {
	t.Helper()
	ocs, err := batch.Run(context.Background(), []batch.Instance{inst}, batch.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := recordFromOutcome(ocs[0])
	rec.Seq = seq
	return rec
}

func assertRecordEqual(t testing.TB, got, want OutcomeRecord) {
	t.Helper()
	gj, _ := encodeOutcomeRecord(got)
	wj, _ := encodeOutcomeRecord(want)
	if !bytes.Equal(gj, wj) {
		t.Fatalf("outcome mismatch:\n got %s\nwant %s", gj, wj)
	}
}

// TestDurableRestartRestoresState pins the clean-shutdown path: close a
// durable market, reopen its directory, and the outcomes, ledger, and
// canonical snapshot are byte-identical — nothing is re-solved, nothing
// is lost.
func TestDurableRestartRestoresState(t *testing.T) {
	insts := marketInstances(t, 5)
	dir := t.TempDir()

	m1, err := Open(context.Background(), Config{Dir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range insts {
		seq, err := m1.Submit(context.Background(), "alice", inst)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m1.Wait(context.Background(), seq); err != nil {
			t.Fatal(err)
		}
	}
	snap1 := m1.Snapshot()
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(context.Background(), Config{Dir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if faults := m2.RecoveredFaults(); faults != 0 {
		t.Fatalf("clean restart absorbed %d faults, want 0", faults)
	}
	if next, committed, pending, _ := m2.Counts(); next != len(insts) || committed != len(insts) || pending != 0 {
		t.Fatalf("Counts() = next %d committed %d pending %d, want %d/%d/0",
			next, committed, pending, len(insts), len(insts))
	}
	if snap2 := m2.Snapshot(); !bytes.Equal(snap1, snap2) {
		t.Fatalf("snapshot changed across restart:\n pre %s\npost %s", snap1, snap2)
	}
}

// TestCrashPointsRecover drives the full crash matrix: for every point
// of the commit protocol, kill the market mid-flight on sequence 1,
// reopen the directory, finish the workload, and require the final
// state byte-identical to the uninterrupted golden run.
func TestCrashPointsRecover(t *testing.T) {
	insts := marketInstances(t, 4)
	golden := goldenSnapshot(t, insts)

	points := []string{
		CrashBidLogged, CrashOutcomeSolved, CrashLedgerPartial,
		CrashPreCommit, CrashPostCommit,
	}
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			m1, err := Open(context.Background(), Config{
				Dir: dir, Workers: 1,
				Crash: func(p string, seq int) bool { return p == point && seq == 1 },
			})
			if err != nil {
				t.Fatal(err)
			}
			// Seq 0 commits cleanly; seq 1 triggers the crash.
			if _, err := m1.Submit(context.Background(), "c", insts[0]); err != nil {
				t.Fatal(err)
			}
			if _, err := m1.Wait(context.Background(), 0); err != nil {
				t.Fatal(err)
			}
			if _, err := m1.Submit(context.Background(), "c", insts[1]); err != nil {
				t.Fatal(err)
			}
			<-m1.Dead()
			if !m1.Killed() {
				t.Fatal("market not killed")
			}
			if _, err := m1.Submit(context.Background(), "c", insts[2]); !errors.Is(err, ErrClosed) {
				t.Fatalf("Submit after kill = %v, want ErrClosed", err)
			}
			m1.Close()

			m2, err := Open(context.Background(), Config{Dir: dir, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer m2.Close()
			// Seqs 0 and 1 must both exist exactly once; finish the tail.
			for seq := 0; seq < 2; seq++ {
				if _, err := m2.Wait(context.Background(), seq); err != nil {
					t.Fatalf("Wait(%d) after recovery: %v", seq, err)
				}
			}
			for _, inst := range insts[2:] {
				seq, err := m2.Submit(context.Background(), "c", inst)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := m2.Wait(context.Background(), seq); err != nil {
					t.Fatal(err)
				}
			}
			if snap := m2.Snapshot(); !bytes.Equal(snap, golden) {
				t.Fatalf("recovered state diverged from golden after %s:\n got %s\nwant %s",
					point, snap, golden)
			}
		})
	}
}

// TestRecoveryDiscardsOrphanPayments hand-crafts the exact torn state a
// pre_commit crash leaves behind — bid record plus pay records with no
// commit marker — and pins that replay counts the orphans, drops their
// ledger effects, and re-solves the bid to the same committed outcome.
func TestRecoveryDiscardsOrphanPayments(t *testing.T) {
	insts := marketInstances(t, 1)
	golden := goldenSnapshot(t, insts)

	dir := t.TempDir()
	log, _, err := wal.Open(filepath.Join(dir, WALFileName), wal.Options{}, func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	bid, err := encodeBidRecord(0, "crafted", insts[0])
	if err != nil {
		t.Fatal(err)
	}
	pay, err := encodePayRecord(0, WinnerRecord{Client: 3, BidIndex: 7, Payment: 99.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, payload := range [][]byte{bid, pay, pay} {
		if err := log.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	m, err := Open(context.Background(), Config{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if faults := m.RecoveredFaults(); faults != 1 {
		t.Fatalf("RecoveredFaults() = %d, want 1 (one orphaned seq)", faults)
	}
	if _, err := m.Wait(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if snap := m.Snapshot(); !bytes.Equal(snap, golden) {
		t.Fatalf("orphan recovery diverged:\n got %s\nwant %s", snap, golden)
	}
	if pay := m.Ledger()[3]; pay > 200 {
		t.Fatalf("orphan payment leaked into ledger: client 3 paid %v", pay)
	}
}

// TestRecoveryDropsDuplicateRecords pins the dedup-by-sequence policy: a
// WAL where the bid and commit records of a sequence appear twice
// replays to exactly one committed outcome and single-counted payments.
func TestRecoveryDropsDuplicateRecords(t *testing.T) {
	insts := marketInstances(t, 1)
	golden := goldenSnapshot(t, insts)

	dir := t.TempDir()
	m1, err := Open(context.Background(), Config{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Submit(context.Background(), "c", insts[0]); err != nil {
		t.Fatal(err)
	}
	rec, err := m1.Wait(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	// Duplicate the whole committed group: bid, then the commit marker.
	log, _, err := wal.Open(filepath.Join(dir, WALFileName), wal.Options{}, func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	dupBid, err := encodeBidRecord(0, "c", insts[0])
	if err != nil {
		t.Fatal(err)
	}
	dupOutcome, err := encodeOutcomeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, payload := range [][]byte{dupBid, dupOutcome} {
		if err := log.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(context.Background(), Config{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if faults := m2.RecoveredFaults(); faults != 2 {
		t.Fatalf("RecoveredFaults() = %d, want 2 (dup bid + dup outcome)", faults)
	}
	if snap := m2.Snapshot(); !bytes.Equal(snap, golden) {
		t.Fatalf("duplicate replay diverged:\n got %s\nwant %s", snap, golden)
	}
}

// TestRecoveryTruncatesTornTail appends garbage half-frame bytes to a
// committed log and pins that reopening absorbs the tear (counted as one
// fault), keeps all committed state, and physically truncates the file.
func TestRecoveryTruncatesTornTail(t *testing.T) {
	insts := marketInstances(t, 2)
	dir := t.TempDir()

	m1, err := Open(context.Background(), Config{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range insts {
		seq, err := m1.Submit(context.Background(), "c", inst)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m1.Wait(context.Background(), seq); err != nil {
			t.Fatal(err)
		}
	}
	snap1 := m1.Snapshot()
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, WALFileName)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x20, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2, err := Open(context.Background(), Config{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if faults := m2.RecoveredFaults(); faults != 1 {
		t.Fatalf("RecoveredFaults() = %d, want 1 (torn tail)", faults)
	}
	if snap2 := m2.Snapshot(); !bytes.Equal(snap1, snap2) {
		t.Fatalf("torn-tail recovery changed state:\n pre %s\npost %s", snap1, snap2)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, clean) {
		t.Fatalf("tail not truncated back to committed bytes: %d bytes, want %d", len(after), len(clean))
	}
}

// TestWaitAndOutcomeSentinels pins the query-side error contract.
func TestWaitAndOutcomeSentinels(t *testing.T) {
	m, err := Open(context.Background(), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Outcome(7); !errors.Is(err, ErrUnknownSeq) {
		t.Fatalf("Outcome(unknown) err = %v, want ErrUnknownSeq", err)
	}
	if _, err := m.Wait(context.Background(), -1); !errors.Is(err, ErrUnknownSeq) {
		t.Fatalf("Wait(-1) err = %v, want ErrUnknownSeq", err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(context.Background(), "c", marketInstances(t, 1)[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}
