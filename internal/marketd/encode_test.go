package marketd

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"github.com/fedauction/afl/internal/batch"
	"github.com/fedauction/afl/internal/core"
)

// hostileStrings exercise every escape class of encoding/json's default
// string encoder.
var hostileStrings = []string{
	"", "alice", "a b c", `quote"back\slash`, "tab\tnew\nline\rret",
	"ctrl\x01\x1f", "html<&>", "utf8 ✓ θ", "bad\xffutf8", "sep and ",
}

// hostileFloats cross the 'f'/'e' format boundary and the exponent
// cleanup path of encoding/json's float encoder.
var hostileFloats = []float64{
	0, 1, -1, 0.5, 1.0 / 3.0, 3.1415926535897932, 1e-6, 9.999e-7, 1e-7,
	-2.5e-8, 1e20, 1e21, 1.5e21, -7e300, 123456789.125, math.SmallestNonzeroFloat64,
	math.MaxFloat64, math.Copysign(0, -1),
}

// TestEncodeDifferential locks the append encoders to encoding/json:
// for a spread of hostile values, every record kind must byte-match
// json.Marshal on the walRecord envelope the old encoder built.
func TestEncodeDifferential(t *testing.T) {
	bid := func(i int) core.Bid {
		f := hostileFloats[i%len(hostileFloats)]
		return core.Bid{
			Client: i, Index: -i, Price: f, TrueCost: f / 2, Theta: 0.5,
			Start: 1, End: 10, Rounds: 3, CompTime: f * 3, CommTime: 1e-7,
		}
	}

	t.Run("bid", func(t *testing.T) {
		for i, client := range hostileStrings {
			cfg := core.Config{T: 10, K: 2}
			if i%2 == 1 {
				cfg = core.Config{
					T: 10, K: 2, TMax: hostileFloats[i%len(hostileFloats)],
					PaymentRule: core.PaymentRule(1), ReservePrice: 2.5,
					ScheduleRule: core.ScheduleRule(1), ExcludeOwnBids: true,
				}
			}
			inst := batch.Instance{Bids: []core.Bid{bid(i), bid(i + 1)}, Cfg: cfg}
			if i%3 == 2 {
				inst.Solver = core.SolverCoarseFine
			}
			if i == 0 {
				inst.Bids = nil
			}
			got, err := appendBidRecord(nil, i, client, inst)
			if err != nil {
				t.Fatalf("appendBidRecord(%d): %v", i, err)
			}
			cw, _ := FromConfig(inst.Cfg)
			sv := ""
			if inst.Solver != core.SolverExact {
				sv = inst.Solver.String()
			}
			want, err := json.Marshal(walRecord{
				Type: recBid, Seq: i, Client: client, Bids: inst.Bids, Cfg: &cw, Solver: sv,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("bid record %d diverges:\n got %s\nwant %s", i, got, want)
			}
		}
	})

	t.Run("pay", func(t *testing.T) {
		for i, f := range hostileFloats {
			w := WinnerRecord{Client: i - 2, BidIndex: i % 3, Payment: f}
			got, err := appendPayRecord(nil, i, w)
			if err != nil {
				t.Fatalf("appendPayRecord(%g): %v", f, err)
			}
			want, err := json.Marshal(walRecord{
				Type: recPay, Seq: i, PayClient: w.Client, BidIndex: w.BidIndex, Amount: w.Payment,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("pay record %d diverges:\n got %s\nwant %s", i, got, want)
			}
		}
	})

	t.Run("outcome", func(t *testing.T) {
		recs := []OutcomeRecord{
			{Seq: 0, Feasible: false},
			{Seq: 1, Err: `no "bids" <found>`, Feasible: false},
			{Seq: 2, Feasible: true, Tg: 7, Cost: 1.0 / 3.0, Total: 12.5,
				Winners: []WinnerRecord{
					{BidIndex: 0, Client: 1, Index: 2, Price: 3.5, Theta: 0.25, Slots: []int{1, 2, 3}, Payment: 4.75},
					{BidIndex: 4, Client: 0, Index: 0, Price: 1e-7, Theta: 0.9, Slots: nil, Payment: 1e21},
					{Slots: []int{}},
				}},
			{Seq: 3, Feasible: true, Tg: 1, Cost: 2, Solver: "lp-round",
				CertLowerBound: 1.5, CertRatio: 1.333333, Winners: []WinnerRecord{{Slots: []int{9}}}},
		}
		for _, rec := range recs {
			rec := rec
			got, err := appendOutcomeRecord(nil, &rec)
			if err != nil {
				t.Fatalf("appendOutcomeRecord(%d): %v", rec.Seq, err)
			}
			want, err := json.Marshal(walRecord{Type: recOutcome, Seq: rec.Seq, Outcome: &rec})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("outcome record %d diverges:\n got %s\nwant %s", rec.Seq, got, want)
			}
		}
	})

	t.Run("strings", func(t *testing.T) {
		for _, s := range hostileStrings {
			got := appendJSONString(nil, s)
			want, err := json.Marshal(s)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("string %q diverges:\n got %s\nwant %s", s, got, want)
			}
		}
	})

	t.Run("nonfinite-rejected", func(t *testing.T) {
		for _, f := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
			if _, err := appendPayRecord(nil, 1, WinnerRecord{Client: 1, Payment: f}); err == nil {
				t.Fatalf("appendPayRecord accepted %v", f)
			}
		}
	})
}

// TestPeekEnvelope checks the allocation-free type/seq scan against the
// full decoder on every record kind, plus rejection of malformed input.
func TestPeekEnvelope(t *testing.T) {
	inst := batch.Instance{
		Bids: []core.Bid{{Client: 1, Price: 2.5, Theta: 0.5, Start: 1, End: 4, Rounds: 2}},
		Cfg:  core.Config{T: 4, K: 1},
	}
	bidRec, err := appendBidRecord(nil, 17, `tricky "client", {with} [json]`, inst)
	if err != nil {
		t.Fatal(err)
	}
	payRec, _ := appendPayRecord(nil, 18, WinnerRecord{Client: 3, Payment: 2})
	oc := OutcomeRecord{Seq: 19, Feasible: true, Tg: 4, Cost: 1, Winners: []WinnerRecord{{Slots: []int{1}}}}
	ocRec, _ := appendOutcomeRecord(nil, &oc)
	cases := []struct {
		payload []byte
		typ     string
		seq     int
	}{
		{bidRec, recBid, 17},
		{payRec, recPay, 18},
		{ocRec, recOutcome, 19},
		{[]byte(`{"outcome":{"seq":5,"type":"x"},"type":"outcome","seq":6}`), recOutcome, 6},
		{[]byte(` { "a" : [1,{"seq":9}] , "seq" : -4 , "type" : "bid" } `), recBid, -4},
	}
	for _, c := range cases {
		typ, seq, err := peekEnvelope(c.payload)
		if err != nil {
			t.Fatalf("peekEnvelope(%s): %v", c.payload, err)
		}
		if typ != c.typ || seq != c.seq {
			t.Fatalf("peekEnvelope(%s) = (%q,%d), want (%q,%d)", c.payload, typ, seq, c.typ, c.seq)
		}
	}
	for _, bad := range []string{
		``, `[]`, `{"type":"bid"}`, `{"seq":1}`, `{"type":`, `{"seq":"x","type":"bid"}`, `{bad}`,
	} {
		if _, _, err := peekEnvelope([]byte(bad)); err == nil {
			t.Fatalf("peekEnvelope(%q) accepted malformed input", bad)
		}
	}
}

// TestEncodeAllocGuard is the ISSUE 10 acceptance guard: the append
// encoders on a reused buffer must allocate at least 5× less per
// committed auction (bid + pay + outcome record) than the
// json.Marshal-based encoding they replaced.
func TestEncodeAllocGuard(t *testing.T) {
	inst := batch.Instance{
		Bids: []core.Bid{
			{Client: 0, Price: 2.5, Theta: 0.5, Start: 1, End: 8, Rounds: 4, CompTime: 0.1, CommTime: 0.2},
			{Client: 1, Price: 3.25, Theta: 0.4, Start: 1, End: 8, Rounds: 4, CompTime: 0.3, CommTime: 0.1},
		},
		Cfg: core.Config{T: 8, K: 1},
	}
	w := WinnerRecord{BidIndex: 1, Client: 1, Index: 0, Price: 3.25, Theta: 0.4, Slots: []int{1, 2, 3, 4}, Payment: 4.5}
	oc := OutcomeRecord{Seq: 42, Feasible: true, Tg: 8, Cost: 3.25, Winners: []WinnerRecord{w}, Total: 4.5}

	buf := make([]byte, 0, 4096)
	newAllocs := testing.AllocsPerRun(200, func() {
		var err error
		buf = buf[:0]
		if buf, err = appendBidRecord(buf, 42, "alice", inst); err != nil {
			t.Fatal(err)
		}
		if buf, err = appendPayRecord(buf, 42, w); err != nil {
			t.Fatal(err)
		}
		if buf, err = appendOutcomeRecord(buf, &oc); err != nil {
			t.Fatal(err)
		}
	})

	oldAllocs := testing.AllocsPerRun(200, func() {
		cw, _ := FromConfig(inst.Cfg)
		if _, err := json.Marshal(walRecord{Type: recBid, Seq: 42, Client: "alice", Bids: inst.Bids, Cfg: &cw}); err != nil {
			t.Fatal(err)
		}
		if _, err := json.Marshal(walRecord{Type: recPay, Seq: 42, PayClient: w.Client, BidIndex: w.BidIndex, Amount: w.Payment}); err != nil {
			t.Fatal(err)
		}
		if _, err := json.Marshal(walRecord{Type: recOutcome, Seq: 42, Outcome: &oc}); err != nil {
			t.Fatal(err)
		}
	})

	t.Logf("allocs per committed auction: append path %.1f, json.Marshal path %.1f", newAllocs, oldAllocs)
	if newAllocs*5 > oldAllocs {
		t.Fatalf("append encoders allocate %.1f/auction vs %.1f for json.Marshal — less than the required 5x reduction", newAllocs, oldAllocs)
	}
	if newAllocs > 2 {
		t.Fatalf("append encoders allocate %.1f/auction on a reused buffer; want a small constant", newAllocs)
	}
}
